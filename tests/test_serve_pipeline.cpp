// End-to-end serve loop (serve/server.h): jsonl in, jsonl out, errors
// answered in-band, and multi-threaded output identical to single-threaded.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "serve/server.h"
#include "test_helpers.h"
#include "util/str.h"

namespace h2h {
namespace {

/// A request line for `model` with the suite's search budget applied, so
/// sanitizer runs stay inside the tier-1 time budget.
[[nodiscard]] std::string request_line(const std::string& model,
                                       double bw_gbps,
                                       const std::string& id = {}) {
  std::string line = R"({"schema_version":1,)";
  if (!id.empty()) line += strformat(R"("id":"%s",)", id.c_str());
  line += strformat(
      R"("model":"%s","bw_gbps":%g,)"
      R"("options":{"time_budget_s":%g},"emit":{"timing":false}})",
      model.c_str(), bw_gbps, testing::search_time_budget());
  return line;
}

[[nodiscard]] std::vector<std::string> run_serve(
    const std::string& input, const serve::ServeOptions& options,
    serve::ServeStats* stats_out = nullptr) {
  std::istringstream in(input);
  std::ostringstream out;
  const serve::ServeStats stats = serve::serve_jsonl(in, out, options);
  if (stats_out != nullptr) *stats_out = stats;
  std::vector<std::string> lines;
  std::istringstream split(out.str());
  for (std::string line; std::getline(split, line);) lines.push_back(line);
  return lines;
}

TEST(ServePipeline, AnswersEveryLineInOrderAndSurvivesErrors) {
  const std::string input = request_line("mocap", 0.5, "a") + "\n" +
                            "{not json\n" +
                            R"({"schema_version":1,"model":"nope"})" + "\n" +
                            "\n" +  // empty line: skipped, not answered
                            request_line("mocap", 0.5, "b") + "\n";
  serve::ServeStats stats;
  const std::vector<std::string> lines = run_serve(input, {}, &stats);

  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(stats.requests, 4u);
  EXPECT_EQ(stats.ok, 2u);
  EXPECT_EQ(stats.errors, 2u);

  EXPECT_NE(lines[0].find(R"("id":"a")"), std::string::npos);
  EXPECT_NE(lines[0].find(R"("ok":true)"), std::string::npos);
  EXPECT_NE(lines[1].find(R"("ok":false)"), std::string::npos);
  EXPECT_NE(lines[1].find("parse_error"), std::string::npos);
  EXPECT_NE(lines[2].find("unknown_model"), std::string::npos);
  EXPECT_NE(lines[3].find(R"("id":"b")"), std::string::npos);
  EXPECT_NE(lines[3].find(R"("ok":true)"), std::string::npos);

  // Same scenario planned twice: the warm response's payload is identical
  // to the cold one's apart from the echoed id (timing suppressed).
  std::string a = lines[0], b = lines[3];
  const auto strip_id = [](std::string& s, const std::string& id) {
    const std::string needle = strformat(R"("id":"%s",)", id.c_str());
    const std::size_t at = s.find(needle);
    ASSERT_NE(at, std::string::npos) << s;
    s.erase(at, needle.size());
  };
  strip_id(a, "a");
  strip_id(b, "b");
  EXPECT_EQ(a, b);
}

TEST(ServePipeline, MultiThreadOutputIsByteIdenticalToSingleThread) {
  // A mixed batch: cold and warm requests over two bandwidths, plus error
  // lines wedged between them. With timing suppressed the response payloads
  // are deterministic, so worker scheduling must not be observable.
  std::string input;
  input += request_line("mocap", 0.5, "r0") + "\n";
  input += request_line("mocap", 0.125, "r1") + "\n";
  input += "{broken\n";
  input += request_line("mocap", 0.5, "r3") + "\n";
  input += R"({"schema_version":9,"model":"mocap"})" + std::string("\n");
  input += request_line("mocap", 0.125, "r5") + "\n";
  input += request_line("mocap", 0.5, "r6") + "\n";

  serve::ServeOptions serial;
  serial.threads = 1;
  serve::ServeOptions pooled;
  pooled.threads = 4;

  const std::vector<std::string> want = run_serve(input, serial);
  const std::vector<std::string> got = run_serve(input, pooled);
  ASSERT_EQ(want.size(), 7u);
  EXPECT_EQ(want, got);
}

TEST(ServePipeline, OversizedLinesAreAnsweredNotParsed) {
  serve::ServeOptions options;
  options.max_line_bytes = 128;
  const std::string big(4096, 'x');
  const std::string input =
      big + "\n" + request_line("mocap", 0.5, "after") + "\n";
  serve::ServeStats stats;
  const std::vector<std::string> lines = run_serve(input, options, &stats);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("parse_error"), std::string::npos);
  EXPECT_NE(lines[0].find("128 bytes"), std::string::npos);
  EXPECT_NE(lines[1].find(R"("ok":true)"), std::string::npos);
  EXPECT_EQ(stats.errors, 1u);
  EXPECT_EQ(stats.ok, 1u);
}

}  // namespace
}  // namespace h2h
