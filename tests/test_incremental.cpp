#include <gtest/gtest.h>

#include "core/activation_fusion.h"
#include "core/comp_prioritized.h"
#include "core/weight_locality.h"
#include "system/incremental.h"
#include "test_helpers.h"

namespace h2h {
namespace {

void expect_same_timings(const IncrementalSchedule& inc, const Simulator& sim,
                         const Mapping& m, const LocalityPlan& plan) {
  const ScheduleResult full = sim.simulate(m, plan);
  for (std::uint32_t i = 0; i < full.timings.size(); ++i) {
    const LayerTiming& a = inc.timing(LayerId{i});
    const LayerTiming& b = full.timings[i];
    EXPECT_DOUBLE_EQ(a.start, b.start) << "node " << i;
    EXPECT_DOUBLE_EQ(a.finish, b.finish) << "node " << i;
    EXPECT_DOUBLE_EQ(a.duration(), b.duration()) << "node " << i;
  }
  EXPECT_DOUBLE_EQ(inc.latency(), full.latency);
  const ScheduleResult agg = inc.result(m);
  EXPECT_DOUBLE_EQ(agg.energy.total(), full.energy.total());
  EXPECT_DOUBLE_EQ(agg.comp_time, full.comp_time);
  EXPECT_DOUBLE_EQ(agg.host_time, full.host_time);
}

TEST(Incremental, ResetMatchesFullSimulation) {
  const ModelGraph m = testing::make_mini_mmmt_model();
  const SystemConfig sys = testing::make_mini_hetero_system();
  const Simulator sim(m, sys);
  const Mapping mapping = computation_prioritized_mapping(sim);
  LocalityPlan plan(m);
  plan.ensure_acc_count(sys.accelerator_count());

  IncrementalSchedule inc(sim);
  inc.reset(mapping, plan);
  expect_same_timings(inc, sim, mapping, plan);
}

TEST(Incremental, ComponentRefreshAfterPinning) {
  const ModelGraph m = testing::make_mini_mmmt_model();
  const SystemConfig sys = testing::make_mini_hetero_system();
  const Simulator sim(m, sys);
  const Mapping mapping = computation_prioritized_mapping(sim);
  LocalityPlan plan(m);
  plan.ensure_acc_count(sys.accelerator_count());

  IncrementalSchedule inc(sim);
  inc.reset(mapping, plan);

  // Pin everything (weight-locality pass) and refresh all layers.
  optimize_weight_locality(sim, mapping, plan);
  const std::vector<LayerId> all = m.all_layers();
  inc.refresh_components(mapping, plan, all);
  expect_same_timings(inc, sim, mapping, plan);
}

TEST(Incremental, RemapMatchesFullSimulation) {
  const ModelGraph m = testing::make_mini_mmmt_model();
  const SystemConfig sys = testing::make_mini_hetero_system();
  const Simulator sim(m, sys);
  Mapping mapping = computation_prioritized_mapping(sim);
  LocalityPlan plan(m);
  plan.ensure_acc_count(sys.accelerator_count());
  optimize_weight_locality(sim, mapping, plan);
  optimize_activation_fusion(sim, mapping, plan);

  IncrementalSchedule inc(sim);
  inc.reset(mapping, plan);

  // Move one fc layer between the generic and LSTM accelerators.
  LayerId victim{};
  for (const LayerId id : m.all_layers())
    if (m.layer(id).kind == LayerKind::FullyConnected) victim = id;
  ASSERT_TRUE(victim.valid());
  const AccId src = mapping.acc_of(victim);
  const AccId dst = src == AccId{1} ? AccId{2} : AccId{1};

  mapping.reassign(victim, dst);
  const std::array<AccId, 2> touched{src, dst};
  optimize_weight_locality(sim, mapping, plan, {}, touched);
  optimize_activation_fusion(sim, mapping, plan, {}, touched);
  std::vector<LayerId> dirty = mapping.layers_on(src);
  const auto on_dst = mapping.layers_on(dst);
  dirty.insert(dirty.end(), on_dst.begin(), on_dst.end());
  inc.apply_remap(mapping, plan, victim, src, dirty);

  expect_same_timings(inc, sim, mapping, plan);
  EXPECT_GT(inc.retime_count(), 0u);
}

// Property: a random sequence of remaps tracked incrementally stays
// bit-identical to full re-simulation.
class IncrementalProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IncrementalProperty, RandomRemapSequenceStaysConsistent) {
  Rng rng(GetParam());
  const ModelGraph m = testing::make_random_model(rng);
  const SystemConfig sys = testing::make_random_system(rng);
  const Simulator sim(m, sys);
  Mapping mapping = computation_prioritized_mapping(sim);
  LocalityPlan plan(m);
  plan.ensure_acc_count(sys.accelerator_count());
  optimize_weight_locality(sim, mapping, plan);
  optimize_activation_fusion(sim, mapping, plan);

  IncrementalSchedule inc(sim);
  inc.reset(mapping, plan);

  const std::vector<LayerId> layers = m.all_layers();
  for (int step = 0; step < 10; ++step) {
    // Pick a random movable layer and a random supporting destination.
    const LayerId node = layers[rng.index(layers.size())];
    if (m.layer(node).kind == LayerKind::Input) continue;
    const auto cands = sys.supporting(m.layer(node).kind);
    const AccId dst = cands[rng.index(cands.size())];
    const AccId src = mapping.acc_of(node);
    if (dst == src) continue;

    mapping.reassign(node, dst);
    const std::array<AccId, 2> touched{src, dst};
    optimize_weight_locality(sim, mapping, plan, {}, touched);
    optimize_activation_fusion(sim, mapping, plan, {}, touched);
    std::vector<LayerId> dirty = mapping.layers_on(src);
    const auto on_dst = mapping.layers_on(dst);
    dirty.insert(dirty.end(), on_dst.begin(), on_dst.end());
    inc.apply_remap(mapping, plan, node, src, dirty);

    const ScheduleResult full = sim.simulate(mapping, plan);
    ASSERT_DOUBLE_EQ(inc.latency(), full.latency) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalProperty,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace h2h
