#include "core/activation_fusion.h"

#include <algorithm>

namespace h2h {
namespace {

FusionStats fuse_one(const Simulator& sim, const Mapping& mapping,
                     LocalityPlan& plan, const FusionOptions& options,
                     AccId acc) {
  const ModelGraph& model = sim.model();
  const AcceleratorSpec& spec = sim.sys().spec(acc);

  // Start from the DRAM committed to pinned weights on this accelerator.
  Bytes used = 0;
  for (const LayerId id : mapping.layers_on(acc))
    if (plan.pinned(id)) used += model.weight_bytes(id);

  FusionStats stats;
  // Walk consumers in execution order; reset then greedily fuse each
  // same-accelerator in-edge while capacity lasts. Deterministic.
  for (const LayerId id : mapping.layers_on(acc)) {
    const auto preds = model.graph().preds(id);
    for (std::size_t i = 0; i < preds.size(); ++i) {
      plan.set_fused_in(id, i, false);
      const LayerId p = preds[i];
      const AccId pa = mapping.acc_of(p);
      if (pa != acc) continue;  // producer elsewhere (or host input)
      const Bytes bytes = model.edge_bytes(p);
      if (options.enforce_capacity && used + bytes > spec.dram_capacity) {
        ++stats.rejected_for_capacity;
        continue;
      }
      plan.set_fused_in(id, i, true);
      used += bytes;
      ++stats.fused_edges;
      stats.fused_bytes += bytes;
    }
  }
  plan.set_used_dram(acc, used);
  return stats;
}

}  // namespace

FusionStats optimize_activation_fusion(const Simulator& sim,
                                       const Mapping& mapping,
                                       LocalityPlan& plan,
                                       const FusionOptions& options,
                                       std::span<const AccId> only_accs) {
  plan.ensure_acc_count(sim.sys().accelerator_count());
  FusionStats total;
  const auto accumulate = [&](const FusionStats& s) {
    total.fused_edges += s.fused_edges;
    total.fused_bytes += s.fused_bytes;
    total.rejected_for_capacity += s.rejected_for_capacity;
  };
  if (only_accs.empty()) {
    for (const AccId acc : sim.sys().all_accelerators())
      accumulate(fuse_one(sim, mapping, plan, options, acc));
  } else {
    for (const AccId acc : only_accs)
      accumulate(fuse_one(sim, mapping, plan, options, acc));
  }
  return total;
}

}  // namespace h2h
