// Extensions beyond the paper's evaluation: batch streaming and the
// energy-delay-product remapping objective.
#include <gtest/gtest.h>

#include "core/planner.h"
#include "test_helpers.h"

namespace h2h {
namespace {

TEST(Batch, DefaultsToOne) {
  const ModelGraph m = testing::make_chain_model();
  EXPECT_EQ(m.batch(), 1u);
}

TEST(Batch, ScalesActivationsButNotWeights) {
  ModelGraph m = testing::make_chain_model();
  const Bytes edge1 = m.edge_bytes(LayerId{1});
  const Bytes weights = m.weight_bytes(LayerId{1});
  m.set_batch(8);
  EXPECT_EQ(m.edge_bytes(LayerId{1}), edge1 * 8);
  EXPECT_EQ(m.weight_bytes(LayerId{1}), weights);
}

TEST(Batch, ComputeAndTransfersScaleInSimulation) {
  ModelGraph m = testing::make_chain_model();
  const SystemConfig sys = testing::make_uniform_system(1);
  Mapping mapping(m);
  for (const LayerId id : m.all_layers())
    if (m.layer(id).kind != LayerKind::Input) mapping.assign(id, AccId{0});
  const LocalityPlan plan(m);

  const Simulator sim1(m, sys);
  const LayerTiming t1 = sim1.layer_components(LayerId{1}, mapping, plan);
  m.set_batch(4);
  const Simulator sim4(m, sys);
  const LayerTiming t4 = sim4.layer_components(LayerId{1}, mapping, plan);

  EXPECT_DOUBLE_EQ(t4.t_compute, 4.0 * t1.t_compute);
  EXPECT_DOUBLE_EQ(t4.t_in, 4.0 * t1.t_in);
  EXPECT_DOUBLE_EQ(t4.t_out, 4.0 * t1.t_out);
  EXPECT_DOUBLE_EQ(t4.t_weight, t1.t_weight);  // weights amortized
}

TEST(Batch, AmortizesWeightTrafficShare) {
  // With a large batch, weight transfer becomes negligible, so the step-2
  // (weight pinning) gain shrinks relative to step-3/4 (activation) gains.
  ModelGraph m1 = make_model(ZooModel::CasiaSurf);
  ModelGraph m64 = make_model(ZooModel::CasiaSurf);
  m64.set_batch(64);
  const SystemConfig sys = SystemConfig::standard(BandwidthSetting::LowMinus);
  const PlanResponse r1 = plan_once(m1, sys);
  const PlanResponse r64 = plan_once(m64, sys);
  const double step2_gain_b1 =
      1.0 - r1.steps[1].result.latency / r1.steps[0].result.latency;
  const double step2_gain_b64 =
      1.0 - r64.steps[1].result.latency / r64.steps[0].result.latency;
  EXPECT_LT(step2_gain_b64, step2_gain_b1);
  // Pipeline invariants hold under batch too.
  for (std::size_t i = 1; i < r64.steps.size(); ++i)
    EXPECT_LE(r64.steps[i].result.latency, r64.steps[i - 1].result.latency);
}

TEST(Objective, EdpNeverWorseOnEnergyDelayProduct) {
  const ModelGraph m = make_model(ZooModel::MoCap);
  const SystemConfig sys = SystemConfig::standard(BandwidthSetting::LowMinus);
  PlanOptions lat_opts;
  PlanOptions edp_opts;
  edp_opts.remap.objective = RemapObjective::EnergyDelayProduct;
  const auto edp = [](const ScheduleResult& r) {
    return r.latency * r.energy.total();
  };
  const PlanResponse r_lat = plan_once(m, sys, lat_opts);
  const PlanResponse r_edp = plan_once(m, sys, edp_opts);
  // Each greedy run must improve its own objective monotonically from the
  // shared step-3 state (hill climbing gives local, not global, optima, so
  // cross-objective dominance is not asserted).
  EXPECT_LE(edp(r_edp.final_result()), edp(r_edp.steps[2].result) * (1 + 1e-9));
  EXPECT_LE(r_lat.final_result().latency,
            r_lat.steps[2].result.latency * (1 + 1e-9));
  // Identical pipeline prefix: step-3 states agree.
  EXPECT_DOUBLE_EQ(r_lat.steps[2].result.latency,
                   r_edp.steps[2].result.latency);
}

TEST(Objective, EdpAcceptsOnlyImprovingMoves) {
  const ModelGraph m = make_model(ZooModel::CnnLstm);
  const SystemConfig sys = SystemConfig::standard(BandwidthSetting::Low);
  PlanOptions opts;
  opts.remap.objective = RemapObjective::EnergyDelayProduct;
  const PlanResponse r = plan_once(m, sys, opts);
  const auto edp = [](const ScheduleResult& s) {
    return s.latency * s.energy.total();
  };
  EXPECT_LE(edp(r.steps[3].result), edp(r.steps[2].result) * (1 + 1e-9));
}

}  // namespace
}  // namespace h2h
