// Full text report of a mapping solution: per-accelerator placement and
// load, locality statistics, critical-path decomposition, and the Gantt
// chart — the "explain this mapping" view used by h2h_cli and the examples.
#pragma once

#include <ostream>

#include "core/planner.h"
#include "repair/repair.h"
#include "system/schedule_analysis.h"
#include "tenant/co_mapper.h"

namespace h2h {

struct MappingReportOptions {
  bool per_layer = false;   // include the full layer placement table
  bool gantt = true;        // include the ASCII Gantt chart
  std::size_t gantt_width = 72;
};

/// Render a complete report of `result` for `model` on `sys`.
void print_mapping_report(const ModelGraph& model, const SystemConfig& sys,
                          const PlanResponse& result, std::ostream& out,
                          const MappingReportOptions& options = {});

/// Render a multi-tenant co-mapping report: the per-tenant SLO table
/// (solo / sequential / co-mapped latency, slack, verdict), the
/// co-vs-sequential totals, and — per `options` — the union-model Gantt
/// and per-layer placement. The union model is `result.model`.
void print_comap_report(const SystemConfig& sys, const CoMapResult& result,
                        std::ostream& out,
                        const MappingReportOptions& options = {});

/// Render one fault-repair verdict (repair/repair.h): the event, outcome,
/// latency before / under the fault / after the repair, damage-cone and
/// migration totals, and the per-layer migration table (which layer moved
/// where, and how many weight bytes must be re-staged). Infeasible results
/// print the reason instead of the migration table.
void print_repair_report(const ModelGraph& model, const SystemConfig& sys,
                         const RepairResult& result, std::ostream& out);

}  // namespace h2h
