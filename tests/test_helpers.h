// Shared fixtures for the test suite: deterministic miniature models and
// systems with numbers simple enough to verify by hand, plus random DAG and
// random system generators for property sweeps.
#pragma once

#include <cstdint>

#include "h2h.h"
#include "util/rng.h"

namespace h2h::testing {

/// A three-layer linear model: input(1KiB) -> convA -> convB -> fcC.
/// All sizes chosen for easy hand-calculation.
[[nodiscard]] ModelGraph make_chain_model();

/// A diamond: input -> a -> {b, c} -> add(d) -> fc(e).
[[nodiscard]] ModelGraph make_diamond_model();

/// Two-modality mini MMMT model with a fusion concat and two task heads
/// (modality tags 1 and 2 on the branches).
[[nodiscard]] ModelGraph make_mini_mmmt_model();

/// A spec with round numbers: 100 MACs/cycle at 1 GHz (1e11 MAC/s), 10 GB/s
/// local DRAM, `dram_capacity` local DRAM, matrix-engine dataflow, supports
/// everything. Energy: 1 pJ/MAC, 0.1 nJ/B DRAM, 1 W link.
[[nodiscard]] AcceleratorSpec simple_spec(const std::string& name,
                                          Bytes dram_capacity);

/// System of `n` identical simple_spec accelerators at `bw_acc` (default
/// 1 GB/s host links).
[[nodiscard]] SystemConfig make_uniform_system(std::size_t n,
                                               double bw_acc = 1e9,
                                               Bytes dram_capacity = gib(1));

/// A 3-accelerator heterogeneous mini system: a fast conv-only design, a
/// generic conv/fc/lstm engine, and an LSTM/FC specialist, with distinct
/// throughputs so computation-prioritized choices are predictable.
[[nodiscard]] SystemConfig make_mini_hetero_system(double bw_acc = 1e9);

/// Random layered DAG with Conv/FC/LSTM/Pool/Eltwise/Concat nodes: always a
/// valid ModelGraph (shapes agree). Node count in [4, 40].
[[nodiscard]] ModelGraph make_random_model(Rng& rng);

/// Random heterogeneous system of 2..8 accelerators with randomized specs
/// (every layer kind supported by at least one accelerator).
[[nodiscard]] SystemConfig make_random_system(Rng& rng);

}  // namespace h2h::testing
