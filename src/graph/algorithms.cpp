#include "graph/algorithms.h"

#include <algorithm>
#include <queue>

namespace h2h {

std::optional<std::vector<NodeId>> topological_order(const Digraph& g) {
  const std::size_t n = g.node_count();
  std::vector<std::uint32_t> remaining(n);
  // Min-heap on NodeId::value for deterministic tie-breaking.
  std::priority_queue<std::uint32_t, std::vector<std::uint32_t>,
                      std::greater<>> ready;
  for (std::uint32_t i = 0; i < n; ++i) {
    remaining[i] = static_cast<std::uint32_t>(g.in_degree(NodeId{i}));
    if (remaining[i] == 0) ready.push(i);
  }
  std::vector<NodeId> order;
  order.reserve(n);
  while (!ready.empty()) {
    const NodeId u{ready.top()};
    ready.pop();
    order.push_back(u);
    for (const NodeId v : g.succs(u)) {
      if (--remaining[v.value] == 0) ready.push(v.value);
    }
  }
  if (order.size() != n) return std::nullopt;
  return order;
}

bool is_dag(const Digraph& g) { return topological_order(g).has_value(); }

std::vector<bool> reachable_from(const Digraph& g, std::span<const NodeId> roots) {
  std::vector<bool> seen(g.node_count(), false);
  std::vector<NodeId> stack;
  for (const NodeId r : roots) {
    H2H_EXPECTS(g.contains(r));
    if (!seen[r.value]) {
      seen[r.value] = true;
      stack.push_back(r);
    }
  }
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    for (const NodeId v : g.succs(u)) {
      if (!seen[v.value]) {
        seen[v.value] = true;
        stack.push_back(v);
      }
    }
  }
  return seen;
}

std::vector<NodeId> frontier(const Digraph& g, const std::vector<bool>& done) {
  H2H_EXPECTS(done.size() == g.node_count());
  std::vector<NodeId> out;
  for (std::uint32_t i = 0; i < g.node_count(); ++i) {
    const NodeId n{i};
    if (done[i]) continue;
    const auto ps = g.preds(n);
    const bool all_done = std::all_of(ps.begin(), ps.end(), [&](NodeId p) {
      return done[p.value];
    });
    if (all_done) out.push_back(n);
  }
  return out;
}

FrontierWorklist::FrontierWorklist(const Digraph& g) : g_(&g) {
  const std::size_t n = g.node_count();
  remaining_.resize(n);
  completed_.assign(n, 0);
  for (std::uint32_t i = 0; i < n; ++i) {
    remaining_[i] = static_cast<std::uint32_t>(g.in_degree(NodeId{i}));
    if (remaining_[i] == 0) ready_.push_back(NodeId{i});
  }
}

void FrontierWorklist::complete(NodeId n) {
  H2H_EXPECTS(g_->contains(n));
  H2H_EXPECTS(completed_[n.value] == 0);
  completed_[n.value] = 1;
  for (const NodeId s : g_->succs(n)) {
    H2H_ASSERT(remaining_[s.value] > 0);
    if (--remaining_[s.value] == 0) ready_.push_back(s);
  }
}

bool FrontierWorklist::take_wave(std::vector<NodeId>& out) {
  out.clear();
  for (const NodeId n : ready_) {
    if (completed_[n.value] == 0) out.push_back(n);
  }
  ready_.clear();
  std::sort(out.begin(), out.end());
  return !out.empty();
}

std::vector<std::uint32_t> order_ranks(const Digraph& g,
                                       std::span<const NodeId> order) {
  H2H_EXPECTS(order.size() == g.node_count());
  std::vector<std::uint32_t> ranks(g.node_count(), NodeId::kInvalid);
  for (std::uint32_t r = 0; r < order.size(); ++r) {
    H2H_EXPECTS(g.contains(order[r]));
    H2H_EXPECTS(ranks[order[r].value] == NodeId::kInvalid);
    ranks[order[r].value] = r;
  }
  return ranks;
}

Components connected_components(const Digraph& g) {
  Components out;
  out.component_of.assign(g.node_count(), NodeId::kInvalid);
  std::vector<NodeId> stack;
  for (std::uint32_t i = 0; i < g.node_count(); ++i) {
    if (out.component_of[i] != NodeId::kInvalid) continue;
    const std::uint32_t comp = out.count++;
    out.component_of[i] = comp;
    stack.push_back(NodeId{i});
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      const auto visit = [&](NodeId v) {
        if (out.component_of[v.value] == NodeId::kInvalid) {
          out.component_of[v.value] = comp;
          stack.push_back(v);
        }
      };
      for (const NodeId v : g.succs(u)) visit(v);
      for (const NodeId v : g.preds(u)) visit(v);
    }
  }
  return out;
}

}  // namespace h2h
