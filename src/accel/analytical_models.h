// Analytical accelerator implementations.
//
// AnalyticalAccelerator is the workhorse: compute latency =
//   macs / (peak_macs_per_cycle * utilization(style, pe, layer) * freq)
// + light_ops / (peak_macs_per_cycle * freq) for vector work.
//
// LambdaAccelerator demonstrates the plug-in contract: any user-provided
// latency/energy functions become a system component (used by the
// custom_accelerator example and by tests to inject adversarial models).
#pragma once

#include <functional>

#include "accel/accelerator_model.h"

namespace h2h {

class AnalyticalAccelerator final : public AcceleratorModel {
 public:
  explicit AnalyticalAccelerator(AcceleratorSpec spec);

  [[nodiscard]] const AcceleratorSpec& spec() const noexcept override {
    return spec_;
  }
  [[nodiscard]] double compute_latency(const Layer& layer) const override;

 private:
  AcceleratorSpec spec_;
};

class LambdaAccelerator final : public AcceleratorModel {
 public:
  using LatencyFn = std::function<double(const Layer&)>;
  using EnergyFn = std::function<double(const Layer&)>;

  /// `energy` may be null: the base-class coefficient model is used then.
  LambdaAccelerator(AcceleratorSpec spec, LatencyFn latency,
                    EnergyFn energy = nullptr);

  [[nodiscard]] const AcceleratorSpec& spec() const noexcept override {
    return spec_;
  }
  [[nodiscard]] double compute_latency(const Layer& layer) const override;
  [[nodiscard]] double compute_energy(const Layer& layer) const override;

 private:
  AcceleratorSpec spec_;
  LatencyFn latency_;
  EnergyFn energy_;
};

/// Factory for the standard analytical implementation.
[[nodiscard]] AcceleratorPtr make_analytical(AcceleratorSpec spec);

}  // namespace h2h
