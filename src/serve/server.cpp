#include "serve/server.h"

#include <condition_variable>
#include <deque>
#include <istream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <thread>
#include <utility>
#include <vector>

#include "serve/protocol.h"
#include "util/str.h"

#if defined(__unix__) || defined(__APPLE__)
#define H2H_SERVE_HAS_TCP 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#else
#define H2H_SERVE_HAS_TCP 0
#endif

namespace h2h::serve {
namespace {

/// Everything one request needs besides the line itself: the shared Planner
/// and the name sources write_response reads. Lives across connections so a
/// reconnecting client still hits warm sessions.
class RequestProcessor {
 public:
  explicit RequestProcessor(const PlannerOptions& planner_options)
      : planner_(planner_options),
        name_sys_(SystemConfig::standard(0.5e9)) {}

  struct Outcome {
    std::string line;
    bool ok = false;
  };

  [[nodiscard]] Outcome process(const std::string& line) {
    std::variant<WireRequest, WireError> parsed = parse_request(line);
    if (const WireError* err = std::get_if<WireError>(&parsed)) {
      return {write_error(*err), false};
    }
    const WireRequest& req = std::get<WireRequest>(parsed);
    try {
      const PlanResponse response = planner_.plan(to_plan_request(req));
      return {write_response(req, response, model_for(req.model), name_sys_),
              true};
    } catch (const std::exception& e) {
      // Explicit error responses instead of exceptions crossing the wire:
      // an infeasible request must not take the loop down.
      return {write_error({ErrorCode::PlanFailed, e.what(), req.id}), false};
    }
  }

 private:
  /// Graphs are only needed for layer names in responses; one cached copy
  /// per zoo model serves every request (read-only once built).
  [[nodiscard]] const ModelGraph& model_for(ZooModel id) {
    const std::scoped_lock lock(models_mu_);
    std::unique_ptr<const ModelGraph>& slot = models_[id];
    if (slot == nullptr) {
      slot = std::make_unique<const ModelGraph>(make_model(id));
    }
    return *slot;
  }

  Planner planner_;
  SystemConfig name_sys_;  // accelerator names only; BW value irrelevant
  std::mutex models_mu_;
  std::map<ZooModel, std::unique_ptr<const ModelGraph>> models_;
};

/// Reorders completed responses back into request order. Whichever thread
/// completes the next-expected sequence number drains everything
/// consecutive, so output needs no dedicated writer thread.
class OrderedEmitter {
 public:
  explicit OrderedEmitter(std::ostream& out) : out_(out) {}

  void emit(std::uint64_t seq, std::string line, bool ok) {
    const std::scoped_lock lock(mu_);
    (ok ? stats_.ok : stats_.errors) += 1;
    ready_.emplace(seq, std::move(line));
    while (!ready_.empty() && ready_.begin()->first == next_) {
      out_ << ready_.begin()->second << '\n';
      out_.flush();
      ready_.erase(ready_.begin());
      ++next_;
    }
  }

  [[nodiscard]] ServeStats stats() const {
    const std::scoped_lock lock(mu_);
    return stats_;
  }

 private:
  std::ostream& out_;
  mutable std::mutex mu_;
  std::map<std::uint64_t, std::string> ready_;
  std::uint64_t next_ = 0;
  ServeStats stats_;
};

enum class LineStatus { Ok, Oversized, Eof };

/// getline with a byte cap: oversized lines are consumed to their newline
/// but truncated in `line`, and reported so the caller can answer with a
/// proper error instead of parsing the truncation.
[[nodiscard]] LineStatus read_line(std::istream& in, std::string& line,
                                   std::size_t cap) {
  line.clear();
  bool over = false;
  bool any = false;
  for (int c = in.get(); c != std::istream::traits_type::eof();
       c = in.get()) {
    any = true;
    if (c == '\n') return over ? LineStatus::Oversized : LineStatus::Ok;
    if (line.size() < cap) {
      line += static_cast<char>(c);
    } else {
      over = true;
    }
  }
  if (!any) return LineStatus::Eof;
  return over ? LineStatus::Oversized : LineStatus::Ok;
}

[[nodiscard]] std::string oversized_error(std::size_t cap) {
  return write_error({ErrorCode::ParseError,
                      strformat("request line exceeds %zu bytes", cap),
                      {}});
}

ServeStats run_loop(RequestProcessor& processor, std::istream& in,
                    std::ostream& out, const ServeOptions& options) {
  OrderedEmitter emitter(out);
  ServeStats totals;
  std::string line;
  std::uint64_t seq = 0;

  if (options.threads <= 1) {
    for (;;) {
      const LineStatus status = read_line(in, line, options.max_line_bytes);
      if (status == LineStatus::Eof) break;
      if (status == LineStatus::Ok && line.empty()) continue;
      ++totals.requests;
      if (status == LineStatus::Oversized) {
        emitter.emit(seq++, oversized_error(options.max_line_bytes), false);
        continue;
      }
      RequestProcessor::Outcome o = processor.process(line);
      emitter.emit(seq++, std::move(o.line), o.ok);
    }
    const ServeStats s = emitter.stats();
    totals.ok = s.ok;
    totals.errors = s.errors;
    return totals;
  }

  std::mutex mu;
  std::condition_variable work_cv;   // workers wait for lines
  std::condition_variable space_cv;  // reader waits for inbox room
  std::deque<std::pair<std::uint64_t, std::string>> inbox;
  bool done = false;
  const std::size_t inbox_cap = options.threads * 8;

  std::vector<std::thread> workers;
  workers.reserve(options.threads);
  for (std::size_t i = 0; i < options.threads; ++i) {
    workers.emplace_back([&] {
      for (;;) {
        std::unique_lock lock(mu);
        work_cv.wait(lock, [&] { return done || !inbox.empty(); });
        if (inbox.empty()) return;
        const std::uint64_t my_seq = inbox.front().first;
        const std::string my_line = std::move(inbox.front().second);
        inbox.pop_front();
        space_cv.notify_one();
        lock.unlock();
        RequestProcessor::Outcome o = processor.process(my_line);
        emitter.emit(my_seq, std::move(o.line), o.ok);
      }
    });
  }

  for (;;) {
    const LineStatus status = read_line(in, line, options.max_line_bytes);
    if (status == LineStatus::Eof) break;
    if (status == LineStatus::Ok && line.empty()) continue;
    ++totals.requests;
    if (status == LineStatus::Oversized) {
      emitter.emit(seq++, oversized_error(options.max_line_bytes), false);
      continue;
    }
    std::unique_lock lock(mu);
    space_cv.wait(lock, [&] { return inbox.size() < inbox_cap; });
    inbox.emplace_back(seq++, line);
    work_cv.notify_one();
  }
  {
    const std::scoped_lock lock(mu);
    done = true;
  }
  work_cv.notify_all();
  for (std::thread& t : workers) t.join();

  const ServeStats s = emitter.stats();
  totals.ok = s.ok;
  totals.errors = s.errors;
  return totals;
}

#if H2H_SERVE_HAS_TCP

/// Buffered std::streambuf over a connected socket; serves as both the get
/// and put area so one buffer backs the connection's istream and ostream.
class FdStreamBuf : public std::streambuf {
 public:
  explicit FdStreamBuf(int fd) : fd_(fd) {
    setp(out_, out_ + sizeof(out_) - 1);
  }
  ~FdStreamBuf() override { sync(); }

 protected:
  int_type underflow() override {
    const ssize_t n = ::read(fd_, in_, sizeof(in_));
    if (n <= 0) return traits_type::eof();
    setg(in_, in_, in_ + n);
    return traits_type::to_int_type(in_[0]);
  }

  int_type overflow(int_type ch) override {
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
      *pptr() = traits_type::to_char_type(ch);
      pbump(1);
    }
    return flush_out() == 0 ? traits_type::not_eof(ch) : traits_type::eof();
  }

  int sync() override { return flush_out(); }

 private:
  int flush_out() {
    const std::size_t n = static_cast<std::size_t>(pptr() - pbase());
    std::size_t off = 0;
    while (off < n) {
      const ssize_t w = ::write(fd_, pbase() + off, n - off);
      if (w <= 0) return -1;
      off += static_cast<std::size_t>(w);
    }
    pbump(-static_cast<int>(n));
    return 0;
  }

  int fd_;
  char in_[4096] = {};
  char out_[4096] = {};
};

#endif  // H2H_SERVE_HAS_TCP

}  // namespace

ServeStats serve_jsonl(std::istream& in, std::ostream& out,
                       const ServeOptions& options) {
  RequestProcessor processor(options.planner);
  return run_loop(processor, in, out, options);
}

int serve_tcp(const TcpOptions& options, std::ostream& diag) {
#if H2H_SERVE_HAS_TCP
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    diag << "h2h-serve: socket: " << std::strerror(errno) << '\n';
    return 1;
  }
  const int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options.port);
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd, 16) != 0) {
    diag << "h2h-serve: bind/listen: " << std::strerror(errno) << '\n';
    ::close(listen_fd);
    return 1;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  diag << "h2h-serve listening on 127.0.0.1:" << ntohs(bound.sin_port)
       << std::endl;

  // One processor across connections: a client that reconnects keeps its
  // warm sessions.
  RequestProcessor processor(options.serve.planner);
  for (std::uint64_t served = 0;
       options.max_connections == 0 || served < options.max_connections;
       ++served) {
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) {
        --served;
        continue;
      }
      diag << "h2h-serve: accept: " << std::strerror(errno) << '\n';
      ::close(listen_fd);
      return 1;
    }
    FdStreamBuf buf(conn);
    std::istream conn_in(&buf);
    std::ostream conn_out(&buf);
    const ServeStats stats =
        run_loop(processor, conn_in, conn_out, options.serve);
    conn_out.flush();
    ::close(conn);
    diag << "h2h-serve: connection done (" << stats.requests << " requests, "
         << stats.errors << " errors)" << std::endl;
  }
  ::close(listen_fd);
  return 0;
#else
  (void)options;
  diag << "h2h-serve: TCP serving is not supported on this platform\n";
  return 1;
#endif
}

}  // namespace h2h::serve
