// Ablation: cost of one step-4 candidate probe. Since the delta-evaluation
// refactor a probe re-runs steps 2-3 as a delta over the moved layer and its
// neighbours (falling back to the full per-accelerator pass only under
// capacity pressure), reuses knapsack solves through a memoizing cache, and
// evaluates the schedule into IncrementalSchedule's overlay instead of
// journaled apply/undo. This driver isolates those knobs:
//
//   /0  full       — per-probe steps 2-3 re-run both touched accelerators
//   /1  delta      — delta passes, knapsack cache off
//   /2  delta+$    — delta passes, knapsack cache on (the default)
//   /3  delta+$+▽  — /2 plus the cone-limited retime sweep
//                    (RemapOptions::use_retime_cone; off by default — see
//                    the rationale in remapping.h)
//
// All modes land on bit-identical mappings (asserted by the table up front
// and pinned in test_remapping.cpp). BM_RemapLoop uses the standard catalog
// (large local DRAM: the delta path almost never needs a knapsack);
// BM_RemapLoopPressured shrinks local DRAM below the weight footprint so
// every probe fights the knapsack frontier — the regime the cache exists
// for.
#include <benchmark/benchmark.h>

#include <array>
#include <chrono>
#include <cstring>
#include <iostream>
#include <limits>
#include <utility>

#include "h2h.h"

namespace {

using namespace h2h;

struct Prepared {
  ModelGraph model;
  SystemConfig sys;
  Mapping mapping;
  LocalityPlan plan;
};

Prepared prepare(ModelGraph model, SystemConfig sys) {
  const Simulator sim(model, sys);
  Mapping mapping = computation_prioritized_mapping(sim);
  LocalityPlan plan(model);
  plan.ensure_acc_count(sys.accelerator_count());
  optimize_weight_locality(sim, mapping, plan);
  optimize_activation_fusion(sim, mapping, plan);
  return Prepared{std::move(model), std::move(sys), std::move(mapping),
                  std::move(plan)};
}

RemapOptions probe_options(int mode) {
  RemapOptions opts;
  opts.use_delta_locality = mode >= 1;
  opts.use_knapsack_cache = mode >= 2;
  opts.use_retime_cone = mode >= 3;
  return opts;
}

const char* mode_label(int mode) {
  switch (mode) {
    case 0: return "full-steps23-rerun";
    case 1: return "delta-steps23";
    case 2: return "delta-steps23+knap-cache";
    default: return "delta-steps23+knap-cache+retime-cone";
  }
}

/// A DRAM-starved uniform system: capacity far below any zoo model's weight
/// footprint, so the step-2 knapsack frontier moves on every probe.
SystemConfig pressured_system(std::size_t n, Bytes dram_capacity) {
  std::vector<AcceleratorPtr> accs;
  for (std::size_t i = 0; i < n; ++i) {
    AcceleratorSpec spec;
    spec.name = strformat("P%zu", i);
    spec.description = "DRAM-starved bench accelerator";
    spec.board = "bench";
    spec.style = DataflowStyle::MatrixEngine;
    spec.kinds = KindSupport{true, true, true};
    spec.peak_macs_per_cycle = 100;
    spec.pe = PeArray{10, 10};
    spec.freq_hz = 1e9;
    spec.dram_bandwidth = 10e9;
    spec.dram_capacity = dram_capacity;
    spec.energy_per_mac = picojoules(1);
    spec.energy_per_dram_byte = nanojoules(0.1);
    spec.link_power = 1.0;
    accs.push_back(make_analytical(std::move(spec)));
  }
  HostParams host;
  host.bw_acc = 0.125e9;
  return SystemConfig(std::move(accs), host);
}

void run_loop(benchmark::State& state, Prepared& p, const Simulator& sim) {
  const RemapOptions opts = probe_options(static_cast<int>(state.range(0)));
  std::uint64_t attempts = 0;
  std::uint64_t hits = 0;
  std::uint64_t full_passes = 0;
  for (auto _ : state) {
    Mapping mapping = p.mapping;
    LocalityPlan plan = p.plan;
    const RemapStats stats = data_locality_remapping(sim, mapping, plan, opts);
    attempts += stats.attempts;
    hits += stats.knapsack_hits;
    full_passes += stats.delta_full_passes;
    benchmark::DoNotOptimize(plan.pinned_count());
  }
  state.SetLabel(mode_label(static_cast<int>(state.range(0))));
  state.counters["probes"] = benchmark::Counter(
      static_cast<double>(attempts), benchmark::Counter::kIsRate);
  state.counters["knap_hits"] = benchmark::Counter(
      static_cast<double>(hits), benchmark::Counter::kIsRate);
  state.counters["full_passes"] = benchmark::Counter(
      static_cast<double>(full_passes), benchmark::Counter::kIsRate);
}

void BM_RemapLoop(benchmark::State& state) {
  Prepared p = prepare(make_vlocnet(),
                       SystemConfig::standard(BandwidthSetting::LowMinus));
  const Simulator sim(p.model, p.sys);
  run_loop(state, p, sim);
}
BENCHMARK(BM_RemapLoop)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond);

void BM_RemapLoopPressured(benchmark::State& state) {
  Prepared p = prepare(make_vlocnet(), pressured_system(6, mib(4)));
  const Simulator sim(p.model, p.sys);
  run_loop(state, p, sim);
}
BENCHMARK(BM_RemapLoopPressured)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond);

/// Remap-loop seconds for one prepared instance (best of `reps`).
double remap_seconds(const Prepared& p, const Simulator& sim, int mode,
                     RemapStats& stats, int reps = 3) {
  const RemapOptions opts = probe_options(mode);
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    Mapping mapping = p.mapping;
    LocalityPlan plan = p.plan;
    const auto t0 = std::chrono::steady_clock::now();
    stats = data_locality_remapping(sim, mapping, plan, opts);
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  // Profiled runs (--benchmark_filter present) skip the verification
  // preamble: its un-timed setup work used to dominate gprof samples and get
  // misattributed to the benchmarks (bench/README.md). Other --benchmark_*
  // flags (CI smoke's --benchmark_min_time) keep the preamble's assertions.
  bool filtered = false;
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--benchmark_filter", 18) == 0) filtered = true;

  if (!filtered) {
    TextTable table({"model", "latency (s)", "full23 (ms)", "delta (ms)",
                     "delta+$ (ms)", "+cone (ms)", "speedup", "knap hit/miss",
                     "full passes"},
                    {TextTable::Align::Left});
    for (const ZooInfo& info : zoo_catalog()) {
      Prepared p = prepare(make_model(info.id), pressured_system(6, mib(4)));
      const Simulator sim(p.model, p.sys);

      std::array<RemapStats, 4> stats;
      std::array<double, 4> secs{};
      for (int mode = 0; mode < 4; ++mode)
        secs[mode] = remap_seconds(p, sim, mode, stats[mode]);

      // All strategies must land on the same mapping quality.
      std::array<double, 4> lat{};
      for (int mode = 0; mode < 4; ++mode) {
        Mapping mapping = p.mapping;
        LocalityPlan plan = p.plan;
        (void)data_locality_remapping(sim, mapping, plan, probe_options(mode));
        lat[mode] = sim.simulate(mapping, plan).latency;
      }
      if (lat[0] != lat[1] || lat[0] != lat[2] || lat[0] != lat[3]) {
        std::cerr << "MISMATCH on " << info.key << ": full " << lat[0]
                  << " vs delta " << lat[1] << " vs cached " << lat[2]
                  << " vs cone " << lat[3] << '\n';
        return 1;
      }

      table.add_row(
          {std::string(info.key), strformat("%.6f", lat[2]),
           strformat("%.3f", secs[0] * 1e3), strformat("%.3f", secs[1] * 1e3),
           strformat("%.3f", secs[2] * 1e3), strformat("%.3f", secs[3] * 1e3),
           strformat("%.1fx", secs[0] / std::max(secs[2], 1e-9)),
           strformat("%llu/%llu",
                     static_cast<unsigned long long>(stats[2].knapsack_hits),
                     static_cast<unsigned long long>(stats[2].knapsack_misses)),
           strformat("%llu", static_cast<unsigned long long>(
                                 stats[2].delta_full_passes))});
    }
    std::cout << "step-4 probe cost under DRAM pressure: full steps-2/3 "
                 "re-run vs delta passes vs delta + knapsack cache vs + "
                 "retime cone @ 0.125 GB/s (latencies asserted equal):\n";
    table.print(std::cout);
    std::cout << '\n';
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
