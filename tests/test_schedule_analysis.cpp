#include <gtest/gtest.h>

#include <sstream>

#include "core/planner.h"
#include "system/schedule_analysis.h"
#include "test_helpers.h"

namespace h2h {
namespace {

struct Scheduled {
  ModelGraph model;
  SystemConfig sys;
  PlanResponse result;
};

Scheduled schedule_mini() {
  ModelGraph model = testing::make_mini_mmmt_model();
  SystemConfig sys = testing::make_mini_hetero_system(0.125e9);
  PlanResponse r = plan_once(model, sys);
  return Scheduled{std::move(model), std::move(sys), std::move(r)};
}

TEST(CriticalPath, EndsAtMakespanAndIsContiguous) {
  const Scheduled s = schedule_mini();
  const ScheduleResult& sched = s.result.final_result();
  const auto path = critical_path(s.model, s.result.mapping, sched);
  ASSERT_FALSE(path.empty());
  // Last hop finishes exactly at the makespan.
  EXPECT_DOUBLE_EQ(sched.timings[path.back().layer.value].finish,
                   sched.latency);
  // Every consecutive pair is glued: blocker's finish == layer's start.
  for (std::size_t i = 1; i < path.size(); ++i) {
    EXPECT_EQ(path[i].blocker, path[i - 1].layer);
    EXPECT_DOUBLE_EQ(sched.timings[path[i].blocker.value].finish,
                     sched.timings[path[i].layer.value].start);
    EXPECT_NE(path[i].reason, CriticalHop::Reason::Source);
  }
  // The first hop started unconstrained (or at time zero).
  EXPECT_EQ(path.front().reason, CriticalHop::Reason::Source);
}

TEST(CriticalPath, BreakdownSumsToMakespan) {
  const Scheduled s = schedule_mini();
  const ScheduleResult& sched = s.result.final_result();
  const CriticalPathBreakdown b =
      critical_path_breakdown(s.model, s.result.mapping, sched);
  EXPECT_NEAR(b.total, sched.latency, sched.latency * 1e-9);
  EXPECT_GE(b.compute_time, 0.0);
  EXPECT_GE(b.host_time, 0.0);
  EXPECT_GE(b.wait_time, 0.0);
}

TEST(AcceleratorLoads, BusyPlusIdleEqualsMakespan) {
  const Scheduled s = schedule_mini();
  const ScheduleResult& sched = s.result.final_result();
  const auto loads =
      accelerator_loads(s.model, s.sys, s.result.mapping, sched);
  ASSERT_EQ(loads.size(), s.sys.accelerator_count());
  std::size_t total_layers = 0;
  for (const AcceleratorLoad& load : loads) {
    EXPECT_NEAR(load.busy_time + load.idle_time, sched.latency,
                sched.latency * 1e-9);
    EXPECT_GE(load.utilization(sched.latency), 0.0);
    EXPECT_LE(load.utilization(sched.latency), 1.0 + 1e-12);
    total_layers += load.layer_count;
  }
  // Every non-input layer is on exactly one accelerator.
  std::size_t expect = 0;
  for (const LayerId id : s.model.all_layers())
    if (s.model.layer(id).kind != LayerKind::Input) ++expect;
  EXPECT_EQ(total_layers, expect);
}

TEST(AcceleratorLoads, EmptyAcceleratorIsAllIdle) {
  const ModelGraph model = testing::make_chain_model();
  const SystemConfig sys = testing::make_uniform_system(3);
  const Simulator sim(model, sys);
  Mapping mapping(model);
  for (const LayerId id : model.all_layers())
    if (model.layer(id).kind != LayerKind::Input) mapping.assign(id, AccId{0});
  const LocalityPlan plan(model);
  const ScheduleResult r = sim.simulate(mapping, plan);
  const auto loads = accelerator_loads(model, sys, mapping, r);
  EXPECT_EQ(loads[1].layer_count, 0u);
  EXPECT_DOUBLE_EQ(loads[1].busy_time, 0.0);
  EXPECT_NEAR(loads[1].idle_time, r.latency, 1e-15);
}

TEST(Gantt, RendersOneRowPerAccelerator) {
  const Scheduled s = schedule_mini();
  std::ostringstream out;
  print_gantt(s.model, s.sys, s.result.mapping, s.result.final_result(), out,
              40);
  const std::string text = out.str();
  // Header + one row per accelerator.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'),
            static_cast<std::ptrdiff_t>(1 + s.sys.accelerator_count()));
  EXPECT_NE(text.find('#'), std::string::npos);
  EXPECT_NE(text.find("CONV"), std::string::npos);
}

TEST(Gantt, BusyColumnsMatchLoad) {
  // A fully serial chain on one accelerator: its row must be all '#'.
  const ModelGraph model = testing::make_chain_model();
  const SystemConfig sys = testing::make_uniform_system(1);
  const Simulator sim(model, sys);
  Mapping mapping(model);
  for (const LayerId id : model.all_layers())
    if (model.layer(id).kind != LayerKind::Input) mapping.assign(id, AccId{0});
  const LocalityPlan plan(model);
  const ScheduleResult r = sim.simulate(mapping, plan);
  std::ostringstream out;
  print_gantt(model, sys, mapping, r, out, 20);
  const std::string text = out.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), '#'), 20);
  // No idle columns in the row itself (the header line contains dots in
  // formatted numbers, so inspect only the accelerator row).
  const std::string row = text.substr(text.find('\n') + 1);
  EXPECT_EQ(row.find('.'), std::string::npos);
}

}  // namespace
}  // namespace h2h
