#include "util/error.h"

// Out-of-line key functions keep vtables in one translation unit.
// (Both exception types are final and header-only otherwise.)

namespace h2h {
namespace {
// Nothing required; this TU exists so the library has a stable object for
// the error types and to anchor future error-category additions.
}  // namespace
}  // namespace h2h
