#include "model/model_builder.h"

#include "util/error.h"
#include "util/str.h"

namespace h2h {

ModelBuilder::ModelBuilder(std::string name, std::uint32_t dtype_bytes)
    : model_(std::move(name), dtype_bytes) {}

LayerId ModelBuilder::add(Layer layer, std::span<const LayerId> inputs,
                          Geometry geo) {
  layer.modality = modality_;
  const LayerId id = model_.add_layer(std::move(layer), inputs);
  geo_.push_back(geo);
  return id;
}

const ModelBuilder::Geometry& ModelBuilder::geometry(LayerId id) const {
  H2H_EXPECTS(id.valid() && id.value < geo_.size());
  return geo_[id.value];
}

LayerId ModelBuilder::input(const std::string& name, std::uint32_t channels,
                            std::uint32_t h, std::uint32_t w) {
  H2H_EXPECTS(channels > 0 && h > 0 && w > 0);
  Layer l{name, LayerKind::Input, InputShape{channels, h, w}};
  return add(std::move(l), {}, Geometry{channels, h, w, 0});
}

LayerId ModelBuilder::input_seq(const std::string& name, std::uint32_t seq_len,
                                std::uint32_t features) {
  H2H_EXPECTS(seq_len > 0 && features > 0);
  Layer l{name, LayerKind::Input, InputShape{features, seq_len, 1}};
  return add(std::move(l), {}, Geometry{features, seq_len, 1, seq_len});
}

LayerId ModelBuilder::conv(const std::string& name, LayerId from,
                           std::uint32_t out_channels, std::uint32_t kernel,
                           std::uint32_t stride) {
  const Geometry& in = geometry(from);
  H2H_EXPECTS(out_channels > 0 && kernel > 0 && stride > 0);
  if (in.channels == 0)
    throw ConfigError(strformat("conv '%s': producer has no channel structure",
                                name.c_str()));
  const std::uint32_t oh = ceil_div(in.h, stride);
  const std::uint32_t ow = ceil_div(in.w, stride);
  Layer l{name, LayerKind::Conv,
          ConvShape{out_channels, in.channels, oh, ow, kernel, stride}};
  const LayerId ids[] = {from};
  return add(std::move(l), ids, Geometry{out_channels, oh, ow, in.seq ? oh : 0});
}

LayerId ModelBuilder::conv1d(const std::string& name, LayerId from,
                             std::uint32_t out_channels, std::uint32_t kernel,
                             std::uint32_t stride) {
  const Geometry& in = geometry(from);
  H2H_EXPECTS(out_channels > 0 && kernel > 0 && stride > 0);
  if (in.w != 1)
    throw ConfigError(strformat("conv1d '%s': producer is not sequence-shaped",
                                name.c_str()));
  const std::uint32_t oh = ceil_div(in.h, stride);
  Layer l{name, LayerKind::Conv,
          ConvShape{out_channels, in.channels, oh, 1, kernel, stride,
                    /*kernel_w=*/1}};
  const LayerId ids[] = {from};
  return add(std::move(l), ids, Geometry{out_channels, oh, 1, oh});
}

LayerId ModelBuilder::pool(const std::string& name, LayerId from,
                           std::uint32_t kernel, std::uint32_t stride) {
  const Geometry& in = geometry(from);
  H2H_EXPECTS(kernel > 0 && stride > 0);
  const std::uint32_t oh = ceil_div(in.h, stride);
  const std::uint32_t ow = ceil_div(in.w, stride);
  Layer l{name, LayerKind::Pool, PoolShape{in.channels, oh, ow, kernel, stride}};
  const LayerId ids[] = {from};
  return add(std::move(l), ids, Geometry{in.channels, oh, ow, in.seq ? oh : 0});
}

LayerId ModelBuilder::global_pool(const std::string& name, LayerId from) {
  const Geometry& in = geometry(from);
  Layer l{name, LayerKind::Pool,
          PoolShape{in.channels, 1, 1, /*kernel=*/in.h, /*stride=*/in.h}};
  const LayerId ids[] = {from};
  return add(std::move(l), ids, Geometry{in.channels, 1, 1, 0});
}

LayerId ModelBuilder::fc(const std::string& name, LayerId from,
                         std::uint32_t out_features) {
  const Geometry& in = geometry(from);
  H2H_EXPECTS(out_features > 0);
  const std::uint64_t in_features = in.elems();
  if (in_features == 0 || in_features > 0xFFFFFFFFull)
    throw ConfigError(strformat("fc '%s': bad flattened input size", name.c_str()));
  Layer l{name, LayerKind::FullyConnected,
          FcShape{static_cast<std::uint32_t>(in_features), out_features}};
  const LayerId ids[] = {from};
  return add(std::move(l), ids, Geometry{out_features, 1, 1, 0});
}

LayerId ModelBuilder::lstm(const std::string& name, LayerId from,
                           std::uint32_t hidden_size, std::uint32_t layers,
                           std::uint32_t seq_len) {
  const Geometry& in = geometry(from);
  H2H_EXPECTS(hidden_size > 0 && layers > 0);
  const std::uint32_t seq = seq_len != 0 ? seq_len : in.seq;
  if (seq == 0)
    throw ConfigError(
        strformat("lstm '%s': producer has no sequence structure and no "
                  "seq_len was given", name.c_str()));
  const std::uint64_t elems = in.elems();
  if (elems % seq != 0)
    throw ConfigError(strformat(
        "lstm '%s': producer elems (%llu) not divisible by seq_len (%u)",
        name.c_str(), static_cast<unsigned long long>(elems), seq));
  const auto in_size = static_cast<std::uint32_t>(elems / seq);
  Layer l{name, LayerKind::Lstm, LstmShape{in_size, hidden_size, layers, seq}};
  const LayerId ids[] = {from};
  return add(std::move(l), ids, Geometry{hidden_size, seq, 1, seq});
}

LayerId ModelBuilder::eltwise(const std::string& name, LayerId a, LayerId b) {
  const Geometry& ga = geometry(a);
  const Geometry& gb = geometry(b);
  if (ga.elems() != gb.elems())
    throw ConfigError(strformat("eltwise '%s': input sizes differ (%llu vs %llu)",
                                name.c_str(),
                                static_cast<unsigned long long>(ga.elems()),
                                static_cast<unsigned long long>(gb.elems())));
  Layer l{name, LayerKind::Eltwise, EltwiseShape{ga.channels, ga.h, ga.w}};
  const LayerId ids[] = {a, b};
  return add(std::move(l), ids, ga);
}

LayerId ModelBuilder::concat(const std::string& name,
                             std::span<const LayerId> inputs) {
  H2H_EXPECTS(inputs.size() >= 2);
  const Geometry& g0 = geometry(inputs.front());
  std::uint32_t channels = 0;
  for (const LayerId in : inputs) {
    const Geometry& g = geometry(in);
    if (g.h != g0.h || g.w != g0.w)
      throw ConfigError(strformat(
          "concat '%s': spatial mismatch (%ux%u vs %ux%u)", name.c_str(), g.h,
          g.w, g0.h, g0.w));
    channels += g.channels;
  }
  Layer l{name, LayerKind::Concat, ConcatShape{channels, g0.h, g0.w}};
  return add(std::move(l), inputs, Geometry{channels, g0.h, g0.w, g0.seq});
}

ModelGraph ModelBuilder::build(bool validate) && {
  if (validate) model_.validate();
  return std::move(model_);
}

}  // namespace h2h
