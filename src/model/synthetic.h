// Parameterized synthetic MMMT generator.
//
// The paper's conclusion stresses that H2H "can be easily configured to
// catch up with ... the growing size of DNN models". This generator builds
// MMMT models of arbitrary scale — N modality backbones (vision conv stacks
// and/or recurrent stacks), cross-talk links between neighbouring
// backbones, a fusion trunk, and task heads — for the scaling experiments
// (search time vs layer count) and for stress tests beyond the six Table-2
// models.
#pragma once

#include <cstdint>

#include "model/model_graph.h"

namespace h2h {

struct SyntheticMmmtSpec {
  std::uint32_t modalities = 3;       // total backbones, >= 1
  std::uint32_t lstm_modalities = 1;  // how many of them are recurrent
  std::uint32_t backbone_depth = 8;   // conv (or conv1d) layers per backbone
  double width = 1.0;                 // channel-count multiplier
  std::uint32_t fusion_fc_layers = 2; // depth of the joint MLP
  std::uint32_t task_heads = 2;       // multi-task outputs
  std::uint32_t input_hw = 112;       // vision input resolution
  std::uint32_t seq_len = 64;         // recurrent input length
  bool cross_talk = true;             // lateral links between backbones
  std::uint64_t seed = 1;             // deterministic channel jitter

  void validate() const;  // throws ConfigError on nonsensical combinations
};

[[nodiscard]] ModelGraph make_synthetic_mmmt(const SyntheticMmmtSpec& spec);

/// A synthetic transformer encoder for the scaling experiments: an embedding
/// projection, `blocks` residual blocks (per-head QK/V projections feeding a
/// concat + output projection, then a two-layer feed-forward, each with an
/// element-wise residual), and a task head. The attention score itself is not
/// a layer — the cost model prices tensors and weights, and the projections
/// dominate both — but the connectivity (fan-out to heads, residual
/// shortcuts) matches what the mapper has to schedule in a real encoder.
struct SyntheticTransformerSpec {
  std::uint32_t blocks = 2;    // encoder blocks, >= 1
  std::uint32_t heads = 4;     // attention heads per block, >= 1
  std::uint32_t d_model = 256; // embedding width
  std::uint32_t d_head = 0;    // per-head width; 0 = d_model / heads
  std::uint32_t d_ff = 0;      // feed-forward width; 0 = 4 * d_model
  std::uint32_t seq_len = 64;  // token count
  std::uint64_t seed = 1;      // deterministic per-head width jitter

  void validate() const;  // throws ConfigError on nonsensical combinations

  /// Exact layer count of make_synthetic_transformer on this spec:
  /// input + embed + blocks * (2*heads + concat + proj + 2 ff + 2 residual)
  /// + head, where the concat layer exists only for multi-head blocks.
  [[nodiscard]] std::uint64_t layer_count() const noexcept {
    return 3 + static_cast<std::uint64_t>(blocks) * layers_per_block(heads);
  }
  /// Smallest block count whose layer_count() reaches `target_layers`.
  [[nodiscard]] static std::uint32_t blocks_for_layers(
      std::uint64_t target_layers, std::uint32_t heads) noexcept {
    const std::uint64_t per_block = layers_per_block(heads);
    const std::uint64_t body = target_layers > 3 ? target_layers - 3 : 1;
    return static_cast<std::uint32_t>((body + per_block - 1) / per_block);
  }
  [[nodiscard]] static std::uint64_t layers_per_block(
      std::uint32_t heads) noexcept {
    return 2ull * heads + 5 + (heads >= 2 ? 1 : 0);
  }
};

[[nodiscard]] ModelGraph make_synthetic_transformer(
    const SyntheticTransformerSpec& spec);

}  // namespace h2h
