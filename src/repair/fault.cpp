#include "repair/fault.h"

#include <charconv>

#include "util/contracts.h"
#include "util/error.h"
#include "util/str.h"

namespace h2h {
namespace {

constexpr std::string_view kFaultUsage =
    "expected lose:<acc> | return:<acc> | degrade:<acc>=<scale> | "
    "restore:<acc> | derate:<acc>=<scale> (scale in (0, 1])";

[[nodiscard]] double require_scale(double scale, std::string_view what) {
  if (!(scale > 0) || scale > 1)
    throw ConfigError(strformat("fault: %.*s scale must be in (0, 1]",
                                static_cast<int>(what.size()), what.data()));
  return scale;
}

[[nodiscard]] std::uint32_t parse_acc_index(std::string_view text) {
  std::uint32_t v = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc() || ptr != text.data() + text.size())
    throw ConfigError(strformat("fault: '%.*s' is not an accelerator index; "
                                "%.*s",
                                static_cast<int>(text.size()), text.data(),
                                static_cast<int>(kFaultUsage.size()),
                                kFaultUsage.data()));
  return v;
}

[[nodiscard]] double parse_scale(std::string_view text) {
  double v = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc() || ptr != text.data() + text.size())
    throw ConfigError(strformat("fault: '%.*s' is not a scale; %.*s",
                                static_cast<int>(text.size()), text.data(),
                                static_cast<int>(kFaultUsage.size()),
                                kFaultUsage.data()));
  return v;
}

}  // namespace

std::string_view to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::AccLost: return "acc_lost";
    case FaultKind::AccReturned: return "acc_returned";
    case FaultKind::LinkDegraded: return "link_degraded";
    case FaultKind::LinkRestored: return "link_restored";
    case FaultKind::SpecDerated: return "spec_derated";
  }
  return "?";
}

std::optional<FaultKind> parse_fault_kind(std::string_view name) noexcept {
  if (name == "acc_lost") return FaultKind::AccLost;
  if (name == "acc_returned") return FaultKind::AccReturned;
  if (name == "link_degraded") return FaultKind::LinkDegraded;
  if (name == "link_restored") return FaultKind::LinkRestored;
  if (name == "spec_derated") return FaultKind::SpecDerated;
  return std::nullopt;
}

FaultEvent FaultEvent::lost(AccId acc) {
  return FaultEvent{FaultKind::AccLost, acc, 1.0};
}

FaultEvent FaultEvent::returned(AccId acc) {
  return FaultEvent{FaultKind::AccReturned, acc, 1.0};
}

FaultEvent FaultEvent::link_degraded(AccId acc, double scale) {
  return FaultEvent{FaultKind::LinkDegraded, acc,
                    require_scale(scale, "link_degraded")};
}

FaultEvent FaultEvent::link_restored(AccId acc) {
  return FaultEvent{FaultKind::LinkRestored, acc, 1.0};
}

FaultEvent FaultEvent::spec_derated(AccId acc, double scale) {
  return FaultEvent{FaultKind::SpecDerated, acc,
                    require_scale(scale, "spec_derated")};
}

std::string format_fault(const FaultEvent& event) {
  const std::string_view name = to_string(event.kind);
  if (event.has_scale())
    return strformat("%.*s(%u, x%g)", static_cast<int>(name.size()),
                     name.data(), event.acc.value, event.scale);
  return strformat("%.*s(%u)", static_cast<int>(name.size()), name.data(),
                   event.acc.value);
}

FaultEvent parse_fault_spec(std::string_view spec) {
  const std::size_t colon = spec.find(':');
  if (colon == std::string_view::npos)
    throw ConfigError(strformat("fault: missing ':' in '%.*s'; %.*s",
                                static_cast<int>(spec.size()), spec.data(),
                                static_cast<int>(kFaultUsage.size()),
                                kFaultUsage.data()));
  const std::string_view verb = spec.substr(0, colon);
  std::string_view rest = spec.substr(colon + 1);
  const bool wants_scale = verb == "degrade" || verb == "derate";
  double scale = 1.0;
  if (wants_scale) {
    const std::size_t eq = rest.find('=');
    if (eq == std::string_view::npos)
      throw ConfigError(strformat("fault: %.*s needs <acc>=<scale>; %.*s",
                                  static_cast<int>(verb.size()), verb.data(),
                                  static_cast<int>(kFaultUsage.size()),
                                  kFaultUsage.data()));
    scale = parse_scale(rest.substr(eq + 1));
    rest = rest.substr(0, eq);
  }
  const AccId acc{parse_acc_index(rest)};
  if (verb == "lose") return FaultEvent::lost(acc);
  if (verb == "return") return FaultEvent::returned(acc);
  if (verb == "degrade") return FaultEvent::link_degraded(acc, scale);
  if (verb == "restore") return FaultEvent::link_restored(acc);
  if (verb == "derate") return FaultEvent::spec_derated(acc, scale);
  throw ConfigError(strformat("fault: unknown verb '%.*s'; %.*s",
                              static_cast<int>(verb.size()), verb.data(),
                              static_cast<int>(kFaultUsage.size()),
                              kFaultUsage.data()));
}

std::vector<FaultEvent> parse_fault_list(std::string_view specs) {
  std::vector<FaultEvent> out;
  while (true) {
    const std::size_t comma = specs.find(',');
    out.push_back(parse_fault_spec(specs.substr(0, comma)));
    if (comma == std::string_view::npos) return out;
    specs.remove_prefix(comma + 1);
  }
}

}  // namespace h2h
