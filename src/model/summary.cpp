#include "model/summary.h"

#include "util/str.h"
#include "util/table.h"

namespace h2h {

std::string describe_shape(const Layer& layer) {
  switch (layer.kind) {
    case LayerKind::Input: {
      const auto& s = std::get<InputShape>(layer.shape);
      return strformat("Input %ux%ux%u", s.channels, s.h, s.w);
    }
    case LayerKind::Conv: {
      const auto& s = std::get<ConvShape>(layer.shape);
      return strformat("Conv %ux%ux%ux%u k%ux%u s%u", s.out_channels,
                       s.in_channels, s.out_h, s.out_w, s.kernel,
                       s.effective_kernel_w(), s.stride);
    }
    case LayerKind::FullyConnected: {
      const auto& s = std::get<FcShape>(layer.shape);
      return strformat("FC %u->%u", s.in_features, s.out_features);
    }
    case LayerKind::Lstm: {
      const auto& s = std::get<LstmShape>(layer.shape);
      return strformat("LSTM in%u h%u L%u T%u", s.in_size, s.hidden_size,
                       s.layers, s.seq_len);
    }
    case LayerKind::Pool: {
      const auto& s = std::get<PoolShape>(layer.shape);
      return strformat("Pool %ux%ux%u k%u s%u", s.channels, s.out_h, s.out_w,
                       s.kernel, s.stride);
    }
    case LayerKind::Eltwise: {
      const auto& s = std::get<EltwiseShape>(layer.shape);
      return strformat("Eltwise %ux%ux%u", s.channels, s.h, s.w);
    }
    case LayerKind::Concat: {
      const auto& s = std::get<ConcatShape>(layer.shape);
      return strformat("Concat %ux%ux%u", s.channels, s.h, s.w);
    }
  }
  return "?";
}

void print_model_summary(const ModelGraph& model, std::ostream& out,
                         bool per_layer) {
  const ModelStats s = model.stats();
  out << strformat(
      "model %s: %zu nodes (%zu compute layers), %.1fM params, %.2f GMACs, "
      "%s weights, %u modalities\n",
      model.name().c_str(), s.node_count, s.compute_layer_count,
      static_cast<double>(s.total_params) / 1e6,
      static_cast<double>(s.total_macs) / 1e9,
      human_bytes(s.total_weight_bytes).c_str(), s.modality_count);
  if (!per_layer) return;

  TextTable table({"id", "name", "shape", "modality", "params", "MACs", "out"},
                  {TextTable::Align::Right, TextTable::Align::Left,
                   TextTable::Align::Left});
  for (const LayerId id : model.all_layers()) {
    const Layer& l = model.layer(id);
    table.add_row({strformat("%u", id.value), l.name, describe_shape(l),
                   strformat("%u", l.modality),
                   strformat("%llu", static_cast<unsigned long long>(l.param_count())),
                   strformat("%llu", static_cast<unsigned long long>(l.macs())),
                   human_bytes(l.out_bytes(model.dtype_bytes()))});
  }
  table.print(out);
}

}  // namespace h2h
