#include <gtest/gtest.h>

#include "core/dynamic_modality.h"
#include "core/planner.h"
#include "model/zoo.h"
#include "test_helpers.h"
#include "util/error.h"
#include "util/str.h"

namespace h2h {
namespace {

/// A system of counting LambdaAccelerators (the test_cost_table.cpp trick):
/// every virtual model evaluation bumps the shared counters, pinning down
/// exactly which requests (re)build cost state.
SystemConfig make_counting_system(int& latency_calls, int& energy_calls,
                                  double bw_acc = 1e9) {
  std::vector<AcceleratorPtr> accs;
  for (int i = 0; i < 3; ++i) {
    AcceleratorSpec spec =
        testing::simple_spec(strformat("count%d", i), gib(1));
    spec.peak_macs_per_cycle = 100u << i;
    accs.push_back(std::make_unique<LambdaAccelerator>(
        spec,
        [&latency_calls, spec](const Layer& layer) {
          ++latency_calls;
          return static_cast<double>(layer.macs() + layer.light_ops() + 1) /
                 (static_cast<double>(spec.peak_macs_per_cycle) *
                  spec.freq_hz);
        },
        [&energy_calls](const Layer& layer) {
          ++energy_calls;
          return static_cast<double>(layer.macs()) * 1e-12;
        }));
  }
  return SystemConfig(std::move(accs), HostParams{bw_acc, 0.0});
}

void expect_same_response(const PlanResponse& a, const PlanResponse& b,
                          const ModelGraph& model) {
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (std::size_t i = 0; i < a.steps.size(); ++i) {
    EXPECT_EQ(a.steps[i].name, b.steps[i].name);
    // Bit-identical schedules: plain EXPECT_EQ on doubles is deliberate.
    EXPECT_EQ(a.steps[i].result.latency, b.steps[i].result.latency);
    EXPECT_EQ(a.steps[i].result.energy.total(),
              b.steps[i].result.energy.total());
    EXPECT_EQ(a.steps[i].result.host_bytes, b.steps[i].result.host_bytes);
    EXPECT_EQ(a.steps[i].result.local_bytes, b.steps[i].result.local_bytes);
  }
  for (const LayerId id : model.all_layers()) {
    EXPECT_EQ(a.mapping.acc_of(id), b.mapping.acc_of(id));
    EXPECT_EQ(a.mapping.seq_of(id), b.mapping.seq_of(id));
    EXPECT_EQ(a.plan.pinned(id), b.plan.pinned(id));
  }
  EXPECT_EQ(a.plan.fused_edge_count(), b.plan.fused_edge_count());
  EXPECT_EQ(a.remap_stats.passes, b.remap_stats.passes);
  EXPECT_EQ(a.remap_stats.attempts, b.remap_stats.attempts);
  EXPECT_EQ(a.remap_stats.accepted, b.remap_stats.accepted);
}

TEST(PlannerCache, WarmPlanPerformsZeroVirtualModelCalls) {
  int latency_calls = 0;
  int energy_calls = 0;
  const SystemConfig sys = make_counting_system(latency_calls, energy_calls);
  const ModelGraph model = testing::make_mini_mmmt_model();
  Planner planner(sys);

  const PlanResponse cold = planner.plan(PlanRequest::for_graph(model, 0.0));
  EXPECT_FALSE(cold.warm);
  EXPECT_GT(cold.setup_seconds, 0.0);
  EXPECT_GT(latency_calls, 0);  // the session build is the one evaluation
  EXPECT_GT(energy_calls, 0);
  const int lat_after_build = latency_calls;
  const int energy_after_build = energy_calls;

  const PlanResponse warm = planner.plan(PlanRequest::for_graph(model, 0.0));
  EXPECT_TRUE(warm.warm);
  EXPECT_EQ(warm.setup_seconds, 0.0);
  EXPECT_EQ(latency_calls, lat_after_build);
  EXPECT_EQ(energy_calls, energy_after_build);
  EXPECT_EQ(planner.cache_hits(), 1u);
  EXPECT_EQ(planner.cache_misses(), 1u);
  expect_same_response(cold, warm, model);
}

TEST(PlannerCache, RebuildsExactlyWhenModelBandwidthOrBatchChanges) {
  int latency_calls = 0;
  int energy_calls = 0;
  PlannerOptions options;
  options.system_factory = [&latency_calls, &energy_calls](double bw) {
    return make_counting_system(latency_calls, energy_calls, bw);
  };
  Planner planner(std::move(options));
  const ModelGraph mmmt = testing::make_mini_mmmt_model();
  const ModelGraph chain = testing::make_chain_model();

  const auto calls = [&] { return latency_calls + energy_calls; };

  (void)planner.plan(PlanRequest::for_graph(mmmt, 1e9));
  EXPECT_GT(calls(), 0);

  // Same (model, bw, batch): no rebuild.
  int snapshot = calls();
  (void)planner.plan(PlanRequest::for_graph(mmmt, 1e9));
  EXPECT_EQ(calls(), snapshot);

  // New bandwidth: new session.
  (void)planner.plan(PlanRequest::for_graph(mmmt, 2e9));
  EXPECT_GT(calls(), snapshot);

  // Both sessions stay cached: revisiting either is free.
  snapshot = calls();
  (void)planner.plan(PlanRequest::for_graph(mmmt, 1e9));
  (void)planner.plan(PlanRequest::for_graph(mmmt, 2e9));
  EXPECT_EQ(calls(), snapshot);

  // New batch: new session.
  (void)planner.plan(PlanRequest::for_graph(mmmt, 1e9, 4));
  EXPECT_GT(calls(), snapshot);

  // New model: new session.
  snapshot = calls();
  (void)planner.plan(PlanRequest::for_graph(chain, 1e9));
  EXPECT_GT(calls(), snapshot);

  EXPECT_EQ(planner.cache_misses(), 4u);
  EXPECT_EQ(planner.cache_hits(), 3u);
  EXPECT_EQ(planner.session_count(), 4u);

  planner.clear_sessions();
  snapshot = calls();
  (void)planner.plan(PlanRequest::for_graph(mmmt, 1e9));
  EXPECT_GT(calls(), snapshot);  // cold again after clear
}

TEST(PlannerCache, SharedSystemFollowsLazyRebuildWhenBandwidthMoves) {
  int latency_calls = 0;
  int energy_calls = 0;
  SystemConfig sys = make_counting_system(latency_calls, energy_calls);
  const ModelGraph model = testing::make_mini_mmmt_model();
  Planner planner(sys);

  (void)planner.plan(PlanRequest::for_graph(model, 0.0));
  const int snapshot = latency_calls + energy_calls;

  // Mutating the borrowed system's BW_acc stales the cached CostTable; the
  // session is reused (shared mode keys on the model alone) but the next
  // request rebuilds the table — exactly once, billed as setup and
  // reported not-warm.
  sys.set_bw_acc(2e9);
  const PlanResponse r = planner.plan(PlanRequest::for_graph(model, 0.0));
  EXPECT_FALSE(r.warm);
  EXPECT_GT(r.setup_seconds, 0.0);
  EXPECT_GT(latency_calls + energy_calls, snapshot);

  const int rebuilt = latency_calls + energy_calls;
  const PlanResponse again = planner.plan(PlanRequest::for_graph(model, 0.0));
  EXPECT_TRUE(again.warm);
  EXPECT_EQ(latency_calls + energy_calls, rebuilt);
}

TEST(PlannerCache, EvictsLeastRecentlyUsedSession) {
  PlannerOptions options;
  options.max_sessions = 2;
  // One lock shard reproduces the exact global-LRU order this test pins;
  // the default sharded cache enforces capacity per shard instead.
  options.shards = 1;
  Planner planner(std::move(options));
  const ModelGraph model = testing::make_mini_mmmt_model();

  // Three distinct bandwidth sessions through a capacity-2 cache.
  (void)planner.plan(PlanRequest::for_graph(model, 1e9));
  (void)planner.plan(PlanRequest::for_graph(model, 2e9));
  (void)planner.plan(PlanRequest::for_graph(model, 3e9));
  EXPECT_EQ(planner.session_count(), 2u);

  // 1e9 was evicted; 3e9 and 2e9 survive (most recently used order).
  EXPECT_TRUE(planner.plan(PlanRequest::for_graph(model, 3e9)).warm);
  EXPECT_TRUE(planner.plan(PlanRequest::for_graph(model, 2e9)).warm);
  EXPECT_FALSE(planner.plan(PlanRequest::for_graph(model, 1e9)).warm);
  EXPECT_EQ(planner.cache_misses(), 4u);
}

TEST(PlannerRequest, ExactlyOneModelSourceRequired) {
  Planner planner;
  PlanRequest neither;
  EXPECT_THROW((void)planner.plan(neither), ContractViolation);

  const ModelGraph model = testing::make_mini_mmmt_model();
  PlanRequest both = PlanRequest::for_graph(model, 1e9);
  both.model = ZooModel::MoCap;
  EXPECT_THROW((void)planner.plan(both), ContractViolation);
}

// The acceptance pin: the default pipeline through Planner reproduces the
// one-shot plan_once() bit-for-bit across the zoo grid (plan_once is the
// exact computation the deprecated H2HMapper performed; their equivalence
// is pinned in test_h2h_mapper.cpp).
class PlannerBitIdentityTest
    : public ::testing::TestWithParam<std::tuple<ZooModel, BandwidthSetting>> {
};

TEST_P(PlannerBitIdentityTest, MatchesPlanOnceBitForBit) {
  const auto [model_id, bw] = GetParam();
  const ModelGraph model = make_model(model_id);
  const SystemConfig sys = SystemConfig::standard(bw);

  const PlanResponse legacy = plan_once(model, sys);

  Planner planner;
  const PlanResponse cold = planner.plan(PlanRequest::zoo(model_id, bw));
  expect_same_response(legacy, cold, model);

  const PlanResponse warm = planner.plan(PlanRequest::zoo(model_id, bw));
  EXPECT_TRUE(warm.warm);
  expect_same_response(legacy, warm, model);
}

INSTANTIATE_TEST_SUITE_P(
    ZooGrid, PlannerBitIdentityTest,
    ::testing::Combine(::testing::Values(ZooModel::VLocNet,
                                         ZooModel::CasiaSurf, ZooModel::Vfs,
                                         ZooModel::FaceBag, ZooModel::CnnLstm,
                                         ZooModel::MoCap),
                       ::testing::Values(BandwidthSetting::LowMinus,
                                         BandwidthSetting::Mid)),
    [](const ::testing::TestParamInfo<
        std::tuple<ZooModel, BandwidthSetting>>& info) {
      std::string name(zoo_info(std::get<0>(info.param)).key);
      for (char& c : name)
        if (c == '-') c = '_';
      return name + (std::get<1>(info.param) == BandwidthSetting::LowMinus
                         ? "_LowMinus"
                         : "_Mid");
    });

TEST(PlanResponseAccessors, BaselineIsLookedUpByNameNotIndex) {
  const ModelGraph model = testing::make_mini_mmmt_model();
  const SystemConfig sys = testing::make_mini_hetero_system(0.125e9);
  Planner planner(sys);

  const PlanResponse full = planner.plan(PlanRequest::for_graph(model, 0.0));
  ASSERT_EQ(full.steps.size(), 4u);
  EXPECT_EQ(&full.baseline_result(), &full.steps[1].result);

  // With step 2 toggled off, steps[1] is the fusion snapshot; the named
  // lookup must refuse rather than silently return the wrong step (the old
  // raw-index accessor did exactly that).
  PlanRequest no_weight = PlanRequest::for_graph(model, 0.0);
  no_weight.options.run_weight_locality = false;
  const PlanResponse skipped = planner.plan(no_weight);
  ASSERT_GE(skipped.steps.size(), 2u);
  EXPECT_EQ(skipped.steps[1].name, "3: activation fusion");
  EXPECT_THROW((void)skipped.baseline_result(), ContractViolation);
  EXPECT_THROW((void)skipped.latency_vs_baseline(), ContractViolation);
}

TEST(PlanResponseAccessors, StepOneOnlyRegression) {
  const ModelGraph model = testing::make_mini_mmmt_model();
  const SystemConfig sys = testing::make_mini_hetero_system();
  Planner planner(sys);

  PlanRequest request = PlanRequest::for_graph(model, 0.0);
  request.options.run_weight_locality = false;
  request.options.run_fusion = false;
  request.options.run_remapping = false;
  const PlanResponse r = planner.plan(request);

  ASSERT_EQ(r.steps.size(), 1u);
  EXPECT_EQ(r.steps[0].name, "1: computation-prioritized");
  EXPECT_EQ(&r.final_result(), &r.steps[0].result);
  EXPECT_THROW((void)r.baseline_result(), ContractViolation);
  EXPECT_NO_THROW(r.mapping.validate(model, sys));
}

TEST(PlannerTimeBudget, ExhaustedBudgetStopsRemappingCleanly) {
  const ModelGraph model = make_model(ZooModel::CasiaSurf);
  Planner planner;
  PlanRequest request =
      PlanRequest::zoo(ZooModel::CasiaSurf, BandwidthSetting::LowMinus);
  const PlanResponse unbounded = planner.plan(request);
  EXPECT_FALSE(unbounded.stopped_on_budget);

  request.options.time_budget_s = 1e-9;  // exhausted before first move probe
  const PlanResponse budgeted = planner.plan(request);
  EXPECT_TRUE(budgeted.stopped_on_budget);
  EXPECT_TRUE(budgeted.remap_stats.stopped_on_budget);
  ASSERT_EQ(budgeted.steps.size(), 4u);  // the step still snapshots
  EXPECT_NO_THROW(budgeted.mapping.validate(
      model, SystemConfig::standard(BandwidthSetting::LowMinus)));
  // A truncated search can never beat the converged one.
  EXPECT_GE(budgeted.final_result().latency,
            unbounded.final_result().latency);

  // A generous budget changes nothing: bit-identical to the unbounded run.
  request.options.time_budget_s = 1e6;
  const PlanResponse generous = planner.plan(request);
  EXPECT_FALSE(generous.stopped_on_budget);
  expect_same_response(unbounded, generous, model);
}

TEST(PlannerWarmStart, SeedsPipelineFromPriorResponse) {
  const ModelGraph model = testing::make_mini_mmmt_model();
  const SystemConfig sys = testing::make_mini_hetero_system(0.125e9);
  Planner planner(sys);

  const PlanRequest request = PlanRequest::for_graph(model, 0.0);
  const PlanResponse first = planner.plan(request);

  PlanRequest resumed = request;
  resumed.warm_start = &first.mapping;
  const PlanResponse second = planner.plan(resumed);
  EXPECT_EQ(second.steps[0].name, "1: warm start");
  // Re-optimizing from the converged mapping cannot regress it.
  EXPECT_LE(second.final_result().latency,
            first.final_result().latency * (1.0 + 1e-12));
  EXPECT_NO_THROW(second.mapping.validate(model, sys));

  // A warm start from a different model is rejected.
  const ModelGraph other = testing::make_chain_model();
  Planner other_planner(sys);
  PlanRequest mismatched = PlanRequest::for_graph(other, 0.0);
  mismatched.warm_start = &first.mapping;
  EXPECT_THROW((void)other_planner.plan(mismatched), ContractViolation);
}

TEST(PlannerPipelines, DynamicModalityRoundsReuseSessions) {
  const SystemConfig sys = SystemConfig::standard(BandwidthSetting::LowMinus);
  DynamicModalityMapper mapper(sys);
  const ModelGraph full = make_model(ZooModel::MoCap);
  const std::uint32_t two[] = {1, 2};
  const ModelGraph sub = subset_model(full, two);

  EXPECT_FALSE(mapper.remap(full).h2h.warm);   // cold: builds the session
  EXPECT_FALSE(mapper.remap(sub).h2h.warm);    // different variant: cold
  EXPECT_TRUE(mapper.remap(full).h2h.warm);    // revisited: warm
  EXPECT_TRUE(mapper.remap(sub).h2h.warm);
  EXPECT_EQ(mapper.planner().cache_misses(), 2u);
  EXPECT_EQ(mapper.planner().cache_hits(), 2u);
}

TEST(ModelFingerprint, DistinguishesStructureNotBatch) {
  const ModelGraph a = testing::make_mini_mmmt_model();
  ModelGraph b = testing::make_mini_mmmt_model();
  EXPECT_EQ(model_fingerprint(a), model_fingerprint(b));

  b.set_batch(8);  // batch is a separate cache-key component
  EXPECT_EQ(model_fingerprint(a), model_fingerprint(b));

  const ModelGraph full = make_model(ZooModel::MoCap);
  const std::uint32_t one[] = {1};
  const std::uint32_t two[] = {1, 2};
  // Subset variants share a name but differ structurally.
  EXPECT_NE(model_fingerprint(subset_model(full, one)),
            model_fingerprint(subset_model(full, two)));
}

}  // namespace
}  // namespace h2h
