// The live-repair wire schema (serve/protocol.h root "repair" object) and
// its end-to-end serve flows (serve/server.h): strict parsing, the session
// contract (a repair repairs the plan most recently served for the same
// session key), compounding repairs, and every error code answered in-band
// — unknown_acc, no_prior_plan, and infeasible_repair when a fault
// exhausts a layer kind's providers (satellite of DESIGN.md §12).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include "serve/protocol.h"
#include "serve/server.h"
#include "system/system_config.h"
#include "test_helpers.h"
#include "util/str.h"

namespace h2h {
namespace {

using serve::ErrorCode;
using serve::WireError;
using serve::WireRepairRequest;

[[nodiscard]] std::string plan_line(const std::string& model,
                                    const std::string& id) {
  return strformat(
      R"({"schema_version":1,"id":"%s","model":"%s","bw_gbps":0.5,)"
      R"("options":{"time_budget_s":%g},"emit":{"timing":false}})",
      id.c_str(), model.c_str(), testing::search_time_budget());
}

[[nodiscard]] std::string repair_line(const std::string& model,
                                      const std::string& id,
                                      const std::string& event,
                                      unsigned acc,
                                      const std::string& extra = {}) {
  return strformat(
      R"({"schema_version":1,"id":"%s","model":"%s","bw_gbps":0.5,)"
      R"("repair":{"event":"%s","acc":%u%s},)"
      R"("options":{"time_budget_s":%g},"emit":{"timing":false}})",
      id.c_str(), model.c_str(), event.c_str(), acc, extra.c_str(),
      testing::search_time_budget());
}

[[nodiscard]] std::vector<std::string> run_serve(const std::string& input) {
  std::istringstream in(input);
  std::ostringstream out;
  (void)serve::serve_jsonl(in, out, {});
  std::vector<std::string> lines;
  std::istringstream split(out.str());
  for (std::string line; std::getline(split, line);) lines.push_back(line);
  return lines;
}

[[nodiscard]] const WireError* as_error(
    const std::variant<serve::WireRequest, serve::WireTenantsRequest,
                       WireRepairRequest, WireError>& parsed) {
  return std::get_if<WireError>(&parsed);
}

// ------------------------------------------------------------- parsing

TEST(ServeRepairProtocol, ParsesMinimalAndFullRequests) {
  const auto minimal = serve::parse_any_request(
      R"({"schema_version":1,"model":"mocap",)"
      R"("repair":{"event":"acc_lost","acc":3}})");
  const auto* req = std::get_if<WireRepairRequest>(&minimal);
  ASSERT_NE(req, nullptr);
  EXPECT_EQ(req->model, ZooModel::MoCap);
  EXPECT_EQ(req->event.kind, FaultKind::AccLost);
  EXPECT_EQ(req->event.acc.value, 3u);
  EXPECT_DOUBLE_EQ(req->fallback_ratio, 1.2);
  EXPECT_TRUE(req->emit_mapping);
  EXPECT_TRUE(req->emit_timing);

  const auto full = serve::parse_any_request(
      R"({"schema_version":1,"id":"x","model":"vfs","bw_gbps":0.25,)"
      R"("batch":2,"repair":{"event":"link_degraded","acc":5,"scale":0.5},)"
      R"("fallback_ratio":2.0,"emit":{"mapping":false,"timing":false}})");
  const auto* freq = std::get_if<WireRepairRequest>(&full);
  ASSERT_NE(freq, nullptr);
  EXPECT_EQ(freq->id, "x");
  EXPECT_EQ(freq->model, ZooModel::Vfs);
  EXPECT_DOUBLE_EQ(freq->bw_gbps, 0.25);
  EXPECT_EQ(freq->batch, 2u);
  EXPECT_EQ(freq->event.kind, FaultKind::LinkDegraded);
  EXPECT_DOUBLE_EQ(freq->event.scale, 0.5);
  EXPECT_DOUBLE_EQ(freq->fallback_ratio, 2.0);
  EXPECT_FALSE(freq->emit_mapping);
  EXPECT_FALSE(freq->emit_timing);
}

TEST(ServeRepairProtocol, RejectsMalformedRepairObjects) {
  const char* bad[] = {
      // Missing / unknown event pieces.
      R"({"schema_version":1,"repair":{}})",
      R"({"schema_version":1,"repair":{"event":"acc_lost"}})",
      R"({"schema_version":1,"repair":{"event":"meteor_strike","acc":0}})",
      R"({"schema_version":1,"repair":{"event":"acc_lost","acc":-1}})",
      // Scale rules: required for scaled kinds, rejected otherwise.
      R"({"schema_version":1,"repair":{"event":"link_degraded","acc":0}})",
      R"({"schema_version":1,)"
      R"("repair":{"event":"acc_lost","acc":0,"scale":0.5}})",
      R"({"schema_version":1,)"
      R"("repair":{"event":"link_degraded","acc":0,"scale":0}})",
      R"({"schema_version":1,)"
      R"("repair":{"event":"spec_derated","acc":0,"scale":1.5}})",
      // Bad envelope values (model parses first: it must be present for
      // these to reach the intended check).
      R"({"schema_version":1,"repair":{"event":"acc_lost","acc":0}})",
      R"({"schema_version":1,"model":"mocap",)"
      R"("repair":{"event":"acc_lost","acc":0},"fallback_ratio":-1})",
      R"({"schema_version":1,"model":"mocap",)"
      R"("repair":{"event":"acc_lost","acc":0},)"
      R"("bw_gbps":0.5,"links":{"shape":"uniform","bw_gbps":0.5}})",
  };
  for (const char* line : bad) {
    const auto parsed = serve::parse_any_request(line);
    const WireError* err = as_error(parsed);
    ASSERT_NE(err, nullptr) << line;
    EXPECT_EQ(err->code, ErrorCode::BadField) << line;
  }

  // Strict unknown-field rejection, at the repair level and the root.
  const char* unknown[] = {
      R"({"schema_version":1,)"
      R"("repair":{"event":"acc_lost","acc":0,"why":"gamma rays"}})",
      R"({"schema_version":1,"model":"mocap",)"
      R"("repair":{"event":"acc_lost","acc":0},"retry":true})",
  };
  for (const char* line : unknown) {
    const auto parsed = serve::parse_any_request(line);
    const WireError* err = as_error(parsed);
    ASSERT_NE(err, nullptr) << line;
    EXPECT_EQ(err->code, ErrorCode::UnknownField) << line;
  }
}

// ------------------------------------------------------- end-to-end serve

TEST(ServeRepair, RepairsTheSessionPlanAndCompounds) {
  // Plan, lose an accelerator, then get it back: three ok lines against one
  // session; the second repair compounds on the first.
  const std::string input = plan_line("mocap", "p") + "\n" +
                            repair_line("mocap", "r1", "acc_lost", 0) + "\n" +
                            repair_line("mocap", "r2", "acc_returned", 0) +
                            "\n";
  const std::vector<std::string> lines = run_serve(input);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find(R"("ok":true)"), std::string::npos);
  for (const std::size_t i : {std::size_t{1}, std::size_t{2}}) {
    EXPECT_NE(lines[i].find(R"("ok":true)"), std::string::npos) << lines[i];
    EXPECT_NE(lines[i].find(R"("outcome":"repaired")"), std::string::npos);
    EXPECT_NE(lines[i].find(R"("mapping")"), std::string::npos);
  }
  EXPECT_NE(lines[1].find(R"("id":"r1")"), std::string::npos);
  // Losing a live accelerator is a dropout: the stale plan cannot run.
  EXPECT_EQ(lines[1].find("faulted_latency_s"), std::string::npos);
  // Its return repairs from the compounded state and the old plan still
  // runs, so the faulted latency is reported.
  EXPECT_NE(lines[2].find("faulted_latency_s"), std::string::npos);

  // Determinism: with timing off the whole session replays byte-identical.
  EXPECT_EQ(lines, run_serve(input));
}

TEST(ServeRepair, AnswersSessionErrorsInBand) {
  const std::string input =
      repair_line("mocap", "orphan", "acc_lost", 0) + "\n" +
      plan_line("mocap", "p") + "\n" +
      repair_line("mocap", "ghost", "acc_lost", 99) + "\n" +
      repair_line("casia-surf", "other", "acc_lost", 0) + "\n";
  const std::vector<std::string> lines = run_serve(input);
  ASSERT_EQ(lines.size(), 4u);
  // No prior plan for this session key yet.
  EXPECT_NE(lines[0].find(R"("ok":false)"), std::string::npos);
  EXPECT_NE(lines[0].find("no_prior_plan"), std::string::npos);
  EXPECT_NE(lines[0].find(R"("id":"orphan")"), std::string::npos);
  EXPECT_NE(lines[1].find(R"("ok":true)"), std::string::npos);
  // The catalog has 12 accelerators; 99 is answered, not thrown.
  EXPECT_NE(lines[2].find("unknown_acc"), std::string::npos);
  // A different model is a different session key: still no prior plan.
  EXPECT_NE(lines[3].find("no_prior_plan"), std::string::npos);
}

TEST(ServeRepair, CapabilityExhaustionAnswersInfeasibleRepair) {
  // Drop every accelerator that supports the LSTM kind: cnn-lstm cannot be
  // repaired once the last provider dies. The exhausting repair must come
  // back as an in-band infeasible_repair error, and the session must keep
  // serving — the provider's return repairs the stale plan again.
  const SystemConfig probe = SystemConfig::standard(0.5e9);
  const std::vector<AccId> providers = probe.supporting(LayerKind::Lstm);
  ASSERT_GE(providers.size(), 1u);
  ASSERT_LT(providers.size(), probe.accelerator_count());

  std::string input = plan_line("cnn-lstm", "p") + "\n";
  for (std::size_t i = 0; i < providers.size(); ++i)
    input += repair_line("cnn-lstm", strformat("kill%zu", i), "acc_lost",
                         providers[i].value) +
             "\n";
  input += repair_line("cnn-lstm", "revive", "acc_returned",
                       providers.back().value) +
           "\n";
  const std::vector<std::string> lines = run_serve(input);
  ASSERT_EQ(lines.size(), providers.size() + 2);

  // Some earlier kill may already exhaust a capability/kind combination;
  // the last one certainly does. Everything after the first infeasible
  // stays infeasible until the provider returns.
  std::size_t first_bad = 0;
  for (std::size_t i = 1; i <= providers.size(); ++i) {
    if (lines[i].find("infeasible_repair") != std::string::npos) {
      first_bad = i;
      break;
    }
    EXPECT_NE(lines[i].find(R"("ok":true)"), std::string::npos) << lines[i];
  }
  ASSERT_GT(first_bad, 0u) << "killing every LSTM provider stayed feasible";
  for (std::size_t i = first_bad; i <= providers.size(); ++i) {
    EXPECT_NE(lines[i].find(R"("ok":false)"), std::string::npos) << lines[i];
    EXPECT_NE(lines[i].find("infeasible_repair"), std::string::npos)
        << lines[i];
  }
  EXPECT_NE(lines.back().find(R"("id":"revive")"), std::string::npos);
  EXPECT_NE(lines.back().find(R"("outcome":"repaired")"), std::string::npos);
}

}  // namespace
}  // namespace h2h
