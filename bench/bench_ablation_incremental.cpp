// Ablation: journaled incremental (successor-only) schedule updates vs full
// re-simulation in the step-4 remapping loop. The paper emphasizes the
// incremental update ("we only update a node's direct successor
// neighbours"); candidate moves are probed against the live state under
// apply/undo journals instead of deep-copying the schedule and plan per
// candidate. BM_RemapLoop isolates the step-4 loop (steps 1-3 prepared once
// outside the timed region, modulo the per-iteration state copy both
// variants pay); BM_FullPipeline keeps the end-to-end context. Both paths
// must land on the same answer — asserted by the table up front.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <iostream>
#include <limits>

#include "h2h.h"

namespace {

using namespace h2h;

struct Prepared {
  ModelGraph model;
  SystemConfig sys;
  Mapping mapping;
  LocalityPlan plan;
};

Prepared prepare(ModelGraph model, SystemConfig sys) {
  const Simulator sim(model, sys);
  Mapping mapping = computation_prioritized_mapping(sim);
  LocalityPlan plan(model);
  plan.ensure_acc_count(sys.accelerator_count());
  optimize_weight_locality(sim, mapping, plan);
  optimize_activation_fusion(sim, mapping, plan);
  return Prepared{std::move(model), std::move(sys), std::move(mapping),
                  std::move(plan)};
}

void BM_RemapLoop(benchmark::State& state) {
  const bool incremental = state.range(0) != 0;
  Prepared p = prepare(make_vlocnet(),
                       SystemConfig::standard(BandwidthSetting::LowMinus));
  const Simulator sim(p.model, p.sys);
  RemapOptions opts;
  opts.use_incremental = incremental;
  std::uint64_t attempts = 0;
  for (auto _ : state) {
    Mapping mapping = p.mapping;
    LocalityPlan plan = p.plan;
    const RemapStats stats = data_locality_remapping(sim, mapping, plan, opts);
    attempts += stats.attempts;
    benchmark::DoNotOptimize(plan.pinned_count());
  }
  state.SetLabel(incremental ? "journaled-incremental" : "full-resim");
  state.counters["probes"] =
      benchmark::Counter(static_cast<double>(attempts),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RemapLoop)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_FullPipeline(benchmark::State& state) {
  const bool incremental = state.range(0) != 0;
  const ModelGraph model = make_vlocnet();
  const SystemConfig sys = SystemConfig::standard(BandwidthSetting::LowMinus);
  PlanOptions opts;
  opts.remap.use_incremental = incremental;
  for (auto _ : state) {
    const PlanResponse r = plan_once(model, sys, opts);
    benchmark::DoNotOptimize(r.final_result().latency);
  }
  state.SetLabel(incremental ? "journaled-incremental" : "full-resim");
}
BENCHMARK(BM_FullPipeline)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// Remap-loop seconds for one prepared instance (best of `reps`).
double remap_seconds(const Prepared& p, bool incremental, RemapStats& stats,
                     int reps = 3) {
  const Simulator sim(p.model, p.sys);
  RemapOptions opts;
  opts.use_incremental = incremental;
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    Mapping mapping = p.mapping;
    LocalityPlan plan = p.plan;
    const auto t0 = std::chrono::steady_clock::now();
    stats = data_locality_remapping(sim, mapping, plan, opts);
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  // Profiled runs (--benchmark_filter present) skip the verification
  // preamble: its un-timed setup work used to dominate gprof samples and get
  // misattributed to the benchmarks (bench/README.md). Other --benchmark_*
  // flags (CI smoke's --benchmark_min_time) keep the preamble's assertions.
  bool filtered = false;
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--benchmark_filter", 18) == 0) filtered = true;

  if (!filtered) {
    TextTable table({"model", "latency (s)", "full remap (s)", "incr remap (s)",
                     "speedup", "probes", "retimes"},
                    {TextTable::Align::Left});
    for (const ZooInfo& info : zoo_catalog()) {
      Prepared p = prepare(make_model(info.id),
                           SystemConfig::standard(BandwidthSetting::LowMinus));
      const Simulator sim(p.model, p.sys);

      RemapStats full_stats;
      RemapStats incr_stats;
      const double t_full = remap_seconds(p, false, full_stats);
      const double t_incr = remap_seconds(p, true, incr_stats);

      // Both paths must land on the same mapping quality.
      const auto run_final = [&](bool inc) {
        Mapping mapping = p.mapping;
        LocalityPlan plan = p.plan;
        RemapOptions opts;
        opts.use_incremental = inc;
        (void)data_locality_remapping(sim, mapping, plan, opts);
        return sim.simulate(mapping, plan).latency;
      };
      const double lat_full = run_final(false);
      const double lat_incr = run_final(true);
      if (std::abs(lat_full - lat_incr) > lat_full * 1e-9) {
        std::cerr << "MISMATCH on " << info.key << ": full " << lat_full
                  << " vs incremental " << lat_incr << '\n';
        return 1;
      }

      table.add_row({std::string(info.key), strformat("%.6f", lat_incr),
                     strformat("%.4f", t_full), strformat("%.4f", t_incr),
                     strformat("%.1fx", t_full / std::max(t_incr, 1e-9)),
                     strformat("%u", incr_stats.attempts),
                     strformat("%llu", static_cast<unsigned long long>(
                                           incr_stats.retimes))});
    }
    std::cout << "step-4 remap loop: journaled incremental vs full re-sim @ "
                 "Low- (latencies asserted equal):\n";
    table.print(std::cout);
    std::cout << '\n';
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
