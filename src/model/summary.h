// Human-readable model summaries (layer table + aggregate stats),
// used by examples and the EXPERIMENTS.md generator.
#pragma once

#include <ostream>

#include "model/model_graph.h"

namespace h2h {

/// Print a per-layer table (name, kind, shape, params, MACs, output bytes).
void print_model_summary(const ModelGraph& model, std::ostream& out,
                         bool per_layer = false);

/// One-line shape description, e.g. "Conv 256x128x14x14 k3 s1".
[[nodiscard]] std::string describe_shape(const Layer& layer);

}  // namespace h2h
