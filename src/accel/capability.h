// Accelerator capability bitmasks (multi-tenant placement gating).
//
// Generalizes KindSupport's boolean kind mask into an open-ended bitmask: an
// accelerator *has* a set of capabilities, a layer (stamped per tenant)
// *requires* a set, and a placement is admissible iff
// `(have & need) == need` — the ekk_capability_t matching rule from the
// mapf-het scheduler (SNIPPETS.md). Bits 0-4 are derived from the spec
// (layer-kind support, board memory class); higher bits are free for
// user-defined capabilities via AcceleratorSpec::extra_capabilities (e.g.
// "this tenant's kernels are only validated on these two boards").
//
// A zero `need` mask matches every accelerator, so every pre-capability
// request plans bit-identically — the single-tenant fixtures pin this.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "accel/accelerator_model.h"

namespace h2h {

using CapabilityMask = std::uint32_t;

// Derived capability bits (computed from the spec, never stored in it).
inline constexpr CapabilityMask kCapConv = 1u << 0;
inline constexpr CapabilityMask kCapFc = 1u << 1;
inline constexpr CapabilityMask kCapLstm = 1u << 2;
/// Board-memory class: at least 4 GiB of local DRAM (large models can pin
/// meaningful weight fractions).
inline constexpr CapabilityMask kCapBigMem = 1u << 3;
/// Local-DRAM bandwidth class: >= 16 GB/s (weight re-streaming stays cheap).
inline constexpr CapabilityMask kCapFastMem = 1u << 4;

/// The mapf-het admission rule: every required bit is present.
[[nodiscard]] constexpr bool can_serve(CapabilityMask have,
                                       CapabilityMask need) noexcept {
  return (have & need) == need;
}

/// Capabilities a spec provides by construction: kind bits from KindSupport
/// plus the derived memory-class bits, OR'd with extra_capabilities.
[[nodiscard]] CapabilityMask spec_capabilities(const AcceleratorSpec& spec);

/// Parse a '+'-separated capability spec: named bits (conv, fc, lstm,
/// bigmem, fastmem) and/or numeric literals (0x100, 32) OR'd together.
/// "none" (or empty) is the zero mask. Throws ConfigError on unknown tokens.
[[nodiscard]] CapabilityMask parse_caps_spec(std::string_view spec);

/// Canonical inverse of parse_caps_spec: named bits in bit order joined by
/// '+', a 0x literal for any unnamed remainder, "none" for zero.
[[nodiscard]] std::string format_caps(CapabilityMask mask);

}  // namespace h2h
