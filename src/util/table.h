// Aligned plain-text tables for bench output, mirroring the paper's tables.
// Columns are sized to the widest cell; numeric columns are right-aligned.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace h2h {

class TextTable {
 public:
  enum class Align { Left, Right };

  /// Define the columns. `aligns` may be shorter than `headers`; missing
  /// entries default to Right (tables here are mostly numeric).
  TextTable(std::vector<std::string> headers, std::vector<Align> aligns = {});

  void add_row(std::vector<std::string> cells);

  /// Render with a header underline and two-space column gaps.
  void print(std::ostream& out) const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace h2h
