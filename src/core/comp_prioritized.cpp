#include "core/comp_prioritized.h"

#include <algorithm>
#include <limits>

#include "graph/algorithms.h"
#include "util/error.h"
#include "util/str.h"

namespace h2h {

Mapping computation_prioritized_mapping(const Simulator& sim,
                                        const CompPrioritizedOptions& options) {
  const ModelGraph& model = sim.model();
  const SystemConfig& sys = sim.sys();
  const CostTable& costs = sim.costs();
  H2H_EXPECTS(options.max_candidates > 0);
  if (!is_dag(model.graph()))
    throw ConfigError(strformat("model '%s' has a dependency cycle",
                                model.name().c_str()));

  Mapping mapping(model);
  std::vector<double> finish(model.layer_count(), 0.0);

  // Indegree-counting worklist: completing a wave pushes exactly the nodes
  // that become ready, so the traversal is O(V + E) total instead of an
  // O(V + E) frontier() rescan per wave. Input layers are host-resident and
  // complete immediately.
  FrontierWorklist work(model.graph());
  for (const LayerId id : model.all_layers())
    if (model.layer(id).kind == LayerKind::Input) work.complete(id);

  std::vector<double> acc_tail(sys.accelerator_count(), 0.0);
  double makespan = 0.0;

  // Per-wave scratch, reused across waves. Candidate accelerators are spans
  // into the cost table's per-kind lists (or into pref_storage for the
  // dynamic-modality preference hook); durations are flat table reads.
  std::vector<LayerId> front;
  std::vector<AccId> pref_storage;
  std::vector<std::span<const AccId>> cand;
  std::vector<std::uint32_t> dur_offset;
  std::vector<double> durations;
  std::vector<double> node_ready;
  std::vector<std::size_t> choice;
  std::vector<std::size_t> best_choice;
  std::vector<double> suffix_lb;
  // Epoch-stamped accelerator tails: a stale stamp reads as the committed
  // acc_tail value, so each enumerated assignment starts from the committed
  // state without copying the whole tail array.
  std::vector<double> tails(sys.accelerator_count(), 0.0);
  std::vector<std::uint64_t> tail_stamp(sys.accelerator_count(), 0);
  std::uint64_t epoch = 0;

  while (work.take_wave(front)) {
    cand.clear();
    dur_offset.clear();
    durations.clear();
    node_ready.clear();
    pref_storage.clear();
    pref_storage.reserve(front.size());  // spans into it must stay valid

    for (const LayerId id : front) {
      const Layer& layer = model.layer(id);
      std::span<const AccId> accs;
      // Placement preference (dynamic-modality extension §4.5): if it names
      // an accelerator that supports the layer, that is the only candidate.
      if (options.preferred) {
        if (const std::optional<AccId> pref = options.preferred(id);
            pref.has_value() && sys.contains(*pref) &&
            costs.supported(id, *pref)) {
          pref_storage.push_back(*pref);
          accs = {&pref_storage.back(), 1};
        }
      }
      if (accs.empty()) {
        accs = costs.supporting(layer.kind);
        if (accs.empty())
          throw ConfigError(strformat(
              "no accelerator in the system supports layer '%s' (%s)",
              layer.name.c_str(), std::string(to_string(layer.kind)).c_str()));
      }
      cand.push_back(accs);
      dur_offset.push_back(static_cast<std::uint32_t>(durations.size()));
      for (const AccId a : accs)
        durations.push_back(costs.unlocalized_duration(id, a));
      double ready = 0.0;
      for (const LayerId p : model.graph().preds(id))
        ready = std::max(ready, finish[p.value]);
      node_ready.push_back(ready);
    }

    // Split into chunks whose assignment product stays enumerable.
    std::size_t begin = 0;
    while (begin < front.size()) {
      std::size_t end = begin;
      std::uint64_t product = 1;
      while (end < front.size()) {
        const std::uint64_t next = product * cand[end].size();
        if (end > begin && next > options.max_candidates) break;
        product = next;
        ++end;
      }
      const std::size_t k = end - begin;

      // Enumerate assignments in mixed radix — the first chunk node's
      // candidate varies fastest — and track the best by (makespan, sum of
      // finishes). Remaining ties keep the assignment enumerated first,
      // i.e. the colexicographically smallest choice vector (smallest
      // candidate indices at the LAST chunk nodes win; pinned by
      // test_comp_prioritized.cpp). A partial assignment is abandoned as
      // soon as its running makespan strictly exceeds the incumbent: it can
      // no longer win on the makespan criterion, and ties (which could
      // still win on finish-sum) are not pruned.
      // Placement-independent lower bound on the finish of nodes i..k-1:
      // node j cannot finish before ready_j + its cheapest duration. Lets
      // the prune below fire before the doomed tail nodes are even placed.
      suffix_lb.assign(k + 1, 0.0);
      for (std::size_t i = k; i-- > 0;) {
        const std::size_t n = begin + i;
        double min_dur = std::numeric_limits<double>::infinity();
        for (std::size_t c = 0; c < cand[n].size(); ++c)
          min_dur = std::min(min_dur, durations[dur_offset[n] + c]);
        suffix_lb[i] = std::max(suffix_lb[i + 1], node_ready[n] + min_dur);
      }

      choice.assign(k, 0);
      best_choice.clear();
      double best_mk = std::numeric_limits<double>::infinity();
      double best_sum = std::numeric_limits<double>::infinity();
      while (true) {
        ++epoch;
        double mk = makespan;
        double sum = 0.0;
        bool viable = true;
        for (std::size_t i = 0; i < k; ++i) {
          const std::size_t n = begin + i;
          const AccId a = cand[n][choice[i]];
          const double tail =
              tail_stamp[a.value] == epoch ? tails[a.value] : acc_tail[a.value];
          const double start = std::max(node_ready[n], tail);
          const double fin = start + durations[dur_offset[n] + choice[i]];
          tails[a.value] = fin;
          tail_stamp[a.value] = epoch;
          mk = std::max(mk, fin);
          if (std::max(mk, suffix_lb[i + 1]) > best_mk) {
            viable = false;
            break;
          }
          sum += fin;
        }
        if (viable && (mk < best_mk || (mk == best_mk && sum < best_sum))) {
          best_mk = mk;
          best_sum = sum;
          best_choice = choice;
        }
        // Next assignment (mixed radix increment).
        std::size_t d = 0;
        while (d < k) {
          if (++choice[d] < cand[begin + d].size()) break;
          choice[d] = 0;
          ++d;
        }
        if (d == k) break;
      }

      // Commit the chunk in frontier order.
      H2H_ASSERT(best_choice.size() == k);
      for (std::size_t i = 0; i < k; ++i) {
        const std::size_t n = begin + i;
        const LayerId node = front[n];
        const AccId a = cand[n][best_choice[i]];
        mapping.assign(node, a);
        const double start = std::max(node_ready[n], acc_tail[a.value]);
        const double fin = start + durations[dur_offset[n] + best_choice[i]];
        acc_tail[a.value] = fin;
        finish[node.value] = fin;
        makespan = std::max(makespan, fin);
        work.complete(node);
      }
      begin = end;
    }
  }

  H2H_ENSURES(mapping.complete());
  return mapping;
}

}  // namespace h2h
