// The declarative plan-option table (core/plan_options.h): both spellings
// resolve, set/get round-trip at canonical values, and diagnostics carry
// enough context to be wire and CLI error messages verbatim.
#include <gtest/gtest.h>

#include "core/plan_options.h"

namespace h2h {
namespace {

TEST(PlanOptionTable, EveryRowHasBothSpellingsAndAccessors) {
  ASSERT_FALSE(plan_option_specs().empty());
  for (const PlanOptionSpec& spec : plan_option_specs()) {
    EXPECT_FALSE(spec.cli_key.empty());
    EXPECT_FALSE(spec.json_key.empty());
    EXPECT_NE(spec.set, nullptr);
    EXPECT_NE(spec.get, nullptr);
    EXPECT_EQ(find_plan_option(spec.cli_key), &spec);
    EXPECT_EQ(find_plan_option(spec.json_key), &spec);
    if (spec.kind == PlanOptionSpec::Kind::Enum) {
      EXPECT_FALSE(spec.values.empty());
    }
  }
}

TEST(PlanOptionTable, SetGetRoundTripsAtCanonicalValues) {
  PlanOptions options;
  for (const PlanOptionSpec& spec : plan_option_specs()) {
    const std::string current = spec.get(options);
    if (current.empty()) continue;  // unset optional — nothing to re-apply
    EXPECT_EQ(spec.set(options, current), std::nullopt) << spec.json_key;
    EXPECT_EQ(spec.get(options), current) << spec.json_key;
  }
}

TEST(PlanOptionTable, BoolKnobsToggleTheirField) {
  PlanOptions options;
  ASSERT_TRUE(options.run_remapping);
  EXPECT_EQ(apply_plan_option(options, "remap", "false"), std::nullopt);
  EXPECT_FALSE(options.run_remapping);
  EXPECT_EQ(apply_plan_option(options, "remap", "true"), std::nullopt);
  EXPECT_TRUE(options.run_remapping);
}

TEST(PlanOptionTable, KnapsackSetsBothStepTwoAndRemapSolvers) {
  PlanOptions options;
  EXPECT_EQ(apply_plan_option(options, "knapsack", "greedy"), std::nullopt);
  EXPECT_EQ(options.weight.algo, KnapsackAlgo::GreedyDensity);
  EXPECT_EQ(options.remap.weight.algo, KnapsackAlgo::GreedyDensity);
  EXPECT_EQ(apply_plan_option(options, "knapsack", "exact"), std::nullopt);
  EXPECT_EQ(options.weight.algo, KnapsackAlgo::ExactDp);
  EXPECT_EQ(options.remap.weight.algo, KnapsackAlgo::ExactDp);
}

TEST(PlanOptionTable, ObjectiveAcceptsBothSpellings) {
  PlanOptions options;
  EXPECT_EQ(apply_plan_option(options, "objective", "edp"), std::nullopt);
  EXPECT_EQ(options.remap.objective, RemapObjective::EnergyDelayProduct);
  EXPECT_EQ(apply_plan_option(options, "objective", "latency"),
            std::nullopt);
  EXPECT_EQ(options.remap.objective, RemapObjective::Latency);
}

TEST(PlanOptionTable, TimeBudgetParsesByEitherKey) {
  PlanOptions options;
  EXPECT_EQ(apply_plan_option(options, "time-budget", "0.25"), std::nullopt);
  ASSERT_TRUE(options.time_budget_s.has_value());
  EXPECT_DOUBLE_EQ(*options.time_budget_s, 0.25);
  EXPECT_EQ(apply_plan_option(options, "time_budget_s", "2"), std::nullopt);
  EXPECT_DOUBLE_EQ(*options.time_budget_s, 2.0);
}

TEST(PlanOptionTable, RejectsBadValuesWithDiagnostics) {
  PlanOptions options;
  const auto unknown = apply_plan_option(options, "warp-speed", "9");
  ASSERT_TRUE(unknown.has_value());
  EXPECT_NE(unknown->find("unknown plan option"), std::string::npos);
  // The diagnostic lists valid spellings so wire/CLI users can self-serve.
  EXPECT_NE(unknown->find("time_budget_s"), std::string::npos);

  EXPECT_TRUE(apply_plan_option(options, "remap", "yes").has_value());
  EXPECT_TRUE(apply_plan_option(options, "knapsack", "fast").has_value());
  EXPECT_TRUE(apply_plan_option(options, "objective", "edp2").has_value());
  EXPECT_TRUE(apply_plan_option(options, "time-budget", "-1").has_value());
  EXPECT_TRUE(apply_plan_option(options, "time-budget", "nan").has_value());
  EXPECT_TRUE(apply_plan_option(options, "time-budget", "1x").has_value());
  // Failed sets leave the options untouched.
  EXPECT_TRUE(options.run_remapping);
  EXPECT_EQ(options.weight.algo, KnapsackAlgo::ExactDp);
  EXPECT_FALSE(options.time_budget_s.has_value());
}

}  // namespace
}  // namespace h2h
