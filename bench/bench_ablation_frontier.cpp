// Ablation: step-1 frontier enumeration budget (DESIGN.md §6). The paper
// enumerates "all possible mappings" of each frontier group; we cap the
// candidate product and split larger frontiers into greedy chunks. This
// bench sweeps the cap from pure per-node greedy (1) to exhaustive (200k)
// and reports step-1 quality and final H2H quality.
#include <benchmark/benchmark.h>

#include <iostream>

#include "h2h.h"

namespace {

using namespace h2h;

void BM_Step1Enumeration(benchmark::State& state) {
  const ModelGraph model = make_vlocnet();
  const SystemConfig sys = SystemConfig::standard(BandwidthSetting::Mid);
  const Simulator sim(model, sys);
  CompPrioritizedOptions opts;
  opts.max_candidates = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    const Mapping m = computation_prioritized_mapping(sim, opts);
    benchmark::DoNotOptimize(m.complete());
  }
}
BENCHMARK(BM_Step1Enumeration)
    ->Arg(1)
    ->Arg(100)
    ->Arg(200000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t budgets[] = {1, 100, 10000, 200000};
  TextTable table({"model", "budget", "step1 lat (s)", "final lat (s)"},
                  {TextTable::Align::Left});
  for (const ZooModel id : {ZooModel::VLocNet, ZooModel::CasiaSurf,
                            ZooModel::MoCap}) {
    const ModelGraph model = make_model(id);
    const SystemConfig sys = SystemConfig::standard(BandwidthSetting::LowMinus);
    for (const std::uint64_t budget : budgets) {
      PlanOptions opts;
      opts.step1.max_candidates = budget;
      const PlanResponse r = plan_once(model, sys, opts);
      table.add_row({std::string(zoo_info(id).key),
                     strformat("%llu", static_cast<unsigned long long>(budget)),
                     strformat("%.6f", r.steps[0].result.latency),
                     strformat("%.6f", r.final_result().latency)});
    }
  }
  std::cout << "frontier enumeration budget ablation @ Low-:\n";
  table.print(std::cout);
  std::cout << '\n';

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
