// The session-style planning facade (DESIGN.md §7): the library's primary
// entry point.
//
// The paper's value proposition is *repeated* fast search — Fig. 5b's
// sub-second remapping lets a multi-sensor system re-plan whenever bandwidth
// or modality changes. A Planner makes that cheap in practice: it owns a
// cache of constructed Simulator/CostTable state keyed by (model, BW_acc,
// batch, link topology), so consecutive PlanRequests for the same scenario
// skip the cold-start cost-table build entirely. A warm plan() performs zero virtual
// AcceleratorModel calls and no CostTable rebuild (regression-tested with
// counting models in test_planner.cpp).
//
// Typical usage:
//
//   h2h::Planner planner;                       // standard 12-acc system
//   auto r = planner.plan(h2h::PlanRequest::zoo(
//       h2h::ZooModel::MoCap, h2h::BandwidthSetting::LowMinus));
//   // ... bandwidth changes at runtime:
//   auto r2 = planner.plan(h2h::PlanRequest::zoo(
//       h2h::ZooModel::MoCap, h2h::BandwidthSetting::Mid));
//   // ... and back — this one is warm: r3.warm == true, setup_seconds == 0.
//   auto r3 = planner.plan(h2h::PlanRequest::zoo(
//       h2h::ZooModel::MoCap, h2h::BandwidthSetting::LowMinus));
//
// Behind the facade every request runs a pass pipeline (mapping_pass.h);
// plan() without an explicit pipeline assembles the paper's four steps from
// the request's toggles.
//
// Thread safety (DESIGN.md §8): concurrent plan() calls on one Planner are
// safe. The session cache is sharded by session key (one mutex per shard);
// each in-flight request gets its own mutable Mapping/LocalityPlan/
// PassContext, and a session's Simulator/CostTable are read-only once built,
// so N threads can answer from the same warm session without contention.
// Sessions are reference-counted: evicting one that another thread is still
// planning on only drops the cache's reference. The one sharing caveat is
// shared-system mode: mutating the borrowed SystemConfig (set_bw_acc) while
// requests are in flight is a data race and is forbidden — quiesce first.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/mapping_pass.h"
#include "model/zoo.h"

namespace h2h {

/// Per-step toggles and options of the pipeline (the legacy H2HOptions).
/// Disabled steps are skipped entirely — no snapshot is recorded for them.
struct PlanOptions {
  CompPrioritizedOptions step1;
  WeightLocalityOptions weight;
  FusionOptions fusion;
  RemapOptions remap;
  /// Disable step 4 (used to study the post-optimizations alone).
  bool run_remapping = true;
  /// Disable step 2 (ablations; note baseline_result() then has no target).
  /// Step 4 re-runs weight locality and fusion internally per candidate
  /// move, so disabling steps 2-3 is a true ablation only together with
  /// run_remapping = false.
  bool run_weight_locality = true;
  /// Disable step 3 (same caveat as run_weight_locality).
  bool run_fusion = true;
  /// Wall-clock budget for the whole search; the remapping pass stops
  /// cleanly when it is exhausted (PlanResponse::stopped_on_budget).
  std::optional<double> time_budget_s;
};

struct StepSnapshot {
  std::string name;        // "1: computation-prioritized", ...
  ScheduleResult result;   // full schedule + energy after this step
};

/// One planning request. Exactly one of `model` (zoo key) or `graph`
/// (caller-owned ModelGraph, copied into the session on a cache miss) must
/// be set. Prefer the static builders below over filling fields by hand.
struct PlanRequest {
  std::optional<ZooModel> model;
  const ModelGraph* graph = nullptr;
  /// System-wide accelerator-host bandwidth BW_acc, bytes/s. Part of the
  /// session cache key. Ignored by Planners borrowing a shared system (the
  /// shared system's own BW_acc applies).
  double bw_acc = 0.5e9;
  /// Optional explicit link topology. When set, the session's system is
  /// SystemConfig::standard(*links) — the custom system_factory does not
  /// apply — and the topology parameters join the session cache key
  /// (distinct topologies never share a CostTable). Ignored in
  /// shared-system mode, where the borrowed system's own topology rules.
  std::optional<Interconnect> links;
  /// Inference batch size; part of the cache key. 0 inherits the graph's
  /// batch (or 1 for zoo models).
  std::uint32_t batch = 0;
  /// Per-step toggles/options, including the remap objective
  /// (options.remap.objective) and the search time budget
  /// (options.time_budget_s). Every knob here has a string spelling in
  /// core/plan_options.h — the same table drives the CLI flags and the
  /// serve wire schema.
  PlanOptions options;
  /// Seed the pipeline from a prior response's mapping instead of running
  /// step 1 (must belong to the same model). Caller-owned.
  const Mapping* warm_start = nullptr;
  /// Skip ModelGraph::validate on the cold build (dynamic-modality subset
  /// variants legitimately keep single-input Concats).
  bool validate_model = true;

  [[nodiscard]] static PlanRequest zoo(ZooModel id, double bw_acc,
                                       std::uint32_t batch = 0);
  [[nodiscard]] static PlanRequest zoo(ZooModel id, BandwidthSetting bw,
                                       std::uint32_t batch = 0);
  /// Zoo model on an explicit topology (bw_acc follows its base bandwidth).
  [[nodiscard]] static PlanRequest zoo(ZooModel id, Interconnect links,
                                       std::uint32_t batch = 0);
  [[nodiscard]] static PlanRequest for_graph(const ModelGraph& graph,
                                             double bw_acc,
                                             std::uint32_t batch = 0);
};

/// A completed plan. For the default pipeline this is bit-identical to the
/// legacy H2HMapper::run() result (pinned across the zoo x catalog grid).
struct PlanResponse {
  Mapping mapping;
  LocalityPlan plan;
  std::vector<StepSnapshot> steps;  // one per executed pass, in order
  RemapStats remap_stats;
  /// Wall-clock of the pass pipeline alone (Fig. 5b's search time).
  double search_seconds = 0;
  /// Cold-start cost: model copy + SystemConfig + Simulator/CostTable
  /// construction. Zero on a warm (cache-hit) request.
  double setup_seconds = 0;
  /// True when the session cache served this request without rebuilding.
  bool warm = false;
  /// True when remapping stopped on PlanOptions::time_budget_s before
  /// converging.
  bool stopped_on_budget = false;

  [[nodiscard]] const ScheduleResult& final_result() const {
    H2H_EXPECTS(!steps.empty());
    return steps.back().result;
  }
  /// The paper's baseline snapshot — the state after weight locality
  /// (step 2), looked up by snapshot name so step toggles cannot silently
  /// re-point it — or nullptr when no executed pass recorded one.
  [[nodiscard]] const ScheduleResult* find_baseline() const;
  /// As find_baseline, but a missing baseline (e.g. a step-1-only run) is a
  /// precondition violation (throws ContractViolation).
  [[nodiscard]] const ScheduleResult& baseline_result() const;
  /// final latency / baseline latency (Table 4 column 4 semantics).
  [[nodiscard]] double latency_vs_baseline() const {
    return final_result().latency / baseline_result().latency;
  }
  [[nodiscard]] double energy_vs_baseline() const {
    return final_result().energy.total() / baseline_result().energy.total();
  }
};

/// Assemble the paper's pipeline from the request toggles: seed (warm-start
/// mapping if given, computation-prioritized otherwise), then steps 2-4 as
/// enabled.
[[nodiscard]] PassPipeline make_default_pipeline(
    const PlanOptions& options, const Mapping* warm_start = nullptr);

/// Execute a pipeline on `sim`, recording a snapshot after every pass.
/// This is the one pipeline driver — Planner, the H2HMapper shim, and the
/// baseline runners all route through it.
[[nodiscard]] PlanResponse run_passes(
    const Simulator& sim, const PassPipeline& pipeline,
    std::optional<double> time_budget_s = std::nullopt);

/// Builds the per-session SystemConfig for a request's BW_acc.
using SystemFactory = std::function<SystemConfig(double bw_acc)>;

struct PlannerOptions {
  /// Factory for owned per-session systems; defaults to
  /// SystemConfig::standard(bw_acc). Ignored when `shared_system` is set.
  SystemFactory system_factory;
  /// Borrow one caller-owned system for every session instead of building
  /// per-bandwidth copies (custom-accelerator setups: AcceleratorModel is
  /// move-only, so SystemConfigs cannot be copied). Sessions then follow the
  /// shared system's lazy CostTable-rebuild semantics: mutating its BW_acc
  /// invalidates the tables, which rebuild on the next request — billed to
  /// that response's setup_seconds, with warm = false. Must outlive the
  /// Planner.
  const SystemConfig* shared_system = nullptr;
  /// Session-cache capacity (least-recently-used eviction). The default
  /// holds the full paper sweep (6 models x 5 bandwidths) twice over.
  /// Capacity is enforced per shard at ceil(max_sessions / shards), so a
  /// skewed key distribution evicts earlier than a global LRU would.
  std::size_t max_sessions = 64;
  /// Lock shards of the session cache: sessions hash to a shard by key and
  /// concurrent requests for different shards never contend. 1 reproduces
  /// the exact global-LRU semantics (tests pin eviction order with it).
  std::size_t shards = 4;
};

class Planner {
 public:
  Planner();
  explicit Planner(PlannerOptions options);
  /// Convenience: borrow `shared_system` for every session.
  explicit Planner(const SystemConfig& shared_system);
  /// Rvalue systems are rejected at compile time: the Planner stores a
  /// pointer, so a temporary would dangle.
  explicit Planner(SystemConfig&&) = delete;
  ~Planner();  // out of line: Session is incomplete here
  /// Moving a Planner with requests in flight is a data race; move only
  /// while quiescent (construction/teardown paths).
  Planner(Planner&&) noexcept;
  Planner& operator=(Planner&&) noexcept;

  /// Plan with the default pipeline assembled from the request. Safe to
  /// call from multiple threads concurrently.
  [[nodiscard]] PlanResponse plan(const PlanRequest& request);
  /// Plan with a caller-assembled pipeline (baseline variants, dynamic
  /// modality) over the same session cache.
  [[nodiscard]] PlanResponse plan(const PlanRequest& request,
                                  const PassPipeline& pipeline);

  /// Cached sessions across all shards (exact while quiescent; a snapshot
  /// under concurrent traffic).
  [[nodiscard]] std::size_t session_count() const noexcept;
  [[nodiscard]] std::uint64_t cache_hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t cache_misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }
  /// Drop all cached sessions (the next request of each key is cold).
  /// Sessions still in use by in-flight requests stay alive until those
  /// requests return.
  void clear_sessions() noexcept;

 private:
  struct Session;
  struct Shard;

  [[nodiscard]] Shard& shard_for(std::uint64_t key_hash) const noexcept;
  [[nodiscard]] std::shared_ptr<Session> session_for(
      const PlanRequest& request, double& setup_seconds, bool& warm);

  PlannerOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

/// One-shot convenience: build the cost state for (model, sys), run the
/// default pipeline once, and throw the state away. Exactly what the
/// deprecated H2HMapper did — prefer a Planner anywhere a scenario repeats.
[[nodiscard]] PlanResponse plan_once(const ModelGraph& model,
                                     const SystemConfig& sys,
                                     PlanOptions options = {});

/// Structural fingerprint of a model (name, dtype, layer shapes/params,
/// edges; batch excluded — it is a separate cache-key component). Two graphs
/// with equal fingerprints are treated as the same session key.
[[nodiscard]] std::uint64_t model_fingerprint(const ModelGraph& model);

}  // namespace h2h
