// Energy accounting. Following the paper's evaluation, system energy is the
// sum of
//   - compute energy: MAC/vector switching energy per layer,
//   - host-link energy: link power x active transfer time (this is what
//     makes energy track the communication savings in Fig. 4),
//   - local DRAM energy: per-byte access cost for pinned-weight and fused
//     activation traffic (host traffic also lands in the accelerator DRAM),
//   - optional static energy: idle power x makespan x accelerator count.
#pragma once

namespace h2h {

struct EnergyBreakdown {
  double compute = 0;       // joules
  double link = 0;          // joules
  double dram = 0;          // joules
  double static_power = 0;  // joules

  [[nodiscard]] double total() const noexcept {
    return compute + link + dram + static_power;
  }

  EnergyBreakdown& operator+=(const EnergyBreakdown& rhs) noexcept {
    compute += rhs.compute;
    link += rhs.link;
    dram += rhs.dram;
    static_power += rhs.static_power;
    return *this;
  }
};

}  // namespace h2h
