#include "model/model_graph.h"

#include <set>

#include "util/error.h"
#include "util/str.h"

namespace h2h {

ModelGraph::ModelGraph(std::string name, std::uint32_t dtype_bytes)
    : name_(std::move(name)), dtype_bytes_(dtype_bytes) {
  H2H_EXPECTS(dtype_bytes_ >= 1 && dtype_bytes_ <= 8);
}

LayerId ModelGraph::add_layer(Layer layer, std::span<const LayerId> inputs) {
  const LayerId id = graph_.add_node();
  layers_.push_back(std::move(layer));
  for (const LayerId in : inputs) graph_.add_edge(in, id);
  return id;
}

ModelStats ModelGraph::stats() const {
  ModelStats s;
  s.node_count = layers_.size();
  std::set<std::uint32_t> modalities;
  for (const Layer& l : layers_) {
    s.total_params += l.param_count();
    s.total_macs += l.macs();
    s.total_weight_bytes += l.weight_bytes(dtype_bytes_);
    s.total_activation_bytes += l.out_bytes(dtype_bytes_);
    if (l.is_compute_layer()) ++s.compute_layer_count;
    if (l.modality != 0) modalities.insert(l.modality);
  }
  s.modality_count = static_cast<std::uint32_t>(modalities.size());
  return s;
}

std::vector<LayerId> ModelGraph::all_layers() const {
  std::vector<LayerId> ids;
  ids.reserve(layers_.size());
  for (std::uint32_t i = 0; i < layers_.size(); ++i) ids.push_back(LayerId{i});
  return ids;
}

namespace {

[[noreturn]] void fail(const ModelGraph& m, const Layer& l, const std::string& why) {
  throw ConfigError(strformat("model '%s', layer '%s' (%s): %s",
                              m.name().c_str(), l.name.c_str(),
                              std::string(to_string(l.kind)).c_str(),
                              why.c_str()));
}

}  // namespace

void ModelGraph::validate() const {
  if (layers_.empty())
    throw ConfigError(strformat("model '%s' has no layers", name_.c_str()));
  if (!is_dag(graph_))
    throw ConfigError(strformat("model '%s' has a dependency cycle", name_.c_str()));

  for (const LayerId id : all_layers()) {
    const Layer& l = layer(id);
    const auto preds = graph_.preds(id);

    switch (l.kind) {
      case LayerKind::Input:
        if (!preds.empty()) fail(*this, l, "Input layer must have no predecessors");
        break;
      case LayerKind::Conv:
      case LayerKind::FullyConnected:
      case LayerKind::Lstm:
      case LayerKind::Pool:
        if (preds.size() != 1)
          fail(*this, l, strformat("expects exactly 1 input, has %zu", preds.size()));
        break;
      case LayerKind::Eltwise:
      case LayerKind::Concat:
        if (preds.size() < 2)
          fail(*this, l, strformat("expects >= 2 inputs, has %zu", preds.size()));
        break;
    }

    // Shape agreement with producers.
    if (l.kind == LayerKind::Eltwise) {
      const std::uint64_t want = l.out_elems();
      for (const LayerId p : preds) {
        if (layer(p).out_elems() != want)
          fail(*this, l,
               strformat("eltwise input '%s' has %llu elems, expected %llu",
                         layer(p).name.c_str(),
                         static_cast<unsigned long long>(layer(p).out_elems()),
                         static_cast<unsigned long long>(want)));
      }
    } else if (l.kind == LayerKind::Concat) {
      std::uint64_t got = 0;
      for (const LayerId p : preds) got += layer(p).out_elems();
      if (got != l.out_elems())
        fail(*this, l,
             strformat("concat inputs sum to %llu elems, expected %llu",
                       static_cast<unsigned long long>(got),
                       static_cast<unsigned long long>(l.out_elems())));
    } else if (l.kind == LayerKind::Conv || l.kind == LayerKind::Pool ||
               l.kind == LayerKind::FullyConnected || l.kind == LayerKind::Lstm) {
      const Layer& p = layer(preds.front());
      std::uint64_t want = 0;
      switch (l.kind) {
        case LayerKind::Conv: {
          // Input tensor = M x (R*S) x (C*S) approximately; we check only
          // channel agreement (spatial padding conventions vary).
          const auto& s = std::get<ConvShape>(l.shape);
          const std::uint64_t in_c = producer_channels(p);
          if (in_c != 0 && in_c != s.in_channels)
            fail(*this, l,
                 strformat("in_channels=%u but producer '%s' provides %llu",
                           s.in_channels, p.name.c_str(),
                           static_cast<unsigned long long>(in_c)));
          want = 0;  // handled above
          break;
        }
        case LayerKind::Pool: {
          const auto& s = std::get<PoolShape>(l.shape);
          const std::uint64_t in_c = producer_channels(p);
          if (in_c != 0 && in_c != s.channels)
            fail(*this, l,
                 strformat("channels=%u but producer '%s' provides %llu",
                           s.channels, p.name.c_str(),
                           static_cast<unsigned long long>(in_c)));
          want = 0;
          break;
        }
        case LayerKind::FullyConnected: {
          const auto& s = std::get<FcShape>(l.shape);
          want = s.in_features;
          break;
        }
        case LayerKind::Lstm: {
          const auto& s = std::get<LstmShape>(l.shape);
          want = static_cast<std::uint64_t>(s.in_size) * s.seq_len;
          break;
        }
        default: break;
      }
      if (want != 0 && p.out_elems() != want)
        fail(*this, l,
             strformat("consumes %llu elems but producer '%s' provides %llu",
                       static_cast<unsigned long long>(want), p.name.c_str(),
                       static_cast<unsigned long long>(p.out_elems())));
    }
  }
}

}  // namespace h2h
