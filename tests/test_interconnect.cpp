#include "system/interconnect.h"

#include <gtest/gtest.h>

#include "system/system_config.h"
#include "util/error.h"
#include "util/units.h"

namespace h2h {
namespace {

constexpr AccId kHost = AccId::host();

AccId acc(std::uint32_t v) { return AccId{v}; }

TEST(Interconnect, UniformIsOneSpeedEverywhere) {
  Interconnect ic = Interconnect::uniform(gbps(0.5));
  EXPECT_FALSE(ic.bound());
  ic.bind(4);
  ASSERT_TRUE(ic.bound());
  EXPECT_EQ(ic.shape(), LinkShape::Uniform);
  EXPECT_EQ(ic.shape_name(), "uniform");
  EXPECT_TRUE(ic.uniform_links());
  EXPECT_EQ(ic.base_bw(), gbps(0.5));
  EXPECT_EQ(ic.bandwidth(acc(0), acc(3)), gbps(0.5));
  EXPECT_EQ(ic.bandwidth(acc(2), kHost), gbps(0.5));
  EXPECT_EQ(ic.host_bandwidth(acc(1)), gbps(0.5));
  EXPECT_EQ(ic.latency(acc(0), acc(1)), 0.0);
  EXPECT_EQ(ic.min_bandwidth(), ic.max_bandwidth());
}

TEST(Interconnect, MixedPairIsSlowerEndpointHostIsOwnUplink) {
  Interconnect ic = Interconnect::mixed(gbps(0.125), {{0, gbps(1.25)},
                                                      {2, gbps(1.25)}});
  ic.bind(4);
  EXPECT_EQ(ic.shape(), LinkShape::Mixed);
  EXPECT_FALSE(ic.uniform_links());
  // Host links follow each accelerator's own uplink.
  EXPECT_EQ(ic.host_bandwidth(acc(0)), gbps(1.25));
  EXPECT_EQ(ic.host_bandwidth(acc(1)), gbps(0.125));
  // Pairs run at the slower endpoint.
  EXPECT_EQ(ic.bandwidth(acc(0), acc(2)), gbps(1.25));
  EXPECT_EQ(ic.bandwidth(acc(0), acc(1)), gbps(0.125));
  // Symmetry.
  EXPECT_EQ(ic.bandwidth(acc(1), acc(0)), ic.bandwidth(acc(0), acc(1)));
  EXPECT_EQ(ic.min_bandwidth(), gbps(0.125));
  EXPECT_EQ(ic.max_bandwidth(), gbps(1.25));
  EXPECT_EQ(ic.latency(acc(0), acc(1)), 0.0);
}

TEST(Interconnect, MixedWithEqualOverridesDegradesToUniform) {
  Interconnect ic = Interconnect::mixed(gbps(0.5), {{1, gbps(0.5)}});
  ic.bind(3);
  EXPECT_TRUE(ic.uniform_links());
  EXPECT_EQ(ic.min_bandwidth(), ic.max_bandwidth());
}

TEST(Interconnect, HierarchicalGroupsAndHops) {
  Interconnect::HierarchicalSpec spec;
  spec.group_size = 2;
  spec.intra_bw = gbps(1.25);
  spec.uplink_bw = gbps(0.25);
  spec.host_bw = gbps(0.5);
  spec.hop_latency_s = 2e-6;
  Interconnect ic = Interconnect::hierarchical(spec);
  ic.bind(4);
  EXPECT_EQ(ic.shape(), LinkShape::Hierarchical);
  EXPECT_FALSE(ic.uniform_links());
  // Same group (0,1), cross group (0,2), host.
  EXPECT_EQ(ic.bandwidth(acc(0), acc(1)), gbps(1.25));
  EXPECT_EQ(ic.bandwidth(acc(0), acc(2)), gbps(0.25));
  EXPECT_EQ(ic.bandwidth(acc(3), kHost), gbps(0.5));
  EXPECT_EQ(ic.base_bw(), gbps(0.5));
  // Hop latency: 1 intra, 2 to host, 3 cross-group.
  EXPECT_DOUBLE_EQ(ic.latency(acc(0), acc(1)), 2e-6);
  EXPECT_DOUBLE_EQ(ic.latency(acc(0), kHost), 4e-6);
  EXPECT_DOUBLE_EQ(ic.latency(acc(0), acc(2)), 6e-6);
  EXPECT_EQ(ic.min_bandwidth(), gbps(0.25));
  EXPECT_EQ(ic.max_bandwidth(), gbps(1.25));
}

TEST(Interconnect, HierarchicalHostDefaultsToUplink) {
  Interconnect::HierarchicalSpec spec;
  spec.group_size = 4;
  spec.intra_bw = gbps(1.25);
  spec.uplink_bw = gbps(0.25);
  Interconnect ic = Interconnect::hierarchical(spec);
  ic.bind(8);
  EXPECT_EQ(ic.bandwidth(acc(0), kHost), gbps(0.25));
  EXPECT_EQ(ic.base_bw(), gbps(0.25));
}

TEST(Interconnect, HierarchicalSingleGroupNeverChargesUplink) {
  // Four accelerators in one group of four: the cross-group fabric speed is
  // unrealizable and must not leak into min/max (or break uniformity when
  // all realizable speeds agree).
  Interconnect::HierarchicalSpec spec;
  spec.group_size = 4;
  spec.intra_bw = gbps(0.5);
  spec.uplink_bw = gbps(0.0625);
  spec.host_bw = gbps(0.5);
  Interconnect ic = Interconnect::hierarchical(spec);
  ic.bind(4);
  EXPECT_EQ(ic.min_bandwidth(), gbps(0.5));
  EXPECT_EQ(ic.max_bandwidth(), gbps(0.5));
  EXPECT_TRUE(ic.uniform_links());
}

TEST(Interconnect, HopLatencyAloneBreaksUniformity) {
  Interconnect::HierarchicalSpec spec;
  spec.group_size = 4;
  spec.intra_bw = gbps(0.5);
  spec.uplink_bw = gbps(0.5);
  spec.host_bw = gbps(0.5);
  spec.hop_latency_s = 1e-6;
  Interconnect ic = Interconnect::hierarchical(spec);
  ic.bind(8);
  EXPECT_EQ(ic.min_bandwidth(), ic.max_bandwidth());
  EXPECT_FALSE(ic.uniform_links());
}

TEST(Interconnect, SetBaseBwMovesTheRightKnob) {
  Interconnect mixed = Interconnect::mixed(gbps(0.125), {{0, gbps(1.25)}});
  mixed.bind(2);
  const std::uint64_t before = mixed.fingerprint();
  mixed.set_base_bw(gbps(0.25));
  EXPECT_EQ(mixed.host_bandwidth(acc(1)), gbps(0.25));
  EXPECT_EQ(mixed.host_bandwidth(acc(0)), gbps(1.25));  // override stays
  EXPECT_NE(mixed.fingerprint(), before);

  Interconnect::HierarchicalSpec spec;
  spec.group_size = 2;
  spec.intra_bw = gbps(1.25);
  spec.uplink_bw = gbps(0.25);
  Interconnect hier = Interconnect::hierarchical(spec);
  hier.bind(4);
  hier.set_base_bw(gbps(0.5));
  EXPECT_EQ(hier.bandwidth(acc(0), kHost), gbps(0.5));   // host moved
  EXPECT_EQ(hier.bandwidth(acc(0), acc(1)), gbps(1.25));  // fabric stays
  EXPECT_EQ(hier.bandwidth(acc(0), acc(2)), gbps(0.25));
}

TEST(Interconnect, FingerprintSeparatesTopologies) {
  Interconnect a = Interconnect::uniform(gbps(0.5));
  Interconnect b = Interconnect::uniform(gbps(0.25));
  Interconnect c = Interconnect::mixed(gbps(0.5), {});
  EXPECT_NE(a.params_fingerprint(), b.params_fingerprint());
  EXPECT_NE(a.params_fingerprint(), c.params_fingerprint());
  a.bind(4);
  b.bind(4);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  // Same parameters, different bound count -> different fingerprint but the
  // same params fingerprint.
  Interconnect a2 = Interconnect::uniform(gbps(0.5));
  a2.bind(8);
  EXPECT_EQ(a.params_fingerprint(), a2.params_fingerprint());
  EXPECT_NE(a.fingerprint(), a2.fingerprint());
}

TEST(Interconnect, FactoryAndBindValidation) {
  EXPECT_THROW((void)Interconnect::uniform(0), ConfigError);
  EXPECT_THROW((void)Interconnect::uniform(-1), ConfigError);
  EXPECT_THROW((void)Interconnect::mixed(0, {}), ConfigError);
  EXPECT_THROW((void)Interconnect::mixed(gbps(0.5), {{0, 0}}), ConfigError);
  EXPECT_THROW((void)Interconnect::mixed(gbps(0.5), {{1, gbps(1)},
                                                     {1, gbps(2)}}),
               ConfigError);
  Interconnect::HierarchicalSpec spec;
  EXPECT_THROW((void)Interconnect::hierarchical(spec), ConfigError);  // no bw
  spec.intra_bw = gbps(1);
  spec.uplink_bw = gbps(1);
  spec.group_size = 0;
  EXPECT_THROW((void)Interconnect::hierarchical(spec), ConfigError);
  spec.group_size = 4;
  spec.hop_latency_s = -1;
  EXPECT_THROW((void)Interconnect::hierarchical(spec), ConfigError);

  Interconnect out_of_range = Interconnect::mixed(gbps(0.5), {{7, gbps(1)}});
  EXPECT_THROW(out_of_range.bind(4), ConfigError);
  Interconnect ok = Interconnect::uniform(gbps(0.5));
  EXPECT_THROW(ok.bind(0), ConfigError);
  // Unbound queries are contract violations.
  EXPECT_THROW((void)ok.bandwidth(acc(0), kHost), ContractViolation);
  EXPECT_THROW((void)ok.fingerprint(), ContractViolation);
  ok.bind(2);
  EXPECT_THROW((void)ok.bandwidth(kHost, kHost), ContractViolation);
  EXPECT_THROW((void)ok.bandwidth(acc(5), kHost), ContractViolation);
}

TEST(InterconnectParse, AcceptsAllThreeGrammars) {
  const Interconnect u = parse_links_spec("uniform:0.5");
  EXPECT_EQ(u.shape(), LinkShape::Uniform);
  EXPECT_EQ(u.base_bw(), gbps(0.5));

  const Interconnect m = parse_links_spec("mixed:0.125,0=1.25,2=1.25");
  EXPECT_EQ(m.shape(), LinkShape::Mixed);
  EXPECT_EQ(m.base_bw(), gbps(0.125));
  ASSERT_EQ(m.overrides().size(), 2u);
  EXPECT_EQ(m.overrides()[0].first, 0u);
  EXPECT_EQ(m.overrides()[1].first, 2u);
  EXPECT_EQ(m.overrides()[1].second, gbps(1.25));

  const Interconnect h =
      parse_links_spec("hier:group=4,intra=1.25,uplink=0.25,host=0.5,lat_us=2");
  EXPECT_EQ(h.shape(), LinkShape::Hierarchical);
  EXPECT_EQ(h.hier().group_size, 4u);
  EXPECT_EQ(h.hier().intra_bw, gbps(1.25));
  EXPECT_EQ(h.hier().uplink_bw, gbps(0.25));
  EXPECT_EQ(h.hier().host_bw, gbps(0.5));
  EXPECT_DOUBLE_EQ(h.hier().hop_latency_s, 2e-6);

  const Interconnect h2 = parse_links_spec("hier:group=2,intra=1,uplink=0.5");
  EXPECT_EQ(h2.hier().host_bw, gbps(0.5));  // follows the uplink
  EXPECT_EQ(h2.hier().hop_latency_s, 0.0);
}

TEST(InterconnectParse, RejectsMalformedSpecs) {
  EXPECT_THROW((void)parse_links_spec(""), ConfigError);
  EXPECT_THROW((void)parse_links_spec("uniform"), ConfigError);
  EXPECT_THROW((void)parse_links_spec("uniform:fast"), ConfigError);
  EXPECT_THROW((void)parse_links_spec("uniform:0.5,0.25"), ConfigError);
  EXPECT_THROW((void)parse_links_spec("ring:0.5"), ConfigError);
  EXPECT_THROW((void)parse_links_spec("mixed:0.5,3"), ConfigError);
  EXPECT_THROW((void)parse_links_spec("mixed:0.5,-1=2"), ConfigError);
  EXPECT_THROW((void)parse_links_spec("mixed:0.5,1.5=2"), ConfigError);
  EXPECT_THROW((void)parse_links_spec("hier:group=4"), ConfigError);
  EXPECT_THROW((void)parse_links_spec("hier:group=4,intra=1,uplink=1,bogus=2"),
               ConfigError);
}

/// ConfigError whose message contains `needle` — rejections must say what
/// was wrong, not just refuse.
[[nodiscard]] testing::AssertionResult rejects(std::string_view spec,
                                               std::string_view needle) {
  try {
    (void)parse_links_spec(spec);
  } catch (const ConfigError& e) {
    if (std::string_view(e.what()).find(needle) != std::string_view::npos)
      return testing::AssertionSuccess();
    return testing::AssertionFailure()
           << "'" << spec << "' threw '" << e.what() << "' without '" << needle
           << "'";
  }
  return testing::AssertionFailure() << "'" << spec << "' was accepted";
}

TEST(InterconnectParse, RejectionsNameTheProblemAndShowUsage) {
  // Malformed shapes carry the full grammar hint.
  EXPECT_TRUE(rejects("", "missing shape"));
  EXPECT_TRUE(rejects("0.5", "missing shape"));
  EXPECT_TRUE(rejects("ring:0.5", "unknown shape 'ring'"));
  EXPECT_TRUE(rejects("ring:0.5", "expected uniform:<GB/s>"));
  EXPECT_TRUE(rejects("MIXED:0.5", "unknown shape"));  // case-sensitive

  // Trailing junk: a dangling comma leaves an empty trailing part, and
  // junk glued to a number fails the full-consume from_chars check.
  EXPECT_TRUE(rejects("uniform:0.5,", "uniform takes one bandwidth"));
  EXPECT_TRUE(rejects("uniform:0.5x", "not a number"));
  EXPECT_TRUE(rejects("uniform:0.5 ", "not a number"));
  EXPECT_TRUE(rejects("mixed:0.125,0=1.25,", "must be <acc>=<GB/s>"));
  EXPECT_TRUE(rejects("mixed:0.125,0=1.25x", "not a number"));
  EXPECT_TRUE(rejects("hier:group=4,intra=1,uplink=1,", "must be key=value"));

  // Duplicate and non-positive mixed overrides (factory validation
  // reached through the parser).
  EXPECT_TRUE(rejects("mixed:0.5,3=1,3=2", "duplicate uplink override"));
  EXPECT_TRUE(rejects("mixed:0.5,0=0", "must be > 0"));
  EXPECT_TRUE(rejects("mixed:0,0=1", "must be > 0"));
  EXPECT_TRUE(rejects("uniform:0", "must be > 0"));
  EXPECT_TRUE(rejects("uniform:-0.5", "must be > 0"));

  // Missing hier keys, in every combination of the three required ones,
  // plus key-without-value spellings.
  EXPECT_TRUE(rejects("hier:intra=1,uplink=1", "requires group, intra"));
  EXPECT_TRUE(rejects("hier:group=4,uplink=1", "requires group, intra"));
  EXPECT_TRUE(rejects("hier:group=4,intra=1", "requires group, intra"));
  EXPECT_TRUE(rejects("hier:group=0,intra=1,uplink=1", "requires group"));
  EXPECT_TRUE(rejects("hier:group", "must be key=value"));
  EXPECT_TRUE(rejects("hier:group=,intra=1,uplink=1", "not a number"));

  // Out-of-range overrides parse fine and fail at bind time, where the
  // system size is finally known.
  Interconnect oor = parse_links_spec("mixed:0.125,12=1.25");
  EXPECT_THROW(oor.bind(12), ConfigError);  // accs are 0..11
  Interconnect fits = parse_links_spec("mixed:0.125,11=1.25");
  EXPECT_NO_THROW(fits.bind(12));
}

TEST(InterconnectSystem, ScalarConstructorShimsToUniform) {
  const SystemConfig sys = SystemConfig::standard(gbps(0.5));
  EXPECT_EQ(sys.links().shape(), LinkShape::Uniform);
  EXPECT_TRUE(sys.links().uniform_links());
  EXPECT_EQ(sys.links().acc_count(), sys.accelerator_count());
  EXPECT_EQ(sys.bw_acc(acc(0)), gbps(0.5));
}

TEST(InterconnectSystem, ExplicitTopologyDrivesBwAcc) {
  const SystemConfig sys = SystemConfig::standard(
      Interconnect::mixed(gbps(0.125), {{0, gbps(1.25)}}));
  EXPECT_EQ(sys.links().shape(), LinkShape::Mixed);
  EXPECT_EQ(sys.bw_acc(acc(0)), gbps(1.25));
  EXPECT_EQ(sys.bw_acc(acc(1)), gbps(0.125));
  EXPECT_EQ(sys.host().bw_acc, gbps(0.125));  // base bandwidth
}

TEST(InterconnectSystem, SetBwAccRederivesTopology) {
  SystemConfig sys = SystemConfig::standard(gbps(0.5));
  const std::uint64_t before = sys.links().fingerprint();
  sys.set_bw_acc(gbps(0.125));
  EXPECT_EQ(sys.bw_acc(acc(3)), gbps(0.125));
  EXPECT_NE(sys.links().fingerprint(), before);
}

TEST(InterconnectSystem, ScaledBuildsLargeSystems) {
  Interconnect::HierarchicalSpec spec;
  spec.group_size = 4;
  spec.intra_bw = gbps(1.25);
  spec.uplink_bw = gbps(0.25);
  const SystemConfig sys =
      SystemConfig::scaled(32, Interconnect::hierarchical(spec));
  EXPECT_EQ(sys.accelerator_count(), 32u);
  EXPECT_EQ(sys.links().acc_count(), 32u);
  // Names stay unique across catalog repetitions.
  EXPECT_NE(sys.spec(acc(0)).name, sys.spec(acc(12)).name);
  EXPECT_EQ(sys.bw_acc(acc(31)), gbps(0.25));
}

}  // namespace
}  // namespace h2h
