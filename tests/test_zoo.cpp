#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "model/zoo.h"

namespace h2h {
namespace {

// Every zoo model must validate, be a DAG, honor Table 2's parameter count
// within +/-15%, and carry the expected modality structure.
class ZooModelTest : public ::testing::TestWithParam<ZooInfo> {};

TEST_P(ZooModelTest, ValidatesAndMatchesTable2Params) {
  const ZooInfo& info = GetParam();
  const ModelGraph m = make_model(info.id);
  EXPECT_NO_THROW(m.validate());
  EXPECT_TRUE(is_dag(m.graph()));

  const double mparams =
      static_cast<double>(m.stats().total_params) / 1e6;
  EXPECT_GT(mparams, info.paper_params_millions * 0.85)
      << info.key << " params " << mparams << "M";
  EXPECT_LT(mparams, info.paper_params_millions * 1.15)
      << info.key << " params " << mparams << "M";
}

TEST_P(ZooModelTest, HasCrossModalityFusion) {
  const ZooInfo& info = GetParam();
  const ModelGraph m = make_model(info.id);
  const ModelStats s = m.stats();
  // MMMT: at least two modalities, plus shared fusion layers (tag 0).
  EXPECT_GE(s.modality_count, 2u) << info.key;
  bool has_fusion_compute = false;
  for (const LayerId id : m.all_layers()) {
    const Layer& l = m.layer(id);
    if (l.modality == 0 && l.is_compute_layer()) has_fusion_compute = true;
  }
  EXPECT_TRUE(has_fusion_compute) << info.key;
}

TEST_P(ZooModelTest, EveryLayerReachableFromInputs) {
  const ModelGraph m = make_model(GetParam().id);
  const std::vector<NodeId> inputs = m.graph().sources();
  const auto seen = reachable_from(m.graph(), inputs);
  for (const LayerId id : m.all_layers())
    EXPECT_TRUE(seen[id.value]) << m.layer(id).name;
}

INSTANTIATE_TEST_SUITE_P(
    Table2, ZooModelTest,
    ::testing::ValuesIn(zoo_catalog().begin(), zoo_catalog().end()),
    [](const ::testing::TestParamInfo<ZooInfo>& i) {
      std::string name(i.param.key);
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

TEST(Zoo, VLocNetScaleMatchesPaperDescription) {
  const ModelGraph m = make_vlocnet();
  const ModelStats s = m.stats();
  // The paper says VLocNet has 141 layers; our reconstruction has the same
  // order of magnitude of Table-1 layers (Conv/FC), see EXPERIMENTS.md.
  EXPECT_GE(s.compute_layer_count, 130u);
  EXPECT_LE(s.compute_layer_count, 170u);
}

TEST(Zoo, SmallModelsAreUnder30Layers) {
  // "the CNN-LSTM and MoCap ... consist of less than 30 layers".
  EXPECT_LT(make_cnn_lstm().stats().node_count, 30u);
  EXPECT_LT(make_mocap().stats().node_count, 30u);
}

TEST(Zoo, LstmModelsContainLstm) {
  const auto has_lstm = [](const ModelGraph& m) {
    for (const LayerId id : m.all_layers())
      if (m.layer(id).kind == LayerKind::Lstm) return true;
    return false;
  };
  EXPECT_TRUE(has_lstm(make_cnn_lstm()));
  EXPECT_TRUE(has_lstm(make_mocap()));
  EXPECT_FALSE(has_lstm(make_vlocnet()));
  EXPECT_FALSE(has_lstm(make_vfs()));
}

TEST(Zoo, CatalogLookupByKey) {
  EXPECT_EQ(zoo_model_by_key("vlocnet"), ZooModel::VLocNet);
  EXPECT_EQ(zoo_model_by_key("mocap"), ZooModel::MoCap);
  EXPECT_EQ(zoo_model_by_key("nope"), std::nullopt);
  EXPECT_EQ(zoo_info(ZooModel::Vfs).domain, "Sentiment Analysis");
  EXPECT_EQ(zoo_catalog().size(), 6u);
}

TEST(Zoo, DeterministicConstruction) {
  const ModelGraph a = make_casia_surf();
  const ModelGraph b = make_casia_surf();
  ASSERT_EQ(a.layer_count(), b.layer_count());
  for (const LayerId id : a.all_layers()) {
    EXPECT_EQ(a.layer(id).name, b.layer(id).name);
    EXPECT_EQ(a.layer(id).param_count(), b.layer(id).param_count());
  }
  EXPECT_EQ(a.graph().edge_count(), b.graph().edge_count());
}

}  // namespace
}  // namespace h2h
