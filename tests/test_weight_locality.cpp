#include <gtest/gtest.h>

#include "core/comp_prioritized.h"
#include "core/weight_locality.h"
#include "test_helpers.h"

namespace h2h {
namespace {

TEST(WeightLocality, PinsEverythingWhenDramIsAmple) {
  const ModelGraph m = testing::make_chain_model();
  const SystemConfig sys = testing::make_uniform_system(1);
  const Simulator sim(m, sys);
  Mapping mapping(m);
  for (const LayerId id : m.all_layers())
    if (m.layer(id).kind != LayerKind::Input) mapping.assign(id, AccId{0});

  LocalityPlan plan(m);
  const double saved = optimize_weight_locality(sim, mapping, plan);
  for (const LayerId id : m.all_layers()) {
    if (m.layer(id).has_weights())
      EXPECT_TRUE(plan.pinned(id)) << m.layer(id).name;
    else
      EXPECT_FALSE(plan.pinned(id)) << m.layer(id).name;
  }
  // Saved time = weights * (1/bw_host - 1/bw_local).
  const Bytes wb = m.stats().total_weight_bytes;
  EXPECT_NEAR(saved,
              static_cast<double>(wb) * (1.0 / 1e9 - 1.0 / 1e10), 1e-12);
  EXPECT_EQ(plan.used_dram(AccId{0}), wb);
}

TEST(WeightLocality, RespectsTightCapacity) {
  const ModelGraph m = testing::make_chain_model();
  // convA weights 2336 B, convB 4640 B, fcC 16448 B. Capacity 8 KiB: the
  // knapsack must prefer convB + convA (savings scale with bytes).
  const SystemConfig sys = testing::make_uniform_system(1, 1e9, 8192);
  const Simulator sim(m, sys);
  Mapping mapping(m);
  for (const LayerId id : m.all_layers())
    if (m.layer(id).kind != LayerKind::Input) mapping.assign(id, AccId{0});

  LocalityPlan plan(m);
  optimize_weight_locality(sim, mapping, plan);
  EXPECT_TRUE(plan.pinned(LayerId{1}));
  EXPECT_TRUE(plan.pinned(LayerId{2}));
  EXPECT_FALSE(plan.pinned(LayerId{3}));  // 16448 B does not fit
  EXPECT_LE(plan.used_dram(AccId{0}), 8192u);
}

TEST(WeightLocality, SchedulingImprovesAfterPass) {
  const ModelGraph m = make_model(ZooModel::MoCap);
  const SystemConfig sys = SystemConfig::standard(BandwidthSetting::LowMinus);
  const Simulator sim(m, sys);
  const Mapping mapping = computation_prioritized_mapping(sim);
  LocalityPlan plan(m);
  plan.ensure_acc_count(sys.accelerator_count());
  const double before = sim.simulate(mapping, plan).latency;
  optimize_weight_locality(sim, mapping, plan);
  const double after = sim.simulate(mapping, plan).latency;
  EXPECT_LT(after, before);
}

TEST(WeightLocality, OnlyAccsLimitsScope) {
  const ModelGraph m = testing::make_chain_model();
  const SystemConfig sys = testing::make_uniform_system(2);
  const Simulator sim(m, sys);
  Mapping mapping(m);
  mapping.assign(LayerId{1}, AccId{0});
  mapping.assign(LayerId{2}, AccId{1});
  mapping.assign(LayerId{3}, AccId{1});

  LocalityPlan plan(m);
  plan.ensure_acc_count(2);
  const std::array<AccId, 1> only{AccId{1}};
  optimize_weight_locality(sim, mapping, plan, {}, only);
  EXPECT_FALSE(plan.pinned(LayerId{1}));  // acc 0 untouched
  EXPECT_TRUE(plan.pinned(LayerId{2}));
  EXPECT_TRUE(plan.pinned(LayerId{3}));
}

TEST(WeightLocality, ForcePinTakesPriorityUnderPressure) {
  const ModelGraph m = testing::make_chain_model();
  // Capacity fits only the fc (16448 B) OR the two convs; force the fc.
  const SystemConfig sys = testing::make_uniform_system(1, 1e9, 17000);
  const Simulator sim(m, sys);
  Mapping mapping(m);
  for (const LayerId id : m.all_layers())
    if (m.layer(id).kind != LayerKind::Input) mapping.assign(id, AccId{0});

  std::vector<bool> force(m.layer_count(), false);
  force[3] = true;  // fcC
  WeightLocalityOptions opts;
  opts.force_pin = &force;

  LocalityPlan plan(m);
  optimize_weight_locality(sim, mapping, plan, opts);
  EXPECT_TRUE(plan.pinned(LayerId{3}));
  // Remaining capacity (552 B) fits neither conv.
  EXPECT_FALSE(plan.pinned(LayerId{1}));
  EXPECT_FALSE(plan.pinned(LayerId{2}));
}

TEST(WeightLocality, GreedyAlgoOptionWorks) {
  const ModelGraph m = testing::make_chain_model();
  const SystemConfig sys = testing::make_uniform_system(1, 1e9, 8192);
  const Simulator sim(m, sys);
  Mapping mapping(m);
  for (const LayerId id : m.all_layers())
    if (m.layer(id).kind != LayerKind::Input) mapping.assign(id, AccId{0});

  WeightLocalityOptions opts;
  opts.algo = KnapsackAlgo::GreedyDensity;
  LocalityPlan plan(m);
  optimize_weight_locality(sim, mapping, plan, opts);
  EXPECT_LE(plan.used_dram(AccId{0}), 8192u);
  EXPECT_GE(plan.pinned_count(), 1u);
}

}  // namespace
}  // namespace h2h
