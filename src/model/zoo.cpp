#include "model/zoo.h"

#include <array>

#include "util/contracts.h"

namespace h2h {
namespace {

constexpr std::array<ZooInfo, 6> kCatalog{{
    {ZooModel::VLocNet, "vlocnet", "Augmented Reality", "ResNet-50 variants",
     192.0},
    {ZooModel::CasiaSurf, "casia-surf", "Face Recognition",
     "ResNet-18 variants", 13.2},
    {ZooModel::Vfs, "vfs", "Sentiment Analysis", "VGG and VD-CNN variants",
     365.0},
    {ZooModel::FaceBag, "facebag", "Face Recognition", "ResNet variants", 25.0},
    {ZooModel::CnnLstm, "cnn-lstm", "Activity Recognition",
     "ConvNet and LSTM variants", 16.0},
    {ZooModel::MoCap, "mocap", "Emotion Recognition",
     "Convolution and LSTM unit", 8.0},
}};

}  // namespace

std::span<const ZooInfo> zoo_catalog() { return kCatalog; }

const ZooInfo& zoo_info(ZooModel id) {
  for (const ZooInfo& info : kCatalog)
    if (info.id == id) return info;
  H2H_ASSERT(false);  // unreachable: all enumerators are in the catalog
  return kCatalog.front();
}

std::optional<ZooModel> zoo_model_by_key(std::string_view key) {
  for (const ZooInfo& info : kCatalog)
    if (info.key == key) return info.id;
  return std::nullopt;
}

ModelGraph make_model(ZooModel id) {
  switch (id) {
    case ZooModel::VLocNet: return make_vlocnet();
    case ZooModel::CasiaSurf: return make_casia_surf();
    case ZooModel::Vfs: return make_vfs();
    case ZooModel::FaceBag: return make_facebag();
    case ZooModel::CnnLstm: return make_cnn_lstm();
    case ZooModel::MoCap: return make_mocap();
  }
  H2H_ASSERT(false);
  return make_mocap();
}

}  // namespace h2h
