#include <gtest/gtest.h>

#include "accel/capability.h"
#include "accel/catalog.h"
#include "core/planner.h"
#include "system/cost_table.h"
#include "system/simulator.h"
#include "test_helpers.h"
#include "util/error.h"

namespace h2h {
namespace {

TEST(CapabilityTest, CanServeIsSupersetMatch) {
  EXPECT_TRUE(can_serve(0b111, 0b101));
  EXPECT_TRUE(can_serve(0b111, 0));
  EXPECT_TRUE(can_serve(0, 0));
  EXPECT_FALSE(can_serve(0b101, 0b111));
  EXPECT_FALSE(can_serve(0, 1));
}

TEST(CapabilityTest, SpecCapabilitiesDeriveKindAndMemoryBits) {
  AcceleratorSpec spec = testing::simple_spec("caps", gib(8));
  // simple_spec supports every kind at 10 GB/s local DRAM: big memory but
  // not the 16 GB/s fast-memory class.
  const CapabilityMask m = spec_capabilities(spec);
  EXPECT_TRUE(can_serve(m, kCapConv | kCapFc | kCapLstm | kCapBigMem));
  EXPECT_FALSE(can_serve(m, kCapFastMem));

  spec.dram_capacity = gib(1);
  spec.dram_bandwidth = gbps(20);
  const CapabilityMask m2 = spec_capabilities(spec);
  EXPECT_FALSE(can_serve(m2, kCapBigMem));
  EXPECT_TRUE(can_serve(m2, kCapFastMem));

  spec.extra_capabilities = 0x300;
  EXPECT_TRUE(can_serve(spec_capabilities(spec), 0x300));
}

TEST(CapabilityTest, StandardCatalogMemoryClasses) {
  const SystemConfig sys = SystemConfig::standard(0.5e9);
  std::size_t bigmem = 0, fastmem = 0;
  for (const AccId a : sys.all_accelerators()) {
    const CapabilityMask m = sys.capabilities(a);
    EXPECT_EQ(can_serve(m, kCapBigMem), sys.spec(a).dram_capacity >= gib(4));
    EXPECT_EQ(can_serve(m, kCapFastMem),
              sys.spec(a).dram_bandwidth >= gbps(16));
    bigmem += can_serve(m, kCapBigMem);
    fastmem += can_serve(m, kCapFastMem);
  }
  // Table-3 catalog: W.J / Y.G / A.P / S.H / B.L have >= 4 GiB boards.
  EXPECT_EQ(bigmem, 5u);
  EXPECT_EQ(fastmem, 5u);
}

TEST(CapabilityTest, ParseAndFormatRoundTrip) {
  EXPECT_EQ(parse_caps_spec("conv+bigmem"), kCapConv | kCapBigMem);
  EXPECT_EQ(parse_caps_spec("none"), 0u);
  EXPECT_EQ(parse_caps_spec(""), 0u);
  EXPECT_EQ(parse_caps_spec("0x100"), 0x100u);
  EXPECT_EQ(parse_caps_spec("lstm+0x100"), kCapLstm | 0x100u);

  EXPECT_EQ(format_caps(0), "none");
  EXPECT_EQ(format_caps(kCapConv | kCapBigMem), "conv+bigmem");
  EXPECT_EQ(parse_caps_spec(format_caps(kCapFc | kCapFastMem | 0x200)),
            kCapFc | kCapFastMem | 0x200u);

  EXPECT_THROW((void)parse_caps_spec("conv+warp"), ConfigError);
  EXPECT_THROW((void)parse_caps_spec("conv++fc"), ConfigError);
}

TEST(CapabilityTest, ZeroCapsCandidatesAreTheKindSpan) {
  const ModelGraph model = testing::make_mini_mmmt_model();
  const SystemConfig sys = testing::make_mini_hetero_system();
  const CostTable costs(model, sys);
  for (const LayerId id : model.all_layers()) {
    const LayerKind kind = model.layer(id).kind;
    const std::span<const AccId> cand = costs.candidates(id, kind);
    const std::span<const AccId> kind_span = costs.supporting(kind);
    // Same pointer, not just same contents: no CSR exists for mask-free
    // models, so the pre-capability fast path is untouched.
    EXPECT_EQ(cand.data(), kind_span.data());
    EXPECT_EQ(cand.size(), kind_span.size());
  }
}

TEST(CapabilityTest, MaskFiltersCandidatesAndCostCells) {
  ModelGraph model = testing::make_mini_mmmt_model();
  model.stamp_required_caps(kCapBigMem);
  const SystemConfig sys = SystemConfig::standard(0.5e9);
  const CostTable costs(model, sys);
  for (const LayerId id : model.all_layers()) {
    const Layer& layer = model.layer(id);
    if (layer.kind == LayerKind::Input) {
      EXPECT_TRUE(costs.candidates(id, layer.kind).empty());
      continue;
    }
    const std::span<const AccId> cand = costs.candidates(id, layer.kind);
    ASSERT_FALSE(cand.empty());
    for (const AccId a : cand) {
      EXPECT_TRUE(can_serve(sys.capabilities(a), kCapBigMem));
      EXPECT_TRUE(costs.supported(id, a));
    }
    // Excluded accelerators lose their supported bit too, so step 4's
    // neighbour generator and Mapping::validate see the same admission rule.
    for (const AccId a : costs.supporting(layer.kind))
      if (!can_serve(sys.capabilities(a), kCapBigMem))
        EXPECT_FALSE(costs.supported(id, a));
  }
}

TEST(CapabilityTest, InfeasibleMaskThrowsCapabilityError) {
  ModelGraph model = testing::make_chain_model();
  model.stamp_required_caps(0x100);  // no catalog accelerator has this bit
  const SystemConfig sys = SystemConfig::standard(0.5e9);
  EXPECT_THROW((void)CostTable(model, sys), CapabilityError);
}

TEST(CapabilityTest, PlansRespectTheMask) {
  ModelGraph model = testing::make_mini_mmmt_model();
  model.stamp_required_caps(kCapBigMem);
  const SystemConfig sys = SystemConfig::standard(0.5e9);
  const PlanResponse r = plan_once(model, sys);
  for (const LayerId id : model.all_layers()) {
    if (model.layer(id).kind == LayerKind::Input) continue;
    EXPECT_TRUE(
        can_serve(sys.capabilities(r.mapping.acc_of(id)), kCapBigMem));
  }
  r.mapping.validate(model, sys);
}

TEST(CapabilityTest, ValidateRejectsCapabilityViolations) {
  ModelGraph model = testing::make_chain_model();
  model.stamp_required_caps(kCapFastMem);
  const SystemConfig sys = SystemConfig::standard(0.5e9);
  // J.Q (index 3) supports the chain's conv/fc kinds but is not in the
  // fast-memory class, so the mask check alone must reject the mapping.
  Mapping m(model);
  for (const LayerId id : model.all_layers())
    if (model.layer(id).kind != LayerKind::Input) m.assign(id, AccId{3});
  EXPECT_FALSE(can_serve(sys.capabilities(AccId{3}), kCapFastMem));
  EXPECT_THROW(m.validate(model, sys), CapabilityError);
}

TEST(CapabilityTest, FingerprintSeesTheMask) {
  const ModelGraph plain = testing::make_chain_model();
  ModelGraph stamped = testing::make_chain_model();
  stamped.stamp_required_caps(kCapBigMem);
  EXPECT_NE(model_fingerprint(plain), model_fingerprint(stamped));
}

}  // namespace
}  // namespace h2h
