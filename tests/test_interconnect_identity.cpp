// Bit-identity contracts of the link-topology refactor:
//
//  - a uniform Interconnect is hex-identical to the scalar BW_acc code it
//    replaced (pinned against pre-refactor constants across the zoo),
//  - any topology whose realizable links all run at one speed with zero
//    latency degrades to the same bits (property-tested on random models),
//  - delta-evaluated remap probes stay bit-identical to full re-evaluation
//    under non-uniform links (both strategies run the same pass code).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>

#include "h2h.h"
#include "model/synthetic.h"
#include "test_helpers.h"
#include "util/rng.h"
#include "util/units.h"

namespace h2h {
namespace {

[[nodiscard]] std::uint64_t bits(double v) {
  return std::bit_cast<std::uint64_t>(v);
}

struct PinnedCase {
  ZooModel model;
  double bw_gb;  // GB/s
  std::uint64_t latency_bits;
  std::uint64_t energy_bits;
};

// Final latency/energy of plan_once on the standard 12-accelerator system,
// captured from the pre-topology scalar code (0.125 = Low-, 0.5 = Mid).
// These pins are the refactor's ground truth: a uniform Interconnect must
// reproduce every bit.
constexpr PinnedCase kPinned[] = {
    {ZooModel::VLocNet, 0.125, 0x3fc4cee9120a53c4ull, 0x3ffa1f92b5f5d3d4ull},
    {ZooModel::VLocNet, 0.5, 0x3fb26deb110b499full, 0x3fee314a0416fb43ull},
    {ZooModel::CasiaSurf, 0.125, 0x3f81b5a5edd5dae9ull, 0x3fb80a8006d98c9aull},
    {ZooModel::CasiaSurf, 0.5, 0x3f76d52748bb5ee6ull, 0x3fb3ab5820640be0ull},
    {ZooModel::Vfs, 0.125, 0x3fb373e25b390125ull, 0x3fe833585183b5e8ull},
    {ZooModel::Vfs, 0.5, 0x3fb2d46e6217ed83ull, 0x3fe7ee5d4bcfa815ull},
    {ZooModel::FaceBag, 0.125, 0x3f7d80d4c8224ce7ull, 0x3fb4a1fa40146e7eull},
    {ZooModel::FaceBag, 0.5, 0x3f736dd70224c4c4ull, 0x3fadaf591068e118ull},
    {ZooModel::CnnLstm, 0.125, 0x3f74e6306949e25full, 0x3fa1bc3602f1a3feull},
    {ZooModel::CnnLstm, 0.5, 0x3f6ae8e8b611f3a0ull, 0x3f9c532b261690a1ull},
    {ZooModel::MoCap, 0.125, 0x3f66cb53c184c63dull, 0x3f9b58ff2377db85ull},
    {ZooModel::MoCap, 0.5, 0x3f64780e05741a84ull, 0x3f96a19a9685174bull},
};

class UniformIdentity : public ::testing::TestWithParam<PinnedCase> {};

TEST_P(UniformIdentity, UniformTopologyReproducesScalarBits) {
  const PinnedCase& c = GetParam();
  const ModelGraph model = make_model(c.model);

  const SystemConfig scalar = SystemConfig::standard(gbps(c.bw_gb));
  const SystemConfig topo =
      SystemConfig::standard(Interconnect::uniform(gbps(c.bw_gb)));

  const PlanResponse r_scalar = plan_once(model, scalar);
  const PlanResponse r_topo = plan_once(model, topo);

  // Scalar path matches the pre-refactor pins...
  EXPECT_EQ(bits(r_scalar.final_result().latency), c.latency_bits);
  EXPECT_EQ(bits(r_scalar.final_result().energy.total()), c.energy_bits);
  // ...and the uniform topology matches the scalar path, bit for bit.
  EXPECT_EQ(bits(r_topo.final_result().latency), c.latency_bits);
  EXPECT_EQ(bits(r_topo.final_result().energy.total()), c.energy_bits);
  ASSERT_EQ(r_scalar.steps.size(), r_topo.steps.size());
  for (std::size_t i = 0; i < r_scalar.steps.size(); ++i) {
    EXPECT_EQ(bits(r_scalar.steps[i].result.latency),
              bits(r_topo.steps[i].result.latency));
    EXPECT_EQ(bits(r_scalar.steps[i].result.energy.total()),
              bits(r_topo.steps[i].result.energy.total()));
  }
  EXPECT_EQ(r_scalar.remap_stats.accepted, r_topo.remap_stats.accepted);
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, UniformIdentity, ::testing::ValuesIn(kPinned),
    [](const ::testing::TestParamInfo<PinnedCase>& info) {
      std::string name(zoo_info(info.param.model).key);
      for (char& c : name)
        if (c == '-') c = '_';  // gtest names must be identifiers
      return name + (info.param.bw_gb < 0.25 ? "_LowMinus" : "_Mid");
    });

// Degenerate non-uniform shapes — a mixed topology whose overrides all equal
// the default, and a hierarchical fabric whose speeds coincide at zero
// latency — must take the uniform fast path and reproduce the scalar bits on
// arbitrary models.
TEST(DegradeToUniform, RandomModelsStayBitIdentical) {
  Rng rng(20260808);
  for (int trial = 0; trial < 8; ++trial) {
    const ModelGraph model = testing::make_random_model(rng);
    const double bw = gbps(0.0625 * static_cast<double>(
                               rng.uniform_int(2, 20)));
    const SystemConfig scalar = SystemConfig::standard(bw);

    Interconnect mixed = Interconnect::mixed(
        bw, {{static_cast<std::uint32_t>(rng.uniform_int(0, 11)), bw}});
    Interconnect::HierarchicalSpec spec;
    spec.group_size =
        static_cast<std::uint32_t>(rng.uniform_int(1, 12));
    spec.intra_bw = bw;
    spec.uplink_bw = bw;
    spec.host_bw = bw;
    Interconnect hier = Interconnect::hierarchical(spec);

    const PlanResponse want = plan_once(model, scalar);
    for (const SystemConfig& sys :
         {SystemConfig::standard(std::move(mixed)),
          SystemConfig::standard(std::move(hier))}) {
      ASSERT_TRUE(sys.links().uniform_links());
      const PlanResponse got = plan_once(model, sys);
      EXPECT_EQ(bits(want.final_result().latency),
                bits(got.final_result().latency));
      EXPECT_EQ(bits(want.final_result().energy.total()),
                bits(got.final_result().energy.total()));
    }
  }
}

// Non-uniform topologies must actually reach the schedule: giving half the
// accelerators 10x faster links cannot leave the plan's latency untouched.
TEST(NonUniformLinks, TopologyChangesTheSchedule) {
  const ModelGraph model = make_model(ZooModel::CasiaSurf);
  std::vector<Interconnect::Override> fast;
  for (std::uint32_t i = 0; i < 12; i += 2) fast.emplace_back(i, gbps(1.25));
  const SystemConfig mixed = SystemConfig::standard(
      Interconnect::mixed(gbps(0.125), std::move(fast)));
  const SystemConfig slow = SystemConfig::standard(gbps(0.125));

  const double lat_mixed = plan_once(model, mixed).final_result().latency;
  const double lat_slow = plan_once(model, slow).final_result().latency;
  EXPECT_LT(lat_mixed, lat_slow);
}

// The delta-evaluated remap probes and the full re-evaluation run the same
// pass code over the same dirty sets, so their results agree bit-for-bit —
// including under non-uniform links, where a move also re-prices the moved
// layer's consumers.
TEST(NonUniformLinks, DeltaMatchesFullRemapBitForBit) {
  std::vector<Interconnect::Override> fast;
  for (std::uint32_t i = 0; i < 12; i += 3) fast.emplace_back(i, gbps(1.25));
  Interconnect::HierarchicalSpec spec;
  spec.group_size = 4;
  spec.intra_bw = gbps(1.25);
  spec.uplink_bw = gbps(0.25);
  spec.host_bw = gbps(0.5);
  spec.hop_latency_s = 2e-6;

  for (const ZooModel id : {ZooModel::MoCap, ZooModel::CasiaSurf}) {
    const ModelGraph model = make_model(id);
    for (const SystemConfig& sys :
         {SystemConfig::standard(
              Interconnect::mixed(gbps(0.125), fast)),
          SystemConfig::standard(Interconnect::hierarchical(spec))}) {
      ASSERT_FALSE(sys.links().uniform_links());
      PlanOptions delta_opts;
      delta_opts.remap.use_delta_locality = true;
      PlanOptions full_opts;
      full_opts.remap.use_delta_locality = false;
      const PlanResponse d = plan_once(model, sys, delta_opts);
      const PlanResponse f = plan_once(model, sys, full_opts);
      EXPECT_EQ(bits(d.final_result().latency),
                bits(f.final_result().latency));
      EXPECT_EQ(bits(d.final_result().energy.total()),
                bits(f.final_result().energy.total()));
      EXPECT_EQ(d.remap_stats.accepted, f.remap_stats.accepted);
    }
  }
}

// Planner sessions must not alias across topologies: same model and base
// bandwidth, different links -> different cached cost state, different plans.
TEST(NonUniformLinks, PlannerKeysSessionsOnTopology) {
  Planner planner;
  std::vector<Interconnect::Override> fast;
  for (std::uint32_t i = 0; i < 12; i += 2) fast.emplace_back(i, gbps(1.25));

  const PlanResponse uniform = planner.plan(PlanRequest::zoo(
      ZooModel::CasiaSurf, Interconnect::uniform(gbps(0.125))));
  const PlanResponse mixed = planner.plan(PlanRequest::zoo(
      ZooModel::CasiaSurf, Interconnect::mixed(gbps(0.125), fast)));
  EXPECT_EQ(planner.cache_misses(), 2u);  // distinct sessions
  EXPECT_NE(bits(uniform.final_result().latency),
            bits(mixed.final_result().latency));

  // Re-requesting either topology hits its warm session.
  const PlanResponse again = planner.plan(PlanRequest::zoo(
      ZooModel::CasiaSurf, Interconnect::mixed(gbps(0.125), fast)));
  EXPECT_TRUE(again.warm);
  EXPECT_EQ(bits(again.final_result().latency),
            bits(mixed.final_result().latency));
}

}  // namespace
}  // namespace h2h
