#include "core/activation_fusion.h"

namespace h2h {

FusionStats optimize_activation_fusion_acc(const CostTable& costs,
                                           const ModelGraph& model,
                                           const Mapping& mapping,
                                           std::span<const LayerId> members,
                                           LocalityPlan& plan,
                                           const FusionOptions& options,
                                           AccId acc) {
  const Bytes capacity = costs.dram_capacity(acc);

  // Start from the DRAM committed to pinned weights on this accelerator.
  Bytes used = 0;
  for (const LayerId id : members)
    if (plan.pinned(id)) used += costs.weight_bytes(id);

  FusionStats stats;
  // Walk consumers in execution order; greedily fuse each same-accelerator
  // in-edge while capacity lasts. Deterministic. Each flag is written
  // exactly once with its final value so an open plan journal records only
  // real diffs (the step-4 probe loop turns those into its dirty set).
  for (const LayerId id : members) {
    const auto preds = model.graph().preds(id);
    for (std::size_t i = 0; i < preds.size(); ++i) {
      const LayerId p = preds[i];
      const AccId pa = mapping.acc_of(p);
      bool fuse = false;
      if (pa == acc) {  // producer co-located (not elsewhere / host input)
        const Bytes bytes = costs.out_bytes(p);
        if (options.enforce_capacity && used + bytes > capacity) {
          ++stats.rejected_for_capacity;
        } else {
          fuse = true;
          used += bytes;
          ++stats.fused_edges;
          stats.fused_bytes += bytes;
        }
      }
      plan.set_fused_in(id, i, fuse);
    }
  }
  plan.set_used_dram(acc, used);
  return stats;
}

FusionStats optimize_activation_fusion(const Simulator& sim,
                                       const Mapping& mapping,
                                       LocalityPlan& plan,
                                       const FusionOptions& options,
                                       std::span<const AccId> only_accs) {
  plan.ensure_acc_count(sim.sys().accelerator_count());
  const CostTable& costs = sim.costs();
  const ModelGraph& model = sim.model();
  FusionStats total;
  const auto accumulate = [&](const FusionStats& st) {
    total.fused_edges += st.fused_edges;
    total.fused_bytes += st.fused_bytes;
    total.rejected_for_capacity += st.rejected_for_capacity;
  };
  if (only_accs.empty()) {
    for (const AccId acc : sim.sys().all_accelerators())
      accumulate(optimize_activation_fusion_acc(
          costs, model, mapping, mapping.members(acc), plan, options, acc));
  } else {
    for (const AccId acc : only_accs)
      accumulate(optimize_activation_fusion_acc(
          costs, model, mapping, mapping.members(acc), plan, options, acc));
  }
  return total;
}

}  // namespace h2h
