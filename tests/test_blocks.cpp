#include <gtest/gtest.h>

#include "model/blocks.h"
#include "util/error.h"

namespace h2h {
namespace {

std::size_t count_kind(const ModelGraph& m, LayerKind kind) {
  std::size_t n = 0;
  for (const LayerId id : m.all_layers())
    if (m.layer(id).kind == kind) ++n;
  return n;
}

TEST(Blocks, ScaleChannelsRoundsToMultiplesOfEight) {
  EXPECT_EQ(scale_channels(64, 1.0), 64u);
  EXPECT_EQ(scale_channels(64, 0.75), 48u);
  EXPECT_EQ(scale_channels(64, 0.5), 32u);
  EXPECT_EQ(scale_channels(10, 0.1), 8u);  // floor of 8
  EXPECT_EQ(scale_channels(100, 1.0), 104u);  // 12.5 rounds half away from 0
}

TEST(Blocks, BasicBlockAddsProjectionOnlyWhenNeeded) {
  {
    ModelBuilder b("m");
    const LayerId in = b.input("in", 64, 8, 8);
    (void)resnet_basic_block(b, in, 64, 1, "blk");
    const ModelGraph m = std::move(b).build();
    EXPECT_EQ(count_kind(m, LayerKind::Conv), 2u);  // no projection
    EXPECT_EQ(count_kind(m, LayerKind::Eltwise), 1u);
  }
  {
    ModelBuilder b("m");
    const LayerId in = b.input("in", 64, 8, 8);
    (void)resnet_basic_block(b, in, 128, 2, "blk");
    const ModelGraph m = std::move(b).build();
    EXPECT_EQ(count_kind(m, LayerKind::Conv), 3u);  // + projection
  }
}

TEST(Blocks, BottleneckStructure) {
  ModelBuilder b("m");
  const LayerId in = b.input("in", 256, 8, 8);
  const LayerId out = resnet_bottleneck(b, in, 64, 256, 1, "blk");
  EXPECT_EQ(b.geometry(out).channels, 256u);
  const ModelGraph m = std::move(b).build();
  EXPECT_EQ(count_kind(m, LayerKind::Conv), 3u);  // 1x1, 3x3, 1x1; no proj
}

TEST(Blocks, Resnet18BackboneLayerCount) {
  ModelBuilder b("m");
  const LayerId in = b.input("in", 3, 224, 224);
  const LayerId out = resnet18_backbone(b, in, "r18");
  // Stem 1 conv + 4 stages x 2 blocks x 2 convs + 3 projections = 20.
  const ModelGraph m = std::move(b).build();
  EXPECT_EQ(count_kind(m, LayerKind::Conv), 20u);
  EXPECT_EQ(m.layer(out).kind, LayerKind::Eltwise);
  // Standard ResNet-18 conv-trunk parameter count ~11.2M.
  const double params = static_cast<double>(m.stats().total_params) / 1e6;
  EXPECT_NEAR(params, 11.2, 0.6);
}

TEST(Blocks, Resnet50BackboneParamCount) {
  ModelBuilder b("m");
  const LayerId in = b.input("in", 3, 224, 224);
  (void)resnet50_backbone(b, in, "r50");
  const ModelGraph m = std::move(b).build();
  // Stem 1 + 16 bottlenecks x 3 + 4 projections = 53 convs.
  EXPECT_EQ(count_kind(m, LayerKind::Conv), 53u);
  const double params = static_cast<double>(m.stats().total_params) / 1e6;
  EXPECT_NEAR(params, 23.5, 1.5);  // conv trunk of ResNet-50
}

TEST(Blocks, Resnet50TruncationStops) {
  ModelBuilder b("m");
  const LayerId in = b.input("in", 3, 224, 224);
  const LayerId out = resnet50_backbone(b, in, "r50", 1.0, 3);
  EXPECT_EQ(b.geometry(out).channels, 1024u);  // res4 output
  EXPECT_EQ(b.geometry(out).h, 14u);
}

TEST(Blocks, WidthMultiplierScalesQuadratically) {
  const auto params_at = [](double width) {
    ModelBuilder b("m");
    const LayerId in = b.input("in", 3, 112, 112);
    (void)resnet18_backbone(b, in, "r", width);
    return static_cast<double>(std::move(b).build(false).stats().total_params);
  };
  const double full = params_at(1.0);
  const double half = params_at(0.5);
  EXPECT_NEAR(half / full, 0.25, 0.05);
}

TEST(Blocks, Vgg16BackboneStructure) {
  ModelBuilder b("m");
  const LayerId in = b.input("in", 3, 224, 224);
  const LayerId out = vgg16_backbone(b, in, "vgg");
  EXPECT_EQ(b.geometry(out).channels, 512u);
  EXPECT_EQ(b.geometry(out).h, 7u);  // 224 / 2^5
  const ModelGraph m = std::move(b).build();
  EXPECT_EQ(count_kind(m, LayerKind::Conv), 13u);
  EXPECT_EQ(count_kind(m, LayerKind::Pool), 5u);
  const double params = static_cast<double>(m.stats().total_params) / 1e6;
  EXPECT_NEAR(params, 14.7, 1.0);  // VGG-16 conv trunk
}

TEST(Blocks, VdcnnBackboneDepth29) {
  ModelBuilder b("m");
  const LayerId in = b.input_seq("txt", 1024, 16);
  const LayerId out = vdcnn_backbone(b, in, "vd");
  const ModelGraph m = std::move(b).build();
  // 1 stem + 2 * (5+5+2+2) pairs = 29 convolutions (VD-CNN-29).
  EXPECT_EQ(count_kind(m, LayerKind::Conv), 29u);
  EXPECT_EQ(m.layer(out).kind, LayerKind::Conv);
}

}  // namespace
}  // namespace h2h
