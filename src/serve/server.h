// Planning-as-a-service: the request pipeline behind `h2h serve`
// (DESIGN.md §8).
//
// serve_jsonl reads one request per line, plans it, and writes one response
// per line, *in request order* regardless of worker count — a reader thread
// stamps each line with a sequence number, a small worker pool plans
// concurrently on one shared (thread-safe) Planner, and completed responses
// are held until all predecessors have been written. With emit.timing off,
// multi-threaded output is byte-identical to single-threaded output
// (pinned in test_serve_pipeline.cpp).
//
// Every failure mode becomes an `ok:false` response line: malformed JSON,
// schema violations, and planning exceptions are answered and the loop
// keeps going. Nothing short of losing stdin/stdout stops a serving loop —
// except a graceful shutdown: with ServeOptions::handle_signals set,
// SIGINT/SIGTERM stop the reader, drain in-flight requests, flush the
// ordered output, and return normally.
//
// Both wire schemas are served: single-model requests hit the shared
// Planner; "tenants" requests co-map a TenantSet on a per-bandwidth
// CoMapper (tenant/co_mapper.h), with CapabilityError answered as
// infeasible_capability and require_slos misses as slo_violated.
//
// serve_tcp accepts loopback TCP connections and runs the same jsonl loop
// over each socket, one connection at a time (requests within a connection
// still fan out across the worker pool). POSIX-only; on other platforms it
// returns an error.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/planner.h"

namespace h2h::serve {

struct ServeOptions {
  /// Worker threads planning concurrently. 1 = plan inline on the reader
  /// thread (no pool, fully deterministic scheduling).
  std::size_t threads = 1;
  /// Session-cache configuration of the shared Planner.
  PlannerOptions planner;
  /// Requests longer than this are answered with parse_error (guards the
  /// line buffer against unbounded input).
  std::size_t max_line_bytes = 1 << 20;
  /// Install SIGINT/SIGTERM handlers (POSIX, no SA_RESTART) for graceful
  /// shutdown: the loop stops accepting new lines, drains every request
  /// already read, flushes responses in order, and returns normally (so
  /// `h2h serve` exits 0). A partial line cut mid-read by the signal is
  /// dropped, not answered. Off by default — embedders own their signals.
  bool handle_signals = false;
};

struct ServeStats {
  std::uint64_t requests = 0;  // non-empty lines consumed
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;
};

/// Blocking jsonl request loop: reads `in` to EOF, writes responses to
/// `out`. Empty lines are skipped.
ServeStats serve_jsonl(std::istream& in, std::ostream& out,
                       const ServeOptions& options = {});

struct TcpOptions {
  ServeOptions serve;
  /// Port to bind on 127.0.0.1; 0 asks the kernel for a free port (the
  /// chosen port is announced on `diag`).
  std::uint16_t port = 0;
  /// Stop after serving this many connections; 0 = serve forever.
  std::uint64_t max_connections = 0;
  /// Transient accept failures (ECONNABORTED, EMFILE, ENFILE) are retried
  /// with exponential backoff up to this many consecutive times before the
  /// listener gives up; each retry increments TcpStats::accept_retries.
  std::uint32_t max_accept_retries = 5;
};

/// Listener-level counters, reported through the `stats` out-param of
/// serve_tcp (and summarized on `diag` at shutdown).
struct TcpStats {
  std::uint64_t connections = 0;     // connections fully served
  std::uint64_t accept_retries = 0;  // transient accept failures retried
};

/// Listen and serve. Announces "h2h-serve listening on 127.0.0.1:<port>" on
/// `diag` once ready. Returns 0 on clean shutdown, 1 on socket errors
/// (reported on `diag`). A client disconnecting mid-response never kills
/// the listener (SIGPIPE suppressed, EPIPE handled); transient accept
/// failures back off and retry per TcpOptions::max_accept_retries. When
/// `stats` is non-null it receives the listener counters.
int serve_tcp(const TcpOptions& options, std::ostream& diag,
              TcpStats* stats = nullptr);

}  // namespace h2h::serve
