#include <gtest/gtest.h>

#include <tuple>
#include <utility>

#include "core/comp_prioritized.h"
#include "core/remapping.h"
#include "test_helpers.h"

namespace h2h {
namespace {

struct Prepared {
  ModelGraph model;
  SystemConfig sys;
  Mapping mapping;
  LocalityPlan plan;
};

Prepared prepare(ModelGraph model, SystemConfig sys) {
  const Simulator sim(model, sys);
  Mapping mapping = computation_prioritized_mapping(sim);
  LocalityPlan plan(model);
  plan.ensure_acc_count(sys.accelerator_count());
  optimize_weight_locality(sim, mapping, plan);
  optimize_activation_fusion(sim, mapping, plan);
  return Prepared{std::move(model), std::move(sys), std::move(mapping),
                  std::move(plan)};
}

TEST(Remapping, NeverIncreasesLatency) {
  Prepared p = prepare(testing::make_mini_mmmt_model(),
                       testing::make_mini_hetero_system(0.125e9));
  const Simulator sim(p.model, p.sys);
  const double before = sim.simulate(p.mapping, p.plan).latency;
  const RemapStats stats = data_locality_remapping(sim, p.mapping, p.plan);
  const double after = sim.simulate(p.mapping, p.plan).latency;
  EXPECT_LE(after, before);
  EXPECT_GE(stats.passes, 1u);
  EXPECT_GE(stats.attempts, stats.accepted);
}

TEST(Remapping, MappingStaysValidAfterMoves) {
  Prepared p = prepare(make_model(ZooModel::MoCap),
                       SystemConfig::standard(BandwidthSetting::LowMinus));
  const Simulator sim(p.model, p.sys);
  (void)data_locality_remapping(sim, p.mapping, p.plan);
  EXPECT_NO_THROW(p.mapping.validate(p.model, p.sys));
}

TEST(Remapping, IncrementalAndFullResimAgree) {
  const auto run = [](bool use_inc) {
    Prepared p = prepare(make_model(ZooModel::CnnLstm),
                         SystemConfig::standard(BandwidthSetting::LowMinus));
    const Simulator sim(p.model, p.sys);
    RemapOptions opts;
    opts.use_incremental = use_inc;
    (void)data_locality_remapping(sim, p.mapping, p.plan, opts);
    return sim.simulate(p.mapping, p.plan).latency;
  };
  const double full = run(false);
  const double incremental = run(true);
  EXPECT_NEAR(incremental, full, full * 1e-9);
}

// The delta-evaluated probe path (member lists + delta steps-2/3 + overlay
// schedule probe + knapsack cache) must land on exactly the state the full
// touched-pair re-runs produce: same moves, same pins/fusion, same latency
// bit for bit, across the zoo at both a low and a mid bandwidth point.
TEST(Remapping, DeltaAndFullLocalityPassesAgreeBitExactly) {
  for (const ZooInfo& info : zoo_catalog()) {
    for (const BandwidthSetting bw :
         {BandwidthSetting::LowMinus, BandwidthSetting::Mid}) {
      const auto run = [&](bool use_delta) {
        Prepared p = prepare(make_model(info.id), SystemConfig::standard(bw));
        const Simulator sim(p.model, p.sys);
        RemapOptions opts;
        opts.use_delta_locality = use_delta;
        const RemapStats stats =
            data_locality_remapping(sim, p.mapping, p.plan, opts);
        const double latency = sim.simulate(p.mapping, p.plan).latency;
        return std::tuple{std::move(p), stats, latency};
      };
      const auto [full, full_stats, full_lat] = run(false);
      const auto [delta, delta_stats, delta_lat] = run(true);

      EXPECT_EQ(delta_lat, full_lat) << info.key;  // exact, not approximate
      EXPECT_EQ(delta_stats.attempts, full_stats.attempts) << info.key;
      EXPECT_EQ(delta_stats.accepted, full_stats.accepted) << info.key;
      EXPECT_EQ(delta_stats.passes, full_stats.passes) << info.key;
      for (const LayerId id : full.model.all_layers()) {
        ASSERT_EQ(delta.mapping.acc_of(id), full.mapping.acc_of(id))
            << info.key << " layer " << id.value;
        ASSERT_EQ(delta.plan.pinned(id), full.plan.pinned(id))
            << info.key << " layer " << id.value;
        const auto preds = full.model.graph().preds(id);
        for (std::size_t i = 0; i < preds.size(); ++i)
          ASSERT_EQ(delta.plan.fused_in(id, i), full.plan.fused_in(id, i))
              << info.key << " layer " << id.value << " slot " << i;
      }
      for (const AccId acc : full.sys.all_accelerators())
        ASSERT_EQ(delta.plan.used_dram(acc), full.plan.used_dram(acc))
            << info.key << " acc " << acc.value;
    }
  }
}

// Under DRAM pressure the delta path falls back to real knapsack solves;
// the cache must then serve the repeated source-accelerator instances and
// stay bit-identical to uncached solving.
TEST(Remapping, KnapsackCacheReusesSourceSolvesUnderPressure) {
  // Capacity far below the total weight footprint forces the solver on
  // nearly every probe (the mini MMMT model carries ~25 KiB of weights).
  const auto run = [&](bool use_cache) {
    Prepared p = prepare(testing::make_mini_mmmt_model(),
                         testing::make_uniform_system(3, 0.125e9, kib(8)));
    const Simulator sim(p.model, p.sys);
    RemapOptions opts;
    opts.use_knapsack_cache = use_cache;
    const RemapStats stats =
        data_locality_remapping(sim, p.mapping, p.plan, opts);
    return std::pair{stats, sim.simulate(p.mapping, p.plan).latency};
  };
  const auto [cached, cached_lat] = run(true);
  const auto [uncached, uncached_lat] = run(false);

  EXPECT_GT(cached.delta_full_passes, 0u);  // pressure reached the fallback
  EXPECT_GT(cached.knapsack_misses, 0u);
  EXPECT_GT(cached.knapsack_hits, 0u);  // src solves repeat across probes
  EXPECT_EQ(uncached.knapsack_hits, 0u);
  EXPECT_EQ(uncached.knapsack_misses, 0u);

  // Memoization must not change anything observable.
  EXPECT_EQ(cached_lat, uncached_lat);
  EXPECT_EQ(cached.attempts, uncached.attempts);
  EXPECT_EQ(cached.accepted, uncached.accepted);
}

TEST(Remapping, ReducesHostTrafficAtLowBandwidth) {
  Prepared p = prepare(make_model(ZooModel::CasiaSurf),
                       SystemConfig::standard(BandwidthSetting::LowMinus));
  const Simulator sim(p.model, p.sys);
  const Bytes host_before = sim.simulate(p.mapping, p.plan).host_bytes;
  (void)data_locality_remapping(sim, p.mapping, p.plan);
  const Bytes host_after = sim.simulate(p.mapping, p.plan).host_bytes;
  EXPECT_LT(host_after, host_before);
}

TEST(Remapping, TerminatesWithinMaxPasses) {
  Prepared p = prepare(make_model(ZooModel::FaceBag),
                       SystemConfig::standard(BandwidthSetting::Low));
  const Simulator sim(p.model, p.sys);
  RemapOptions opts;
  opts.max_passes = 3;
  const RemapStats stats = data_locality_remapping(sim, p.mapping, p.plan, opts);
  EXPECT_LE(stats.passes, 3u);
}

TEST(Remapping, NoOpWhenAlreadyOptimal) {
  // Single accelerator: there is nowhere to move anything.
  Prepared p = prepare(testing::make_chain_model(),
                       testing::make_uniform_system(1));
  const Simulator sim(p.model, p.sys);
  const double before = sim.simulate(p.mapping, p.plan).latency;
  const RemapStats stats = data_locality_remapping(sim, p.mapping, p.plan);
  EXPECT_EQ(stats.accepted, 0u);
  EXPECT_DOUBLE_EQ(sim.simulate(p.mapping, p.plan).latency, before);
}

TEST(Remapping, AcceptedMovesMatchLatencyTrajectory) {
  // Strict-decrease acceptance: with zero epsilon tolerance the final
  // latency must be strictly lower than the start when moves were accepted.
  Prepared p = prepare(make_model(ZooModel::MoCap),
                       SystemConfig::standard(BandwidthSetting::LowMinus));
  const Simulator sim(p.model, p.sys);
  const double before = sim.simulate(p.mapping, p.plan).latency;
  const RemapStats stats = data_locality_remapping(sim, p.mapping, p.plan);
  const double after = sim.simulate(p.mapping, p.plan).latency;
  if (stats.accepted > 0) EXPECT_LT(after, before);
  else EXPECT_DOUBLE_EQ(after, before);
}

}  // namespace
}  // namespace h2h
