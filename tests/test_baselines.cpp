#include <gtest/gtest.h>

#include "core/baselines.h"
#include "test_helpers.h"

namespace h2h {
namespace {

TEST(Baselines, CompPrioritizedEqualsFirstTwoH2HSteps) {
  const ModelGraph m = make_model(ZooModel::MoCap);
  const SystemConfig sys = SystemConfig::standard(BandwidthSetting::LowMinus);
  const PlanResponse baseline = run_computation_prioritized_baseline(m, sys);
  const PlanResponse h2h = plan_once(m, sys);
  ASSERT_EQ(baseline.steps.size(), 2u);
  // Identical pipeline prefix => identical numbers.
  EXPECT_DOUBLE_EQ(baseline.steps[0].result.latency,
                   h2h.steps[0].result.latency);
  EXPECT_DOUBLE_EQ(baseline.final_result().latency,
                   h2h.baseline_result().latency);
}

TEST(Baselines, ClusterMappingIsValidAndCoLocatesModalities) {
  const ModelGraph m = testing::make_mini_mmmt_model();
  const SystemConfig sys = testing::make_mini_hetero_system();
  const PlanResponse r = run_cluster_prioritized_baseline(m, sys);
  EXPECT_NO_THROW(r.mapping.validate(m, sys));
  ASSERT_EQ(r.steps.size(), 3u);

  // All conv layers of modality 1 share one accelerator (the cluster home).
  AccId home{};
  for (const LayerId id : m.all_layers()) {
    const Layer& l = m.layer(id);
    if (l.modality == 1 && l.kind == LayerKind::Conv) {
      if (!home.valid()) home = r.mapping.acc_of(id);
      EXPECT_EQ(r.mapping.acc_of(id), home) << l.name;
    }
  }
}

TEST(Baselines, ClusterSpillsUnsupportedLayers) {
  // Modality-2 cluster in the mini system contains an LSTM; if the cluster
  // home cannot run it, it must be spilled to a supporting accelerator.
  const ModelGraph m = testing::make_mini_mmmt_model();
  const SystemConfig sys = testing::make_mini_hetero_system();
  const PlanResponse r = run_cluster_prioritized_baseline(m, sys);
  for (const LayerId id : m.all_layers()) {
    const Layer& l = m.layer(id);
    if (l.kind == LayerKind::Input) continue;
    EXPECT_TRUE(sys.accelerator(r.mapping.acc_of(id)).supports(l.kind))
        << l.name;
  }
}

TEST(Baselines, H2HBeatsClusteringOnComputeEfficiency) {
  // §2: clustering "may largely hurt the computing efficiency". On a
  // bandwidth-generous system the computation-aware H2H must win.
  const ModelGraph m = make_model(ZooModel::CasiaSurf);
  const SystemConfig sys = SystemConfig::standard(BandwidthSetting::High);
  const double h2h = plan_once(m, sys).final_result().latency;
  const double cluster =
      run_cluster_prioritized_baseline(m, sys).final_result().latency;
  EXPECT_LT(h2h, cluster);
}

TEST(Baselines, RandomMappingIsValidAndSeedStable) {
  const ModelGraph m = testing::make_mini_mmmt_model();
  const SystemConfig sys = testing::make_mini_hetero_system();
  Rng rng1(42), rng2(42), rng3(43);
  const Mapping a = random_valid_mapping(m, sys, rng1);
  const Mapping b = random_valid_mapping(m, sys, rng2);
  EXPECT_NO_THROW(a.validate(m, sys));
  for (const LayerId id : m.all_layers())
    EXPECT_EQ(a.acc_of(id), b.acc_of(id));
  // Different seed: almost surely a different mapping somewhere.
  const Mapping c = random_valid_mapping(m, sys, rng3);
  bool any_diff = false;
  for (const LayerId id : m.all_layers())
    any_diff = any_diff || a.acc_of(id) != c.acc_of(id);
  EXPECT_TRUE(any_diff);
}

TEST(Baselines, H2HNoWorseThanRandomMappings) {
  const ModelGraph m = testing::make_mini_mmmt_model();
  const SystemConfig sys = testing::make_mini_hetero_system(0.125e9);
  const Simulator sim(m, sys);
  const double h2h = plan_once(m, sys).final_result().latency;
  Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    const Mapping random = random_valid_mapping(m, sys, rng);
    LocalityPlan plan(m);
    plan.ensure_acc_count(sys.accelerator_count());
    optimize_weight_locality(sim, random, plan);
    optimize_activation_fusion(sim, random, plan);
    EXPECT_LE(h2h, sim.simulate(random, plan).latency * (1 + 1e-9));
  }
}

}  // namespace
}  // namespace h2h
