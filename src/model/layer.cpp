#include "model/layer.h"

#include "util/contracts.h"

namespace h2h {

std::string_view to_string(LayerKind kind) noexcept {
  switch (kind) {
    case LayerKind::Input: return "Input";
    case LayerKind::Conv: return "Conv";
    case LayerKind::FullyConnected: return "FC";
    case LayerKind::Lstm: return "LSTM";
    case LayerKind::Pool: return "Pool";
    case LayerKind::Eltwise: return "Eltwise";
    case LayerKind::Concat: return "Concat";
  }
  return "?";
}

namespace {

/// Per-layer input size for LSTM layer `l` within a (possibly stacked) cell.
[[nodiscard]] std::uint64_t lstm_layer_in(const LstmShape& s, std::uint32_t l) noexcept {
  return l == 0 ? s.in_size : s.hidden_size;
}

}  // namespace

std::uint64_t Layer::macs() const noexcept {
  switch (kind) {
    case LayerKind::Conv: {
      const auto& s = std::get<ConvShape>(shape);
      const std::uint64_t per_out = static_cast<std::uint64_t>(s.in_channels) /
                                    s.groups * s.kernel * s.effective_kernel_w();
      return static_cast<std::uint64_t>(s.out_channels) * s.out_h * s.out_w * per_out;
    }
    case LayerKind::FullyConnected: {
      const auto& s = std::get<FcShape>(shape);
      return static_cast<std::uint64_t>(s.in_features) * s.out_features;
    }
    case LayerKind::Lstm: {
      const auto& s = std::get<LstmShape>(shape);
      std::uint64_t per_step = 0;
      for (std::uint32_t l = 0; l < s.layers; ++l) {
        // Four gates, each an (in + hidden) x hidden mat-vec.
        per_step += 4ull * (lstm_layer_in(s, l) + s.hidden_size) * s.hidden_size;
      }
      return per_step * s.seq_len;
    }
    case LayerKind::Input:
    case LayerKind::Pool:
    case LayerKind::Eltwise:
    case LayerKind::Concat:
      return 0;
  }
  return 0;
}

std::uint64_t Layer::light_ops() const noexcept {
  switch (kind) {
    case LayerKind::Pool: {
      const auto& s = std::get<PoolShape>(shape);
      // One comparison per kernel element per output element.
      return static_cast<std::uint64_t>(s.channels) * s.out_h * s.out_w *
             s.kernel * s.kernel;
    }
    case LayerKind::Eltwise: {
      const auto& s = std::get<EltwiseShape>(shape);
      return static_cast<std::uint64_t>(s.channels) * s.h * s.w;
    }
    default:
      return 0;
  }
}

std::uint64_t Layer::param_count() const noexcept {
  switch (kind) {
    case LayerKind::Conv: {
      const auto& s = std::get<ConvShape>(shape);
      const std::uint64_t weights = static_cast<std::uint64_t>(s.out_channels) *
                                    s.in_channels / s.groups * s.kernel *
                                    s.effective_kernel_w();
      return weights + s.out_channels;  // + bias
    }
    case LayerKind::FullyConnected: {
      const auto& s = std::get<FcShape>(shape);
      return static_cast<std::uint64_t>(s.in_features) * s.out_features +
             s.out_features;
    }
    case LayerKind::Lstm: {
      const auto& s = std::get<LstmShape>(shape);
      std::uint64_t total = 0;
      for (std::uint32_t l = 0; l < s.layers; ++l) {
        total += 4ull * ((lstm_layer_in(s, l) + s.hidden_size) * s.hidden_size +
                         s.hidden_size);
      }
      return total;
    }
    case LayerKind::Input:
    case LayerKind::Pool:
    case LayerKind::Eltwise:
    case LayerKind::Concat:
      return 0;
  }
  return 0;
}

std::uint64_t producer_channels(const Layer& l) noexcept {
  switch (l.kind) {
    case LayerKind::Input: return std::get<InputShape>(l.shape).channels;
    case LayerKind::Conv: return std::get<ConvShape>(l.shape).out_channels;
    case LayerKind::Pool: return std::get<PoolShape>(l.shape).channels;
    case LayerKind::Eltwise: return std::get<EltwiseShape>(l.shape).channels;
    case LayerKind::Concat: return std::get<ConcatShape>(l.shape).channels;
    case LayerKind::FullyConnected:
    case LayerKind::Lstm:
      return 0;
  }
  return 0;
}

std::uint64_t Layer::out_elems() const noexcept {
  switch (kind) {
    case LayerKind::Input: {
      const auto& s = std::get<InputShape>(shape);
      return static_cast<std::uint64_t>(s.channels) * s.h * s.w;
    }
    case LayerKind::Conv: {
      const auto& s = std::get<ConvShape>(shape);
      return static_cast<std::uint64_t>(s.out_channels) * s.out_h * s.out_w;
    }
    case LayerKind::FullyConnected: {
      const auto& s = std::get<FcShape>(shape);
      return s.out_features;
    }
    case LayerKind::Lstm: {
      const auto& s = std::get<LstmShape>(shape);
      // The full hidden-state sequence is the consumed activation.
      return static_cast<std::uint64_t>(s.seq_len) * s.hidden_size;
    }
    case LayerKind::Pool: {
      const auto& s = std::get<PoolShape>(shape);
      return static_cast<std::uint64_t>(s.channels) * s.out_h * s.out_w;
    }
    case LayerKind::Eltwise: {
      const auto& s = std::get<EltwiseShape>(shape);
      return static_cast<std::uint64_t>(s.channels) * s.h * s.w;
    }
    case LayerKind::Concat: {
      const auto& s = std::get<ConcatShape>(shape);
      return static_cast<std::uint64_t>(s.channels) * s.h * s.w;
    }
  }
  return 0;
}

}  // namespace h2h
