#include "system/schedule_analysis.h"

#include <algorithm>
#include <cmath>

#include "util/str.h"

namespace h2h {
namespace {

/// The layer whose finish time defines the makespan (latest finish; ties
/// broken toward the smaller id for determinism).
LayerId makespan_layer(const ModelGraph& model, const ScheduleResult& r) {
  LayerId best{};
  double latest = -1.0;
  for (const LayerId id : model.all_layers()) {
    if (model.layer(id).kind == LayerKind::Input) continue;
    const double f = r.timings[id.value].finish;
    if (f > latest) {
      latest = f;
      best = id;
    }
  }
  return best;
}

}  // namespace

std::vector<CriticalHop> critical_path(const ModelGraph& model,
                                       const Mapping& mapping,
                                       const ScheduleResult& r) {
  std::vector<CriticalHop> path;
  LayerId cur = makespan_layer(model, r);
  if (!cur.valid()) return path;

  // Pre-compute queue predecessors (previous layer on the same accelerator).
  std::vector<LayerId> queue_prev(model.layer_count());
  for (const AccId acc : mapping.used_accelerators()) {
    const std::span<const LayerId> q = mapping.members(acc);
    for (std::size_t i = 1; i < q.size(); ++i) queue_prev[q[i].value] = q[i - 1];
  }

  while (cur.valid()) {
    const LayerTiming& t = r.timings[cur.value];
    CriticalHop hop;
    hop.layer = cur;
    hop.reason = CriticalHop::Reason::Source;

    // Which constraint set start? Prefer the dependency bound on ties (it is
    // the structural one).
    LayerId next{};
    for (const LayerId p : model.graph().preds(cur)) {
      if (r.timings[p.value].finish == t.start &&
          model.layer(p).kind != LayerKind::Input) {
        hop.reason = CriticalHop::Reason::Dependency;
        hop.blocker = p;
        next = p;
        break;
      }
    }
    if (!next.valid()) {
      const LayerId qp = queue_prev[cur.value];
      if (qp.valid() && r.timings[qp.value].finish == t.start) {
        hop.reason = CriticalHop::Reason::QueueBusy;
        hop.blocker = qp;
        next = qp;
      }
    }
    path.push_back(hop);
    cur = next;  // invalid when the layer started at its ready time of 0
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<AcceleratorLoad> accelerator_loads(const ModelGraph& /*model*/,
                                               const SystemConfig& sys,
                                               const Mapping& mapping,
                                               const ScheduleResult& r) {
  std::vector<AcceleratorLoad> loads;
  for (const AccId acc : sys.all_accelerators()) {
    AcceleratorLoad load;
    load.acc = acc;
    const std::span<const LayerId> q = mapping.members(acc);
    load.layer_count = q.size();
    if (q.empty()) {
      load.idle_time = r.latency;
      loads.push_back(load);
      continue;
    }
    load.first_start = r.timings[q.front().value].start;
    double prev_finish = 0.0;
    for (const LayerId id : q) {
      const LayerTiming& t = r.timings[id.value];
      load.busy_time += t.finish - t.start;
      load.idle_time += std::max(0.0, t.start - prev_finish);
      prev_finish = t.finish;
      load.last_finish = std::max(load.last_finish, t.finish);
    }
    load.idle_time += std::max(0.0, r.latency - load.last_finish);
    loads.push_back(load);
  }
  return loads;
}

CriticalPathBreakdown critical_path_breakdown(const ModelGraph& model,
                                              const Mapping& mapping,
                                              const ScheduleResult& r) {
  CriticalPathBreakdown out;
  const std::vector<CriticalHop> path = critical_path(model, mapping, r);
  double prev_finish = 0.0;
  for (const CriticalHop& hop : path) {
    const LayerTiming& t = r.timings[hop.layer.value];
    out.host_time += t.t_host;
    out.compute_time += t.t_compute;
    out.local_time += t.t_local;
    out.wait_time += std::max(0.0, t.start - prev_finish);
    prev_finish = t.finish;
  }
  out.total = out.host_time + out.compute_time + out.local_time + out.wait_time;
  return out;
}

void print_gantt(const ModelGraph& /*model*/, const SystemConfig& sys,
                 const Mapping& mapping, const ScheduleResult& r,
                 std::ostream& out, std::size_t width) {
  if (r.latency <= 0 || width == 0) return;
  const double bucket = r.latency / static_cast<double>(width);
  out << strformat("Gantt (makespan %s, %zu cols of %s):\n",
                   human_seconds(r.latency).c_str(), width,
                   human_seconds(bucket).c_str());
  for (const AccId acc : sys.all_accelerators()) {
    std::string row(width, '.');
    for (const LayerId id : mapping.members(acc)) {
      const LayerTiming& t = r.timings[id.value];
      auto lo = static_cast<std::size_t>(std::floor(t.start / bucket));
      auto hi = static_cast<std::size_t>(std::ceil(t.finish / bucket));
      lo = std::min(lo, width - 1);
      hi = std::clamp<std::size_t>(hi, lo + 1, width);
      for (std::size_t c = lo; c < hi; ++c) row[c] = '#';
    }
    out << strformat("%-5s |%s|\n", sys.spec(acc).name.c_str(), row.c_str());
  }
}

}  // namespace h2h
