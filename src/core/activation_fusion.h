// Step 3 — activation transfer optimization (paper §4.3).
//
// "If two adjacent layers are mapped to the same accelerator, their
// intermediate IFM and OFM can be reused locally" — such edges are marked
// fused: the consumer reads from local DRAM and the producer skips the host
// write if every consumer is local. Fused buffers share the accelerator's
// local DRAM with pinned weights; with enforce_capacity (default) an edge is
// fused only while M_acc has room (conservative whole-inference liveness).
#pragma once

#include <span>

#include "system/simulator.h"

namespace h2h {

struct FusionOptions {
  /// Require fused activation buffers to fit in M_acc minus pinned weights.
  /// The ablation bench compares against unbounded fusion.
  bool enforce_capacity = true;
};

struct FusionStats {
  std::size_t fused_edges = 0;
  Bytes fused_bytes = 0;
  std::size_t rejected_for_capacity = 0;
};

/// Recompute fusion flags. If `only_accs` is empty all accelerators are
/// re-optimized; otherwise only edges both of whose endpoints are on a
/// listed accelerator are reconsidered (step-4 inner loop).
FusionStats optimize_activation_fusion(const Simulator& sim,
                                       const Mapping& mapping,
                                       LocalityPlan& plan,
                                       const FusionOptions& options = {},
                                       std::span<const AccId> only_accs = {});

/// Single-accelerator pass over an explicit member list (`members` must be
/// Mapping::members(acc)) — the unit the full pass iterates and the step-4
/// delta evaluation falls back to when fused buffers contend for capacity
/// (DESIGN.md §6).
FusionStats optimize_activation_fusion_acc(const CostTable& costs,
                                           const ModelGraph& model,
                                           const Mapping& mapping,
                                           std::span<const LayerId> members,
                                           LocalityPlan& plan,
                                           const FusionOptions& options,
                                           AccId acc);

}  // namespace h2h
