#include "report/experiment.h"

namespace h2h {

StepSeries run_experiment_on(const ModelGraph& model, const SystemConfig& sys,
                             const H2HOptions& options) {
  const H2HMapper mapper(model, sys, options);
  const H2HResult r = mapper.run();

  StepSeries s;
  for (const StepSnapshot& step : r.steps) {
    s.latency.push_back(step.result.latency);
    s.energy.push_back(step.result.energy.total());
  }
  s.baseline_comp_ratio = r.baseline_result().comp_ratio();
  s.h2h_comp_ratio = r.final_result().comp_ratio();
  s.search_seconds = r.search_seconds;
  s.remap = r.remap_stats;
  return s;
}

StepSeries run_experiment(ZooModel model, BandwidthSetting bw,
                          const H2HOptions& options) {
  const ModelGraph graph = make_model(model);
  const SystemConfig sys = SystemConfig::standard(bw);
  StepSeries s = run_experiment_on(graph, sys, options);
  s.model = model;
  s.bw = bw;
  return s;
}

std::vector<StepSeries> run_full_sweep(const H2HOptions& options) {
  std::vector<StepSeries> out;
  for (const ZooInfo& info : zoo_catalog()) {
    for (const BandwidthSetting bw : all_bandwidth_settings()) {
      out.push_back(run_experiment(info.id, bw, options));
    }
  }
  return out;
}

}  // namespace h2h
