#include "system/incremental.h"

#include <algorithm>
#include <queue>

namespace h2h {

namespace {
constexpr std::uint32_t kNoPos = 0xFFFFFFFFu;
}  // namespace

void IncrementalSchedule::reset(const Mapping& m, const LocalityPlan& plan) {
  const ModelGraph& model = sim_->model();
  const SystemConfig& sys = sim_->sys();
  H2H_EXPECTS(m.complete());

  timings_.assign(model.layer_count(), LayerTiming{});
  queues_ = m.acc_queues(sys);
  pos_.assign(model.layer_count(), kNoPos);
  acc_.assign(model.layer_count(), AccId{});
  for (std::uint32_t q = 0; q < queues_.size(); ++q) {
    for (std::uint32_t i = 0; i < queues_[q].size(); ++i) {
      pos_[queues_[q][i].value] = i;
      acc_[queues_[q][i].value] = AccId{q};
    }
  }
  for (const LayerId id : model.all_layers()) {
    if (model.layer(id).kind == LayerKind::Input) acc_[id.value] = AccId::host();
  }

  // Initial full timing in sequence order.
  std::vector<LayerId> order = model.all_layers();
  std::sort(order.begin(), order.end(), [&m](LayerId lhs, LayerId rhs) {
    return m.seq_of(lhs) < m.seq_of(rhs);
  });
  std::vector<double> acc_free(sys.accelerator_count(), 0.0);
  for (const LayerId id : order) {
    LayerTiming t = sim_->layer_components(id, m, plan);
    if (!acc_[id.value].is_host()) {
      double ready = 0.0;
      for (const LayerId p : model.graph().preds(id))
        ready = std::max(ready, timings_[p.value].finish);
      t.start = std::max(ready, acc_free[acc_[id.value].value]);
      t.finish = t.start + t.duration();
      acc_free[acc_[id.value].value] = t.finish;
    }
    timings_[id.value] = t;
  }
}

LayerId IncrementalSchedule::queue_prev(LayerId id) const {
  const AccId a = acc_[id.value];
  if (a.is_host()) return LayerId{};
  const std::uint32_t p = pos_[id.value];
  return p == 0 ? LayerId{} : queues_[a.value][p - 1];
}

LayerId IncrementalSchedule::queue_next(LayerId id) const {
  const AccId a = acc_[id.value];
  if (a.is_host()) return LayerId{};
  const std::uint32_t p = pos_[id.value];
  const auto& q = queues_[a.value];
  return p + 1 < q.size() ? q[p + 1] : LayerId{};
}

void IncrementalSchedule::retime_from(const Mapping& m,
                                      std::vector<LayerId> worklist) {
  const ModelGraph& model = sim_->model();
  // Min-heap on sequence number: nodes are re-timed in execution order so
  // each node is processed at most a handful of times.
  const auto seq_greater = [&m](LayerId lhs, LayerId rhs) {
    return m.seq_of(lhs) > m.seq_of(rhs);
  };
  std::priority_queue<LayerId, std::vector<LayerId>, decltype(seq_greater)>
      heap(seq_greater);
  std::vector<bool> queued(model.layer_count(), false);
  const auto push = [&](LayerId id) {
    if (id.valid() && !queued[id.value] &&
        model.layer(id).kind != LayerKind::Input) {
      queued[id.value] = true;
      heap.push(id);
    }
  };
  for (const LayerId id : worklist) push(id);

  while (!heap.empty()) {
    const LayerId id = heap.top();
    heap.pop();
    queued[id.value] = false;
    ++retimes_;

    LayerTiming& t = timings_[id.value];
    double ready = 0.0;
    for (const LayerId p : model.graph().preds(id))
      ready = std::max(ready, timings_[p.value].finish);
    const LayerId prev = queue_prev(id);
    const double free_at = prev.valid() ? timings_[prev.value].finish : 0.0;
    const double start = std::max(ready, free_at);
    const double finish = start + t.duration();
    if (start == t.start && finish == t.finish) continue;  // cone stops here
    t.start = start;
    t.finish = finish;
    for (const LayerId s : model.graph().succs(id)) push(s);
    push(queue_next(id));
  }
}

void IncrementalSchedule::refresh_components(const Mapping& m,
                                             const LocalityPlan& plan,
                                             std::span<const LayerId> dirty) {
  std::vector<LayerId> work;
  work.reserve(dirty.size());
  for (const LayerId id : dirty) {
    LayerTiming& t = timings_[id.value];
    const LayerTiming fresh = sim_->layer_components(id, m, plan);
    t.t_in = fresh.t_in;
    t.t_weight = fresh.t_weight;
    t.t_compute = fresh.t_compute;
    t.t_out = fresh.t_out;
    t.t_host = fresh.t_host;
    t.t_local = fresh.t_local;
    t.host_bytes = fresh.host_bytes;
    t.local_bytes = fresh.local_bytes;
    work.push_back(id);
  }
  retime_from(m, std::move(work));
}

void IncrementalSchedule::apply_remap(const Mapping& m, const LocalityPlan& plan,
                                      LayerId node, AccId old_acc,
                                      std::span<const LayerId> dirty) {
  H2H_EXPECTS(!old_acc.is_host() && old_acc.value < queues_.size());
  const AccId new_acc = m.acc_of(node);
  H2H_EXPECTS(new_acc != old_acc);

  // Remove from the old queue.
  auto& oq = queues_[old_acc.value];
  const std::uint32_t old_pos = pos_[node.value];
  H2H_ASSERT(old_pos < oq.size() && oq[old_pos] == node);
  oq.erase(oq.begin() + old_pos);
  for (std::uint32_t i = old_pos; i < oq.size(); ++i) pos_[oq[i].value] = i;
  const LayerId old_follower = old_pos < oq.size() ? oq[old_pos] : LayerId{};

  // Insert into the new queue by sequence.
  auto& nq = queues_[new_acc.value];
  const auto it = std::lower_bound(
      nq.begin(), nq.end(), node, [&m](LayerId lhs, LayerId rhs) {
        return m.seq_of(lhs) < m.seq_of(rhs);
      });
  const auto new_pos = static_cast<std::uint32_t>(it - nq.begin());
  nq.insert(it, node);
  for (std::uint32_t i = new_pos; i < nq.size(); ++i) pos_[nq[i].value] = i;
  acc_[node.value] = new_acc;

  // Refresh components of everything the move may have touched, then retime
  // from the node, the old queue's follower, and the new queue's follower.
  std::vector<LayerId> work(dirty.begin(), dirty.end());
  work.push_back(node);
  if (old_follower.valid()) work.push_back(old_follower);
  if (const LayerId nf = queue_next(node); nf.valid()) work.push_back(nf);
  refresh_components(m, plan, work);
}

double IncrementalSchedule::latency() const noexcept {
  double out = 0.0;
  for (const LayerTiming& t : timings_) out = std::max(out, t.finish);
  return out;
}

ScheduleResult IncrementalSchedule::result(const Mapping& m) const {
  const ModelGraph& model = sim_->model();
  const SystemConfig& sys = sim_->sys();
  ScheduleResult r;
  r.timings = timings_;
  for (const LayerId id : model.all_layers()) {
    if (model.layer(id).kind == LayerKind::Input) continue;
    const LayerTiming& t = timings_[id.value];
    r.comp_time += t.t_compute;
    r.local_time += t.t_local;
    r.host_time += t.t_host;
    r.host_bytes += t.host_bytes;
    r.local_bytes += t.local_bytes;
    r.energy += sim_->layer_energy(id, m, t);
    r.latency = std::max(r.latency, t.finish);
  }
  r.energy.static_power = sys.host().static_power_w *
                          static_cast<double>(sys.accelerator_count()) *
                          r.latency;
  return r;
}

}  // namespace h2h
