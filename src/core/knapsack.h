// 0/1 knapsack solvers for the weight-locality optimization (paper §4.2):
// choose which layers' weights to keep in an accelerator's local DRAM to
// maximize saved weight-transfer time under the M_acc capacity.
//
// Three interchangeable algorithms:
//  - ExactDp: dynamic program over quantized capacity (default). Capacity is
//    quantized to at most `max_dp_units` units with item weights rounded UP,
//    so a returned selection never overfills the true capacity.
//  - GreedyDensity: sort by value/weight, take while it fits. Fast, and the
//    ablation bench shows how close it gets.
//  - BruteForce: exact reference for small instances (tests only).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/units.h"

namespace h2h {

struct KnapsackItem {
  std::uint32_t id = 0;    // caller-defined (layer id value)
  Bytes weight = 0;        // bytes
  double value = 0;        // seconds of transfer time saved
};

enum class KnapsackAlgo { ExactDp, GreedyDensity, BruteForce };

struct KnapsackSolution {
  std::vector<std::uint32_t> selected;  // item ids, ascending
  Bytes used = 0;
  double value = 0;
};

/// Solve the 0/1 knapsack. Items with weight 0 are always selected (free);
/// items with weight > capacity are never selected.
[[nodiscard]] KnapsackSolution solve_knapsack(std::span<const KnapsackItem> items,
                                              Bytes capacity, KnapsackAlgo algo,
                                              std::uint32_t max_dp_units = 4096);

}  // namespace h2h
