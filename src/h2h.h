// Umbrella header: the full public API of the H2H library.
//
// Typical usage (see examples/quickstart.cpp): create one long-lived
// Planner and send it PlanRequests. The Planner caches the constructed
// Simulator/CostTable state per (model, bandwidth, batch), so re-planning
// the same scenario — a bandwidth sweep revisiting a setting, a modality
// toggling back on — is warm: zero accelerator-model queries, only the
// sub-second search itself (Fig. 5b).
//
//   #include "h2h.h"
//   h2h::Planner planner;  // the standard 12-accelerator system
//   h2h::PlanResponse r = planner.plan(h2h::PlanRequest::zoo(
//       h2h::ZooModel::MoCap, h2h::BandwidthSetting::LowMinus));
//   // bandwidth changed at runtime? plan again — warm requests skip setup:
//   h2h::PlanResponse r2 = planner.plan(h2h::PlanRequest::zoo(
//       h2h::ZooModel::MoCap, h2h::BandwidthSetting::Mid));
//
// PlanRequest also carries batch size, per-step toggles/options, the remap
// objective, an optional wall-clock time budget, and an optional warm-start
// mapping from a prior response; custom pass pipelines (mapping_pass.h) can
// replace the default four steps. The legacy one-shot H2HMapper remains as
// a deprecated shim over the same pipeline.
#pragma once

#include "accel/analytical_models.h"
#include "accel/catalog.h"
#include "accel/registry.h"
#include "accel/tiling.h"
#include "core/baselines.h"
#include "core/dynamic_modality.h"
#if defined(H2H_ENABLE_DEPRECATED)
#include "core/h2h_mapper.h"  // legacy one-shot facade, deprecated
#endif
#include "core/mapping_pass.h"
#include "core/plan_options.h"
#include "core/planner.h"
#include "model/blocks.h"
#include "model/summary.h"
#include "model/synthetic.h"
#include "model/zoo.h"
#include "repair/fault.h"
#include "repair/fault_injector.h"
#include "repair/repair.h"
#include "system/mapping_io.h"
#include "system/schedule_analysis.h"
#include "tenant/co_mapper.h"
#include "tenant/tenant.h"
#include "report/experiment.h"
#include "report/mapping_report.h"
#include "report/paper_tables.h"
#include "util/csv.h"
#include "util/error.h"
#include "util/log.h"
#include "util/str.h"
#include "util/table.h"
