#include "core/remapping.h"

#include <algorithm>
#include <array>

namespace h2h {
namespace {

/// Reusable candidate-generation state: the destination list plus an
/// epoch-stamped per-accelerator dedup array (no O(n²) membership scans, no
/// O(accs) clear per node).
struct CandidateScratch {
  std::vector<AccId> out;
  std::vector<std::uint32_t> stamp;
  std::uint32_t epoch = 0;
};

/// Candidate destination accelerators: the accelerators of the layer's graph
/// neighbours (paper: "re-allocates a layer ... to a new destination
/// accelerator, on which its predecessors and/or successors are mapped"),
/// plus the layer's compute-affinity accelerator — precomputed in the cost
/// table, it depends only on costs, not the mapping. The extra candidate
/// un-strands layers whose step-1 placement turns memory-bound once weights
/// are pinned but whose neighbours all share that placement (DESIGN.md §6).
/// Support checks are cost-table reads — no virtual model calls in the loop.
/// Fills the scratch's out vector (sorted ascending for determinism).
void neighbour_accs(const CostTable& costs, const ModelGraph& model,
                    const Mapping& mapping, LayerId node,
                    CandidateScratch& scratch) {
  const AccId current = mapping.acc_of(node);
  scratch.out.clear();
  if (scratch.stamp.size() < costs.acc_count())
    scratch.stamp.resize(costs.acc_count(), 0);
  if (++scratch.epoch == 0) {  // epoch wrapped: invalidate all stale stamps
    std::fill(scratch.stamp.begin(), scratch.stamp.end(), 0u);
    scratch.epoch = 1;
  }
  const auto consider = [&](AccId a) {
    if (a.is_host() || a == current) return;
    if (scratch.stamp[a.value] == scratch.epoch) return;
    scratch.stamp[a.value] = scratch.epoch;
    if (costs.supported(node, a)) scratch.out.push_back(a);
  };
  for (const LayerId p : model.graph().preds(node))
    consider(mapping.acc_of(p));
  for (const LayerId s : model.graph().succs(node))
    consider(mapping.acc_of(s));
  if (const AccId best = costs.affinity_acc(node); best.valid())
    consider(best);
  std::sort(scratch.out.begin(), scratch.out.end());
}

}  // namespace

RemapStats data_locality_remapping(const Simulator& sim, Mapping& mapping,
                                   LocalityPlan& plan,
                                   const RemapOptions& options) {
  const ModelGraph& model = sim.model();
  const CostTable& costs = sim.costs();
  RemapStats stats;

  const auto metric_of = [&options](const ScheduleResult& r) {
    return options.objective == RemapObjective::Latency
               ? r.latency
               : r.latency * r.energy.total();
  };

  IncrementalSchedule inc(sim);
  inc.set_cone_filter(options.use_retime_cone);
  if (options.use_incremental) inc.reset(mapping, plan);

  RemapDeltaState delta(sim, options.weight, options.fusion,
                        options.use_knapsack_cache);
  const bool use_delta = options.use_delta_locality;
  if (use_delta) delta.init(mapping, plan);

  // Objective value of the current journaled state. The Latency objective
  // reads the maintained makespan directly; the energy-aware objective
  // aggregates energy without materializing a full ScheduleResult.
  const auto current_metric = [&]() {
    if (!options.use_incremental) return metric_of(sim.simulate(mapping, plan));
    return options.objective == RemapObjective::Latency
               ? inc.latency()
               : inc.latency() * inc.energy(mapping).total();
  };

  // Apply one candidate move with steps 2-3 re-run on the two affected
  // accelerators — as a delta over the moved layer and its neighbours when
  // use_delta_locality, full passes on the touched pair otherwise — and the
  // schedule updated incrementally. Requires open journals: the plan
  // journal doubles as the exact dirty set for the schedule update (only
  // layers whose pins or fusion flags flipped get their components
  // re-read). Both steps-2/3 strategies land on bit-identical plan state,
  // so the dirty set and the metric do not depend on the strategy.
  std::vector<LayerId> dirty;  // scratch, reused across probes
  WeightLocalityScratch weight_scratch;
  // One steps-2/3 implementation for probes and accepted applies: the
  // acceptance path must reproduce the probed state exactly, so the two
  // call sites may not drift apart.
  const auto run_steps23 = [&](LayerId node, AccId src, AccId dst) {
    mapping.reassign(node, dst);
    if (use_delta) {
      delta.apply_move(mapping, plan, node, src, dst);
    } else {
      const std::array<AccId, 2> touched{src, dst};
      optimize_weight_locality(sim, mapping, plan, options.weight, touched,
                               &weight_scratch);
      optimize_activation_fusion(sim, mapping, plan, options.fusion, touched);
    }
    if (options.use_incremental) {
      dirty.clear();
      plan.journal_touched_layers(model, dirty);
      // Non-uniform topology: the node's unfused successors read their
      // in-edge over a different link after the move, even when their own
      // plan state did not flip — include them in the dirty set (the
      // refresh dedups by stamp, so overlap with journal-touched layers is
      // free). Gated so the uniform path keeps the legacy dirty set and
      // retime counts bit-identical.
      if (!costs.uniform_links())
        for (const LayerId s : model.graph().succs(node))
          dirty.push_back(s);
    }
  };
  const auto apply_move = [&](LayerId node, AccId src, AccId dst) {
    run_steps23(node, src, dst);
    if (options.use_incremental)
      inc.apply_remap(mapping, plan, node, src, dirty);
  };

  const auto export_work_stats = [&]() {
    if (options.use_incremental) stats.retimes = inc.retime_count();
    if (use_delta) {
      stats.knapsack_hits = delta.knapsack_hits();
      stats.knapsack_misses = delta.knapsack_misses();
      stats.delta_full_passes =
          delta.stats().full_weight + delta.stats().full_fusion;
    }
  };

  double best_metric = current_metric();

  // Visit layers in execution order each pass.
  std::vector<LayerId> order = model.all_layers();
  std::sort(order.begin(), order.end(), [&mapping](LayerId l, LayerId r) {
    return mapping.seq_of(l) < mapping.seq_of(r);
  });

  CandidateScratch candidates;  // reused across nodes

  for (std::uint32_t pass = 0; pass < options.max_passes; ++pass) {
    ++stats.passes;
    bool improved = false;

    for (const LayerId node : order) {
      // Budgeted search: one clock read per layer (not per probe) keeps the
      // check off the candidate hot path; no clock read at all when no
      // deadline is set, so unbudgeted runs are bit-identical to before.
      if (options.deadline &&
          std::chrono::steady_clock::now() >= *options.deadline) {
        stats.stopped_on_budget = true;
        export_work_stats();
        return stats;
      }
      if (model.layer(node).kind == LayerKind::Input) continue;
      if (options.locked && (*options.locked)[node.value]) continue;
      const AccId src = mapping.acc_of(node);
      neighbour_accs(costs, model, mapping, node, candidates);

      // Probe every neighbour destination under the mapping/plan journals —
      // no per-candidate copies — and remember only the best improving
      // destination. The schedule itself is never touched by a probe: the
      // incremental path evaluates the candidate makespan into
      // IncrementalSchedule's overlay (probe_remap), so a rejected
      // candidate needs no schedule journal or rollback at all.
      AccId best_dst{};
      double best_candidate = best_metric;

      for (const AccId dst : candidates.out) {
        ++stats.attempts;
        mapping.begin_journal();
        plan.begin_journal();
        if (use_delta) delta.begin_probe(src, dst);

        run_steps23(node, src, dst);
        double metric;
        if (options.use_incremental) {
          const double lat = inc.probe_remap(mapping, plan, node, src, dirty);
          metric = options.objective == RemapObjective::Latency
                       ? lat
                       : lat * inc.probe_energy(mapping).total();
        } else {
          metric = metric_of(sim.simulate(mapping, plan));
        }
        if (metric < best_candidate - options.epsilon) {
          best_candidate = metric;
          best_dst = dst;
        }

        if (use_delta) delta.rollback_probe();
        plan.rollback_journal();
        mapping.rollback_journal();
      }

      if (best_dst.valid()) {
        // Apply the winning move for keeps (journaled for the dirty-set
        // bookkeeping, then committed; the schedule applies directly — its
        // journal is not needed when nothing rolls back). Steps 2-3 are
        // deterministic, so this reproduces the probed state exactly (the
        // knapsack cache hands the re-apply its solves for free).
        mapping.begin_journal();
        plan.begin_journal();
        if (use_delta) delta.begin_probe(src, best_dst);
        apply_move(node, src, best_dst);
        if (use_delta) delta.commit_probe();
        plan.commit_journal();
        mapping.commit_journal();
        best_metric = best_candidate;
        ++stats.accepted;
        improved = true;
      }
    }

    if (!improved) break;
  }
  export_work_stats();
  return stats;
}

}  // namespace h2h
