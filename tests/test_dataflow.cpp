#include <gtest/gtest.h>

#include "accel/dataflow.h"
#include "util/error.h"

namespace h2h {
namespace {

Layer conv_layer(std::uint32_t n, std::uint32_t m, std::uint32_t r,
                 std::uint32_t c, std::uint32_t k, std::uint32_t s) {
  return Layer{"c", LayerKind::Conv, ConvShape{n, m, r, c, k, s}};
}

TEST(Alignment, PerfectAndWorstCases) {
  EXPECT_DOUBLE_EQ(alignment_fraction(64, 64), 1.0);
  EXPECT_DOUBLE_EQ(alignment_fraction(128, 64), 1.0);
  // 65 units on 64 lanes: two folds, 65/128 busy.
  EXPECT_DOUBLE_EQ(alignment_fraction(65, 64), 65.0 / 128.0);
  // Work smaller than the tile: fractional occupancy.
  EXPECT_DOUBLE_EQ(alignment_fraction(16, 64), 0.25);
  EXPECT_DOUBLE_EQ(alignment_fraction(0, 64), 1.0);
  EXPECT_THROW((void)alignment_fraction(1, 0), ContractViolation);
}

TEST(Dataflow, ChannelParallelPrefersAlignedChannels) {
  const PeArray pe{64, 8};
  const double aligned = utilization(DataflowStyle::ChannelParallel, pe,
                                     conv_layer(64, 8, 14, 14, 3, 1));
  const double misaligned = utilization(DataflowStyle::ChannelParallel, pe,
                                        conv_layer(65, 9, 14, 14, 3, 1));
  EXPECT_DOUBLE_EQ(aligned, 1.0);
  EXPECT_LT(misaligned, aligned);
  EXPECT_GT(misaligned, 0.0);
}

TEST(Dataflow, FeatureMapParallelIgnoresChannelAlignment) {
  const PeArray pe{14, 14};
  const double a = utilization(DataflowStyle::FeatureMapParallel, pe,
                               conv_layer(64, 8, 14, 14, 3, 1));
  const double b = utilization(DataflowStyle::FeatureMapParallel, pe,
                               conv_layer(65, 9, 14, 14, 3, 1));
  EXPECT_DOUBLE_EQ(a, b);  // spatial dims identical
  const double c = utilization(DataflowStyle::FeatureMapParallel, pe,
                               conv_layer(64, 8, 15, 15, 3, 1));
  EXPECT_LT(c, a);  // spatial misalignment hurts
}

TEST(Dataflow, WinogradBoostsOnlyNative3x3Stride1) {
  const PeArray pe{32, 16};
  const double native = utilization(DataflowStyle::Winograd, pe,
                                    conv_layer(32, 16, 14, 14, 3, 1));
  const double strided = utilization(DataflowStyle::Winograd, pe,
                                     conv_layer(32, 16, 14, 14, 3, 2));
  const double k1 = utilization(DataflowStyle::Winograd, pe,
                                conv_layer(32, 16, 14, 14, 1, 1));
  EXPECT_DOUBLE_EQ(native, 2.25);  // transform gain on aligned shapes
  EXPECT_LT(strided, 1.0);
  EXPECT_LT(k1, 1.0);
}

TEST(Dataflow, LstmStylesPreferLstm) {
  const PeArray pe{32, 32};
  const Layer lstm{"l", LayerKind::Lstm, LstmShape{256, 256, 1, 32}};
  const Layer conv = conv_layer(64, 64, 14, 14, 3, 1);
  const double lstm_on_pipeline =
      utilization(DataflowStyle::LstmPipeline, pe, lstm);
  const double conv_on_pipeline =
      utilization(DataflowStyle::LstmPipeline, pe, conv);
  EXPECT_GT(lstm_on_pipeline, conv_on_pipeline);
  const double lstm_on_channel =
      utilization(DataflowStyle::ChannelParallel, pe, lstm);
  EXPECT_GT(lstm_on_pipeline, lstm_on_channel);
}

TEST(Dataflow, StructuralLayersHaveNoMacUtilization) {
  const PeArray pe{16, 16};
  const Layer pool{"p", LayerKind::Pool, PoolShape{8, 4, 4, 2, 2}};
  const Layer input{"i", LayerKind::Input, InputShape{3, 8, 8}};
  for (int s = 0; s < 8; ++s) {
    const auto style = static_cast<DataflowStyle>(s);
    EXPECT_DOUBLE_EQ(utilization(style, pe, pool), 0.0);
    EXPECT_DOUBLE_EQ(utilization(style, pe, input), 0.0);
  }
}

TEST(Dataflow, StyleNamesAreStable) {
  EXPECT_EQ(to_string(DataflowStyle::ChannelParallel), "channel-parallel");
  EXPECT_EQ(to_string(DataflowStyle::Winograd), "winograd");
  EXPECT_EQ(to_string(DataflowStyle::GateParallel), "gate-parallel");
}

// Property sweep: utilization for supported MAC layers always lies in
// (0, 2.25] for every style/geometry combination.
struct UtilCase {
  DataflowStyle style;
  std::uint32_t dim_a;
  std::uint32_t dim_b;
};

class UtilizationRange : public ::testing::TestWithParam<UtilCase> {};

TEST_P(UtilizationRange, BoundedForAllShapes) {
  const UtilCase& p = GetParam();
  const PeArray pe{p.dim_a, p.dim_b};
  for (std::uint32_t n : {1u, 3u, 16u, 63u, 64u, 65u, 512u}) {
    for (std::uint32_t k : {1u, 3u, 5u, 7u}) {
      const double u = utilization(p.style, pe, conv_layer(n, n, 7, 7, k, 1));
      if (u == 0.0) continue;  // style does not run conv
      EXPECT_GT(u, 0.0);
      EXPECT_LE(u, 2.25);
    }
    const Layer lstm{"l", LayerKind::Lstm, LstmShape{n, n, 1, 4}};
    const double ul = utilization(p.style, pe, lstm);
    EXPECT_GE(ul, 0.0);
    EXPECT_LE(ul, 2.25);
    const Layer fc{"f", LayerKind::FullyConnected, FcShape{n, n}};
    const double uf = utilization(p.style, pe, fc);
    EXPECT_GE(uf, 0.0);
    EXPECT_LE(uf, 2.25);
  }
}

INSTANTIATE_TEST_SUITE_P(
    StylesAndGeometries, UtilizationRange,
    ::testing::Values(UtilCase{DataflowStyle::ChannelParallel, 64, 7},
                      UtilCase{DataflowStyle::FeatureMapParallel, 16, 16},
                      UtilCase{DataflowStyle::RowStationary, 12, 14},
                      UtilCase{DataflowStyle::Systolic, 64, 32},
                      UtilCase{DataflowStyle::Winograd, 32, 16},
                      UtilCase{DataflowStyle::MatrixEngine, 32, 32},
                      UtilCase{DataflowStyle::LstmPipeline, 32, 32},
                      UtilCase{DataflowStyle::GateParallel, 16, 8}));

}  // namespace
}  // namespace h2h
