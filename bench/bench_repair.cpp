// Live-repair experiment (DESIGN.md §12): how much cheaper is a warm
// damage-cone repair than re-planning from scratch when an accelerator
// drops out or its links degrade? The preamble runs one warm repair and one
// cold re-plan per (zoo model, fault) cell and asserts the repair contract
// before anything is timed — every repaired mapping validates, and on the
// single-dropout fixtures the warm repair migrates strictly fewer layers
// than the cold re-plan (the acceptance property pinned in
// test_repair.cpp). A violated contract exits 1 so CI fails loudly instead
// of publishing timings for a broken repair path.
//
// The timed benchmarks measure one full fault-and-recovery cycle per
// iteration (hit + heal), warm (RepairEngine::apply twice) vs cold
// (plan_once on the faulted system, then on the healed one) — the
// per-event costs an incremental and a non-incremental serving stack would
// actually pay.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "h2h.h"

namespace {

using namespace h2h;

constexpr double kBw = 0.5e9;  // 0.5 GB/s uniform links
constexpr double kDegradeScale = 0.25;

/// The accelerator hosting the most layers (ties to the lowest id): the
/// dropout victim with the largest damage cone.
AccId busiest_acc(const Mapping& mapping, const SystemConfig& sys) {
  AccId best{};
  std::size_t best_n = 0;
  for (const AccId a : sys.all_accelerators()) {
    const std::size_t n = mapping.members(a).size();
    if (n > best_n) {
      best_n = n;
      best = a;
    }
  }
  return best;
}

std::size_t moved_layers(const ModelGraph& model, const Mapping& a,
                         const Mapping& b) {
  std::size_t n = 0;
  for (const LayerId id : model.all_layers()) {
    if (model.layer(id).kind == LayerKind::Input) continue;
    if (a.acc_of(id) != b.acc_of(id)) ++n;
  }
  return n;
}

struct FaultPair {
  const char* name;
  FaultKind kind;
};

constexpr FaultPair kFaults[] = {
    {"dropout", FaultKind::AccLost},
    {"link-degrade", FaultKind::LinkDegraded},
};

FaultEvent hit_event(FaultKind kind, AccId victim) {
  return kind == FaultKind::AccLost
             ? FaultEvent::lost(victim)
             : FaultEvent::link_degraded(victim, kDegradeScale);
}

FaultEvent heal_event(FaultKind kind, AccId victim) {
  return kind == FaultKind::AccLost ? FaultEvent::returned(victim)
                                    : FaultEvent::link_restored(victim);
}

void apply_hit(SystemConfig& sys, FaultKind kind, AccId victim) {
  if (kind == FaultKind::AccLost) {
    sys.set_available(victim, false);
  } else {
    sys.set_link_degrade(victim, kDegradeScale);
  }
}

void BM_WarmRepairCycle(benchmark::State& state, ZooModel zm,
                        FaultKind kind) {
  const ModelGraph model = make_model(zm);
  RepairEngine engine(model, SystemConfig::standard(kBw));
  (void)engine.plan_initial();
  const AccId victim = busiest_acc(engine.mapping(), engine.system());
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.apply(hit_event(kind, victim)).outcome);
    benchmark::DoNotOptimize(engine.apply(heal_event(kind, victim)).outcome);
  }
}

void BM_ColdReplanCycle(benchmark::State& state, ZooModel zm,
                        FaultKind kind) {
  const ModelGraph model = make_model(zm);
  const SystemConfig healthy = SystemConfig::standard(kBw);
  const AccId victim =
      busiest_acc(plan_once(model, healthy).mapping, healthy);
  SystemConfig faulted = SystemConfig::standard(kBw);
  apply_hit(faulted, kind, victim);
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan_once(model, faulted).final_result().latency);
    benchmark::DoNotOptimize(plan_once(model, healthy).final_result().latency);
  }
}

#define H2H_REPAIR_BENCH(key, zoo)                                           \
  BENCHMARK_CAPTURE(BM_WarmRepairCycle, key##_dropout, ZooModel::zoo,        \
                    FaultKind::AccLost)                                      \
      ->Unit(benchmark::kMillisecond);                                       \
  BENCHMARK_CAPTURE(BM_ColdReplanCycle, key##_dropout, ZooModel::zoo,        \
                    FaultKind::AccLost)                                      \
      ->Unit(benchmark::kMillisecond);                                       \
  BENCHMARK_CAPTURE(BM_WarmRepairCycle, key##_degrade, ZooModel::zoo,        \
                    FaultKind::LinkDegraded)                                 \
      ->Unit(benchmark::kMillisecond);                                       \
  BENCHMARK_CAPTURE(BM_ColdReplanCycle, key##_degrade, ZooModel::zoo,        \
                    FaultKind::LinkDegraded)                                 \
      ->Unit(benchmark::kMillisecond)

H2H_REPAIR_BENCH(vlocnet, VLocNet);
H2H_REPAIR_BENCH(casia_surf, CasiaSurf);
H2H_REPAIR_BENCH(vfs, Vfs);
H2H_REPAIR_BENCH(facebag, FaceBag);
H2H_REPAIR_BENCH(cnn_lstm, CnnLstm);
H2H_REPAIR_BENCH(mocap, MoCap);

#undef H2H_REPAIR_BENCH

/// One preamble cell: warm repair vs cold re-plan on the same fault.
/// Returns false (after printing why) when the repair contract is violated.
bool check_cell(ZooModel zm, const FaultPair& fault, TextTable& table) {
  const ModelGraph model = make_model(zm);
  RepairOptions opts;
  opts.allow_fallback = false;  // the pure warm repair is the comparison
  RepairEngine engine(model, SystemConfig::standard(kBw), opts);
  (void)engine.plan_initial();
  const Mapping before = engine.mapping();
  const AccId victim = busiest_acc(before, engine.system());

  const RepairResult warm = engine.apply(hit_event(fault.kind, victim));
  if (warm.outcome != RepairOutcome::Repaired) {
    std::cerr << "FAIL: " << zoo_info(zm).key << " " << fault.name
              << " was not repairable: " << warm.infeasible_reason << "\n";
    return false;
  }
  engine.mapping().validate(model, engine.system());

  SystemConfig faulted = SystemConfig::standard(kBw);
  apply_hit(faulted, fault.kind, victim);
  const PlanResponse cold = plan_once(model, faulted);
  const std::size_t cold_moved = moved_layers(model, before, cold.mapping);

  // The tentpole property: a dropout's warm repair touches only the damage
  // cone (never more than a cold re-plan migrates), and on the acceptance
  // fixtures pinned in test_repair.cpp it migrates strictly fewer layers.
  if (fault.kind == FaultKind::AccLost) {
    const bool pinned_fixture =
        zm == ZooModel::MoCap || zm == ZooModel::CnnLstm;
    const bool bad = pinned_fixture ? warm.layers_moved >= cold_moved
                                    : warm.layers_moved > cold_moved;
    if (bad) {
      std::cerr << "FAIL: " << zoo_info(zm).key
                << " dropout: warm repair moved " << warm.layers_moved
                << " layer(s), cold re-plan moved " << cold_moved
                << " — warm must migrate "
                << (pinned_fixture ? "strictly fewer" : "no more") << "\n";
      return false;
    }
  }

  Bytes cold_bytes = 0;
  for (const LayerId id : model.all_layers()) {
    if (model.layer(id).kind == LayerKind::Input) continue;
    if (before.acc_of(id) != cold.mapping.acc_of(id))
      cold_bytes += model.weight_bytes(id);
  }

  table.add_row({std::string(zoo_info(zm).key), fault.name,
                 strformat("%.6f", warm.pre_latency_s),
                 strformat("%.6f", warm.post_latency_s),
                 strformat("%.6f", cold.final_result().latency),
                 strformat("%zu", warm.cone_layers),
                 strformat("%zu / %zu", warm.layers_moved, cold_moved),
                 strformat("%s / %s",
                           human_bytes(warm.weight_bytes_moved).c_str(),
                           human_bytes(cold_bytes).c_str())});
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  TextTable table({"model", "fault", "pre (s)", "warm post (s)",
                   "cold post (s)", "cone", "moved w/c", "re-staged w/c"},
                  {TextTable::Align::Left, TextTable::Align::Left});
  bool ok = true;
  for (const ZooInfo& info : zoo_catalog())
    for (const FaultPair& fault : kFaults)
      ok = check_cell(info.id, fault, table) && ok;

  std::cout << "live repair: warm damage-cone repair vs cold re-plan "
               "(busiest-accelerator faults, 0.5 GB/s links):\n";
  table.print(std::cout);
  std::cout << "\n";
  if (!ok) return EXIT_FAILURE;

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
