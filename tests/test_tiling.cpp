#include <gtest/gtest.h>

#include "accel/analytical_models.h"
#include "accel/catalog.h"
#include "accel/tiling.h"

namespace h2h {
namespace {

TEST(Tiling, DisabledBuffersMeanSingleStream) {
  const Layer conv{"c", LayerKind::Conv, ConvShape{64, 64, 28, 28, 3, 1}};
  const TileAnalysis ta = analyze_tiling(conv, OnChipBuffers{}, 2);
  EXPECT_EQ(ta.weight_reloads, 1u);
  EXPECT_GT(ta.dram_traffic, 0u);
}

TEST(Tiling, ConvWeightsThatFitStreamOnce) {
  const Layer conv{"c", LayerKind::Conv, ConvShape{64, 64, 28, 28, 3, 1}};
  // Weights: 64*64*9*2 + bias = ~74 KB; a 1 MiB buffer holds them.
  const OnChipBuffers big{mib(1), mib(1)};
  const TileAnalysis ta = analyze_tiling(conv, big, 2);
  EXPECT_EQ(ta.weight_reloads, 1u);
  const Bytes weights = conv.weight_bytes(2);
  EXPECT_GE(ta.dram_traffic, weights);  // weights + ifm + ofm
}

TEST(Tiling, ConvWeightsThatDoNotFitReloadPerTile) {
  const Layer conv{"c", LayerKind::Conv, ConvShape{512, 512, 28, 28, 3, 1}};
  // Weights ~4.7 MB; a 64 KiB weight buffer forces per-tile reload, and a
  // small act buffer forces multiple tiles.
  const OnChipBuffers small{kib(64), kib(64)};
  const TileAnalysis ta = analyze_tiling(conv, small, 2);
  EXPECT_GT(ta.tile_count, 1u);
  EXPECT_EQ(ta.weight_reloads, ta.tile_count);
  EXPECT_GT(ta.dram_traffic, conv.weight_bytes(2) * 2);
}

TEST(Tiling, LargerActBufferNeverIncreasesTiles) {
  const Layer conv{"c", LayerKind::Conv, ConvShape{128, 128, 56, 56, 3, 1}};
  std::uint32_t prev_tiles = 0xFFFFFFFF;
  for (const Bytes act : {kib(32), kib(128), mib(1), mib(8)}) {
    const TileAnalysis ta = analyze_tiling(conv, OnChipBuffers{kib(64), act}, 2);
    EXPECT_LE(ta.tile_count, prev_tiles);
    prev_tiles = ta.tile_count;
  }
}

TEST(Tiling, FcStreamsWeightsExactlyOnce) {
  const Layer fc{"f", LayerKind::FullyConnected, FcShape{4096, 4096}};
  const TileAnalysis ta = analyze_tiling(fc, OnChipBuffers{kib(64), kib(64)}, 2);
  EXPECT_EQ(ta.weight_reloads, 1u);  // batch-1 GEMV has no weight reuse
  EXPECT_GE(ta.dram_traffic, fc.weight_bytes(2));
  // Reuse is ~1 MAC/byte for FC: macs = in*out, traffic ~ 2*in*out bytes.
  EXPECT_NEAR(ta.reuse(fc.macs()), 0.5, 0.05);
}

TEST(Tiling, LstmRefetchesGatesPerTimestepWhenTooBig) {
  const Layer lstm{"l", LayerKind::Lstm, LstmShape{512, 512, 1, 100}};
  // Gate matrices ~4.2 MB at 2 B; 1 MiB on-chip forces 100 reloads.
  const TileAnalysis tight =
      analyze_tiling(lstm, OnChipBuffers{mib(1), mib(1)}, 2);
  EXPECT_EQ(tight.weight_reloads, 100u);
  const TileAnalysis roomy =
      analyze_tiling(lstm, OnChipBuffers{mib(16), mib(1)}, 2);
  EXPECT_EQ(roomy.weight_reloads, 1u);
  EXPECT_GT(tight.dram_traffic, roomy.dram_traffic * 10);
}

TEST(Tiling, StructuralLayersStreamOnly) {
  const Layer pool{"p", LayerKind::Pool, PoolShape{32, 14, 14, 2, 2}};
  const TileAnalysis ta = analyze_tiling(pool, OnChipBuffers{mib(1), mib(1)}, 2);
  EXPECT_EQ(ta.weight_reloads, 1u);
  EXPECT_GT(ta.dram_traffic, 0u);
  const Layer input{"i", LayerKind::Input, InputShape{3, 8, 8}};
  EXPECT_EQ(analyze_tiling(input, OnChipBuffers{mib(1), mib(1)}, 2).dram_traffic,
            0u);
}

TEST(Tiling, RefetchRooflineOnlySlowsLayersDown) {
  // The analytical model with buffers must be >= the pure-compute model.
  AcceleratorSpec with = eyeriss_like_spec();
  AcceleratorSpec without = eyeriss_like_spec();
  without.buffers = OnChipBuffers{};
  const AnalyticalAccelerator a_with(with);
  const AnalyticalAccelerator a_without(without);
  const Layer big{"c", LayerKind::Conv, ConvShape{512, 512, 56, 56, 3, 1}};
  const Layer small{"c", LayerKind::Conv, ConvShape{32, 32, 14, 14, 3, 1}};
  EXPECT_GE(a_with.compute_latency(big), a_without.compute_latency(big));
  // Small layers fit on chip: no penalty at all.
  EXPECT_DOUBLE_EQ(a_with.compute_latency(small),
                   a_without.compute_latency(small));
}

TEST(Tiling, CatalogLstmEnginesDifferOnBigRecurrence) {
  // The FTRANS-class design (32 MiB on-chip) holds gate matrices that the
  // ESE-class design (4 MiB) must re-stream: for a large LSTM the per-MAC
  // latency gap must exceed the raw peak-throughput ratio.
  const auto accs = build_standard_accelerators();
  const AcceleratorModel* sh = nullptr;
  const AcceleratorModel* bl = nullptr;
  for (const AcceleratorPtr& a : accs) {
    if (a->spec().name == "S.H") sh = a.get();
    if (a->spec().name == "B.L") bl = a.get();
  }
  ASSERT_NE(sh, nullptr);
  ASSERT_NE(bl, nullptr);
  // 1024-hidden single-layer gates: ~16.8 MB at 2 B — fits B.L's 32 MiB,
  // exceeds S.H's 4 MiB.
  const Layer big_lstm{"l", LayerKind::Lstm, LstmShape{1024, 1024, 1, 64}};
  const double ratio =
      sh->compute_latency(big_lstm) / bl->compute_latency(big_lstm);
  const double peak_ratio = (1536.0 * 200e6) / (1024.0 * 200e6);
  EXPECT_GT(ratio, peak_ratio);
}

}  // namespace
}  // namespace h2h
