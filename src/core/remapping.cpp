#include "core/remapping.h"

#include <algorithm>
#include <limits>
#include <set>

namespace h2h {
namespace {

/// Candidate destination accelerators: the accelerators of the layer's graph
/// neighbours (paper: "re-allocates a layer ... to a new destination
/// accelerator, on which its predecessors and/or successors are mapped"),
/// plus the layer's compute-affinity accelerator — the one minimizing
/// pinned-weight execution (compute + local weight read). The extra
/// candidate un-strands layers whose step-1 placement turns memory-bound
/// once weights are pinned but whose neighbours all share that placement
/// (DESIGN.md §6).
std::vector<AccId> neighbour_accs(const Simulator& sim, const Mapping& mapping,
                                  LayerId node) {
  const ModelGraph& model = sim.model();
  const Layer& layer = model.layer(node);
  const AccId current = mapping.acc_of(node);
  std::set<AccId> accs;
  const auto consider = [&](AccId a) {
    if (a.is_host() || a == current) return;
    if (sim.sys().accelerator(a).supports(layer.kind)) accs.insert(a);
  };
  for (const LayerId p : model.graph().preds(node))
    consider(mapping.acc_of(p));
  for (const LayerId s : model.graph().succs(node))
    consider(mapping.acc_of(s));

  AccId best{};
  double best_time = std::numeric_limits<double>::infinity();
  for (const AccId a : sim.sys().supporting(layer.kind)) {
    const AcceleratorModel& acc = sim.sys().accelerator(a);
    const double t =
        acc.compute_latency(layer) * model.batch() +
        static_cast<double>(model.weight_bytes(node)) /
            acc.spec().dram_bandwidth;
    if (t < best_time) {
      best_time = t;
      best = a;
    }
  }
  if (best.valid()) consider(best);
  return {accs.begin(), accs.end()};
}

/// Layers whose transfer components may change when `node` moves between
/// `a` and `b`: everything on either accelerator (pins can be redistributed
/// there) — graph neighbours on third accelerators keep their components.
std::vector<LayerId> dirty_set(const Mapping& mapping, AccId a, AccId b) {
  std::vector<LayerId> dirty = mapping.layers_on(a);
  const std::vector<LayerId> on_b = mapping.layers_on(b);
  dirty.insert(dirty.end(), on_b.begin(), on_b.end());
  return dirty;
}

}  // namespace

RemapStats data_locality_remapping(const Simulator& sim, Mapping& mapping,
                                   LocalityPlan& plan,
                                   const RemapOptions& options) {
  const ModelGraph& model = sim.model();
  RemapStats stats;

  const auto metric_of = [&options](const ScheduleResult& r) {
    return options.objective == RemapObjective::Latency
               ? r.latency
               : r.latency * r.energy.total();
  };

  IncrementalSchedule inc(sim);
  if (options.use_incremental) inc.reset(mapping, plan);
  double best_latency =
      options.use_incremental
          ? metric_of(inc.result(mapping))
          : metric_of(sim.simulate(mapping, plan));

  // Visit layers in execution order each pass.
  std::vector<LayerId> order = model.all_layers();
  std::sort(order.begin(), order.end(), [&mapping](LayerId l, LayerId r) {
    return mapping.seq_of(l) < mapping.seq_of(r);
  });

  for (std::uint32_t pass = 0; pass < options.max_passes; ++pass) {
    ++stats.passes;
    bool improved = false;

    for (const LayerId node : order) {
      if (model.layer(node).kind == LayerKind::Input) continue;
      const AccId src = mapping.acc_of(node);

      // Evaluate every neighbour destination; keep the best improving one.
      AccId best_dst{};
      LocalityPlan best_plan(model);
      IncrementalSchedule best_inc(sim);
      double best_candidate = best_latency;

      for (const AccId dst : neighbour_accs(sim, mapping, node)) {
        ++stats.attempts;
        mapping.reassign(node, dst);
        const std::vector<LayerId> dirty = dirty_set(mapping, src, dst);
        const std::array<AccId, 2> touched{src, dst};

        LocalityPlan candidate_plan = plan;
        optimize_weight_locality(sim, mapping, candidate_plan, options.weight,
                                 touched);
        optimize_activation_fusion(sim, mapping, candidate_plan,
                                   options.fusion, touched);

        double lat;
        IncrementalSchedule candidate_inc(sim);
        if (options.use_incremental) {
          candidate_inc = inc;
          candidate_inc.apply_remap(mapping, candidate_plan, node, src, dirty);
          lat = options.objective == RemapObjective::Latency
                    ? candidate_inc.latency()
                    : metric_of(candidate_inc.result(mapping));
        } else {
          lat = metric_of(sim.simulate(mapping, candidate_plan));
        }

        if (lat < best_candidate - options.epsilon) {
          best_candidate = lat;
          best_dst = dst;
          best_plan = std::move(candidate_plan);
          if (options.use_incremental) best_inc = std::move(candidate_inc);
        }
        mapping.reassign(node, src);  // roll back for the next candidate
      }

      if (best_dst.valid()) {
        mapping.reassign(node, best_dst);
        plan = std::move(best_plan);
        if (options.use_incremental) inc = std::move(best_inc);
        best_latency = best_candidate;
        ++stats.accepted;
        improved = true;
      }
    }

    if (!improved) break;
  }
  return stats;
}

}  // namespace h2h
