// Regenerates Table 4: per-step latency breakdown vs the step-2 baseline —
// absolute seconds for steps 1-2, and step-3/step-4 latency as a percentage
// of step 2 for every bandwidth x model cell.
#include <benchmark/benchmark.h>

#include <iostream>

#include "h2h.h"

namespace {

void BM_StepBreakdown_MoCap_Low(benchmark::State& state) {
  for (auto _ : state) {
    const h2h::StepSeries s =
        h2h::run_experiment(h2h::ZooModel::MoCap, h2h::BandwidthSetting::Low);
    benchmark::DoNotOptimize(s.latency_vs_baseline());
  }
}
BENCHMARK(BM_StepBreakdown_MoCap_Low)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const std::vector<h2h::StepSeries> sweep = h2h::run_full_sweep();
  h2h::print_table4(sweep, std::cout);
  std::cout << '\n';

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
