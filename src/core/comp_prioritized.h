// Step 1 — computation-prioritized mapping (paper §4.1).
//
// Iteratively take the frontier ("all the nodes without predecessors" among
// unmapped layers), enumerate every frontier -> accelerator assignment, and
// commit the one with the smallest system-latency increment. Zero data
// locality is assumed: every layer's weights and activations cross the host
// link, so the choice is driven by compute affinity and queue serialization.
// Waves come from an indegree-counting FrontierWorklist (O(V + E) total) and
// per-candidate durations are cost-table reads — no per-query model
// evaluation.
//
// Enumeration is exact while the candidate product stays within
// `max_candidates`; larger frontiers are split into deterministic chunks
// mapped greedily in sequence, and partial assignments are abandoned once
// their running makespan exceeds the best found (DESIGN.md §6; swept by the
// frontier ablation bench). Ties beyond (makespan, finish-sum) keep the
// first enumerated assignment — the colexicographically smallest choice
// vector (see comp_prioritized.cpp).
#pragma once

#include <functional>
#include <optional>

#include "system/simulator.h"

namespace h2h {

struct CompPrioritizedOptions {
  /// Upper bound on enumerated assignments per frontier chunk.
  std::uint64_t max_candidates = 200000;
  /// Optional placement preference (dynamic-modality extension §4.5): if it
  /// returns an accelerator that supports the layer, that accelerator is the
  /// only candidate considered.
  std::function<std::optional<AccId>(LayerId)> preferred;
};

/// Produce a complete mapping (and execution sequence) for the model.
/// Throws ConfigError if some layer kind is supported by no accelerator.
[[nodiscard]] Mapping computation_prioritized_mapping(
    const Simulator& sim, const CompPrioritizedOptions& options = {});

}  // namespace h2h
