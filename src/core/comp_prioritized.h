// Step 1 — computation-prioritized mapping (paper §4.1).
//
// Iteratively take the frontier ("all the nodes without predecessors" among
// unmapped layers), enumerate every frontier -> accelerator assignment, and
// commit the one with the smallest system-latency increment. Zero data
// locality is assumed: every layer's weights and activations cross the host
// link, so the choice is driven by compute affinity and queue serialization.
//
// Enumeration is exact while the candidate product stays within
// `max_candidates`; larger frontiers are split into deterministic chunks
// mapped greedily in sequence (DESIGN.md §6; swept by the frontier ablation
// bench).
#pragma once

#include <functional>
#include <optional>

#include "system/simulator.h"

namespace h2h {

struct CompPrioritizedOptions {
  /// Upper bound on enumerated assignments per frontier chunk.
  std::uint64_t max_candidates = 200000;
  /// Optional placement preference (dynamic-modality extension §4.5): if it
  /// returns an accelerator that supports the layer, that accelerator is the
  /// only candidate considered.
  std::function<std::optional<AccId>(LayerId)> preferred;
};

/// Produce a complete mapping (and execution sequence) for the model.
/// Throws ConfigError if some layer kind is supported by no accelerator.
[[nodiscard]] Mapping computation_prioritized_mapping(
    const Simulator& sim, const CompPrioritizedOptions& options = {});

}  // namespace h2h
