// Session-cache benchmark: the repeated-request loop the Planner API exists
// for. One "request sweep" = planning one model at all five bandwidth
// settings. The one-shot path pays the full cold start per request: the
// Simulator/CostTable build (every accelerator model queried for every
// layer) each time; the Planner path builds each (model, bw) session once
// and serves every later request warm — zero virtual AcceleratorModel
// calls, only the search itself. Before/after numbers are recorded in
// bench/README.md.
#include <benchmark/benchmark.h>

#include <iostream>

#include "h2h.h"

namespace {

using namespace h2h;

void BM_SweepOneShotPerRequest(benchmark::State& state) {
  const auto model_id = static_cast<ZooModel>(state.range(0));
  const ModelGraph model = make_model(model_id);
  for (auto _ : state) {
    double acc = 0;
    for (const BandwidthSetting bw : all_bandwidth_settings()) {
      const SystemConfig sys = SystemConfig::standard(bw);
      acc += plan_once(model, sys).final_result().latency;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetLabel(std::string(zoo_info(model_id).key));
}
BENCHMARK(BM_SweepOneShotPerRequest)
    ->Arg(static_cast<int>(ZooModel::MoCap))
    ->Arg(static_cast<int>(ZooModel::CasiaSurf))
    ->Arg(static_cast<int>(ZooModel::VLocNet))
    ->Unit(benchmark::kMillisecond);

void BM_SweepPlannerWarmSession(benchmark::State& state) {
  const auto model_id = static_cast<ZooModel>(state.range(0));
  Planner planner;
  for (const BandwidthSetting bw : all_bandwidth_settings())
    (void)planner.plan(PlanRequest::zoo(model_id, bw));  // build sessions
  for (auto _ : state) {
    double acc = 0;
    for (const BandwidthSetting bw : all_bandwidth_settings())
      acc += planner.plan(PlanRequest::zoo(model_id, bw))
                 .final_result()
                 .latency;
    benchmark::DoNotOptimize(acc);
  }
  state.SetLabel(std::string(zoo_info(model_id).key));
}
BENCHMARK(BM_SweepPlannerWarmSession)
    ->Arg(static_cast<int>(ZooModel::MoCap))
    ->Arg(static_cast<int>(ZooModel::CasiaSurf))
    ->Arg(static_cast<int>(ZooModel::VLocNet))
    ->Unit(benchmark::kMillisecond);

/// One-shot cold/warm breakdown: what a single request pays with and
/// without a cached session.
void print_breakdown(std::ostream& out) {
  TextTable t({"model", "cold setup", "cold search", "warm setup",
               "warm search"},
              {TextTable::Align::Left});
  for (const ZooModel id :
       {ZooModel::MoCap, ZooModel::CasiaSurf, ZooModel::VLocNet}) {
    Planner planner;
    const PlanRequest request =
        PlanRequest::zoo(id, BandwidthSetting::LowMinus);
    const PlanResponse cold = planner.plan(request);
    const PlanResponse warm = planner.plan(request);
    t.add_row({std::string(zoo_info(id).key),
               human_seconds(cold.setup_seconds),
               human_seconds(cold.search_seconds),
               human_seconds(warm.setup_seconds),
               human_seconds(warm.search_seconds)});
  }
  out << "per-request cold vs warm breakdown @ Low-:\n";
  t.print(out);
  out << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  print_breakdown(std::cout);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
