#include <gtest/gtest.h>

#include "core/activation_fusion.h"
#include "core/weight_locality.h"
#include "test_helpers.h"

namespace h2h {
namespace {

using testing::make_chain_model;
using testing::make_diamond_model;
using testing::make_uniform_system;

TEST(ActivationFusion, FusesOnlySameAcceleratorEdges) {
  const ModelGraph m = make_chain_model();
  const SystemConfig sys = make_uniform_system(2);
  const Simulator sim(m, sys);
  Mapping mapping(m);
  mapping.assign(LayerId{1}, AccId{0});
  mapping.assign(LayerId{2}, AccId{0});
  mapping.assign(LayerId{3}, AccId{1});

  LocalityPlan plan(m);
  plan.ensure_acc_count(2);
  const FusionStats stats = optimize_activation_fusion(sim, mapping, plan);
  // convA->convB fused (same acc); input->convA never fused (host source);
  // convB->fcC crosses accelerators.
  EXPECT_EQ(stats.fused_edges, 1u);
  EXPECT_TRUE(plan.edge_fused(m, LayerId{1}, LayerId{2}));
  EXPECT_FALSE(plan.edge_fused(m, LayerId{0}, LayerId{1}));
  EXPECT_FALSE(plan.edge_fused(m, LayerId{2}, LayerId{3}));
  EXPECT_EQ(stats.fused_bytes, m.edge_bytes(LayerId{1}));
}

TEST(ActivationFusion, HostInputsNeverFuse) {
  const ModelGraph m = make_chain_model();
  const SystemConfig sys = make_uniform_system(1);
  const Simulator sim(m, sys);
  Mapping mapping(m);
  for (const LayerId id : m.all_layers())
    if (m.layer(id).kind != LayerKind::Input) mapping.assign(id, AccId{0});
  LocalityPlan plan(m);
  plan.ensure_acc_count(1);
  optimize_activation_fusion(sim, mapping, plan);
  EXPECT_FALSE(plan.edge_fused(m, LayerId{0}, LayerId{1}));
}

TEST(ActivationFusion, CapacityGatesFusion) {
  const ModelGraph m = make_diamond_model();
  // Tiny DRAM: pinned weights occupy nothing (no pins), but activations are
  // 16*16*16*2 = 8192 B per edge; capacity 10000 B admits just one edge.
  const SystemConfig sys = make_uniform_system(1, 1e9, 10000);
  const Simulator sim(m, sys);
  Mapping mapping(m);
  for (const LayerId id : m.all_layers())
    if (m.layer(id).kind != LayerKind::Input) mapping.assign(id, AccId{0});

  LocalityPlan plan(m);
  plan.ensure_acc_count(1);
  const FusionStats stats = optimize_activation_fusion(sim, mapping, plan);
  EXPECT_EQ(stats.fused_edges, 1u);
  EXPECT_GE(stats.rejected_for_capacity, 1u);
  EXPECT_LE(plan.used_dram(AccId{0}), 10000u);

  // Unbounded fusion takes every same-accelerator edge.
  LocalityPlan unbounded(m);
  unbounded.ensure_acc_count(1);
  FusionOptions loose;
  loose.enforce_capacity = false;
  const FusionStats all = optimize_activation_fusion(sim, mapping, unbounded,
                                                     loose);
  EXPECT_EQ(all.fused_edges, 5u);  // a->b, a->c, b->d, c->d, d->e
  EXPECT_EQ(all.rejected_for_capacity, 0u);
}

TEST(ActivationFusion, AccountsForPinnedWeightsFirst) {
  const ModelGraph m = make_chain_model();
  // Capacity just above the total weight bytes: pins eat the capacity, so
  // no activation fits afterwards.
  const Bytes weights = m.stats().total_weight_bytes;  // 23424 B
  const SystemConfig sys = make_uniform_system(1, 1e9, weights + 100);
  const Simulator sim(m, sys);
  Mapping mapping(m);
  for (const LayerId id : m.all_layers())
    if (m.layer(id).kind != LayerKind::Input) mapping.assign(id, AccId{0});

  LocalityPlan plan(m);
  plan.ensure_acc_count(1);
  optimize_weight_locality(sim, mapping, plan);
  ASSERT_EQ(plan.used_dram(AccId{0}), weights);
  const FusionStats stats = optimize_activation_fusion(sim, mapping, plan);
  EXPECT_EQ(stats.fused_edges, 0u);
  EXPECT_EQ(stats.rejected_for_capacity, 2u);
}

TEST(ActivationFusion, LatencyNeverIncreases) {
  const ModelGraph m = make_model(ZooModel::CnnLstm);
  const SystemConfig sys = SystemConfig::standard(BandwidthSetting::LowMinus);
  const Simulator sim(m, sys);
  const Mapping mapping = [&] {
    Mapping tmp(m);
    const auto lstm_accs = sys.supporting(LayerKind::Lstm);
    for (const LayerId id : m.all_layers()) {
      const Layer& l = m.layer(id);
      if (l.kind == LayerKind::Input) continue;
      tmp.assign(id, l.kind == LayerKind::Lstm ? lstm_accs.front() : AccId{5});
    }
    return tmp;
  }();
  LocalityPlan plan(m);
  plan.ensure_acc_count(sys.accelerator_count());
  const double before = sim.simulate(mapping, plan).latency;
  optimize_activation_fusion(sim, mapping, plan);
  const double after = sim.simulate(mapping, plan).latency;
  EXPECT_LE(after, before);
}

TEST(ActivationFusion, OnlyAccsRecomputesScopedEdges) {
  const ModelGraph m = make_chain_model();
  const SystemConfig sys = make_uniform_system(2);
  const Simulator sim(m, sys);
  Mapping mapping(m);
  mapping.assign(LayerId{1}, AccId{0});
  mapping.assign(LayerId{2}, AccId{0});
  mapping.assign(LayerId{3}, AccId{0});

  LocalityPlan plan(m);
  plan.ensure_acc_count(2);
  optimize_activation_fusion(sim, mapping, plan);
  EXPECT_EQ(plan.fused_edge_count(), 2u);

  // Move fcC to acc 1: recomputing only the touched accelerators must
  // unfuse convB->fcC and keep convA->convB.
  mapping.reassign(LayerId{3}, AccId{1});
  const std::array<AccId, 2> touched{AccId{0}, AccId{1}};
  optimize_activation_fusion(sim, mapping, plan, {}, touched);
  EXPECT_TRUE(plan.edge_fused(m, LayerId{1}, LayerId{2}));
  EXPECT_FALSE(plan.edge_fused(m, LayerId{2}, LayerId{3}));
  EXPECT_EQ(plan.fused_edge_count(), 1u);
}

}  // namespace
}  // namespace h2h
