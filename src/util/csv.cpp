#include "util/csv.h"

#include <algorithm>

namespace h2h {

std::string CsvWriter::escape(std::string_view field) {
  const bool needs_quoting =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quoting) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) *out_ << ',';
    *out_ << escape(fields[i]);
  }
  *out_ << '\n';
}

void CsvWriter::header(std::initializer_list<std::string_view> fields) {
  std::vector<std::string> row_fields;
  row_fields.reserve(fields.size());
  for (auto f : fields) row_fields.emplace_back(f);
  row(row_fields);
}

}  // namespace h2h
