#include <gtest/gtest.h>

#include "core/dynamic_modality.h"
#include "test_helpers.h"
#include "util/error.h"

namespace h2h {
namespace {

TEST(SubsetModel, DropsInactiveBranchesTransitively) {
  const ModelGraph full = testing::make_mini_mmmt_model();
  const std::uint32_t active[] = {1};  // image branch only
  const ModelGraph sub = subset_model(full, active);

  EXPECT_LT(sub.layer_count(), full.layer_count());
  for (const LayerId id : sub.all_layers()) {
    const Layer& l = sub.layer(id);
    EXPECT_NE(l.modality, 2u) << l.name;  // no sequence-branch layers
  }
  // The fusion concat survives with a single live input.
  bool has_concat = false;
  for (const LayerId id : sub.all_layers())
    if (sub.layer(id).kind == LayerKind::Concat) {
      has_concat = true;
      EXPECT_EQ(sub.graph().in_degree(id), 1u);
    }
  EXPECT_TRUE(has_concat);
}

TEST(SubsetModel, PreservesLayerIdentity) {
  const ModelGraph full = make_model(ZooModel::MoCap);
  const std::uint32_t active[] = {1, 2};
  const ModelGraph sub = subset_model(full, active);
  // Every kept layer keeps its exact name and parameter count.
  for (const LayerId id : sub.all_layers()) {
    const Layer& sl = sub.layer(id);
    bool found = false;
    for (const LayerId fid : full.all_layers()) {
      if (full.layer(fid).name == sl.name) {
        found = true;
        EXPECT_EQ(full.layer(fid).param_count(), sl.param_count());
      }
    }
    EXPECT_TRUE(found) << sl.name;
  }
}

TEST(SubsetModel, FullActiveSetIsIdentityShape) {
  const ModelGraph full = testing::make_mini_mmmt_model();
  const std::uint32_t active[] = {1, 2};
  const ModelGraph sub = subset_model(full, active);
  EXPECT_EQ(sub.layer_count(), full.layer_count());
  EXPECT_EQ(sub.graph().edge_count(), full.graph().edge_count());
}

TEST(SubsetModel, RejectsAllInactive) {
  const ModelGraph full = testing::make_mini_mmmt_model();
  const std::uint32_t active[] = {99};
  EXPECT_THROW((void)subset_model(full, active), ConfigError);
}

TEST(DynamicModality, ColdStartLoadsEverythingPinned) {
  const SystemConfig sys = SystemConfig::standard(BandwidthSetting::LowMinus);
  DynamicModalityMapper mapper(sys);
  const ModelGraph full = make_model(ZooModel::MoCap);
  const DynamicRemapResult r = mapper.remap(full);
  EXPECT_EQ(r.weights_reused, 0u);
  EXPECT_GT(r.weights_loaded, 0u);
  EXPECT_DOUBLE_EQ(r.reuse_ratio(), 0.0);
  EXPECT_GT(mapper.resident_layer_count(), 0u);
}

TEST(DynamicModality, RepeatMappingReusesResidentWeights) {
  const SystemConfig sys = SystemConfig::standard(BandwidthSetting::LowMinus);
  DynamicModalityMapper mapper(sys);
  const ModelGraph full = make_model(ZooModel::MoCap);
  (void)mapper.remap(full);
  const DynamicRemapResult again = mapper.remap(full);
  // Same model, warm residency: the preference hook pins placements, so
  // almost all pinned weights are already where they need to be.
  EXPECT_GT(again.reuse_ratio(), 0.9);
}

TEST(DynamicModality, ModalityToggleKeepsSharedResidency) {
  const SystemConfig sys = SystemConfig::standard(BandwidthSetting::LowMinus);
  DynamicModalityMapper mapper(sys);
  const ModelGraph full = make_model(ZooModel::MoCap);

  (void)mapper.remap(full);  // round 1: all three modalities
  const std::uint32_t two[] = {1, 2};
  const DynamicRemapResult down = mapper.remap(subset_model(full, two));
  EXPECT_GT(down.reuse_ratio(), 0.5);  // speech+text+fusion stay resident

  const DynamicRemapResult up = mapper.remap(full);  // modality 3 returns
  EXPECT_GT(up.reuse_ratio(), 0.3);
  EXPECT_GT(up.weights_loaded, 0u);  // the mocap branch must reload
}

TEST(DynamicModality, ResetResidencyForgetsWeights) {
  const SystemConfig sys = SystemConfig::standard(BandwidthSetting::LowMinus);
  DynamicModalityMapper mapper(sys);
  const ModelGraph full = make_model(ZooModel::MoCap);
  (void)mapper.remap(full);
  mapper.reset_residency();
  EXPECT_EQ(mapper.resident_layer_count(), 0u);
  const DynamicRemapResult r = mapper.remap(full);
  EXPECT_EQ(r.weights_reused, 0u);
}

TEST(DynamicModality, MappingsStayValid) {
  const SystemConfig sys = SystemConfig::standard(BandwidthSetting::Mid);
  DynamicModalityMapper mapper(sys);
  const ModelGraph full = make_model(ZooModel::CnnLstm);
  const std::uint32_t video_only[] = {1};
  const ModelGraph sub = subset_model(full, video_only);
  const DynamicRemapResult r = mapper.remap(sub);
  for (const LayerId id : sub.all_layers()) {
    const Layer& l = sub.layer(id);
    if (l.kind == LayerKind::Input) continue;
    EXPECT_TRUE(sys.accelerator(r.h2h.mapping.acc_of(id)).supports(l.kind));
  }
}

}  // namespace
}  // namespace h2h
