#include "system/mapping_state.h"

#include <algorithm>

#include "accel/capability.h"
#include "util/error.h"
#include "util/str.h"

namespace h2h {

Mapping::Mapping(const ModelGraph& model)
    : assignment_(model.layer_count()), seq_(model.layer_count(), 0) {
  for (const LayerId id : model.all_layers()) {
    if (model.layer(id).kind == LayerKind::Input) {
      assignment_[id.value] = AccId::host();
      seq_[id.value] = next_seq_++;
      host_members_.push_back(id);
    }
  }
}

void Mapping::assign(LayerId id, AccId acc) {
  H2H_EXPECTS(!journaling_);
  H2H_EXPECTS(id.value < assignment_.size());
  H2H_EXPECTS(!assignment_[id.value].valid());
  H2H_EXPECTS(acc.valid() && !acc.is_host());
  assignment_[id.value] = acc;
  seq_[id.value] = next_seq_++;
  if (acc.value >= members_.size()) members_.resize(acc.value + 1);
  members_[acc.value].push_back(id);  // next_seq_ grows, so stays seq-sorted
}

void Mapping::relocate_member(LayerId id, AccId dst) {
  const AccId src = assignment_[id.value];
  H2H_ASSERT(src.valid() && !src.is_host() && src.value < members_.size());
  auto& sq = members_[src.value];
  const auto seq_less = [this](LayerId lhs, LayerId rhs) {
    return seq_[lhs.value] < seq_[rhs.value];
  };
  const auto sit = std::lower_bound(sq.begin(), sq.end(), id, seq_less);
  H2H_ASSERT(sit != sq.end() && *sit == id);
  sq.erase(sit);
  if (dst.value >= members_.size()) members_.resize(dst.value + 1);
  auto& dq = members_[dst.value];
  dq.insert(std::lower_bound(dq.begin(), dq.end(), id, seq_less), id);
}

void Mapping::reassign(LayerId id, AccId acc) {
  H2H_EXPECTS(is_assigned(id));
  H2H_EXPECTS(!assignment_[id.value].is_host());
  H2H_EXPECTS(acc.valid() && !acc.is_host());
  if (journaling_) journal_.emplace_back(id.value, assignment_[id.value]);
  relocate_member(id, acc);
  assignment_[id.value] = acc;
}

void Mapping::begin_journal() {
  H2H_EXPECTS(!journaling_);
  journal_.clear();
  journaling_ = true;
}

void Mapping::rollback_journal() {
  H2H_EXPECTS(journaling_);
  for (auto it = journal_.rbegin(); it != journal_.rend(); ++it) {
    relocate_member(LayerId{it->first}, it->second);
    assignment_[it->first] = it->second;
  }
  journal_.clear();
  journaling_ = false;
}

void Mapping::commit_journal() {
  H2H_EXPECTS(journaling_);
  journal_.clear();
  journaling_ = false;
}

bool Mapping::complete() const noexcept {
  return std::all_of(assignment_.begin(), assignment_.end(),
                     [](AccId a) { return a.valid(); });
}

std::vector<std::vector<LayerId>> Mapping::acc_queues(
    const SystemConfig& sys) const {
  // The member lists are the queues already; copy them out. The lists may
  // have grown past the system (a rolled-back probe to a high accelerator
  // id leaves an empty tail), but no layer may sit outside it.
  std::vector<std::vector<LayerId>> queues(sys.accelerator_count());
  for (std::size_t a = 0; a < members_.size(); ++a) {
    if (a >= queues.size()) {
      H2H_ASSERT(members_[a].empty());
      continue;
    }
    queues[a] = members_[a];
  }
  return queues;
}

std::vector<LayerId> Mapping::layers_on(AccId acc) const {
  const auto m = members(acc);
  return {m.begin(), m.end()};
}

void Mapping::layers_on(AccId acc, std::vector<LayerId>& out) const {
  const auto m = members(acc);
  out.assign(m.begin(), m.end());
}

std::vector<AccId> Mapping::used_accelerators() const {
  std::vector<AccId> out;
  for (std::uint32_t a = 0; a < members_.size(); ++a)
    if (!members_[a].empty()) out.push_back(AccId{a});
  return out;  // ascending by construction
}

void Mapping::validate(const ModelGraph& model, const SystemConfig& sys) const {
  H2H_EXPECTS(model.layer_count() == assignment_.size());
  for (const LayerId id : model.all_layers()) {
    const Layer& l = model.layer(id);
    if (!is_assigned(id))
      throw ConfigError(strformat("layer '%s' is unmapped", l.name.c_str()));
    const AccId a = acc_of(id);
    if (l.kind == LayerKind::Input) {
      if (!a.is_host())
        throw ConfigError(
            strformat("input '%s' must stay on the host", l.name.c_str()));
      continue;
    }
    if (a.is_host())
      throw ConfigError(strformat("layer '%s' mapped to host", l.name.c_str()));
    if (!sys.contains(a))
      throw ConfigError(strformat("layer '%s' mapped to unknown accelerator",
                                  l.name.c_str()));
    if (!sys.available(a))
      throw ConfigError(strformat(
          "layer '%s' mapped to '%s' which is marked unavailable",
          l.name.c_str(), sys.spec(a).name.c_str()));
    if (!sys.accelerator(a).supports(l.kind))
      throw ConfigError(strformat(
          "layer '%s' (%s) mapped to '%s' which does not support it",
          l.name.c_str(), std::string(to_string(l.kind)).c_str(),
          sys.spec(a).name.c_str()));
    if (!can_serve(sys.capabilities(a), l.required_caps))
      throw CapabilityError(strformat(
          "layer '%s' requires capabilities [%s] but '%s' provides [%s]",
          l.name.c_str(), format_caps(l.required_caps).c_str(),
          sys.spec(a).name.c_str(),
          format_caps(sys.capabilities(a)).c_str()));
  }
}

LocalityPlan::LocalityPlan(const ModelGraph& model)
    : pinned_(model.layer_count(), false) {
  fused_offset_.reserve(model.layer_count() + 1);
  fused_offset_.push_back(0);
  for (const LayerId id : model.all_layers()) {
    const auto in_degree =
        static_cast<std::uint32_t>(model.graph().in_degree(id));
    fused_offset_.push_back(fused_offset_.back() + in_degree);
    fused_consumer_.insert(fused_consumer_.end(), in_degree, id.value);
  }
  fused_.assign(fused_offset_.back(), false);
}

void LocalityPlan::set_pinned(LayerId id, bool value) {
  H2H_EXPECTS(id.value < pinned_.size());
  if (pinned_[id.value] == value) return;
  if (journaling_) journal_pins_.push_back(id.value);
  pinned_[id.value] = value;
}

void LocalityPlan::set_fused_in(LayerId id, std::size_t pred_index,
                                bool value) {
  const std::size_t e = edge_index(id, pred_index);
  if (fused_[e] == value) return;
  if (journaling_) journal_fused_.push_back(static_cast<std::uint32_t>(e));
  fused_[e] = value;
}

bool LocalityPlan::edge_fused(const ModelGraph& model, LayerId producer,
                              LayerId consumer) const {
  const auto preds = model.graph().preds(consumer);
  for (std::size_t i = 0; i < preds.size(); ++i)
    if (preds[i] == producer) return fused_in(consumer, i);
  H2H_EXPECTS(false);  // not an edge
  return false;
}

void LocalityPlan::clear_fusion() {
  if (journaling_) {
    for (std::size_t e = 0; e < fused_.size(); ++e) {
      if (fused_[e]) {
        journal_fused_.push_back(static_cast<std::uint32_t>(e));
        fused_[e] = false;
      }
    }
    return;
  }
  std::fill(fused_.begin(), fused_.end(), false);
}

void LocalityPlan::clear_pins() {
  if (journaling_) {
    for (std::size_t i = 0; i < pinned_.size(); ++i) {
      if (pinned_[i]) {
        journal_pins_.push_back(static_cast<std::uint32_t>(i));
        pinned_[i] = false;
      }
    }
    return;
  }
  std::fill(pinned_.begin(), pinned_.end(), false);
}

Bytes LocalityPlan::used_dram(AccId acc) const {
  H2H_EXPECTS(acc.valid() && !acc.is_host());
  if (acc.value >= used_dram_.size()) return 0;
  return used_dram_[acc.value];
}

void LocalityPlan::set_used_dram(AccId acc, Bytes bytes) {
  H2H_EXPECTS(acc.valid() && !acc.is_host());
  if (acc.value >= used_dram_.size()) used_dram_.resize(acc.value + 1, 0);
  if (used_dram_[acc.value] == bytes) return;
  if (journaling_) journal_dram_.emplace_back(acc.value, used_dram_[acc.value]);
  used_dram_[acc.value] = bytes;
}

void LocalityPlan::ensure_acc_count(std::size_t count) {
  if (used_dram_.size() < count) used_dram_.resize(count, 0);
}

void LocalityPlan::begin_journal() {
  H2H_EXPECTS(!journaling_);
  journal_pins_.clear();
  journal_fused_.clear();
  journal_dram_.clear();
  journaling_ = true;
}

void LocalityPlan::journal_touched_layers(const ModelGraph& model,
                                          std::vector<LayerId>& out) const {
  H2H_EXPECTS(journaling_);
  for (const std::uint32_t i : journal_pins_) out.push_back(LayerId{i});
  for (const std::uint32_t e : journal_fused_) {
    // Edge index -> consumer via the precomputed CSR inverse.
    const std::uint32_t consumer = fused_consumer_[e];
    out.push_back(LayerId{consumer});
    const std::size_t slot = e - fused_offset_[consumer];
    out.push_back(model.graph().preds(LayerId{consumer})[slot]);
  }
}

void LocalityPlan::rollback_journal() {
  H2H_EXPECTS(journaling_);
  for (const std::uint32_t i : journal_pins_) pinned_[i] = !pinned_[i];
  for (const std::uint32_t e : journal_fused_) fused_[e] = !fused_[e];
  for (auto it = journal_dram_.rbegin(); it != journal_dram_.rend(); ++it)
    used_dram_[it->first] = it->second;
  journal_pins_.clear();
  journal_fused_.clear();
  journal_dram_.clear();
  journaling_ = false;
}

void LocalityPlan::commit_journal() {
  H2H_EXPECTS(journaling_);
  journal_pins_.clear();
  journal_fused_.clear();
  journal_dram_.clear();
  journaling_ = false;
}

std::size_t LocalityPlan::pinned_count() const noexcept {
  return static_cast<std::size_t>(
      std::count(pinned_.begin(), pinned_.end(), true));
}

std::size_t LocalityPlan::fused_edge_count() const noexcept {
  return static_cast<std::size_t>(
      std::count(fused_.begin(), fused_.end(), true));
}

}  // namespace h2h
