// The 12 state-of-the-art FPGA DNN accelerators of the paper's Table 3.
//
// Every entry's throughput/memory/energy numbers are calibrated estimates
// reconstructed from the cited publication (peak ops, board, DRAM
// generation); see the per-entry comments in catalog.cpp and DESIGN.md §2
// for the substitution rationale. What the mapping algorithm needs — the
// relative ordering of designs per layer kind and the 512 MiB..8 GiB local
// DRAM range — is preserved.
#pragma once

#include <cstddef>
#include <vector>

#include "accel/accelerator_model.h"

namespace h2h {

/// Table 3, in paper order: J.Z, C.Z, W.J, J.Q, A.C, Y.G, T.M, A.P, X.W,
/// S.H, X.Z, B.L.
[[nodiscard]] std::vector<AcceleratorSpec> standard_catalog();

/// Analytical models for the full standard catalog.
[[nodiscard]] std::vector<AcceleratorPtr> build_standard_accelerators();

/// `count` specs, cycling Table 3 in order. Entries past the first dozen get
/// a "#k" name suffix (J.Z#2, …) so every accelerator name stays unique —
/// the 16/32-accelerator scaling systems of the interconnect experiments.
[[nodiscard]] std::vector<AcceleratorSpec> scaled_catalog(std::size_t count);

/// Analytical models for scaled_catalog(count).
[[nodiscard]] std::vector<AcceleratorPtr> build_scaled_accelerators(
    std::size_t count);

/// A row-stationary (Eyeriss-like) spec. Not part of Table 3; used by tests
/// and the custom_accelerator example to demonstrate the plug-in interface.
[[nodiscard]] AcceleratorSpec eyeriss_like_spec();

}  // namespace h2h
