// §4.5 scenario: a health/emotion monitoring system that toggles sensors at
// runtime. The MoCap model's three modalities (speech MFCC, text, motion
// capture) switch on and off several times; the dynamic H2H extension reuses
// weights already buffered in accelerator DRAM instead of reloading them.
#include <iostream>

#include "h2h.h"

int main() {
  using namespace h2h;

  const SystemConfig sys = SystemConfig::standard(BandwidthSetting::LowMinus);
  const ModelGraph full = make_model(ZooModel::MoCap);

  struct Phase {
    const char* description;
    std::vector<std::uint32_t> active;
  };
  const Phase scenario[] = {
      {"all sensors on (cold start)", {1, 2, 3}},
      {"user sits down: motion sensor off", {1, 2}},
      {"quiet room: speech only", {1}},
      {"conversation resumes: speech + text", {1, 2}},
      {"user moves again: all sensors on", {1, 2, 3}},
  };

  DynamicModalityMapper mapper(sys);
  std::cout << "dynamic modality change on MoCap @ BW_acc Low- (0.125 GB/s)\n\n";
  double total_reloaded = 0, total_cold = 0;
  for (const Phase& phase : scenario) {
    const ModelGraph variant = phase.active.size() == 3
                                   ? full
                                   : subset_model(full, phase.active);
    const DynamicRemapResult r = mapper.remap(variant);
    const Bytes pinned_total = r.weights_reused + r.weights_loaded;
    total_reloaded += static_cast<double>(r.weights_loaded);
    total_cold += static_cast<double>(pinned_total);
    std::cout << "- " << phase.description << ":\n"
              << "    layers: " << variant.layer_count()
              << ", latency " << human_seconds(r.h2h.final_result().latency)
              << ", search " << human_seconds(r.h2h.search_seconds)
              << (r.h2h.warm ? " (warm: cached cost tables)" : " (cold)")
              << '\n'
              << "    weights: " << human_bytes(r.weights_reused)
              << " reused / " << human_bytes(r.weights_loaded)
              << " loaded (reuse " << format_percent(r.reuse_ratio(), 1)
              << ")\n";
  }
  std::cout << "\nacross the scenario, dynamic H2H loaded "
            << format_percent(total_reloaded / total_cold, 1)
            << " of the weight bytes a cold remap would load each time, and "
            << "the planner served "
            << mapper.planner().cache_hits() << "/"
            << (mapper.planner().cache_hits() +
                mapper.planner().cache_misses())
            << " rounds from cached sessions.\n";
  return 0;
}
