// 0/1 knapsack solvers for the weight-locality optimization (paper §4.2):
// choose which layers' weights to keep in an accelerator's local DRAM to
// maximize saved weight-transfer time under the M_acc capacity.
//
// Three interchangeable algorithms:
//  - ExactDp: dynamic program over quantized capacity (default). Capacity is
//    quantized to at most `max_dp_units` units with item weights rounded UP,
//    so a returned selection never overfills the true capacity.
//  - GreedyDensity: sort by value/weight, take while it fits. Fast, and the
//    ablation bench shows how close it gets.
//  - BruteForce: exact reference for small instances (tests only).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/units.h"

namespace h2h {

struct KnapsackItem {
  std::uint32_t id = 0;    // caller-defined (layer id value)
  Bytes weight = 0;        // bytes
  double value = 0;        // seconds of transfer time saved

  [[nodiscard]] bool operator==(const KnapsackItem&) const = default;
};

enum class KnapsackAlgo { ExactDp, GreedyDensity, BruteForce };

struct KnapsackSolution {
  std::vector<std::uint32_t> selected;  // item ids, ascending
  Bytes used = 0;
  double value = 0;
};

/// Solve the 0/1 knapsack. Items with weight 0 are always selected (free);
/// items with weight > capacity are never selected.
[[nodiscard]] KnapsackSolution solve_knapsack(std::span<const KnapsackItem> items,
                                              Bytes capacity, KnapsackAlgo algo,
                                              std::uint32_t max_dp_units = 4096);

/// Memoizing wrapper around solve_knapsack for the step-4 remap loop
/// (DESIGN.md §6): the source-accelerator instance of one node's candidate
/// probes is identical across every candidate, so its solve is paid once per
/// node instead of once per probe. solve_knapsack is a pure function of
/// (items, capacity, algo, max_dp_units); a hit requires an exact match on
/// all four (the hash only selects the bucket), so cached results are
/// bit-identical to a fresh solve and entries never go stale.
///
/// The everything-fits fast path (total weight <= capacity, no negative
/// values) bypasses the table entirely — it is already O(items) — and counts
/// toward neither hits nor misses.
class KnapsackCache {
 public:
  /// Solve, consulting the memo table. The returned reference is valid until
  /// the next solve()/clear() call.
  [[nodiscard]] const KnapsackSolution& solve(
      std::span<const KnapsackItem> items, Bytes capacity, KnapsackAlgo algo,
      std::uint32_t max_dp_units = 4096);

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] std::size_t size() const noexcept { return entries_; }

  /// Drop all entries (counters are kept).
  void clear();

 private:
  struct Entry {
    std::vector<KnapsackItem> items;
    Bytes capacity = 0;
    KnapsackAlgo algo = KnapsackAlgo::ExactDp;
    std::uint32_t max_dp_units = 0;
    KnapsackSolution solution;
  };

  /// Runaway guard: a remap run inserts O(nodes x accelerators) distinct
  /// instances at most; past this the table is dropped wholesale (the next
  /// probes repopulate the hot keys immediately).
  static constexpr std::size_t kMaxEntries = 1 << 16;

  std::vector<std::vector<Entry>> buckets_;  // hash -> collision chain
  std::size_t entries_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  KnapsackSolution scratch_;  // fast-path result storage
};

}  // namespace h2h
