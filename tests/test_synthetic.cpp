#include <gtest/gtest.h>

#include "core/planner.h"
#include "model/synthetic.h"
#include "test_helpers.h"
#include "util/error.h"

namespace h2h {
namespace {

TEST(Synthetic, DefaultSpecBuildsValidMmmt) {
  const ModelGraph m = make_synthetic_mmmt(SyntheticMmmtSpec{});
  EXPECT_NO_THROW(m.validate());
  const ModelStats s = m.stats();
  EXPECT_EQ(s.modality_count, 3u);
  EXPECT_GT(s.total_params, 0u);
  // One recurrent branch requested by default.
  bool has_lstm = false;
  for (const LayerId id : m.all_layers())
    has_lstm = has_lstm || m.layer(id).kind == LayerKind::Lstm;
  EXPECT_TRUE(has_lstm);
}

TEST(Synthetic, DepthControlsLayerCount) {
  SyntheticMmmtSpec shallow;
  shallow.backbone_depth = 4;
  SyntheticMmmtSpec deep;
  deep.backbone_depth = 16;
  const std::size_t a =
      make_synthetic_mmmt(shallow).stats().compute_layer_count;
  const std::size_t b = make_synthetic_mmmt(deep).stats().compute_layer_count;
  EXPECT_GT(b, a + 3 * (16 - 4) / 2);  // at least the extra conv layers
}

TEST(Synthetic, WidthScalesParameters) {
  SyntheticMmmtSpec narrow;
  narrow.width = 0.5;
  narrow.lstm_modalities = 0;
  SyntheticMmmtSpec wide = narrow;
  wide.width = 1.0;
  const auto p_narrow = make_synthetic_mmmt(narrow).stats().total_params;
  const auto p_wide = make_synthetic_mmmt(wide).stats().total_params;
  EXPECT_GT(static_cast<double>(p_wide), 2.0 * static_cast<double>(p_narrow));
}

TEST(Synthetic, CrossTalkAddsSharedEdges) {
  SyntheticMmmtSpec with;
  SyntheticMmmtSpec without = with;
  without.cross_talk = false;
  const ModelGraph a = make_synthetic_mmmt(with);
  const ModelGraph b = make_synthetic_mmmt(without);
  EXPECT_GT(a.graph().edge_count(), b.graph().edge_count());
}

TEST(Synthetic, DeterministicPerSeed) {
  SyntheticMmmtSpec spec;
  spec.seed = 7;
  const ModelGraph a = make_synthetic_mmmt(spec);
  const ModelGraph b = make_synthetic_mmmt(spec);
  ASSERT_EQ(a.layer_count(), b.layer_count());
  for (const LayerId id : a.all_layers())
    EXPECT_EQ(a.layer(id).param_count(), b.layer(id).param_count());
  spec.seed = 8;
  const ModelGraph c = make_synthetic_mmmt(spec);
  bool differs = c.layer_count() != a.layer_count();
  for (const LayerId id : a.all_layers()) {
    if (differs) break;
    if (!c.graph().contains(id)) break;
    differs = a.layer(id).param_count() != c.layer(id).param_count();
  }
  EXPECT_TRUE(differs);
}

TEST(Synthetic, RejectsBadSpecs) {
  SyntheticMmmtSpec spec;
  spec.modalities = 0;
  EXPECT_THROW((void)make_synthetic_mmmt(spec), ConfigError);
  spec = SyntheticMmmtSpec{};
  spec.lstm_modalities = 99;
  EXPECT_THROW((void)make_synthetic_mmmt(spec), ConfigError);
  spec = SyntheticMmmtSpec{};
  spec.width = -1;
  EXPECT_THROW((void)make_synthetic_mmmt(spec), ConfigError);
}

// Scaling property: the H2H pipeline stays sub-second across a wide range
// of synthetic sizes (Fig. 5(b) extended beyond the Table-2 models).
class SyntheticScale : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SyntheticScale, PipelineScalesAndStaysMonotone) {
  SyntheticMmmtSpec spec;
  spec.modalities = GetParam();
  spec.lstm_modalities = GetParam() / 3;
  spec.backbone_depth = 10;
  const ModelGraph m = make_synthetic_mmmt(spec);
  const SystemConfig sys = SystemConfig::standard(BandwidthSetting::LowMinus);
  const PlanResponse r = plan_once(m, sys);
  EXPECT_LE(r.final_result().latency, r.baseline_result().latency);
  EXPECT_LT(r.search_seconds, testing::search_time_budget());
}

INSTANTIATE_TEST_SUITE_P(Modalities, SyntheticScale,
                         ::testing::Values(1u, 2u, 4u, 6u, 8u));

}  // namespace
}  // namespace h2h
