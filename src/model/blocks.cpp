#include "model/blocks.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"
#include "util/str.h"

namespace h2h {

std::uint32_t scale_channels(std::uint32_t channels, double width) {
  H2H_EXPECTS(width > 0.0);
  const double scaled = static_cast<double>(channels) * width;
  const auto rounded =
      static_cast<std::uint32_t>(std::lround(scaled / 8.0)) * 8u;
  return std::max(rounded, 8u);
}

LayerId resnet_stem(ModelBuilder& b, LayerId from, std::uint32_t out_channels,
                    const std::string& prefix) {
  const LayerId c = b.conv(prefix + ".conv1", from, out_channels, 7, 2);
  return b.pool(prefix + ".maxpool", c, 3, 2);
}

LayerId resnet_basic_block(ModelBuilder& b, LayerId from,
                           std::uint32_t out_channels, std::uint32_t stride,
                           const std::string& prefix) {
  const LayerId c1 = b.conv(prefix + ".conv1", from, out_channels, 3, stride);
  const LayerId c2 = b.conv(prefix + ".conv2", c1, out_channels, 3, 1);
  LayerId shortcut = from;
  if (stride != 1 || b.geometry(from).channels != out_channels) {
    shortcut = b.conv(prefix + ".proj", from, out_channels, 1, stride);
  }
  return b.eltwise(prefix + ".add", c2, shortcut);
}

LayerId resnet_bottleneck(ModelBuilder& b, LayerId from, std::uint32_t mid_channels,
                          std::uint32_t out_channels, std::uint32_t stride,
                          const std::string& prefix) {
  const LayerId c1 = b.conv(prefix + ".conv1", from, mid_channels, 1, 1);
  const LayerId c2 = b.conv(prefix + ".conv2", c1, mid_channels, 3, stride);
  const LayerId c3 = b.conv(prefix + ".conv3", c2, out_channels, 1, 1);
  LayerId shortcut = from;
  if (stride != 1 || b.geometry(from).channels != out_channels) {
    shortcut = b.conv(prefix + ".proj", from, out_channels, 1, stride);
  }
  return b.eltwise(prefix + ".add", c3, shortcut);
}

LayerId resnet_stage_basic(ModelBuilder& b, LayerId from,
                           std::uint32_t out_channels, std::uint32_t blocks,
                           std::uint32_t stride, const std::string& prefix) {
  LayerId x = from;
  for (std::uint32_t i = 0; i < blocks; ++i) {
    x = resnet_basic_block(b, x, out_channels, i == 0 ? stride : 1,
                           strformat("%s.b%u", prefix.c_str(), i + 1));
  }
  return x;
}

LayerId resnet_stage_bottleneck(ModelBuilder& b, LayerId from,
                                std::uint32_t mid_channels,
                                std::uint32_t out_channels, std::uint32_t blocks,
                                std::uint32_t stride, const std::string& prefix) {
  LayerId x = from;
  for (std::uint32_t i = 0; i < blocks; ++i) {
    x = resnet_bottleneck(b, x, mid_channels, out_channels,
                          i == 0 ? stride : 1,
                          strformat("%s.b%u", prefix.c_str(), i + 1));
  }
  return x;
}

LayerId resnet18_backbone(ModelBuilder& b, LayerId from, const std::string& prefix,
                          double width, std::uint32_t stages) {
  H2H_EXPECTS(stages >= 1 && stages <= 4);
  const std::uint32_t c64 = scale_channels(64, width);
  LayerId x = resnet_stem(b, from, c64, prefix);
  static constexpr std::uint32_t kBase[] = {64, 128, 256, 512};
  for (std::uint32_t s = 0; s < stages; ++s) {
    x = resnet_stage_basic(b, x, scale_channels(kBase[s], width), 2,
                           s == 0 ? 1 : 2,
                           strformat("%s.res%u", prefix.c_str(), s + 2));
  }
  return x;
}

LayerId resnet50_backbone(ModelBuilder& b, LayerId from, const std::string& prefix,
                          double width, std::uint32_t stages) {
  H2H_EXPECTS(stages >= 1 && stages <= 4);
  const std::uint32_t c64 = scale_channels(64, width);
  LayerId x = resnet_stem(b, from, c64, prefix);
  static constexpr std::uint32_t kMid[] = {64, 128, 256, 512};
  static constexpr std::uint32_t kOut[] = {256, 512, 1024, 2048};
  static constexpr std::uint32_t kBlocks[] = {3, 4, 6, 3};
  for (std::uint32_t s = 0; s < stages; ++s) {
    x = resnet_stage_bottleneck(
        b, x, scale_channels(kMid[s], width), scale_channels(kOut[s], width),
        kBlocks[s], s == 0 ? 1 : 2,
        strformat("%s.res%u", prefix.c_str(), s + 2));
  }
  return x;
}

LayerId vgg16_backbone(ModelBuilder& b, LayerId from, const std::string& prefix) {
  struct Stage {
    std::uint32_t channels;
    std::uint32_t convs;
  };
  static constexpr Stage kStages[] = {
      {64, 2}, {128, 2}, {256, 3}, {512, 3}, {512, 3}};
  LayerId x = from;
  std::uint32_t stage_idx = 1;
  for (const Stage& st : kStages) {
    for (std::uint32_t i = 0; i < st.convs; ++i) {
      x = b.conv(strformat("%s.s%u.conv%u", prefix.c_str(), stage_idx, i + 1), x,
                 st.channels, 3, 1);
    }
    x = b.pool(strformat("%s.s%u.pool", prefix.c_str(), stage_idx), x, 2, 2);
    ++stage_idx;
  }
  return x;
}

LayerId vdcnn_backbone(ModelBuilder& b, LayerId from, const std::string& prefix,
                       std::array<std::uint32_t, 4> pairs) {
  // Stem: character embedding modeled as a width-1 temporal conv to 64 maps.
  LayerId x = b.conv1d(prefix + ".embed", from, 64, 3, 1);
  static constexpr std::uint32_t kWidths[] = {64, 128, 256, 512};
  for (std::uint32_t w = 0; w < 4; ++w) {
    if (w > 0) {
      x = b.pool(strformat("%s.pool%u", prefix.c_str(), w), x, 3, 2);
    }
    for (std::uint32_t i = 0; i < pairs[w]; ++i) {
      x = b.conv1d(strformat("%s.w%u.conv%ua", prefix.c_str(), kWidths[w], i + 1),
                   x, kWidths[w], 3, 1);
      x = b.conv1d(strformat("%s.w%u.conv%ub", prefix.c_str(), kWidths[w], i + 1),
                   x, kWidths[w], 3, 1);
    }
  }
  return x;
}

}  // namespace h2h
