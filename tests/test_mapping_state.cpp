#include <gtest/gtest.h>

#include <algorithm>

#include "system/mapping_state.h"
#include "test_helpers.h"
#include "util/error.h"

namespace h2h {
namespace {

using testing::make_chain_model;
using testing::make_diamond_model;
using testing::make_mini_hetero_system;

TEST(Mapping, InputsStartOnHost) {
  const ModelGraph m = make_chain_model();
  const Mapping mapping(m);
  EXPECT_TRUE(mapping.is_assigned(LayerId{0}));  // the input
  EXPECT_TRUE(mapping.acc_of(LayerId{0}).is_host());
  EXPECT_FALSE(mapping.is_assigned(LayerId{1}));
  EXPECT_FALSE(mapping.complete());
}

TEST(Mapping, AssignSequencesInCallOrder) {
  const ModelGraph m = make_chain_model();
  Mapping mapping(m);
  mapping.assign(LayerId{1}, AccId{0});
  mapping.assign(LayerId{2}, AccId{1});
  mapping.assign(LayerId{3}, AccId{0});
  EXPECT_TRUE(mapping.complete());
  EXPECT_LT(mapping.seq_of(LayerId{1}), mapping.seq_of(LayerId{2}));
  EXPECT_LT(mapping.seq_of(LayerId{2}), mapping.seq_of(LayerId{3}));
  // Double-assignment is a bug.
  EXPECT_THROW(mapping.assign(LayerId{1}, AccId{1}), ContractViolation);
}

TEST(Mapping, ReassignKeepsSequence) {
  const ModelGraph m = make_chain_model();
  Mapping mapping(m);
  mapping.assign(LayerId{1}, AccId{0});
  const std::uint32_t seq = mapping.seq_of(LayerId{1});
  mapping.reassign(LayerId{1}, AccId{2});
  EXPECT_EQ(mapping.acc_of(LayerId{1}), AccId{2});
  EXPECT_EQ(mapping.seq_of(LayerId{1}), seq);
  // Host is not a remap destination.
  EXPECT_THROW(mapping.reassign(LayerId{1}, AccId::host()), ContractViolation);
}

TEST(Mapping, QueuesAreSeqSorted) {
  const ModelGraph m = make_chain_model();
  const SystemConfig sys = make_mini_hetero_system();
  Mapping mapping(m);
  mapping.assign(LayerId{1}, AccId{1});
  mapping.assign(LayerId{2}, AccId{1});
  mapping.assign(LayerId{3}, AccId{2});
  const auto queues = mapping.acc_queues(sys);
  ASSERT_EQ(queues.size(), 3u);
  EXPECT_TRUE(queues[0].empty());
  EXPECT_EQ(queues[1], (std::vector<LayerId>{LayerId{1}, LayerId{2}}));
  EXPECT_EQ(queues[2], (std::vector<LayerId>{LayerId{3}}));
  EXPECT_EQ(mapping.layers_on(AccId{1}),
            (std::vector<LayerId>{LayerId{1}, LayerId{2}}));
}

TEST(Mapping, ValidateCatchesUnsupportedPlacement) {
  const ModelGraph m = make_chain_model();
  const SystemConfig sys = make_mini_hetero_system();
  Mapping mapping(m);
  // Layer 3 is an FC; accelerator 0 is conv-only.
  mapping.assign(LayerId{1}, AccId{0});
  mapping.assign(LayerId{2}, AccId{0});
  mapping.assign(LayerId{3}, AccId{0});
  EXPECT_THROW(mapping.validate(m, sys), ConfigError);
  mapping.reassign(LayerId{3}, AccId{2});
  EXPECT_NO_THROW(mapping.validate(m, sys));
}

TEST(Mapping, ValidateCatchesUnmappedLayers) {
  const ModelGraph m = make_chain_model();
  const SystemConfig sys = make_mini_hetero_system();
  const Mapping mapping(m);
  EXPECT_THROW(mapping.validate(m, sys), ConfigError);
}

TEST(LocalityPlan, StartsWithZeroLocality) {
  const ModelGraph m = make_chain_model();
  const LocalityPlan plan(m);
  for (const LayerId id : m.all_layers()) EXPECT_FALSE(plan.pinned(id));
  EXPECT_EQ(plan.pinned_count(), 0u);
  EXPECT_EQ(plan.fused_edge_count(), 0u);
}

TEST(LocalityPlan, PinAndFuseFlags) {
  const ModelGraph m = make_chain_model();
  LocalityPlan plan(m);
  plan.set_pinned(LayerId{1}, true);
  EXPECT_TRUE(plan.pinned(LayerId{1}));
  EXPECT_EQ(plan.pinned_count(), 1u);

  // Edge input(0) -> convA(1) is pred index 0 of layer 1.
  plan.set_fused_in(LayerId{1}, 0, true);
  EXPECT_TRUE(plan.fused_in(LayerId{1}, 0));
  EXPECT_TRUE(plan.edge_fused(m, LayerId{0}, LayerId{1}));
  EXPECT_EQ(plan.fused_edge_count(), 1u);

  plan.clear_fusion();
  EXPECT_EQ(plan.fused_edge_count(), 1u - 1u);
  EXPECT_TRUE(plan.pinned(LayerId{1}));  // pins survive fusion reset
  plan.clear_pins();
  EXPECT_EQ(plan.pinned_count(), 0u);
}

TEST(LocalityPlan, EdgeFusedRejectsNonEdges) {
  const ModelGraph m = make_chain_model();
  const LocalityPlan plan(m);
  EXPECT_THROW((void)plan.edge_fused(m, LayerId{0}, LayerId{3}),
               ContractViolation);
}

TEST(LocalityPlan, DramBookkeeping) {
  const ModelGraph m = make_chain_model();
  LocalityPlan plan(m);
  plan.ensure_acc_count(3);
  EXPECT_EQ(plan.used_dram(AccId{2}), 0u);
  plan.set_used_dram(AccId{2}, mib(7));
  EXPECT_EQ(plan.used_dram(AccId{2}), mib(7));
}

std::vector<LayerId> member_vec(const Mapping& mapping, AccId acc) {
  const auto m = mapping.members(acc);
  return {m.begin(), m.end()};
}

TEST(Mapping, MemberListsTrackAssignmentsInSeqOrder) {
  const ModelGraph m = make_chain_model();
  Mapping mapping(m);
  EXPECT_EQ(member_vec(mapping, AccId::host()),
            std::vector<LayerId>{LayerId{0}});
  mapping.assign(LayerId{1}, AccId{0});
  mapping.assign(LayerId{2}, AccId{1});
  mapping.assign(LayerId{3}, AccId{0});
  EXPECT_EQ(member_vec(mapping, AccId{0}),
            (std::vector<LayerId>{LayerId{1}, LayerId{3}}));
  EXPECT_TRUE(mapping.members(AccId{7}).empty());  // never-used accelerator

  // Reassign keeps both lists seq-sorted.
  mapping.reassign(LayerId{3}, AccId{1});
  EXPECT_EQ(member_vec(mapping, AccId{1}),
            (std::vector<LayerId>{LayerId{2}, LayerId{3}}));
  mapping.reassign(LayerId{1}, AccId{1});
  EXPECT_EQ(member_vec(mapping, AccId{1}),
            (std::vector<LayerId>{LayerId{1}, LayerId{2}, LayerId{3}}));
  EXPECT_TRUE(mapping.members(AccId{0}).empty());
  EXPECT_EQ(mapping.used_accelerators(), std::vector<AccId>{AccId{1}});
}

TEST(Mapping, MemberListsRollBackWithTheJournal) {
  const ModelGraph m = make_chain_model();
  Mapping mapping(m);
  mapping.assign(LayerId{1}, AccId{0});
  mapping.assign(LayerId{2}, AccId{1});
  mapping.assign(LayerId{3}, AccId{0});

  mapping.begin_journal();
  mapping.reassign(LayerId{1}, AccId{2});
  mapping.reassign(LayerId{3}, AccId{1});
  mapping.reassign(LayerId{1}, AccId{1});  // same layer twice
  mapping.rollback_journal();

  EXPECT_EQ(member_vec(mapping, AccId{0}),
            (std::vector<LayerId>{LayerId{1}, LayerId{3}}));
  EXPECT_EQ(member_vec(mapping, AccId{1}), std::vector<LayerId>{LayerId{2}});
  EXPECT_TRUE(mapping.members(AccId{2}).empty());
}

TEST(Mapping, JournalRollbackRestoresAssignments) {
  const ModelGraph m = make_chain_model();
  const SystemConfig sys = testing::make_uniform_system(3);
  Mapping mapping(m);
  for (const LayerId id : m.all_layers())
    if (m.layer(id).kind != LayerKind::Input) mapping.assign(id, AccId{0});

  mapping.begin_journal();
  EXPECT_TRUE(mapping.journal_open());
  mapping.reassign(LayerId{1}, AccId{1});
  mapping.reassign(LayerId{2}, AccId{2});
  mapping.reassign(LayerId{1}, AccId{2});  // same layer twice
  mapping.rollback_journal();
  EXPECT_FALSE(mapping.journal_open());
  EXPECT_EQ(mapping.acc_of(LayerId{1}), AccId{0});
  EXPECT_EQ(mapping.acc_of(LayerId{2}), AccId{0});
  EXPECT_NO_THROW(mapping.validate(m, sys));

  mapping.begin_journal();
  mapping.reassign(LayerId{1}, AccId{1});
  mapping.commit_journal();
  EXPECT_EQ(mapping.acc_of(LayerId{1}), AccId{1});  // commit keeps changes
  EXPECT_EQ(mapping.seq_of(LayerId{1}), 1u);        // priority untouched
}

TEST(LocalityPlan, JournalRollbackRestoresFlagsAndDram) {
  const ModelGraph m = make_diamond_model();
  LocalityPlan plan(m);
  plan.ensure_acc_count(2);
  plan.set_pinned(LayerId{1}, true);
  plan.set_used_dram(AccId{0}, mib(1));

  plan.begin_journal();
  plan.set_pinned(LayerId{1}, false);
  plan.set_pinned(LayerId{2}, true);
  plan.set_pinned(LayerId{2}, false);  // transient: net no change
  plan.set_fused_in(LayerId{4}, 0, true);
  plan.set_fused_in(LayerId{4}, 1, true);
  plan.set_used_dram(AccId{0}, mib(5));
  plan.set_used_dram(AccId{1}, mib(2));
  plan.rollback_journal();

  EXPECT_TRUE(plan.pinned(LayerId{1}));
  EXPECT_FALSE(plan.pinned(LayerId{2}));
  EXPECT_EQ(plan.fused_edge_count(), 0u);
  EXPECT_EQ(plan.used_dram(AccId{0}), mib(1));
  EXPECT_EQ(plan.used_dram(AccId{1}), 0u);

  plan.begin_journal();
  plan.set_fused_in(LayerId{4}, 0, true);
  plan.commit_journal();
  EXPECT_TRUE(plan.fused_in(LayerId{4}, 0));  // commit keeps changes
}

TEST(LocalityPlan, JournalTouchedLayersCoversPinsAndFusionEndpoints) {
  // Diamond: input(0) -> a(1) -> {b(2), c(3)} -> add(4) -> fc(5).
  const ModelGraph m = make_diamond_model();
  LocalityPlan plan(m);
  plan.begin_journal();
  plan.set_pinned(LayerId{5}, true);
  plan.set_fused_in(LayerId{4}, 1, true);  // edge c(3) -> add(4), slot 1
  std::vector<LayerId> touched;
  plan.journal_touched_layers(m, touched);
  plan.rollback_journal();

  // Pin flip -> the layer; fusion flip -> consumer and producer.
  EXPECT_NE(std::find(touched.begin(), touched.end(), LayerId{5}),
            touched.end());
  EXPECT_NE(std::find(touched.begin(), touched.end(), LayerId{4}),
            touched.end());
  EXPECT_EQ(m.graph().preds(LayerId{4})[1], LayerId{3});
  EXPECT_NE(std::find(touched.begin(), touched.end(), LayerId{3}),
            touched.end());
}

}  // namespace
}  // namespace h2h
