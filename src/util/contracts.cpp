#include "util/contracts.h"

#include <string>

#include "util/error.h"

namespace h2h {

void contract_failure(std::string_view kind, std::string_view cond,
                      std::string_view file, int line) {
  std::string msg;
  msg.reserve(kind.size() + cond.size() + file.size() + 32);
  msg.append(kind).append(" failed: ").append(cond).append(" at ");
  msg.append(file).append(":").append(std::to_string(line));
  throw ContractViolation(msg);
}

}  // namespace h2h
