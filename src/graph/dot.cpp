#include "graph/dot.h"

#include <sstream>

namespace h2h {
namespace {

std::string escape_label(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string to_dot(const Digraph& g,
                   const std::function<std::string(NodeId)>& label,
                   const std::function<std::string(NodeId)>& attrs) {
  H2H_EXPECTS(static_cast<bool>(label));
  std::ostringstream out;
  out << "digraph g {\n  rankdir=TB;\n  node [shape=box, style=filled, "
         "fillcolor=white];\n";
  for (std::uint32_t i = 0; i < g.node_count(); ++i) {
    const NodeId n{i};
    out << "  n" << i << " [label=\"" << escape_label(label(n)) << '"';
    if (attrs) {
      const std::string extra = attrs(n);
      if (!extra.empty()) out << ", " << extra;
    }
    out << "];\n";
  }
  for (std::uint32_t i = 0; i < g.node_count(); ++i) {
    for (const NodeId s : g.succs(NodeId{i})) {
      out << "  n" << i << " -> n" << s.value << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace h2h
