// Incremental schedule maintenance.
//
// The paper stresses that after a locality or remapping change "we only
// update a node's direct successor neighbours without traversing the entire
// graph". This class keeps per-accelerator FIFO queues and per-layer timing,
// and re-times only the affected cone: a worklist ordered by execution
// sequence propagates through graph successors and queue followers, stopping
// wherever a finish time is unchanged.
//
// Equivalence with Simulator::simulate is asserted in tests; the ablation
// bench bench_ablation_incremental measures the speedup.
#pragma once

#include <span>
#include <vector>

#include "system/simulator.h"

namespace h2h {

class IncrementalSchedule {
 public:
  explicit IncrementalSchedule(const Simulator& sim) noexcept : sim_(&sim) {}

  /// Full (re)build for a complete mapping: O(V + E).
  void reset(const Mapping& m, const LocalityPlan& plan);

  /// The plan changed the transfer components of `dirty` layers (pins or
  /// fusion flags); accelerator placement is unchanged. Re-times the
  /// affected cone only.
  void refresh_components(const Mapping& m, const LocalityPlan& plan,
                          std::span<const LayerId> dirty);

  /// `node` was re-assigned (Mapping::reassign already applied) from
  /// `old_acc` to its new accelerator; `dirty` lists every layer whose
  /// transfer components may have changed (typically all layers on both
  /// accelerators).
  void apply_remap(const Mapping& m, const LocalityPlan& plan, LayerId node,
                   AccId old_acc, std::span<const LayerId> dirty);

  [[nodiscard]] double latency() const noexcept;
  [[nodiscard]] const LayerTiming& timing(LayerId id) const {
    H2H_EXPECTS(id.value < timings_.size());
    return timings_[id.value];
  }

  /// Aggregate into a full ScheduleResult (energy, ratios): O(V).
  [[nodiscard]] ScheduleResult result(const Mapping& m) const;

  /// Number of node re-timings performed since construction (for the
  /// ablation bench's work accounting).
  [[nodiscard]] std::uint64_t retime_count() const noexcept { return retimes_; }

 private:
  void retime_from(const Mapping& m, std::vector<LayerId> worklist);
  [[nodiscard]] LayerId queue_prev(LayerId id) const;
  [[nodiscard]] LayerId queue_next(LayerId id) const;

  const Simulator* sim_;
  std::vector<LayerTiming> timings_;
  std::vector<std::vector<LayerId>> queues_;  // per accelerator, seq-sorted
  std::vector<std::uint32_t> pos_;            // node -> index in its queue
  std::vector<AccId> acc_;                    // node -> accelerator (cache)
  std::uint64_t retimes_ = 0;
};

}  // namespace h2h
