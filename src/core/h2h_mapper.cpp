#include "core/h2h_mapper.h"

#include "util/log.h"
#include "util/str.h"

namespace h2h {

H2HMapper::H2HMapper(const ModelGraph& model, const SystemConfig& sys,
                     H2HOptions options)
    : sim_(model, sys), options_(std::move(options)) {
  model.validate();
}

H2HResult H2HMapper::run() const {
  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();

  // Step 1: computation-prioritized mapping (zero locality).
  Mapping mapping = computation_prioritized_mapping(sim_, options_.step1);
  LocalityPlan plan(sim_.model());
  plan.ensure_acc_count(sim_.sys().accelerator_count());

  H2HResult result{std::move(mapping), std::move(plan), {}, {}, 0.0};
  result.steps.push_back(
      {"1: computation-prioritized", sim_.simulate(result.mapping, result.plan)});

  // Step 2: weight locality (knapsack per accelerator).
  optimize_weight_locality(sim_, result.mapping, result.plan, options_.weight);
  result.steps.push_back(
      {"2: weight locality", sim_.simulate(result.mapping, result.plan)});

  // Step 3: activation transfer optimization (fusion).
  optimize_activation_fusion(sim_, result.mapping, result.plan,
                             options_.fusion);
  result.steps.push_back(
      {"3: activation fusion", sim_.simulate(result.mapping, result.plan)});

  // Step 4: data-locality-aware remapping.
  if (options_.run_remapping) {
    result.remap_stats = data_locality_remapping(sim_, result.mapping,
                                                 result.plan, options_.remap);
    result.steps.push_back(
        {"4: locality-aware remapping",
         sim_.simulate(result.mapping, result.plan)});
  }

  result.search_seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();

  log_debug(strformat(
      "H2H(%s): steps=%zu latency %.6fs -> %.6fs (%.1f%%), search %.3fs",
      sim_.model().name().c_str(), result.steps.size(),
      result.baseline_result().latency, result.final_result().latency,
      result.latency_vs_baseline() * 100.0, result.search_seconds));
  return result;
}

}  // namespace h2h
