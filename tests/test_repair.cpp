// Unit tests for the live-repair subsystem (DESIGN.md §12): system-level
// derating (availability, link degrades, compute derates), the FaultEvent
// model and CLI grammar, the FaultInjector's physically consistent random
// schedules, and the RepairEngine's damage-cone repairs — including the
// warm-migrates-strictly-fewer-layers property against a cold re-plan and
// the in-band capability-infeasibility contract.

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "accel/capability.h"
#include "h2h.h"
#include "test_helpers.h"

namespace h2h {
namespace {

constexpr double kBw = 0.5e9;

/// The accelerator hosting the most layers of `m` (ties to the lowest id) —
/// the dropout victim that produces the largest damage cone.
[[nodiscard]] AccId busiest_acc(const Mapping& m, const SystemConfig& sys) {
  AccId best{};
  std::size_t best_n = 0;
  for (const AccId a : sys.all_accelerators()) {
    const std::size_t n = m.members(a).size();
    if (n > best_n) {
      best_n = n;
      best = a;
    }
  }
  EXPECT_GT(best_n, 0u);
  return best;
}

[[nodiscard]] std::size_t diff_count(const ModelGraph& model, const Mapping& a,
                                     const Mapping& b) {
  std::size_t n = 0;
  for (const LayerId id : model.all_layers()) {
    if (model.layer(id).kind == LayerKind::Input) continue;
    if (a.acc_of(id) != b.acc_of(id)) ++n;
  }
  return n;
}

// ---- System-level derating ------------------------------------------------

TEST(SystemDeratingTest, AvailabilityFiltersSupportingAndValidate) {
  const ModelGraph model = make_mocap();
  SystemConfig sys = SystemConfig::standard(kBw);
  const PlanResponse r = plan_once(model, sys);
  const AccId victim = busiest_acc(r.mapping, sys);

  EXPECT_TRUE(sys.available(victim));
  EXPECT_EQ(sys.available_count(), sys.accelerator_count());
  sys.set_available(victim, false);
  EXPECT_FALSE(sys.available(victim));
  EXPECT_EQ(sys.available_count(), sys.accelerator_count() - 1);
  for (std::size_t k = 1; k <= static_cast<std::size_t>(LayerKind::Concat);
       ++k) {
    const auto kind = static_cast<LayerKind>(k);
    for (const AccId a : sys.supporting(kind)) EXPECT_NE(a, victim);
  }
  // The old mapping places layers on the dead accelerator: validate rejects.
  EXPECT_THROW(r.mapping.validate(model, sys), ConfigError);
  sys.set_available(victim, true);
  r.mapping.validate(model, sys);
}

TEST(SystemDeratingTest, AvailabilityInvalidatesCostTable) {
  const ModelGraph model = make_mocap();
  SystemConfig sys = SystemConfig::standard(kBw);
  const Simulator sim(model, sys);
  EXPECT_TRUE(sim.costs_fresh());
  sys.set_available(AccId{0}, false);
  EXPECT_FALSE(sim.costs_fresh());
  const CostTable& rebuilt = sim.costs();
  for (const LayerId id : model.all_layers())
    EXPECT_FALSE(rebuilt.supported(id, AccId{0}));
  EXPECT_TRUE(sim.costs_fresh());
}

TEST(SystemDeratingTest, ComputeDerateStretchesLatencyOnly) {
  const ModelGraph model = make_mocap();
  SystemConfig sys = SystemConfig::standard(kBw);
  const CostTable nominal(model, sys);
  sys.set_compute_derate(AccId{0}, 0.5);
  EXPECT_FALSE(nominal.fresh(model, sys));
  const CostTable derated(model, sys);
  for (const LayerId id : model.all_layers()) {
    if (!nominal.supported(id, AccId{0})) continue;
    // 0.5 is a power of two: the derated latency is exactly double.
    EXPECT_EQ(derated.compute_latency(id, AccId{0}),
              2.0 * nominal.compute_latency(id, AccId{0}));
    EXPECT_EQ(derated.compute_energy(id, AccId{0}),
              nominal.compute_energy(id, AccId{0}));
    if (nominal.supported(id, AccId{1})) {
      EXPECT_EQ(derated.compute_latency(id, AccId{1}),
                nominal.compute_latency(id, AccId{1}));
    }
  }
}

TEST(SystemDeratingTest, LinkDegradeScalesBandwidthByMinEndpoint) {
  SystemConfig sys = SystemConfig::standard(kBw);
  const Interconnect& links = sys.links();
  EXPECT_TRUE(links.uniform_links());
  const std::uint64_t fp0 = links.fingerprint();

  sys.set_link_degrade(AccId{2}, 0.25);
  EXPECT_FALSE(links.uniform_links());
  EXPECT_NE(links.fingerprint(), fp0);
  EXPECT_EQ(links.bandwidth(AccId{2}, AccId::host()), kBw * 0.25);
  EXPECT_EQ(links.bandwidth(AccId{2}, AccId{5}), kBw * 0.25);
  EXPECT_EQ(links.bandwidth(AccId{5}, AccId::host()), kBw);
  EXPECT_EQ(links.min_bandwidth(), kBw * 0.25);

  // Two degraded endpoints: the pair moves at the slower factor.
  sys.set_link_degrade(AccId{5}, 0.5);
  EXPECT_EQ(links.bandwidth(AccId{2}, AccId{5}), kBw * 0.25);
  EXPECT_EQ(links.bandwidth(AccId{5}, AccId::host()), kBw * 0.5);

  // Restoring both returns the exact original fingerprint and uniformity.
  sys.set_link_degrade(AccId{2}, 1.0);
  sys.set_link_degrade(AccId{5}, 1.0);
  EXPECT_TRUE(links.uniform_links());
  EXPECT_EQ(links.fingerprint(), fp0);
}

TEST(SystemDeratingTest, LinkDegradeRejectsBadInputs) {
  SystemConfig sys = SystemConfig::standard(kBw);
  EXPECT_THROW(sys.set_link_degrade(AccId{0}, 0.0), ConfigError);
  EXPECT_THROW(sys.set_link_degrade(AccId{0}, 1.5), ConfigError);
}

// ---- FaultEvent model and CLI grammar ------------------------------------

TEST(FaultModelTest, BuildersValidateAndFormat) {
  EXPECT_EQ(format_fault(FaultEvent::lost(AccId{3})), "acc_lost(3)");
  EXPECT_EQ(format_fault(FaultEvent::link_degraded(AccId{2}, 0.25)),
            "link_degraded(2, x0.25)");
  EXPECT_THROW((void)FaultEvent::link_degraded(AccId{1}, 0.0), ConfigError);
  EXPECT_THROW((void)FaultEvent::spec_derated(AccId{1}, 1.5), ConfigError);
  EXPECT_EQ(parse_fault_kind("acc_lost"), FaultKind::AccLost);
  EXPECT_EQ(parse_fault_kind("spec_derated"), FaultKind::SpecDerated);
  EXPECT_FALSE(parse_fault_kind("melted").has_value());
}

TEST(FaultModelTest, ParsesCliSpecs) {
  const FaultEvent lose = parse_fault_spec("lose:3");
  EXPECT_EQ(lose.kind, FaultKind::AccLost);
  EXPECT_EQ(lose.acc.value, 3u);
  const FaultEvent degrade = parse_fault_spec("degrade:2=0.25");
  EXPECT_EQ(degrade.kind, FaultKind::LinkDegraded);
  EXPECT_EQ(degrade.acc.value, 2u);
  EXPECT_EQ(degrade.scale, 0.25);
  const std::vector<FaultEvent> list =
      parse_fault_list("lose:3,derate:1=0.5,restore:0,return:3");
  ASSERT_EQ(list.size(), 4u);
  EXPECT_EQ(list[1].kind, FaultKind::SpecDerated);
  EXPECT_EQ(list[2].kind, FaultKind::LinkRestored);
  EXPECT_EQ(list[3].kind, FaultKind::AccReturned);

  EXPECT_THROW((void)parse_fault_spec("lose"), ConfigError);
  EXPECT_THROW((void)parse_fault_spec("melt:3"), ConfigError);
  EXPECT_THROW((void)parse_fault_spec("degrade:3"), ConfigError);
  EXPECT_THROW((void)parse_fault_spec("degrade:3=2"), ConfigError);
  EXPECT_THROW((void)parse_fault_spec("lose:x"), ConfigError);
}

// ---- FaultInjector -------------------------------------------------------

TEST(FaultInjectorTest, RandomSchedulesArePhysicallyConsistent) {
  constexpr std::size_t kAccs = 12;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    FaultScheduleOptions opts;
    opts.min_alive = 3;
    const FaultInjector inj = FaultInjector::random(seed, 40, kAccs, opts);
    ASSERT_EQ(inj.size(), 40u);
    std::vector<bool> alive(kAccs, true);
    std::size_t alive_count = kAccs;
    for (const FaultEvent& e : inj.events()) {
      ASSERT_LT(e.acc.value, kAccs);
      switch (e.kind) {
        case FaultKind::AccLost:
          EXPECT_TRUE(alive[e.acc.value]);
          alive[e.acc.value] = false;
          --alive_count;
          EXPECT_GE(alive_count, opts.min_alive);
          break;
        case FaultKind::AccReturned:
          EXPECT_FALSE(alive[e.acc.value]);
          alive[e.acc.value] = true;
          ++alive_count;
          break;
        case FaultKind::LinkDegraded:
        case FaultKind::SpecDerated:
          EXPECT_TRUE(alive[e.acc.value]);
          EXPECT_GT(e.scale, 0.0);
          EXPECT_LE(e.scale, 1.0);
          break;
        case FaultKind::LinkRestored:
          EXPECT_TRUE(alive[e.acc.value]);
          break;
      }
    }
  }
}

TEST(FaultInjectorTest, SameSeedSameSchedule) {
  const FaultInjector a = FaultInjector::random(42, 25, 12);
  const FaultInjector b = FaultInjector::random(42, 25, 12);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].acc, b.events()[i].acc);
    EXPECT_EQ(a.events()[i].scale, b.events()[i].scale);
  }
  const FaultInjector c = FaultInjector::random(43, 25, 12);
  bool any_diff = false;
  for (std::size_t i = 0; i < c.size(); ++i)
    any_diff = any_diff || c.events()[i].kind != a.events()[i].kind ||
               c.events()[i].acc != a.events()[i].acc;
  EXPECT_TRUE(any_diff);
}

// ---- RepairEngine --------------------------------------------------------

TEST(RepairEngineTest, InitialPlanMatchesPlanOnce) {
  const ModelGraph model = make_mocap();
  RepairEngine engine(model, SystemConfig::standard(kBw));
  EXPECT_FALSE(engine.has_plan());
  const PlanResponse r = engine.plan_initial();
  EXPECT_TRUE(engine.has_plan());
  const PlanResponse ref = plan_once(model, SystemConfig::standard(kBw));
  EXPECT_EQ(r.final_result().latency, ref.final_result().latency);
  EXPECT_EQ(diff_count(model, r.mapping, ref.mapping), 0u);
  EXPECT_EQ(engine.latency(), r.final_result().latency);
}

TEST(RepairEngineTest, DropoutEvictsOnlyMembersAndRepairsValidly) {
  const ModelGraph model = make_mocap();
  RepairEngine engine(model, SystemConfig::standard(kBw));
  (void)engine.plan_initial();
  const Mapping before = engine.mapping();
  const AccId victim = busiest_acc(before, engine.system());
  const std::size_t victim_members = before.members(victim).size();

  const RepairResult res = engine.apply(FaultEvent::lost(victim));
  ASSERT_EQ(res.outcome, RepairOutcome::Repaired);
  ASSERT_TRUE(res.response.has_value());
  // The dropout damage cone is exactly the victim's members.
  EXPECT_EQ(res.cone_layers, victim_members);
  EXPECT_TRUE(std::isinf(res.faulted_latency_s));
  EXPECT_GE(res.layers_moved, victim_members);
  EXPECT_EQ(res.layers_moved, res.migrations.size());
  // Every migration leaves the dead accelerator or re-shuffles the cone;
  // weight bytes tally the moved layers.
  Bytes bytes = 0;
  for (const Migration& m : res.migrations) {
    EXPECT_NE(m.to, victim);
    bytes += m.weight_bytes;
  }
  EXPECT_EQ(bytes, res.weight_bytes_moved);
  engine.mapping().validate(model, engine.system());
  EXPECT_TRUE(engine.mapping().members(victim).empty());
  EXPECT_EQ(engine.latency(), res.post_latency_s);
}

TEST(RepairEngineTest, WarmRepairMigratesStrictlyFewerThanColdReplan) {
  // The acceptance fixtures: a single dropout of the busiest accelerator on
  // two zoo models. The warm repair touches only the damage cone; a cold
  // re-plan re-derives the whole mapping and moves more layers.
  for (const ZooModel zm : {ZooModel::MoCap, ZooModel::CnnLstm}) {
    const ModelGraph model = make_model(zm);
    RepairOptions opts;
    opts.allow_fallback = false;  // compare the pure warm repair
    RepairEngine engine(model, SystemConfig::standard(kBw), opts);
    (void)engine.plan_initial();
    const Mapping before = engine.mapping();
    const AccId victim = busiest_acc(before, engine.system());

    const RepairResult res = engine.apply(FaultEvent::lost(victim));
    ASSERT_EQ(res.outcome, RepairOutcome::Repaired);

    SystemConfig faulted = SystemConfig::standard(kBw);
    faulted.set_available(victim, false);
    const PlanResponse cold = plan_once(model, faulted);
    const std::size_t cold_moved = diff_count(model, before, cold.mapping);
    EXPECT_LT(res.layers_moved, cold_moved)
        << "model " << static_cast<int>(zm) << " victim " << victim.value;
  }
}

TEST(RepairEngineTest, LinkDegradeRepairBeatsNotRepairing) {
  const ModelGraph model = make_vfs();
  RepairEngine engine(model, SystemConfig::standard(kBw));
  (void)engine.plan_initial();
  const AccId victim = busiest_acc(engine.mapping(), engine.system());

  const RepairResult res =
      engine.apply(FaultEvent::link_degraded(victim, 0.2));
  ASSERT_EQ(res.outcome, RepairOutcome::Repaired);
  ASSERT_TRUE(std::isfinite(res.faulted_latency_s));
  EXPECT_GE(res.faulted_latency_s, res.pre_latency_s);
  // The repair never ends worse than leaving the degraded mapping in place
  // (the warm re-plan starts from the current placement and only improves).
  EXPECT_LE(res.post_latency_s, res.faulted_latency_s * (1 + 1e-9));
  engine.mapping().validate(model, engine.system());
}

TEST(RepairEngineTest, DerateAndRestoreRoundTrip) {
  const ModelGraph model = make_mocap();
  RepairEngine engine(model, SystemConfig::standard(kBw));
  (void)engine.plan_initial();
  const double healthy = engine.latency();
  const AccId victim = busiest_acc(engine.mapping(), engine.system());

  const RepairResult hit = engine.apply(FaultEvent::spec_derated(victim, 0.3));
  ASSERT_EQ(hit.outcome, RepairOutcome::Repaired);
  engine.mapping().validate(model, engine.system());

  // Restating the derate at nominal is the recovery event; the benefit cone
  // lets layers flow back and latency returns to the healthy plan's level.
  const RepairResult back =
      engine.apply(FaultEvent::spec_derated(victim, 1.0));
  ASSERT_EQ(back.outcome, RepairOutcome::Repaired);
  engine.mapping().validate(model, engine.system());
  EXPECT_LE(back.post_latency_s, healthy * 1.05);
}

TEST(RepairEngineTest, LoseAndReturnRecoversLatency) {
  const ModelGraph model = make_casia_surf();
  RepairEngine engine(model, SystemConfig::standard(kBw));
  (void)engine.plan_initial();
  const double healthy = engine.latency();
  const AccId victim = busiest_acc(engine.mapping(), engine.system());

  const RepairResult lost = engine.apply(FaultEvent::lost(victim));
  ASSERT_EQ(lost.outcome, RepairOutcome::Repaired);
  const RepairResult ret = engine.apply(FaultEvent::returned(victim));
  ASSERT_EQ(ret.outcome, RepairOutcome::Repaired);
  engine.mapping().validate(model, engine.system());
  EXPECT_LE(ret.post_latency_s, healthy * 1.05);
}

TEST(RepairEngineTest, ContradictoryAndUnknownEventsThrow) {
  const ModelGraph model = make_mocap();
  RepairEngine engine(model, SystemConfig::standard(kBw));
  EXPECT_THROW((void)engine.apply(FaultEvent::lost(AccId{0})), ConfigError);
  (void)engine.plan_initial();
  EXPECT_THROW((void)engine.apply(FaultEvent::lost(AccId{99})), ConfigError);
  EXPECT_THROW((void)engine.apply(FaultEvent::returned(AccId{0})),
               ConfigError);
  (void)engine.apply(FaultEvent::lost(AccId{0}));
  EXPECT_THROW((void)engine.apply(FaultEvent::lost(AccId{0})), ConfigError);
}

TEST(RepairEngineTest, CapabilityExhaustionIsReportedInBand) {
  // Stamp the whole model with a capability only some catalog accelerators
  // provide, then kill the providers one by one: the last kill must come
  // back as an in-band Infeasible result (never an exception), and the
  // engine must keep serving the stale pre-fault plan.
  ModelGraph model = testing::make_mini_mmmt_model();
  model.stamp_required_caps(kCapBigMem);
  SystemConfig probe = SystemConfig::standard(kBw);
  std::vector<AccId> providers;
  for (const AccId a : probe.all_accelerators())
    if (can_serve(probe.capabilities(a), kCapBigMem)) providers.push_back(a);
  ASSERT_GE(providers.size(), 2u);

  // Some provider subset may already be infeasible for a specific layer
  // kind (caps intersect per-kind support), so kill providers until the
  // first in-band Infeasible rather than assuming only the last kill fails.
  RepairEngine engine(model, SystemConfig::standard(kBw));
  (void)engine.plan_initial();
  std::optional<RepairResult> failed;
  AccId last_killed{};
  for (const AccId p : providers) {
    const RepairResult r = engine.apply(FaultEvent::lost(p));
    last_killed = p;
    if (r.outcome == RepairOutcome::Infeasible) {
      failed = r;
      break;
    }
  }
  ASSERT_TRUE(failed.has_value()) << "killing every provider stayed feasible";
  EXPECT_FALSE(failed->infeasible_reason.empty());
  EXPECT_FALSE(failed->response.has_value());
  EXPECT_TRUE(engine.has_plan());

  // The accelerator returning makes the system repairable again from the
  // stale plan.
  const RepairResult back = engine.apply(FaultEvent::returned(last_killed));
  EXPECT_EQ(back.outcome, RepairOutcome::Repaired);
  engine.mapping().validate(model, engine.system());
}

TEST(RepairEngineTest, FallbackEngagesWhenWarmRepairIsLoose) {
  // With a zero fallback ratio every repair exceeds the bound, so the
  // from-scratch re-plan must run; it can only be adopted if strictly
  // better, so the post latency is min(warm, scratch).
  const ModelGraph model = make_mocap();
  RepairOptions opts;
  opts.fallback_ratio = 0.0;
  RepairEngine engine(model, SystemConfig::standard(kBw), opts);
  (void)engine.plan_initial();
  const AccId victim = busiest_acc(engine.mapping(), engine.system());
  const RepairResult res = engine.apply(FaultEvent::lost(victim));
  ASSERT_EQ(res.outcome, RepairOutcome::Repaired);
  EXPECT_GT(res.scratch_latency_s, 0.0);
  if (res.used_fallback)
    EXPECT_EQ(res.post_latency_s, res.scratch_latency_s);
  else
    EXPECT_LE(res.post_latency_s, res.scratch_latency_s);
}

// ---- Repair over a co-mapped union ---------------------------------------

TEST(RepairEngineTest, CoMappedUnionRepairReassessesTenantSlos) {
  // A live repair must compose with multi-tenant serving: the CoMapper's
  // union mapping is adopted into a RepairEngine, an accelerator drops out,
  // and tenant_latencies re-derives per-tenant SLO accounting from the
  // repaired schedule.
  TenantRequest cam;
  cam.name = "cam";
  cam.model = ZooModel::CasiaSurf;
  cam.slo_s = 0.012;
  cam.priority = 3;
  TenantRequest mic;
  mic.name = "mic";
  mic.model = ZooModel::MoCap;
  mic.slo_s = 0.05;
  const TenantSet set({cam, mic});

  const SystemConfig sys = SystemConfig::standard(kBw);
  CoMapper co(sys);
  const CoMapResult r = co.co_map(set);

  std::vector<TenantSpan> spans;
  spans.reserve(r.tenants.size());
  for (const TenantOutcome& t : r.tenants) spans.push_back(t.span);

  // The exported helper reproduces the co-mapper's own accounting exactly.
  const std::vector<double> before = tenant_latencies(r.schedule, spans);
  ASSERT_EQ(before.size(), r.tenants.size());
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_EQ(before[i], r.tenants[i].latency_s);

  RepairEngine engine(r.model, SystemConfig::standard(kBw));
  engine.adopt(r.mapping, r.plan);
  EXPECT_EQ(engine.latency(), r.schedule.latency);

  const AccId victim = busiest_acc(engine.mapping(), engine.system());
  const RepairResult res = engine.apply(FaultEvent::lost(victim));
  ASSERT_EQ(res.outcome, RepairOutcome::Repaired);
  ASSERT_TRUE(res.response.has_value());
  engine.mapping().validate(r.model, engine.system());

  // Reassessed tenant latencies cover the whole repaired schedule and bound
  // its makespan; each tenant's latency is positive and finite.
  const std::vector<double> after =
      tenant_latencies(res.response->final_result(), spans);
  double worst = 0;
  for (const double lat : after) {
    EXPECT_GT(lat, 0.0);
    EXPECT_TRUE(std::isfinite(lat));
    worst = std::max(worst, lat);
  }
  EXPECT_DOUBLE_EQ(worst, res.post_latency_s);
}

}  // namespace
}  // namespace h2h
