// Fluent construction of ModelGraphs with automatic shape propagation.
//
// The builder tracks each layer's output geometry (channels x h x w, plus an
// optional sequence length for recurrent paths) so call sites specify only
// what a network description specifies: output channels, kernel, stride,
// hidden sizes. "Same" padding is assumed: out_dim = ceil(in_dim / stride),
// matching the ResNet/VGG conventions of the surveyed models.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "model/model_graph.h"

namespace h2h {

class ModelBuilder {
 public:
  explicit ModelBuilder(std::string name, std::uint32_t dtype_bytes = 2);

  /// Layers added after this call carry the given modality tag
  /// (0 = shared/fusion trunk). Used by the dynamic-modality extension.
  void set_modality(std::uint32_t modality) noexcept { modality_ = modality; }

  /// Image-like input tensor (channels x h x w).
  LayerId input(const std::string& name, std::uint32_t channels, std::uint32_t h,
                std::uint32_t w);

  /// Sequence input (text/sensor): seq_len steps of `features` values.
  LayerId input_seq(const std::string& name, std::uint32_t seq_len,
                    std::uint32_t features);

  /// 2-D convolution, square kernel, same padding.
  LayerId conv(const std::string& name, LayerId from, std::uint32_t out_channels,
               std::uint32_t kernel, std::uint32_t stride = 1);

  /// 1-D (temporal) convolution over a sequence-shaped tensor (k x 1 kernel).
  LayerId conv1d(const std::string& name, LayerId from, std::uint32_t out_channels,
                 std::uint32_t kernel, std::uint32_t stride = 1);

  /// Max/avg pooling (cost model does not distinguish), same padding.
  LayerId pool(const std::string& name, LayerId from, std::uint32_t kernel,
               std::uint32_t stride);

  /// Global average pooling: output is channels x 1 x 1.
  LayerId global_pool(const std::string& name, LayerId from);

  /// Fully connected from the flattened producer output.
  LayerId fc(const std::string& name, LayerId from, std::uint32_t out_features);

  /// (Stacked) LSTM. If the producer has sequence structure its seq_len is
  /// used; otherwise `seq_len` must be given and divide the producer's
  /// element count. in_size is inferred.
  LayerId lstm(const std::string& name, LayerId from, std::uint32_t hidden_size,
               std::uint32_t layers = 1, std::uint32_t seq_len = 0);

  /// Element-wise addition (residual shortcut). Inputs must agree in size.
  LayerId eltwise(const std::string& name, LayerId a, LayerId b);

  /// Channel concatenation. Inputs must agree spatially.
  LayerId concat(const std::string& name, std::span<const LayerId> inputs);

  /// Output geometry of an already-added layer (for block helpers).
  struct Geometry {
    std::uint32_t channels = 0;
    std::uint32_t h = 1;
    std::uint32_t w = 1;
    std::uint32_t seq = 0;  // 0 = no sequence semantics
    [[nodiscard]] std::uint64_t elems() const noexcept {
      return static_cast<std::uint64_t>(channels) * h * w;
    }
  };
  [[nodiscard]] const Geometry& geometry(LayerId id) const;

  [[nodiscard]] const ModelGraph& peek() const noexcept { return model_; }

  /// Finalize; validates by default. The builder is consumed.
  [[nodiscard]] ModelGraph build(bool validate = true) &&;

 private:
  LayerId add(Layer layer, std::span<const LayerId> inputs, Geometry geo);
  [[nodiscard]] static std::uint32_t ceil_div(std::uint32_t a, std::uint32_t b) {
    return (a + b - 1) / b;
  }

  ModelGraph model_;
  std::vector<Geometry> geo_;
  std::uint32_t modality_ = 0;
};

}  // namespace h2h
