// Ablation: the weight-locality knapsack solver (DESIGN.md §6). Compares
// exact DP against greedy density selection — final pipeline latency and
// solver cost — under memory pressure (the standard system, where the
// PYNQ-Z1's 512 MiB and 1 GiB boards are the tight cases).
#include <benchmark/benchmark.h>

#include <iostream>

#include "h2h.h"

namespace {

using namespace h2h;

void BM_KnapsackSolver(benchmark::State& state) {
  // A pressured instance: 60 layer-sized items into 64 MiB.
  std::vector<KnapsackItem> items;
  Rng rng(1234);
  for (std::uint32_t i = 0; i < 60; ++i) {
    const Bytes w = mib(static_cast<double>(rng.uniform_int(1, 12)));
    items.push_back({i, w, static_cast<double>(w) * 7e-9});
  }
  const auto algo = static_cast<KnapsackAlgo>(state.range(0));
  for (auto _ : state) {
    const KnapsackSolution s = solve_knapsack(items, mib(64), algo);
    benchmark::DoNotOptimize(s.value);
  }
  state.SetLabel(algo == KnapsackAlgo::ExactDp ? "exact-dp" : "greedy");
}
BENCHMARK(BM_KnapsackSolver)
    ->Arg(static_cast<int>(KnapsackAlgo::ExactDp))
    ->Arg(static_cast<int>(KnapsackAlgo::GreedyDensity))
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  TextTable table({"model", "exact-dp lat (s)", "greedy lat (s)", "delta"},
                  {TextTable::Align::Left});
  for (const ZooInfo& info : zoo_catalog()) {
    const ModelGraph model = make_model(info.id);
    const SystemConfig sys = SystemConfig::standard(BandwidthSetting::LowMinus);

    PlanOptions exact;
    exact.weight.algo = KnapsackAlgo::ExactDp;
    exact.remap.weight.algo = KnapsackAlgo::ExactDp;
    PlanOptions greedy;
    greedy.weight.algo = KnapsackAlgo::GreedyDensity;
    greedy.remap.weight.algo = KnapsackAlgo::GreedyDensity;

    const double lat_dp =
        plan_once(model, sys, exact).final_result().latency;
    const double lat_greedy =
        plan_once(model, sys, greedy).final_result().latency;
    table.add_row({std::string(info.key), strformat("%.6f", lat_dp),
                   strformat("%.6f", lat_greedy),
                   format_percent(lat_greedy / lat_dp - 1.0, 2)});
  }
  std::cout << "knapsack ablation (exact DP vs greedy density) @ Low-:\n";
  table.print(std::cout);
  std::cout << '\n';

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
