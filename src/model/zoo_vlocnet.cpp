// VLocNet (Valada et al., ICRA 2018): joint visual localization and
// odometry. Two siamese ResNet-50 trunks (previous/current frame) feed a
// relative-odometry head; a full ResNet-50 global-pose stream regresses the
// 6-DoF pose. The odometry head regresses from un-pooled res5 features,
// which is where the bulk of the 192M parameters lives.
//
// Modality tags: 1 = previous frame, 2 = current frame, 0 = fusion/heads.
#include "model/blocks.h"
#include "model/zoo.h"

namespace h2h {

ModelGraph make_vlocnet() {
  ModelBuilder b("VLocNet");

  // Odometry stream: siamese trunks truncated after res4 (stages=3).
  b.set_modality(1);
  const LayerId img_prev = b.input("prev_frame", 3, 224, 224);
  const LayerId feat_prev = resnet50_backbone(b, img_prev, "odo_prev", 1.0, 3);

  b.set_modality(2);
  const LayerId img_cur = b.input("cur_frame", 3, 224, 224);
  const LayerId feat_cur = resnet50_backbone(b, img_cur, "odo_cur", 1.0, 3);

  // Global pose stream: full ResNet-50 on the current frame (cross-talk edge:
  // it consumes the same input node as the odometry stream).
  const LayerId feat_pose = resnet50_backbone(b, img_cur, "pose", 1.0, 4);

  // Odometry head: concat res4 features, one res5 stage, then dense
  // regression from the un-pooled feature map.
  b.set_modality(0);
  const LayerId odo_cat =
      b.concat("odo.concat", std::array{feat_prev, feat_cur});
  const LayerId odo_res5 = resnet_stage_bottleneck(
      b, odo_cat, 512, 2048, 3, 2, "odo.res5");
  const LayerId odo_fc1 = b.fc("odo.fc1", odo_res5, 1280);
  (void)b.fc("odo.se3", odo_fc1, 6);

  // Global pose head: GAP + two-stage regression (translation + rotation),
  // with a cross-talk edge from the odometry head (VLocNet's auxiliary
  // learning connection).
  const LayerId pose_gap = b.global_pool("pose.gap", feat_pose);
  const LayerId pose_fc1 = b.fc("pose.fc1", pose_gap, 1024);
  const LayerId pose_join =
      b.concat("pose.join", std::array{pose_fc1, odo_fc1});
  const LayerId pose_fc2 = b.fc("pose.fc2", pose_join, 1024);
  (void)b.fc("pose.xyz", pose_fc2, 3);
  (void)b.fc("pose.quat", pose_fc2, 4);

  return std::move(b).build();
}

}  // namespace h2h
