// First-class link topology between accelerators and the host.
//
// The paper's evaluation system is a star: every accelerator reaches the
// host (and, through it, every peer) at one system-wide BW_acc. Real
// multi-FPGA deployments are not that regular — cloud Ethernet spans 1G to
// 10G per card, and switch fabrics give intra-rack pairs a faster path than
// cross-rack ones. This class models the per-pair link structure the
// communication-aware passes and the simulator charge transfers on:
//
//  - uniform(bw): every link (accelerator-accelerator and accelerator-host)
//    runs at `bw`. Reproduces the scalar BW_acc semantics bit-exactly —
//    uniform_links() is true and every consumer (CostTable, Simulator)
//    takes the legacy fast path, so output is hex-identical to the
//    pre-topology code (pinned by test_interconnect_identity.cpp).
//  - mixed(default, overrides): per-accelerator uplinks; a pair transfers
//    at the slower of its two endpoints' uplinks, the host link is the
//    accelerator's own uplink. Subsumes the deprecated per-spec
//    bw_acc_override (SystemConfig's scalar constructor folds overrides
//    into exactly this shape).
//  - hierarchical(spec): a switch/fabric tree. Accelerators are grouped in
//    consecutive runs of `group_size`; same-group pairs transfer at
//    `intra_bw`, cross-group traffic shares the `uplink_bw` fabric, host
//    links run at `host_bw` (0 = follow the uplink). Optional per-hop
//    latency charges `hop_latency_s` per switch hop (1 intra-group, 2 to
//    the host, 3 cross-group); 0 keeps transfers pure-bandwidth.
//
// Bandwidth is symmetric (bandwidth(a, b) == bandwidth(b, a)) and the host
// participates as a regular endpoint via AccId::host(). An Interconnect is
// built unbound (no accelerator count yet); SystemConfig binds it at
// construction, which validates override indices and precomputes the
// uniformity flag, the min/max link speeds, and a content fingerprint used
// by CostTable::fresh and the Planner session key.
#pragma once

#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

#include "system/acc_id.h"
#include "util/contracts.h"

namespace h2h {

enum class LinkShape { Uniform, Mixed, Hierarchical };

[[nodiscard]] std::string_view to_string(LinkShape shape) noexcept;

class Interconnect {
 public:
  /// Per-accelerator uplink override for the mixed shape: (accelerator
  /// index, uplink bandwidth in bytes/s).
  using Override = std::pair<std::uint32_t, double>;

  struct HierarchicalSpec {
    std::uint32_t group_size = 4;  // accelerators per switch group
    double intra_bw = 0;           // same-group pair bandwidth, bytes/s
    double uplink_bw = 0;          // cross-group fabric bandwidth, bytes/s
    double host_bw = 0;            // accelerator-host links; 0 = uplink_bw
    double hop_latency_s = 0;      // per switch hop; 0 = pure bandwidth
  };

  /// Every link at `bw` — the scalar BW_acc star, bit-exact.
  [[nodiscard]] static Interconnect uniform(double bw);
  /// Per-accelerator uplinks: `default_bw` unless overridden. Overrides are
  /// canonicalized (sorted by index, duplicates rejected at bind).
  [[nodiscard]] static Interconnect mixed(double default_bw,
                                          std::vector<Override> overrides);
  [[nodiscard]] static Interconnect hierarchical(const HierarchicalSpec& spec);

  /// Resolve against a concrete accelerator count (SystemConfig calls this
  /// at construction). Validates override indices and group sizes, then
  /// derives uniformity, min/max speeds, and the fingerprint. Throws
  /// ConfigError on out-of-range overrides or duplicate indices.
  void bind(std::size_t acc_count);
  [[nodiscard]] bool bound() const noexcept { return acc_count_ > 0; }
  [[nodiscard]] std::size_t acc_count() const noexcept { return acc_count_; }

  [[nodiscard]] LinkShape shape() const noexcept { return shape_; }
  [[nodiscard]] std::string_view shape_name() const noexcept {
    return to_string(shape_);
  }

  /// True when every link (pairs and host) runs at one speed with zero
  /// latency — the degenerate case consumers may serve from the legacy
  /// scalar fast path. A mixed/hierarchical topology whose parameters all
  /// coincide degrades to uniform here (property-tested for bit-identity).
  [[nodiscard]] bool uniform_links() const {
    H2H_EXPECTS(bound());
    return uniform_;
  }

  /// The shape's base bandwidth: the uniform speed, the mixed default
  /// uplink, or the hierarchical host-link speed.
  [[nodiscard]] double base_bw() const noexcept;
  /// Sweep helper (SystemConfig::set_bw_acc): move the base bandwidth,
  /// preserving the shape — mixed overrides and hierarchical fabric speeds
  /// stay put; for hierarchical shapes this moves the host links only.
  void set_base_bw(double bw);

  /// Fault-repair hook: scale every link touching `acc` by `factor` in
  /// (0, 1]. A pair transfers at the raw shape bandwidth times the smaller
  /// endpoint factor (the host never degrades); factor 1 restores the link
  /// and drops the entry. Degrades participate in min/max/uniform_links and
  /// both fingerprints, so CostTable::fresh sees the mutation. Bound only.
  void set_link_degrade(std::uint32_t acc, double factor);
  /// Current degrade factor for `acc` (1 when undegraded).
  [[nodiscard]] double link_degrade(std::uint32_t acc) const noexcept;
  [[nodiscard]] bool degraded() const noexcept { return !degrades_.empty(); }

  /// Symmetric pair bandwidth, bytes/s. Either endpoint may be
  /// AccId::host(); both being the host is a contract violation.
  [[nodiscard]] double bandwidth(AccId a, AccId b) const;
  /// Per-transfer latency between the endpoints, seconds (0 unless the
  /// shape carries a hop latency).
  [[nodiscard]] double latency(AccId a, AccId b) const;
  /// bandwidth(a, AccId::host()) — the legacy BW_acc of one accelerator.
  [[nodiscard]] double host_bandwidth(AccId a) const {
    return bandwidth(a, AccId::host());
  }

  [[nodiscard]] double min_bandwidth() const {
    H2H_EXPECTS(bound());
    return min_bw_;
  }
  [[nodiscard]] double max_bandwidth() const {
    H2H_EXPECTS(bound());
    return max_bw_;
  }

  /// Content fingerprint (shape + every parameter + the bound count),
  /// stable across runs. CostTable::fresh compares it to detect topology
  /// mutations; the Planner mixes it into the session key. O(1): cached at
  /// bind/set_base_bw.
  [[nodiscard]] std::uint64_t fingerprint() const {
    H2H_EXPECTS(bound());
    return fingerprint_;
  }
  /// Parameter-only fingerprint (no bound count) — usable unbound; the
  /// Planner keys sessions on it before the system exists.
  [[nodiscard]] std::uint64_t params_fingerprint() const noexcept;

  /// Shape parameters, for canonical serialization (serve wire, reports).
  [[nodiscard]] const std::vector<Override>& overrides() const noexcept {
    return overrides_;
  }
  [[nodiscard]] const HierarchicalSpec& hier() const {
    H2H_EXPECTS(shape_ == LinkShape::Hierarchical);
    return hier_;
  }

 private:
  Interconnect() = default;
  void derive();  // recompute uniform_/min_/max_/fingerprint_ (bound only)
  [[nodiscard]] double uplink(std::uint32_t acc) const;  // mixed shape
  [[nodiscard]] std::uint32_t group_of(std::uint32_t acc) const {
    return acc / hier_.group_size;
  }

  LinkShape shape_ = LinkShape::Uniform;
  double base_bw_ = 0;                // uniform speed / mixed default uplink
  std::vector<Override> overrides_;   // mixed; sorted by index
  std::vector<Override> degrades_;    // live link derating; sorted by index
  HierarchicalSpec hier_;

  std::size_t acc_count_ = 0;  // 0 = unbound
  bool uniform_ = true;
  double min_bw_ = 0;
  double max_bw_ = 0;
  std::uint64_t fingerprint_ = 0;
};

/// Parse the CLI spelling of a topology (all bandwidths in GB/s):
///   uniform:0.5
///   mixed:0.125,0=1.25,2=1.25          (default, then acc=uplink overrides)
///   hier:group=4,intra=1.25,uplink=0.25[,host=0.5][,lat_us=2]
/// Throws ConfigError with a usage hint on malformed input.
[[nodiscard]] Interconnect parse_links_spec(std::string_view spec);

}  // namespace h2h
