// Fault-tolerant live repair: warm delta re-plans on a mutating system
// (DESIGN.md §12).
//
// A RepairEngine owns one (model, system) pair plus the live mapping being
// served. Each FaultEvent mutates the owned SystemConfig (availability,
// link degrades, compute derates — the CostTable rebuilds lazily off the
// derate/link fingerprints), then repairs the mapping by re-planning only a
// *damage cone* of affected layers through the existing pass machinery:
//
//  - Forced evictions: every layer whose current accelerator can no longer
//    run it (dead device, capability exclusion) is in the cone.
//  - Event-local opportunity set: the event accelerator's members (they may
//    prefer to leave a degraded/derated device), their graph neighbours for
//    a link degrade (either endpoint of an edge crossing the slowed link
//    may move), and — for improving events — every layer that would now run
//    strictly faster on the event accelerator (step-1 measure).
//
// Outside the cone, step 1 is forced to the current placement via the
// placement-preference hook, step 2 keeps current pins via force_pin, and
// step 4 is frozen via the locked mask — the exact constraint-replanning
// shape the multi-tenant CoMapper rounds use, with "damage cone" standing
// in for "active tenant span". When the warm repair's latency exceeds a
// configurable multiple of the best reference (the faulted latency when the
// old mapping is still runnable, the pre-fault latency otherwise), a
// from-scratch re-plan runs as fallback and wins if strictly better.
//
// Infeasibility (a dropout leaves a required-caps layer with zero feasible
// accelerators) is reported in-band via RepairResult::outcome — never as an
// exception — so the serve loop can answer `infeasible_repair` and keep
// running. After an infeasible event the engine keeps the stale pre-fault
// mapping; a later improving event (the accelerator returning) makes the
// system repairable again from that same mapping.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/planner.h"
#include "repair/fault.h"

namespace h2h {

struct RepairOptions {
  /// Pass options for both the warm repair and the from-scratch fallback
  /// (including options.time_budget_s per plan).
  PlanOptions plan;
  /// Try a from-scratch re-plan when the warm repair exceeds the bound.
  bool allow_fallback = true;
  /// The bound: warm latency > fallback_ratio x reference triggers the
  /// fallback (reference = faulted latency when the old mapping still runs,
  /// pre-fault latency after a dropout).
  double fallback_ratio = 1.2;
};

enum class RepairOutcome {
  Repaired,    // a valid repaired mapping was adopted
  Infeasible,  // some layer has no feasible accelerator; mapping unchanged
};

[[nodiscard]] std::string_view to_string(RepairOutcome outcome) noexcept;

/// One migrated layer: where it ran before the event, where it runs now,
/// and the weight bytes that must be re-staged to move it.
struct Migration {
  LayerId layer{};
  AccId from{};
  AccId to{};
  Bytes weight_bytes = 0;
};

struct RepairResult {
  FaultEvent event;
  RepairOutcome outcome = RepairOutcome::Repaired;
  /// Human-readable cause when outcome == Infeasible.
  std::string infeasible_reason;

  /// Latency of the plan being served before the event.
  double pre_latency_s = 0;
  /// The old mapping re-simulated on the faulted system — the latency of
  /// *not* repairing. +inf when the old mapping no longer runs (dropout).
  double faulted_latency_s = 0;
  /// Latency of the adopted repaired plan (0 when infeasible).
  double post_latency_s = 0;
  /// Latency of the from-scratch fallback plan (0 unless it ran).
  double scratch_latency_s = 0;
  /// True when the fallback ran and beat the warm repair.
  bool used_fallback = false;

  /// Non-input layers the damage cone freed for re-planning.
  std::size_t cone_layers = 0;
  /// Non-input layers whose accelerator changed, and the weight bytes that
  /// must be re-staged to effect the move.
  std::size_t layers_moved = 0;
  Bytes weight_bytes_moved = 0;
  std::vector<Migration> migrations;

  /// Wall-clock of the whole apply() (cost rebuild + plans). Excluded from
  /// deterministic wire output unless timing emission is requested.
  double repair_seconds = 0;

  /// The adopted plan (engaged only when outcome == Repaired).
  std::optional<PlanResponse> response;
};

class RepairEngine {
 public:
  /// Copies the model and takes ownership of the system (SystemConfig is
  /// move-only); `options.plan` drives every re-plan the engine runs.
  RepairEngine(const ModelGraph& model, SystemConfig sys,
               RepairOptions options = {});
  /// The simulator holds pointers into this object: not copyable/movable.
  RepairEngine(const RepairEngine&) = delete;
  RepairEngine& operator=(const RepairEngine&) = delete;

  /// Plan from scratch on the current system and adopt the result as the
  /// live plan. Bit-identical to Planner::plan on the same model/system.
  PlanResponse plan_initial();
  /// Adopt an externally produced plan (e.g. a serve session's cached
  /// PlanResponse, or a CoMapper union mapping). Validates the mapping
  /// against the owned model/system and simulates it for the live latency.
  void adopt(const Mapping& mapping, const LocalityPlan& plan);
  [[nodiscard]] bool has_plan() const noexcept { return mapping_.has_value(); }

  /// Apply one fault event: mutate the system, derive the damage cone,
  /// warm re-plan (with fallback), adopt the repaired mapping, and report
  /// migration cost. Throws ConfigError on contradictory events (losing a
  /// dead accelerator, returning a live one), on an unknown accelerator,
  /// and when no prior plan exists; capability infeasibility is reported
  /// in-band (outcome == Infeasible), never thrown.
  RepairResult apply(const FaultEvent& event);

  /// Replace the engine's options (a serve session applies each repair
  /// request's own plan knobs and fallback ratio).
  void set_options(RepairOptions options) { options_ = std::move(options); }
  [[nodiscard]] const RepairOptions& options() const noexcept {
    return options_;
  }

  [[nodiscard]] const ModelGraph& model() const noexcept { return model_; }
  [[nodiscard]] const SystemConfig& system() const noexcept { return sys_; }
  /// The live mapping/plan being served. Requires has_plan().
  [[nodiscard]] const Mapping& mapping() const {
    H2H_EXPECTS(has_plan());
    return *mapping_;
  }
  [[nodiscard]] const LocalityPlan& plan() const {
    H2H_EXPECTS(has_plan());
    return *plan_;
  }
  /// Latency of the live plan under the system state it was adopted on.
  [[nodiscard]] double latency() const {
    H2H_EXPECTS(has_plan());
    return latency_;
  }

 private:
  [[nodiscard]] RepairResult infeasible(RepairResult res, std::string reason,
                                        double elapsed_s);

  ModelGraph model_;
  SystemConfig sys_;
  Simulator sim_;  // references model_/sys_; rebuilt lazily via fingerprints
  RepairOptions options_;

  std::optional<Mapping> mapping_;
  std::optional<LocalityPlan> plan_;
  double latency_ = 0;
};

}  // namespace h2h
