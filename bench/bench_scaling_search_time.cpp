// Extension of Fig. 5(b): H2H search time as the model grows. The paper's
// largest model has ~141 layers; the synthetic MMMT generator scales the
// layer count an order of magnitude further to probe the mapper's
// complexity empirically (the paper claims the search is "consistently
// low").
#include <benchmark/benchmark.h>

#include <iostream>

#include "h2h.h"

namespace {

using namespace h2h;

SyntheticMmmtSpec spec_for(std::uint32_t modalities, std::uint32_t depth) {
  SyntheticMmmtSpec spec;
  spec.modalities = modalities;
  spec.lstm_modalities = modalities / 3;
  spec.backbone_depth = depth;
  spec.seed = 42;
  return spec;
}

void BM_SearchVsModelSize(benchmark::State& state) {
  const auto modalities = static_cast<std::uint32_t>(state.range(0));
  const auto depth = static_cast<std::uint32_t>(state.range(1));
  const ModelGraph model = make_synthetic_mmmt(spec_for(modalities, depth));
  const SystemConfig sys = SystemConfig::standard(BandwidthSetting::Mid);
  for (auto _ : state) {
    const PlanResponse r = plan_once(model, sys);
    benchmark::DoNotOptimize(r.final_result().latency);
  }
  state.SetLabel(strformat("%zu layers",
                           model.stats().compute_layer_count));
}
BENCHMARK(BM_SearchVsModelSize)
    ->Args({2, 6})
    ->Args({3, 10})
    ->Args({5, 16})
    ->Args({8, 24})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  TextTable table({"modalities", "depth", "graph nodes", "compute layers",
                   "search (s)", "probes", "us/probe", "latency gain"},
                  {TextTable::Align::Left});
  for (const auto& [modalities, depth] :
       {std::pair{2u, 6u}, {3u, 10u}, {4u, 12u}, {6u, 18u}, {8u, 24u}}) {
    const ModelGraph model = make_synthetic_mmmt(spec_for(modalities, depth));
    const SystemConfig sys =
        SystemConfig::standard(BandwidthSetting::LowMinus);
    const PlanResponse r = plan_once(model, sys);
    const ModelStats s = model.stats();
    // The probe rate is the journaled search core's figure of merit: it
    // should stay roughly flat as the model grows (each probe touches only
    // the two affected accelerators plus the re-timed cone).
    const double us_per_probe =
        r.remap_stats.attempts > 0
            ? r.search_seconds * 1e6 / r.remap_stats.attempts
            : 0.0;
    table.add_row({strformat("%u", modalities), strformat("%u", depth),
                   strformat("%zu", s.node_count),
                   strformat("%zu", s.compute_layer_count),
                   strformat("%.4f", r.search_seconds),
                   strformat("%u", r.remap_stats.attempts),
                   strformat("%.1f", us_per_probe),
                   format_percent(1.0 - r.latency_vs_baseline(), 1)});
  }
  std::cout << "search-time scaling on synthetic MMMT models @ Low-:\n";
  table.print(std::cout);
  std::cout << '\n';

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
