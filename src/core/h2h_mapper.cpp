// This file defines the deprecated shim itself; referencing the class here
// is the point.
#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif

#include "core/h2h_mapper.h"

namespace h2h {

H2HMapper::H2HMapper(const ModelGraph& model, const SystemConfig& sys,
                     H2HOptions options)
    : sim_(model, sys), options_(std::move(options)) {
  model.validate();
}

H2HResult H2HMapper::run() const {
  return run_passes(sim_, make_default_pipeline(options_));
}

}  // namespace h2h
