// Incremental schedule maintenance.
//
// The paper stresses that after a locality or remapping change "we only
// update a node's direct successor neighbours without traversing the entire
// graph". This class keeps per-accelerator FIFO queues and per-layer timing,
// and re-times only the affected cone: a worklist ordered by execution
// sequence propagates through graph successors and queue followers, stopping
// wherever a finish time is unchanged.
//
// Probe/undo: the step-4 remapping loop evaluates hundreds of candidate
// moves per pass. Instead of deep-copying the schedule per candidate, an
// apply/undo journal records every touched timing and queue move while open
// (begin_journal) and rolls them back in O(touched) (rollback_journal). The
// journal buffers, the retime heap, and the dedup stamps are all reused
// members, so steady-state candidate evaluation allocates nothing here.
//
// Equivalence with Simulator::simulate is asserted in tests; the ablation
// bench bench_ablation_incremental measures the speedup.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "system/simulator.h"

namespace h2h {

class IncrementalSchedule {
 public:
  explicit IncrementalSchedule(const Simulator& sim) noexcept : sim_(&sim) {}

  /// Full (re)build for a complete mapping: O(V + E). Not allowed while a
  /// journal is open.
  void reset(const Mapping& m, const LocalityPlan& plan);

  /// The plan changed the transfer components of `dirty` layers (pins or
  /// fusion flags); accelerator placement is unchanged. Re-times the
  /// affected cone only.
  void refresh_components(const Mapping& m, const LocalityPlan& plan,
                          std::span<const LayerId> dirty);

  /// `node` was re-assigned (Mapping::reassign already applied) from
  /// `old_acc` to its new accelerator. Moves it between the FIFO queues,
  /// re-reads the transfer components of every layer on both accelerators
  /// from `plan` (pins and fusion may have been redistributed there), and
  /// re-times the affected cone.
  void apply_remap(const Mapping& m, const LocalityPlan& plan, LayerId node,
                   AccId old_acc);

  /// Targeted variant for the step-4 probe loop: `dirty` lists exactly the
  /// layers whose transfer components may have changed (typically
  /// LocalityPlan::journal_touched_layers). Only those components are
  /// re-read; the displaced queue followers are re-timed regardless. The
  /// moved node is always refreshed and need not appear in `dirty`.
  void apply_remap(const Mapping& m, const LocalityPlan& plan, LayerId node,
                   AccId old_acc, std::span<const LayerId> dirty);

  /// Candidate evaluation without mutating the schedule: returns the
  /// makespan apply_remap(m, plan, node, old_acc, dirty) would produce.
  /// `m`/`plan` already hold the probed move (their own journals handle the
  /// rollback); the committed timings and queues here stay untouched — new
  /// times go to an epoch-stamped overlay, and the moved node's queue
  /// placement is resolved by O(1) effective-neighbour adjustments instead
  /// of list surgery. The sweep mirrors retime() visit for visit, so the
  /// returned makespan is bit-identical to applying and reading latency();
  /// a rejected candidate then costs no schedule journal, no queue moves,
  /// and no rollback (the step-4 loop's common case).
  [[nodiscard]] double probe_remap(const Mapping& m, const LocalityPlan& plan,
                                   LayerId node, AccId old_acc,
                                   std::span<const LayerId> dirty);

  /// Energy of the overlay state left by the last probe_remap (same
  /// accumulation order as energy(), overlay-patched timings). Valid until
  /// the next probe_remap/apply/reset.
  [[nodiscard]] EnergyBreakdown probe_energy(const Mapping& m) const;

  /// Start recording timing and queue changes. One journal at a time.
  void begin_journal();
  /// Undo every change since begin_journal — saved timings restored, queue
  /// moves reversed — and close the journal. O(touched). The retime work
  /// counter is not rolled back (it measures work performed).
  void rollback_journal();
  /// Keep the changes and close the journal.
  void commit_journal();
  [[nodiscard]] bool journal_open() const noexcept { return journaling_; }

  /// Current makespan. Finish times are monotone along each FIFO queue, so
  /// this reads each queue's last element: O(accelerators), which keeps the
  /// per-probe metric read off the O(V) path.
  [[nodiscard]] double latency() const noexcept;
  [[nodiscard]] const LayerTiming& timing(LayerId id) const {
    H2H_EXPECTS(id.value < timings_.size());
    return timings_[id.value];
  }

  /// Aggregate into a full ScheduleResult (energy, ratios): O(V).
  [[nodiscard]] ScheduleResult result(const Mapping& m) const;

  /// Energy alone, without materializing the O(V) timings copy a full
  /// ScheduleResult carries: the allocation-free probe path for
  /// energy-aware objectives.
  [[nodiscard]] EnergyBreakdown energy(const Mapping& m) const;

  /// Number of node re-timings performed since construction (for the
  /// ablation bench's work accounting).
  [[nodiscard]] std::uint64_t retime_count() const noexcept { return retimes_; }

  /// Cone filter (off by default): when a visited node's finish moves from
  /// old_f to new_f, a consumer whose current start s satisfies
  /// old_f < s && new_f <= s is provably unaffected (the producer was not
  /// its binding contributor before and cannot become it now) and is not
  /// enqueued. Final timings are bit-identical either way — only the visit
  /// count drops (property-tested). Measured on the zoo probe workloads the
  /// plain sweep's unchanged-start stop already terminates 99.7% of cones at
  /// the first unaffected node, so the per-edge start reads cost more than
  /// the ~1% of visits they avoid (bench_ablation_remap_probe) — the filter
  /// exists for fan-out-heavy graphs where a producer feeds many consumers
  /// whose starts sit well past its finish.
  void set_cone_filter(bool on) noexcept { cone_filter_ = on; }

 private:
  void save_timing(LayerId id);
  /// Journaled queue surgery; returns the old queue's displaced follower.
  LayerId relocate(const Mapping& m, LayerId node, AccId old_acc);
  void refresh_one(const Mapping& m, const LocalityPlan& plan, LayerId id);
  void begin_retime();
  void enqueue(LayerId id);
  void retime();
  [[nodiscard]] LayerId queue_prev(LayerId id) const;
  [[nodiscard]] LayerId queue_next(LayerId id) const;

  // Overlay-probe internals (see probe_remap). cur() is the probe's view of
  // a timing: the overlay entry when this epoch touched it, the committed
  // one otherwise. eff_queue_prev/next resolve FIFO neighbours as if the
  // probed node had been moved, without editing the queues.
  [[nodiscard]] const LayerTiming& cur(LayerId id) const {
    return ov_stamp_[id.value] == probe_epoch_ ? ov_timings_[id.value]
                                               : timings_[id.value];
  }
  [[nodiscard]] LayerTiming& overlay(LayerId id);
  [[nodiscard]] LayerId eff_queue_prev(LayerId id) const;
  [[nodiscard]] LayerId eff_queue_next(LayerId id) const;
  void probe_refresh(const Mapping& m, const LocalityPlan& plan, LayerId id);
  void probe_retime();

  const Simulator* sim_;
  std::vector<LayerTiming> timings_;
  std::vector<std::vector<LayerId>> queues_;  // per accelerator, seq-sorted
  std::vector<std::uint32_t> pos_;            // node -> index in its queue
  std::vector<AccId> acc_;                    // node -> accelerator (cache)
  std::vector<std::uint32_t> seq_;            // node -> seq (cache; immutable)
  std::vector<LayerId> by_seq_;               // seq -> node (seqs are dense)
  std::uint64_t retimes_ = 0;

  // Reusable retime worklist. Processing is a monotone forward sweep over
  // execution sequence: a node only ever enqueues graph successors and its
  // queue follower, both with strictly larger seq, so pending membership is
  // a seq-indexed stamp array walked from the smallest seeded seq — a store
  // per enqueue and a load per visit, no heap. Visit order (ascending seq)
  // is exactly what the min-heap produced, so results are bit-identical.
  // The stamps also dedup per-batch component refreshes without an O(V)
  // clear per probe.
  std::vector<std::uint32_t> pending_stamp_;  // keyed by seq
  std::vector<std::uint32_t> refreshed_stamp_;
  std::uint32_t stamp_ = 0;
  std::uint32_t sweep_min_ = 0;  // seq range holding pending work
  std::uint32_t sweep_max_ = 0;
  bool cone_filter_ = false;

  // Probe overlay (see probe_remap): shadow timings activated per node by an
  // epoch stamp, plus the probed move's parameters. probe_ins_ is the index
  // the node would take in the destination queue.
  std::vector<LayerTiming> ov_timings_;
  std::vector<std::uint32_t> ov_stamp_;
  std::uint32_t probe_epoch_ = 0;
  LayerId probe_node_;
  AccId probe_new_acc_;
  std::uint32_t probe_ins_ = 0;
  LayerId probe_old_prev_;
  LayerId probe_old_next_;

  // Journal. Timings are saved once per (journal, node) via an epoch stamp;
  // queue moves record enough to reverse the surgery exactly.
  struct QueueMove {
    LayerId node;
    AccId old_acc;
    std::uint32_t old_pos;
    AccId new_acc;
  };
  bool journaling_ = false;
  std::vector<std::pair<LayerId, LayerTiming>> journal_timings_;
  std::vector<QueueMove> journal_moves_;
  std::vector<std::uint32_t> saved_stamp_;
  std::uint32_t save_epoch_ = 0;
};

}  // namespace h2h
