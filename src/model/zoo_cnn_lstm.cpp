// CNN-LSTM (Li et al., 2017): concurrent activity recognition from video
// and wearable-sensor streams. The video path is a small ConvNet whose
// feature map is consumed row-wise by an LSTM; the sensor path is a stacked
// LSTM over 128 IMU timesteps. Pooled temporal states are fused for two
// concurrent task heads. Under 30 layers, LSTM-heavy: the paper's most
// communication-bound model class.
//
// Modality tags: 1 = video, 2 = IMU sensors, 0 = fusion.
#include "model/blocks.h"
#include "model/zoo.h"

namespace h2h {

ModelGraph make_cnn_lstm() {
  ModelBuilder b("CNN-LSTM");

  b.set_modality(1);
  const LayerId video = b.input("video", 3, 112, 112);
  const LayerId c1 = b.conv("vid.conv1", video, 64, 3, 2);
  const LayerId p1 = b.pool("vid.pool1", c1, 3, 2);
  const LayerId c2 = b.conv("vid.conv2", p1, 128, 3, 1);
  const LayerId c3 = b.conv("vid.conv3", c2, 256, 3, 2);
  const LayerId c4 = b.conv("vid.conv4", c3, 512, 3, 2);
  // Feature rows as timesteps: 7 steps of 512x7 features.
  const LayerId vlstm = b.lstm("vid.lstm", c4, 560, 1, 7);
  const LayerId vlast = b.global_pool("vid.last", vlstm);

  b.set_modality(2);
  const LayerId imu = b.input_seq("imu", 128, 9);
  const LayerId slstm = b.lstm("imu.lstm", imu, 512, 2);
  const LayerId slast = b.global_pool("imu.last", slstm);

  b.set_modality(0);
  const LayerId cat = b.concat("fuse.concat", std::array{vlast, slast});
  const LayerId fc1 = b.fc("fuse.fc1", cat, 512);
  (void)b.fc("task.activity", fc1, 64);
  (void)b.fc("task.intensity", fc1, 64);

  return std::move(b).build();
}

}  // namespace h2h
