// Failure injection for tests, benches, and chaos runs (DESIGN.md §12).
//
// A FaultInjector holds an ordered schedule of FaultEvents to feed a
// RepairEngine. Scripted schedules pin specific scenarios ("kill acc 3, then
// degrade acc 1's links to a quarter"); the seeded-random generator produces
// physically consistent chaos sequences — it tracks which accelerators are
// alive/degraded/derated so it never kills a dead device, never restores a
// healthy link, and never drops the system below a configurable survivor
// floor. Same seed, same schedule, on every platform (util/rng.h).
#pragma once

#include <cstdint>
#include <vector>

#include "repair/fault.h"
#include "util/contracts.h"

namespace h2h {

/// Knobs of the seeded-random chaos schedules.
struct FaultScheduleOptions {
  /// Never emit an AccLost that would leave fewer available accelerators.
  std::size_t min_alive = 2;
  /// Relative draw weights of the event categories (renormalized over the
  /// categories that are feasible in the current injected state).
  double w_lose = 0.30;
  double w_return = 0.20;
  double w_degrade = 0.20;
  double w_restore = 0.10;
  double w_derate = 0.20;
  /// Degrade/derate scales are drawn uniformly from [min_scale, max_scale].
  double min_scale = 0.15;
  double max_scale = 0.85;
};

class FaultInjector {
 public:
  /// A scripted schedule, replayed in order.
  explicit FaultInjector(std::vector<FaultEvent> script)
      : events_(std::move(script)) {}

  /// A seeded-random schedule of `count` events over `acc_count`
  /// accelerators, consistent with an initially healthy system.
  [[nodiscard]] static FaultInjector random(
      std::uint64_t seed, std::size_t count, std::size_t acc_count,
      const FaultScheduleOptions& options = {});

  [[nodiscard]] const std::vector<FaultEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] bool done() const noexcept { return next_ >= events_.size(); }
  /// The next scheduled event; advances the cursor.
  [[nodiscard]] const FaultEvent& next() {
    H2H_EXPECTS(!done());
    return events_[next_++];
  }
  void rewind() noexcept { next_ = 0; }

 private:
  std::vector<FaultEvent> events_;
  std::size_t next_ = 0;
};

}  // namespace h2h
