#include "serve/server.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <istream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "serve/protocol.h"
#include "util/error.h"
#include "util/str.h"

#if defined(__unix__) || defined(__APPLE__)
#define H2H_SERVE_HAS_TCP 1
#include <arpa/inet.h>
#include <csignal>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#else
#define H2H_SERVE_HAS_TCP 0
#endif

namespace h2h::serve {
namespace {

std::atomic<bool> g_shutdown{false};

[[nodiscard]] bool shutdown_requested() noexcept {
  return g_shutdown.load(std::memory_order_relaxed);
}

#if H2H_SERVE_HAS_TCP

void on_shutdown_signal(int) noexcept {
  g_shutdown.store(true, std::memory_order_relaxed);
}

/// Installs SIGINT/SIGTERM handlers for the lifetime of a serve loop and
/// restores the previous actions on exit. Deliberately no SA_RESTART: the
/// signal must interrupt the blocking read (EINTR -> stream EOF) so the
/// reader stops accepting while the drain path finishes in-flight work.
class SignalGuard {
 public:
  explicit SignalGuard(bool enable) : enabled_(enable) {
    if (!enabled_) return;
    g_shutdown.store(false, std::memory_order_relaxed);
    struct sigaction sa = {};
    sa.sa_handler = on_shutdown_signal;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    ::sigaction(SIGINT, &sa, &old_int_);
    ::sigaction(SIGTERM, &sa, &old_term_);
  }
  ~SignalGuard() {
    if (!enabled_) return;
    ::sigaction(SIGINT, &old_int_, nullptr);
    ::sigaction(SIGTERM, &old_term_, nullptr);
  }
  SignalGuard(const SignalGuard&) = delete;
  SignalGuard& operator=(const SignalGuard&) = delete;

 private:
  bool enabled_;
  struct sigaction old_int_ = {};
  struct sigaction old_term_ = {};
};

#else

/// Non-POSIX builds have no signals to guard; handle_signals is a no-op.
class SignalGuard {
 public:
  explicit SignalGuard(bool) {}
};

#endif  // H2H_SERVE_HAS_TCP

/// Everything one request needs besides the line itself: the shared Planner
/// and the name sources write_response reads. Lives across connections so a
/// reconnecting client still hits warm sessions.
class RequestProcessor {
 public:
  explicit RequestProcessor(const PlannerOptions& planner_options)
      : planner_(planner_options),
        name_sys_(SystemConfig::standard(0.5e9)) {}

  struct Outcome {
    std::string line;
    bool ok = false;
  };

  [[nodiscard]] Outcome process(const std::string& line) {
    std::variant<WireRequest, WireTenantsRequest, WireRepairRequest,
                 WireError>
        parsed = parse_any_request(line);
    if (const WireError* err = std::get_if<WireError>(&parsed)) {
      return {write_error(*err), false};
    }
    if (const WireTenantsRequest* treq =
            std::get_if<WireTenantsRequest>(&parsed)) {
      return process_tenants(*treq);
    }
    if (const WireRepairRequest* rreq =
            std::get_if<WireRepairRequest>(&parsed)) {
      return process_repair(*rreq);
    }
    const WireRequest& req = std::get<WireRequest>(parsed);
    try {
      const PlanResponse response = planner_.plan(to_plan_request(req));
      record_prior(req, response);
      return {write_response(req, response, model_for(req.model), name_sys_),
              true};
    } catch (const std::exception& e) {
      // Explicit error responses instead of exceptions crossing the wire:
      // an infeasible request must not take the loop down.
      return {write_error({ErrorCode::PlanFailed, e.what(), req.id}), false};
    }
  }

 private:
  [[nodiscard]] Outcome process_tenants(const WireTenantsRequest& req) {
    try {
      CoMapSession& session = session_for(req.bw_gbps);
      const TenantSet set(req.tenants);
      CoMapOptions opts;
      opts.plan = req.options;
      opts.max_rounds = req.max_rounds;
      opts.steal_round = req.steal_round;
      const CoMapResult result = session.comapper.co_map(set, opts);
      if (req.require_slos && !result.all_slos_met) {
        std::string missing;
        for (const TenantOutcome& t : result.tenants) {
          if (t.met) continue;
          if (!missing.empty()) missing += ", ";
          missing += strformat("%s (%.6g s > %.6g s)", t.name.c_str(),
                               t.latency_s, t.slo_s);
        }
        return {write_error({ErrorCode::SloViolated,
                             strformat("co-mapping misses SLOs: %s",
                                       missing.c_str()),
                             req.id}),
                false};
      }
      return {write_tenants_response(req, result, name_sys_), true};
    } catch (const CapabilityError& e) {
      return {write_error({ErrorCode::InfeasibleCapability, e.what(),
                           req.id}),
              false};
    } catch (const ConfigError& e) {
      // Request-content problems the parser cannot see (e.g. union
      // dtype/batch disagreement) answer as bad_field, not plan_failed.
      return {write_error({ErrorCode::BadField, e.what(), req.id}), false};
    } catch (const std::exception& e) {
      return {write_error({ErrorCode::PlanFailed, e.what(), req.id}), false};
    }
  }

  /// The repair session key: which live plan a "repair" request repairs.
  /// Mirrors the Planner's session key components (model, batch, topology).
  struct RepairKey {
    ZooModel model = ZooModel::MoCap;
    std::uint32_t batch = 0;
    double bw_gbps = 0;
    std::uint64_t links_fp = 0;  // params fingerprint; 0 = scalar bw
    [[nodiscard]] friend bool operator<(const RepairKey& a,
                                        const RepairKey& b) {
      return std::tie(a.model, a.batch, a.bw_gbps, a.links_fp) <
             std::tie(b.model, b.batch, b.bw_gbps, b.links_fp);
    }
  };

  [[nodiscard]] static RepairKey repair_key(
      ZooModel model, std::uint32_t batch, double bw_gbps,
      const std::optional<Interconnect>& links) {
    return RepairKey{model, batch == 0 ? 1u : batch, bw_gbps,
                     links ? links->params_fingerprint() : 0};
  }

  /// The most recent successful plan for a key — what the first repair of a
  /// session adopts. Kept separate from the live RepairSession so a fresh
  /// plan request can reset a compounded repair history.
  struct PriorPlan {
    Mapping mapping;
    LocalityPlan plan;
  };

  /// A live repair session: an owned model copy (at the session batch) and
  /// the engine compounding fault events against it.
  struct RepairSession {
    ModelGraph model;
    RepairEngine engine;
    RepairSession(ModelGraph m, SystemConfig sys, RepairOptions opts)
        : model(std::move(m)),
          engine(model, std::move(sys), std::move(opts)) {}
  };

  void record_prior(const WireRequest& req, const PlanResponse& response) {
    const RepairKey key =
        repair_key(req.model, req.batch, req.bw_gbps, req.links);
    const std::scoped_lock lock(repair_mu_);
    priors_.insert_or_assign(key,
                             PriorPlan{response.mapping, response.plan});
    // A new plan supersedes any compounded repair state for the key.
    repairs_.erase(key);
  }

  [[nodiscard]] Outcome process_repair(const WireRepairRequest& req) {
    if (req.event.acc.value >= name_sys_.accelerator_count()) {
      return {write_error({ErrorCode::UnknownAcc,
                           strformat("repair.acc: no accelerator %u (catalog "
                                     "has %zu)",
                                     req.event.acc.value,
                                     name_sys_.accelerator_count()),
                           req.id}),
              false};
    }
    const RepairKey key =
        repair_key(req.model, req.batch, req.bw_gbps, req.links);
    // One lock across the whole repair: sessions compound state, so repairs
    // serialize (plans and co-maps still run concurrently).
    const std::scoped_lock lock(repair_mu_);
    RepairOptions opts;
    opts.plan = req.options;
    opts.fallback_ratio = req.fallback_ratio;
    std::unique_ptr<RepairSession>& session = repairs_[key];
    if (session == nullptr) {
      const auto prior = priors_.find(key);
      if (prior == priors_.end()) {
        repairs_.erase(key);
        return {write_error({ErrorCode::NoPriorPlan,
                             "repair: no prior plan for this model/topology/"
                             "batch on this server — send a plan request "
                             "first",
                             req.id}),
                false};
      }
      ModelGraph model = make_model(req.model);
      if (req.batch != 0) model.set_batch(req.batch);
      SystemConfig sys = req.links
                             ? SystemConfig::standard(*req.links)
                             : SystemConfig::standard(req.bw_gbps * 1e9);
      session = std::make_unique<RepairSession>(std::move(model),
                                                std::move(sys), opts);
      session->engine.adopt(prior->second.mapping, prior->second.plan);
    } else {
      session->engine.set_options(opts);
    }
    try {
      const RepairResult result = session->engine.apply(req.event);
      if (result.outcome == RepairOutcome::Infeasible) {
        return {write_error({ErrorCode::InfeasibleRepair,
                             result.infeasible_reason, req.id}),
                false};
      }
      return {write_repair_response(req, result, session->model, name_sys_),
              true};
    } catch (const ConfigError& e) {
      // Contradictory transitions (losing a lost accelerator, returning a
      // live one) are request-content errors.
      return {write_error({ErrorCode::BadField, e.what(), req.id}), false};
    } catch (const std::exception& e) {
      return {write_error({ErrorCode::PlanFailed, e.what(), req.id}), false};
    }
  }

  /// Graphs are only needed for layer names in responses; one cached copy
  /// per zoo model serves every request (read-only once built).
  [[nodiscard]] const ModelGraph& model_for(ZooModel id) {
    const std::scoped_lock lock(models_mu_);
    std::unique_ptr<const ModelGraph>& slot = models_[id];
    if (slot == nullptr) {
      slot = std::make_unique<const ModelGraph>(make_model(id));
    }
    return *slot;
  }

  /// One CoMapper per requested bandwidth, kept warm across requests and
  /// connections (the member system must outlive the borrowing CoMapper,
  /// hence the pairing). co_map itself is thread-safe; the lock only
  /// guards session creation.
  struct CoMapSession {
    SystemConfig sys;
    CoMapper comapper;
    explicit CoMapSession(double bw_gbps)
        : sys(SystemConfig::standard(bw_gbps * 1e9)), comapper(sys) {}
  };

  [[nodiscard]] CoMapSession& session_for(double bw_gbps) {
    const std::scoped_lock lock(comap_mu_);
    std::unique_ptr<CoMapSession>& slot = comap_[bw_gbps];
    if (slot == nullptr) slot = std::make_unique<CoMapSession>(bw_gbps);
    return *slot;
  }

  Planner planner_;
  SystemConfig name_sys_;  // accelerator names only; BW value irrelevant
  std::mutex models_mu_;
  std::map<ZooModel, std::unique_ptr<const ModelGraph>> models_;
  std::mutex comap_mu_;
  std::map<double, std::unique_ptr<CoMapSession>> comap_;
  std::mutex repair_mu_;
  std::map<RepairKey, PriorPlan> priors_;
  std::map<RepairKey, std::unique_ptr<RepairSession>> repairs_;
};

/// Reorders completed responses back into request order. Whichever thread
/// completes the next-expected sequence number drains everything
/// consecutive, so output needs no dedicated writer thread.
class OrderedEmitter {
 public:
  explicit OrderedEmitter(std::ostream& out) : out_(out) {}

  void emit(std::uint64_t seq, std::string line, bool ok) {
    const std::scoped_lock lock(mu_);
    (ok ? stats_.ok : stats_.errors) += 1;
    ready_.emplace(seq, std::move(line));
    while (!ready_.empty() && ready_.begin()->first == next_) {
      out_ << ready_.begin()->second << '\n';
      out_.flush();
      ready_.erase(ready_.begin());
      ++next_;
    }
  }

  [[nodiscard]] ServeStats stats() const {
    const std::scoped_lock lock(mu_);
    return stats_;
  }

 private:
  std::ostream& out_;
  mutable std::mutex mu_;
  std::map<std::uint64_t, std::string> ready_;
  std::uint64_t next_ = 0;
  ServeStats stats_;
};

enum class LineStatus { Ok, Oversized, Eof };

/// getline with a byte cap: oversized lines are consumed to their newline
/// but truncated in `line`, and reported so the caller can answer with a
/// proper error instead of parsing the truncation.
[[nodiscard]] LineStatus read_line(std::istream& in, std::string& line,
                                   std::size_t cap) {
  line.clear();
  bool over = false;
  bool any = false;
  for (int c = in.get(); c != std::istream::traits_type::eof();
       c = in.get()) {
    any = true;
    if (c == '\n') return over ? LineStatus::Oversized : LineStatus::Ok;
    if (line.size() < cap) {
      line += static_cast<char>(c);
    } else {
      over = true;
    }
  }
  if (!any) return LineStatus::Eof;
  return over ? LineStatus::Oversized : LineStatus::Ok;
}

[[nodiscard]] std::string oversized_error(std::size_t cap) {
  return write_error({ErrorCode::ParseError,
                      strformat("request line exceeds %zu bytes", cap),
                      {}});
}

ServeStats run_loop(RequestProcessor& processor, std::istream& in,
                    std::ostream& out, const ServeOptions& options) {
  OrderedEmitter emitter(out);
  ServeStats totals;
  std::string line;
  std::uint64_t seq = 0;

  // A shutdown signal interrupts the blocking read, so the stream reports
  // EOF; a line the signal cut in half must be dropped, not answered as a
  // parse error. (A genuine final line without '\n' is still served when
  // no signal fired.)
  const auto cut_by_signal = [&in, &options](LineStatus status) {
    return status != LineStatus::Eof && options.handle_signals &&
           shutdown_requested() && in.eof();
  };

  if (options.threads <= 1) {
    for (;;) {
      const LineStatus status = read_line(in, line, options.max_line_bytes);
      if (status == LineStatus::Eof || cut_by_signal(status)) break;
      if (status == LineStatus::Ok && line.empty()) continue;
      ++totals.requests;
      if (status == LineStatus::Oversized) {
        emitter.emit(seq++, oversized_error(options.max_line_bytes), false);
        continue;
      }
      RequestProcessor::Outcome o = processor.process(line);
      emitter.emit(seq++, std::move(o.line), o.ok);
    }
    const ServeStats s = emitter.stats();
    totals.ok = s.ok;
    totals.errors = s.errors;
    return totals;
  }

  std::mutex mu;
  std::condition_variable work_cv;   // workers wait for lines
  std::condition_variable space_cv;  // reader waits for inbox room
  std::deque<std::pair<std::uint64_t, std::string>> inbox;
  bool done = false;
  const std::size_t inbox_cap = options.threads * 8;

  std::vector<std::thread> workers;
  workers.reserve(options.threads);
  for (std::size_t i = 0; i < options.threads; ++i) {
    workers.emplace_back([&] {
      for (;;) {
        std::unique_lock lock(mu);
        work_cv.wait(lock, [&] { return done || !inbox.empty(); });
        if (inbox.empty()) return;
        const std::uint64_t my_seq = inbox.front().first;
        const std::string my_line = std::move(inbox.front().second);
        inbox.pop_front();
        space_cv.notify_one();
        lock.unlock();
        RequestProcessor::Outcome o = processor.process(my_line);
        emitter.emit(my_seq, std::move(o.line), o.ok);
      }
    });
  }

  for (;;) {
    const LineStatus status = read_line(in, line, options.max_line_bytes);
    if (status == LineStatus::Eof || cut_by_signal(status)) break;
    if (status == LineStatus::Ok && line.empty()) continue;
    ++totals.requests;
    if (status == LineStatus::Oversized) {
      emitter.emit(seq++, oversized_error(options.max_line_bytes), false);
      continue;
    }
    std::unique_lock lock(mu);
    space_cv.wait(lock, [&] { return inbox.size() < inbox_cap; });
    inbox.emplace_back(seq++, line);
    work_cv.notify_one();
  }
  {
    const std::scoped_lock lock(mu);
    done = true;
  }
  work_cv.notify_all();
  for (std::thread& t : workers) t.join();

  const ServeStats s = emitter.stats();
  totals.ok = s.ok;
  totals.errors = s.errors;
  return totals;
}

#if H2H_SERVE_HAS_TCP

/// Buffered std::streambuf over a connected socket; serves as both the get
/// and put area so one buffer backs the connection's istream and ostream.
///
/// A client that disconnects mid-response must not kill the server: writes
/// go through send(MSG_NOSIGNAL) where available so a dead peer yields
/// EPIPE instead of a process-fatal SIGPIPE, and any write error (EPIPE,
/// ECONNRESET) reports cleanly as a stream failure — the serve loop then
/// finishes the connection and accepts the next one. Platforms without
/// MSG_NOSIGNAL (macOS) get the same guarantee from the SO_NOSIGPIPE
/// socket option, set at accept time.
class FdStreamBuf : public std::streambuf {
 public:
  explicit FdStreamBuf(int fd) : fd_(fd) {
    setp(out_, out_ + sizeof(out_) - 1);
  }
  ~FdStreamBuf() override { sync(); }

 protected:
  int_type underflow() override {
    const ssize_t n = ::read(fd_, in_, sizeof(in_));
    if (n <= 0) return traits_type::eof();
    setg(in_, in_, in_ + n);
    return traits_type::to_int_type(in_[0]);
  }

  int_type overflow(int_type ch) override {
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
      *pptr() = traits_type::to_char_type(ch);
      pbump(1);
    }
    return flush_out() == 0 ? traits_type::not_eof(ch) : traits_type::eof();
  }

  int sync() override { return flush_out(); }

 private:
  int flush_out() {
    const std::size_t n = static_cast<std::size_t>(pptr() - pbase());
    std::size_t off = 0;
    while (off < n) {
#if defined(MSG_NOSIGNAL)
      const ssize_t w = ::send(fd_, pbase() + off, n - off, MSG_NOSIGNAL);
#else
      const ssize_t w = ::write(fd_, pbase() + off, n - off);
#endif
      if (w < 0 && errno == EINTR) continue;
      if (w <= 0) {
        // Drop the unsendable bytes: a dead peer never drains them, and
        // keeping them would fail every later flush (including the one in
        // the destructor).
        pbump(-static_cast<int>(n));
        return -1;
      }
      off += static_cast<std::size_t>(w);
    }
    pbump(-static_cast<int>(n));
    return 0;
  }

  int fd_;
  char in_[4096] = {};
  char out_[4096] = {};
};

/// Opt a just-accepted connection out of SIGPIPE where MSG_NOSIGNAL is not
/// available; no-op elsewhere (the send flag already covers it).
void suppress_sigpipe(int fd) {
#if !defined(MSG_NOSIGNAL) && defined(SO_NOSIGPIPE)
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_NOSIGPIPE, &one, sizeof(one));
#else
  (void)fd;
#endif
}

#endif  // H2H_SERVE_HAS_TCP

}  // namespace

ServeStats serve_jsonl(std::istream& in, std::ostream& out,
                       const ServeOptions& options) {
  const SignalGuard signals(options.handle_signals);
  RequestProcessor processor(options.planner);
  return run_loop(processor, in, out, options);
}

int serve_tcp(const TcpOptions& options, std::ostream& diag,
              TcpStats* stats) {
  TcpStats local;
  if (stats == nullptr) stats = &local;
  *stats = {};
#if H2H_SERVE_HAS_TCP
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    diag << "h2h-serve: socket: " << std::strerror(errno) << '\n';
    return 1;
  }
  const int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options.port);
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd, 16) != 0) {
    diag << "h2h-serve: bind/listen: " << std::strerror(errno) << '\n';
    ::close(listen_fd);
    return 1;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  diag << "h2h-serve listening on 127.0.0.1:" << ntohs(bound.sin_port)
       << std::endl;

  // One processor across connections: a client that reconnects keeps its
  // warm sessions.
  const SignalGuard signals(options.serve.handle_signals);
  RequestProcessor processor(options.serve.planner);
  std::uint32_t accept_failures = 0;  // consecutive transient failures
  for (std::uint64_t served = 0;
       options.max_connections == 0 || served < options.max_connections;
       ++served) {
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) {
        // A shutdown signal interrupts accept; anything else (e.g. a
        // profiler attaching) just retries.
        if (options.serve.handle_signals && shutdown_requested()) break;
        --served;
        continue;
      }
      // Transient failures — the peer aborted its connect, or the process
      // is briefly out of descriptors — back off and retry instead of
      // taking the listener down. Persistent failure still exits 1.
      if ((errno == ECONNABORTED || errno == EMFILE || errno == ENFILE) &&
          accept_failures < options.max_accept_retries) {
        ++accept_failures;
        ++stats->accept_retries;
        std::this_thread::sleep_for(std::chrono::milliseconds(
            std::int64_t{1} << std::min<std::uint32_t>(accept_failures, 8)));
        --served;
        continue;
      }
      diag << "h2h-serve: accept: " << std::strerror(errno) << '\n';
      ::close(listen_fd);
      return 1;
    }
    accept_failures = 0;
    suppress_sigpipe(conn);
    FdStreamBuf buf(conn);
    std::istream conn_in(&buf);
    std::ostream conn_out(&buf);
    const ServeStats conn_stats =
        run_loop(processor, conn_in, conn_out, options.serve);
    conn_out.flush();
    ::close(conn);
    ++stats->connections;
    diag << "h2h-serve: connection done (" << conn_stats.requests
         << " requests, " << conn_stats.errors << " errors)" << std::endl;
    if (options.serve.handle_signals && shutdown_requested()) break;
  }
  ::close(listen_fd);
  diag << "h2h-serve: served " << stats->connections << " connection(s), "
       << stats->accept_retries << " accept retr"
       << (stats->accept_retries == 1 ? "y" : "ies") << std::endl;
  if (options.serve.handle_signals && shutdown_requested()) {
    diag << "h2h-serve: shutting down on signal" << std::endl;
  }
  return 0;
#else
  (void)options;
  diag << "h2h-serve: TCP serving is not supported on this platform\n";
  return 1;
#endif
}

}  // namespace h2h::serve
