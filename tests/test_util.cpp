#include <gtest/gtest.h>

#include <sstream>

#include "util/contracts.h"
#include "util/csv.h"
#include "util/error.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/str.h"
#include "util/table.h"
#include "util/units.h"

namespace h2h {
namespace {

TEST(Contracts, ViolationThrowsWithLocation) {
  try {
    H2H_EXPECTS(1 == 2);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("precondition"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("test_util.cpp"), std::string::npos);
  }
}

TEST(Contracts, PassingCheckDoesNotThrow) {
  EXPECT_NO_THROW(H2H_EXPECTS(true));
  EXPECT_NO_THROW(H2H_ENSURES(2 + 2 == 4));
  EXPECT_NO_THROW(H2H_ASSERT(!false));
}

TEST(Units, BinaryMemoryAndDecimalBandwidth) {
  EXPECT_EQ(kib(1), 1024u);
  EXPECT_EQ(mib(1), 1024u * 1024u);
  EXPECT_EQ(gib(2), 2ull * 1024 * 1024 * 1024);
  EXPECT_DOUBLE_EQ(gbps(1.25), 1.25e9);
  EXPECT_DOUBLE_EQ(mbps(125), 0.125e9);
  EXPECT_DOUBLE_EQ(mhz(200), 2e8);
  EXPECT_DOUBLE_EQ(picojoules(1000), 1e-9);
  EXPECT_DOUBLE_EQ(nanojoules(1), 1e-9);
}

TEST(Str, Strformat) {
  EXPECT_EQ(strformat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(strformat("%.2f", 1.239), "1.24");
  // Long outputs are sized correctly (vsnprintf two-pass).
  const std::string big = strformat("%0512d", 7);
  EXPECT_EQ(big.size(), 512u);
  EXPECT_EQ(big.back(), '7');
}

TEST(Str, HumanBytes) {
  EXPECT_EQ(human_bytes(512), "512 B");
  EXPECT_EQ(human_bytes(kib(2)), "2.00 KiB");
  EXPECT_EQ(human_bytes(mib(1.5)), "1.50 MiB");
  EXPECT_EQ(human_bytes(gib(8)), "8.00 GiB");
}

TEST(Str, HumanSeconds) {
  EXPECT_EQ(human_seconds(2.5), "2.500 s");
  EXPECT_EQ(human_seconds(12e-3), "12.000 ms");
  EXPECT_EQ(human_seconds(3.25e-6), "3.250 us");
  EXPECT_EQ(human_seconds(5e-10), "0.500 ns");
}

TEST(Str, PercentAndJoin) {
  EXPECT_EQ(format_percent(0.6584), "65.84%");
  EXPECT_EQ(format_percent(1.0, 0), "100%");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_TRUE(starts_with("vlocnet@low", "vlocnet"));
  EXPECT_FALSE(starts_with("vl", "vlocnet"));
}

TEST(Csv, EscapesSpecialFields) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"x", "y"});
  csv.row({"1", "two,three"});
  EXPECT_EQ(out.str(), "x,y\n1,\"two,three\"\n");
}

TEST(Table, AlignsColumns) {
  TextTable t({"name", "value"}, {TextTable::Align::Left});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "12345"});
  std::ostringstream out;
  t.print(out);
  const std::string s = out.str();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
  EXPECT_NE(s.find("long-name"), std::string::npos);
  EXPECT_NE(s.find("    1"), std::string::npos);  // right-aligned number
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, RejectsRaggedRows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
}

TEST(Rng, RangesRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double r = rng.uniform_real(0.25, 0.75);
    EXPECT_GE(r, 0.25);
    EXPECT_LT(r, 0.75);
    EXPECT_LT(rng.index(3), 3u);
  }
  EXPECT_THROW((void)rng.uniform_int(2, 1), ContractViolation);
  EXPECT_THROW((void)rng.index(0), ContractViolation);
}

TEST(Log, ThresholdFilters) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  log_debug("should not crash and not print");
  set_log_level(before);
}

}  // namespace
}  // namespace h2h
