// Graph algorithms used by the mapper: topological order (Kahn), cycle
// detection, reachability, and frontier extraction (the paper's step-1
// iteration primitive: "select all the nodes without predecessors").
#pragma once

#include <optional>
#include <vector>

#include "graph/digraph.h"

namespace h2h {

/// Kahn topological order; returns std::nullopt if the graph has a cycle.
/// Deterministic: ties are broken by ascending NodeId.
[[nodiscard]] std::optional<std::vector<NodeId>> topological_order(const Digraph& g);

[[nodiscard]] bool is_dag(const Digraph& g);

/// Nodes reachable from `roots` (inclusive), as a dense bitmap indexed by
/// NodeId::value.
[[nodiscard]] std::vector<bool> reachable_from(const Digraph& g,
                                               std::span<const NodeId> roots);

/// The mapping frontier: nodes not yet `done` whose predecessors are all
/// `done`. `done` is a dense bitmap indexed by NodeId::value.
[[nodiscard]] std::vector<NodeId> frontier(const Digraph& g,
                                           const std::vector<bool>& done);

/// Position of each node in `order`, as a dense array (node id -> rank).
[[nodiscard]] std::vector<std::uint32_t> order_ranks(const Digraph& g,
                                                     std::span<const NodeId> order);

/// Undirected connected components (used by the clustering baseline).
/// Returns a dense array node id -> component id, and the component count.
struct Components {
  std::vector<std::uint32_t> component_of;
  std::uint32_t count = 0;
};
[[nodiscard]] Components connected_components(const Digraph& g);

}  // namespace h2h
