// Plain-text serialization of mapping solutions, so a mapping computed once
// can be deployed, diffed, or re-simulated later (and so the CLI can save /
// load results). Layers are addressed by name — stable across rebuilds of
// the same model. Format (one directive per line, '#' comments):
//
//   h2h-mapping v1
//   model <model-name>
//   layer <layer-name> -> <accelerator-name> [pinned]
//   fuse <producer-name> -> <consumer-name>
//
// `layer` lines appear in execution-sequence order; replaying them in file
// order reproduces the schedule exactly.
#pragma once

#include <istream>
#include <ostream>

#include "system/mapping_state.h"

namespace h2h {

void write_mapping(std::ostream& out, const ModelGraph& model,
                   const SystemConfig& sys, const Mapping& mapping,
                   const LocalityPlan& plan);

struct LoadedMapping {
  Mapping mapping;
  LocalityPlan plan;
};

/// Parse a mapping for `model` on `sys`. Throws ConfigError on unknown
/// layer/accelerator names, duplicate assignments, missing layers, fused
/// edges that are not graph edges, or version mismatches.
[[nodiscard]] LoadedMapping read_mapping(std::istream& in,
                                         const ModelGraph& model,
                                         const SystemConfig& sys);

}  // namespace h2h
