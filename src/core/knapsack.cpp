#include "core/knapsack.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <numeric>

#include "util/contracts.h"

namespace h2h {
namespace {

void finalize(KnapsackSolution& s, std::span<const KnapsackItem> items) {
  std::sort(s.selected.begin(), s.selected.end());
  s.used = 0;
  s.value = 0;
  for (const std::uint32_t id : s.selected) {
    const auto it = std::find_if(items.begin(), items.end(),
                                 [id](const KnapsackItem& i) { return i.id == id; });
    H2H_ASSERT(it != items.end());
    s.used += it->weight;
    s.value += it->value;
  }
}

KnapsackSolution solve_dp(std::span<const KnapsackItem> items, Bytes capacity,
                          std::uint32_t max_dp_units) {
  H2H_EXPECTS(max_dp_units > 0);
  // Quantize: unit size chosen so capacity fits in max_dp_units columns.
  const Bytes unit = std::max<Bytes>(1, (capacity + max_dp_units - 1) / max_dp_units);
  const auto cap_units = static_cast<std::uint32_t>(capacity / unit);

  // Scaled item weights (rounded up => never overfills real capacity).
  std::vector<std::uint32_t> w(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    const Bytes scaled = (items[i].weight + unit - 1) / unit;
    w[i] = scaled > cap_units ? cap_units + 1  // cannot fit
                              : static_cast<std::uint32_t>(scaled);
  }

  // dp[c] = best value with capacity c; keep is a flat items x (cap+1)
  // bitset for reconstruction (one allocation, not one per item row).
  const std::size_t stride = cap_units + 1;
  std::vector<double> dp(stride, 0.0);
  std::vector<bool> keep(items.size() * stride, false);
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (items[i].weight == 0 || items[i].value <= 0) continue;  // handled below
    if (w[i] > cap_units) continue;
    for (std::uint32_t c = cap_units; c >= w[i]; --c) {
      const double candidate = dp[c - w[i]] + items[i].value;
      if (candidate > dp[c]) {
        dp[c] = candidate;
        keep[i * stride + c] = true;
      }
    }
  }

  KnapsackSolution out;
  out.selected.reserve(items.size());
  std::uint32_t c = cap_units;
  for (std::size_t i = items.size(); i-- > 0;) {
    if (items[i].weight == 0) {
      out.selected.push_back(items[i].id);  // free items always selected
    } else if (keep[i * stride + c]) {
      out.selected.push_back(items[i].id);
      c -= w[i];
    }
  }
  finalize(out, items);
  return out;
}

KnapsackSolution solve_greedy(std::span<const KnapsackItem> items, Bytes capacity) {
  std::vector<std::size_t> order(items.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double da = items[a].weight == 0
                          ? std::numeric_limits<double>::infinity()
                          : items[a].value / static_cast<double>(items[a].weight);
    const double db = items[b].weight == 0
                          ? std::numeric_limits<double>::infinity()
                          : items[b].value / static_cast<double>(items[b].weight);
    if (da != db) return da > db;
    return items[a].id < items[b].id;  // deterministic tie-break
  });
  KnapsackSolution out;
  Bytes used = 0;
  for (const std::size_t i : order) {
    if (items[i].value <= 0 && items[i].weight > 0) continue;
    if (used + items[i].weight <= capacity) {
      used += items[i].weight;
      out.selected.push_back(items[i].id);
    }
  }
  finalize(out, items);
  return out;
}

KnapsackSolution solve_brute(std::span<const KnapsackItem> items, Bytes capacity) {
  H2H_EXPECTS(items.size() <= 24);  // reference solver for tests only
  const std::uint32_t n = static_cast<std::uint32_t>(items.size());
  double best_value = -1.0;
  std::uint32_t best_mask = 0;
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    Bytes used = 0;
    double value = 0;
    bool ok = true;
    for (std::uint32_t i = 0; i < n && ok; ++i) {
      if (mask & (1u << i)) {
        used += items[i].weight;
        value += items[i].value;
        if (used > capacity) ok = false;
      }
    }
    if (ok && value > best_value) {
      best_value = value;
      best_mask = mask;
    }
  }
  KnapsackSolution out;
  for (std::uint32_t i = 0; i < n; ++i)
    if (best_mask & (1u << i)) out.selected.push_back(items[i].id);
  finalize(out, items);
  return out;
}

}  // namespace

const KnapsackSolution& KnapsackCache::solve(
    std::span<const KnapsackItem> items, Bytes capacity, KnapsackAlgo algo,
    std::uint32_t max_dp_units) {
  // Everything-fits fast path: cheaper than hashing, skip the table and
  // build the all-items solution straight into the reusable scratch (same
  // selection solve_knapsack's own fast path returns; the value sum runs in
  // item order, fine for the remap loop, which discards the value).
  Bytes total = 0;
  double value = 0;
  bool all_valuable = true;
  for (const KnapsackItem& i : items) {
    total += i.weight;
    value += i.value;
    all_valuable = all_valuable && i.value >= 0;
  }
  if (total <= capacity && all_valuable) {
    scratch_.selected.clear();
    for (const KnapsackItem& i : items) scratch_.selected.push_back(i.id);
    std::sort(scratch_.selected.begin(), scratch_.selected.end());
    scratch_.used = total;
    scratch_.value = value;
    return scratch_;
  }

  // FNV-1a over the instance; the bucket chain verifies exact equality.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (const KnapsackItem& i : items) {
    mix(i.id);
    mix(i.weight);
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(i.value));
    std::memcpy(&bits, &i.value, sizeof(bits));
    mix(bits);
  }
  mix(capacity);
  mix(static_cast<std::uint64_t>(algo));
  mix(max_dp_units);

  if (buckets_.empty()) buckets_.resize(1024);
  auto& chain = buckets_[h & (buckets_.size() - 1)];
  for (const Entry& e : chain) {
    if (e.capacity == capacity && e.algo == algo &&
        e.max_dp_units == max_dp_units && std::ranges::equal(e.items, items)) {
      ++hits_;
      return e.solution;
    }
  }

  ++misses_;
  if (entries_ >= kMaxEntries) clear();
  if (buckets_.empty()) buckets_.resize(1024);
  auto& target = buckets_[h & (buckets_.size() - 1)];
  target.push_back(Entry{{items.begin(), items.end()},
                         capacity,
                         algo,
                         max_dp_units,
                         solve_knapsack(items, capacity, algo, max_dp_units)});
  ++entries_;
  return target.back().solution;
}

void KnapsackCache::clear() {
  buckets_.clear();
  entries_ = 0;
}

KnapsackSolution solve_knapsack(std::span<const KnapsackItem> items,
                                Bytes capacity, KnapsackAlgo algo,
                                std::uint32_t max_dp_units) {
  // Fast path: everything fits (the common case on large-DRAM boards).
  Bytes total = 0;
  bool all_valuable = true;
  for (const KnapsackItem& i : items) {
    total += i.weight;
    all_valuable = all_valuable && i.value >= 0;
  }
  if (total <= capacity && all_valuable) {
    KnapsackSolution out;
    out.selected.reserve(items.size());
    for (const KnapsackItem& i : items) out.selected.push_back(i.id);
    finalize(out, items);
    return out;
  }

  switch (algo) {
    case KnapsackAlgo::ExactDp: return solve_dp(items, capacity, max_dp_units);
    case KnapsackAlgo::GreedyDensity: return solve_greedy(items, capacity);
    case KnapsackAlgo::BruteForce: return solve_brute(items, capacity);
  }
  return {};
}

}  // namespace h2h
