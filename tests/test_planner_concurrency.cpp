// Thread-safety of the Planner session cache (DESIGN.md §8): concurrent
// plan() calls must return bit-identical responses to serial ones, eviction
// under contention must not corrupt the cache, and a failed cold build must
// leave no half-constructed session behind.
//
// These tests are the TSan CI job's main workload (they exercise the shard
// locks, the reference-counted checkout, and racing duplicate inserts).
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/planner.h"
#include "model/zoo.h"
#include "test_helpers.h"
#include "util/error.h"
#include "util/str.h"

namespace h2h {
namespace {

/// Thread-side comparator: returns a diagnostic instead of asserting so
/// worker threads never touch gtest state; the main thread reports.
[[nodiscard]] std::string diff_responses(const PlanResponse& a,
                                         const PlanResponse& b) {
  if (a.steps.size() != b.steps.size()) return "step count differs";
  for (std::size_t i = 0; i < a.steps.size(); ++i) {
    if (a.steps[i].name != b.steps[i].name) return "step name differs";
    // Bit-identity: exact double comparison is deliberate.
    if (a.steps[i].result.latency != b.steps[i].result.latency ||
        a.steps[i].result.energy.total() !=
            b.steps[i].result.energy.total()) {
      return strformat("step %zu schedule differs", i);
    }
  }
  if (a.mapping.size() != b.mapping.size()) return "mapping size differs";
  for (std::uint32_t v = 0; v < a.mapping.size(); ++v) {
    const LayerId id{v};
    if (a.mapping.acc_of(id) != b.mapping.acc_of(id) ||
        a.mapping.seq_of(id) != b.mapping.seq_of(id)) {
      return strformat("layer %u assignment differs", v);
    }
    if (a.plan.pinned(id) != b.plan.pinned(id)) {
      return strformat("layer %u pin differs", v);
    }
  }
  if (a.plan.fused_edge_count() != b.plan.fused_edge_count()) {
    return "fused edge count differs";
  }
  if (a.remap_stats.attempts != b.remap_stats.attempts ||
      a.remap_stats.accepted != b.remap_stats.accepted) {
    return "remap stats differ";
  }
  return {};
}

[[nodiscard]] PlanRequest cell_request(ZooModel model, BandwidthSetting bw) {
  PlanRequest request = PlanRequest::zoo(model, bw);
  request.options.time_budget_s = testing::search_time_budget();
  return request;
}

// The acceptance pin: N threads hammering one Planner across the
// zoo x {Low-, Mid} grid reproduce the 1-thread responses bit-for-bit,
// whether a request lands cold, warm, or races another thread's build of
// the same session.
TEST(PlannerConcurrency, ThreadedPlansAreBitIdenticalToSerial) {
  const std::vector<ZooModel> models = {
      ZooModel::VLocNet, ZooModel::CasiaSurf, ZooModel::Vfs,
      ZooModel::FaceBag, ZooModel::CnnLstm,   ZooModel::MoCap};
  const std::vector<BandwidthSetting> bws = {BandwidthSetting::LowMinus,
                                             BandwidthSetting::Mid};

  // Serial reference, one response per cell.
  std::vector<PlanResponse> reference;
  {
    Planner serial;
    for (const ZooModel m : models) {
      for (const BandwidthSetting bw : bws) {
        reference.push_back(serial.plan(cell_request(m, bw)));
      }
    }
  }

  Planner shared;
  constexpr std::size_t kThreads = 3;
  std::mutex failures_mu;
  std::vector<std::string> failures;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Each thread walks the grid at a different rotation so cold builds,
      // warm hits, and same-key races all occur.
      const std::size_t cells = reference.size();
      for (std::size_t i = 0; i < cells; ++i) {
        const std::size_t cell = (i + t * 5) % cells;
        const ZooModel m = models[cell / bws.size()];
        const BandwidthSetting bw = bws[cell % bws.size()];
        const PlanResponse r = shared.plan(cell_request(m, bw));
        const std::string diff = diff_responses(reference[cell], r);
        if (!diff.empty()) {
          const std::scoped_lock lock(failures_mu);
          failures.push_back(strformat("thread %zu cell %zu: %s", t, cell,
                                       diff.c_str()));
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::string& f : failures) ADD_FAILURE() << f;
  EXPECT_EQ(shared.session_count(), reference.size());
  EXPECT_EQ(shared.cache_hits() + shared.cache_misses(),
            kThreads * reference.size());
}

// Eviction under contention: a cache far smaller than the working set keeps
// evicting live sessions while other threads still hold them. Responses
// must stay bit-identical and the cache within capacity.
TEST(PlannerConcurrency, EvictionStressKeepsResponsesIdentical) {
  const std::vector<BandwidthSetting> bws = {
      BandwidthSetting::LowMinus, BandwidthSetting::Low,
      BandwidthSetting::MidMinus, BandwidthSetting::Mid};

  std::vector<PlanResponse> reference;
  for (const BandwidthSetting bw : bws) {
    Planner one_shot;
    reference.push_back(one_shot.plan(cell_request(ZooModel::MoCap, bw)));
  }

  PlannerOptions options;
  options.max_sessions = 2;  // working set is 4 -> constant eviction
  options.shards = 1;
  Planner planner(options);

  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kIterations = 6;
  std::mutex failures_mu;
  std::vector<std::string> failures;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < kIterations; ++i) {
        const std::size_t cell = (i + t) % bws.size();
        const PlanResponse r =
            planner.plan(cell_request(ZooModel::MoCap, bws[cell]));
        const std::string diff = diff_responses(reference[cell], r);
        if (!diff.empty()) {
          const std::scoped_lock lock(failures_mu);
          failures.push_back(
              strformat("thread %zu iter %zu: %s", t, i, diff.c_str()));
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::string& f : failures) ADD_FAILURE() << f;
  EXPECT_LE(planner.session_count(), 2u);
}

// clear_sessions() during in-flight traffic only drops cache references;
// threads holding checked-out sessions finish unharmed.
TEST(PlannerConcurrency, ClearSessionsDuringTrafficIsSafe) {
  Planner reference_planner;
  const PlanResponse reference =
      reference_planner.plan(cell_request(ZooModel::MoCap,
                                          BandwidthSetting::Mid));

  Planner planner;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 4; ++i) {
        const PlanResponse r = planner.plan(
            cell_request(ZooModel::MoCap, BandwidthSetting::Mid));
        if (!diff_responses(reference, r).empty()) ++mismatches;
      }
    });
  }
  for (int i = 0; i < 8; ++i) planner.clear_sessions();
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// A cold build that throws (invalid model) must not leave a half-built
// session in the LRU: the failed key stays absent, the planner keeps
// serving, and the same failure repeats deterministically.
TEST(PlannerConcurrency, FailedColdBuildLeavesNoSession) {
  Planner planner;
  ModelGraph empty("empty");  // validate() rejects empty graphs

  PlanRequest bad = PlanRequest::for_graph(empty, 0.5e9);
  EXPECT_THROW((void)planner.plan(bad), ConfigError);
  EXPECT_EQ(planner.session_count(), 0u);

  // Still broken on retry (nothing cached), still zero sessions.
  EXPECT_THROW((void)planner.plan(bad), ConfigError);
  EXPECT_EQ(planner.session_count(), 0u);

  // The planner remains fully serviceable afterwards.
  const PlanResponse good = planner.plan(
      cell_request(ZooModel::MoCap, BandwidthSetting::Mid));
  EXPECT_FALSE(good.warm);
  EXPECT_EQ(planner.session_count(), 1u);
  const PlanResponse warm = planner.plan(
      cell_request(ZooModel::MoCap, BandwidthSetting::Mid));
  EXPECT_TRUE(warm.warm);
}

// Same exception-safety contract when the throw comes from the system
// factory rather than model validation.
TEST(PlannerConcurrency, ThrowingSystemFactoryLeavesNoSession) {
  PlannerOptions options;
  options.system_factory = [](double bw) -> SystemConfig {
    if (bw < 0.2e9) throw ConfigError("no system below 0.2 GB/s");
    return SystemConfig::standard(bw);
  };
  Planner planner(options);

  EXPECT_THROW(
      (void)planner.plan(cell_request(ZooModel::MoCap,
                                      BandwidthSetting::LowMinus)),
      ConfigError);
  EXPECT_EQ(planner.session_count(), 0u);

  const PlanResponse good = planner.plan(
      cell_request(ZooModel::MoCap, BandwidthSetting::Mid));
  EXPECT_FALSE(good.warm);
  EXPECT_EQ(planner.session_count(), 1u);
}

// Exception traffic interleaved with good traffic across threads: failures
// never poison the cache for concurrent winners.
TEST(PlannerConcurrency, FailuresDoNotPoisonConcurrentTraffic) {
  Planner reference_planner;
  const PlanResponse reference = reference_planner.plan(
      cell_request(ZooModel::MoCap, BandwidthSetting::Mid));

  Planner planner;
  ModelGraph empty("empty");
  std::atomic<int> mismatches{0};
  std::atomic<int> throws{0};

  std::thread bad([&] {
    for (int i = 0; i < 6; ++i) {
      try {
        (void)planner.plan(PlanRequest::for_graph(empty, 0.5e9));
      } catch (const ConfigError&) {
        ++throws;
      }
    }
  });
  std::thread good([&] {
    for (int i = 0; i < 4; ++i) {
      const PlanResponse r = planner.plan(
          cell_request(ZooModel::MoCap, BandwidthSetting::Mid));
      if (!diff_responses(reference, r).empty()) ++mismatches;
    }
  });
  bad.join();
  good.join();
  EXPECT_EQ(throws.load(), 6);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(planner.session_count(), 1u);
}

}  // namespace
}  // namespace h2h
