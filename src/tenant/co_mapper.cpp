#include "tenant/co_mapper.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "core/activation_fusion.h"
#include "core/weight_locality.h"
#include "util/error.h"
#include "util/str.h"

namespace h2h {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// What the round loop minimizes, lexicographically: priority-weighted SLO
/// violation seconds first, union makespan second.
struct Score {
  double violation = 0;
  double makespan = 0;
};

[[nodiscard]] bool improves(const Score& next, const Score& cur) noexcept {
  if (next.violation < cur.violation) return true;
  if (cur.violation < next.violation) return false;
  return next.makespan < cur.makespan - 1e-12;
}

[[nodiscard]] Score score_of(const TenantSet& set,
                             const std::vector<double>& latency,
                             double makespan) {
  Score s;
  s.makespan = makespan;
  for (std::size_t i = 0; i < set.size(); ++i) {
    const TenantRequest& t = set.request(i);
    if (!t.has_slo()) continue;
    const double over = latency[i] - t.slo_s;
    if (over > 0)
      s.violation += static_cast<double>(std::max(1u, t.priority)) * over;
  }
  return s;
}

}  // namespace

std::vector<double> tenant_latencies(const ScheduleResult& sched,
                                     const std::vector<TenantSpan>& spans) {
  std::vector<double> out(spans.size(), 0.0);
  for (std::size_t i = 0; i < spans.size(); ++i)
    for (std::uint32_t l = spans[i].begin; l < spans[i].end; ++l)
      out[i] = std::max(out[i], sched.timings[l].finish);
  return out;
}

const TenantOutcome& CoMapResult::outcome(std::string_view name) const {
  for (const TenantOutcome& t : tenants)
    if (t.name == name) return t;
  throw ConfigError(
      strformat("no tenant named '%s'", std::string(name).c_str()));
}

CoMapper::CoMapper(const SystemConfig& sys) : sys_(&sys), planner_(sys) {}

CoMapResult CoMapper::co_map(const TenantSet& set,
                             const CoMapOptions& options) {
  const std::size_t n = set.size();

  // Round 0a: solo plans on the idle system. Warm across co_map calls (the
  // shared-system Planner keys sessions on the stamped model fingerprint).
  std::vector<PlanResponse> solo;
  solo.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    PlanRequest req =
        PlanRequest::for_graph(set.model(i), sys_->host().bw_acc);
    req.options = options.plan;
    solo.push_back(planner_.plan(req));
  }

  // The union model and the one simulator every round shares. A
  // capability-infeasible tenant throws CapabilityError here (or already in
  // its solo plan above), before any round runs.
  std::vector<TenantSpan> spans;
  ModelGraph model = set.build_union(spans);
  const Simulator sim(model, *sys_);

  // Round 0b: the sequential-deployment baseline — every tenant keeps its
  // solo mapping, copied span-by-span in solo sequence order (which keeps
  // the union sequence topological: components are disjoint and each solo
  // order is). Steps 2-3 then re-run on the union so the shared DRAM
  // capacity is split once instead of double-booked per tenant.
  Mapping seq_mapping(model);
  LocalityPlan seq_plan(model);
  seq_plan.ensure_acc_count(sys_->accelerator_count());
  {
    std::vector<LayerId> order;
    for (std::size_t i = 0; i < n; ++i) {
      const ModelGraph& sm = set.model(i);
      const Mapping& smap = solo[i].mapping;
      order.clear();
      for (const LayerId sid : sm.all_layers())
        if (sm.layer(sid).kind != LayerKind::Input) order.push_back(sid);
      std::sort(order.begin(), order.end(), [&smap](LayerId a, LayerId b) {
        return smap.seq_of(a) < smap.seq_of(b);
      });
      for (const LayerId sid : order)
        seq_mapping.assign(LayerId{spans[i].begin + sid.value},
                           smap.acc_of(sid));
    }
  }
  if (options.plan.run_weight_locality)
    optimize_weight_locality(sim, seq_mapping, seq_plan, options.plan.weight);
  if (options.plan.run_fusion)
    optimize_activation_fusion(sim, seq_mapping, seq_plan,
                               options.plan.fusion);
  const ScheduleResult seq_sched = sim.simulate(seq_mapping, seq_plan);
  const std::vector<double> seq_lat = tenant_latencies(seq_sched, spans);
  const Score seq_score = score_of(set, seq_lat, seq_sched.latency);

  // The mapf-het normalization window for slack ordering.
  double normalize = options.slack_normalize_s;
  if (normalize <= 0) {
    for (const TenantRequest& t : set.requests())
      if (t.has_slo()) normalize = std::max(normalize, t.slo_s);
    if (normalize <= 0) normalize = 1.0;
  }

  Mapping cur = seq_mapping;
  LocalityPlan cur_plan = seq_plan;
  ScheduleResult cur_sched = seq_sched;
  std::vector<double> cur_lat = seq_lat;
  Score cur_score = seq_score;

  // Replan the whole union for one tenant, peers expressed as constraints.
  const auto run_round = [&](std::size_t active) -> PlanResponse {
    if (n == 1) {
      // No peers: every hook stays off, so this is the plain default
      // pipeline — bit-identical to Planner::plan on the same model/system
      // (pinned by test_tenant.cpp).
      return run_passes(sim, make_default_pipeline(options.plan),
                        options.plan.time_budget_s);
    }
    PlanOptions po = options.plan;
    const TenantSpan span = spans[active];
    // Step 1: peer layers are forced to their current accelerators through
    // the placement-preference hook (their candidate lists collapse to one
    // entry, so enumeration effort stays on the active tenant).
    const auto snapshot = std::make_shared<Mapping>(cur);
    po.step1.preferred = [snapshot, span](LayerId id) -> std::optional<AccId> {
      if (span.contains(id)) return std::nullopt;
      const AccId a = snapshot->acc_of(id);
      return a.is_host() ? std::nullopt : std::optional<AccId>(a);
    };
    // Steps 2/4: peers' pinned weights stay pinned and peer layers never
    // move (the step-4 probe re-runs step 2 internally, so the pin mask is
    // threaded there too).
    std::vector<bool> pin(model.layer_count(), false);
    std::vector<bool> locked(model.layer_count(), false);
    for (std::uint32_t l = 0; l < model.layer_count(); ++l) {
      if (span.contains(LayerId{l})) continue;
      locked[l] = true;
      pin[l] = cur_plan.pinned(LayerId{l});
    }
    po.weight.force_pin = &pin;
    po.remap.weight.force_pin = &pin;
    po.remap.locked = &locked;
    return run_passes(sim, make_default_pipeline(po), po.time_budget_s);
  };

  const auto adopt = [&](PlanResponse&& r) {
    cur_sched = r.final_result();
    cur = std::move(r.mapping);
    cur_plan = std::move(r.plan);
    cur_lat = tenant_latencies(cur_sched, spans);
    cur_score = score_of(set, cur_lat, cur_sched.latency);
  };

  // Round 1 adopts unconditionally (every tenant gets one full replan with
  // its peers fixed); later sweeps only on strict score improvement, so the
  // loop terminates.
  std::uint32_t rounds = 0;
  for (std::uint32_t round = 0; round < 1 + options.max_rounds; ++round) {
    bool adopted = false;
    for (const std::size_t i : slack_order(set, cur_lat, normalize)) {
      PlanResponse r = run_round(i);
      const ScheduleResult& sched = r.final_result();
      const Score sc =
          score_of(set, tenant_latencies(sched, spans), sched.latency);
      if (round == 0 || improves(sc, cur_score)) {
        adopt(std::move(r));
        adopted = true;
      }
    }
    ++rounds;
    if (n == 1) break;            // identical replans from here on
    if (round > 0 && !adopted) break;
  }

  // Steal round: a tenant still missing its SLO replans once more with the
  // comfortably-meeting peers unlocked — step 4 may displace their layers.
  bool steal_ran = false;
  if (options.steal_round && n > 1) {
    for (const std::size_t i : slack_order(set, cur_lat, normalize)) {
      const TenantRequest& t = set.request(i);
      if (!t.has_slo() || cur_lat[i] <= t.slo_s) continue;
      steal_ran = true;
      std::vector<bool> locked(model.layer_count(), false);
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        const TenantRequest& p = set.request(j);
        if (!p.has_slo() || cur_lat[j] <= p.slo_s) continue;  // stealable
        for (std::uint32_t l = spans[j].begin; l < spans[j].end; ++l)
          locked[l] = true;
      }
      PlanOptions po = options.plan;
      po.remap.locked = &locked;
      PassPipeline pipe;
      pipe.push_back(make_warm_start_pass(cur));
      if (po.run_weight_locality)
        pipe.push_back(make_weight_locality_pass(po.weight));
      if (po.run_fusion) pipe.push_back(make_activation_fusion_pass(po.fusion));
      if (po.run_remapping) pipe.push_back(make_remapping_pass(po.remap));
      PlanResponse r = run_passes(sim, pipe, po.time_budget_s);
      const ScheduleResult& sched = r.final_result();
      const Score sc =
          score_of(set, tenant_latencies(sched, spans), sched.latency);
      if (improves(sc, cur_score)) adopt(std::move(r));
    }
  }

  CoMapResult res{std::move(model),    std::move(cur), std::move(cur_plan),
                  std::move(cur_sched), {},             seq_sched.latency,
                  seq_score.violation, cur_score.violation,
                  rounds,              steal_ran,       true};
  res.tenants.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const TenantRequest& t = set.request(i);
    TenantOutcome o;
    o.name = t.name;
    o.span = spans[i];
    o.solo_latency_s = solo[i].final_result().latency;
    o.seq_latency_s = seq_lat[i];
    o.latency_s = cur_lat[i];
    o.slo_s = t.slo_s;
    o.slack_s = t.has_slo() ? t.slo_s - cur_lat[i] : kInf;
    o.met = !t.has_slo() || cur_lat[i] <= t.slo_s;
    o.priority = t.priority;
    res.all_slos_met = res.all_slos_met && o.met;
    res.tenants.push_back(std::move(o));
  }
  return res;
}

}  // namespace h2h
