// h2h — command-line driver for the H2H planner.
//
//   h2h list-models
//   h2h list-accelerators
//   h2h map --model <key> [--bw <GB/s> | --links <spec>] [--batch <n>]
//               [plan options] [--save <file>] [--gantt] [--per-layer]
//               [--json] [--no-timing]
//   h2h repair --model <key> --fault <spec>[,<spec>...]
//               [--bw <GB/s> | --links <spec>] [--batch <n>]
//               [--fallback-ratio <r>] [plan options] [--json] [--no-timing]
//   h2h replay --model <key> --load <file> [--bw <GB/s> | --links <spec>]
//   h2h sweep [--csv <file>] [plan options]
//   h2h serve [--threads <n>] [--tcp <port>] [--max-connections <n>]
//
// Plan options (--remap/--no-remap, --knapsack, --objective, --time-budget,
// ...) are generated from the declarative table in core/plan_options.h; the
// same table defines the serve wire schema's "options" object, so `h2h map`,
// `h2h sweep`, and `h2h serve` accept identical spellings by construction.
//
// `h2h map --json` prints exactly the serve-protocol response line for the
// equivalent request — CI diffs the two byte-for-byte.
//
// Exit codes: 0 success, 1 usage error, 2 configuration error.
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "h2h.h"
#include "model/summary.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "system/mapping_io.h"
#include "system/schedule_analysis.h"

namespace {

using namespace h2h;

struct Args {
  std::string command;
  std::map<std::string, std::string> flags;

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const {
    const auto it = flags.find(key);
    return it == flags.end() ? std::nullopt : std::optional(it->second);
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return flags.contains(key);
  }
};

/// Flags that never take a value. Plan-option Bool knobs contribute both
/// their affirmative (--remap) and negated (--no-remap) spellings.
bool is_boolean_flag(std::string_view flag) {
  if (flag == "gantt" || flag == "per-layer" || flag == "json" ||
      flag == "no-timing" || flag == "no-steal" || flag == "require-slos") {
    return true;
  }
  std::string_view key = flag;
  if (key.starts_with("no-")) key.remove_prefix(3);
  const PlanOptionSpec* spec = find_plan_option(key);
  return spec != nullptr && spec->kind == PlanOptionSpec::Kind::Bool;
}

std::optional<Args> parse_args(int argc, char** argv) {
  if (argc < 2) return std::nullopt;
  Args args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string_view raw = argv[i];
    if (raw.rfind("--", 0) != 0) return std::nullopt;
    const std::string flag(raw.substr(2));
    if (is_boolean_flag(flag)) {
      args.flags.emplace(flag, std::string("1"));
    } else {
      if (i + 1 >= argc) return std::nullopt;
      args.flags.emplace(flag, std::string(argv[++i]));
    }
  }
  return args;
}

/// Apply every flag that names a plan-option table row to `options`.
/// Unmatched flags (--model, --save, ...) are left for the command itself.
bool apply_plan_flags(const Args& args, PlanOptions& options) {
  for (const auto& [flag, value] : args.flags) {
    std::string_view key = flag;
    bool negated = false;
    const PlanOptionSpec* spec = find_plan_option(key);
    if (spec == nullptr && key.starts_with("no-")) {
      key.remove_prefix(3);
      spec = find_plan_option(key);
      if (spec != nullptr && spec->kind != PlanOptionSpec::Kind::Bool) {
        spec = nullptr;  // only Bool knobs negate
      }
      negated = spec != nullptr;
    }
    if (spec == nullptr) continue;
    const std::string_view spelled =
        spec->kind == PlanOptionSpec::Kind::Bool
            ? std::string_view(negated ? "false" : "true")
            : std::string_view(value);
    if (const auto err = spec->set(options, spelled)) {
      std::cerr << "error: --" << flag << ": " << *err << '\n';
      return false;
    }
  }
  return true;
}

void print_plan_option_usage(std::ostream& out) {
  out << "plan options (same spellings in `map`, `sweep`, and the serve "
         "wire schema):\n";
  for (const PlanOptionSpec& spec : plan_option_specs()) {
    const std::string key(spec.cli_key);
    std::string left;
    switch (spec.kind) {
      case PlanOptionSpec::Kind::Bool:
        left = strformat("--%s | --no-%s", key.c_str(), key.c_str());
        break;
      case PlanOptionSpec::Kind::Double:
        left = strformat("--%s <s>", key.c_str());
        break;
      case PlanOptionSpec::Kind::Enum:
        left = strformat("--%s %s", key.c_str(),
                         std::string(spec.values).c_str());
        break;
    }
    out << strformat("  %-32s %.*s\n", left.c_str(),
                     static_cast<int>(spec.help.size()), spec.help.data());
  }
}

void usage(std::ostream& out) {
  out << "usage:\n"
         "  h2h list-models\n"
         "  h2h list-accelerators\n"
         "  h2h map --model <key> [--bw <GB/s> | --links <spec>]\n"
         "              [--batch <n>] [plan options] [--save <file>]\n"
         "              [--gantt] [--per-layer] [--json] [--no-timing]\n"
         "  h2h comap --tenants <spec> [--bw <GB/s>] [plan options]\n"
         "              [--max-rounds <n>] [--no-steal] [--require-slos]\n"
         "              [--gantt] [--per-layer] [--json]\n"
         "  h2h repair --model <key> --fault <spec>[,<spec>...]\n"
         "              [--bw <GB/s> | --links <spec>] [--batch <n>]\n"
         "              [--fallback-ratio <r>] [plan options] [--json]\n"
         "              [--no-timing]\n"
         "  h2h replay --model <key> --load <file>"
         " [--bw <GB/s> | --links <spec>]\n"
         "  h2h sweep [--csv <file>] [plan options]\n"
         "  h2h serve [--threads <n>] [--tcp <port>]"
         " [--max-connections <n>]\n"
         "\n"
         "link topology specs (--links, all bandwidths GB/s):\n"
         "  uniform:<GB/s>                    every link at one speed\n"
         "  mixed:<GB/s>[,<acc>=<GB/s>...]    per-accelerator uplinks\n"
         "  hier:group=<n>,intra=<GB/s>,uplink=<GB/s>[,host=<GB/s>]"
         "[,lat_us=<us>]\n"
         "\n"
         "fault specs (--fault, ','-separated, applied in order):\n"
         "  lose:<acc> | return:<acc> | degrade:<acc>=<scale> |"
         " restore:<acc> | derate:<acc>=<scale>\n"
         "  e.g. \"lose:3,degrade:2=0.25,return:3\"; exit 2 when any repair"
         " is infeasible\n"
         "\n"
         "tenant specs (--tenants, ';'-separated):\n"
         "  name=<model-key>[:slo=<seconds>][:prio=<n>][:caps=<caps-spec>]\n"
         "  e.g. \"cam=casia-surf:slo=0.012:prio=3;emo=mocap:slo=0.01\"\n"
         "  caps specs join capability names with '+':"
         " conv, fc, lstm, bigmem, fastmem, or hex bits (0x100)\n"
         "  --require-slos exits 3 when the co-mapping misses any SLO\n";
  print_plan_option_usage(out);
}

int cmd_list_models() {
  TextTable table({"key", "domain", "backbones", "params (Table 2)"},
                  {TextTable::Align::Left, TextTable::Align::Left,
                   TextTable::Align::Left});
  for (const ZooInfo& info : zoo_catalog()) {
    table.add_row({std::string(info.key), std::string(info.domain),
                   std::string(info.backbones),
                   strformat("%.1fM", info.paper_params_millions)});
  }
  table.print(std::cout);
  return 0;
}

int cmd_list_accelerators() {
  TextTable table({"name", "board", "dataflow", "kinds", "peak GMAC/s",
                   "M_acc", "DRAM BW"},
                  {TextTable::Align::Left, TextTable::Align::Left,
                   TextTable::Align::Left, TextTable::Align::Left});
  for (const AcceleratorSpec& s : standard_catalog()) {
    std::string kinds;
    if (s.kinds.conv) kinds += "Conv ";
    if (s.kinds.fc) kinds += "FC ";
    if (s.kinds.lstm) kinds += "LSTM";
    table.add_row(
        {s.name, s.board, std::string(to_string(s.style)), kinds,
         strformat("%.0f", static_cast<double>(s.peak_macs_per_cycle) *
                               s.freq_hz / 1e9),
         human_bytes(s.dram_capacity),
         strformat("%.1f GB/s", s.dram_bandwidth / 1e9)});
  }
  table.print(std::cout);
  return 0;
}

struct Common {
  ZooModel id;
  double bw_gbps = 0;
  std::uint32_t batch = 0;
  std::optional<Interconnect> links;  // --links topology (unbound spelling)
  ModelGraph model;  // for report printing; the planner keeps its own copy
  SystemConfig sys;
};

std::optional<Common> load_common(const Args& args) {
  const std::string key = args.get("model").value_or("");
  const auto id = zoo_model_by_key(key);
  if (!id) {
    std::cerr << "error: unknown or missing --model '" << key << "'\n";
    return std::nullopt;
  }
  std::optional<Interconnect> links;
  if (const auto spec = args.get("links")) {
    if (args.has("bw")) {
      std::cerr << "error: --links conflicts with --bw (the topology's base "
                   "bandwidth is the scalar view; pass one or the other)\n";
      return std::nullopt;
    }
    links = parse_links_spec(*spec);  // ConfigError -> exit 2 in main
  }
  const double bw_gbps =
      links ? links->base_bw() / 1e9
            : std::stod(args.get("bw").value_or("0.5"));
  if (bw_gbps <= 0) {
    std::cerr << "error: --bw must be positive\n";
    return std::nullopt;
  }
  ModelGraph model = make_model(*id);
  std::uint32_t batch = 0;
  if (const auto b = args.get("batch")) {
    batch = static_cast<std::uint32_t>(std::stoul(*b));
    model.set_batch(batch);
  }
  SystemConfig sys = links ? SystemConfig::standard(*links)
                           : SystemConfig::standard(gbps(bw_gbps));
  return Common{*id,   bw_gbps, batch, std::move(links), std::move(model),
                std::move(sys)};
}

void print_result(const Common& c, const PlanResponse& r, const Args& args) {
  MappingReportOptions opts;
  opts.gantt = args.has("gantt");
  opts.per_layer = args.has("per-layer");
  print_mapping_report(c.model, c.sys, r, std::cout, opts);
}

int cmd_map(const Args& args) {
  auto common = load_common(args);
  if (!common) return 1;

  // The planner borrows the one system load_common built (shared-system
  // mode), so the report below is printed against exactly the system the
  // mapping was planned on.
  PlanRequest request = PlanRequest::for_graph(common->model, gbps(common->bw_gbps));
  if (!apply_plan_flags(args, request.options)) return 1;

  Planner planner(common->sys);
  const PlanResponse r = planner.plan(request);

  if (args.has("json")) {
    // Emit exactly the serve-protocol response line for this request, so
    // CLI and server output can be diffed byte-for-byte.
    serve::WireRequest wire;
    wire.model = common->id;
    wire.bw_gbps = common->bw_gbps;
    wire.links = common->links;
    wire.batch = common->batch;
    wire.options = request.options;
    wire.emit_timing = !args.has("no-timing");
    std::cout << serve::write_response(wire, r, common->model, common->sys)
              << '\n';
    return 0;
  }

  print_result(*common, r, args);
  if (request.options.time_budget_s) {
    if (r.stopped_on_budget) {
      std::cout << "time budget: remapping stopped on the "
                << strformat("%g s", *request.options.time_budget_s)
                << " budget\n";
    } else if (request.options.run_remapping) {
      std::cout << "time budget: search converged within the "
                << strformat("%g s", *request.options.time_budget_s)
                << " budget\n";
    } else {
      // Only the remapping pass is budget-aware; with --no-remap the
      // budget had nothing to enforce, so don't claim convergence.
      std::cout << "time budget: not enforced (--no-remap disables the only "
                   "budget-aware pass)\n";
    }
  }

  if (const auto path = args.get("save")) {
    std::ofstream out(*path);
    if (!out) {
      std::cerr << "error: cannot write '" << *path << "'\n";
      return 2;
    }
    write_mapping(out, common->model, common->sys, r.mapping, r.plan);
    std::cout << "saved mapping to " << *path << '\n';
  }
  return 0;
}

std::optional<std::uint64_t> parse_count(const Args& args,
                                         const std::string& flag,
                                         std::uint64_t fallback);

int cmd_comap(const Args& args) {
  const auto spec = args.get("tenants");
  if (!spec) {
    std::cerr << "error: comap requires --tenants <spec>\n";
    return 1;
  }
  const TenantSet set(parse_tenants_spec(*spec));  // ConfigError -> exit 2

  const double bw_gbps = std::stod(args.get("bw").value_or("0.5"));
  if (bw_gbps <= 0) {
    std::cerr << "error: --bw must be positive\n";
    return 1;
  }

  CoMapOptions options;
  if (!apply_plan_flags(args, options.plan)) return 1;
  if (const auto rounds = args.get("max-rounds")) {
    const auto n = parse_count(args, "max-rounds", 3);
    if (!n) return 1;
    options.max_rounds = static_cast<std::uint32_t>(*n);
  }
  options.steal_round = !args.has("no-steal");

  const SystemConfig sys = SystemConfig::standard(gbps(bw_gbps));
  CoMapper comapper(sys);
  const CoMapResult result = comapper.co_map(set, options);

  if (args.has("json")) {
    // Emit exactly the serve-protocol tenants response line for this
    // request, so CLI and server output can be diffed byte-for-byte.
    serve::WireTenantsRequest wire;
    wire.tenants = set.requests();
    wire.bw_gbps = bw_gbps;
    wire.options = options.plan;
    wire.max_rounds = options.max_rounds;
    wire.steal_round = options.steal_round;
    wire.require_slos = args.has("require-slos");
    std::cout << serve::write_tenants_response(wire, result, sys) << '\n';
  } else {
    MappingReportOptions report;
    report.gantt = args.has("gantt");
    report.per_layer = args.has("per-layer");
    print_comap_report(sys, result, std::cout, report);
  }

  if (args.has("require-slos") && !result.all_slos_met) {
    for (const TenantOutcome& t : result.tenants) {
      if (!t.met) {
        std::cerr << "error: tenant '" << t.name << "' misses its SLO ("
                  << strformat("%.6g s > %.6g s", t.latency_s, t.slo_s)
                  << ")\n";
      }
    }
    return 3;
  }
  return 0;
}

int cmd_repair(const Args& args) {
  auto common = load_common(args);
  if (!common) return 1;
  const auto faults = args.get("fault");
  if (!faults) {
    std::cerr << "error: repair requires --fault <spec>[,<spec>...]\n";
    return 1;
  }
  const std::vector<FaultEvent> script =
      parse_fault_list(*faults);  // ConfigError -> exit 2 in main

  RepairOptions options;
  if (!apply_plan_flags(args, options.plan)) return 1;
  if (const auto ratio = args.get("fallback-ratio")) {
    try {
      options.fallback_ratio = std::stod(*ratio);
    } catch (const std::exception&) {
      options.fallback_ratio = -1;
    }
    if (options.fallback_ratio < 0) {
      std::cerr << "error: --fallback-ratio expects a non-negative number\n";
      return 1;
    }
  }

  // The engine owns its system; common->sys stays the pristine catalog for
  // nothing here (load_common builds it anyway). The engine's plan_initial
  // is bit-identical to the Planner plan a serve session would have cached,
  // which is what makes --json hex-exact against the serve flow.
  RepairEngine engine(common->model,
                      common->links
                          ? SystemConfig::standard(*common->links)
                          : SystemConfig::standard(gbps(common->bw_gbps)),
                      options);
  (void)engine.plan_initial();

  const bool json = args.has("json");
  bool any_infeasible = false;
  for (std::size_t i = 0; i < script.size(); ++i) {
    const RepairResult result = engine.apply(script[i]);
    any_infeasible = any_infeasible ||
                     result.outcome == RepairOutcome::Infeasible;
    if (json) {
      if (i + 1 < script.size()) continue;  // one line: the last fault
      serve::WireRepairRequest wire;
      wire.model = common->id;
      wire.bw_gbps = common->bw_gbps;
      wire.links = common->links;
      wire.batch = common->batch;
      wire.options = options.plan;
      wire.fallback_ratio = options.fallback_ratio;
      wire.event = script[i];
      wire.emit_timing = !args.has("no-timing");
      if (result.outcome == RepairOutcome::Infeasible) {
        std::cout << serve::write_error({serve::ErrorCode::InfeasibleRepair,
                                         result.infeasible_reason,
                                         {}})
                  << '\n';
      } else {
        std::cout << serve::write_repair_response(wire, result, common->model,
                                                  engine.system())
                  << '\n';
      }
    } else {
      if (i > 0) std::cout << '\n';
      print_repair_report(common->model, engine.system(), result, std::cout);
    }
  }
  return any_infeasible ? 2 : 0;
}

int cmd_replay(const Args& args) {
  auto common = load_common(args);
  if (!common) return 1;
  const auto path = args.get("load");
  if (!path) {
    std::cerr << "error: replay requires --load <file>\n";
    return 1;
  }
  std::ifstream in(*path);
  if (!in) {
    std::cerr << "error: cannot read '" << *path << "'\n";
    return 2;
  }
  const LoadedMapping loaded = read_mapping(in, common->model, common->sys);
  const Simulator sim(common->model, common->sys);
  const ScheduleResult r = sim.simulate(loaded.mapping, loaded.plan);
  std::cout << "replayed mapping: latency " << human_seconds(r.latency)
            << ", energy " << strformat("%.4f J", r.energy.total())
            << ", comp share " << format_percent(r.comp_ratio(), 1) << '\n';
  if (args.has("gantt"))
    print_gantt(common->model, common->sys, loaded.mapping, r, std::cout);
  return 0;
}

int cmd_sweep(const Args& args) {
  PlanOptions options;
  if (!apply_plan_flags(args, options)) return 1;
  const std::optional<double> time_budget_s = options.time_budget_s;
  Planner planner;  // one session cache across all 30 grid cells
  const std::vector<StepSeries> sweep =
      run_full_sweep(planner, options, time_budget_s);
  print_fig4(sweep, std::cout);
  std::cout << '\n';
  print_table4(sweep, std::cout);
  std::cout << '\n';
  print_fig5a(sweep, std::cout);
  std::cout << '\n';
  print_fig5b(sweep, std::cout);
  if (const auto path = args.get("csv")) {
    std::ofstream out(*path);
    if (!out) {
      std::cerr << "error: cannot write '" << *path << "'\n";
      return 2;
    }
    write_sweep_csv(sweep, out);
    std::cout << "\nwrote " << *path << '\n';
  }
  return 0;
}

std::optional<std::uint64_t> parse_count(const Args& args,
                                         const std::string& flag,
                                         std::uint64_t fallback) {
  const auto raw = args.get(flag);
  if (!raw) return fallback;
  try {
    std::size_t pos = 0;
    const unsigned long long v = std::stoull(*raw, &pos);
    if (pos == raw->size()) return v;
  } catch (const std::exception&) {
  }
  std::cerr << "error: --" << flag << " expects a non-negative integer, got '"
            << *raw << "'\n";
  return std::nullopt;
}

int cmd_serve(const Args& args) {
  serve::ServeOptions options;
  // The CLI owns the process, so SIGINT/SIGTERM drain in-flight requests
  // and exit 0 instead of killing responses mid-line.
  options.handle_signals = true;
  const auto threads = parse_count(args, "threads", 1);
  if (!threads) return 1;
  if (*threads < 1) {
    std::cerr << "error: --threads must be at least 1\n";
    return 1;
  }
  options.threads = static_cast<std::size_t>(*threads);

  if (args.has("tcp")) {
    serve::TcpOptions tcp;
    tcp.serve = options;
    const auto port = parse_count(args, "tcp", 0);
    if (!port) return 1;
    if (*port > 65535) {
      std::cerr << "error: --tcp expects a port in [0, 65535]\n";
      return 1;
    }
    tcp.port = static_cast<std::uint16_t>(*port);
    const auto max_conn = parse_count(args, "max-connections", 0);
    if (!max_conn) return 1;
    tcp.max_connections = *max_conn;
    return serve::serve_tcp(tcp, std::cerr);
  }

  const serve::ServeStats stats =
      serve::serve_jsonl(std::cin, std::cout, options);
  std::cerr << "h2h-serve: " << stats.requests << " requests ("
            << stats.ok << " ok, " << stats.errors << " errors)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv);
  if (!args) {
    usage(std::cerr);
    return 1;
  }
  try {
    if (args->command == "list-models") return cmd_list_models();
    if (args->command == "list-accelerators") return cmd_list_accelerators();
    if (args->command == "map") return cmd_map(*args);
    if (args->command == "comap") return cmd_comap(*args);
    if (args->command == "repair") return cmd_repair(*args);
    if (args->command == "replay") return cmd_replay(*args);
    if (args->command == "sweep") return cmd_sweep(*args);
    if (args->command == "serve") return cmd_serve(*args);
    usage(std::cerr);
    return 1;
  } catch (const h2h::CapabilityError& e) {
    std::cerr << "capability error: " << e.what() << '\n';
    return 2;
  } catch (const h2h::ConfigError& e) {
    std::cerr << "configuration error: " << e.what() << '\n';
    return 2;
  }
}
