#include "util/rng.h"

// Header-only wrapper; TU anchors the target.

namespace h2h {
namespace {
// intentionally empty
}  // namespace
}  // namespace h2h
