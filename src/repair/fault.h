// Fault events for the live-repair subsystem (DESIGN.md §12).
//
// A FaultEvent is one observed change to the running system: an accelerator
// dropping out or rejoining, a link losing (or recovering) bandwidth, or a
// device derating its compute speed (thermal throttling, partial
// reconfiguration). Events are absolute statements about the new state —
// "acc 3's links now run at 0.25x nominal" — not deltas, so replaying a
// schedule of events is idempotent per event and order-sensitive only where
// the physics are (a lost accelerator must return before it is lost again).
//
// The same event model is spoken everywhere the repair path surfaces:
// RepairEngine::apply, the FaultInjector schedules, the `"repair"` wire
// request on `h2h serve`, and the `h2h repair --fault` CLI grammar parsed by
// parse_fault_list below.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "system/acc_id.h"

namespace h2h {

enum class FaultKind {
  AccLost,       // accelerator dropped out; its layers must migrate
  AccReturned,   // a previously lost accelerator rejoined
  LinkDegraded,  // every link touching the accelerator runs at scale x nominal
  LinkRestored,  // the accelerator's links are back to nominal bandwidth
  SpecDerated,   // the accelerator computes at scale x nominal speed
};

/// Wire spelling: "acc_lost", "acc_returned", "link_degraded",
/// "link_restored", "spec_derated".
[[nodiscard]] std::string_view to_string(FaultKind kind) noexcept;
/// Inverse of to_string; nullopt on an unknown name.
[[nodiscard]] std::optional<FaultKind> parse_fault_kind(
    std::string_view name) noexcept;

struct FaultEvent {
  FaultKind kind = FaultKind::AccLost;
  AccId acc{};
  /// LinkDegraded / SpecDerated factor in (0, 1]: the fraction of nominal
  /// bandwidth / compute speed the accelerator retains. 1 for the other
  /// kinds (builders enforce the range; the wire/CLI parsers reject a scale
  /// on kinds that do not carry one).
  double scale = 1.0;

  [[nodiscard]] bool has_scale() const noexcept {
    return kind == FaultKind::LinkDegraded || kind == FaultKind::SpecDerated;
  }

  [[nodiscard]] static FaultEvent lost(AccId acc);
  [[nodiscard]] static FaultEvent returned(AccId acc);
  [[nodiscard]] static FaultEvent link_degraded(AccId acc, double scale);
  [[nodiscard]] static FaultEvent link_restored(AccId acc);
  [[nodiscard]] static FaultEvent spec_derated(AccId acc, double scale);
};

/// Human spelling for reports/logs: "acc_lost(3)", "link_degraded(2, x0.25)".
[[nodiscard]] std::string format_fault(const FaultEvent& event);

/// Parse one CLI fault spec:
///   lose:<acc> | return:<acc> | degrade:<acc>=<scale> | restore:<acc> |
///   derate:<acc>=<scale>
/// Throws ConfigError with a usage hint on malformed input.
[[nodiscard]] FaultEvent parse_fault_spec(std::string_view spec);
/// Comma-separated list of fault specs, applied in order.
[[nodiscard]] std::vector<FaultEvent> parse_fault_list(std::string_view specs);

}  // namespace h2h
