#include "serve/json.h"

#include <charconv>
#include <cmath>
#include <cstdint>

#include "util/str.h"

namespace h2h::json {

std::span<const Object::Member> Object::members() const noexcept {
  return members_;
}

std::size_t Object::size() const noexcept { return members_.size(); }

const Value* Object::find(std::string_view key) const noexcept {
  for (const Member& m : members_) {
    if (m.key == key) return &m.value;
  }
  return nullptr;
}

void Object::set(std::string key, Value value) {
  for (Member& m : members_) {
    if (m.key == key) {
      m.value = std::move(value);
      return;
    }
  }
  members_.push_back(Member{std::move(key), std::move(value)});
}

namespace {

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    const auto byte = static_cast<unsigned char>(c);
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (byte < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[byte >> 4];
          out += kHex[byte & 0xf];
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_number(double d, std::string& out) {
  // The wire schema never carries non-finite values; the parser rejects
  // them too, so round-trip stability holds.
  H2H_EXPECTS(std::isfinite(d));
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), d);
  H2H_ASSERT(ec == std::errc());
  out.append(buf, end);
}

void dump_value(const Value& v, std::string& out) {
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_number()) {
    dump_number(v.as_number(), out);
  } else if (v.is_string()) {
    dump_string(v.as_string(), out);
  } else if (v.is_array()) {
    out += '[';
    bool first = true;
    for (const Value& e : v.as_array()) {
      if (!first) out += ',';
      first = false;
      dump_value(e, out);
    }
    out += ']';
  } else {
    out += '{';
    bool first = true;
    for (const Object::Member& m : v.as_object().members()) {
      if (!first) out += ',';
      first = false;
      dump_string(m.key, out);
      out += ':';
      dump_value(m.value, out);
    }
    out += '}';
  }
}

/// Recursive-descent parser over a string_view. Errors are reported via a
/// sticky (message, offset) pair; once set, parsing unwinds.
class Parser {
 public:
  Parser(std::string_view text, std::size_t max_depth)
      : text_(text), max_depth_(max_depth) {}

  [[nodiscard]] ParseResult run() {
    Value v = parse_value(0);
    if (failed_) return {std::nullopt, error_, error_offset_};
    skip_ws();
    if (pos_ != text_.size()) {
      return {std::nullopt, "trailing characters after JSON document", pos_};
    }
    return {std::move(v), {}, 0};
  }

 private:
  [[nodiscard]] Value fail(std::string message) {
    if (!failed_) {
      failed_ = true;
      error_ = std::move(message);
      error_offset_ = pos_;
    }
    return Value();
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  [[nodiscard]] Value parse_value(std::size_t depth) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return parse_string_value();
      case 't':
        if (consume_literal("true")) return Value(true);
        return fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Value(false);
        return fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Value(nullptr);
        return fail("invalid literal");
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
        return fail(strformat("unexpected character '%c'", c));
    }
  }

  [[nodiscard]] Value parse_object(std::size_t depth) {
    if (depth >= max_depth_) return fail("nesting too deep");
    ++pos_;  // '{'
    Object obj;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key");
      }
      std::string key;
      if (!parse_string(key)) return Value();
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return fail("expected ':' after object key");
      }
      ++pos_;
      Value v = parse_value(depth + 1);
      if (failed_) return Value();
      if (obj.find(key) != nullptr) {
        return fail(strformat("duplicate object key '%s'", key.c_str()));
      }
      obj.set(std::move(key), std::move(v));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return Value(std::move(obj));
      }
      return fail("expected ',' or '}' in object");
    }
  }

  [[nodiscard]] Value parse_array(std::size_t depth) {
    if (depth >= max_depth_) return fail("nesting too deep");
    ++pos_;  // '['
    Array arr;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    while (true) {
      Value v = parse_value(depth + 1);
      if (failed_) return Value();
      arr.push_back(std::move(v));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return Value(std::move(arr));
      }
      return fail("expected ',' or ']' in array");
    }
  }

  [[nodiscard]] Value parse_string_value() {
    std::string s;
    if (!parse_string(s)) return Value();
    return Value(std::move(s));
  }

  /// Parses a quoted string starting at pos_. Returns false (with the error
  /// recorded) on malformed input.
  [[nodiscard]] bool parse_string(std::string& out) {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        (void)fail("unescaped control character in string");
        return false;
      }
      if (c != '\\') {
        out += c;
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) {
        (void)fail("unterminated escape");
        return false;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          std::uint32_t cp = 0;
          if (!parse_hex4(cp)) return false;
          if (cp >= 0xd800 && cp <= 0xdbff) {
            // High surrogate: require the paired low surrogate.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              (void)fail("unpaired surrogate");
              return false;
            }
            pos_ += 2;
            std::uint32_t lo = 0;
            if (!parse_hex4(lo)) return false;
            if (lo < 0xdc00 || lo > 0xdfff) {
              (void)fail("invalid low surrogate");
              return false;
            }
            cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
          } else if (cp >= 0xdc00 && cp <= 0xdfff) {
            (void)fail("unpaired surrogate");
            return false;
          }
          append_utf8(cp, out);
          break;
        }
        default:
          (void)fail("invalid escape");
          return false;
      }
    }
    (void)fail("unterminated string");
    return false;
  }

  [[nodiscard]] bool parse_hex4(std::uint32_t& out) {
    if (pos_ + 4 > text_.size()) {
      (void)fail("truncated \\u escape");
      return false;
    }
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        (void)fail("invalid \\u escape");
        return false;
      }
    }
    return true;
  }

  static void append_utf8(std::uint32_t cp, std::string& out) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xc0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xe0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else {
      out += static_cast<char>(0xf0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    }
  }

  [[nodiscard]] Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    // Grammar check before from_chars: strict JSON forbids leading zeros,
    // bare '.', and '1.'-style numbers that from_chars would accept.
    const std::size_t int_start = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    const std::size_t int_len = pos_ - int_start;
    if (int_len == 0) return fail("invalid number");
    if (int_len > 1 && text_[int_start] == '0') {
      return fail("leading zeros are not allowed");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      const std::size_t frac_start = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
      if (pos_ == frac_start) return fail("digits required after '.'");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      const std::size_t exp_start = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
      if (pos_ == exp_start) return fail("digits required in exponent");
    }
    double d = 0;
    const auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, d);
    if (ec != std::errc() || ptr != text_.data() + pos_ ||
        !std::isfinite(d)) {
      return fail("number out of range");
    }
    return Value(d);
  }

  std::string_view text_;
  std::size_t max_depth_;
  std::size_t pos_ = 0;
  bool failed_ = false;
  std::string error_;
  std::size_t error_offset_ = 0;
};

}  // namespace

std::string dump(const Value& value) {
  std::string out;
  dump_value(value, out);
  return out;
}

ParseResult parse(std::string_view text, std::size_t max_depth) {
  return Parser(text, max_depth).run();
}

}  // namespace h2h::json
