#include "test_helpers.h"

#include <array>

#include "accel/analytical_models.h"
#include "util/str.h"

namespace h2h::testing {

ModelGraph make_chain_model() {
  ModelBuilder b("chain");
  const LayerId in = b.input("in", 8, 8, 8);  // 512 elems = 1 KiB @ 2B
  const LayerId a = b.conv("convA", in, 16, 3, 1);
  const LayerId c = b.conv("convB", a, 16, 3, 2);
  (void)b.fc("fcC", c, 32);
  return std::move(b).build();
}

ModelGraph make_diamond_model() {
  ModelBuilder b("diamond");
  const LayerId in = b.input("in", 8, 16, 16);
  const LayerId a = b.conv("a", in, 16, 3, 1);
  const LayerId x = b.conv("b", a, 16, 3, 1);
  const LayerId y = b.conv("c", a, 16, 3, 1);
  const LayerId d = b.eltwise("d", x, y);
  (void)b.fc("e", d, 10);
  return std::move(b).build();
}

ModelGraph make_mini_mmmt_model() {
  ModelBuilder b("mini-mmmt");
  b.set_modality(1);
  const LayerId img = b.input("img", 3, 32, 32);
  const LayerId c1 = b.conv("m1.conv1", img, 16, 3, 2);
  const LayerId c2 = b.conv("m1.conv2", c1, 32, 3, 2);
  const LayerId g1 = b.global_pool("m1.gap", c2);

  b.set_modality(2);
  const LayerId seq = b.input_seq("seq", 16, 8);
  const LayerId l1 = b.lstm("m2.lstm", seq, 32, 1);
  const LayerId g2 = b.global_pool("m2.last", l1);

  b.set_modality(0);
  const LayerId cat = b.concat("fuse.cat", std::array{g1, g2});
  const LayerId f1 = b.fc("fuse.fc", cat, 32);
  (void)b.fc("task.a", f1, 4);
  (void)b.fc("task.b", f1, 4);
  return std::move(b).build();
}

AcceleratorSpec simple_spec(const std::string& name, Bytes dram_capacity) {
  AcceleratorSpec s;
  s.name = name;
  s.description = "uniform test accelerator";
  s.board = "test";
  s.style = DataflowStyle::MatrixEngine;
  s.kinds = KindSupport{true, true, true};
  s.peak_macs_per_cycle = 100;
  s.pe = PeArray{10, 10};
  s.freq_hz = 1e9;
  s.dram_bandwidth = 10e9;
  s.dram_capacity = dram_capacity;
  s.energy_per_mac = picojoules(1);
  s.energy_per_dram_byte = nanojoules(0.1);
  s.link_power = 1.0;
  return s;
}

SystemConfig make_uniform_system(std::size_t n, double bw_acc,
                                 Bytes dram_capacity) {
  std::vector<AcceleratorPtr> accs;
  for (std::size_t i = 0; i < n; ++i)
    accs.push_back(make_analytical(
        simple_spec(strformat("U%zu", i), dram_capacity)));
  HostParams host;
  host.bw_acc = bw_acc;
  return SystemConfig(std::move(accs), host);
}

SystemConfig make_mini_hetero_system(double bw_acc) {
  std::vector<AcceleratorPtr> accs;

  AcceleratorSpec conv = simple_spec("CONV", gib(1));
  conv.style = DataflowStyle::ChannelParallel;
  conv.kinds = KindSupport{true, false, false};
  conv.peak_macs_per_cycle = 1000;  // conv champion
  conv.pe = PeArray{32, 32};
  accs.push_back(make_analytical(std::move(conv)));

  AcceleratorSpec generic = simple_spec("GEN", gib(2));
  generic.peak_macs_per_cycle = 200;
  accs.push_back(make_analytical(std::move(generic)));

  AcceleratorSpec lstm = simple_spec("LSTM", mib(512));
  lstm.style = DataflowStyle::LstmPipeline;
  lstm.kinds = KindSupport{false, true, true};
  lstm.peak_macs_per_cycle = 500;  // recurrent champion
  lstm.pe = PeArray{25, 20};
  accs.push_back(make_analytical(std::move(lstm)));

  HostParams host;
  host.bw_acc = bw_acc;
  return SystemConfig(std::move(accs), host);
}

ModelGraph make_random_model(Rng& rng) {
  ModelBuilder b(strformat("random-%lld", static_cast<long long>(
      rng.uniform_int(0, 1 << 30))));
  // A pool of CHW-shaped layers usable as conv/pool/eltwise producers.
  std::vector<LayerId> chw;
  std::vector<LayerId> flat;

  const int n_inputs = static_cast<int>(rng.uniform_int(1, 3));
  for (int i = 0; i < n_inputs; ++i) {
    b.set_modality(static_cast<std::uint32_t>(i + 1));
    chw.push_back(b.input(strformat("in%d", i),
                          static_cast<std::uint32_t>(rng.uniform_int(1, 8)),
                          32, 32));
  }

  const int n_layers = static_cast<int>(rng.uniform_int(3, 30));
  for (int i = 0; i < n_layers; ++i) {
    b.set_modality(static_cast<std::uint32_t>(rng.uniform_int(0, n_inputs)));
    const std::string name = strformat("l%d", i);
    const int kind = static_cast<int>(rng.uniform_int(0, 5));
    switch (kind) {
      case 0: {  // conv
        const LayerId from = chw[rng.index(chw.size())];
        chw.push_back(b.conv(name, from,
                             static_cast<std::uint32_t>(rng.uniform_int(4, 64)),
                             static_cast<std::uint32_t>(rng.uniform_int(1, 5)),
                             static_cast<std::uint32_t>(rng.uniform_int(1, 2))));
        break;
      }
      case 1: {  // pool
        const LayerId from = chw[rng.index(chw.size())];
        if (b.geometry(from).h >= 2)
          chw.push_back(b.pool(name, from, 2, 2));
        break;
      }
      case 2: {  // fc from anything
        const LayerId from = rng.chance(0.5) || flat.empty()
                                 ? chw[rng.index(chw.size())]
                                 : flat[rng.index(flat.size())];
        flat.push_back(b.fc(name, from,
                            static_cast<std::uint32_t>(rng.uniform_int(4, 256))));
        break;
      }
      case 3: {  // lstm over a CHW tensor's rows
        const LayerId from = chw[rng.index(chw.size())];
        const auto seq = b.geometry(from).h;
        if (seq >= 2)
          flat.push_back(b.lstm(name, from,
                                static_cast<std::uint32_t>(rng.uniform_int(8, 64)),
                                static_cast<std::uint32_t>(rng.uniform_int(1, 2)),
                                seq));
        break;
      }
      case 4: {  // eltwise of two same-shaped tensors (derive one if needed)
        const LayerId x = chw[rng.index(chw.size())];
        const LayerId twin = b.conv(name + ".twin", x,
                                    b.geometry(x).channels, 1, 1);
        chw.push_back(b.eltwise(name, x, twin));
        break;
      }
      case 5: {  // concat of two spatially equal tensors
        const LayerId x = chw[rng.index(chw.size())];
        const LayerId twin = b.conv(name + ".twin", x,
                                    static_cast<std::uint32_t>(rng.uniform_int(4, 32)),
                                    1, 1);
        chw.push_back(b.concat(name, std::array{x, twin}));
        break;
      }
      default: break;
    }
  }
  // Guarantee at least one weighted layer so mapping is non-trivial.
  (void)b.fc("head", chw.back(), 8);
  return std::move(b).build();
}

SystemConfig make_random_system(Rng& rng) {
  const int n = static_cast<int>(rng.uniform_int(2, 8));
  std::vector<AcceleratorPtr> accs;
  for (int i = 0; i < n; ++i) {
    AcceleratorSpec s = simple_spec(
        strformat("R%d", i),
        mib(static_cast<double>(rng.uniform_int(64, 4096))));
    const int style = static_cast<int>(rng.uniform_int(0, 7));
    s.style = static_cast<DataflowStyle>(style);
    const std::uint32_t da = static_cast<std::uint32_t>(rng.uniform_int(2, 64));
    const std::uint32_t db = static_cast<std::uint32_t>(rng.uniform_int(2, 64));
    s.pe = PeArray{da, db};
    s.peak_macs_per_cycle = da * db;
    s.freq_hz = mhz(static_cast<double>(rng.uniform_int(50, 400)));
    s.dram_bandwidth = gbps(rng.uniform_real(2.0, 20.0));
    s.energy_per_mac = picojoules(rng.uniform_real(10, 300));
    s.energy_per_dram_byte = picojoules(rng.uniform_real(50, 250));
    s.link_power = rng.uniform_real(1.0, 4.0);
    // Random support, biased by style.
    const bool lstm_style = s.style == DataflowStyle::LstmPipeline ||
                            s.style == DataflowStyle::GateParallel;
    s.kinds.conv = !lstm_style || rng.chance(0.2);
    s.kinds.fc = rng.chance(0.6);
    s.kinds.lstm = lstm_style || rng.chance(0.3);
    if (!s.kinds.conv && !s.kinds.fc && !s.kinds.lstm) s.kinds.fc = true;
    accs.push_back(make_analytical(std::move(s)));
  }
  // Guarantee full coverage with one generalist.
  accs.push_back(make_analytical(simple_spec("RGEN", gib(1))));
  HostParams host;
  host.bw_acc = gbps(rng.uniform_real(0.1, 2.0));
  return SystemConfig(std::move(accs), host);
}

}  // namespace h2h::testing
