#include "model/synthetic.h"

#include <algorithm>
#include <vector>

#include "model/blocks.h"
#include "model/model_builder.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/str.h"

namespace h2h {

void SyntheticMmmtSpec::validate() const {
  if (modalities < 1) throw ConfigError("synthetic: modalities must be >= 1");
  if (lstm_modalities > modalities)
    throw ConfigError("synthetic: lstm_modalities exceeds modalities");
  if (backbone_depth < 1) throw ConfigError("synthetic: empty backbones");
  if (width <= 0) throw ConfigError("synthetic: width must be > 0");
  if (input_hw < 8) throw ConfigError("synthetic: input_hw too small");
  if (seq_len < 2) throw ConfigError("synthetic: seq_len too small");
}

namespace {

/// A vision backbone: strided conv stack with channel doubling every other
/// layer, ending in global pooling. Returns the pooled feature layer.
LayerId vision_backbone(ModelBuilder& b, const SyntheticMmmtSpec& spec,
                        std::uint32_t modality, Rng& rng) {
  const LayerId in = b.input(strformat("m%u.in", modality), 3, spec.input_hw,
                             spec.input_hw);
  std::uint32_t channels = scale_channels(32, spec.width);
  LayerId x = in;
  for (std::uint32_t d = 0; d < spec.backbone_depth; ++d) {
    // Jitter keeps backbones heterogeneous (distinct best accelerators).
    const auto jitter = static_cast<std::uint32_t>(rng.uniform_int(0, 1)) * 8;
    const std::uint32_t stride = (d % 2 == 0 && b.geometry(x).h > 7) ? 2 : 1;
    x = b.conv(strformat("m%u.conv%u", modality, d + 1), x, channels + jitter,
               3, stride);
    if (d % 2 == 1) channels = std::min(channels * 2, 512u);
  }
  return b.global_pool(strformat("m%u.gap", modality), x);
}

/// A recurrent backbone: temporal convs + stacked LSTM, last-state pooled.
LayerId recurrent_backbone(ModelBuilder& b, const SyntheticMmmtSpec& spec,
                           std::uint32_t modality, Rng& rng) {
  const auto features = static_cast<std::uint32_t>(rng.uniform_int(16, 128));
  const LayerId in =
      b.input_seq(strformat("m%u.in", modality), spec.seq_len, features);
  LayerId x = in;
  const std::uint32_t conv_layers = spec.backbone_depth / 2;
  const std::uint32_t ch = scale_channels(64, spec.width);
  for (std::uint32_t d = 0; d < conv_layers; ++d) {
    x = b.conv1d(strformat("m%u.tconv%u", modality, d + 1), x, ch, 3, 1);
  }
  const std::uint32_t hidden = scale_channels(256, spec.width);
  const std::uint32_t stacks =
      std::max(1u, spec.backbone_depth - conv_layers > 4 ? 2u : 1u);
  x = b.lstm(strformat("m%u.lstm", modality), x, hidden, stacks);
  return b.global_pool(strformat("m%u.last", modality), x);
}

}  // namespace

ModelGraph make_synthetic_mmmt(const SyntheticMmmtSpec& spec) {
  spec.validate();
  Rng rng(spec.seed);
  ModelBuilder b(strformat("synthetic-m%u-d%u", spec.modalities,
                           spec.backbone_depth));

  std::vector<LayerId> features;
  std::vector<LayerId> raw_features;  // pre-pool tensors for cross-talk
  for (std::uint32_t m = 1; m <= spec.modalities; ++m) {
    b.set_modality(m);
    const bool recurrent = m > spec.modalities - spec.lstm_modalities;
    features.push_back(recurrent ? recurrent_backbone(b, spec, m, rng)
                                 : vision_backbone(b, spec, m, rng));
  }

  // Cross-talk: each backbone's pooled feature also feeds a shared
  // projection with its neighbour (the VLocNet-style auxiliary links).
  b.set_modality(0);
  if (spec.cross_talk && spec.modalities >= 2) {
    for (std::uint32_t m = 0; m + 1 < spec.modalities; ++m) {
      const LayerId pair = b.concat(strformat("xt%u.cat", m + 1),
                                    std::array{features[m], features[m + 1]});
      raw_features.push_back(
          b.fc(strformat("xt%u.proj", m + 1), pair,
               scale_channels(128, spec.width)));
    }
  }

  std::vector<LayerId> to_fuse = features;
  to_fuse.insert(to_fuse.end(), raw_features.begin(), raw_features.end());
  LayerId x = to_fuse.size() >= 2 ? b.concat("fuse.cat", to_fuse)
                                  : to_fuse.front();
  std::uint32_t fc_width = scale_channels(512, spec.width);
  for (std::uint32_t d = 0; d < spec.fusion_fc_layers; ++d) {
    x = b.fc(strformat("fuse.fc%u", d + 1), x, fc_width);
    fc_width = std::max(fc_width / 2, 64u);
  }
  for (std::uint32_t t = 0; t < spec.task_heads; ++t) {
    (void)b.fc(strformat("task%u", t + 1), x,
               static_cast<std::uint32_t>(rng.uniform_int(2, 64)));
  }
  return std::move(b).build();
}

}  // namespace h2h
