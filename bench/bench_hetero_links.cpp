// System-heterogeneity experiment: the paper's §3 notes cloud-FPGA Ethernet
// spans 1G to 10G (0.125-1.25 GB/s). The evaluation uses one BW_acc for the
// whole system; here the link topology is non-uniform — half the
// accelerators keep slow 1G links while the other half get 10G
// (Interconnect::mixed), plus a switch-fabric variant where accelerators in
// a rack group share fast intra-group links behind a slow uplink
// (Interconnect::hierarchical) — and H2H must steer traffic-heavy layers
// toward the well-connected devices.
#include <benchmark/benchmark.h>

#include <iostream>

#include "h2h.h"

namespace {

using namespace h2h;

/// 10G links on every even-indexed accelerator; the system-wide BW_acc
/// stays at 1G for the rest.
Interconnect mixed_links() {
  std::vector<Interconnect::Override> fast;
  for (std::uint32_t i = 0; i < 12; i += 2)
    fast.emplace_back(i, bandwidth_value(BandwidthSetting::High));
  return Interconnect::mixed(bandwidth_value(BandwidthSetting::LowMinus),
                             std::move(fast));
}

/// Rack-style fabric: groups of four share 10G intra-group links behind a
/// 1G uplink; host traffic rides a 0.5 GB/s link with 2 us per-hop latency.
Interconnect fabric_links() {
  Interconnect::HierarchicalSpec spec;
  spec.group_size = 4;
  spec.intra_bw = bandwidth_value(BandwidthSetting::High);
  spec.uplink_bw = bandwidth_value(BandwidthSetting::LowMinus);
  spec.host_bw = bandwidth_value(BandwidthSetting::Mid);
  spec.hop_latency_s = 2e-6;
  return Interconnect::hierarchical(spec);
}

void BM_MixedLinks_CasiaSurf(benchmark::State& state) {
  const ModelGraph model = make_casia_surf();
  const SystemConfig sys = SystemConfig::standard(mixed_links());
  for (auto _ : state) {
    const PlanResponse r = plan_once(model, sys);
    benchmark::DoNotOptimize(r.final_result().latency);
  }
}
BENCHMARK(BM_MixedLinks_CasiaSurf)->Unit(benchmark::kMillisecond);

void BM_FabricLinks_CasiaSurf(benchmark::State& state) {
  const ModelGraph model = make_casia_surf();
  const SystemConfig sys = SystemConfig::standard(fabric_links());
  for (auto _ : state) {
    const PlanResponse r = plan_once(model, sys);
    benchmark::DoNotOptimize(r.final_result().latency);
  }
}
BENCHMARK(BM_FabricLinks_CasiaSurf)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  TextTable table({"model", "uniform 1G (s)", "mixed 1G/10G (s)",
                   "hier fabric (s)", "uniform 10G (s)", "mixed vs slow",
                   "fast-link layers"},
                  {TextTable::Align::Left});
  for (const ZooInfo& info : zoo_catalog()) {
    const ModelGraph model = make_model(info.id);
    const SystemConfig slow =
        SystemConfig::standard(BandwidthSetting::LowMinus);
    const SystemConfig fast = SystemConfig::standard(BandwidthSetting::High);
    const SystemConfig mixed = SystemConfig::standard(mixed_links());
    const SystemConfig fabric = SystemConfig::standard(fabric_links());

    const double lat_slow = plan_once(model, slow).final_result().latency;
    const double lat_fast = plan_once(model, fast).final_result().latency;
    const PlanResponse r_mixed = plan_once(model, mixed);
    const PlanResponse r_fabric = plan_once(model, fabric);

    // How many layers ended up on accelerators with a fast host link?
    std::size_t on_fast = 0, total = 0;
    for (const LayerId id : model.all_layers()) {
      if (model.layer(id).kind == LayerKind::Input) continue;
      ++total;
      const AccId a = r_mixed.mapping.acc_of(id);
      if (mixed.bw_acc(a) > mixed.links().base_bw()) ++on_fast;
    }

    table.add_row({std::string(info.key), strformat("%.6f", lat_slow),
                   strformat("%.6f", r_mixed.final_result().latency),
                   strformat("%.6f", r_fabric.final_result().latency),
                   strformat("%.6f", lat_fast),
                   format_percent(
                       1.0 - r_mixed.final_result().latency / lat_slow, 1),
                   strformat("%zu/%zu", on_fast, total)});
  }
  std::cout << "heterogeneous link-topology experiment "
               "(1G vs mixed vs fabric vs 10G):\n";
  table.print(std::cout);
  std::cout << "\n(non-uniform topologies recover part of the fast-uniform\n"
               "latency by steering traffic-heavy layers onto well-connected\n"
               "devices)\n\n";

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
