// Deterministic random number generation for property tests and synthetic
// workload generators. A thin wrapper around std::mt19937_64 with a pinned
// seed policy: every consumer takes an explicit seed so runs are reproducible
// across machines (Core Guidelines: no hidden global state).
#pragma once

#include <cstdint>
#include <random>

#include "util/contracts.h"

namespace h2h {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    H2H_EXPECTS(lo <= hi);
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [lo, hi). Requires lo < hi.
  [[nodiscard]] double uniform_real(double lo, double hi) {
    H2H_EXPECTS(lo < hi);
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Bernoulli trial with probability p in [0, 1].
  [[nodiscard]] bool chance(double p) {
    H2H_EXPECTS(p >= 0.0 && p <= 1.0);
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Pick an index in [0, n). Requires n > 0.
  [[nodiscard]] std::size_t index(std::size_t n) {
    H2H_EXPECTS(n > 0);
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
  }

  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace h2h
