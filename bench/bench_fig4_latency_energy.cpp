// Regenerates Figure 4: latency (s) and energy (J) of all six MMMT models
// across the four H2H steps at the five bandwidth settings, plus the
// headline reduction summary (paper: 15-74% latency, 23-64% energy at Low-).
// Also dumps the sweep to bench_fig4.csv and times one representative
// pipeline under google-benchmark.
#include <benchmark/benchmark.h>

#include <fstream>
#include <iostream>

#include "h2h.h"

namespace {

void BM_FullPipeline_VLocNet_LowMinus(benchmark::State& state) {
  const h2h::ModelGraph model = h2h::make_vlocnet();
  const h2h::SystemConfig sys =
      h2h::SystemConfig::standard(h2h::BandwidthSetting::LowMinus);
  for (auto _ : state) {
    const h2h::PlanResponse r = h2h::plan_once(model, sys);
    benchmark::DoNotOptimize(r.final_result().latency);
  }
}
BENCHMARK(BM_FullPipeline_VLocNet_LowMinus)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const std::vector<h2h::StepSeries> sweep = h2h::run_full_sweep();
  h2h::print_fig4(sweep, std::cout);

  std::ofstream csv("bench_fig4.csv");
  h2h::write_sweep_csv(sweep, csv);
  std::cout << "\n(wrote bench_fig4.csv)\n\n";

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
