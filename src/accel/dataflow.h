// Dataflow-style utilization models: the "computation awareness" term.
//
// Each surveyed accelerator is specialized for a dataflow (channel-parallel
// NVDLA-like arrays, feature-map-parallel Shi-diannao-like arrays,
// row-stationary Eyeriss-like arrays, systolic GEMM arrays, Winograd
// engines, generic matrix engines, and two LSTM microarchitectures). A
// layer's effective throughput on an accelerator is
//     peak_macs_per_cycle x utilization(style, pe_array, layer)
// where utilization combines (a) a base affinity of the style for the layer
// kind and (b) alignment of the layer's parallelizable dimensions to the PE
// array geometry. Winograd may exceed 1.0 on 3x3/s1 convolutions (it is an
// effective-MACs ratio, not an occupancy).
#pragma once

#include <cstdint>
#include <string_view>

#include "model/layer.h"

namespace h2h {

enum class DataflowStyle : std::uint8_t {
  ChannelParallel,     // Tm x Tn output/input-channel MAC array (C.Z, W.J, T.M)
  FeatureMapParallel,  // Px x Py output-pixel PEs, Shi-diannao-like (A.C)
  RowStationary,       // Eyeriss-like filter-row x output-row mapping
  Systolic,            // 2-D systolic GEMM array (X.W)
  Winograd,            // transformed 3x3 convolution engine (A.P)
  MatrixEngine,        // generic tiled GEMM/GEMV engine (J.Z, J.Q, Y.G)
  LstmPipeline,        // deeply pipelined LSTM datapath, ESE-like (S.H, B.L)
  GateParallel,        // four-gate-parallel LSTM engine (X.Z)
};

[[nodiscard]] std::string_view to_string(DataflowStyle style) noexcept;

/// PE-array geometry. The dimension semantics depend on the style (e.g.
/// ChannelParallel: dim_a = output-channel lanes Tm, dim_b = input-channel
/// lanes Tn; FeatureMapParallel: output rows x cols; Systolic: rows x cols).
struct PeArray {
  std::uint32_t dim_a = 1;
  std::uint32_t dim_b = 1;

  [[nodiscard]] constexpr std::uint64_t size() const noexcept {
    return static_cast<std::uint64_t>(dim_a) * dim_b;
  }
};

/// Fraction of `tile` lanes doing useful work when `work` units are folded
/// onto them: work / (ceil(work/tile) * tile). In (0, 1]; 1 when tile
/// divides work.
[[nodiscard]] double alignment_fraction(std::uint64_t work, std::uint32_t tile);

/// Effective fraction of peak MAC throughput for `layer` under `style`.
/// Returns 0 for layers with no MAC work (Input/Pool/Eltwise/Concat; their
/// vector cost is handled separately by the accelerator model).
[[nodiscard]] double utilization(DataflowStyle style, const PeArray& pe,
                                 const Layer& layer);

}  // namespace h2h
