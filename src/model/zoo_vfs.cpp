// VFS (Thuseethan et al., WI-IAT 2020): visual-textual sentiment analysis.
// A VGG-16 image stream and a VD-CNN-29 text stream are fused through a
// large joint MLP; the fusion FCs carry most of the 365M parameters and
// create the heavy cross-modality traffic the paper's motivation describes.
//
// Modality tags: 1 = image, 2 = text, 0 = fusion.
#include "model/blocks.h"
#include "model/zoo.h"

namespace h2h {

ModelGraph make_vfs() {
  ModelBuilder b("VFS");

  // Image stream: VGG-16 trunk + fc6/fc7.
  b.set_modality(1);
  const LayerId img = b.input("image", 3, 224, 224);
  const LayerId vgg = vgg16_backbone(b, img, "img");
  const LayerId fc6 = b.fc("img.fc6", vgg, 4096);
  const LayerId fc7 = b.fc("img.fc7", fc6, 4096);

  // Text stream: VD-CNN-29 over a 1024-character sequence with a 16-wide
  // embedding, k-max pooling to 8 positions, then two dense layers.
  b.set_modality(2);
  const LayerId txt = b.input_seq("text", 1024, 16);
  const LayerId vdcnn = vdcnn_backbone(b, txt, "txt");
  const LayerId kmax = b.pool("txt.kmax", vdcnn, 16, 16);
  const LayerId tfc1 = b.fc("txt.fc1", kmax, 2048);
  const LayerId tfc2 = b.fc("txt.fc2", tfc1, 2048);

  // Joint sentiment MLP.
  b.set_modality(0);
  const LayerId cat = b.concat("fuse.concat", std::array{fc7, tfc2});
  const LayerId f1 = b.fc("fuse.fc1", cat, 8192);
  const LayerId f2 = b.fc("fuse.fc2", f1, 8192);
  const LayerId f3 = b.fc("fuse.fc3", f2, 8192);
  const LayerId f4 = b.fc("fuse.fc4", f3, 4096);
  const LayerId f5 = b.fc("fuse.fc5", f4, 1024);
  (void)b.fc("fuse.sentiment", f5, 3);

  return std::move(b).build();
}

}  // namespace h2h
