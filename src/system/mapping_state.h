// Mapping and locality state shared by the H2H passes and the simulator.
//
// Mapping: layer -> accelerator assignment plus a global execution-priority
// sequence (the order step 1 mapped the layers in, which is topological).
// Each accelerator executes its layers FIFO in sequence order — the paper's
// per-accelerator computation graphs G_Acc_i. Alongside the flat assignment,
// the mapping maintains one seq-sorted member list per accelerator
// (members()), kept incrementally by assign/reassign and restored by the
// journal, so per-accelerator queries cost O(|queue|), not O(V).
//
// LocalityPlan: which layers' weights are pinned in local DRAM (step 2) and
// which edges are activation-fused (step 3). Steps 2-4 recompute this plan;
// the simulator consumes it. Fusion flags live in a flat CSR-indexed bitset
// keyed by edge index (offset of the consumer + predecessor slot), so the
// plan is two bitsets plus a byte-count array — cheap to probe and journal.
//
// Journals: the step-4 remapping loop probes hundreds of candidate moves per
// pass. Instead of deep-copying the state per candidate, both classes record
// touched entries while a journal is open (begin_journal) and roll them back
// in O(touched) (rollback_journal). The journal buffers keep their capacity
// across probes, so steady-state candidate evaluation performs no
// allocations here.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "model/model_graph.h"
#include "system/system_config.h"

namespace h2h {

class Mapping {
 public:
  /// All layers unassigned except Input layers, which live on the host.
  explicit Mapping(const ModelGraph& model);

  [[nodiscard]] std::size_t size() const noexcept { return assignment_.size(); }

  [[nodiscard]] bool is_assigned(LayerId id) const {
    H2H_EXPECTS(id.value < assignment_.size());
    return assignment_[id.value].valid();
  }
  [[nodiscard]] AccId acc_of(LayerId id) const {
    H2H_EXPECTS(is_assigned(id));
    return assignment_[id.value];
  }
  [[nodiscard]] std::uint32_t seq_of(LayerId id) const {
    H2H_EXPECTS(is_assigned(id));
    return seq_[id.value];
  }

  /// First-time assignment with the next execution priority. Not allowed
  /// while a journal is open (it would also have to roll back the priority
  /// counter; step 4 only ever reassigns).
  void assign(LayerId id, AccId acc);

  /// Step-4 remapping: change the accelerator, keep the priority. Journaled.
  void reassign(LayerId id, AccId acc);

  /// Start recording reassignments. One journal at a time.
  void begin_journal();
  /// Undo every reassignment since begin_journal, newest first, and close
  /// the journal. O(touched).
  void rollback_journal();
  /// Keep the changes and close the journal.
  void commit_journal();
  [[nodiscard]] bool journal_open() const noexcept { return journaling_; }

  [[nodiscard]] bool complete() const noexcept;

  /// Per-accelerator FIFO queues (layers sorted by sequence).
  [[nodiscard]] std::vector<std::vector<LayerId>> acc_queues(
      const SystemConfig& sys) const;

  /// Layers mapped to `acc`, sorted by sequence — a view of the maintained
  /// member list (valid until the next assign/reassign/rollback). The lists
  /// are updated in O(|src list| + |dst list|) per reassign and rolled back
  /// by the journal, so the step-4 probe internals read per-accelerator
  /// membership without any O(V) scan (DESIGN.md §6).
  [[nodiscard]] std::span<const LayerId> members(AccId acc) const {
    H2H_EXPECTS(acc.valid());
    if (acc.is_host()) return host_members_;
    if (acc.value >= members_.size()) return {};
    return members_[acc.value];
  }

  /// Layers mapped to `acc`, sorted by sequence (a copy of members()).
  [[nodiscard]] std::vector<LayerId> layers_on(AccId acc) const;
  /// Same, filling a caller-owned buffer (cleared first) so hot loops can
  /// reuse its capacity instead of allocating per query.
  void layers_on(AccId acc, std::vector<LayerId>& out) const;

  /// Distinct accelerators that have at least one layer, ascending.
  [[nodiscard]] std::vector<AccId> used_accelerators() const;

  /// Throws ConfigError if any layer sits on an accelerator that does not
  /// support its kind, or a non-Input layer is on the host, or an Input
  /// layer is not on the host. `model` must be the graph this mapping was
  /// built for (the mapping stores no back-pointer so that result structs
  /// stay freely movable).
  void validate(const ModelGraph& model, const SystemConfig& sys) const;

 private:
  /// Move `id` from the member list it currently sits in (per assignment_)
  /// into `dst`'s list, keeping both seq-sorted.
  void relocate_member(LayerId id, AccId dst);

  std::vector<AccId> assignment_;
  std::vector<std::uint32_t> seq_;
  std::vector<std::vector<LayerId>> members_;  // per acc, seq-sorted
  std::vector<LayerId> host_members_;          // Input layers, seq-sorted
  std::uint32_t next_seq_ = 0;
  bool journaling_ = false;
  std::vector<std::pair<std::uint32_t, AccId>> journal_;  // (layer, old acc)
};

class LocalityPlan {
 public:
  /// Zero-locality plan (step 1 semantics): nothing pinned, nothing fused.
  explicit LocalityPlan(const ModelGraph& model);

  [[nodiscard]] bool pinned(LayerId id) const {
    H2H_EXPECTS(id.value < pinned_.size());
    return pinned_[id.value];
  }
  void set_pinned(LayerId id, bool value);

  /// Fusion flag of the in-edge `pred_index` (index into graph.preds(id)).
  [[nodiscard]] bool fused_in(LayerId id, std::size_t pred_index) const {
    return fused_[edge_index(id, pred_index)];
  }
  void set_fused_in(LayerId id, std::size_t pred_index, bool value);

  /// Fusion flag of the edge producer -> consumer (looked up by scanning the
  /// consumer's predecessor list).
  [[nodiscard]] bool edge_fused(const ModelGraph& model, LayerId producer,
                                LayerId consumer) const;

  /// Clear all fusion flags (pins are kept).
  void clear_fusion();
  /// Clear all pins (fusion flags are kept).
  void clear_pins();

  /// Local DRAM bytes committed on each accelerator (pinned weights plus
  /// fused activation buffers). Maintained by the locality passes.
  [[nodiscard]] Bytes used_dram(AccId acc) const;
  void set_used_dram(AccId acc, Bytes bytes);
  void ensure_acc_count(std::size_t count);

  /// Start recording pin/fusion/DRAM changes. One journal at a time.
  void begin_journal();
  /// Layers whose transfer components may differ because of changes recorded
  /// in the open journal: a pin flip touches the layer itself; a fusion flip
  /// touches the consumer (its in-transfer) and the edge's producer (its
  /// host write depends on all consumers' flags). Appends to `out`; may
  /// contain duplicates — consumers dedup as needed. O(touched).
  void journal_touched_layers(const ModelGraph& model,
                              std::vector<LayerId>& out) const;
  /// Undo every recorded change and close the journal. O(touched).
  void rollback_journal();
  /// Keep the changes and close the journal.
  void commit_journal();
  [[nodiscard]] bool journal_open() const noexcept { return journaling_; }

  [[nodiscard]] std::size_t pinned_count() const noexcept;
  [[nodiscard]] std::size_t fused_edge_count() const noexcept;

 private:
  [[nodiscard]] std::size_t edge_index(LayerId id,
                                       std::size_t pred_index) const {
    H2H_EXPECTS(id.value + 1 < fused_offset_.size());
    H2H_EXPECTS(fused_offset_[id.value] + pred_index <
                fused_offset_[id.value + 1]);
    return fused_offset_[id.value] + pred_index;
  }

  std::vector<bool> pinned_;
  std::vector<std::uint32_t> fused_offset_;  // CSR: layer -> first edge index
  std::vector<std::uint32_t> fused_consumer_;  // CSR inverse: edge -> layer
  std::vector<bool> fused_;                  // flat bitset keyed by edge index
  std::vector<Bytes> used_dram_;

  // Journal: booleans only ever flip, so recording the flipped index is
  // enough to undo (an index flipped twice undoes to its original value
  // either way). DRAM totals record (accelerator, previous bytes).
  bool journaling_ = false;
  std::vector<std::uint32_t> journal_pins_;
  std::vector<std::uint32_t> journal_fused_;
  std::vector<std::pair<std::uint32_t, Bytes>> journal_dram_;
};

}  // namespace h2h
