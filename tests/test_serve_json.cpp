// The serve JSON codec (serve/json.h): strictness of the parser and the
// determinism contract — for documents this codec produced,
// serialize -> parse -> re-serialize is byte-stable.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "serve/json.h"
#include "util/rng.h"

namespace h2h {
namespace {

using json::Array;
using json::Object;
using json::Value;

[[nodiscard]] Value parse_ok(const std::string& text) {
  json::ParseResult r = json::parse(text);
  EXPECT_TRUE(r.value.has_value()) << text << " -> " << r.error;
  return r.value ? std::move(*r.value) : Value();
}

void expect_parse_fails(const std::string& text, const char* why) {
  const json::ParseResult r = json::parse(text);
  EXPECT_FALSE(r.value.has_value()) << why << ": " << text;
  EXPECT_FALSE(r.error.empty());
}

TEST(ServeJson, DumpsScalarsCanonically) {
  EXPECT_EQ(json::dump(Value(nullptr)), "null");
  EXPECT_EQ(json::dump(Value(true)), "true");
  EXPECT_EQ(json::dump(Value(false)), "false");
  EXPECT_EQ(json::dump(Value(1.0)), "1");
  EXPECT_EQ(json::dump(Value(0.5)), "0.5");
  EXPECT_EQ(json::dump(Value(-3.25)), "-3.25");
  EXPECT_EQ(json::dump(Value("hi")), "\"hi\"");
  EXPECT_EQ(json::dump(Value("a\"b\\c\n")), "\"a\\\"b\\\\c\\n\"");
  EXPECT_EQ(json::dump(Value(std::string("\x01", 1))), "\"\\u0001\"");
}

TEST(ServeJson, ObjectsPreserveInsertionOrder) {
  Object obj;
  obj.set("zebra", Value(1.0));
  obj.set("alpha", Value(2.0));
  obj.set("mid", Value(3.0));
  EXPECT_EQ(json::dump(Value(std::move(obj))),
            "{\"zebra\":1,\"alpha\":2,\"mid\":3}");
}

TEST(ServeJson, SetOverwritesInPlace) {
  Object obj;
  obj.set("a", Value(1.0));
  obj.set("b", Value(2.0));
  obj.set("a", Value(9.0));
  EXPECT_EQ(json::dump(Value(std::move(obj))), "{\"a\":9,\"b\":2}");
}

TEST(ServeJson, ParsesNestedDocuments) {
  const Value v = parse_ok(
      R"({"a":[1,2.5,-3e2],"b":{"c":true,"d":null},"e":"x\u0041y"})");
  const Object& obj = v.as_object();
  ASSERT_NE(obj.find("a"), nullptr);
  EXPECT_EQ(obj.find("a")->as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(obj.find("a")->as_array()[2].as_number(), -300.0);
  EXPECT_TRUE(obj.find("b")->as_object().find("c")->as_bool());
  EXPECT_TRUE(obj.find("b")->as_object().find("d")->is_null());
  EXPECT_EQ(obj.find("e")->as_string(), "xAy");
}

TEST(ServeJson, ParserIsStrict) {
  expect_parse_fails("", "empty input");
  expect_parse_fails("{\"a\":1,}", "trailing comma");
  expect_parse_fails("[1 2]", "missing comma");
  expect_parse_fails("{\"a\":1} extra", "trailing garbage");
  expect_parse_fails("{'a':1}", "single quotes");
  expect_parse_fails("{\"a\":01}", "leading zero");
  expect_parse_fails("{\"a\":1.}", "bare trailing dot");
  expect_parse_fails("{\"a\":.5}", "bare leading dot");
  expect_parse_fails("{\"a\":+1}", "leading plus");
  expect_parse_fails("NaN", "non-finite literal");
  expect_parse_fails("Infinity", "non-finite literal");
  expect_parse_fails("{\"a\":1e999}", "overflow to infinity");
  expect_parse_fails("{\"a\":1,\"a\":2}", "duplicate key");
  expect_parse_fails("\"\x01\"", "unescaped control char");
  expect_parse_fails("\"\\ud800\"", "unpaired surrogate");
  expect_parse_fails("// no comments\n1", "comments");
}

TEST(ServeJson, DepthLimitStopsHostileNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  for (int i = 0; i < 100; ++i) deep += ']';
  expect_parse_fails(deep, "100 levels vs default max_depth 64");
  // A generous explicit limit accepts the same document.
  EXPECT_TRUE(json::parse(deep, 128).value.has_value());
}

TEST(ServeJson, SurrogatePairsDecodeToUtf8) {
  const Value v = parse_ok("\"\\ud83d\\ude00\"");  // U+1F600
  EXPECT_EQ(v.as_string(), "\xf0\x9f\x98\x80");
}

/// Deterministic random document generator for the round-trip property.
[[nodiscard]] Value random_value(Rng& rng, int depth) {
  const int kind = static_cast<int>(rng.uniform_int(0, depth >= 3 ? 3 : 5));
  switch (kind) {
    case 0:
      return Value(nullptr);
    case 1:
      return Value(rng.chance(0.5));
    case 2: {
      // Mix of magnitudes, including values whose shortest form uses
      // exponent notation.
      const double mag = rng.uniform_real(-12, 12);
      const double v = rng.uniform_real(-1, 1) * std::pow(10.0, mag);
      return Value(v);
    }
    case 3: {
      std::string s;
      const std::size_t len = static_cast<std::size_t>(rng.uniform_int(0, 8));
      for (std::size_t i = 0; i < len; ++i) {
        // Printable ASCII plus the escaped specials.
        const char* alphabet = "abz019 \"\\\n\t{}[]:,";
        s += alphabet[rng.index(16)];
      }
      return Value(std::move(s));
    }
    case 4: {
      Array arr;
      const std::size_t n = static_cast<std::size_t>(rng.uniform_int(0, 4));
      for (std::size_t i = 0; i < n; ++i) {
        arr.push_back(random_value(rng, depth + 1));
      }
      return Value(std::move(arr));
    }
    default: {
      Object obj;
      const std::size_t n = static_cast<std::size_t>(rng.uniform_int(0, 4));
      for (std::size_t i = 0; i < n; ++i) {
        obj.set("k" + std::to_string(i), random_value(rng, depth + 1));
      }
      return Value(std::move(obj));
    }
  }
}

class JsonRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JsonRoundTrip, SerializeParseReserializeIsByteStable) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    const Value doc = random_value(rng, 0);
    const std::string once = json::dump(doc);
    json::ParseResult parsed = json::parse(once);
    ASSERT_TRUE(parsed.value.has_value()) << once << " -> " << parsed.error;
    const std::string twice = json::dump(*parsed.value);
    EXPECT_EQ(once, twice);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonRoundTrip,
                         ::testing::Values(1u, 2u, 3u, 17u, 1234567u));

}  // namespace
}  // namespace h2h
