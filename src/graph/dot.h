// Graphviz export for debugging and documentation figures.
#pragma once

#include <functional>
#include <string>

#include "graph/digraph.h"

namespace h2h {

/// Render `g` as a Graphviz digraph. `label` provides per-node labels;
/// `attrs` (optional) provides extra per-node attribute strings such as
/// `fillcolor=...` used to visualize mappings.
[[nodiscard]] std::string to_dot(
    const Digraph& g, const std::function<std::string(NodeId)>& label,
    const std::function<std::string(NodeId)>& attrs = nullptr);

}  // namespace h2h
