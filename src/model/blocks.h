// Reusable network blocks for the model zoo: ResNet stems/stages, VGG
// stages, and VD-CNN text-convolution blocks. All helpers append layers to a
// ModelBuilder and return the block's output layer.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "model/model_builder.h"

namespace h2h {

/// 7x7 s2 conv + 3x3 s2 max pool (the classic ResNet stem).
LayerId resnet_stem(ModelBuilder& b, LayerId from, std::uint32_t out_channels,
                    const std::string& prefix);

/// Two 3x3 convs + identity/projection shortcut (ResNet-18/34 block).
LayerId resnet_basic_block(ModelBuilder& b, LayerId from,
                           std::uint32_t out_channels, std::uint32_t stride,
                           const std::string& prefix);

/// 1x1 reduce, 3x3, 1x1 expand + shortcut (ResNet-50 block).
LayerId resnet_bottleneck(ModelBuilder& b, LayerId from, std::uint32_t mid_channels,
                          std::uint32_t out_channels, std::uint32_t stride,
                          const std::string& prefix);

/// `blocks` basic blocks; the first uses `stride`.
LayerId resnet_stage_basic(ModelBuilder& b, LayerId from,
                           std::uint32_t out_channels, std::uint32_t blocks,
                           std::uint32_t stride, const std::string& prefix);

/// `blocks` bottlenecks; the first uses `stride`.
LayerId resnet_stage_bottleneck(ModelBuilder& b, LayerId from,
                                std::uint32_t mid_channels,
                                std::uint32_t out_channels, std::uint32_t blocks,
                                std::uint32_t stride, const std::string& prefix);

/// Full ResNet-18 convolutional trunk (stem + 4 stages), `width` scales
/// channel counts (rounded to a multiple of 8). Returns the res5 feature map.
LayerId resnet18_backbone(ModelBuilder& b, LayerId from, const std::string& prefix,
                          double width = 1.0, std::uint32_t stages = 4);

/// Full ResNet-50 convolutional trunk. `stages` in [1,4] allows truncation.
LayerId resnet50_backbone(ModelBuilder& b, LayerId from, const std::string& prefix,
                          double width = 1.0, std::uint32_t stages = 4);

/// VGG-16 convolutional trunk (13 convs in 5 stages with pooling).
LayerId vgg16_backbone(ModelBuilder& b, LayerId from, const std::string& prefix);

/// VD-CNN text trunk: embedding-like first conv, then conv pairs at widths
/// {64,128,256,512} with pooling halvings between widths. The default pair
/// distribution {5,5,2,2} reproduces VD-CNN-29 (1 stem + 28 convs).
LayerId vdcnn_backbone(ModelBuilder& b, LayerId from, const std::string& prefix,
                       std::array<std::uint32_t, 4> pairs = {5, 5, 2, 2});

/// Scale a channel count, rounding to a multiple of 8 with a floor of 8.
[[nodiscard]] std::uint32_t scale_channels(std::uint32_t channels, double width);

}  // namespace h2h
