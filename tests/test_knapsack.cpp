#include <gtest/gtest.h>

#include "core/knapsack.h"
#include "util/contracts.h"
#include "util/error.h"
#include "util/rng.h"

namespace h2h {
namespace {

TEST(Knapsack, AllFitFastPath) {
  const KnapsackItem items[] = {{1, 100, 1.0}, {2, 200, 2.0}, {3, 50, 0.5}};
  const KnapsackSolution s =
      solve_knapsack(items, 1000, KnapsackAlgo::ExactDp);
  EXPECT_EQ(s.selected, (std::vector<std::uint32_t>{1, 2, 3}));
  EXPECT_EQ(s.used, 350u);
  EXPECT_DOUBLE_EQ(s.value, 3.5);
}

TEST(Knapsack, ClassicSelection) {
  // Capacity 4: {w3,v3} + {w2,v2}+{w2,v2} -> best is the two 2s (v=4).
  const KnapsackItem items[] = {{1, 3, 3.0}, {2, 2, 2.0}, {3, 2, 2.0}};
  for (const KnapsackAlgo algo :
       {KnapsackAlgo::ExactDp, KnapsackAlgo::BruteForce}) {
    const KnapsackSolution s = solve_knapsack(items, 4, algo);
    EXPECT_EQ(s.selected, (std::vector<std::uint32_t>{2, 3}));
    EXPECT_DOUBLE_EQ(s.value, 4.0);
    EXPECT_EQ(s.used, 4u);
  }
}

TEST(Knapsack, GreedyCanBeSuboptimalButNeverOverfills) {
  // Greedy takes the density-1.5 item (w2), then cannot fit both w3s.
  const KnapsackItem items[] = {{1, 2, 3.0}, {2, 3, 4.0}, {3, 3, 4.0}};
  const KnapsackSolution g =
      solve_knapsack(items, 6, KnapsackAlgo::GreedyDensity);
  const KnapsackSolution opt =
      solve_knapsack(items, 6, KnapsackAlgo::BruteForce);
  EXPECT_LE(g.used, 6u);
  EXPECT_LE(g.value, opt.value);
  EXPECT_DOUBLE_EQ(opt.value, 8.0);  // the two w3 items
}

TEST(Knapsack, ZeroCapacitySelectsOnlyFreeItems) {
  const KnapsackItem items[] = {{1, 10, 1.0}, {2, 0, 0.5}};
  for (const KnapsackAlgo algo :
       {KnapsackAlgo::ExactDp, KnapsackAlgo::GreedyDensity,
        KnapsackAlgo::BruteForce}) {
    const KnapsackSolution s = solve_knapsack(items, 0, algo);
    EXPECT_EQ(s.selected, (std::vector<std::uint32_t>{2})) << int(algo);
    EXPECT_EQ(s.used, 0u);
  }
}

TEST(Knapsack, OversizedItemIgnored) {
  const KnapsackItem items[] = {{1, 100, 10.0}, {2, 5, 1.0}};
  const KnapsackSolution s = solve_knapsack(items, 10, KnapsackAlgo::ExactDp);
  EXPECT_EQ(s.selected, (std::vector<std::uint32_t>{2}));
}

TEST(Knapsack, EmptyItems) {
  const KnapsackSolution s =
      solve_knapsack({}, 100, KnapsackAlgo::ExactDp);
  EXPECT_TRUE(s.selected.empty());
  EXPECT_EQ(s.used, 0u);
}

TEST(Knapsack, QuantizationNeverOverfills) {
  // Capacity forces coarse units; rounded-up weights must still respect the
  // true capacity.
  std::vector<KnapsackItem> items;
  for (std::uint32_t i = 0; i < 50; ++i)
    items.push_back({i, 1000003, 1.0});  // just over the 1e6 unit boundary
  const Bytes cap = 10 * 1000000;
  const KnapsackSolution s =
      solve_knapsack(items, cap, KnapsackAlgo::ExactDp, /*max_dp_units=*/10);
  EXPECT_LE(s.used, cap);
}

TEST(Knapsack, BruteForceGuardsSize) {
  std::vector<KnapsackItem> items(25, KnapsackItem{0, 1, 1.0});
  EXPECT_THROW(
      (void)solve_knapsack(items, 1, KnapsackAlgo::BruteForce),
      ContractViolation);
}

// Property: exact DP at byte granularity matches brute force on random
// instances; greedy is never better than exact.
class KnapsackProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KnapsackProperty, DpMatchesBruteForce) {
  Rng rng(GetParam());
  const int n = static_cast<int>(rng.uniform_int(1, 12));
  std::vector<KnapsackItem> items;
  Bytes total = 0;
  for (int i = 0; i < n; ++i) {
    const Bytes w = static_cast<Bytes>(rng.uniform_int(1, 64));
    total += w;
    items.push_back({static_cast<std::uint32_t>(i), w,
                     rng.uniform_real(0.1, 10.0)});
  }
  const Bytes cap = static_cast<Bytes>(rng.uniform_int(
      0, static_cast<std::int64_t>(total)));
  // max_dp_units >= capacity => unit size 1 byte => exact.
  const KnapsackSolution dp = solve_knapsack(
      items, cap, KnapsackAlgo::ExactDp,
      static_cast<std::uint32_t>(std::max<Bytes>(cap, 1)));
  const KnapsackSolution bf =
      solve_knapsack(items, cap, KnapsackAlgo::BruteForce);
  const KnapsackSolution greedy =
      solve_knapsack(items, cap, KnapsackAlgo::GreedyDensity);
  EXPECT_NEAR(dp.value, bf.value, 1e-9);
  EXPECT_LE(dp.used, cap);
  EXPECT_LE(greedy.value, bf.value + 1e-9);
  EXPECT_LE(greedy.used, cap);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KnapsackProperty,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace h2h
