// Step 2 — weight locality optimization (paper §4.2).
//
// For each accelerator, a knapsack selects which of its layers' weights to
// pin in local DRAM (capacity M_acc): item weight = weight bytes, item value
// = host-transfer time saved per inference (bytes/BW_acc - bytes/BW_dram).
// The plan's pin flags and per-accelerator DRAM usage are updated; fusion
// flags are left untouched (step 3 runs after this pass and re-checks
// remaining capacity).
//
// Non-uniform link topologies: weights always stage over the accelerator's
// host link, so bw_host(acc) — the topology's per-accelerator host-link
// speed — keeps the item values exact. Only the (unmodeled here) per-hop
// latency term makes the value a heuristic under hierarchical fabrics; the
// simulator remains the single source of truth for the objective
// (DESIGN.md §9).
#pragma once

#include <functional>
#include <span>

#include "core/knapsack.h"
#include "system/simulator.h"

namespace h2h {

struct WeightLocalityOptions {
  KnapsackAlgo algo = KnapsackAlgo::ExactDp;
  std::uint32_t max_dp_units = 4096;
  /// Optional per-layer force-pin flags (dynamic-modality extension §4.5:
  /// weights already resident on the accelerator are pinned first, before
  /// the knapsack distributes the remaining capacity).
  const std::vector<bool>* force_pin = nullptr;
};

/// Reusable buffers for the pass. The step-4 probe loop runs this pass per
/// candidate move; threading one scratch through keeps the steady state free
/// of per-probe allocations.
struct WeightLocalityScratch {
  std::vector<KnapsackItem> items;
  KnapsackSolution solution;  // uncached-solve storage
};

/// Recompute weight pins. If `only_accs` is empty all accelerators are
/// re-optimized; otherwise only the listed ones (step-4 inner loop).
/// Returns the total saved host-transfer seconds (sum of selected values).
double optimize_weight_locality(const Simulator& sim, const Mapping& mapping,
                                LocalityPlan& plan,
                                const WeightLocalityOptions& options = {},
                                std::span<const AccId> only_accs = {},
                                WeightLocalityScratch* scratch = nullptr);

/// Single-accelerator pass over an explicit member list (`members` must be
/// Mapping::members(acc)). This is the unit the full pass iterates and the
/// step-4 delta evaluation falls back to when capacity pressure changes the
/// knapsack frontier (DESIGN.md §6). When `cache` is non-null the knapsack
/// solve is memoized through it — exact-match memoization, so the resulting
/// pins/DRAM state is bit-identical either way. Returns the saved
/// host-transfer seconds on this accelerator.
double optimize_weight_locality_acc(const CostTable& costs,
                                    std::span<const LayerId> members,
                                    LocalityPlan& plan,
                                    const WeightLocalityOptions& options,
                                    AccId acc, WeightLocalityScratch& scratch,
                                    KnapsackCache* cache = nullptr);

}  // namespace h2h
