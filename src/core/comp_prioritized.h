// Step 1 — computation-prioritized mapping (paper §4.1).
//
// Iteratively take the frontier ("all the nodes without predecessors" among
// unmapped layers), enumerate every frontier -> accelerator assignment, and
// commit the one with the smallest system-latency increment. Zero data
// locality is assumed: every layer's weights and activations cross the host
// link, so the choice is driven by compute affinity and queue serialization.
// Waves come from an indegree-counting FrontierWorklist (O(V + E) total) and
// per-candidate durations are cost-table reads — no per-query model
// evaluation.
//
// Enumeration is exact while the candidate product stays within
// `max_candidates`; larger frontiers are split into deterministic chunks
// mapped greedily in sequence. The enumeration itself is a lex-order DFS
// with incremental accelerator tails: subtrees are cut by a
// makespan-lower-bound check and (when `use_dominance`) by an exact
// dominance table over partial-assignment signatures (DESIGN.md §10). Ties
// beyond (makespan, finish-sum) keep the assignment the legacy mixed-radix
// loop enumerated first — the colexicographically smallest choice vector
// (see comp_prioritized.cpp).
#pragma once

#include <functional>
#include <optional>

#include "system/simulator.h"

namespace h2h {

/// Work accounting of one computation_prioritized_mapping run (benches and
/// tests; zero cost when no sink is attached).
struct CompPrioritizedStats {
  std::uint64_t waves = 0;
  std::uint64_t chunks = 0;
  /// Complete assignments scored against the incumbent.
  std::uint64_t evaluated = 0;
  /// Subtrees cut because even their lower bound lost on makespan.
  std::uint64_t bound_pruned = 0;
  /// Subtrees cut by the dominance table.
  std::uint64_t dominance_pruned = 0;
  /// Signatures inserted into the dominance table.
  std::uint64_t dominance_states = 0;
  /// Inserts skipped because the table saturated (the search stays exact —
  /// it just stops learning new signatures; CI guards this at zero on the
  /// zoo models).
  std::uint64_t dominance_fallbacks = 0;
};

struct CompPrioritizedOptions {
  /// Upper bound on enumerated assignments per frontier chunk.
  std::uint64_t max_candidates = 200000;
  /// Optional placement preference (dynamic-modality extension §4.5): if it
  /// returns an accelerator that supports the layer, that accelerator is the
  /// only candidate considered.
  std::function<std::optional<AccId>(LayerId)> preferred;
  /// Dominance pruning across partial assignments (DESIGN.md §10). Exact:
  /// a subtree is cut only when an already-expanded prefix with the same
  /// signature provably beats it on every criterion, including the
  /// (makespan, finish-sum, colex) tie-break chain.
  bool use_dominance = true;
  /// Score the last chunk position as one batched sweep over its contiguous
  /// duration row instead of driving it through the generic DFS machinery.
  bool use_batched_sums = true;
  /// Dominance-table capacity in slots (rounded up to a power of two).
  /// Saturation is never wrong — it only disables further inserts and is
  /// counted in `dominance_fallbacks`; tiny caps exist for the fallback
  /// tests.
  std::uint32_t dominance_slots = 1u << 15;
  /// Optional work-accounting sink.
  CompPrioritizedStats* stats = nullptr;
};

/// Produce a complete mapping (and execution sequence) for the model.
/// Throws ConfigError if some layer kind is supported by no accelerator.
[[nodiscard]] Mapping computation_prioritized_mapping(
    const Simulator& sim, const CompPrioritizedOptions& options = {});

}  // namespace h2h
