// G_sys container: the heterogeneous multi-FPGA system of the paper's §3.
// A star topology — every accelerator connects to the host node through
// Ethernet switches at BW_acc; the host's main memory is the default home of
// all weights and activations (zero-locality assumption of step 1).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "accel/accelerator_model.h"
#include "system/acc_id.h"
#include "system/interconnect.h"
#include "util/contracts.h"

namespace h2h {

/// The paper's Fig. 4 bandwidth settings for BW_acc.
enum class BandwidthSetting { LowMinus, Low, MidMinus, Mid, High };

/// 0.125 / 0.15 / 0.25 / 0.5 / 1.25 GB/s.
[[nodiscard]] double bandwidth_value(BandwidthSetting setting) noexcept;
[[nodiscard]] std::string_view to_string(BandwidthSetting setting) noexcept;
[[nodiscard]] std::span<const BandwidthSetting> all_bandwidth_settings() noexcept;

struct HostParams {
  /// System-wide accelerator-to-host bandwidth BW_acc, bytes/s.
  double bw_acc = 0.5e9;
  /// Optional per-accelerator idle power applied for the whole makespan
  /// (ablation knob; 0 reproduces the paper's transfer-dominated energy).
  double static_power_w = 0.0;
};

class SystemConfig {
 public:
  /// Scalar-BW_acc shim: builds a uniform Interconnect from host.bw_acc, or
  /// a mixed one when any spec carries the deprecated bw_acc_override.
  SystemConfig(std::vector<AcceleratorPtr> accelerators, HostParams host);

  /// Explicit link topology. The interconnect is bound to the accelerator
  /// count here (validating overrides); host.bw_acc is taken from the
  /// topology's base bandwidth, so the two cannot disagree. Specs carrying
  /// the deprecated bw_acc_override are rejected — fold them into the
  /// Interconnect instead.
  SystemConfig(std::vector<AcceleratorPtr> accelerators, Interconnect links,
               HostParams host = {});

  /// The paper's evaluation system: all 12 Table-3 accelerators.
  [[nodiscard]] static SystemConfig standard(double bw_acc);
  [[nodiscard]] static SystemConfig standard(BandwidthSetting setting) {
    return standard(bandwidth_value(setting));
  }
  /// Standard catalog on an explicit link topology.
  [[nodiscard]] static SystemConfig standard(Interconnect links);
  /// `count` accelerators (the catalog cycled with name suffixes) on an
  /// explicit topology — the 16/32-accelerator scaling systems.
  [[nodiscard]] static SystemConfig scaled(std::size_t count,
                                           Interconnect links);

  [[nodiscard]] std::size_t accelerator_count() const noexcept {
    return accs_.size();
  }
  [[nodiscard]] bool contains(AccId id) const noexcept {
    return id.valid() && !id.is_host() && id.value < accs_.size();
  }
  [[nodiscard]] const AcceleratorModel& accelerator(AccId id) const {
    H2H_EXPECTS(contains(id));
    return *accs_[id.value];
  }
  [[nodiscard]] const AcceleratorSpec& spec(AccId id) const {
    return accelerator(id).spec();
  }

  /// Effective host-link bandwidth for `id` — the topology's host link
  /// (which the scalar-shim constructor derives from host.bw_acc and any
  /// deprecated per-spec overrides, reproducing the old values exactly).
  [[nodiscard]] double bw_acc(AccId id) const {
    H2H_EXPECTS(contains(id));
    return links_.host_bandwidth(id);
  }

  [[nodiscard]] const HostParams& host() const noexcept { return host_; }
  /// The link topology (bound to this system's accelerator count).
  [[nodiscard]] const Interconnect& links() const noexcept { return links_; }

  /// Idle energy over a makespan: static_power_w × accelerator count ×
  /// latency. The single source of truth for the static-power term, shared
  /// by Simulator::simulate and IncrementalSchedule so the two accountings
  /// cannot drift.
  [[nodiscard]] double static_energy(double latency_s) const noexcept {
    return host_.static_power_w * static_cast<double>(accs_.size()) *
           latency_s;
  }

  /// Sweep helper: change the system-wide BW_acc in place. Moves the
  /// topology's base bandwidth and preserves its shape (mixed overrides and
  /// hierarchical fabric speeds stay put).
  void set_bw_acc(double bw) {
    H2H_EXPECTS(bw > 0);
    host_.bw_acc = bw;
    links_.set_base_bw(bw);
  }

  /// Effective capability mask of `id` (accel/capability.h): the bits
  /// derived from its spec OR'd with the spec's extra_capabilities, cached
  /// at construction. A layer with required_caps `need` may only be placed
  /// where `can_serve(capabilities(id), need)`.
  [[nodiscard]] std::uint32_t capabilities(AccId id) const {
    H2H_EXPECTS(contains(id));
    return caps_[id.value];
  }

  [[nodiscard]] std::vector<AccId> all_accelerators() const;
  /// Accelerators able to run `kind`, in catalog order. Excludes
  /// accelerators marked unavailable (fault repair).
  [[nodiscard]] std::vector<AccId> supporting(LayerKind kind) const;

  // ---- Fault/repair derating (src/repair) ------------------------------
  // Faults never remove an accelerator from the catalog: AccId indexing,
  // names, and link fingerprints stay stable across a dropout so a later
  // AccReturned can splice the device back in. Consumers (CostTable,
  // Mapping::validate) treat an unavailable accelerator as unable to run
  // anything.

  /// Mark an accelerator lost (false) or returned (true).
  void set_available(AccId id, bool available);
  [[nodiscard]] bool available(AccId id) const {
    H2H_EXPECTS(contains(id));
    return avail_.empty() || avail_[id.value] != 0;
  }
  [[nodiscard]] std::size_t available_count() const noexcept;

  /// Spec derate: the accelerator computes at `scale` in (0, 1] of nominal
  /// speed (thermal throttling, partial reconfiguration). Scales compute
  /// latency only; the energy model keeps charging nominal transfer joules.
  void set_compute_derate(AccId id, double scale);
  [[nodiscard]] double compute_derate(AccId id) const {
    H2H_EXPECTS(contains(id));
    return derate_.empty() ? 1.0 : derate_[id.value];
  }

  /// Link derating, forwarded to the bound interconnect (repair hook).
  void set_link_degrade(AccId id, double factor) {
    H2H_EXPECTS(contains(id));
    links_.set_link_degrade(id.value, factor);
  }

  /// Fingerprint over availability + compute derates (link degrades are in
  /// links().fingerprint()). Stays 0 while the fault hooks are untouched,
  /// so CostTable::fresh is byte-for-byte unchanged on non-repair paths.
  [[nodiscard]] std::uint64_t derate_fingerprint() const noexcept {
    return derate_fp_;
  }

 private:
  void validate_accelerators(bool allow_bw_override) const;
  void cache_capabilities();
  void refresh_derate_fingerprint();

  std::vector<AcceleratorPtr> accs_;
  HostParams host_;
  Interconnect links_;
  std::vector<std::uint32_t> caps_;   // per acc, spec_capabilities()
  std::vector<std::uint8_t> avail_;   // empty = all available
  std::vector<double> derate_;        // empty = all at nominal speed
  std::uint64_t derate_fp_ = 0;       // 0 until a fault hook first fires
};

}  // namespace h2h
