#include "report/paper_tables.h"

#include <algorithm>

#include "util/csv.h"
#include "util/str.h"
#include "util/table.h"

namespace h2h {
namespace {

const StepSeries* find_cell(std::span<const StepSeries> sweep, ZooModel model,
                            BandwidthSetting bw) {
  const auto it = std::find_if(sweep.begin(), sweep.end(),
                               [&](const StepSeries& s) {
                                 return s.model == model && s.bw == bw;
                               });
  return it == sweep.end() ? nullptr : &*it;
}

}  // namespace

void print_fig4(std::span<const StepSeries> sweep, std::ostream& out) {
  out << "Figure 4: latency and energy across the four H2H steps\n";
  for (const BandwidthSetting bw : all_bandwidth_settings()) {
    out << strformat("\n-- Bandwidth %s (%.3f GB/s) --\n",
                     std::string(to_string(bw)).c_str(),
                     bandwidth_value(bw) / 1e9);
    TextTable t({"model", "lat s1 (s)", "lat s2 (s)", "lat s3 (s)",
                 "lat s4 (s)", "lat red.", "en s2 (J)", "en s4 (J)",
                 "en red."},
                {TextTable::Align::Left});
    for (const ZooInfo& info : zoo_catalog()) {
      const StepSeries* s = find_cell(sweep, info.id, bw);
      if (s == nullptr || s->latency.size() < 4) continue;
      t.add_row({std::string(info.key), format_fixed(s->latency[0], 4),
                 format_fixed(s->latency[1], 4), format_fixed(s->latency[2], 4),
                 format_fixed(s->latency[3], 4),
                 format_percent(1.0 - s->latency_vs_baseline(), 1),
                 format_fixed(s->energy[1], 3), format_fixed(s->energy[3], 3),
                 format_percent(1.0 - s->energy_vs_baseline(), 1)});
    }
    t.print(out);
  }

  // Headline claim check (paper: 15-74% latency / 23-64% energy at Low-).
  double min_lat = 1.0, max_lat = 0.0, min_en = 1.0, max_en = 0.0;
  for (const ZooInfo& info : zoo_catalog()) {
    const StepSeries* s = find_cell(sweep, info.id, BandwidthSetting::LowMinus);
    if (s == nullptr) continue;
    const double lr = 1.0 - s->latency_vs_baseline();
    const double er = 1.0 - s->energy_vs_baseline();
    min_lat = std::min(min_lat, lr);
    max_lat = std::max(max_lat, lr);
    min_en = std::min(min_en, er);
    max_en = std::max(max_en, er);
  }
  out << strformat(
      "\nHeadline @ Low-: latency reduction %s..%s (paper: 15%%-74%%), "
      "energy reduction %s..%s (paper: 23%%-64%%)\n",
      format_percent(min_lat, 0).c_str(), format_percent(max_lat, 0).c_str(),
      format_percent(min_en, 0).c_str(), format_percent(max_en, 0).c_str());
}

void print_table4(std::span<const StepSeries> sweep, std::ostream& out) {
  out << "Table 4: latency reduction breakdown vs the step-2 baseline\n"
         "(columns 1,2: absolute seconds; columns 3,4: % of step-2 latency)\n\n";
  TextTable t({"bandwidth", "model", "step1 (s)", "step2 (s)", "step3 (%)",
               "step4 (%)"},
              {TextTable::Align::Left, TextTable::Align::Left});
  for (const BandwidthSetting bw : all_bandwidth_settings()) {
    for (const ZooInfo& info : zoo_catalog()) {
      const StepSeries* s = find_cell(sweep, info.id, bw);
      if (s == nullptr || s->latency.size() < 4) continue;
      t.add_row({std::string(to_string(bw)), std::string(info.key),
                 format_fixed(s->latency[0], 4), format_fixed(s->latency[1], 4),
                 format_percent(s->latency[2] / s->latency[1], 2),
                 format_percent(s->latency[3] / s->latency[1], 2)});
    }
  }
  t.print(out);
}

void print_fig5a(std::span<const StepSeries> sweep, std::ostream& out) {
  out << "Figure 5(a): communication vs computation ratio @ bandwidth Low-\n\n";
  TextTable t({"model", "baseline comp%", "baseline comm%", "H2H comp%",
               "H2H comm%"},
              {TextTable::Align::Left});
  for (const ZooInfo& info : zoo_catalog()) {
    const StepSeries* s = find_cell(sweep, info.id, BandwidthSetting::LowMinus);
    if (s == nullptr) continue;
    t.add_row({std::string(info.key),
               format_percent(s->baseline_comp_ratio, 0),
               format_percent(1.0 - s->baseline_comp_ratio, 0),
               format_percent(s->h2h_comp_ratio, 0),
               format_percent(1.0 - s->h2h_comp_ratio, 0)});
  }
  t.print(out);
}

void print_fig5b(std::span<const StepSeries> sweep, std::ostream& out) {
  out << "Figure 5(b): H2H mapping search time (seconds)\n\n";
  TextTable t({"model", "Low-", "Low", "Mid-", "Mid", "High"},
              {TextTable::Align::Left});
  bool any_budget_stop = false;
  for (const ZooInfo& info : zoo_catalog()) {
    std::vector<std::string> row{std::string(info.key)};
    for (const BandwidthSetting bw : all_bandwidth_settings()) {
      const StepSeries* s = find_cell(sweep, info.id, bw);
      if (s == nullptr) {
        row.push_back("-");
        continue;
      }
      std::string cell = format_fixed(s->search_seconds, 4);
      if (s->remap.stopped_on_budget) {
        cell += '*';
        any_budget_stop = true;
      }
      row.push_back(std::move(cell));
    }
    t.add_row(std::move(row));
  }
  t.print(out);
  if (any_budget_stop)
    out << "(* remapping stopped on the request time budget)\n";
}

void write_sweep_csv(std::span<const StepSeries> sweep, std::ostream& out) {
  CsvWriter csv(out);
  csv.header({"model", "bandwidth", "bw_gbps", "step", "latency_s", "energy_j",
              "baseline_comp_ratio", "h2h_comp_ratio", "search_s",
              "remap_accepted", "stopped_on_budget"});
  for (const StepSeries& s : sweep) {
    for (std::size_t step = 0; step < s.latency.size(); ++step) {
      csv.row({std::string(zoo_info(s.model).key),
               std::string(to_string(s.bw)),
               format_fixed(bandwidth_value(s.bw) / 1e9, 3),
               strformat("%zu", step + 1), strformat("%.9f", s.latency[step]),
               strformat("%.9f", s.energy[step]),
               strformat("%.6f", s.baseline_comp_ratio),
               strformat("%.6f", s.h2h_comp_ratio),
               strformat("%.6f", s.search_seconds),
               strformat("%u", s.remap.accepted),
               s.remap.stopped_on_budget ? "1" : "0"});
    }
  }
}

}  // namespace h2h
