#include "system/mapping_state.h"

#include <algorithm>

#include "util/error.h"
#include "util/str.h"

namespace h2h {

Mapping::Mapping(const ModelGraph& model)
    : assignment_(model.layer_count()), seq_(model.layer_count(), 0) {
  for (const LayerId id : model.all_layers()) {
    if (model.layer(id).kind == LayerKind::Input) {
      assignment_[id.value] = AccId::host();
      seq_[id.value] = next_seq_++;
    }
  }
}

void Mapping::assign(LayerId id, AccId acc) {
  H2H_EXPECTS(id.value < assignment_.size());
  H2H_EXPECTS(!assignment_[id.value].valid());
  H2H_EXPECTS(acc.valid() && !acc.is_host());
  assignment_[id.value] = acc;
  seq_[id.value] = next_seq_++;
}

void Mapping::reassign(LayerId id, AccId acc) {
  H2H_EXPECTS(is_assigned(id));
  H2H_EXPECTS(!assignment_[id.value].is_host());
  H2H_EXPECTS(acc.valid() && !acc.is_host());
  assignment_[id.value] = acc;
}

bool Mapping::complete() const noexcept {
  return std::all_of(assignment_.begin(), assignment_.end(),
                     [](AccId a) { return a.valid(); });
}

std::vector<std::vector<LayerId>> Mapping::acc_queues(
    const SystemConfig& sys) const {
  std::vector<std::vector<LayerId>> queues(sys.accelerator_count());
  for (std::uint32_t i = 0; i < assignment_.size(); ++i) {
    const AccId a = assignment_[i];
    if (a.valid() && !a.is_host()) {
      H2H_ASSERT(a.value < queues.size());
      queues[a.value].push_back(LayerId{i});
    }
  }
  for (auto& q : queues) {
    std::sort(q.begin(), q.end(), [this](LayerId lhs, LayerId rhs) {
      return seq_[lhs.value] < seq_[rhs.value];
    });
  }
  return queues;
}

std::vector<LayerId> Mapping::layers_on(AccId acc) const {
  std::vector<LayerId> out;
  for (std::uint32_t i = 0; i < assignment_.size(); ++i)
    if (assignment_[i] == acc) out.push_back(LayerId{i});
  std::sort(out.begin(), out.end(), [this](LayerId lhs, LayerId rhs) {
    return seq_[lhs.value] < seq_[rhs.value];
  });
  return out;
}

std::vector<AccId> Mapping::used_accelerators() const {
  std::vector<AccId> out;
  for (const AccId a : assignment_)
    if (a.valid() && !a.is_host()) out.push_back(a);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void Mapping::validate(const ModelGraph& model, const SystemConfig& sys) const {
  H2H_EXPECTS(model.layer_count() == assignment_.size());
  for (const LayerId id : model.all_layers()) {
    const Layer& l = model.layer(id);
    if (!is_assigned(id))
      throw ConfigError(strformat("layer '%s' is unmapped", l.name.c_str()));
    const AccId a = acc_of(id);
    if (l.kind == LayerKind::Input) {
      if (!a.is_host())
        throw ConfigError(
            strformat("input '%s' must stay on the host", l.name.c_str()));
      continue;
    }
    if (a.is_host())
      throw ConfigError(strformat("layer '%s' mapped to host", l.name.c_str()));
    if (!sys.contains(a))
      throw ConfigError(strformat("layer '%s' mapped to unknown accelerator",
                                  l.name.c_str()));
    if (!sys.accelerator(a).supports(l.kind))
      throw ConfigError(strformat(
          "layer '%s' (%s) mapped to '%s' which does not support it",
          l.name.c_str(), std::string(to_string(l.kind)).c_str(),
          sys.spec(a).name.c_str()));
  }
}

LocalityPlan::LocalityPlan(const ModelGraph& model)
    : pinned_(model.layer_count(), false) {
  fused_in_.reserve(model.layer_count());
  for (const LayerId id : model.all_layers())
    fused_in_.emplace_back(model.graph().in_degree(id), false);
}

bool LocalityPlan::edge_fused(const ModelGraph& model, LayerId producer,
                              LayerId consumer) const {
  const auto preds = model.graph().preds(consumer);
  for (std::size_t i = 0; i < preds.size(); ++i)
    if (preds[i] == producer) return fused_in(consumer, i);
  H2H_EXPECTS(false);  // not an edge
  return false;
}

void LocalityPlan::clear_fusion() {
  for (auto& flags : fused_in_)
    std::fill(flags.begin(), flags.end(), false);
}

void LocalityPlan::clear_pins() {
  std::fill(pinned_.begin(), pinned_.end(), false);
}

Bytes LocalityPlan::used_dram(AccId acc) const {
  H2H_EXPECTS(acc.valid() && !acc.is_host());
  if (acc.value >= used_dram_.size()) return 0;
  return used_dram_[acc.value];
}

void LocalityPlan::set_used_dram(AccId acc, Bytes bytes) {
  H2H_EXPECTS(acc.valid() && !acc.is_host());
  if (acc.value >= used_dram_.size()) used_dram_.resize(acc.value + 1, 0);
  used_dram_[acc.value] = bytes;
}

void LocalityPlan::ensure_acc_count(std::size_t count) {
  if (used_dram_.size() < count) used_dram_.resize(count, 0);
}

std::size_t LocalityPlan::pinned_count() const noexcept {
  return static_cast<std::size_t>(
      std::count(pinned_.begin(), pinned_.end(), true));
}

std::size_t LocalityPlan::fused_edge_count() const noexcept {
  std::size_t n = 0;
  for (const auto& flags : fused_in_)
    n += static_cast<std::size_t>(std::count(flags.begin(), flags.end(), true));
  return n;
}

}  // namespace h2h
