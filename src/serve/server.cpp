#include "serve/server.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <istream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <thread>
#include <utility>
#include <vector>

#include "serve/protocol.h"
#include "util/error.h"
#include "util/str.h"

#if defined(__unix__) || defined(__APPLE__)
#define H2H_SERVE_HAS_TCP 1
#include <arpa/inet.h>
#include <csignal>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#else
#define H2H_SERVE_HAS_TCP 0
#endif

namespace h2h::serve {
namespace {

std::atomic<bool> g_shutdown{false};

[[nodiscard]] bool shutdown_requested() noexcept {
  return g_shutdown.load(std::memory_order_relaxed);
}

#if H2H_SERVE_HAS_TCP

void on_shutdown_signal(int) noexcept {
  g_shutdown.store(true, std::memory_order_relaxed);
}

/// Installs SIGINT/SIGTERM handlers for the lifetime of a serve loop and
/// restores the previous actions on exit. Deliberately no SA_RESTART: the
/// signal must interrupt the blocking read (EINTR -> stream EOF) so the
/// reader stops accepting while the drain path finishes in-flight work.
class SignalGuard {
 public:
  explicit SignalGuard(bool enable) : enabled_(enable) {
    if (!enabled_) return;
    g_shutdown.store(false, std::memory_order_relaxed);
    struct sigaction sa = {};
    sa.sa_handler = on_shutdown_signal;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    ::sigaction(SIGINT, &sa, &old_int_);
    ::sigaction(SIGTERM, &sa, &old_term_);
  }
  ~SignalGuard() {
    if (!enabled_) return;
    ::sigaction(SIGINT, &old_int_, nullptr);
    ::sigaction(SIGTERM, &old_term_, nullptr);
  }
  SignalGuard(const SignalGuard&) = delete;
  SignalGuard& operator=(const SignalGuard&) = delete;

 private:
  bool enabled_;
  struct sigaction old_int_ = {};
  struct sigaction old_term_ = {};
};

#else

/// Non-POSIX builds have no signals to guard; handle_signals is a no-op.
class SignalGuard {
 public:
  explicit SignalGuard(bool) {}
};

#endif  // H2H_SERVE_HAS_TCP

/// Everything one request needs besides the line itself: the shared Planner
/// and the name sources write_response reads. Lives across connections so a
/// reconnecting client still hits warm sessions.
class RequestProcessor {
 public:
  explicit RequestProcessor(const PlannerOptions& planner_options)
      : planner_(planner_options),
        name_sys_(SystemConfig::standard(0.5e9)) {}

  struct Outcome {
    std::string line;
    bool ok = false;
  };

  [[nodiscard]] Outcome process(const std::string& line) {
    std::variant<WireRequest, WireTenantsRequest, WireError> parsed =
        parse_any_request(line);
    if (const WireError* err = std::get_if<WireError>(&parsed)) {
      return {write_error(*err), false};
    }
    if (const WireTenantsRequest* treq =
            std::get_if<WireTenantsRequest>(&parsed)) {
      return process_tenants(*treq);
    }
    const WireRequest& req = std::get<WireRequest>(parsed);
    try {
      const PlanResponse response = planner_.plan(to_plan_request(req));
      return {write_response(req, response, model_for(req.model), name_sys_),
              true};
    } catch (const std::exception& e) {
      // Explicit error responses instead of exceptions crossing the wire:
      // an infeasible request must not take the loop down.
      return {write_error({ErrorCode::PlanFailed, e.what(), req.id}), false};
    }
  }

 private:
  [[nodiscard]] Outcome process_tenants(const WireTenantsRequest& req) {
    try {
      CoMapSession& session = session_for(req.bw_gbps);
      const TenantSet set(req.tenants);
      CoMapOptions opts;
      opts.plan = req.options;
      opts.max_rounds = req.max_rounds;
      opts.steal_round = req.steal_round;
      const CoMapResult result = session.comapper.co_map(set, opts);
      if (req.require_slos && !result.all_slos_met) {
        std::string missing;
        for (const TenantOutcome& t : result.tenants) {
          if (t.met) continue;
          if (!missing.empty()) missing += ", ";
          missing += strformat("%s (%.6g s > %.6g s)", t.name.c_str(),
                               t.latency_s, t.slo_s);
        }
        return {write_error({ErrorCode::SloViolated,
                             strformat("co-mapping misses SLOs: %s",
                                       missing.c_str()),
                             req.id}),
                false};
      }
      return {write_tenants_response(req, result, name_sys_), true};
    } catch (const CapabilityError& e) {
      return {write_error({ErrorCode::InfeasibleCapability, e.what(),
                           req.id}),
              false};
    } catch (const ConfigError& e) {
      // Request-content problems the parser cannot see (e.g. union
      // dtype/batch disagreement) answer as bad_field, not plan_failed.
      return {write_error({ErrorCode::BadField, e.what(), req.id}), false};
    } catch (const std::exception& e) {
      return {write_error({ErrorCode::PlanFailed, e.what(), req.id}), false};
    }
  }

  /// Graphs are only needed for layer names in responses; one cached copy
  /// per zoo model serves every request (read-only once built).
  [[nodiscard]] const ModelGraph& model_for(ZooModel id) {
    const std::scoped_lock lock(models_mu_);
    std::unique_ptr<const ModelGraph>& slot = models_[id];
    if (slot == nullptr) {
      slot = std::make_unique<const ModelGraph>(make_model(id));
    }
    return *slot;
  }

  /// One CoMapper per requested bandwidth, kept warm across requests and
  /// connections (the member system must outlive the borrowing CoMapper,
  /// hence the pairing). co_map itself is thread-safe; the lock only
  /// guards session creation.
  struct CoMapSession {
    SystemConfig sys;
    CoMapper comapper;
    explicit CoMapSession(double bw_gbps)
        : sys(SystemConfig::standard(bw_gbps * 1e9)), comapper(sys) {}
  };

  [[nodiscard]] CoMapSession& session_for(double bw_gbps) {
    const std::scoped_lock lock(comap_mu_);
    std::unique_ptr<CoMapSession>& slot = comap_[bw_gbps];
    if (slot == nullptr) slot = std::make_unique<CoMapSession>(bw_gbps);
    return *slot;
  }

  Planner planner_;
  SystemConfig name_sys_;  // accelerator names only; BW value irrelevant
  std::mutex models_mu_;
  std::map<ZooModel, std::unique_ptr<const ModelGraph>> models_;
  std::mutex comap_mu_;
  std::map<double, std::unique_ptr<CoMapSession>> comap_;
};

/// Reorders completed responses back into request order. Whichever thread
/// completes the next-expected sequence number drains everything
/// consecutive, so output needs no dedicated writer thread.
class OrderedEmitter {
 public:
  explicit OrderedEmitter(std::ostream& out) : out_(out) {}

  void emit(std::uint64_t seq, std::string line, bool ok) {
    const std::scoped_lock lock(mu_);
    (ok ? stats_.ok : stats_.errors) += 1;
    ready_.emplace(seq, std::move(line));
    while (!ready_.empty() && ready_.begin()->first == next_) {
      out_ << ready_.begin()->second << '\n';
      out_.flush();
      ready_.erase(ready_.begin());
      ++next_;
    }
  }

  [[nodiscard]] ServeStats stats() const {
    const std::scoped_lock lock(mu_);
    return stats_;
  }

 private:
  std::ostream& out_;
  mutable std::mutex mu_;
  std::map<std::uint64_t, std::string> ready_;
  std::uint64_t next_ = 0;
  ServeStats stats_;
};

enum class LineStatus { Ok, Oversized, Eof };

/// getline with a byte cap: oversized lines are consumed to their newline
/// but truncated in `line`, and reported so the caller can answer with a
/// proper error instead of parsing the truncation.
[[nodiscard]] LineStatus read_line(std::istream& in, std::string& line,
                                   std::size_t cap) {
  line.clear();
  bool over = false;
  bool any = false;
  for (int c = in.get(); c != std::istream::traits_type::eof();
       c = in.get()) {
    any = true;
    if (c == '\n') return over ? LineStatus::Oversized : LineStatus::Ok;
    if (line.size() < cap) {
      line += static_cast<char>(c);
    } else {
      over = true;
    }
  }
  if (!any) return LineStatus::Eof;
  return over ? LineStatus::Oversized : LineStatus::Ok;
}

[[nodiscard]] std::string oversized_error(std::size_t cap) {
  return write_error({ErrorCode::ParseError,
                      strformat("request line exceeds %zu bytes", cap),
                      {}});
}

ServeStats run_loop(RequestProcessor& processor, std::istream& in,
                    std::ostream& out, const ServeOptions& options) {
  OrderedEmitter emitter(out);
  ServeStats totals;
  std::string line;
  std::uint64_t seq = 0;

  // A shutdown signal interrupts the blocking read, so the stream reports
  // EOF; a line the signal cut in half must be dropped, not answered as a
  // parse error. (A genuine final line without '\n' is still served when
  // no signal fired.)
  const auto cut_by_signal = [&in, &options](LineStatus status) {
    return status != LineStatus::Eof && options.handle_signals &&
           shutdown_requested() && in.eof();
  };

  if (options.threads <= 1) {
    for (;;) {
      const LineStatus status = read_line(in, line, options.max_line_bytes);
      if (status == LineStatus::Eof || cut_by_signal(status)) break;
      if (status == LineStatus::Ok && line.empty()) continue;
      ++totals.requests;
      if (status == LineStatus::Oversized) {
        emitter.emit(seq++, oversized_error(options.max_line_bytes), false);
        continue;
      }
      RequestProcessor::Outcome o = processor.process(line);
      emitter.emit(seq++, std::move(o.line), o.ok);
    }
    const ServeStats s = emitter.stats();
    totals.ok = s.ok;
    totals.errors = s.errors;
    return totals;
  }

  std::mutex mu;
  std::condition_variable work_cv;   // workers wait for lines
  std::condition_variable space_cv;  // reader waits for inbox room
  std::deque<std::pair<std::uint64_t, std::string>> inbox;
  bool done = false;
  const std::size_t inbox_cap = options.threads * 8;

  std::vector<std::thread> workers;
  workers.reserve(options.threads);
  for (std::size_t i = 0; i < options.threads; ++i) {
    workers.emplace_back([&] {
      for (;;) {
        std::unique_lock lock(mu);
        work_cv.wait(lock, [&] { return done || !inbox.empty(); });
        if (inbox.empty()) return;
        const std::uint64_t my_seq = inbox.front().first;
        const std::string my_line = std::move(inbox.front().second);
        inbox.pop_front();
        space_cv.notify_one();
        lock.unlock();
        RequestProcessor::Outcome o = processor.process(my_line);
        emitter.emit(my_seq, std::move(o.line), o.ok);
      }
    });
  }

  for (;;) {
    const LineStatus status = read_line(in, line, options.max_line_bytes);
    if (status == LineStatus::Eof || cut_by_signal(status)) break;
    if (status == LineStatus::Ok && line.empty()) continue;
    ++totals.requests;
    if (status == LineStatus::Oversized) {
      emitter.emit(seq++, oversized_error(options.max_line_bytes), false);
      continue;
    }
    std::unique_lock lock(mu);
    space_cv.wait(lock, [&] { return inbox.size() < inbox_cap; });
    inbox.emplace_back(seq++, line);
    work_cv.notify_one();
  }
  {
    const std::scoped_lock lock(mu);
    done = true;
  }
  work_cv.notify_all();
  for (std::thread& t : workers) t.join();

  const ServeStats s = emitter.stats();
  totals.ok = s.ok;
  totals.errors = s.errors;
  return totals;
}

#if H2H_SERVE_HAS_TCP

/// Buffered std::streambuf over a connected socket; serves as both the get
/// and put area so one buffer backs the connection's istream and ostream.
class FdStreamBuf : public std::streambuf {
 public:
  explicit FdStreamBuf(int fd) : fd_(fd) {
    setp(out_, out_ + sizeof(out_) - 1);
  }
  ~FdStreamBuf() override { sync(); }

 protected:
  int_type underflow() override {
    const ssize_t n = ::read(fd_, in_, sizeof(in_));
    if (n <= 0) return traits_type::eof();
    setg(in_, in_, in_ + n);
    return traits_type::to_int_type(in_[0]);
  }

  int_type overflow(int_type ch) override {
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
      *pptr() = traits_type::to_char_type(ch);
      pbump(1);
    }
    return flush_out() == 0 ? traits_type::not_eof(ch) : traits_type::eof();
  }

  int sync() override { return flush_out(); }

 private:
  int flush_out() {
    const std::size_t n = static_cast<std::size_t>(pptr() - pbase());
    std::size_t off = 0;
    while (off < n) {
      const ssize_t w = ::write(fd_, pbase() + off, n - off);
      if (w <= 0) return -1;
      off += static_cast<std::size_t>(w);
    }
    pbump(-static_cast<int>(n));
    return 0;
  }

  int fd_;
  char in_[4096] = {};
  char out_[4096] = {};
};

#endif  // H2H_SERVE_HAS_TCP

}  // namespace

ServeStats serve_jsonl(std::istream& in, std::ostream& out,
                       const ServeOptions& options) {
  const SignalGuard signals(options.handle_signals);
  RequestProcessor processor(options.planner);
  return run_loop(processor, in, out, options);
}

int serve_tcp(const TcpOptions& options, std::ostream& diag) {
#if H2H_SERVE_HAS_TCP
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    diag << "h2h-serve: socket: " << std::strerror(errno) << '\n';
    return 1;
  }
  const int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options.port);
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd, 16) != 0) {
    diag << "h2h-serve: bind/listen: " << std::strerror(errno) << '\n';
    ::close(listen_fd);
    return 1;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  diag << "h2h-serve listening on 127.0.0.1:" << ntohs(bound.sin_port)
       << std::endl;

  // One processor across connections: a client that reconnects keeps its
  // warm sessions.
  const SignalGuard signals(options.serve.handle_signals);
  RequestProcessor processor(options.serve.planner);
  for (std::uint64_t served = 0;
       options.max_connections == 0 || served < options.max_connections;
       ++served) {
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) {
        // A shutdown signal interrupts accept; anything else (e.g. a
        // profiler attaching) just retries.
        if (options.serve.handle_signals && shutdown_requested()) break;
        --served;
        continue;
      }
      diag << "h2h-serve: accept: " << std::strerror(errno) << '\n';
      ::close(listen_fd);
      return 1;
    }
    FdStreamBuf buf(conn);
    std::istream conn_in(&buf);
    std::ostream conn_out(&buf);
    const ServeStats stats =
        run_loop(processor, conn_in, conn_out, options.serve);
    conn_out.flush();
    ::close(conn);
    diag << "h2h-serve: connection done (" << stats.requests << " requests, "
         << stats.errors << " errors)" << std::endl;
    if (options.serve.handle_signals && shutdown_requested()) break;
  }
  ::close(listen_fd);
  if (options.serve.handle_signals && shutdown_requested()) {
    diag << "h2h-serve: shutting down on signal" << std::endl;
  }
  return 0;
#else
  (void)options;
  diag << "h2h-serve: TCP serving is not supported on this platform\n";
  return 1;
#endif
}

}  // namespace h2h::serve
