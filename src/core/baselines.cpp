#include "core/baselines.h"

#include "graph/algorithms.h"
#include "util/error.h"
#include "util/str.h"

namespace h2h {

PlanResponse run_computation_prioritized_baseline(const ModelGraph& model,
                                               const SystemConfig& sys,
                                               const PlanOptions& options) {
  model.validate();
  const Simulator sim(model, sys);
  PassPipeline pipeline;
  pipeline.push_back(make_comp_prioritized_pass(options.step1));
  pipeline.push_back(make_weight_locality_pass(options.weight));
  return run_passes(sim, pipeline);
}

PlanResponse run_cluster_prioritized_baseline(const ModelGraph& model,
                                           const SystemConfig& sys,
                                           const PlanOptions& options) {
  model.validate();
  const Simulator sim(model, sys);
  PassPipeline pipeline;
  pipeline.push_back(make_cluster_mapping_pass("cluster mapping"));
  pipeline.push_back(
      make_weight_locality_pass(options.weight, "cluster + weight locality"));
  pipeline.push_back(
      make_activation_fusion_pass(options.fusion, "cluster + fusion"));
  return run_passes(sim, pipeline);
}

Mapping random_valid_mapping(const ModelGraph& model, const SystemConfig& sys,
                             Rng& rng) {
  const auto topo = topological_order(model.graph());
  if (!topo.has_value())
    throw ConfigError(strformat("model '%s' has a dependency cycle",
                                model.name().c_str()));
  Mapping mapping(model);
  for (const LayerId id : *topo) {
    const Layer& l = model.layer(id);
    if (l.kind == LayerKind::Input) continue;
    const std::vector<AccId> cands = sys.supporting(l.kind);
    if (cands.empty())
      throw ConfigError(
          strformat("no accelerator supports layer '%s'", l.name.c_str()));
    mapping.assign(id, cands[rng.index(cands.size())]);
  }
  return mapping;
}

}  // namespace h2h
