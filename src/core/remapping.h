// Step 4 — data-locality-aware remapping (paper §4.4).
//
// For every layer, attempt to re-allocate it to an accelerator hosting one
// of its graph neighbours; re-run weight locality (step 2) and activation
// fusion (step 3) for the two affected accelerators; accept iff the overall
// objective strictly decreases. Passes repeat until a fixed point (or
// max_passes). Termination is guaranteed by the strict-decrease acceptance.
//
// Candidate evaluation is probe -> journal-undo: each probe applies the move
// against the live Mapping/LocalityPlan/IncrementalSchedule under their
// apply/undo journals and rolls back in O(touched), so the hot loop performs
// no per-candidate deep copies (the paper's sub-second search times depend
// on this; see bench_ablation_incremental).
#pragma once

#include <chrono>
#include <optional>

#include "core/activation_fusion.h"
#include "core/weight_locality.h"
#include "system/incremental.h"

namespace h2h {

/// What the greedy loop minimizes. The paper uses latency; the
/// energy-delay-product option is our extension for energy-constrained
/// deployments (swept by bench_ablation_objective).
enum class RemapObjective { Latency, EnergyDelayProduct };

struct RemapOptions {
  std::uint32_t max_passes = 32;
  /// Minimum objective improvement to accept a move (same unit as the
  /// objective: seconds, or joule-seconds for EDP).
  double epsilon = 1e-12;
  /// Use the incremental scheduler for candidate evaluation (the paper's
  /// successor-only updates); false falls back to full re-simulation.
  /// Results are identical (asserted in tests); speed differs.
  bool use_incremental = true;
  RemapObjective objective = RemapObjective::Latency;
  WeightLocalityOptions weight;
  FusionOptions fusion;
  /// Optional wall-clock deadline (PlanRequest::time_budget_s): the loop
  /// stops cleanly — current state kept, stopped_on_budget reported — at the
  /// first per-layer check past the deadline. nullopt runs to convergence;
  /// the check is skipped entirely then, so the unbudgeted hot path is
  /// unchanged.
  std::optional<std::chrono::steady_clock::time_point> deadline;
};

struct RemapStats {
  std::uint32_t passes = 0;
  std::uint32_t attempts = 0;
  std::uint32_t accepted = 0;
  /// Node re-timings the incremental schedule performed across all probes
  /// (0 when use_incremental is off) — the bench's work accounting.
  std::uint64_t retimes = 0;
  /// True when the loop stopped on RemapOptions::deadline before reaching a
  /// fixed point (Fig. 5b budgeted-search reporting).
  bool stopped_on_budget = false;
};

/// Runs the remapping loop in place on `mapping`/`plan` (which must already
/// have steps 2-3 applied). Returns loop statistics.
RemapStats data_locality_remapping(const Simulator& sim, Mapping& mapping,
                                   LocalityPlan& plan,
                                   const RemapOptions& options = {});

}  // namespace h2h
