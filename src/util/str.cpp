#include "util/str.h"

#include <cstdarg>
#include <cstdio>

#include "util/contracts.h"

namespace h2h {

std::string strformat(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  H2H_ASSERT(needed >= 0);
  std::string out(static_cast<std::size_t>(needed), '\0');
  // +1 for the terminating NUL vsnprintf always writes.
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string human_bytes(Bytes b) {
  constexpr double kKiB = 1024.0;
  constexpr double kMiB = kKiB * 1024.0;
  constexpr double kGiB = kMiB * 1024.0;
  const auto v = static_cast<double>(b);
  if (v >= kGiB) return strformat("%.2f GiB", v / kGiB);
  if (v >= kMiB) return strformat("%.2f MiB", v / kMiB);
  if (v >= kKiB) return strformat("%.2f KiB", v / kKiB);
  return strformat("%llu B", static_cast<unsigned long long>(b));
}

std::string human_seconds(double s) {
  if (s >= 1.0) return strformat("%.3f s", s);
  if (s >= 1e-3) return strformat("%.3f ms", s * 1e3);
  if (s >= 1e-6) return strformat("%.3f us", s * 1e6);
  return strformat("%.3f ns", s * 1e9);
}

std::string format_fixed(double v, int digits) {
  H2H_EXPECTS(digits >= 0 && digits <= 12);
  return strformat("%.*f", digits, v);
}

std::string format_percent(double ratio, int digits) {
  return strformat("%.*f%%", digits, ratio * 100.0);
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.substr(0, prefix.size()) == prefix;
}

}  // namespace h2h
