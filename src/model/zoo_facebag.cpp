// FaceBagNet (Shen et al., CVPR-W 2019): bag-of-local-features multi-modal
// face anti-spoofing. Three patch-level ResNet branches (RGB, depth, IR) at
// 0.75x width feed a fused res-block trunk and classifier.
//
// Modality tags: 1 = RGB, 2 = depth, 3 = IR, 0 = fusion.
#include "model/blocks.h"
#include "model/zoo.h"

namespace h2h {

ModelGraph make_facebag() {
  ModelBuilder b("FaceBag");

  b.set_modality(1);
  const LayerId rgb = b.input("rgb_patch", 3, 112, 112);
  const LayerId f_rgb = resnet18_backbone(b, rgb, "rgb", 0.75, 4);

  b.set_modality(2);
  const LayerId depth = b.input("depth_patch", 1, 112, 112);
  const LayerId f_depth = resnet18_backbone(b, depth, "depth", 0.75, 4);

  b.set_modality(3);
  const LayerId ir = b.input("ir_patch", 1, 112, 112);
  const LayerId f_ir = resnet18_backbone(b, ir, "ir", 0.75, 4);

  b.set_modality(0);
  const LayerId cat = b.concat("fuse.concat", std::array{f_rgb, f_depth, f_ir});
  const LayerId squeeze = b.conv("fuse.squeeze", cat, 512, 1, 1);
  const LayerId block = resnet_stage_basic(b, squeeze, 512, 1, 1, "fuse.res");
  const LayerId gap = b.global_pool("fuse.gap", block);
  const LayerId fc1 = b.fc("fuse.fc1", gap, 256);
  (void)b.fc("fuse.cls", fc1, 2);

  return std::move(b).build();
}

}  // namespace h2h
