#include "accel/analytical_models.h"

#include "util/contracts.h"

namespace h2h {

AnalyticalAccelerator::AnalyticalAccelerator(AcceleratorSpec spec)
    : spec_(std::move(spec)) {
  spec_.validate();
}

double AnalyticalAccelerator::compute_latency(const Layer& layer) const {
  const double peak =
      static_cast<double>(spec_.peak_macs_per_cycle) * spec_.freq_hz;
  double t = 0.0;
  if (const std::uint64_t macs = layer.macs(); macs != 0) {
    H2H_EXPECTS(supports(layer.kind));
    const double util = utilization(spec_.style, spec_.pe, layer);
    H2H_ASSERT(util > 0.0);
    t += static_cast<double>(macs) / (peak * util);
  }
  if (const std::uint64_t ops = layer.light_ops(); ops != 0) {
    // Vector work reuses the MAC lanes at one op per lane per cycle.
    t += static_cast<double>(ops) / peak;
  }

  // MAESTRO-style reuse roofline: weights that exceed the on-chip buffer are
  // re-streamed from local DRAM per tile/timestep. Only the re-fetch passes
  // beyond the first are charged here — the first pass is the system-level
  // weight transfer the simulator already accounts for.
  if (spec_.buffers.enabled() && layer.has_weights()) {
    const TileAnalysis ta =
        analyze_tiling(layer, spec_.buffers, spec_.arith_bytes);
    if (ta.weight_reloads > 1) {
      const double refetch_bytes =
          static_cast<double>(layer.weight_bytes(spec_.arith_bytes)) *
          (ta.weight_reloads - 1);
      t = std::max(t, refetch_bytes / spec_.dram_bandwidth);
    }
  }
  return t;
}

LambdaAccelerator::LambdaAccelerator(AcceleratorSpec spec, LatencyFn latency,
                                     EnergyFn energy)
    : spec_(std::move(spec)),
      latency_(std::move(latency)),
      energy_(std::move(energy)) {
  spec_.validate();
  H2H_EXPECTS(static_cast<bool>(latency_));
}

double LambdaAccelerator::compute_latency(const Layer& layer) const {
  const double t = latency_(layer);
  H2H_ENSURES(t >= 0.0);
  return t;
}

double LambdaAccelerator::compute_energy(const Layer& layer) const {
  if (energy_) {
    const double e = energy_(layer);
    H2H_ENSURES(e >= 0.0);
    return e;
  }
  return AcceleratorModel::compute_energy(layer);
}

AcceleratorPtr make_analytical(AcceleratorSpec spec) {
  return std::make_unique<AnalyticalAccelerator>(std::move(spec));
}

}  // namespace h2h
