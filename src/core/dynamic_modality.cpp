#include "core/dynamic_modality.h"

#include <algorithm>
#include <set>

#include "graph/algorithms.h"
#include "util/error.h"

namespace h2h {

ModelGraph subset_model(const ModelGraph& full,
                        std::span<const std::uint32_t> active) {
  const std::set<std::uint32_t> active_set(active.begin(), active.end());
  const auto topo = topological_order(full.graph());
  H2H_EXPECTS(topo.has_value());

  std::vector<bool> keep(full.layer_count(), false);
  for (const LayerId id : *topo) {
    const Layer& l = full.layer(id);
    const bool tag_active = l.modality == 0 || active_set.contains(l.modality);
    if (!tag_active) continue;
    if (l.kind == LayerKind::Input) {
      keep[id.value] = true;
      continue;
    }
    // A non-source layer survives only if at least one producer survives.
    const auto preds = full.graph().preds(id);
    keep[id.value] = std::any_of(preds.begin(), preds.end(), [&](LayerId p) {
      return keep[p.value];
    });
  }

  ModelGraph sub(full.name() + "[sub]", full.dtype_bytes());
  std::vector<LayerId> remap(full.layer_count());
  for (const LayerId id : *topo) {
    if (!keep[id.value]) continue;
    std::vector<LayerId> inputs;
    for (const LayerId p : full.graph().preds(id))
      if (keep[p.value]) inputs.push_back(remap[p.value]);
    remap[id.value] = sub.add_layer(full.layer(id), inputs);
  }
  if (sub.layer_count() == 0)
    throw ConfigError("subset_model: no layers remain active");
  return sub;
}

DynamicModalityMapper::DynamicModalityMapper(const SystemConfig& sys,
                                             PlanOptions options)
    : options_(std::move(options)), planner_(sys) {}

DynamicRemapResult DynamicModalityMapper::remap(const ModelGraph& variant) {
  PlanOptions opts = options_;

  // Preference hook: map a layer where its weights already live.
  opts.step1.preferred = [this, &variant](LayerId id) -> std::optional<AccId> {
    const auto it = resident_.find(variant.layer(id).name);
    if (it == resident_.end()) return std::nullopt;
    return it->second;
  };

  // Modified knapsack: resident weights are pinned first.
  std::vector<bool> force(variant.layer_count(), false);
  for (const LayerId id : variant.all_layers())
    force[id.value] = resident_.contains(variant.layer(id).name);
  opts.weight.force_pin = &force;

  // The round is the standard pipeline with the two hooks threaded through
  // and the historical step labels kept.
  PassPipeline pipeline;
  pipeline.push_back(make_comp_prioritized_pass(
      opts.step1, "1: computation-prioritized (resident-preferred)"));
  if (opts.run_weight_locality)
    pipeline.push_back(make_weight_locality_pass(
        opts.weight, "2: weight locality (modified knapsack)"));
  if (opts.run_fusion)
    pipeline.push_back(make_activation_fusion_pass(opts.fusion));
  if (opts.run_remapping)
    pipeline.push_back(make_remapping_pass(opts.remap));

  // The subset variants keep single-input Concats, so skip full validation.
  // The session cache keys on the variant's structural fingerprint: a
  // revisited modality set re-plans warm on its cached cost table.
  PlanRequest request = PlanRequest::for_graph(variant, /*bw_acc=*/0.0);
  request.validate_model = false;

  DynamicRemapResult out{planner_.plan(request, pipeline), 0, 0};
  PlanResponse& r = out.h2h;

  // Weight-reload accounting and residency update.
  std::map<std::string, AccId, std::less<>> next_resident;
  for (const LayerId id : variant.all_layers()) {
    if (!r.plan.pinned(id)) continue;
    const Bytes wb = variant.weight_bytes(id);
    const std::string& name = variant.layer(id).name;
    const AccId acc = r.mapping.acc_of(id);
    const auto it = resident_.find(name);
    if (it != resident_.end() && it->second == acc) out.weights_reused += wb;
    else out.weights_loaded += wb;
    next_resident.emplace(name, acc);
  }
  resident_ = std::move(next_resident);
  return out;
}

}  // namespace h2h
