// Quickstart: map one MMMT model onto the standard 12-accelerator system
// through the session-style Planner, walk through what each H2H step
// bought, then re-plan warm — the repeated-search scenario the paper's
// sub-second Fig. 5b numbers are for.
//
//   ./quickstart [model-key] [bandwidth-gbps]
//   e.g. ./quickstart mocap 0.125
#include <cstdlib>
#include <iostream>

#include "h2h.h"

int main(int argc, char** argv) {
  using namespace h2h;

  const std::string key = argc > 1 ? argv[1] : "mocap";
  const double bw = argc > 2 ? std::atof(argv[2]) : 0.125;
  const auto model_id = zoo_model_by_key(key);
  if (!model_id) {
    std::cerr << "unknown model '" << key << "'; options:";
    for (const ZooInfo& info : zoo_catalog()) std::cerr << ' ' << info.key;
    std::cerr << '\n';
    return 1;
  }

  // 1. Build the heterogeneous model (G_model) and system (G_sys) for
  //    inspection; the planner keeps its own copies next to the cost tables.
  const ModelGraph model = make_model(*model_id);
  const SystemConfig sys = SystemConfig::standard(gbps(bw));
  print_model_summary(model, std::cout);
  std::cout << "system: " << sys.accelerator_count()
            << " accelerators, BW_acc = " << bw << " GB/s\n\n";

  // 2. Run the four-step H2H pipeline through a Planner session.
  Planner planner;
  const PlanRequest request = PlanRequest::zoo(*model_id, gbps(bw));
  const PlanResponse result = planner.plan(request);

  // 3. Inspect the per-step trajectory (the paper's Fig. 3 walkthrough).
  std::cout << "step trajectory:\n";
  for (const StepSnapshot& step : result.steps) {
    std::cout << "  " << step.name << ": latency "
              << human_seconds(step.result.latency) << ", energy "
              << strformat("%.4f J", step.result.energy.total())
              << ", comp share "
              << format_percent(step.result.comp_ratio(), 1) << '\n';
  }

  std::cout << "\nH2H vs computation-prioritized baseline: latency "
            << format_percent(1.0 - result.latency_vs_baseline(), 1)
            << " lower, energy "
            << format_percent(1.0 - result.energy_vs_baseline(), 1)
            << " lower (setup " << human_seconds(result.setup_seconds)
            << " + search " << human_seconds(result.search_seconds) << ")\n";

  // 4. Re-plan the same scenario: the session cache serves it warm — no
  //    cost-table rebuild, no accelerator-model queries, just the search.
  const PlanResponse again = planner.plan(request);
  std::cout << "warm re-plan: " << (again.warm ? "cache hit" : "cache MISS")
            << ", setup " << human_seconds(again.setup_seconds)
            << " + search " << human_seconds(again.search_seconds) << "\n\n";

  // 5. Show where each layer ended up.
  std::cout << "final placement (layer -> accelerator):\n";
  for (const LayerId id : model.all_layers()) {
    const Layer& layer = model.layer(id);
    if (layer.kind == LayerKind::Input) continue;
    const AcceleratorSpec& spec = sys.spec(result.mapping.acc_of(id));
    std::cout << "  " << layer.name << " [" << to_string(layer.kind) << "] -> "
              << spec.name << " (" << to_string(spec.style)
              << (result.plan.pinned(id) ? ", weights pinned" : "") << ")\n";
  }
  return 0;
}
