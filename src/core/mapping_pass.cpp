#include "core/mapping_pass.h"

#include <algorithm>
#include <limits>
#include <map>
#include <utility>

#include "graph/algorithms.h"
#include "util/error.h"
#include "util/str.h"

namespace h2h {
namespace {

class CompPrioritizedPass final : public MappingPass {
 public:
  CompPrioritizedPass(CompPrioritizedOptions options, std::string name)
      : MappingPass(std::move(name)), options_(std::move(options)) {}

  void run(PassContext& ctx) const override {
    ctx.mapping = computation_prioritized_mapping(ctx.sim, options_);
  }

 private:
  CompPrioritizedOptions options_;
};

class WarmStartPass final : public MappingPass {
 public:
  WarmStartPass(Mapping warm_start, std::string name)
      : MappingPass(std::move(name)), warm_start_(std::move(warm_start)) {}

  void run(PassContext& ctx) const override {
    H2H_EXPECTS(warm_start_.size() == ctx.sim.model().layer_count());
    H2H_EXPECTS(warm_start_.complete());
    warm_start_.validate(ctx.sim.model(), ctx.sim.sys());
    ctx.mapping = warm_start_;
  }

 private:
  Mapping warm_start_;
};

class ClusterMappingPass final : public MappingPass {
 public:
  explicit ClusterMappingPass(std::string name)
      : MappingPass(std::move(name)) {}

  void run(PassContext& ctx) const override {
    const ModelGraph& model = ctx.sim.model();
    const SystemConfig& sys = ctx.sim.sys();
    const CostTable& costs = ctx.sim.costs();

    // Cluster = modality tag (0 is the shared/fusion cluster).
    std::map<std::uint32_t, std::vector<LayerId>> clusters;
    for (const LayerId id : model.all_layers()) {
      const Layer& l = model.layer(id);
      if (l.kind == LayerKind::Input) continue;
      clusters[l.modality].push_back(id);
    }

    // Pick one accelerator per cluster: maximize supported layers, then
    // minimize the summed zero-locality duration of the supported layers.
    std::map<std::uint32_t, AccId> cluster_acc;
    for (const auto& [tag, members] : clusters) {
      AccId best{};
      std::size_t best_cover = 0;
      double best_cost = std::numeric_limits<double>::infinity();
      for (const AccId acc : sys.all_accelerators()) {
        std::size_t cover = 0;
        double cost = 0;
        for (const LayerId id : members) {
          if (costs.supported(id, acc)) {
            ++cover;
            cost += costs.unlocalized_duration(id, acc);
          }
        }
        if (cover > best_cover || (cover == best_cover && cost < best_cost)) {
          best = acc;
          best_cover = cover;
          best_cost = cost;
        }
      }
      if (!best.valid())
        throw ConfigError(
            strformat("cluster %u has no usable accelerator", tag));
      cluster_acc[tag] = best;
    }

    // Spill layers the cluster accelerator cannot run to their individually
    // fastest supporting accelerator. Assign in topological order.
    const auto topo = topological_order(model.graph());
    H2H_ASSERT(topo.has_value());
    for (const LayerId id : *topo) {
      const Layer& l = model.layer(id);
      if (l.kind == LayerKind::Input) continue;
      AccId acc = cluster_acc.at(l.modality);
      if (!costs.supported(id, acc)) {
        double best_cost = std::numeric_limits<double>::infinity();
        for (const AccId cand : costs.supporting(l.kind)) {
          const double cost = costs.unlocalized_duration(id, cand);
          if (cost < best_cost) {
            best_cost = cost;
            acc = cand;
          }
        }
        if (!costs.supported(id, acc))
          throw ConfigError(
              strformat("no accelerator supports layer '%s'", l.name.c_str()));
      }
      ctx.mapping.assign(id, acc);
    }
  }
};

class WeightLocalityPass final : public MappingPass {
 public:
  WeightLocalityPass(WeightLocalityOptions options, std::string name)
      : MappingPass(std::move(name)), options_(std::move(options)) {}

  void run(PassContext& ctx) const override {
    optimize_weight_locality(ctx.sim, ctx.mapping, ctx.plan, options_);
  }

 private:
  WeightLocalityOptions options_;
};

class ActivationFusionPass final : public MappingPass {
 public:
  ActivationFusionPass(FusionOptions options, std::string name)
      : MappingPass(std::move(name)), options_(options) {}

  void run(PassContext& ctx) const override {
    optimize_activation_fusion(ctx.sim, ctx.mapping, ctx.plan, options_);
  }

 private:
  FusionOptions options_;
};

class RemappingPass final : public MappingPass {
 public:
  RemappingPass(RemapOptions options, std::string name)
      : MappingPass(std::move(name)), options_(std::move(options)) {}

  void run(PassContext& ctx) const override {
    RemapOptions options = options_;
    options.deadline = ctx.deadline;
    ctx.remap_stats =
        data_locality_remapping(ctx.sim, ctx.mapping, ctx.plan, options);
    if (ctx.remap_stats.stopped_on_budget) ctx.stopped_on_budget = true;
  }

 private:
  RemapOptions options_;
};

}  // namespace

std::unique_ptr<MappingPass> make_comp_prioritized_pass(
    CompPrioritizedOptions options, std::string name) {
  return std::make_unique<CompPrioritizedPass>(std::move(options),
                                               std::move(name));
}

std::unique_ptr<MappingPass> make_warm_start_pass(Mapping warm_start,
                                                  std::string name) {
  return std::make_unique<WarmStartPass>(std::move(warm_start),
                                         std::move(name));
}

std::unique_ptr<MappingPass> make_cluster_mapping_pass(std::string name) {
  return std::make_unique<ClusterMappingPass>(std::move(name));
}

std::unique_ptr<MappingPass> make_weight_locality_pass(
    WeightLocalityOptions options, std::string name) {
  return std::make_unique<WeightLocalityPass>(std::move(options),
                                              std::move(name));
}

std::unique_ptr<MappingPass> make_activation_fusion_pass(FusionOptions options,
                                                         std::string name) {
  return std::make_unique<ActivationFusionPass>(options, std::move(name));
}

std::unique_ptr<MappingPass> make_remapping_pass(RemapOptions options,
                                                 std::string name) {
  return std::make_unique<RemappingPass>(std::move(options), std::move(name));
}

}  // namespace h2h
