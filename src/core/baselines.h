// Baseline mappers the paper compares against (or dismisses in §2):
//
//  - Computation-prioritized [Kwon et al., HPCA'21-style]: exactly H2H
//    steps 1+2 ("existing works can also assume local DRAM for the
//    accelerators"); this is the paper's reported baseline.
//  - Communication-prioritized clustering [Taura et al., HCW'00-style]:
//    form task clusters (one per modality backbone) and map each cluster to
//    a single accelerator, then apply weight locality and fusion. Shows why
//    pure clustering "may largely hurt the computing efficiency".
//  - Random valid mapping: property-test fodder and a sanity lower bound.
#pragma once

#include "core/planner.h"
#include "util/rng.h"

namespace h2h {

/// Steps 1-2 only. The returned result has two step snapshots; its
/// final_result() is the paper's baseline configuration.
[[nodiscard]] PlanResponse run_computation_prioritized_baseline(
    const ModelGraph& model, const SystemConfig& sys,
    const PlanOptions& options = {});

/// Modality-cluster mapping + locality post-passes (steps 2-3 applied, no
/// remapping). Clusters with layer kinds an accelerator cannot serve spill
/// those layers to their best supporting accelerator.
[[nodiscard]] PlanResponse run_cluster_prioritized_baseline(
    const ModelGraph& model, const SystemConfig& sys,
    const PlanOptions& options = {});

/// Uniform random valid assignment in topological order.
[[nodiscard]] Mapping random_valid_mapping(const ModelGraph& model,
                                           const SystemConfig& sys, Rng& rng);

}  // namespace h2h
