// Regenerates Figure 5(b): H2H mapping search time per model. The paper
// reports consistently sub-second search, slowest for VLocNet (the largest
// layer count) and fastest for CNN-LSTM/MoCap (< 30 layers). Here the
// search itself is the benchmarked quantity, measured by google-benchmark
// for every model at bandwidth Mid through a warm Planner session (the
// repeated-replanning scenario Fig. 5b is about: the cost tables are
// cached, each iteration pays the pass pipeline alone), plus the
// paper-style table from single timed runs across all bandwidths.
#include <benchmark/benchmark.h>

#include <iostream>

#include "h2h.h"

namespace {

void BM_H2HSearch(benchmark::State& state) {
  const auto model_id = static_cast<h2h::ZooModel>(state.range(0));
  h2h::Planner planner;
  const h2h::PlanRequest request =
      h2h::PlanRequest::zoo(model_id, h2h::BandwidthSetting::Mid);
  (void)planner.plan(request);  // build the session outside the timed loop
  for (auto _ : state) {
    const h2h::PlanResponse r = planner.plan(request);
    benchmark::DoNotOptimize(r.final_result().latency);
  }
  state.SetLabel(std::string(h2h::zoo_info(model_id).key));
}
BENCHMARK(BM_H2HSearch)
    ->DenseRange(0, 5, 1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const std::vector<h2h::StepSeries> sweep = h2h::run_full_sweep();
  h2h::print_fig5b(sweep, std::cout);

  bool all_subsecond = true;
  for (const h2h::StepSeries& s : sweep)
    all_subsecond = all_subsecond && s.search_seconds < 1.0;
  std::cout << "\nall searches < 1 s: " << (all_subsecond ? "yes" : "NO")
            << " (paper: 'consistently low ... less than one second')\n\n";

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
