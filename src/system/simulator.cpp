#include "system/simulator.h"

#include <algorithm>
#include <numeric>

namespace h2h {

LayerTiming Simulator::layer_components(LayerId id, const Mapping& m,
                                        const LocalityPlan& plan) const {
  LayerTiming t;
  const CostTable& costs = this->costs();
  if (costs.is_input(id)) return t;  // host-resident source data

  const AccId a = m.acc_of(id);
  if (!costs.uniform_links()) return linked_components(id, m, plan, costs, a);

  const double bw_host = costs.bw_host(a);
  const double bw_local = costs.bw_local(a);

  const auto add_host = [&](double& bucket, Bytes bytes) {
    const double dt = static_cast<double>(bytes) / bw_host;
    bucket += dt;
    t.t_host += dt;
    t.host_bytes += bytes;
  };
  const auto add_local = [&](double& bucket, Bytes bytes) {
    const double dt = static_cast<double>(bytes) / bw_local;
    bucket += dt;
    t.t_local += dt;
    t.local_bytes += bytes;
  };

  // Activation in-transfers, one per in-edge.
  const std::span<const Bytes> in_bytes = costs.in_edge_bytes(id);
  for (std::size_t i = 0; i < in_bytes.size(); ++i) {
    if (plan.fused_in(id, i)) add_local(t.t_in, in_bytes[i]);
    else add_host(t.t_in, in_bytes[i]);
  }

  // Weights: from local DRAM when pinned, from the host otherwise.
  if (const Bytes wb = costs.weight_bytes(id); wb != 0) {
    if (plan.pinned(id)) add_local(t.t_weight, wb);
    else add_host(t.t_weight, wb);
  }

  t.t_compute = costs.compute_latency(id, a);

  // Output: written to the host once if any consumer is remote/unfused or
  // this is a model output. Retention in local DRAM for fused consumers is
  // not charged separately — the output tensor materializes in the
  // accelerator's DRAM either way (the host DMA reads it from there), so
  // fusion can only remove the host leg, never add cost.
  if (const Bytes ob = costs.out_bytes(id); ob != 0) {
    const auto succs = model_->graph().succs(id);
    bool host_write = succs.empty();  // model outputs return to the host
    for (const LayerId s : succs) {
      if (!plan.edge_fused(*model_, id, s)) host_write = true;
    }
    if (host_write) add_host(t.t_out, ob);
  }
  return t;
}

LayerTiming Simulator::linked_components(LayerId id, const Mapping& m,
                                         const LocalityPlan& plan,
                                         const CostTable& costs,
                                         AccId a) const {
  LayerTiming t;
  const double bw_local = costs.bw_local(a);

  const auto add_remote = [&](double& bucket, Bytes bytes, double dt) {
    bucket += dt;
    t.t_host += dt;
    t.host_bytes += bytes;
  };
  const auto add_local = [&](double& bucket, Bytes bytes) {
    const double dt = static_cast<double>(bytes) / bw_local;
    bucket += dt;
    t.t_local += dt;
    t.local_bytes += bytes;
  };

  // Activation in-transfers: each unfused in-edge crosses the link between
  // its producer's accelerator and `a`. Input producers live on the host
  // (Mapping pre-assigns them AccId::host()), so m.acc_of(p) is uniform.
  const std::span<const LayerId> preds = model_->graph().preds(id);
  const std::span<const Bytes> in_bytes = costs.in_edge_bytes(id);
  for (std::size_t i = 0; i < in_bytes.size(); ++i) {
    if (plan.fused_in(id, i)) {
      add_local(t.t_in, in_bytes[i]);
    } else {
      add_remote(t.t_in, in_bytes[i],
                 costs.edge_transfer_time(preds[i], m.acc_of(preds[i]), a));
    }
  }

  // Weights stage from the host's main memory (their default home) over the
  // accelerator's host link, or from local DRAM when pinned.
  if (const Bytes wb = costs.weight_bytes(id); wb != 0) {
    if (plan.pinned(id)) {
      add_local(t.t_weight, wb);
    } else {
      const AccId host = AccId::host();
      add_remote(t.t_weight, wb,
                 static_cast<double>(wb) / costs.link_bw(host, a) +
                     costs.link_latency(host, a));
    }
  }

  t.t_compute = costs.compute_latency(id, a);

  // Output write-back to the host, same trigger as the uniform path. The
  // host copy stays authoritative even when remote consumers read over a
  // peer link (modeling choice, DESIGN.md §9).
  if (const Bytes ob = costs.out_bytes(id); ob != 0) {
    const auto succs = model_->graph().succs(id);
    bool host_write = succs.empty();
    for (const LayerId s : succs) {
      if (!plan.edge_fused(*model_, id, s)) host_write = true;
    }
    if (host_write)
      add_remote(t.t_out, ob, costs.edge_transfer_time(id, a, AccId::host()));
  }
  return t;
}

EnergyBreakdown Simulator::layer_energy(LayerId id, const Mapping& m,
                                        const LayerTiming& t) const {
  EnergyBreakdown e;
  const CostTable& costs = this->costs();
  if (costs.is_input(id)) return e;
  const AccId a = m.acc_of(id);
  e.compute = costs.compute_energy(id, a);
  e.link = static_cast<double>(t.host_bytes) / costs.bw_host(a) *
           costs.link_power(a);
  e.dram = static_cast<double>(t.host_bytes + t.local_bytes) *
           costs.dram_byte_energy(a);
  return e;
}

double Simulator::unlocalized_duration(LayerId id, AccId acc) const {
  // The output transfer is charged unconditionally: zero locality means no
  // consumer is fused, so the producer always writes its output back to the
  // host — exactly what layer_components computes under a default-constructed
  // (all-unfused) LocalityPlan. test_simulator.cpp pins this equivalence,
  // and test_cost_table.cpp pins the table entry against the formula.
  return costs().unlocalized_duration(id, acc);
}

ScheduleResult Simulator::simulate(const Mapping& m,
                                   const LocalityPlan& plan) const {
  H2H_EXPECTS(m.complete());
  H2H_EXPECTS(m.size() == model_->layer_count());

  // Process in sequence order; verify it is topological as we go.
  std::vector<LayerId> order = model_->all_layers();
  std::sort(order.begin(), order.end(), [&m](LayerId lhs, LayerId rhs) {
    return m.seq_of(lhs) < m.seq_of(rhs);
  });

  ScheduleResult r;
  r.timings.resize(model_->layer_count());
  std::vector<double> acc_free(sys_->accelerator_count(), 0.0);
  std::vector<bool> done(model_->layer_count(), false);

  for (const LayerId id : order) {
    LayerTiming t = layer_components(id, m, plan);
    const Layer& layer = model_->layer(id);

    double ready = 0.0;
    for (const LayerId p : model_->graph().preds(id)) {
      H2H_EXPECTS(done[p.value]);  // sequence must be topological
      ready = std::max(ready, r.timings[p.value].finish);
    }

    if (layer.kind == LayerKind::Input) {
      t.start = 0.0;
      t.finish = 0.0;
    } else {
      const AccId a = m.acc_of(id);
      t.start = std::max(ready, acc_free[a.value]);
      t.finish = t.start + t.duration();
      acc_free[a.value] = t.finish;

      r.comp_time += t.t_compute;
      r.local_time += t.t_local;
      r.host_time += t.t_host;
      r.host_bytes += t.host_bytes;
      r.local_bytes += t.local_bytes;
      r.energy += layer_energy(id, m, t);
      r.latency = std::max(r.latency, t.finish);
    }
    r.timings[id.value] = t;
    done[id.value] = true;
  }

  r.energy.static_power = sys_->static_energy(r.latency);
  return r;
}

}  // namespace h2h
