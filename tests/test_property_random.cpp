// Cross-module property sweeps: the full H2H pipeline on randomized models
// and randomized heterogeneous systems must uphold the algorithm's
// invariants for every seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>

#include "core/remap_delta.h"
#include "system/incremental.h"
#include "test_helpers.h"

namespace h2h {
namespace {

class PipelineProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineProperty, InvariantsHoldOnRandomInstances) {
  Rng rng(GetParam());
  const ModelGraph model = testing::make_random_model(rng);
  const SystemConfig sys = testing::make_random_system(rng);
  const PlanResponse r = plan_once(model, sys);

  // 1. All four steps ran, latencies positive and monotone from step 2 on.
  ASSERT_EQ(r.steps.size(), 4u);
  for (const StepSnapshot& s : r.steps) {
    EXPECT_GT(s.result.latency, 0.0);
    EXPECT_GT(s.result.energy.total(), 0.0);
  }
  EXPECT_LE(r.steps[1].result.latency, r.steps[0].result.latency);
  EXPECT_LE(r.steps[2].result.latency, r.steps[1].result.latency);
  EXPECT_LE(r.steps[3].result.latency, r.steps[2].result.latency);

  // 2. Final mapping is complete and kind-valid.
  EXPECT_NO_THROW(r.mapping.validate(model, sys));

  // 3. Pins and fused buffers respect every accelerator's DRAM capacity.
  for (const AccId acc : sys.all_accelerators()) {
    Bytes pinned = 0;
    for (const LayerId id : r.mapping.layers_on(acc))
      if (r.plan.pinned(id)) pinned += model.weight_bytes(id);
    EXPECT_LE(pinned, sys.spec(acc).dram_capacity) << sys.spec(acc).name;
    EXPECT_LE(r.plan.used_dram(acc), sys.spec(acc).dram_capacity);
  }

  // 4. Fused edges connect co-located layers only.
  for (const LayerId id : model.all_layers()) {
    const auto preds = model.graph().preds(id);
    for (std::size_t i = 0; i < preds.size(); ++i) {
      if (!r.plan.fused_in(id, i)) continue;
      EXPECT_EQ(r.mapping.acc_of(preds[i]), r.mapping.acc_of(id));
      EXPECT_FALSE(r.mapping.acc_of(id).is_host());
    }
  }

  // 5. Schedule sanity: every layer starts after its predecessors finish,
  //    and accelerator queues do not overlap.
  const ScheduleResult& final = r.final_result();
  for (const LayerId id : model.all_layers()) {
    for (const LayerId p : model.graph().preds(id)) {
      EXPECT_GE(final.timings[id.value].start,
                final.timings[p.value].finish - 1e-12);
    }
  }
  for (const AccId acc : sys.all_accelerators()) {
    const auto queue = r.mapping.layers_on(acc);
    for (std::size_t i = 1; i < queue.size(); ++i) {
      EXPECT_GE(final.timings[queue[i].value].start,
                final.timings[queue[i - 1].value].finish - 1e-12);
    }
  }

  // 6. Makespan equals the max finish time.
  double max_finish = 0;
  for (const LayerTiming& t : final.timings)
    max_finish = std::max(max_finish, t.finish);
  EXPECT_DOUBLE_EQ(final.latency, max_finish);
}

TEST_P(PipelineProperty, EnergyDecomposesAndTracksTraffic) {
  Rng rng(GetParam() + 1000);
  const ModelGraph model = testing::make_random_model(rng);
  const SystemConfig sys = testing::make_random_system(rng);
  const PlanResponse r = plan_once(model, sys);

  const EnergyBreakdown& base = r.baseline_result().energy;
  const EnergyBreakdown& fin = r.final_result().energy;
  // Steps 2-3 only localize traffic, so up to the end of step 3 host bytes
  // cannot grow. (Step 4 optimizes latency and may trade traffic around.)
  EXPECT_LE(r.steps[2].result.host_bytes, r.steps[0].result.host_bytes);
  EXPECT_GT(fin.compute, 0.0);
  EXPECT_DOUBLE_EQ(fin.total(),
                   fin.compute + fin.link + fin.dram + fin.static_power);
  EXPECT_GE(base.total(), 0.0);
}

// Property for the journaled search core: an arbitrary interleaving of
// remap / pin / fuse probes and undos, tracked through the apply/undo
// journals, must agree with a from-scratch Simulator::simulate at every
// step — and a rollback must restore the exact pre-probe state.
TEST_P(PipelineProperty, JournaledProbesAgreeWithFullSimulationAtEveryStep) {
  Rng rng(GetParam() + 2000);
  const ModelGraph model = testing::make_random_model(rng);
  const SystemConfig sys = testing::make_random_system(rng);
  const Simulator sim(model, sys);
  Mapping mapping = computation_prioritized_mapping(sim);
  LocalityPlan plan(model);
  plan.ensure_acc_count(sys.accelerator_count());
  optimize_weight_locality(sim, mapping, plan);
  optimize_activation_fusion(sim, mapping, plan);

  IncrementalSchedule inc(sim);
  inc.reset(mapping, plan);

  const std::vector<LayerId> layers = model.all_layers();
  for (int step = 0; step < 25; ++step) {
    const double latency_before = inc.latency();
    const std::size_t pins_before = plan.pinned_count();
    const std::size_t fused_before = plan.fused_edge_count();

    mapping.begin_journal();
    plan.begin_journal();
    inc.begin_journal();

    bool probed = false;
    switch (rng.index(3)) {
      case 0: {  // remap probe with steps 2-3 re-run on the touched pair
        const LayerId node = layers[rng.index(layers.size())];
        if (model.layer(node).kind == LayerKind::Input) break;
        const auto cands = sys.supporting(model.layer(node).kind);
        const AccId dst = cands[rng.index(cands.size())];
        const AccId src = mapping.acc_of(node);
        if (dst == src) break;
        mapping.reassign(node, dst);
        const std::array<AccId, 2> touched{src, dst};
        optimize_weight_locality(sim, mapping, plan, {}, touched);
        optimize_activation_fusion(sim, mapping, plan, {}, touched);
        std::vector<LayerId> dirty;
        plan.journal_touched_layers(model, dirty);
        inc.apply_remap(mapping, plan, node, src, dirty);
        probed = true;
        break;
      }
      case 1: {  // pin toggle
        const LayerId node = layers[rng.index(layers.size())];
        if (model.layer(node).kind == LayerKind::Input ||
            model.weight_bytes(node) == 0)
          break;
        plan.set_pinned(node, !plan.pinned(node));
        const std::array<LayerId, 1> dirty{node};
        inc.refresh_components(mapping, plan, dirty);
        probed = true;
        break;
      }
      default: {  // fuse toggle (consumer in-transfer + producer host write)
        const LayerId node = layers[rng.index(layers.size())];
        const auto preds = model.graph().preds(node);
        if (preds.empty() || model.layer(node).kind == LayerKind::Input) break;
        const std::size_t slot = rng.index(preds.size());
        // Only toggle co-located edges on: cross-accelerator fusion is
        // not a state the passes produce.
        const bool want = !plan.fused_in(node, slot);
        if (want && mapping.acc_of(preds[slot]) != mapping.acc_of(node)) break;
        plan.set_fused_in(node, slot, want);
        const std::array<LayerId, 2> dirty{node, preds[slot]};
        inc.refresh_components(mapping, plan, dirty);
        probed = true;
        break;
      }
    }

    // Journaled state and a from-scratch simulation agree after the probe.
    ASSERT_DOUBLE_EQ(inc.latency(), sim.simulate(mapping, plan).latency)
        << "step " << step;

    if (probed && rng.index(2) == 0) {
      inc.rollback_journal();
      plan.rollback_journal();
      mapping.rollback_journal();
      // Rollback restored the exact pre-probe state.
      ASSERT_DOUBLE_EQ(inc.latency(), latency_before) << "step " << step;
      ASSERT_EQ(plan.pinned_count(), pins_before) << "step " << step;
      ASSERT_EQ(plan.fused_edge_count(), fused_before) << "step " << step;
      ASSERT_DOUBLE_EQ(sim.simulate(mapping, plan).latency, latency_before)
          << "step " << step;
    } else {
      inc.commit_journal();
      plan.commit_journal();
      mapping.commit_journal();
    }
  }

  // Whatever mix of commits and rollbacks happened, the tracked schedule
  // still matches a full re-simulation bit for bit.
  const ScheduleResult full = sim.simulate(mapping, plan);
  const ScheduleResult agg = inc.result(mapping);
  EXPECT_DOUBLE_EQ(agg.latency, full.latency);
  EXPECT_DOUBLE_EQ(agg.energy.total(), full.energy.total());
  EXPECT_DOUBLE_EQ(agg.host_time, full.host_time);
}

// Tentpole property (delta-evaluated remap probes): an arbitrary
// interleaving of delta-evaluated remap probes — per-acc member lists,
// delta steps-2/3, overlay schedule probe — with rollbacks, commits, and
// out-of-band pin/fuse toggles must stay bit-identical to the from-scratch
// full passes, and the delta aggregates must always equal a fresh
// re-derivation from the live state.
TEST_P(PipelineProperty, DeltaProbesMatchFullPassesAndMemberLists) {
  Rng rng(GetParam() + 3000);
  const ModelGraph model = testing::make_random_model(rng);
  const SystemConfig sys = testing::make_random_system(rng);
  const Simulator sim(model, sys);
  Mapping mapping = computation_prioritized_mapping(sim);
  LocalityPlan plan(model);
  plan.ensure_acc_count(sys.accelerator_count());
  optimize_weight_locality(sim, mapping, plan);
  optimize_activation_fusion(sim, mapping, plan);

  IncrementalSchedule inc(sim);
  inc.reset(mapping, plan);
  RemapDeltaState delta(sim, {}, {}, /*use_knapsack_cache=*/true);
  delta.init(mapping, plan);

  const std::vector<LayerId> layers = model.all_layers();

  // Per-acc member lists must always equal a brute-force scan.
  const auto check_members = [&] {
    for (const AccId acc : sys.all_accelerators()) {
      std::vector<LayerId> expected;
      for (const LayerId id : layers)
        if (mapping.is_assigned(id) && mapping.acc_of(id) == acc)
          expected.push_back(id);
      std::sort(expected.begin(), expected.end(),
                [&mapping](LayerId l, LayerId r) {
                  return mapping.seq_of(l) < mapping.seq_of(r);
                });
      const auto got = mapping.members(acc);
      ASSERT_TRUE(std::equal(got.begin(), got.end(), expected.begin(),
                             expected.end()))
          << "acc " << acc.value;
    }
  };

  // The maintained aggregates must equal a from-scratch re-derivation.
  const auto check_aggregates = [&] {
    RemapDeltaState fresh(sim, {}, {}, false);
    fresh.init(mapping, plan);
    for (const AccId acc : sys.all_accelerators())
      ASSERT_TRUE(delta.aggregates(acc) == fresh.aggregates(acc))
          << "acc " << acc.value;
  };

  std::vector<LayerId> dirty;
  for (int step = 0; step < 25; ++step) {
    switch (rng.index(4)) {
      case 0:
      case 1: {  // delta-evaluated remap probe vs full-pass reference
        const LayerId node = layers[rng.index(layers.size())];
        if (model.layer(node).kind == LayerKind::Input) break;
        const auto cands = sys.supporting(model.layer(node).kind);
        const AccId dst = cands[rng.index(cands.size())];
        const AccId src = mapping.acc_of(node);
        if (dst == src) break;

        // Reference: the full touched-pair re-run on a copied state.
        Mapping ref_mapping = mapping;
        LocalityPlan ref_plan = plan;
        ref_mapping.reassign(node, dst);
        const std::array<AccId, 2> touched{src, dst};
        optimize_weight_locality(sim, ref_mapping, ref_plan, {}, touched);
        optimize_activation_fusion(sim, ref_mapping, ref_plan, {}, touched);

        // Delta path on the live state, journaled.
        mapping.begin_journal();
        plan.begin_journal();
        delta.begin_probe(src, dst);
        mapping.reassign(node, dst);
        delta.apply_move(mapping, plan, node, src, dst);

        // Bit-identical plan state vs the reference.
        for (const LayerId id : layers) {
          ASSERT_EQ(plan.pinned(id), ref_plan.pinned(id))
              << "step " << step << " layer " << id.value;
          const auto preds = model.graph().preds(id);
          for (std::size_t i = 0; i < preds.size(); ++i)
            ASSERT_EQ(plan.fused_in(id, i), ref_plan.fused_in(id, i))
                << "step " << step << " layer " << id.value << " slot " << i;
        }
        for (const AccId acc : sys.all_accelerators())
          ASSERT_EQ(plan.used_dram(acc), ref_plan.used_dram(acc))
              << "step " << step << " acc " << acc.value;
        check_members();

        // The overlay probe returns the applied makespan bit for bit and
        // leaves the committed schedule untouched.
        const double latency_before = inc.latency();
        dirty.clear();
        plan.journal_touched_layers(model, dirty);
        const double probed = inc.probe_remap(mapping, plan, node, src, dirty);
        ASSERT_DOUBLE_EQ(probed, sim.simulate(mapping, plan).latency)
            << "step " << step;
        ASSERT_DOUBLE_EQ(inc.latency(), latency_before) << "step " << step;

        if (rng.index(2) == 0) {  // keep: apply the probed move for real
          inc.apply_remap(mapping, plan, node, src, dirty);
          ASSERT_DOUBLE_EQ(inc.latency(), probed) << "step " << step;
          delta.commit_probe();
          plan.commit_journal();
          mapping.commit_journal();
        } else {  // reject: roll everything back
          delta.rollback_probe();
          plan.rollback_journal();
          mapping.rollback_journal();
          ASSERT_DOUBLE_EQ(inc.latency(), latency_before) << "step " << step;
          check_members();
        }
        break;
      }
      case 2: {  // out-of-band pin toggle: delta state must be re-derived
        const LayerId node = layers[rng.index(layers.size())];
        if (model.layer(node).kind == LayerKind::Input ||
            model.weight_bytes(node) == 0)
          break;
        plan.set_pinned(node, !plan.pinned(node));
        const std::array<LayerId, 1> d{node};
        inc.refresh_components(mapping, plan, d);
        delta.init(mapping, plan);
        break;
      }
      default: {  // out-of-band fuse toggle (co-located edges only)
        const LayerId node = layers[rng.index(layers.size())];
        const auto preds = model.graph().preds(node);
        if (preds.empty() || model.layer(node).kind == LayerKind::Input) break;
        const std::size_t slot = rng.index(preds.size());
        const bool want = !plan.fused_in(node, slot);
        if (want && mapping.acc_of(preds[slot]) != mapping.acc_of(node)) break;
        plan.set_fused_in(node, slot, want);
        const std::array<LayerId, 2> d{node, preds[slot]};
        inc.refresh_components(mapping, plan, d);
        delta.init(mapping, plan);
        break;
      }
    }
    check_aggregates();
  }

  // Whatever mix happened, the tracked schedule still matches a full
  // re-simulation bit for bit.
  ASSERT_DOUBLE_EQ(inc.latency(), sim.simulate(mapping, plan).latency);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineProperty,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace h2h
