// The plug-in story: extend the system with user-defined accelerators.
//
// Two ways in:
//  1. An AnalyticalAccelerator from your own AcceleratorSpec (here: the
//     row-stationary Eyeriss-like design that the paper's Fig. 1 shows as a
//     configurable FPGA personality).
//  2. A LambdaAccelerator wrapping arbitrary user cost functions (here: a
//     hypothetical fixed-latency NPU with measured per-layer numbers).
// Both join a SystemConfig next to catalog designs. Accelerator models are
// move-only, so the custom system cannot be copied per request — a Planner
// borrowing it (shared-system mode) plans against it directly, and repeated
// requests reuse the cached cost tables without re-querying the plug-ins.
#include <iostream>

#include "h2h.h"

int main() {
  using namespace h2h;

  // Register the custom designs by name (optional; enables name lookup).
  auto& registry = AcceleratorRegistry::instance();
  if (!registry.contains("EYE")) {
    registry.register_factory(
        "EYE", [] { return make_analytical(eyeriss_like_spec()); });
  }

  // A measured-latency NPU: conv layers take 50 us + 1 ns per MAC/1000.
  AcceleratorSpec npu_spec = eyeriss_like_spec();
  npu_spec.name = "NPU";
  npu_spec.description = "vendor NPU with measured per-layer latency";
  npu_spec.kinds = KindSupport{true, true, false};

  // Assemble: 4 catalog designs + the Eyeriss-like spec + the lambda NPU.
  std::vector<AcceleratorPtr> accs;
  for (const char* name : {"X.W", "T.M", "S.H", "J.Q"})
    accs.push_back(registry.make(name));
  accs.push_back(registry.make("EYE"));
  accs.push_back(std::make_unique<LambdaAccelerator>(
      npu_spec, [](const Layer& layer) {
        return 50e-6 + static_cast<double>(layer.macs()) * 1e-12;
      }));

  HostParams host;
  host.bw_acc = bandwidth_value(BandwidthSetting::MidMinus);
  const SystemConfig sys(std::move(accs), host);

  // Map a model containing conv, FC, and LSTM layers onto the hybrid system.
  Planner planner(sys);  // borrows the custom system for every request
  const ModelGraph model = make_model(ZooModel::CnnLstm);
  const PlanResponse result = planner.plan(PlanRequest::for_graph(model, 0.0));

  std::cout << "custom system with " << sys.accelerator_count()
            << " accelerators (2 user-defined)\n";
  std::cout << "H2H latency " << human_seconds(result.final_result().latency)
            << " (" << format_percent(1.0 - result.latency_vs_baseline(), 1)
            << " below the computation-prioritized baseline)\n\n";

  std::cout << "layers placed on user-defined accelerators:\n";
  for (const LayerId id : model.all_layers()) {
    const Layer& layer = model.layer(id);
    if (layer.kind == LayerKind::Input) continue;
    const AcceleratorSpec& spec = sys.spec(result.mapping.acc_of(id));
    if (spec.name == "EYE" || spec.name == "NPU")
      std::cout << "  " << layer.name << " -> " << spec.name << '\n';
  }

  // A second request hits the session cache: the user-defined cost
  // functions are not consulted again.
  const PlanResponse warm = planner.plan(PlanRequest::for_graph(model, 0.0));
  std::cout << "\nre-plan: " << (warm.warm ? "warm" : "cold")
            << " (plug-in models queried once, at session build)\n";
  return 0;
}
