// Serve-path throughput: requests/second and per-request service latency
// (p50/p99) for the wire pipeline — parse_request -> Planner::plan ->
// write_response, exactly what `h2h serve` does per jsonl line — under
// cold, warm, and mixed request mixes at 1/2/4 worker threads. Numbers are
// recorded in bench/README.md.
//
// Mix definitions:
//   warm  — requests cycle 12 pre-built sessions (mocap x {Low- .. Mid});
//           every request is a cache hit.
//   cold  — every request carries a unique BW_acc, so every request builds
//           a fresh session (Simulator + CostTable) and the LRU churns.
//   mixed — 7 of 8 requests warm, every 8th cold (unique BW_acc).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "h2h.h"
#include "serve/protocol.h"

namespace {

using namespace h2h;
using Clock = std::chrono::steady_clock;

enum class Mix { Warm, Cold, Mixed };

[[nodiscard]] const char* to_string(Mix mix) {
  switch (mix) {
    case Mix::Warm: return "warm";
    case Mix::Cold: return "cold";
    case Mix::Mixed: return "mixed";
  }
  return "?";
}

/// The request line a client would send; parsing it is part of the
/// measured service time.
[[nodiscard]] std::string request_line(double bw_gbps) {
  return strformat(
      R"({"schema_version":1,"model":"mocap","bw_gbps":%.9f,)"
      R"("emit":{"timing":false}})",
      bw_gbps);
}

/// One request's bandwidth under `mix`. Warm keys cycle the five catalog
/// settings x {default, x1.5, x2} scales (12 distinct keys fits the default
/// session cache); cold keys perturb BW_acc so no two requests share a key.
[[nodiscard]] double bw_for(Mix mix, std::size_t i) {
  static constexpr double kWarm[12] = {0.125, 0.15,  0.25, 0.5, 1.25, 0.1875,
                                       0.225, 0.375, 0.75, 0.6, 0.3,  1.0};
  const double unique = 0.4 + 1e-6 * static_cast<double>(i + 1);
  switch (mix) {
    case Mix::Warm: return kWarm[i % 12];
    case Mix::Cold: return unique;
    case Mix::Mixed: return (i % 8 == 7) ? unique : kWarm[i % 12];
  }
  return 0.5;
}

struct MixResult {
  double wall_s = 0;
  std::vector<double> latencies_s;  // per request, sorted on return
};

/// Serve `total` requests from `threads` workers against one shared
/// Planner, timing each request end to end through the wire codec.
[[nodiscard]] MixResult run_mix(Mix mix, std::size_t threads,
                                std::size_t total) {
  Planner planner;
  const ModelGraph model = make_model(ZooModel::MoCap);
  const SystemConfig names = SystemConfig::standard(0.5e9);
  if (mix != Mix::Cold) {
    for (std::size_t i = 0; i < 12; ++i) {
      (void)planner.plan(PlanRequest::zoo(
          ZooModel::MoCap, bw_for(Mix::Warm, i) * 1e9));
    }
  }

  std::vector<std::vector<double>> per_thread(threads);
  const auto t0 = Clock::now();
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      // Static interleave; cold indices stay globally unique.
      for (std::size_t i = t; i < total; i += threads) {
        const std::string line = request_line(bw_for(mix, i));
        const auto start = Clock::now();
        auto parsed = serve::parse_request(line);
        const auto& req = std::get<serve::WireRequest>(parsed);
        const PlanResponse r = planner.plan(serve::to_plan_request(req));
        const std::string out = serve::write_response(req, r, model, names);
        const auto finish = Clock::now();
        if (out.empty()) std::abort();  // keep the response alive
        per_thread[t].push_back(
            std::chrono::duration<double>(finish - start).count());
      }
    });
  }
  for (std::thread& w : workers) w.join();
  MixResult result;
  result.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  for (const std::vector<double>& lat : per_thread) {
    result.latencies_s.insert(result.latencies_s.end(), lat.begin(),
                              lat.end());
  }
  std::sort(result.latencies_s.begin(), result.latencies_s.end());
  return result;
}

[[nodiscard]] double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const std::size_t at = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(sorted.size())));
  return sorted[at];
}

}  // namespace

int main(int argc, char** argv) {
  // --quick shrinks the request count for smoke runs (CI).
  std::size_t total = 512;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") total = 32;
  }

  std::printf("serve throughput, mocap, %zu requests per cell\n", total);
  std::printf("%-6s %8s %10s %12s %12s\n", "mix", "threads", "req/s",
              "p50 (ms)", "p99 (ms)");
  for (const Mix mix : {Mix::Warm, Mix::Cold, Mix::Mixed}) {
    for (const std::size_t threads : {1u, 2u, 4u}) {
      const MixResult r = run_mix(mix, threads, total);
      std::printf("%-6s %8zu %10.0f %12.3f %12.3f\n", to_string(mix),
                  threads, static_cast<double>(r.latencies_s.size()) / r.wall_s,
                  percentile(r.latencies_s, 0.50) * 1e3,
                  percentile(r.latencies_s, 0.99) * 1e3);
    }
  }
  return 0;
}
