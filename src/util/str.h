// Small string/formatting helpers. GCC 12 lacks <format>, so printf-style
// formatting is wrapped once here (type-checked by -Wformat) and the rest of
// the library stays free of raw snprintf calls.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/units.h"

namespace h2h {

/// snprintf into a std::string. The attribute lets the compiler type-check
/// call sites.
[[nodiscard]] std::string strformat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// "1.50 GiB", "512.00 MiB", "96 B" ...
[[nodiscard]] std::string human_bytes(Bytes b);

/// "1.234 s", "12.34 ms", "56.7 us" ...
[[nodiscard]] std::string human_seconds(double s);

/// Fixed-point with `digits` decimals, e.g. format_fixed(0.12345, 2) == "0.12".
[[nodiscard]] std::string format_fixed(double v, int digits);

/// "65.84%" style percentage of a ratio in [0, inf).
[[nodiscard]] std::string format_percent(double ratio, int digits = 2);

/// Join parts with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// True if `s` starts with `prefix` (string_view convenience, pre-C++20-lib).
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix) noexcept;

}  // namespace h2h
