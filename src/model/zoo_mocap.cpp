// MoCap emotion recognition (Tripathi et al., 2018, on IEMOCAP): three
// modalities — speech MFCCs, text transcripts, and motion-capture marker
// trajectories — each with an LSTM unit (the mocap branch adds temporal
// convolutions), fused by an MLP with two task heads. The smallest and most
// communication-bound evaluation model.
//
// Modality tags: 1 = speech, 2 = text, 3 = mocap, 0 = fusion.
#include "model/blocks.h"
#include "model/zoo.h"

namespace h2h {

ModelGraph make_mocap() {
  ModelBuilder b("MoCap");

  b.set_modality(1);
  const LayerId speech = b.input_seq("mfcc", 100, 40);
  const LayerId sl = b.lstm("speech.lstm", speech, 448, 2);
  const LayerId slast = b.global_pool("speech.last", sl);

  b.set_modality(2);
  const LayerId text = b.input_seq("glove", 64, 300);
  const LayerId tl = b.lstm("text.lstm", text, 448, 2);
  const LayerId tlast = b.global_pool("text.last", tl);

  b.set_modality(3);
  const LayerId mocap = b.input_seq("markers", 200, 160);
  const LayerId mc1 = b.conv1d("mocap.conv1", mocap, 128, 3, 1);
  const LayerId mc2 = b.conv1d("mocap.conv2", mc1, 128, 3, 1);
  const LayerId mp = b.pool("mocap.pool", mc2, 3, 2);
  const LayerId ml = b.lstm("mocap.lstm", mp, 448, 1);
  const LayerId mlast = b.global_pool("mocap.last", ml);

  b.set_modality(0);
  const LayerId cat = b.concat("fuse.concat", std::array{slast, tlast, mlast});
  const LayerId fc1 = b.fc("fuse.fc1", cat, 512);
  const LayerId fc2 = b.fc("fuse.fc2", fc1, 256);
  (void)b.fc("task.emotion", fc2, 4);
  (void)b.fc("task.valence", fc2, 2);

  return std::move(b).build();
}

}  // namespace h2h
