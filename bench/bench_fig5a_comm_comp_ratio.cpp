// Regenerates Figure 5(a): communication vs computation time share at
// bandwidth Low- before (computation-prioritized baseline) and after H2H.
// The paper's marquee data point: MoCap computation share 21% -> 94%.
#include <benchmark/benchmark.h>

#include <iostream>

#include "h2h.h"

namespace {

void BM_CommCompDecomposition(benchmark::State& state) {
  const h2h::ModelGraph model = h2h::make_mocap();
  const h2h::SystemConfig sys =
      h2h::SystemConfig::standard(h2h::BandwidthSetting::LowMinus);
  const h2h::PlanResponse r = h2h::plan_once(model, sys);
  const h2h::Simulator sim(model, sys);
  for (auto _ : state) {
    const h2h::ScheduleResult res = sim.simulate(r.mapping, r.plan);
    benchmark::DoNotOptimize(res.comp_ratio());
  }
}
BENCHMARK(BM_CommCompDecomposition)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  std::vector<h2h::StepSeries> cells;
  for (const h2h::ZooInfo& info : h2h::zoo_catalog())
    cells.push_back(
        h2h::run_experiment(info.id, h2h::BandwidthSetting::LowMinus));
  h2h::print_fig5a(cells, std::cout);
  std::cout << '\n';

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
