// The plug-in accelerator performance-model interface (the paper's P_Acc).
//
// The H2H infrastructure "takes arbitrary accelerators with user-defined
// performance models in a plug-in manner": anything implementing
// AcceleratorModel can join a SystemConfig. The library ships an analytical
// implementation (analytical_models.h) replicating the 12 surveyed designs
// (catalog.h); users can provide custom models (see the custom_accelerator
// example and registry.h).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "accel/dataflow.h"
#include "accel/tiling.h"
#include "model/layer.h"
#include "util/units.h"

namespace h2h {

/// Which Table-1 layer families an accelerator accelerates. Structural
/// layers (Input/Pool/Eltwise/Concat) are runnable everywhere.
struct KindSupport {
  bool conv = false;
  bool fc = false;
  bool lstm = false;

  [[nodiscard]] bool supports(LayerKind kind) const noexcept {
    switch (kind) {
      case LayerKind::Conv: return conv;
      case LayerKind::FullyConnected: return fc;
      case LayerKind::Lstm: return lstm;
      default: return true;  // structural layers
    }
  }
};

/// Static description of one accelerator: microarchitecture, board-level
/// memory system, and energy coefficients. The numbers in catalog.cpp are
/// calibrated estimates from each design's publication (see DESIGN.md §2).
struct AcceleratorSpec {
  std::string name;         // Table 3 short name, e.g. "C.Z"
  std::string description;  // one-line citation
  std::string board;        // FPGA board, fixes M_acc
  DataflowStyle style = DataflowStyle::ChannelParallel;
  KindSupport kinds;
  std::uint32_t peak_macs_per_cycle = 0;  // physical MAC units
  PeArray pe;                             // array geometry for alignment
  double freq_hz = 0;
  double dram_bandwidth = 0;   // local DRAM, bytes/s
  Bytes dram_capacity = 0;     // M_acc
  double energy_per_mac = 0;   // joules
  double energy_per_dram_byte = 0;  // joules, local DRAM traffic
  double link_power = 0;       // watts while the host link is active
  /// Optional per-accelerator override of the system-wide BW_acc (0 = none).
  double bw_acc_override = 0;
  /// On-chip SRAM budgets for the MAESTRO-style reuse model (tiling.h).
  /// When set, weights that do not fit on chip are re-streamed from local
  /// DRAM per tile/timestep and the re-fetch time rooflines the compute.
  /// Zero disables the memory model (pure-compute accelerator).
  OnChipBuffers buffers{};
  /// Element size the datapath computes in (for the reuse model).
  std::uint32_t arith_bytes = 2;
  /// User-defined capability bits OR'd into the derived mask
  /// (accel/capability.h): bits 0-4 are computed from this spec, higher
  /// bits are free for deployment-specific gating (multi-tenant placement).
  std::uint32_t extra_capabilities = 0;

  void validate() const;  // throws ConfigError on nonsensical values
};

class AcceleratorModel {
 public:
  virtual ~AcceleratorModel() = default;

  AcceleratorModel(const AcceleratorModel&) = delete;
  AcceleratorModel& operator=(const AcceleratorModel&) = delete;

  [[nodiscard]] virtual const AcceleratorSpec& spec() const noexcept = 0;

  /// Can this accelerator execute `kind` at all?
  [[nodiscard]] virtual bool supports(LayerKind kind) const noexcept;

  /// On-chip compute latency of `layer`, seconds. Excludes all data
  /// movement (the system simulator owns transfer terms). Requires
  /// supports(layer.kind).
  [[nodiscard]] virtual double compute_latency(const Layer& layer) const = 0;

  /// Compute energy of `layer`, joules (MAC + vector-op switching energy).
  [[nodiscard]] virtual double compute_energy(const Layer& layer) const;

 protected:
  AcceleratorModel() = default;
};

using AcceleratorPtr = std::unique_ptr<AcceleratorModel>;

}  // namespace h2h
