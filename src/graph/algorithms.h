// Graph algorithms used by the mapper: topological order (Kahn), cycle
// detection, reachability, and frontier extraction (the paper's step-1
// iteration primitive: "select all the nodes without predecessors").
#pragma once

#include <optional>
#include <vector>

#include "graph/digraph.h"

namespace h2h {

/// Kahn topological order; returns std::nullopt if the graph has a cycle.
/// Deterministic: ties are broken by ascending NodeId.
[[nodiscard]] std::optional<std::vector<NodeId>> topological_order(const Digraph& g);

[[nodiscard]] bool is_dag(const Digraph& g);

/// Nodes reachable from `roots` (inclusive), as a dense bitmap indexed by
/// NodeId::value.
[[nodiscard]] std::vector<bool> reachable_from(const Digraph& g,
                                               std::span<const NodeId> roots);

/// The mapping frontier: nodes not yet `done` whose predecessors are all
/// `done`. `done` is a dense bitmap indexed by NodeId::value. O(V + E) per
/// call — the wave-by-wave mapper uses FrontierWorklist instead.
[[nodiscard]] std::vector<NodeId> frontier(const Digraph& g,
                                           const std::vector<bool>& done);

/// Incremental frontier maintenance for wave-by-wave traversals (the step-1
/// mapper). Counts remaining predecessors per node; complete() pushes a
/// node's newly-ready successors, and take_wave() hands back everything that
/// became ready since the last call, sorted ascending. Completing every node
/// of each wave before taking the next yields exactly the waves the O(V+E)
/// frontier() rescan produces, at O(V + E) TOTAL across the traversal.
class FrontierWorklist {
 public:
  explicit FrontierWorklist(const Digraph& g);

  /// Mark `n` executed: successors whose last remaining predecessor this
  /// was become ready for the next wave. Each node completes at most once.
  void complete(NodeId n);

  /// Move the accumulated ready-but-not-completed nodes into `out`
  /// (cleared first), ascending. Returns false when none are pending —
  /// traversal done, or (if completions never come) the rest of the graph
  /// is unreachable / cyclic.
  bool take_wave(std::vector<NodeId>& out);

 private:
  const Digraph* g_;
  std::vector<std::uint32_t> remaining_;  // not-yet-completed predecessors
  std::vector<std::uint8_t> completed_;
  std::vector<NodeId> ready_;
};

/// Position of each node in `order`, as a dense array (node id -> rank).
[[nodiscard]] std::vector<std::uint32_t> order_ranks(const Digraph& g,
                                                     std::span<const NodeId> order);

/// Undirected connected components (used by the clustering baseline).
/// Returns a dense array node id -> component id, and the component count.
struct Components {
  std::vector<std::uint32_t> component_of;
  std::uint32_t count = 0;
};
[[nodiscard]] Components connected_components(const Digraph& g);

}  // namespace h2h
