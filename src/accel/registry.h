// Name-based accelerator factory registry: the "plug-in manner" of the
// paper's infrastructure contribution. The standard Table-3 designs are
// pre-registered; users add custom models at runtime (see the
// custom_accelerator example).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "accel/accelerator_model.h"

namespace h2h {

class AcceleratorRegistry {
 public:
  using Factory = std::function<AcceleratorPtr()>;

  /// Process-wide registry, lazily constructed with the standard catalog.
  [[nodiscard]] static AcceleratorRegistry& instance();

  /// Register a factory under `name`; throws ConfigError on duplicates.
  void register_factory(std::string name, Factory factory);

  /// True if `name` is registered.
  [[nodiscard]] bool contains(std::string_view name) const noexcept;

  /// Instantiate by name; throws ConfigError for unknown names.
  [[nodiscard]] AcceleratorPtr make(std::string_view name) const;

  /// Registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  AcceleratorRegistry();

  std::map<std::string, Factory, std::less<>> factories_;
};

}  // namespace h2h
