#include "serve/protocol.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <utility>
#include <vector>

#include "serve/json.h"
#include "util/str.h"

namespace h2h::serve {
namespace {

constexpr std::uint32_t kMaxBatch = 4096;

[[nodiscard]] std::string known_zoo_keys() {
  std::string keys;
  for (const ZooInfo& info : zoo_catalog()) {
    if (!keys.empty()) keys += ", ";
    keys += info.key;
  }
  return keys;
}

/// Canonical-string -> JSON value for one option row (inverse of the string
/// conversion parse_options does). Unset options return null.
[[nodiscard]] json::Value option_value(const PlanOptionSpec& spec,
                                       const PlanOptions& options) {
  const std::string v = spec.get(options);
  if (v.empty()) return json::Value(nullptr);
  switch (spec.kind) {
    case PlanOptionSpec::Kind::Bool:
      return json::Value(v == "true");
    case PlanOptionSpec::Kind::Double: {
      double d = 0;
      const auto [ptr, ec] =
          std::from_chars(v.data(), v.data() + v.size(), d);
      H2H_ASSERT(ec == std::errc() && ptr == v.data() + v.size());
      return json::Value(d);
    }
    case PlanOptionSpec::Kind::Enum:
      return json::Value(v);
  }
  H2H_ASSERT(false);
  return json::Value(nullptr);
}

}  // namespace

std::string_view to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::ParseError:
      return "parse_error";
    case ErrorCode::SchemaVersion:
      return "schema_version";
    case ErrorCode::UnknownField:
      return "unknown_field";
    case ErrorCode::BadField:
      return "bad_field";
    case ErrorCode::UnknownModel:
      return "unknown_model";
    case ErrorCode::PlanFailed:
      return "plan_failed";
  }
  return "unknown";
}

std::variant<WireRequest, WireError> parse_request(std::string_view line) {
  const json::ParseResult parsed = json::parse(line);
  if (!parsed.value) {
    return WireError{ErrorCode::ParseError,
                     strformat("byte %zu: %s", parsed.offset,
                               parsed.error.c_str()),
                     {}};
  }
  if (!parsed.value->is_object()) {
    return WireError{ErrorCode::ParseError, "request must be a JSON object",
                     {}};
  }
  const json::Object& root = parsed.value->as_object();

  WireRequest req;
  // id first, so every later error can echo it.
  if (const json::Value* id = root.find("id")) {
    if (!id->is_string()) {
      return WireError{ErrorCode::BadField, "id: expected a string", {}};
    }
    req.id = id->as_string();
  }
  const auto fail = [&req](ErrorCode code, std::string message) {
    return WireError{code, std::move(message), req.id};
  };

  const json::Value* version = root.find("schema_version");
  if (version == nullptr) {
    return fail(ErrorCode::SchemaVersion,
                strformat("missing schema_version (this server speaks %d)",
                          kSchemaVersion));
  }
  if (!version->is_number() ||
      version->as_number() != static_cast<double>(kSchemaVersion)) {
    return fail(ErrorCode::SchemaVersion,
                strformat("unsupported schema_version (this server speaks %d)",
                          kSchemaVersion));
  }

  const json::Value* model = root.find("model");
  if (model == nullptr || !model->is_string()) {
    return fail(ErrorCode::BadField,
                "model: expected a string zoo key (required)");
  }
  const std::optional<ZooModel> zoo = zoo_model_by_key(model->as_string());
  if (!zoo) {
    return fail(ErrorCode::UnknownModel,
                strformat("unknown model '%s' (known: %s)",
                          model->as_string().c_str(),
                          known_zoo_keys().c_str()));
  }
  req.model = *zoo;

  if (const json::Value* bw = root.find("bw_gbps")) {
    if (!bw->is_number() || !(bw->as_number() > 0)) {
      return fail(ErrorCode::BadField, "bw_gbps: expected a positive number");
    }
    req.bw_gbps = bw->as_number();
  }

  if (const json::Value* batch = root.find("batch")) {
    const double b = batch->is_number() ? batch->as_number() : -1;
    if (b < 1 || b > kMaxBatch || b != std::floor(b)) {
      return fail(ErrorCode::BadField,
                  strformat("batch: expected an integer in [1, %u]",
                            kMaxBatch));
    }
    req.batch = static_cast<std::uint32_t>(b);
  }

  if (const json::Value* options = root.find("options")) {
    if (!options->is_object()) {
      return fail(ErrorCode::BadField, "options: expected an object");
    }
    for (const json::Object::Member& m : options->as_object().members()) {
      // The wire spelling is the table's json_key, exactly — the kebab-case
      // CLI spelling is rejected here so the schema has one name per knob.
      const PlanOptionSpec* spec = nullptr;
      for (const PlanOptionSpec& s : plan_option_specs()) {
        if (m.key == s.json_key) {
          spec = &s;
          break;
        }
      }
      if (spec == nullptr) {
        return fail(ErrorCode::UnknownField,
                    strformat("options.%s: unknown option", m.key.c_str()));
      }
      std::string spelled;
      switch (spec->kind) {
        case PlanOptionSpec::Kind::Bool:
          if (!m.value.is_bool()) {
            return fail(ErrorCode::BadField,
                        strformat("options.%s: expected a boolean",
                                  m.key.c_str()));
          }
          spelled = m.value.as_bool() ? "true" : "false";
          break;
        case PlanOptionSpec::Kind::Double: {
          if (!m.value.is_number()) {
            return fail(ErrorCode::BadField,
                        strformat("options.%s: expected a number",
                                  m.key.c_str()));
          }
          char buf[32];
          const auto [end, ec] =
              std::to_chars(buf, buf + sizeof(buf), m.value.as_number());
          H2H_ASSERT(ec == std::errc());
          spelled.assign(buf, end);
          break;
        }
        case PlanOptionSpec::Kind::Enum:
          if (!m.value.is_string()) {
            return fail(ErrorCode::BadField,
                        strformat("options.%s: expected one of %.*s",
                                  m.key.c_str(),
                                  static_cast<int>(spec->values.size()),
                                  spec->values.data()));
          }
          spelled = m.value.as_string();
          break;
      }
      if (std::optional<std::string> err = spec->set(req.options, spelled)) {
        return fail(ErrorCode::BadField,
                    strformat("options.%s: %s", m.key.c_str(), err->c_str()));
      }
    }
  }

  if (const json::Value* emit = root.find("emit")) {
    if (!emit->is_object()) {
      return fail(ErrorCode::BadField, "emit: expected an object");
    }
    for (const json::Object::Member& m : emit->as_object().members()) {
      bool* target = nullptr;
      if (m.key == "mapping") {
        target = &req.emit_mapping;
      } else if (m.key == "steps") {
        target = &req.emit_steps;
      } else if (m.key == "timing") {
        target = &req.emit_timing;
      } else {
        return fail(ErrorCode::UnknownField,
                    strformat("emit.%s: unknown field (valid: mapping, "
                              "steps, timing)",
                              m.key.c_str()));
      }
      if (!m.value.is_bool()) {
        return fail(ErrorCode::BadField,
                    strformat("emit.%s: expected a boolean", m.key.c_str()));
      }
      *target = m.value.as_bool();
    }
  }

  for (const json::Object::Member& m : root.members()) {
    if (m.key != "schema_version" && m.key != "id" && m.key != "model" &&
        m.key != "bw_gbps" && m.key != "batch" && m.key != "options" &&
        m.key != "emit") {
      return fail(ErrorCode::UnknownField,
                  strformat("%s: unknown field", m.key.c_str()));
    }
  }
  return req;
}

PlanRequest to_plan_request(const WireRequest& request) {
  PlanRequest plan = PlanRequest::zoo(request.model, request.bw_gbps * 1e9,
                                      request.batch);
  plan.options = request.options;
  return plan;
}

std::string write_response(const WireRequest& request,
                           const PlanResponse& response,
                           const ModelGraph& model, const SystemConfig& sys) {
  json::Object root;
  root.set("schema_version", kSchemaVersion);
  if (!request.id.empty()) root.set("id", request.id);
  root.set("ok", true);
  root.set("model", zoo_info(request.model).key);
  root.set("bw_gbps", request.bw_gbps);
  root.set("batch", request.batch == 0 ? 1u : request.batch);

  // Echo every knob at its canonical value so a response is a complete
  // record of what was planned, defaults included.
  json::Object options;
  for (const PlanOptionSpec& spec : plan_option_specs()) {
    json::Value v = option_value(spec, request.options);
    if (v.is_null()) continue;  // unset optional (time_budget_s)
    options.set(std::string(spec.json_key), std::move(v));
  }
  root.set("options", std::move(options));

  const ScheduleResult& fin = response.final_result();
  root.set("latency_s", fin.latency);
  root.set("energy_j", fin.energy.total());
  root.set("comp_ratio", fin.comp_ratio());
  root.set("stopped_on_budget", response.stopped_on_budget);

  if (request.emit_steps) {
    json::Array steps;
    for (const StepSnapshot& step : response.steps) {
      json::Object s;
      s.set("name", step.name);
      s.set("latency_s", step.result.latency);
      s.set("energy_j", step.result.energy.total());
      steps.push_back(json::Value(std::move(s)));
    }
    root.set("steps", std::move(steps));
  }

  if (request.emit_mapping) {
    std::vector<LayerId> order = model.all_layers();
    std::sort(order.begin(), order.end(),
              [&response](LayerId l, LayerId r) {
                return response.mapping.seq_of(l) <
                       response.mapping.seq_of(r);
              });
    json::Array layers;
    for (const LayerId id : order) {
      if (model.layer(id).kind == LayerKind::Input) continue;
      json::Object entry;
      entry.set("layer", model.layer(id).name);
      entry.set("acc", sys.spec(response.mapping.acc_of(id)).name);
      if (response.plan.pinned(id)) entry.set("pinned", true);
      layers.push_back(json::Value(std::move(entry)));
    }
    json::Array fused;
    for (const LayerId id : order) {
      const auto preds = model.graph().preds(id);
      for (std::size_t i = 0; i < preds.size(); ++i) {
        if (!response.plan.fused_in(id, i)) continue;
        json::Object edge;
        edge.set("from", model.layer(preds[i]).name);
        edge.set("to", model.layer(id).name);
        fused.push_back(json::Value(std::move(edge)));
      }
    }
    json::Object mapping;
    mapping.set("layers", std::move(layers));
    mapping.set("fused", std::move(fused));
    root.set("mapping", std::move(mapping));
  }

  if (request.emit_timing) {
    json::Object timing;
    timing.set("warm", response.warm);
    timing.set("setup_s", response.setup_seconds);
    timing.set("search_s", response.search_seconds);
    root.set("timing", std::move(timing));
  }
  return json::dump(json::Value(std::move(root)));
}

std::string write_error(const WireError& error) {
  json::Object root;
  root.set("schema_version", kSchemaVersion);
  if (!error.id.empty()) root.set("id", error.id);
  root.set("ok", false);
  json::Object detail;
  detail.set("code", to_string(error.code));
  detail.set("message", error.message);
  root.set("error", std::move(detail));
  return json::dump(json::Value(std::move(root)));
}

}  // namespace h2h::serve
