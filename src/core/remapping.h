// Step 4 — data-locality-aware remapping (paper §4.4).
//
// For every layer, attempt to re-allocate it to an accelerator hosting one
// of its graph neighbours; re-run weight locality (step 2) and activation
// fusion (step 3) for the two affected accelerators; accept iff the overall
// objective strictly decreases. Passes repeat until a fixed point (or
// max_passes). Termination is guaranteed by the strict-decrease acceptance.
//
// Candidate evaluation is delta-first (DESIGN.md §6): each probe applies the
// move against the live Mapping/LocalityPlan under their apply/undo journals
// — with the steps-2/3 re-run computed as a delta over the moved layer and
// its neighbours (RemapDeltaState), falling back to the full touched-pair
// pass only under capacity pressure — and reads the candidate makespan from
// IncrementalSchedule's overlay probe, which leaves the committed schedule
// untouched. A rejected candidate therefore costs no deep copies, no
// schedule journal, and no queue surgery (the paper's sub-second search
// times depend on this; see bench_ablation_incremental and
// bench_ablation_remap_probe).
#pragma once

#include <chrono>
#include <optional>

#include "core/remap_delta.h"
#include "system/incremental.h"

namespace h2h {

/// What the greedy loop minimizes. The paper uses latency; the
/// energy-delay-product option is our extension for energy-constrained
/// deployments (swept by bench_ablation_objective).
enum class RemapObjective { Latency, EnergyDelayProduct };

struct RemapOptions {
  std::uint32_t max_passes = 32;
  /// Minimum objective improvement to accept a move (same unit as the
  /// objective: seconds, or joule-seconds for EDP).
  double epsilon = 1e-12;
  /// Use the incremental scheduler for candidate evaluation (the paper's
  /// successor-only updates); false falls back to full re-simulation.
  /// Results are identical (asserted in tests); speed differs.
  bool use_incremental = true;
  /// Evaluate each probe's steps-2/3 re-run as a delta pass over the moved
  /// layer and its neighbours (RemapDeltaState), falling back to the full
  /// per-accelerator pass only under capacity pressure; false re-runs both
  /// full passes on the touched pair. Results are bit-identical (asserted in
  /// tests); speed differs (bench_ablation_remap_probe).
  bool use_delta_locality = true;
  /// Memoize knapsack solves on the delta path's full-pass fallbacks: the
  /// src-accelerator instance repeats across all candidates of one node, so
  /// it is solved once per node instead of once per probe. Exact-match
  /// memoization — results stay bit-identical. Only read when
  /// use_delta_locality is on.
  bool use_knapsack_cache = true;
  /// Cone-limited retime (IncrementalSchedule::set_cone_filter): skip
  /// consumers whose start provably cannot move. Final timings are
  /// bit-identical (property-tested). Off by default: on the zoo probe
  /// workloads the sweep's unchanged-start stop already bounds the cone
  /// within ~0.3% of optimal, so the per-edge filter loads outweigh the
  /// visits they avoid (see bench_ablation_remap_probe's retime-cone axis);
  /// enable for fan-out-heavy graphs.
  bool use_retime_cone = false;
  RemapObjective objective = RemapObjective::Latency;
  WeightLocalityOptions weight;
  FusionOptions fusion;
  /// Optional per-layer freeze mask, indexed by LayerId::value (size must be
  /// >= the model's layer count when set). Locked layers are never probed
  /// for a move — the multi-tenant co-mapper pins peer tenants' layers while
  /// replanning one tenant. nullptr freezes nothing (the single-tenant hot
  /// path is unchanged and bit-identical).
  const std::vector<bool>* locked = nullptr;
  /// Optional wall-clock deadline (PlanRequest::time_budget_s): the loop
  /// stops cleanly — current state kept, stopped_on_budget reported — at the
  /// first per-layer check past the deadline. nullopt runs to convergence;
  /// the check is skipped entirely then, so the unbudgeted hot path is
  /// unchanged.
  std::optional<std::chrono::steady_clock::time_point> deadline;
};

struct RemapStats {
  std::uint32_t passes = 0;
  std::uint32_t attempts = 0;
  std::uint32_t accepted = 0;
  /// Node re-timings the incremental schedule performed across all probes
  /// (0 when use_incremental is off) — the bench's work accounting.
  std::uint64_t retimes = 0;
  /// Knapsack-cache accounting (0 when use_delta_locality or
  /// use_knapsack_cache is off): solver runs avoided / paid on the delta
  /// path's full-pass fallbacks.
  std::uint64_t knapsack_hits = 0;
  std::uint64_t knapsack_misses = 0;
  /// Per-accelerator full-pass fallbacks taken by the delta evaluation
  /// (steps 2 and 3 counted separately; see RemapDeltaStats).
  std::uint64_t delta_full_passes = 0;
  /// True when the loop stopped on RemapOptions::deadline before reaching a
  /// fixed point (Fig. 5b budgeted-search reporting).
  bool stopped_on_budget = false;
};

/// Runs the remapping loop in place on `mapping`/`plan` (which must already
/// have steps 2-3 applied). Returns loop statistics.
RemapStats data_locality_remapping(const Simulator& sim, Mapping& mapping,
                                   LocalityPlan& plan,
                                   const RemapOptions& options = {});

}  // namespace h2h
