#include "report/mapping_report.h"

#include <cmath>

#include "model/summary.h"
#include "util/str.h"
#include "util/table.h"

namespace h2h {
namespace {

/// Signed human_seconds: negative slack reads "-1.2 ms", not garbage.
[[nodiscard]] std::string signed_seconds(double s) {
  if (s < 0) return "-" + human_seconds(-s);
  return human_seconds(s);
}

}  // namespace

void print_mapping_report(const ModelGraph& model, const SystemConfig& sys,
                          const PlanResponse& result, std::ostream& out,
                          const MappingReportOptions& options) {
  const ScheduleResult& sched = result.final_result();

  print_model_summary(model, out);
  // Summarize the link topology, not the scalar BW_acc alone — under a
  // mixed/hierarchical Interconnect the system-wide number would be wrong
  // for most pairs. Uniform keeps the single-speed spelling.
  const Interconnect& links = sys.links();
  if (links.min_bandwidth() == links.max_bandwidth()) {
    out << strformat("system: %zu accelerators, %.*s links %.3f GB/s\n\n",
                     sys.accelerator_count(),
                     static_cast<int>(links.shape_name().size()),
                     links.shape_name().data(),
                     links.min_bandwidth() / 1e9);
  } else {
    out << strformat(
        "system: %zu accelerators, %.*s links %.3f-%.3f GB/s\n\n",
        sys.accelerator_count(),
        static_cast<int>(links.shape_name().size()), links.shape_name().data(),
        links.min_bandwidth() / 1e9, links.max_bandwidth() / 1e9);
  }

  out << "pipeline:\n";
  for (const StepSnapshot& step : result.steps) {
    out << strformat("  %-32s latency %-12s energy %8.4f J  comp %s\n",
                     step.name.c_str(),
                     human_seconds(step.result.latency).c_str(),
                     step.result.energy.total(),
                     format_percent(step.result.comp_ratio(), 1).c_str());
  }
  out << strformat(
      "vs baseline (step 2): latency -%s, energy -%s; %u remaps accepted in "
      "%u passes; search %s\n\n",
      format_percent(1.0 - result.latency_vs_baseline(), 1).c_str(),
      format_percent(1.0 - result.energy_vs_baseline(), 1).c_str(),
      result.remap_stats.accepted, result.remap_stats.passes,
      human_seconds(result.search_seconds).c_str());

  // Locality summary.
  Bytes pinned_bytes = 0;
  for (const LayerId id : model.all_layers())
    if (result.plan.pinned(id)) pinned_bytes += model.weight_bytes(id);
  out << strformat(
      "locality: %zu layers pinned (%s of weights), %zu edges fused; host "
      "traffic %s, local traffic %s\n\n",
      result.plan.pinned_count(), human_bytes(pinned_bytes).c_str(),
      result.plan.fused_edge_count(), human_bytes(sched.host_bytes).c_str(),
      human_bytes(sched.local_bytes).c_str());

  // Per-accelerator load.
  TextTable loads_table({"acc", "dataflow", "layers", "busy", "util", "pinned"},
                        {TextTable::Align::Left, TextTable::Align::Left});
  const auto loads = accelerator_loads(model, sys, result.mapping, sched);
  for (const AcceleratorLoad& load : loads) {
    Bytes acc_pinned = 0;
    for (const LayerId id : result.mapping.members(load.acc))
      if (result.plan.pinned(id)) acc_pinned += model.weight_bytes(id);
    loads_table.add_row(
        {sys.spec(load.acc).name,
         std::string(to_string(sys.spec(load.acc).style)),
         strformat("%zu", load.layer_count),
         human_seconds(load.busy_time),
         format_percent(load.utilization(sched.latency), 0),
         human_bytes(acc_pinned)});
  }
  loads_table.print(out);

  // Critical path.
  const CriticalPathBreakdown cp =
      critical_path_breakdown(model, result.mapping, sched);
  out << strformat(
      "\ncritical path %s: %s compute, %s host comm, %s local DRAM, %s "
      "waiting\n",
      human_seconds(cp.total).c_str(),
      format_percent(cp.compute_time / cp.total, 0).c_str(),
      format_percent(cp.host_time / cp.total, 0).c_str(),
      format_percent(cp.local_time / cp.total, 0).c_str(),
      format_percent(cp.wait_time / cp.total, 0).c_str());

  if (options.gantt) {
    out << '\n';
    print_gantt(model, sys, result.mapping, sched, out, options.gantt_width);
  }

  if (options.per_layer) {
    out << '\n';
    TextTable layer_table({"layer", "kind", "acc", "start", "finish",
                           "pinned"},
                          {TextTable::Align::Left, TextTable::Align::Left,
                           TextTable::Align::Left});
    for (const LayerId id : model.all_layers()) {
      const Layer& l = model.layer(id);
      if (l.kind == LayerKind::Input) continue;
      const LayerTiming& t = sched.timings[id.value];
      layer_table.add_row({l.name, std::string(to_string(l.kind)),
                           sys.spec(result.mapping.acc_of(id)).name,
                           human_seconds(t.start), human_seconds(t.finish),
                           result.plan.pinned(id) ? "yes" : "no"});
    }
    layer_table.print(out);
  }
}

void print_comap_report(const SystemConfig& sys, const CoMapResult& result,
                        std::ostream& out,
                        const MappingReportOptions& options) {
  const ModelGraph& model = result.model;
  out << strformat("co-mapping: %zu tenants, %zu union layers on %zu "
                   "accelerators\n\n",
                   result.tenants.size(), model.layer_count(),
                   sys.accelerator_count());

  // Per-tenant verdicts. "solo" is the tenant alone on the idle system,
  // "sequential" is every solo mapping deployed together (the contention
  // nobody planned for), "co-mapped" is this result.
  TextTable table({"tenant", "prio", "slo", "solo", "sequential", "co-mapped",
                   "slack", "slo met"},
                  {TextTable::Align::Left});
  for (const TenantOutcome& t : result.tenants) {
    const bool has_slo = std::isfinite(t.slo_s);
    table.add_row({t.name, strformat("%u", t.priority),
                   has_slo ? human_seconds(t.slo_s) : "-",
                   human_seconds(t.solo_latency_s),
                   human_seconds(t.seq_latency_s),
                   human_seconds(t.latency_s),
                   has_slo ? signed_seconds(t.slack_s) : "-",
                   t.met ? "yes" : "MISS"});
  }
  table.print(out);

  out << strformat(
      "\nmakespan: co-mapped %s vs sequential %s; priority-weighted SLO "
      "violation %s vs %s sequential\n",
      human_seconds(result.schedule.latency).c_str(),
      human_seconds(result.seq_makespan_s).c_str(),
      human_seconds(result.violation_s).c_str(),
      human_seconds(result.seq_violation_s).c_str());
  out << strformat("search: %u round(s)%s; %s\n",
                   result.rounds,
                   result.steal_ran ? " plus the steal round" : "",
                   result.all_slos_met ? "every SLO met"
                                       : "some SLOs still missed");

  if (options.gantt) {
    out << '\n';
    print_gantt(model, sys, result.mapping, result.schedule, out,
                options.gantt_width);
  }

  if (options.per_layer) {
    out << '\n';
    TextTable layer_table({"layer", "kind", "acc", "start", "finish",
                           "pinned"},
                          {TextTable::Align::Left, TextTable::Align::Left,
                           TextTable::Align::Left});
    for (const LayerId id : model.all_layers()) {
      const Layer& l = model.layer(id);
      if (l.kind == LayerKind::Input) continue;
      const LayerTiming& t = result.schedule.timings[id.value];
      layer_table.add_row({l.name, std::string(to_string(l.kind)),
                           sys.spec(result.mapping.acc_of(id)).name,
                           human_seconds(t.start), human_seconds(t.finish),
                           result.plan.pinned(id) ? "yes" : "no"});
    }
    layer_table.print(out);
  }
}

void print_repair_report(const ModelGraph& model, const SystemConfig& sys,
                         const RepairResult& result, std::ostream& out) {
  out << strformat("fault: %s\n", format_fault(result.event).c_str());
  if (result.outcome == RepairOutcome::Infeasible) {
    out << strformat("repair: INFEASIBLE — %s\n",
                     result.infeasible_reason.c_str());
    out << "the pre-fault plan is kept (stale) until a recovery event "
           "arrives\n";
    return;
  }

  out << strformat("latency: %s before the fault",
                   human_seconds(result.pre_latency_s).c_str());
  if (std::isfinite(result.faulted_latency_s)) {
    out << strformat(", %s unrepaired",
                     human_seconds(result.faulted_latency_s).c_str());
  } else {
    out << ", unrunnable unrepaired";
  }
  out << strformat(", %s repaired%s\n",
                   human_seconds(result.post_latency_s).c_str(),
                   result.used_fallback ? " (from-scratch fallback)" : "");
  out << strformat(
      "repair: damage cone %zu layer(s); %zu migrated, %s of weights "
      "re-staged (%.1f ms search)\n",
      result.cone_layers, result.layers_moved,
      human_bytes(result.weight_bytes_moved).c_str(),
      result.repair_seconds * 1e3);

  if (!result.migrations.empty()) {
    TextTable table({"layer", "from", "to", "weights"},
                    {TextTable::Align::Left, TextTable::Align::Left,
                     TextTable::Align::Left});
    for (const Migration& m : result.migrations) {
      table.add_row({model.layer(m.layer).name, sys.spec(m.from).name,
                     sys.spec(m.to).name, human_bytes(m.weight_bytes)});
    }
    table.print(out);
  }
}

}  // namespace h2h
