#include "system/system_config.h"

#include <array>
#include <cstring>
#include <set>
#include <utility>

#include "accel/capability.h"
#include "accel/catalog.h"
#include "util/error.h"
#include "util/str.h"

namespace h2h {
namespace {

constexpr std::array<BandwidthSetting, 5> kAllSettings{
    BandwidthSetting::LowMinus, BandwidthSetting::Low,
    BandwidthSetting::MidMinus, BandwidthSetting::Mid, BandwidthSetting::High};

/// The scalar-shim topology: a uniform star at host.bw_acc, or — when any
/// spec still carries the deprecated bw_acc_override — the mixed shape with
/// those overrides as per-accelerator uplinks. bw_acc(id) through the
/// resulting Interconnect reproduces the old override-or-default lookup
/// value for value.
[[nodiscard]] Interconnect shim_links(
    const std::vector<AcceleratorPtr>& accs, const HostParams& host) {
  if (host.bw_acc <= 0) throw ConfigError("BW_acc must be > 0");
  std::vector<Interconnect::Override> overrides;
  for (std::uint32_t i = 0; i < accs.size(); ++i) {
    if (accs[i] == nullptr) continue;  // the ctor body rejects these
    const double o = accs[i]->spec().bw_acc_override;
    if (o > 0) overrides.emplace_back(i, o);
  }
  return overrides.empty() ? Interconnect::uniform(host.bw_acc)
                           : Interconnect::mixed(host.bw_acc,
                                                 std::move(overrides));
}

}  // namespace

double bandwidth_value(BandwidthSetting setting) noexcept {
  switch (setting) {
    case BandwidthSetting::LowMinus: return gbps(0.125);
    case BandwidthSetting::Low: return gbps(0.15);
    case BandwidthSetting::MidMinus: return gbps(0.25);
    case BandwidthSetting::Mid: return gbps(0.5);
    case BandwidthSetting::High: return gbps(1.25);
  }
  return gbps(0.5);
}

std::string_view to_string(BandwidthSetting setting) noexcept {
  switch (setting) {
    case BandwidthSetting::LowMinus: return "Low-";
    case BandwidthSetting::Low: return "Low";
    case BandwidthSetting::MidMinus: return "Mid-";
    case BandwidthSetting::Mid: return "Mid";
    case BandwidthSetting::High: return "High";
  }
  return "?";
}

std::span<const BandwidthSetting> all_bandwidth_settings() noexcept {
  return kAllSettings;
}

void SystemConfig::validate_accelerators(bool allow_bw_override) const {
  if (accs_.empty()) throw ConfigError("system has no accelerators");
  if (host_.static_power_w < 0) throw ConfigError("static power must be >= 0");
  std::set<std::string> names;
  for (const AcceleratorPtr& a : accs_) {
    H2H_EXPECTS(a != nullptr);
    a->spec().validate();
    if (!allow_bw_override && a->spec().bw_acc_override > 0)
      throw ConfigError(strformat(
          "accelerator '%s': bw_acc_override is deprecated and ignored under "
          "an explicit Interconnect — express it as a mixed-topology uplink",
          a->spec().name.c_str()));
    if (!names.insert(a->spec().name).second)
      throw ConfigError(strformat("duplicate accelerator name '%s'",
                                  a->spec().name.c_str()));
  }
}

SystemConfig::SystemConfig(std::vector<AcceleratorPtr> accelerators,
                           HostParams host)
    : accs_(std::move(accelerators)),
      host_(host),
      links_(shim_links(accs_, host_)) {
  validate_accelerators(/*allow_bw_override=*/true);
  links_.bind(accs_.size());
  cache_capabilities();
}

SystemConfig::SystemConfig(std::vector<AcceleratorPtr> accelerators,
                           Interconnect links, HostParams host)
    : accs_(std::move(accelerators)),
      host_(host),
      links_(std::move(links)) {
  // One source of truth for the scalar view: the topology's base bandwidth.
  host_.bw_acc = links_.base_bw();
  validate_accelerators(/*allow_bw_override=*/false);
  links_.bind(accs_.size());
  cache_capabilities();
}

void SystemConfig::cache_capabilities() {
  caps_.reserve(accs_.size());
  for (const AcceleratorPtr& a : accs_)
    caps_.push_back(spec_capabilities(a->spec()));
}

SystemConfig SystemConfig::standard(double bw_acc) {
  HostParams host;
  host.bw_acc = bw_acc;
  return SystemConfig(build_standard_accelerators(), host);
}

SystemConfig SystemConfig::standard(Interconnect links) {
  return SystemConfig(build_standard_accelerators(), std::move(links));
}

SystemConfig SystemConfig::scaled(std::size_t count, Interconnect links) {
  return SystemConfig(build_scaled_accelerators(count), std::move(links));
}

std::vector<AccId> SystemConfig::all_accelerators() const {
  std::vector<AccId> out;
  out.reserve(accs_.size());
  for (std::uint32_t i = 0; i < accs_.size(); ++i) out.push_back(AccId{i});
  return out;
}

std::vector<AccId> SystemConfig::supporting(LayerKind kind) const {
  std::vector<AccId> out;
  for (std::uint32_t i = 0; i < accs_.size(); ++i)
    if (accs_[i]->supports(kind) && available(AccId{i})) out.push_back(AccId{i});
  return out;
}

void SystemConfig::set_available(AccId id, bool available) {
  H2H_EXPECTS(contains(id));
  if (avail_.empty()) avail_.assign(accs_.size(), 1);
  avail_[id.value] = available ? 1 : 0;
  refresh_derate_fingerprint();
}

std::size_t SystemConfig::available_count() const noexcept {
  if (avail_.empty()) return accs_.size();
  std::size_t n = 0;
  for (const std::uint8_t a : avail_) n += a;
  return n;
}

void SystemConfig::set_compute_derate(AccId id, double scale) {
  H2H_EXPECTS(contains(id));
  if (!(scale > 0) || scale > 1)
    throw ConfigError(strformat("compute derate for acc %u must be in (0, 1]",
                                id.value));
  if (derate_.empty()) derate_.assign(accs_.size(), 1.0);
  derate_[id.value] = scale;
  refresh_derate_fingerprint();
}

void SystemConfig::refresh_derate_fingerprint() {
  // FNV over the availability bits and derate factors; stays 0 until the
  // first fault hook fires (both vectors empty), so pre-repair CostTable
  // freshness checks compare 0 == 0 exactly as before this field existed.
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFFu;
      h *= 1099511628211ULL;
    }
  };
  for (const std::uint8_t a : avail_) mix(a);
  for (const double d : derate_) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    mix(bits);
  }
  derate_fp_ = h;
}

}  // namespace h2h
