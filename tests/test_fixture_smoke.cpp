// Smoke tests pinning the shared fixtures to hand-computed numbers.
//
// Every expectation below is derived on paper from the layer shapes in
// test_helpers.cpp and the round-number uniform accelerator of simple_spec()
// (1e11 MAC/s peak, MatrixEngine affinities 0.85/0.85/0.70, 10x10 PE array,
// 1 GB/s host link, 1 pJ/MAC, 0.1 nJ/B DRAM, 1 W link power). They guard
// the fixtures themselves: if a refactor of the builder, the analytical
// model, or the simulator shifts any of these totals, the hand-verifiable
// contract documented in test_helpers.h is broken and every other test's
// premises silently change.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "system/simulator.h"
#include "test_helpers.h"

namespace h2h {
namespace {

using testing::make_chain_model;
using testing::make_diamond_model;
using testing::make_mini_mmmt_model;
using testing::make_uniform_system;

constexpr double kPeak = 1e11;  // 100 MACs/cycle * 1 GHz
constexpr double kBwHost = 1e9;

Mapping map_all_to(const ModelGraph& m, AccId acc) {
  Mapping mapping(m);
  for (const LayerId id : m.all_layers())
    if (m.layer(id).kind != LayerKind::Input) mapping.assign(id, acc);
  return mapping;
}

/// Serial schedule on one uniform accelerator with zero locality.
ScheduleResult simulate_serial(const ModelGraph& m) {
  const SystemConfig sys = make_uniform_system(1);
  const Simulator sim(m, sys);
  return sim.simulate(map_all_to(m, AccId{0}), LocalityPlan(m));
}

/// MatrixEngine PE-alignment fraction on a 10-lane dimension.
double align10(double work) {
  const double folds = std::ceil(work / 10.0);
  return work / (folds * 10.0);
}

/// Relative tolerance loose enough to absorb float reassociation in the
/// simulator's accumulation order, tight enough to catch any model change.
double rel(double expected) { return std::abs(expected) * 1e-12; }

TEST(FixtureSmoke, ChainModelMatchesHandNumbers) {
  const ModelGraph m = make_chain_model();
  // in(8x8x8) -> convA(16,k3,s1) -> convB(16,k3,s2) -> fcC(32).
  // MACs: convA 16*8*8*(8*9) = 73728; convB 16*4*4*(16*9) = 36864;
  //       fcC 256*32 = 8192.
  EXPECT_EQ(m.layer(LayerId{1}).macs(), 73728u);
  EXPECT_EQ(m.layer(LayerId{2}).macs(), 36864u);
  EXPECT_EQ(m.layer(LayerId{3}).macs(), 8192u);
  // Weights @2B: convA (16*8*9+16)*2 = 2336; convB (16*16*9+16)*2 = 4640;
  //              fcC (256*32+32)*2 = 16448.
  EXPECT_EQ(m.weight_bytes(LayerId{1}), 2336u);
  EXPECT_EQ(m.weight_bytes(LayerId{2}), 4640u);
  EXPECT_EQ(m.weight_bytes(LayerId{3}), 16448u);

  const ScheduleResult r = simulate_serial(m);
  // Host traffic (zero locality, every tensor crosses the 1 GB/s link):
  //   convA 1024+2336+2048, convB 2048+4640+512, fcC 512+16448+64 = 29632 B.
  EXPECT_EQ(r.host_bytes, 29632u);
  // Latency = host transfer time + compute time (serial on one accelerator).
  const double t_comm = 29632.0 / kBwHost;
  const double t_conv = (73728.0 + 36864.0) / (kPeak * 0.85 * 0.8 * 0.8);
  const double t_fc = 8192.0 / (kPeak * 0.85 * align10(32) * align10(256));
  EXPECT_NEAR(r.latency, t_comm + t_conv + t_fc, rel(t_comm + t_conv + t_fc));
  // Energy: compute 118784 MACs * 1 pJ; link 29632 B / 1 GB/s * 1 W;
  //         DRAM 29632 B * 0.1 nJ/B.
  EXPECT_NEAR(r.energy.compute, 118784e-12, rel(118784e-12));
  EXPECT_NEAR(r.energy.link, 29632.0 / kBwHost, rel(29632.0 / kBwHost));
  EXPECT_NEAR(r.energy.dram, 29632.0 * 0.1e-9, rel(29632.0 * 0.1e-9));
  EXPECT_DOUBLE_EQ(r.energy.static_power, 0.0);
}

TEST(FixtureSmoke, DiamondModelMatchesHandNumbers) {
  const ModelGraph m = make_diamond_model();
  // in(8x16x16) -> a(16,k3,s1) -> {b, c}(16,k3,s1) -> d(add) -> e(fc 10).
  // MACs: a 16*16*16*(8*9) = 294912; b = c = 16*16*16*(16*9) = 589824;
  //       e 4096*10 = 40960. d contributes 4096 one-per-element adds.
  EXPECT_EQ(m.layer(LayerId{1}).macs(), 294912u);
  EXPECT_EQ(m.layer(LayerId{2}).macs(), 589824u);
  EXPECT_EQ(m.layer(LayerId{3}).macs(), 589824u);
  EXPECT_EQ(m.layer(LayerId{4}).light_ops(), 4096u);
  EXPECT_EQ(m.layer(LayerId{5}).macs(), 40960u);

  const ScheduleResult r = simulate_serial(m);
  // Host bytes: a 4096+2336+8192, b/c 8192+4640+8192 each,
  //             d (8192+8192)+8192, e 8192+81940+20 = 171400 B total.
  EXPECT_EQ(r.host_bytes, 171400u);
  const double t_comm = 171400.0 / kBwHost;
  const double t_conv = (294912.0 + 2 * 589824.0) / (kPeak * 0.85 * 0.8 * 0.8);
  const double t_add = 4096.0 / kPeak;
  const double t_fc = 40960.0 / (kPeak * 0.85 * align10(10) * align10(4096));
  const double t_total = t_comm + t_conv + t_add + t_fc;
  EXPECT_NEAR(r.latency, t_total, rel(t_total));
  // Energy: 1515520 MACs * 1 pJ + 4096 adds * 0.25 pJ.
  const double e_compute = 1515520e-12 + 4096 * 0.25e-12;
  EXPECT_NEAR(r.energy.compute, e_compute, rel(e_compute));
  EXPECT_NEAR(r.energy.link, 171400.0 / kBwHost, rel(171400.0 / kBwHost));
  EXPECT_NEAR(r.energy.dram, 171400.0 * 0.1e-9, rel(171400.0 * 0.1e-9));
}

TEST(FixtureSmoke, MiniMmmtModelMatchesHandNumbers) {
  const ModelGraph m = make_mini_mmmt_model();
  // img(3x32x32) -> conv1(16,k3,s2) -> conv2(32,k3,s2) -> gap;
  // seq(16x8) -> lstm(h32) -> last(gap); concat -> fc(32) -> 2x fc(4).
  // MACs: conv1 16*16*16*(3*9) = 110592; conv2 32*8*8*(16*9) = 294912;
  //       lstm 4*(8+32)*32*16 = 81920; fuse.fc 64*32 = 2048;
  //       task heads 32*4 = 128 each.
  const std::uint64_t macs[] = {0, 110592, 294912, 0, 0, 81920,
                                0, 0,      2048,   128, 128};
  // Light ops: m1.gap 32*8*8 = 2048 (k=8 global pool over 1x1 output);
  //            m2.last 32*16*16 = 8192 (k=16 over the hidden sequence).
  const std::uint64_t light[] = {0, 0, 0, 2048, 0, 0, 8192, 0, 0, 0, 0};
  ASSERT_EQ(m.layer_count(), 11u);
  for (std::uint32_t i = 0; i < 11; ++i) {
    EXPECT_EQ(m.layer(LayerId{i}).macs(), macs[i]) << i;
    EXPECT_EQ(m.layer(LayerId{i}).light_ops(), light[i]) << i;
  }

  const ScheduleResult r = simulate_serial(m);
  // Host bytes: conv1 6144+896+8192, conv2 8192+9280+4096, gap 4096+64,
  //   lstm 256+10496+1024, last 1024+64, cat (64+64)+128, fc 128+4160+64,
  //   tasks (64+264+8)*2 = 59104 B total.
  EXPECT_EQ(r.host_bytes, 59104u);
  const double t_comm = 59104.0 / kBwHost;
  const double t_compute =
      110592.0 / (kPeak * 0.85 * align10(16) * align10(3)) +   // conv1
      294912.0 / (kPeak * 0.85 * align10(32) * align10(16)) +  // conv2
      (2048.0 + 8192.0) / kPeak +                              // both pools
      81920.0 / (kPeak * 0.70 * align10(32) * align10(40)) +   // lstm
      2048.0 / (kPeak * 0.85 * align10(32) * align10(64)) +    // fuse.fc
      2 * 128.0 / (kPeak * 0.85 * align10(4) * align10(32));   // task heads
  EXPECT_NEAR(r.latency, t_comm + t_compute, rel(t_comm + t_compute));
  // Energy: 489728 MACs * 1 pJ + 10240 pool ops * 0.25 pJ.
  const double e_compute = 489728e-12 + 10240 * 0.25e-12;
  EXPECT_NEAR(r.energy.compute, e_compute, rel(e_compute));
  EXPECT_NEAR(r.energy.link, 59104.0 / kBwHost, rel(59104.0 / kBwHost));
  EXPECT_NEAR(r.energy.dram, 59104.0 * 0.1e-9, rel(59104.0 * 0.1e-9));
}

}  // namespace
}  // namespace h2h
