#include "model/synthetic.h"

#include <algorithm>
#include <vector>

#include "model/blocks.h"
#include "model/model_builder.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/str.h"

namespace h2h {

void SyntheticMmmtSpec::validate() const {
  if (modalities < 1) throw ConfigError("synthetic: modalities must be >= 1");
  if (lstm_modalities > modalities)
    throw ConfigError("synthetic: lstm_modalities exceeds modalities");
  if (backbone_depth < 1) throw ConfigError("synthetic: empty backbones");
  if (width <= 0) throw ConfigError("synthetic: width must be > 0");
  if (input_hw < 8) throw ConfigError("synthetic: input_hw too small");
  if (seq_len < 2) throw ConfigError("synthetic: seq_len too small");
}

namespace {

/// A vision backbone: strided conv stack with channel doubling every other
/// layer, ending in global pooling. Returns the pooled feature layer.
LayerId vision_backbone(ModelBuilder& b, const SyntheticMmmtSpec& spec,
                        std::uint32_t modality, Rng& rng) {
  const LayerId in = b.input(strformat("m%u.in", modality), 3, spec.input_hw,
                             spec.input_hw);
  std::uint32_t channels = scale_channels(32, spec.width);
  LayerId x = in;
  for (std::uint32_t d = 0; d < spec.backbone_depth; ++d) {
    // Jitter keeps backbones heterogeneous (distinct best accelerators).
    const auto jitter = static_cast<std::uint32_t>(rng.uniform_int(0, 1)) * 8;
    const std::uint32_t stride = (d % 2 == 0 && b.geometry(x).h > 7) ? 2 : 1;
    x = b.conv(strformat("m%u.conv%u", modality, d + 1), x, channels + jitter,
               3, stride);
    if (d % 2 == 1) channels = std::min(channels * 2, 512u);
  }
  return b.global_pool(strformat("m%u.gap", modality), x);
}

/// A recurrent backbone: temporal convs + stacked LSTM, last-state pooled.
LayerId recurrent_backbone(ModelBuilder& b, const SyntheticMmmtSpec& spec,
                           std::uint32_t modality, Rng& rng) {
  const auto features = static_cast<std::uint32_t>(rng.uniform_int(16, 128));
  const LayerId in =
      b.input_seq(strformat("m%u.in", modality), spec.seq_len, features);
  LayerId x = in;
  const std::uint32_t conv_layers = spec.backbone_depth / 2;
  const std::uint32_t ch = scale_channels(64, spec.width);
  for (std::uint32_t d = 0; d < conv_layers; ++d) {
    x = b.conv1d(strformat("m%u.tconv%u", modality, d + 1), x, ch, 3, 1);
  }
  const std::uint32_t hidden = scale_channels(256, spec.width);
  const std::uint32_t stacks =
      std::max(1u, spec.backbone_depth - conv_layers > 4 ? 2u : 1u);
  x = b.lstm(strformat("m%u.lstm", modality), x, hidden, stacks);
  return b.global_pool(strformat("m%u.last", modality), x);
}

}  // namespace

ModelGraph make_synthetic_mmmt(const SyntheticMmmtSpec& spec) {
  spec.validate();
  Rng rng(spec.seed);
  ModelBuilder b(strformat("synthetic-m%u-d%u", spec.modalities,
                           spec.backbone_depth));

  std::vector<LayerId> features;
  std::vector<LayerId> raw_features;  // pre-pool tensors for cross-talk
  for (std::uint32_t m = 1; m <= spec.modalities; ++m) {
    b.set_modality(m);
    const bool recurrent = m > spec.modalities - spec.lstm_modalities;
    features.push_back(recurrent ? recurrent_backbone(b, spec, m, rng)
                                 : vision_backbone(b, spec, m, rng));
  }

  // Cross-talk: each backbone's pooled feature also feeds a shared
  // projection with its neighbour (the VLocNet-style auxiliary links).
  b.set_modality(0);
  if (spec.cross_talk && spec.modalities >= 2) {
    for (std::uint32_t m = 0; m + 1 < spec.modalities; ++m) {
      const LayerId pair = b.concat(strformat("xt%u.cat", m + 1),
                                    std::array{features[m], features[m + 1]});
      raw_features.push_back(
          b.fc(strformat("xt%u.proj", m + 1), pair,
               scale_channels(128, spec.width)));
    }
  }

  std::vector<LayerId> to_fuse = features;
  to_fuse.insert(to_fuse.end(), raw_features.begin(), raw_features.end());
  LayerId x = to_fuse.size() >= 2 ? b.concat("fuse.cat", to_fuse)
                                  : to_fuse.front();
  std::uint32_t fc_width = scale_channels(512, spec.width);
  for (std::uint32_t d = 0; d < spec.fusion_fc_layers; ++d) {
    x = b.fc(strformat("fuse.fc%u", d + 1), x, fc_width);
    fc_width = std::max(fc_width / 2, 64u);
  }
  for (std::uint32_t t = 0; t < spec.task_heads; ++t) {
    (void)b.fc(strformat("task%u", t + 1), x,
               static_cast<std::uint32_t>(rng.uniform_int(2, 64)));
  }
  return std::move(b).build();
}

void SyntheticTransformerSpec::validate() const {
  if (blocks < 1) throw ConfigError("transformer: blocks must be >= 1");
  if (heads < 1) throw ConfigError("transformer: heads must be >= 1");
  if (d_model < 8) throw ConfigError("transformer: d_model too small");
  if (d_head == 0 && d_model % heads != 0)
    throw ConfigError("transformer: d_model not divisible by heads");
  if (seq_len < 2) throw ConfigError("transformer: seq_len too small");
}

ModelGraph make_synthetic_transformer(const SyntheticTransformerSpec& spec) {
  spec.validate();
  Rng rng(spec.seed);
  const std::uint32_t d_head =
      spec.d_head != 0 ? spec.d_head : spec.d_model / spec.heads;
  const std::uint32_t d_ff = spec.d_ff != 0 ? spec.d_ff : 4 * spec.d_model;
  ModelBuilder b(
      strformat("transformer-b%u-h%u-d%u", spec.blocks, spec.heads,
                spec.d_model));

  const LayerId in = b.input_seq("tok.in", spec.seq_len, spec.d_model);
  LayerId x = b.fc("embed", in, spec.d_model);
  std::vector<LayerId> head_outs;
  for (std::uint32_t blk = 1; blk <= spec.blocks; ++blk) {
    head_outs.clear();
    for (std::uint32_t h = 1; h <= spec.heads; ++h) {
      // Jitter keeps heads heterogeneous without changing the layer count.
      const auto jitter = static_cast<std::uint32_t>(rng.uniform_int(0, 1)) * 8;
      const LayerId qk =
          b.fc(strformat("b%u.h%u.qk", blk, h), x, d_head + jitter);
      head_outs.push_back(
          b.fc(strformat("b%u.h%u.av", blk, h), qk, d_head));
    }
    const LayerId cat = head_outs.size() >= 2
                            ? b.concat(strformat("b%u.cat", blk), head_outs)
                            : head_outs.front();
    const LayerId proj = b.fc(strformat("b%u.proj", blk), cat, spec.d_model);
    const LayerId res1 = b.eltwise(strformat("b%u.res1", blk), x, proj);
    const LayerId ff1 = b.fc(strformat("b%u.ff1", blk), res1, d_ff);
    const LayerId ff2 = b.fc(strformat("b%u.ff2", blk), ff1, spec.d_model);
    x = b.eltwise(strformat("b%u.res2", blk), res1, ff2);
  }
  (void)b.fc("head", x, std::max(2u, spec.d_model / 8));
  return std::move(b).build();
}

}  // namespace h2h
