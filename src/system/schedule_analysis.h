// Post-mortem analysis of a simulated schedule: critical path extraction,
// per-accelerator utilization/idle accounting, and a text Gantt rendering.
// Used by the reports, the examples, and the EXPERIMENTS.md narrative to
// explain *where* H2H's savings come from.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "system/simulator.h"

namespace h2h {

/// One hop of the critical path: the layer plus why it waited.
struct CriticalHop {
  LayerId layer;
  /// The bound that set this layer's start time.
  enum class Reason { Source, Dependency, QueueBusy } reason =
      Reason::Source;
  LayerId blocker;  // the predecessor/queue-neighbour that set the start
};

/// Longest start->finish chain ending at the makespan-defining layer.
/// Walks backwards through whichever constraint (dependency readiness or
/// accelerator FIFO occupancy) was binding at each hop.
[[nodiscard]] std::vector<CriticalHop> critical_path(
    const ModelGraph& model, const Mapping& mapping, const ScheduleResult& r);

/// Per-accelerator schedule statistics.
struct AcceleratorLoad {
  AccId acc;
  std::size_t layer_count = 0;
  double busy_time = 0;   // sum of scheduled durations
  double idle_time = 0;   // gaps between queue entries up to the makespan
  double first_start = 0;
  double last_finish = 0;

  [[nodiscard]] double utilization(double makespan) const noexcept {
    return makespan > 0 ? busy_time / makespan : 0.0;
  }
};

[[nodiscard]] std::vector<AcceleratorLoad> accelerator_loads(
    const ModelGraph& model, const SystemConfig& sys, const Mapping& mapping,
    const ScheduleResult& r);

/// Fraction of the critical path spent in host communication vs compute.
struct CriticalPathBreakdown {
  double total = 0;
  double host_time = 0;
  double compute_time = 0;
  double local_time = 0;
  double wait_time = 0;  // start-time gaps along the path
};

[[nodiscard]] CriticalPathBreakdown critical_path_breakdown(
    const ModelGraph& model, const Mapping& mapping, const ScheduleResult& r);

/// ASCII Gantt chart: one row per accelerator, time bucketed into `width`
/// columns ('#' busy, '.' idle). Layers narrower than a column still mark it.
void print_gantt(const ModelGraph& model, const SystemConfig& sys,
                 const Mapping& mapping, const ScheduleResult& r,
                 std::ostream& out, std::size_t width = 72);

}  // namespace h2h
