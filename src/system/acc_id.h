// Strong accelerator identifier, split out of system_config.h so the
// Interconnect link model can speak AccId without depending on the full
// SystemConfig (which in turn owns an Interconnect).
#pragma once

#include <cstdint>

namespace h2h {

/// Strong accelerator identifier (index into SystemConfig). The reserved
/// kHost value marks layers that live on the host (model Input nodes).
struct AccId {
  std::uint32_t value = kInvalid;

  static constexpr std::uint32_t kInvalid = 0xFFFFFFFFu;
  static constexpr std::uint32_t kHostValue = 0xFFFFFFFEu;

  [[nodiscard]] static constexpr AccId host() noexcept {
    return AccId{kHostValue};
  }
  [[nodiscard]] constexpr bool valid() const noexcept {
    return value != kInvalid;
  }
  [[nodiscard]] constexpr bool is_host() const noexcept {
    return value == kHostValue;
  }
  [[nodiscard]] constexpr auto operator<=>(const AccId&) const noexcept =
      default;
};

}  // namespace h2h
