// The serve wire protocol, version 1 (DESIGN.md §8).
//
// Framing is JSON lines: one request object per input line, one response
// object per output line, responses in request order. Every message carries
// `schema_version`; a request whose version this build does not speak is
// answered with an error response, never dropped. All failures — malformed
// JSON, unknown fields, bad values, planning exceptions — become `ok:false`
// responses with a machine-readable error code; exceptions never cross the
// wire and never kill the loop.
//
// Request schema (only `schema_version` and `model` are required):
//
//   {"schema_version":1,            // must equal kSchemaVersion
//    "id":"r1",                     // optional, echoed verbatim
//    "model":"mocap",               // zoo key (model/zoo.h)
//    "bw_gbps":0.5,                 // BW_acc in GB/s, default 0.5
//    "links":{...},                 // link topology; conflicts with bw_gbps
//    "batch":1,                     // default 1
//    "options":{...},               // plan_option_specs() json_key -> value
//    "emit":{"mapping":true,"steps":true,"timing":true}}
//
// The "links" object selects a per-pair link topology (system/interconnect.h)
// instead of the uniform-star scalar; `bw_gbps` stays the uniform spelling
// and the two are mutually exclusive (code "bad_field" when both appear).
// One of (all bandwidths in GB/s):
//
//   {"shape":"uniform","bw_gbps":0.5}
//   {"shape":"mixed","bw_gbps":0.125,
//    "overrides":[{"acc":0,"bw_gbps":1.25},...]}
//   {"shape":"hierarchical","group_size":4,"intra_gbps":1.25,
//    "uplink_gbps":0.25,"host_gbps":0.5,"hop_latency_us":2}
//
// host_gbps and hop_latency_us are optional (host follows the uplink;
// latency defaults to 0). A links response echoes the canonical topology
// plus bw_gbps at the topology's base bandwidth.
//
// The "options" object mirrors PlanOptions 1:1 via the table in
// core/plan_options.h — the same table generates the CLI flags, so
// `h2h serve` and `h2h map` accept identical spellings. Unknown fields
// anywhere are rejected (code "unknown_field"), so typos fail loudly
// instead of silently planning with defaults.
//
// Multi-tenant co-mapping request (tenant/co_mapper.h) — a root "tenants"
// array selects this schema; it shares id/schema_version/bw_gbps/options
// with the single-model form but is otherwise disjoint (no links, no
// batch, no steps):
//
//   {"schema_version":1,
//    "id":"r1",
//    "tenants":[{"name":"cam",          // unique, no '/'
//                "model":"casia-surf",  // zoo key
//                "slo_s":0.012,         // optional latency SLO, seconds
//                "priority":3,          // optional positive integer
//                "caps":"bigmem"},      // optional caps spec (capability.h)
//               ...],                   // >= 1 tenant
//    "bw_gbps":0.125,                   // BW_acc in GB/s, default 0.5
//    "options":{...},                   // per-round plan options
//    "max_rounds":3,                    // improvement sweeps after round 1
//    "steal_round":true,
//    "require_slos":false,              // true: an SLO miss is an error
//    "emit":{"mapping":true}}           // tenants emit has only "mapping"
//
// A tenant whose capability mask excludes every supporting accelerator is
// answered with code "infeasible_capability". With "require_slos":true a
// co-mapping that leaves some SLO missed is answered with "slo_violated"
// (the response names the missing tenants); otherwise misses are reported
// in the per-tenant "met" fields of an ok:true response. Tenants responses
// never carry timing, so they are deterministic byte-for-byte — pinned
// across worker counts by test_serve_pipeline.cpp.
//
// A root "repair" member selects the live-repair schema — the full grammar
// and session semantics are documented on WireRepairRequest below.
//
// Responses are deterministic byte-for-byte for a given request and library
// version when "timing" is not emitted (timing carries wall-clock and
// cache-warmth, the only nondeterministic fields). `h2h map --json` emits
// exactly write_response(), `h2h comap --json` exactly
// write_tenants_response(), and `h2h repair --json` exactly
// write_repair_response(), which is what lets CI diff serve output
// hex-exact against the CLI.
#pragma once

#include <string>
#include <string_view>
#include <variant>

#include "core/plan_options.h"
#include "core/planner.h"
#include "repair/fault.h"
#include "repair/repair.h"
#include "tenant/co_mapper.h"

namespace h2h::serve {

inline constexpr int kSchemaVersion = 1;

enum class ErrorCode {
  ParseError,     // line is not valid JSON / not an object
  SchemaVersion,  // missing or unsupported schema_version
  UnknownField,   // a field the schema does not define
  BadField,       // defined field, invalid type or value
  UnknownModel,   // "model" is not a zoo key
  PlanFailed,     // planning itself threw (e.g. infeasible config)
  InfeasibleCapability,  // a tenant's caps exclude every accelerator
  SloViolated,    // require_slos was set and the co-mapping missed an SLO
  UnknownAcc,     // repair event names an accelerator outside the catalog
  NoPriorPlan,    // repair arrived before any plan for its session key
  InfeasibleRepair,  // the fault leaves some layer with no accelerator
};

[[nodiscard]] std::string_view to_string(ErrorCode code) noexcept;

/// A validated request, ready to hand to a Planner.
struct WireRequest {
  std::string id;  // empty = omitted
  ZooModel model = ZooModel::MoCap;
  double bw_gbps = 0.5;
  /// Explicit link topology; when set, bw_gbps echoes its base bandwidth.
  std::optional<Interconnect> links;
  std::uint32_t batch = 0;  // 0 = model default (1 for zoo models)
  PlanOptions options;
  bool emit_mapping = true;
  bool emit_steps = true;
  bool emit_timing = true;
};

struct WireError {
  ErrorCode code = ErrorCode::ParseError;
  std::string message;
  std::string id;  // echoed when the request's id was parseable
};

/// A validated multi-tenant co-mapping request (root "tenants" schema).
struct WireTenantsRequest {
  std::string id;  // empty = omitted
  std::vector<TenantRequest> tenants;
  double bw_gbps = 0.5;
  PlanOptions options;  // per-round plan knobs (CoMapOptions::plan)
  std::uint32_t max_rounds = 3;
  bool steal_round = true;
  /// When true, a co-mapping that misses any SLO is answered with an
  /// slo_violated error instead of an ok:true response.
  bool require_slos = false;
  bool emit_mapping = true;
};

/// A validated live-repair request (root "repair" schema, DESIGN.md §12).
///
///   {"schema_version":1,
///    "id":"r9",
///    "repair":{"event":"acc_lost","acc":3},  // or "link_degraded"/
///                                            // "spec_derated" + "scale"
///    "model":"mocap",                        // the session key components
///    "bw_gbps":0.5,                          // (or "links"), as in a plan
///    "batch":1,                              // request
///    "options":{...},                        // warm re-plan knobs
///    "fallback_ratio":1.2,                   // optimality bound (>= 0)
///    "emit":{"mapping":true,"timing":true}}
///
/// "scale" is required for link_degraded and spec_derated (a factor in
/// (0, 1]) and rejected for the other kinds. The session key is
/// (model, links-or-bw, batch): a repair repairs the most recent successful
/// plan response for that key on this server, compounding across repair
/// requests; a new plan for the key resets the session. Out-of-order
/// hazards are the client's: compounding sequences should be sent one at a
/// time (await each response) or to a single-threaded server. Failures are
/// error responses — "unknown_acc" (acc outside the catalog),
/// "no_prior_plan" (nothing to repair yet), "bad_field" (contradictory
/// transitions, e.g. losing an already-lost accelerator), and
/// "infeasible_repair" (the fault leaves some layer with no feasible
/// accelerator; the session keeps the pre-fault plan so a later
/// acc_returned can still repair it).
struct WireRepairRequest {
  std::string id;  // empty = omitted
  ZooModel model = ZooModel::MoCap;
  double bw_gbps = 0.5;
  std::optional<Interconnect> links;
  std::uint32_t batch = 0;  // 0 = model default
  PlanOptions options;
  FaultEvent event;
  /// RepairOptions::fallback_ratio for this request (0 forces the
  /// from-scratch comparison on every repair).
  double fallback_ratio = 1.2;
  bool emit_mapping = true;
  bool emit_timing = true;
};

/// Parse + validate one single-model request line. A root "tenants" field
/// is rejected as unknown_field here — use parse_any_request to dispatch.
[[nodiscard]] std::variant<WireRequest, WireError> parse_request(
    std::string_view line);

/// Parse + validate one request line of any schema: a root "tenants"
/// member selects the multi-tenant form, a root "repair" member the
/// live-repair form, anything else the single-model form (byte-identical
/// to parse_request for those lines).
[[nodiscard]] std::variant<WireRequest, WireTenantsRequest, WireRepairRequest,
                           WireError>
parse_any_request(std::string_view line);

/// The PlanRequest this wire request describes.
[[nodiscard]] PlanRequest to_plan_request(const WireRequest& request);

/// One response line (no trailing newline). `model`/`sys` provide layer and
/// accelerator names; any SystemConfig with the standard catalog works —
/// only spec names are read.
[[nodiscard]] std::string write_response(const WireRequest& request,
                                         const PlanResponse& response,
                                         const ModelGraph& model,
                                         const SystemConfig& sys);

/// One co-mapping response line (no trailing newline): canonical tenant
/// echo, per-tenant outcomes, co-vs-sequential verdict, and (when emitted)
/// the union-model mapping. Carries no timing, so it is deterministic
/// byte-for-byte. `sys` provides accelerator names only.
[[nodiscard]] std::string write_tenants_response(
    const WireTenantsRequest& request, const CoMapResult& result,
    const SystemConfig& sys);

/// One repair response line (no trailing newline): canonical request echo,
/// the fault event, outcome metrics (pre/faulted/post latency, damage-cone
/// size, migration count and bytes), the per-layer migration list, and
/// (when emitted) the repaired mapping. Only "timing" is nondeterministic;
/// with it off the line is deterministic byte-for-byte, which is what lets
/// CI diff serve output hex-exact against `h2h repair --json --no-timing`.
/// Requires result.outcome == Repaired (infeasible repairs answer as
/// write_error lines with code infeasible_repair).
[[nodiscard]] std::string write_repair_response(
    const WireRepairRequest& request, const RepairResult& result,
    const ModelGraph& model, const SystemConfig& sys);

/// One error-response line (no trailing newline).
[[nodiscard]] std::string write_error(const WireError& error);

}  // namespace h2h::serve
