#include "accel/registry.h"

#include "accel/analytical_models.h"
#include "accel/catalog.h"
#include "util/contracts.h"
#include "util/error.h"
#include "util/str.h"

namespace h2h {

AcceleratorRegistry& AcceleratorRegistry::instance() {
  static AcceleratorRegistry registry;
  return registry;
}

AcceleratorRegistry::AcceleratorRegistry() {
  for (AcceleratorSpec& s : standard_catalog()) {
    const std::string name = s.name;
    register_factory(name, [spec = std::move(s)]() -> AcceleratorPtr {
      return make_analytical(spec);
    });
  }
}

void AcceleratorRegistry::register_factory(std::string name, Factory factory) {
  H2H_EXPECTS(static_cast<bool>(factory));
  if (name.empty()) throw ConfigError("accelerator factory with empty name");
  const auto [it, inserted] = factories_.emplace(std::move(name), std::move(factory));
  if (!inserted)
    throw ConfigError(
        strformat("accelerator '%s' is already registered", it->first.c_str()));
}

bool AcceleratorRegistry::contains(std::string_view name) const noexcept {
  return factories_.find(name) != factories_.end();
}

AcceleratorPtr AcceleratorRegistry::make(std::string_view name) const {
  const auto it = factories_.find(name);
  if (it == factories_.end())
    throw ConfigError(
        strformat("unknown accelerator '%.*s'", static_cast<int>(name.size()),
                  name.data()));
  AcceleratorPtr model = it->second();
  H2H_ENSURES(model != nullptr);
  return model;
}

std::vector<std::string> AcceleratorRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

}  // namespace h2h
