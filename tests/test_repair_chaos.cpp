// Chaos-style randomized property tests for live repair (DESIGN.md §12).
//
// Seeded FaultInjector schedules are replayed through a RepairEngine across
// zoo models x link topologies (uniform, mixed, hierarchical). Every
// Repaired result must (1) validate against the mutated system, (2) place
// each layer on an available accelerator that serves its capability mask,
// and (3) stay inside the pinned optimality envelope of a from-scratch
// re-plan on an identically faulted system:
//
//   post <= max(scratch, fallback_ratio x reference)
//
// where reference is the faulted latency when the stale plan still runs,
// the pre-fault latency otherwise — exactly the engine's fallback contract.
// CI runs this suite standalone (-R RepairChaos) as the chaos smoke step.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "accel/capability.h"
#include "h2h.h"
#include "test_helpers.h"
#include "util/units.h"

namespace h2h {
namespace {

enum class Topology { Uniform, Mixed, Hierarchical };

constexpr Topology kTopologies[] = {Topology::Uniform, Topology::Mixed,
                                    Topology::Hierarchical};

[[nodiscard]] Interconnect make_links(Topology topo) {
  switch (topo) {
    case Topology::Uniform:
      return Interconnect::uniform(gbps(0.5));
    case Topology::Mixed:
      return Interconnect::mixed(gbps(0.5),
                                 {{0, gbps(1.25)}, {5, gbps(0.25)}});
    case Topology::Hierarchical: {
      Interconnect::HierarchicalSpec spec;
      spec.group_size = 4;
      spec.intra_bw = gbps(1.0);
      spec.uplink_bw = gbps(0.25);
      spec.host_bw = gbps(0.5);
      return Interconnect::hierarchical(spec);
    }
  }
  ADD_FAILURE() << "unknown topology";
  return Interconnect::uniform(gbps(0.5));
}

/// Mirror of the engine's own per-event system mutations, replayed onto a
/// fresh catalog so the from-scratch optimum can be planned on an identical
/// faulted system (SystemConfig is move-only: the engine's copy cannot be
/// cloned, so the chaos loop rebuilds it from the event history).
void apply_fault(SystemConfig& sys, const FaultEvent& event) {
  switch (event.kind) {
    case FaultKind::AccLost:
      sys.set_available(event.acc, false);
      return;
    case FaultKind::AccReturned:
      sys.set_available(event.acc, true);
      return;
    case FaultKind::LinkDegraded:
      sys.set_link_degrade(event.acc, event.scale);
      return;
    case FaultKind::LinkRestored:
      sys.set_link_degrade(event.acc, 1.0);
      return;
    case FaultKind::SpecDerated:
      sys.set_compute_derate(event.acc, event.scale);
      return;
  }
  ADD_FAILURE() << "unknown fault kind";
}

struct ChaosTally {
  std::size_t repaired = 0;
  std::size_t infeasible = 0;
  std::size_t fallbacks = 0;
};

/// Replay one seeded schedule through a RepairEngine, asserting the three
/// chaos invariants on every Repaired result.
ChaosTally run_chaos(const ModelGraph& model, Topology topo,
                     std::uint64_t seed, std::size_t event_count) {
  RepairOptions opts;
  opts.plan.time_budget_s = testing::search_time_budget();
  RepairEngine engine(model, SystemConfig::standard(make_links(topo)), opts);
  (void)engine.plan_initial();

  FaultInjector injector = FaultInjector::random(
      seed, event_count, engine.system().accelerator_count());
  std::vector<FaultEvent> history;
  history.reserve(event_count);
  ChaosTally tally;

  while (!injector.done()) {
    const FaultEvent& event = injector.next();
    const RepairResult res = engine.apply(event);
    // The system mutates even when the repair is infeasible (the fault
    // happened either way); the mirror below must see every event.
    history.push_back(event);

    if (res.outcome == RepairOutcome::Infeasible) {
      ++tally.infeasible;
      EXPECT_FALSE(res.infeasible_reason.empty());
      EXPECT_TRUE(engine.has_plan());  // the stale plan is kept
      continue;
    }
    ++tally.repaired;
    if (res.used_fallback) ++tally.fallbacks;

    // (1) The repaired mapping validates against the mutated system.
    EXPECT_TRUE(res.response.has_value());
    engine.mapping().validate(model, engine.system());

    // (2) Availability and capability masks hold layer by layer.
    for (const LayerId id : model.all_layers()) {
      if (model.layer(id).kind == LayerKind::Input) continue;
      const AccId acc = engine.mapping().acc_of(id);
      EXPECT_TRUE(engine.system().available(acc));
      EXPECT_TRUE(can_serve(engine.system().capabilities(acc),
                            model.layer(id).required_caps));
    }

    // (3) The pinned optimality envelope vs a from-scratch plan on an
    // identically faulted mirror system.
    SystemConfig mirror = SystemConfig::standard(make_links(topo));
    for (const FaultEvent& past : history) apply_fault(mirror, past);
    const PlanResponse scratch = plan_once(model, mirror, opts.plan);
    const double scratch_lat = scratch.final_result().latency;
    const double reference = std::isfinite(res.faulted_latency_s)
                                 ? res.faulted_latency_s
                                 : res.pre_latency_s;
    const double envelope =
        std::max(scratch_lat, opts.fallback_ratio * reference);
    EXPECT_LE(res.post_latency_s, envelope * (1 + 1e-9))
        << "seed " << seed << " event " << history.size() << " ("
        << format_fault(event) << "): post " << res.post_latency_s
        << " vs scratch " << scratch_lat << ", reference " << reference;
  }

  // A healthy-start schedule under min_alive = 2 must repair at least once.
  EXPECT_GT(tally.repaired, 0u) << "seed " << seed;
  return tally;
}

// One TEST per model so ctest runs the grids concurrently; distinct seeds
// per (model, topology) cell keep the schedules decorrelated.

TEST(RepairChaos, MoCapSurvivesRandomFaultsOnAllTopologies) {
  const ModelGraph model = make_mocap();
  std::uint64_t seed = 0xC0FFEE01;
  for (const Topology topo : kTopologies)
    (void)run_chaos(model, topo, seed++, 8);
}

TEST(RepairChaos, CasiaSurfSurvivesRandomFaultsOnAllTopologies) {
  const ModelGraph model = make_casia_surf();
  std::uint64_t seed = 0xC0FFEE11;
  for (const Topology topo : kTopologies)
    (void)run_chaos(model, topo, seed++, 8);
}

TEST(RepairChaos, VfsSurvivesRandomFaultsOnAllTopologies) {
  const ModelGraph model = make_vfs();
  std::uint64_t seed = 0xC0FFEE21;
  for (const Topology topo : kTopologies)
    (void)run_chaos(model, topo, seed++, 8);
}

TEST(RepairChaos, CapsStampedModelStaysConsistentUnderChaos) {
  // With every layer demanding a capability only a catalog subset provides,
  // random dropouts can exhaust the providers: infeasible results must come
  // back in-band (never a throw), the stale plan must survive them, and
  // every Repaired mapping must still honor the mask.
  ModelGraph model = testing::make_mini_mmmt_model();
  model.stamp_required_caps(kCapBigMem);
  FaultScheduleOptions sched;
  sched.min_alive = 2;
  sched.w_lose = 0.5;  // bias toward dropouts to stress provider exhaustion

  RepairOptions opts;
  opts.plan.time_budget_s = testing::search_time_budget();
  RepairEngine engine(model, SystemConfig::standard(gbps(0.5)), opts);
  (void)engine.plan_initial();

  FaultInjector injector = FaultInjector::random(
      0xD15EA5E, 16, engine.system().accelerator_count(), sched);
  std::size_t repaired = 0;
  while (!injector.done()) {
    const RepairResult res = engine.apply(injector.next());
    EXPECT_TRUE(engine.has_plan());
    if (res.outcome != RepairOutcome::Repaired) continue;
    ++repaired;
    engine.mapping().validate(model, engine.system());
    for (const LayerId id : model.all_layers()) {
      if (model.layer(id).kind == LayerKind::Input) continue;
      EXPECT_TRUE(can_serve(
          engine.system().capabilities(engine.mapping().acc_of(id)),
          model.layer(id).required_caps));
    }
  }
  EXPECT_GT(repaired, 0u);
}

}  // namespace
}  // namespace h2h
