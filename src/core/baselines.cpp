#include "core/baselines.h"

#include <algorithm>
#include <limits>
#include <map>

#include "graph/algorithms.h"
#include "util/error.h"
#include "util/str.h"

namespace h2h {

H2HResult run_computation_prioritized_baseline(const ModelGraph& model,
                                               const SystemConfig& sys,
                                               const H2HOptions& options) {
  model.validate();
  Simulator sim(model, sys);
  Mapping mapping = computation_prioritized_mapping(sim, options.step1);
  LocalityPlan plan(model);
  plan.ensure_acc_count(sys.accelerator_count());

  H2HResult result{std::move(mapping), std::move(plan), {}, {}, 0.0};
  result.steps.push_back(
      {"1: computation-prioritized", sim.simulate(result.mapping, result.plan)});
  optimize_weight_locality(sim, result.mapping, result.plan, options.weight);
  result.steps.push_back(
      {"2: weight locality", sim.simulate(result.mapping, result.plan)});
  return result;
}

H2HResult run_cluster_prioritized_baseline(const ModelGraph& model,
                                           const SystemConfig& sys,
                                           const H2HOptions& options) {
  model.validate();
  Simulator sim(model, sys);
  const CostTable& costs = sim.costs();

  // Cluster = modality tag (0 is the shared/fusion cluster).
  std::map<std::uint32_t, std::vector<LayerId>> clusters;
  for (const LayerId id : model.all_layers()) {
    const Layer& l = model.layer(id);
    if (l.kind == LayerKind::Input) continue;
    clusters[l.modality].push_back(id);
  }

  // Pick one accelerator per cluster: maximize supported layers, then
  // minimize the summed zero-locality duration of the supported layers.
  std::map<std::uint32_t, AccId> cluster_acc;
  for (const auto& [tag, members] : clusters) {
    AccId best{};
    std::size_t best_cover = 0;
    double best_cost = std::numeric_limits<double>::infinity();
    for (const AccId acc : sys.all_accelerators()) {
      std::size_t cover = 0;
      double cost = 0;
      for (const LayerId id : members) {
        if (costs.supported(id, acc)) {
          ++cover;
          cost += costs.unlocalized_duration(id, acc);
        }
      }
      if (cover > best_cover || (cover == best_cover && cost < best_cost)) {
        best = acc;
        best_cover = cover;
        best_cost = cost;
      }
    }
    if (!best.valid())
      throw ConfigError(strformat("cluster %u has no usable accelerator", tag));
    cluster_acc[tag] = best;
  }

  // Spill layers the cluster accelerator cannot run to their individually
  // fastest supporting accelerator. Assign in topological order.
  const auto topo = topological_order(model.graph());
  H2H_ASSERT(topo.has_value());
  Mapping mapping(model);
  for (const LayerId id : *topo) {
    const Layer& l = model.layer(id);
    if (l.kind == LayerKind::Input) continue;
    AccId acc = cluster_acc.at(l.modality);
    if (!costs.supported(id, acc)) {
      double best_cost = std::numeric_limits<double>::infinity();
      for (const AccId cand : costs.supporting(l.kind)) {
        const double cost = costs.unlocalized_duration(id, cand);
        if (cost < best_cost) {
          best_cost = cost;
          acc = cand;
        }
      }
      if (!costs.supported(id, acc))
        throw ConfigError(strformat(
            "no accelerator supports layer '%s'", l.name.c_str()));
    }
    mapping.assign(id, acc);
  }

  LocalityPlan plan(model);
  plan.ensure_acc_count(sys.accelerator_count());
  H2HResult result{std::move(mapping), std::move(plan), {}, {}, 0.0};
  result.steps.push_back(
      {"cluster mapping", sim.simulate(result.mapping, result.plan)});
  optimize_weight_locality(sim, result.mapping, result.plan, options.weight);
  result.steps.push_back(
      {"cluster + weight locality", sim.simulate(result.mapping, result.plan)});
  optimize_activation_fusion(sim, result.mapping, result.plan, options.fusion);
  result.steps.push_back(
      {"cluster + fusion", sim.simulate(result.mapping, result.plan)});
  return result;
}

Mapping random_valid_mapping(const ModelGraph& model, const SystemConfig& sys,
                             Rng& rng) {
  const auto topo = topological_order(model.graph());
  if (!topo.has_value())
    throw ConfigError(strformat("model '%s' has a dependency cycle",
                                model.name().c_str()));
  Mapping mapping(model);
  for (const LayerId id : *topo) {
    const Layer& l = model.layer(id);
    if (l.kind == LayerKind::Input) continue;
    const std::vector<AccId> cands = sys.supporting(l.kind);
    if (cands.empty())
      throw ConfigError(
          strformat("no accelerator supports layer '%s'", l.name.c_str()));
    mapping.assign(id, cands[rng.index(cands.size())]);
  }
  return mapping;
}

}  // namespace h2h
