// Ablation: incremental (successor-only) schedule updates vs full
// re-simulation in the step-4 remapping loop. The paper emphasizes the
// incremental update ("we only update a node's direct successor
// neighbours"); this bench measures the wall-clock difference and verifies
// both paths land on the same answer.
#include <benchmark/benchmark.h>

#include <iostream>

#include "h2h.h"

namespace {

using namespace h2h;

void BM_RemapLoop(benchmark::State& state) {
  const bool incremental = state.range(0) != 0;
  const ModelGraph model = make_vlocnet();
  const SystemConfig sys = SystemConfig::standard(BandwidthSetting::LowMinus);
  H2HOptions opts;
  opts.remap.use_incremental = incremental;
  for (auto _ : state) {
    const H2HResult r = H2HMapper(model, sys, opts).run();
    benchmark::DoNotOptimize(r.final_result().latency);
  }
  state.SetLabel(incremental ? "incremental" : "full-resim");
}
BENCHMARK(BM_RemapLoop)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  TextTable table({"model", "full lat (s)", "incr lat (s)", "full search (s)",
                   "incr search (s)"},
                  {TextTable::Align::Left});
  for (const ZooInfo& info : zoo_catalog()) {
    const ModelGraph model = make_model(info.id);
    const SystemConfig sys = SystemConfig::standard(BandwidthSetting::LowMinus);
    H2HOptions full;
    full.remap.use_incremental = false;
    H2HOptions incr;
    incr.remap.use_incremental = true;
    const H2HResult rf = H2HMapper(model, sys, full).run();
    const H2HResult ri = H2HMapper(model, sys, incr).run();
    table.add_row({std::string(info.key),
                   strformat("%.6f", rf.final_result().latency),
                   strformat("%.6f", ri.final_result().latency),
                   strformat("%.4f", rf.search_seconds),
                   strformat("%.4f", ri.search_seconds)});
  }
  std::cout << "incremental-update ablation @ Low- (latencies must agree):\n";
  table.print(std::cout);
  std::cout << '\n';

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
