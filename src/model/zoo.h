// The six heterogeneous MMMT evaluation models of the paper's Table 2,
// reconstructed synthetically from the cited architectures. Exact weights are
// irrelevant to the mapping problem; topology, layer shapes, and parameter
// counts (asserted within +/-15% of Table 2 in tests) are what matter.
#pragma once

#include <optional>
#include <span>
#include <string_view>

#include "model/model_graph.h"

namespace h2h {

enum class ZooModel {
  VLocNet,    // Augmented Reality; ResNet-50 variants; 192M params
  CasiaSurf,  // Face Recognition; ResNet-18 variants; 13.2M params
  Vfs,        // Sentiment Analysis; VGG + VD-CNN variants; 365M params
  FaceBag,    // Face Recognition; ResNet variants; 25M params
  CnnLstm,    // Activity Recognition; ConvNet + LSTM; 16M params
  MoCap,      // Emotion Recognition; Conv + LSTM; 8M params
};

struct ZooInfo {
  ZooModel id;
  std::string_view key;        // stable CLI identifier, e.g. "vlocnet"
  std::string_view domain;     // Table 2 "Domain"
  std::string_view backbones;  // Table 2 "Backbones"
  double paper_params_millions;  // Table 2 "Para."
};

/// Table 2, in paper order.
[[nodiscard]] std::span<const ZooInfo> zoo_catalog();

[[nodiscard]] const ZooInfo& zoo_info(ZooModel id);
[[nodiscard]] std::optional<ZooModel> zoo_model_by_key(std::string_view key);

/// Build one of the evaluation models (validated).
[[nodiscard]] ModelGraph make_model(ZooModel id);

// Individual builders (used by make_model and directly by tests).
[[nodiscard]] ModelGraph make_vlocnet();
[[nodiscard]] ModelGraph make_casia_surf();
[[nodiscard]] ModelGraph make_vfs();
[[nodiscard]] ModelGraph make_facebag();
[[nodiscard]] ModelGraph make_cnn_lstm();
[[nodiscard]] ModelGraph make_mocap();

}  // namespace h2h
