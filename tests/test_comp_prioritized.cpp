#include <gtest/gtest.h>

#include "core/comp_prioritized.h"
#include "test_helpers.h"
#include "util/error.h"

namespace h2h {
namespace {

using testing::make_chain_model;
using testing::make_mini_hetero_system;
using testing::make_mini_mmmt_model;

TEST(CompPrioritized, ProducesCompleteValidMapping) {
  const ModelGraph m = make_mini_mmmt_model();
  const SystemConfig sys = make_mini_hetero_system();
  const Simulator sim(m, sys);
  const Mapping mapping = computation_prioritized_mapping(sim);
  EXPECT_TRUE(mapping.complete());
  EXPECT_NO_THROW(mapping.validate(m, sys));
}

TEST(CompPrioritized, SequenceIsTopological) {
  const ModelGraph m = make_mini_mmmt_model();
  const SystemConfig sys = make_mini_hetero_system();
  const Simulator sim(m, sys);
  const Mapping mapping = computation_prioritized_mapping(sim);
  for (const LayerId id : m.all_layers())
    for (const LayerId s : m.graph().succs(id))
      EXPECT_LT(mapping.seq_of(id), mapping.seq_of(s));
}

TEST(CompPrioritized, RespectsKindSupport) {
  const ModelGraph m = make_mini_mmmt_model();
  const SystemConfig sys = make_mini_hetero_system();
  const Simulator sim(m, sys);
  const Mapping mapping = computation_prioritized_mapping(sim);
  for (const LayerId id : m.all_layers()) {
    const Layer& l = m.layer(id);
    if (l.kind == LayerKind::Input) continue;
    EXPECT_TRUE(sys.accelerator(mapping.acc_of(id)).supports(l.kind))
        << l.name;
  }
  // In the mini system, LSTMs can only live on the LSTM specialist.
  for (const LayerId id : m.all_layers()) {
    if (m.layer(id).kind == LayerKind::Lstm) {
      EXPECT_EQ(mapping.acc_of(id), AccId{2});
    }
  }
}

TEST(CompPrioritized, DeterministicAcrossRuns) {
  const ModelGraph m = make_mini_mmmt_model();
  const SystemConfig sys = make_mini_hetero_system();
  const Simulator sim(m, sys);
  const Mapping a = computation_prioritized_mapping(sim);
  const Mapping b = computation_prioritized_mapping(sim);
  for (const LayerId id : m.all_layers()) {
    EXPECT_EQ(a.acc_of(id), b.acc_of(id));
    EXPECT_EQ(a.seq_of(id), b.seq_of(id));
  }
}

TEST(CompPrioritized, PrefersFasterAcceleratorForConv) {
  // A single conv layer must land on the conv champion (acc 0: 1000 MAC/c),
  // not on the generic engine (200 MAC/c).
  const ModelGraph m = make_chain_model();
  const SystemConfig sys = make_mini_hetero_system();
  const Simulator sim(m, sys);
  const Mapping mapping = computation_prioritized_mapping(sim);
  EXPECT_EQ(mapping.acc_of(LayerId{1}), AccId{0});
  EXPECT_EQ(mapping.acc_of(LayerId{2}), AccId{0});
}

TEST(CompPrioritized, ChunkingUnderTinyCandidateBudget) {
  const ModelGraph m = make_mini_mmmt_model();
  const SystemConfig sys = make_mini_hetero_system();
  const Simulator sim(m, sys);
  CompPrioritizedOptions opts;
  opts.max_candidates = 2;  // forces single-node chunks
  const Mapping mapping = computation_prioritized_mapping(sim, opts);
  EXPECT_TRUE(mapping.complete());
  EXPECT_NO_THROW(mapping.validate(m, sys));
}

TEST(CompPrioritized, ExhaustiveBeatsOrMatchesGreedyChunks) {
  const ModelGraph m = make_mini_mmmt_model();
  const SystemConfig sys = make_mini_hetero_system();
  const Simulator sim(m, sys);
  const LocalityPlan zero(m);

  CompPrioritizedOptions greedy;
  greedy.max_candidates = 1;
  const double lat_greedy =
      sim.simulate(computation_prioritized_mapping(sim, greedy), zero).latency;
  const double lat_full =
      sim.simulate(computation_prioritized_mapping(sim), zero).latency;
  EXPECT_LE(lat_full, lat_greedy + 1e-12);
}

TEST(CompPrioritized, PreferredHookPinsPlacement) {
  const ModelGraph m = make_chain_model();
  const SystemConfig sys = make_mini_hetero_system();
  const Simulator sim(m, sys);
  CompPrioritizedOptions opts;
  // Force the convs onto the slow generic engine.
  opts.preferred = [&m](LayerId id) -> std::optional<AccId> {
    if (m.layer(id).kind == LayerKind::Conv) return AccId{1};
    return std::nullopt;
  };
  const Mapping mapping = computation_prioritized_mapping(sim, opts);
  EXPECT_EQ(mapping.acc_of(LayerId{1}), AccId{1});
  EXPECT_EQ(mapping.acc_of(LayerId{2}), AccId{1});
}

TEST(CompPrioritized, PreferredHookIgnoredWhenUnsupported) {
  const ModelGraph m = make_chain_model();
  const SystemConfig sys = make_mini_hetero_system();
  const Simulator sim(m, sys);
  CompPrioritizedOptions opts;
  // Conv-only accelerator cannot take the FC; preference must be dropped.
  opts.preferred = [](LayerId) -> std::optional<AccId> { return AccId{0}; };
  const Mapping mapping = computation_prioritized_mapping(sim, opts);
  EXPECT_NO_THROW(mapping.validate(m, sys));
  EXPECT_NE(mapping.acc_of(LayerId{3}), AccId{0});
}

TEST(CompPrioritized, ThrowsWhenNoAcceleratorSupportsKind) {
  ModelBuilder b("lstm-only");
  const LayerId in = b.input_seq("in", 8, 4);
  (void)b.lstm("l", in, 8, 1);
  const ModelGraph m = std::move(b).build();

  std::vector<AcceleratorPtr> accs;
  AcceleratorSpec conv_only = testing::simple_spec("C", gib(1));
  conv_only.kinds = KindSupport{true, false, false};
  accs.push_back(make_analytical(std::move(conv_only)));
  const SystemConfig sys(std::move(accs), HostParams{1e9, 0.0});
  const Simulator sim(m, sys);
  EXPECT_THROW((void)computation_prioritized_mapping(sim), ConfigError);
}

TEST(CompPrioritized, TiesKeepTheFirstEnumeratedAssignment) {
  // Two identical branch convs (b, c) on two identical accelerators after a
  // shared predecessor a: assignments (b->1, c->0) and (b->0, c->1) tie
  // exactly on (makespan, finish-sum). The documented rule keeps the FIRST
  // enumerated assignment — enumeration varies b's candidate fastest, so
  // (b->1, c->0) is reached before (b->0, c->1) and must win. (A plain
  // lexicographic choice-index tie-break would pick b->0 instead; this test
  // pins the actual colexicographic rule.)
  const ModelGraph m = testing::make_diamond_model();
  const SystemConfig sys = testing::make_uniform_system(2);
  const Simulator sim(m, sys);
  const Mapping mapping = computation_prioritized_mapping(sim);
  // Layer ids: in=0, a=1, b=2, c=3, d=4, e=5.
  EXPECT_EQ(mapping.acc_of(LayerId{1}), AccId{0});  // singleton wave: acc 0
  EXPECT_EQ(mapping.acc_of(LayerId{2}), AccId{1});
  EXPECT_EQ(mapping.acc_of(LayerId{3}), AccId{0});
}

TEST(CompPrioritized, BalancesIndependentBranchesAcrossAccelerators) {
  // Two identical independent conv branches and two identical conv-capable
  // accelerators: the delta-latency rule must parallelize them.
  ModelBuilder b("twin");
  const LayerId i1 = b.input("i1", 8, 32, 32);
  const LayerId i2 = b.input("i2", 8, 32, 32);
  const LayerId c1 = b.conv("c1", i1, 32, 3, 1);
  const LayerId c2 = b.conv("c2", i2, 32, 3, 1);
  (void)c1;
  (void)c2;
  const ModelGraph m = std::move(b).build();
  const SystemConfig sys = testing::make_uniform_system(2);
  const Simulator sim(m, sys);
  const Mapping mapping = computation_prioritized_mapping(sim);
  EXPECT_NE(mapping.acc_of(c1), mapping.acc_of(c2));
}

// A wave of identical parallel convolutions on identical accelerators: every
// permutation of an assignment reaches the same per-accelerator tail vector,
// the regime the dominance table exists for.
[[nodiscard]] ModelGraph make_symmetric_wave_model(std::uint32_t width) {
  ModelBuilder b("sym-wave");
  const LayerId in = b.input("in", 8, 32, 32);
  std::vector<LayerId> branches;
  for (std::uint32_t i = 0; i < width; ++i)
    branches.push_back(b.conv(strformat("c%u", i), in, 32, 3, 1));
  (void)b.concat("cat", branches);
  return std::move(b).build();
}

void expect_identical_mappings(const ModelGraph& m, const Mapping& a,
                               const Mapping& b, const char* what) {
  for (const LayerId id : m.all_layers()) {
    ASSERT_EQ(a.acc_of(id), b.acc_of(id)) << what << ": layer " << id.value;
    ASSERT_EQ(a.seq_of(id), b.seq_of(id)) << what << ": layer " << id.value;
  }
}

// The dominance table and the batched leaf scan are pure optimizations: the
// full on/off grid must land on the same mapping, on every zoo model at both
// bandwidth corners.
TEST(CompPrioritized, DominanceAndBatchedGridBitIdenticalOnZoo) {
  for (const ZooModel zm :
       {ZooModel::VLocNet, ZooModel::CasiaSurf, ZooModel::Vfs,
        ZooModel::FaceBag, ZooModel::CnnLstm, ZooModel::MoCap}) {
    const ModelGraph m = make_model(zm);
    for (const double bw : {0.125e9, 0.5e9}) {
      const SystemConfig sys = SystemConfig::standard(bw);
      const Simulator sim(m, sys);
      CompPrioritizedOptions reference;
      reference.use_dominance = false;
      reference.use_batched_sums = false;
      const Mapping want = computation_prioritized_mapping(sim, reference);
      for (const bool dom : {false, true}) {
        for (const bool batched : {false, true}) {
          if (!dom && !batched) continue;
          CompPrioritizedOptions opt;
          opt.use_dominance = dom;
          opt.use_batched_sums = batched;
          CompPrioritizedStats st;
          opt.stats = &st;
          const Mapping got = computation_prioritized_mapping(sim, opt);
          expect_identical_mappings(m, want, got, zoo_info(zm).key.data());
          EXPECT_EQ(st.dominance_fallbacks, 0u) << zoo_info(zm).key;
        }
      }
    }
  }
}

// On a permutation-symmetric wave the dominance table must actually cut
// subtrees — and still reproduce the exact unpruned mapping (including the
// colex-smallest tie-break, which symmetric waves exercise maximally).
TEST(CompPrioritized, DominancePrunesSymmetricWavesExactly) {
  const ModelGraph m = make_symmetric_wave_model(6);
  const SystemConfig sys = testing::make_uniform_system(3);
  const Simulator sim(m, sys);

  CompPrioritizedOptions off;
  off.use_dominance = false;
  const Mapping want = computation_prioritized_mapping(sim, off);

  CompPrioritizedOptions on;
  CompPrioritizedStats st;
  on.stats = &st;
  const Mapping got = computation_prioritized_mapping(sim, on);

  expect_identical_mappings(m, want, got, "sym-wave");
  EXPECT_GT(st.dominance_pruned, 0u);
  EXPECT_GT(st.dominance_states, 0u);
  EXPECT_EQ(st.dominance_fallbacks, 0u);
}

// A deliberately tiny dominance table must saturate, count the fallbacks,
// and stay exact: saturation only stops learning, never prunes wrongly.
TEST(CompPrioritized, SaturatedDominanceTableStaysExact) {
  const ModelGraph m = make_symmetric_wave_model(6);
  const SystemConfig sys = testing::make_uniform_system(3);
  const Simulator sim(m, sys);

  CompPrioritizedOptions off;
  off.use_dominance = false;
  const Mapping want = computation_prioritized_mapping(sim, off);

  CompPrioritizedOptions tiny;
  tiny.dominance_slots = 4;
  CompPrioritizedStats st;
  tiny.stats = &st;
  const Mapping got = computation_prioritized_mapping(sim, tiny);

  expect_identical_mappings(m, want, got, "saturated");
  EXPECT_GT(st.dominance_fallbacks, 0u);
}

// Stats sanity on a mini model: wave/chunk accounting is exact, evaluation
// counts are positive, and disabled knobs report zero work.
TEST(CompPrioritized, StatsAccounting) {
  const ModelGraph m = make_mini_mmmt_model();
  const SystemConfig sys = make_mini_hetero_system();
  const Simulator sim(m, sys);

  CompPrioritizedOptions opt;
  opt.use_dominance = false;
  CompPrioritizedStats st;
  opt.stats = &st;
  (void)computation_prioritized_mapping(sim, opt);
  EXPECT_GT(st.waves, 0u);
  EXPECT_GE(st.chunks, st.waves);
  EXPECT_GT(st.evaluated, 0u);
  EXPECT_EQ(st.dominance_pruned, 0u);
  EXPECT_EQ(st.dominance_states, 0u);
  EXPECT_EQ(st.dominance_fallbacks, 0u);
}

}  // namespace
}  // namespace h2h
