// Ablation: step-1 enumeration pruning. Since the lex-DFS rewrite the
// frontier search carries two independent knobs (DESIGN.md §10):
//
//   use_dominance    — exact dominance table over partial-assignment
//                      signatures (per-accelerator finish tails)
//   use_batched_sums — score the last chunk position as one batched sweep
//                      over the contiguous duration row
//
// The four-way grid must land on bit-identical mappings (asserted by the
// table up front and pinned in test_comp_prioritized.cpp). Two workload
// shapes matter:
//
//   BM_Step1Zoo  — real zoo models on the heterogeneous standard system.
//     Distinct FP durations make every partial-assignment signature unique,
//     so the dominance table inserts but never prunes here; the measured win
//     comes from the bound prune + batched sums. The preamble prints the
//     per-model counters so that stays visible instead of folklore.
//   BM_Step1SymmetricWave — identical branches on identical accelerators,
//     the permutation-symmetric regime the dominance table exists for.
//
// The preamble additionally fails the run (exit 1) if the dominance table
// saturates (dominance_fallbacks > 0) on any zoo model — CI runs this binary
// in the bench smoke step, so a capacity regression is caught there.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <iostream>
#include <limits>
#include <utility>

#include "h2h.h"

namespace {

using namespace h2h;

CompPrioritizedOptions grid_options(int mode, CompPrioritizedStats* stats) {
  CompPrioritizedOptions opts;
  opts.use_dominance = (mode & 1) != 0;
  opts.use_batched_sums = (mode & 2) != 0;
  opts.stats = stats;
  return opts;
}

const char* grid_label(int mode) {
  switch (mode) {
    case 0: return "plain-dfs";
    case 1: return "+dominance";
    case 2: return "+batched-sums";
    default: return "+dominance+batched-sums";
  }
}

/// `width` identical conv branches off one input, joined by a concat: every
/// branch permutation is schedule-equivalent, so partial assignments collide
/// on their finish-tail signatures and the dominance table prunes.
ModelGraph make_symmetric_wave_model(std::uint32_t width) {
  ModelBuilder b("sym-wave");
  const LayerId in = b.input("in", 8, 32, 32);
  std::vector<LayerId> branches;
  for (std::uint32_t i = 0; i < width; ++i)
    branches.push_back(b.conv(strformat("c%u", i), in, 32, 3, 1));
  (void)b.concat("cat", branches);
  return std::move(b).build();
}

/// `n` identical accelerators — heterogeneity would break the permutation
/// symmetry the wave benchmark exists to exercise.
SystemConfig uniform_system(std::size_t n) {
  std::vector<AcceleratorPtr> accs;
  for (std::size_t i = 0; i < n; ++i) {
    AcceleratorSpec spec;
    spec.name = strformat("U%zu", i);
    spec.description = "uniform bench accelerator";
    spec.board = "bench";
    spec.style = DataflowStyle::MatrixEngine;
    spec.kinds = KindSupport{true, true, true};
    spec.peak_macs_per_cycle = 100;
    spec.pe = PeArray{10, 10};
    spec.freq_hz = 1e9;
    spec.dram_bandwidth = 10e9;
    spec.dram_capacity = gib(1);
    spec.energy_per_mac = picojoules(1);
    spec.energy_per_dram_byte = nanojoules(0.1);
    spec.link_power = 1.0;
    accs.push_back(make_analytical(std::move(spec)));
  }
  HostParams host;
  host.bw_acc = 0.125e9;
  return SystemConfig(std::move(accs), host);
}

void run_step1(benchmark::State& state, const Simulator& sim) {
  const int mode = static_cast<int>(state.range(0));
  CompPrioritizedStats stats;
  std::uint64_t evaluated = 0;
  std::uint64_t bound_pruned = 0;
  std::uint64_t dom_pruned = 0;
  for (auto _ : state) {
    stats = CompPrioritizedStats{};
    const Mapping m =
        computation_prioritized_mapping(sim, grid_options(mode, &stats));
    evaluated += stats.evaluated;
    bound_pruned += stats.bound_pruned;
    dom_pruned += stats.dominance_pruned;
    benchmark::DoNotOptimize(m.seq_of(LayerId{0}));
  }
  state.SetLabel(grid_label(mode));
  state.counters["evaluated"] = benchmark::Counter(
      static_cast<double>(evaluated), benchmark::Counter::kIsRate);
  state.counters["bound_pruned"] = benchmark::Counter(
      static_cast<double>(bound_pruned), benchmark::Counter::kIsRate);
  state.counters["dom_pruned"] = benchmark::Counter(
      static_cast<double>(dom_pruned), benchmark::Counter::kIsRate);
}

void BM_Step1Zoo(benchmark::State& state) {
  const ModelGraph model = make_vlocnet();
  const SystemConfig sys = SystemConfig::standard(BandwidthSetting::LowMinus);
  const Simulator sim(model, sys);
  run_step1(state, sim);
}
BENCHMARK(BM_Step1Zoo)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond);

void BM_Step1SymmetricWave(benchmark::State& state) {
  const ModelGraph model = make_symmetric_wave_model(7);
  const SystemConfig sys = uniform_system(4);
  const Simulator sim(model, sys);
  run_step1(state, sim);
}
BENCHMARK(BM_Step1SymmetricWave)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond);

/// Step-1 seconds, best of `reps`.
double step1_seconds(const Simulator& sim, int mode,
                     CompPrioritizedStats& stats, int reps = 3) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    stats = CompPrioritizedStats{};
    const auto t0 = std::chrono::steady_clock::now();
    const Mapping m =
        computation_prioritized_mapping(sim, grid_options(mode, &stats));
    const auto t1 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(m.seq_of(LayerId{0}));
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  // Profiled runs (--benchmark_filter present) skip the verification
  // preamble: its un-timed setup work used to dominate gprof samples and get
  // misattributed to the benchmarks (bench/README.md). Other --benchmark_*
  // flags (CI smoke's --benchmark_min_time) keep the preamble's assertions.
  bool filtered = false;
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--benchmark_filter", 18) == 0) filtered = true;

  if (!filtered) {
    TextTable table({"model", "plain (ms)", "batched (ms)", "default (ms)",
                     "speedup", "evaluated", "bound pruned",
                     "dom states/pruned"},
                    {TextTable::Align::Left});
    for (const ZooInfo& info : zoo_catalog()) {
      const ModelGraph model = make_model(info.id);
      const SystemConfig sys =
          SystemConfig::standard(BandwidthSetting::LowMinus);
      const Simulator sim(model, sys);

      // The whole grid must agree with the plain DFS, assignment for
      // assignment — not just on makespan.
      CompPrioritizedStats ref_stats;
      const Mapping want =
          computation_prioritized_mapping(sim, grid_options(0, &ref_stats));
      for (int mode = 1; mode < 4; ++mode) {
        CompPrioritizedStats stats;
        const Mapping got =
            computation_prioritized_mapping(sim, grid_options(mode, &stats));
        for (const LayerId id : model.all_layers()) {
          if (got.acc_of(id) != want.acc_of(id) ||
              got.seq_of(id) != want.seq_of(id)) {
            std::cerr << "MISMATCH on " << info.key << " mode "
                      << grid_label(mode) << ": layer " << id.value << '\n';
            return 1;
          }
        }
        if (stats.dominance_fallbacks != 0) {
          std::cerr << "DOMINANCE TABLE SATURATED on " << info.key << " ("
                    << stats.dominance_fallbacks
                    << " fallbacks) — raise dominance_slots\n";
          return 1;
        }
      }

      CompPrioritizedStats plain_stats;
      CompPrioritizedStats batched_stats;
      CompPrioritizedStats full_stats;
      const double t_plain = step1_seconds(sim, 0, plain_stats);
      const double t_batched = step1_seconds(sim, 2, batched_stats);
      const double t_full = step1_seconds(sim, 3, full_stats);
      table.add_row(
          {std::string(info.key), strformat("%.3f", t_plain * 1e3),
           strformat("%.3f", t_batched * 1e3), strformat("%.3f", t_full * 1e3),
           strformat("%.1fx", t_plain / std::max(t_batched, 1e-9)),
           strformat("%llu",
                     static_cast<unsigned long long>(full_stats.evaluated)),
           strformat("%llu",
                     static_cast<unsigned long long>(full_stats.bound_pruned)),
           strformat("%llu/%llu",
                     static_cast<unsigned long long>(
                         full_stats.dominance_states),
                     static_cast<unsigned long long>(
                         full_stats.dominance_pruned))});
    }
    std::cout << "step-1 enumeration: plain lex-DFS vs dominance + batched "
                 "sums @ Low- (mappings asserted identical; dominance "
                 "fallbacks asserted zero):\n";
    table.print(std::cout);
    std::cout << '\n';
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
