#include "system/cost_table.h"

#include <limits>

#include "accel/capability.h"
#include "util/error.h"
#include "util/str.h"

namespace h2h {

CostTable::CostTable(const ModelGraph& model, const SystemConfig& sys)
    : layer_count_(model.layer_count()),
      acc_count_(sys.accelerator_count()),
      batch_(model.batch()),
      host_bw_(sys.host().bw_acc),
      links_fp_(sys.links().fingerprint()),
      derate_fp_(sys.derate_fingerprint()),
      uniform_links_(sys.links().uniform_links()) {
  constexpr double kInf = std::numeric_limits<double>::infinity();

  if (!uniform_links_) {
    // Snapshot the pair link matrices (host at index acc_count_). The
    // host-host diagonal cell is never a real transfer; infinite bandwidth
    // makes its derived edge cost a harmless zero.
    const std::size_t n = acc_count_ + 1;
    const Interconnect& links = sys.links();
    link_bw_.assign(n * n, kInf);
    link_lat_.assign(n * n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const AccId a = i == acc_count_
                          ? AccId::host()
                          : AccId{static_cast<std::uint32_t>(i)};
      for (std::size_t j = 0; j < n; ++j) {
        if (i == acc_count_ && j == acc_count_) continue;
        const AccId b = j == acc_count_
                            ? AccId::host()
                            : AccId{static_cast<std::uint32_t>(j)};
        link_bw_[i * n + j] = links.bandwidth(a, b);
        link_lat_[i * n + j] = links.latency(a, b);
      }
    }
  }
  const std::size_t cells = layer_count_ * acc_count_;
  compute_latency_.assign(cells, kInf);
  compute_energy_.assign(cells, kInf);
  unlocalized_.assign(cells, kInf);
  supported_.assign(cells, 0);

  bw_host_.resize(acc_count_);
  bw_local_.resize(acc_count_);
  link_power_.resize(acc_count_);
  dram_byte_energy_.resize(acc_count_);
  dram_capacity_.resize(acc_count_);
  for (std::uint32_t a = 0; a < acc_count_; ++a) {
    const AcceleratorSpec& spec = sys.spec(AccId{a});
    bw_host_[a] = sys.bw_acc(AccId{a});
    bw_local_[a] = spec.dram_bandwidth;
    link_power_[a] = spec.link_power;
    dram_byte_energy_[a] = spec.energy_per_dram_byte;
    dram_capacity_[a] = spec.dram_capacity;
  }

  for (std::size_t k = 0; k < kKindCount; ++k)
    supporting_[k] = sys.supporting(static_cast<LayerKind>(k));

  // Capability gating (accel/capability.h): a layer with a required mask is
  // only costed — and only a candidate — on accelerators whose mask covers
  // it. Mask-free models skip all of this (no CSR, supported_ unchanged),
  // so their tables stay bit-identical to the pre-capability build.
  bool caps_in_use = false;
  for (std::uint32_t l = 0; l < layer_count_; ++l) {
    if (model.layer(LayerId{l}).required_caps != 0) {
      caps_in_use = true;
      break;
    }
  }
  std::vector<CapabilityMask> acc_caps;
  if (caps_in_use) {
    acc_caps.reserve(acc_count_);
    for (std::uint32_t a = 0; a < acc_count_; ++a)
      acc_caps.push_back(sys.capabilities(AccId{a}));
    cand_offset_.assign(1, 0);
    cand_offset_.reserve(layer_count_ + 1);
  }
  const auto cap_ok = [&](const Layer& layer, AccId a) {
    return !caps_in_use ||
           can_serve(acc_caps[a.value], layer.required_caps);
  };

  is_input_.resize(layer_count_);
  affinity_.resize(layer_count_);
  weight_bytes_.resize(layer_count_);
  out_bytes_.resize(layer_count_);
  pred_in_bytes_.resize(layer_count_);
  in_offset_.assign(layer_count_ + 1, 0);
  in_bytes_.reserve(model.graph().edge_count());

  for (std::uint32_t l = 0; l < layer_count_; ++l) {
    const LayerId id{l};
    const Layer& layer = model.layer(id);
    is_input_[l] = layer.kind == LayerKind::Input ? 1 : 0;
    weight_bytes_[l] = model.weight_bytes(id);
    out_bytes_[l] = model.edge_bytes(id);
    Bytes pred_bytes = 0;
    for (const LayerId p : model.graph().preds(id)) {
      const Bytes b = model.edge_bytes(p);
      in_bytes_.push_back(b);
      pred_bytes += b;
    }
    pred_in_bytes_[l] = pred_bytes;
    in_offset_[l + 1] = static_cast<std::uint32_t>(in_bytes_.size());

    if (is_input_[l] != 0) {
      if (caps_in_use) cand_offset_.push_back(cand_offset_.back());
      continue;  // host-resident, never costed
    }
    // Zero-locality host traffic of the step-1 duration formula: weights,
    // the output write-back, and every predecessor activation.
    const Bytes host_bytes = weight_bytes_[l] + out_bytes_[l] + pred_bytes;
    const std::span<const AccId> kind_accs =
        supporting_[static_cast<std::size_t>(layer.kind)];
    for (const AccId a : kind_accs) {
      if (!cap_ok(layer, a)) continue;
      const AcceleratorModel& acc = sys.accelerator(a);
      const std::size_t cell = index(id, a);
      supported_[cell] = 1;
      if (caps_in_use) cand_.push_back(a);
      // The one place the virtual P_Acc interface is queried; the stored
      // products reproduce the old per-query expressions exactly.
      compute_latency_[cell] =
          acc.compute_latency(layer) * static_cast<double>(batch_);
      // A spec derate (fault repair) stretches compute time; energy stays
      // nominal — the throttled device burns the same joules more slowly.
      const double derate = sys.compute_derate(a);
      if (derate != 1.0) compute_latency_[cell] /= derate;
      compute_energy_[cell] =
          acc.compute_energy(layer) * static_cast<double>(batch_);
      unlocalized_[cell] = static_cast<double>(host_bytes) / bw_host_[a.value] +
                           compute_latency_[cell];
    }
    if (caps_in_use) {
      if (cand_offset_.back() == cand_.size() && !kind_accs.empty()) {
        // Kind-supporting accelerators exist but the mask excludes them
        // all: the model is unplaceable by capability, not by shape.
        throw CapabilityError(strformat(
            "layer '%s' requires capabilities [%s] that no %s-capable "
            "accelerator in the system provides",
            layer.name.c_str(), format_caps(layer.required_caps).c_str(),
            std::string(to_string(layer.kind)).c_str()));
      }
      cand_offset_.push_back(static_cast<std::uint32_t>(cand_.size()));
    }

    // Compute-affinity accelerator (reproduces the expression the step-4
    // candidate generator used to evaluate per probe; first minimum wins).
    // Capability-excluded cells hold +inf latency, so they can never win.
    AccId best{};
    double best_time = kInf;
    for (const AccId a : kind_accs) {
      const double t = compute_latency_[index(id, a)] +
                       static_cast<double>(weight_bytes_[l]) /
                           bw_local_[a.value];
      if (t < best_time) {
        best_time = t;
        best = a;
      }
    }
    affinity_[l] = best;
  }

  if (!uniform_links_) {
    // Per-(producer layer, src, dst) transfer cost: one multiply-free load
    // in the simulator's hot loop instead of a divide per edge event.
    const std::size_t n = acc_count_ + 1;
    edge_cost_.resize(layer_count_ * n * n);
    for (std::size_t l = 0; l < layer_count_; ++l) {
      const double bytes = static_cast<double>(out_bytes_[l]);
      double* row = edge_cost_.data() + l * n * n;
      for (std::size_t c = 0; c < n * n; ++c)
        row[c] = bytes / link_bw_[c] + link_lat_[c];
    }
  }
}

}  // namespace h2h
