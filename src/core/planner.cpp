#include "core/planner.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <string_view>
#include <utility>

#include "util/log.h"
#include "util/str.h"

namespace h2h {
namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

[[nodiscard]] std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  // FNV-1a over the 8 bytes of v (deterministic across runs, unlike
  // std::hash, so fingerprints are stable diagnostics).
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFFu;
    h *= 1099511628211ULL;
  }
  return h;
}

[[nodiscard]] std::uint64_t fnv_mix(std::uint64_t h, std::string_view s) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// Session key of a zoo model: tagged so it can never collide with a graph
/// fingerprint of the same model (the two are distinct sessions by design —
/// a zoo hit must not depend on having fingerprinted a caller's graph).
[[nodiscard]] std::uint64_t zoo_session_key(ZooModel id) {
  return fnv_mix(fnv_mix(1469598103934665603ULL, std::string_view("zoo")),
                 static_cast<std::uint64_t>(id));
}

/// Shard selector over the full session key (model, batch, bw, links).
[[nodiscard]] std::uint64_t session_shard_hash(
    std::uint64_t model_key, std::uint32_t batch, double bw,
    std::uint64_t links_fp) noexcept {
  std::uint64_t h = fnv_mix(1469598103934665603ULL, model_key);
  h = fnv_mix(h, batch);
  std::uint64_t bw_bits = 0;
  static_assert(sizeof(bw_bits) == sizeof(bw));
  std::memcpy(&bw_bits, &bw, sizeof(bw_bits));
  h = fnv_mix(h, bw_bits);
  return fnv_mix(h, links_fp);
}

[[nodiscard]] std::size_t per_shard_capacity(
    const PlannerOptions& options) noexcept {
  const std::size_t shards = std::max<std::size_t>(1, options.shards);
  const std::size_t cap = std::max<std::size_t>(1, options.max_sessions);
  return std::max<std::size_t>(1, (cap + shards - 1) / shards);
}

}  // namespace

std::uint64_t model_fingerprint(const ModelGraph& model) {
  std::uint64_t h = 1469598103934665603ULL;
  h = fnv_mix(h, model.name());
  h = fnv_mix(h, model.dtype_bytes());
  h = fnv_mix(h, model.layer_count());
  for (const LayerId id : model.all_layers()) {
    const Layer& l = model.layer(id);
    h = fnv_mix(h, l.name);
    h = fnv_mix(h, static_cast<std::uint64_t>(l.kind));
    h = fnv_mix(h, l.modality);
    h = fnv_mix(h, l.required_caps);
    h = fnv_mix(h, l.param_count());
    h = fnv_mix(h, l.out_elems());
    h = fnv_mix(h, l.macs());
    h = fnv_mix(h, l.light_ops());
    for (const LayerId p : model.graph().preds(id)) h = fnv_mix(h, p.value);
  }
  return h;
}

PlanRequest PlanRequest::zoo(ZooModel id, double bw_acc, std::uint32_t batch) {
  PlanRequest r;
  r.model = id;
  r.bw_acc = bw_acc;
  r.batch = batch;
  return r;
}

PlanRequest PlanRequest::zoo(ZooModel id, BandwidthSetting bw,
                             std::uint32_t batch) {
  return zoo(id, bandwidth_value(bw), batch);
}

PlanRequest PlanRequest::zoo(ZooModel id, Interconnect links,
                             std::uint32_t batch) {
  PlanRequest r = zoo(id, links.base_bw(), batch);
  r.links = std::move(links);
  return r;
}

PlanRequest PlanRequest::for_graph(const ModelGraph& graph, double bw_acc,
                                   std::uint32_t batch) {
  PlanRequest r;
  r.graph = &graph;
  r.bw_acc = bw_acc;
  r.batch = batch;
  return r;
}

const ScheduleResult* PlanResponse::find_baseline() const {
  for (const StepSnapshot& step : steps) {
    if (step.name.find("weight locality") != std::string::npos)
      return &step.result;
  }
  return nullptr;
}

const ScheduleResult& PlanResponse::baseline_result() const {
  if (const ScheduleResult* baseline = find_baseline()) return *baseline;
  contract_failure("precondition",
                   "baseline_result(): no \"weight locality\" snapshot among "
                   "the executed steps",
                   __FILE__, __LINE__);
}

PassPipeline make_default_pipeline(const PlanOptions& options,
                                   const Mapping* warm_start) {
  PassPipeline pipeline;
  if (warm_start != nullptr) {
    pipeline.push_back(make_warm_start_pass(*warm_start));
  } else {
    pipeline.push_back(make_comp_prioritized_pass(options.step1));
  }
  if (options.run_weight_locality)
    pipeline.push_back(make_weight_locality_pass(options.weight));
  if (options.run_fusion)
    pipeline.push_back(make_activation_fusion_pass(options.fusion));
  if (options.run_remapping)
    pipeline.push_back(make_remapping_pass(options.remap));
  return pipeline;
}

PlanResponse run_passes(const Simulator& sim, const PassPipeline& pipeline,
                        std::optional<double> time_budget_s) {
  H2H_EXPECTS(!pipeline.empty());
  const auto t0 = Clock::now();
  const ModelGraph& model = sim.model();

  PlanResponse r{
      Mapping(model), LocalityPlan(model), {}, {}, 0.0, 0.0, false, false};
  r.plan.ensure_acc_count(sim.sys().accelerator_count());

  PassContext ctx{sim, r.mapping, r.plan, r.remap_stats, std::nullopt, false};
  if (time_budget_s) {
    ctx.deadline = t0 + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(*time_budget_s));
  }

  for (const std::unique_ptr<MappingPass>& pass : pipeline) {
    pass->run(ctx);
    r.steps.push_back({pass->name(), sim.simulate(r.mapping, r.plan)});
  }

  r.stopped_on_budget = ctx.stopped_on_budget;
  r.search_seconds = seconds_since(t0);

  if (r.find_baseline() != nullptr) {
    log_debug(strformat(
        "H2H(%s): steps=%zu latency %.6fs -> %.6fs (%.1f%%), search %.3fs",
        model.name().c_str(), r.steps.size(), r.baseline_result().latency,
        r.final_result().latency, r.latency_vs_baseline() * 100.0,
        r.search_seconds));
  } else {
    log_debug(strformat("H2H(%s): steps=%zu latency %.6fs, search %.3fs",
                        model.name().c_str(), r.steps.size(),
                        r.final_result().latency, r.search_seconds));
  }
  return r;
}

/// One cached scenario: an owned model copy (at the request batch), the
/// system it runs on (owned at the request BW_acc, or the Planner-wide
/// shared one), and the Simulator whose CostTable is the reusable state.
/// Shared ownership: the cache holds one reference and every in-flight
/// request holds another, so evicting a session another thread is planning
/// on only drops the cache's reference. Once built, a session is read-only
/// (the one exception — the shared-system lazy CostTable rebuild — happens
/// under the shard lock in checkout(), before the session is handed out).
struct Planner::Session {
  std::uint64_t model_key = 0;
  double bw_acc = 0;  // key component; 0 in shared-system mode
  std::uint32_t batch = 1;
  std::uint64_t links_fp = 0;  // key component; 0 = scalar/shared request
  std::optional<ModelGraph> model;
  std::optional<SystemConfig> owned_sys;
  const SystemConfig* sys = nullptr;
  std::optional<Simulator> sim;

  [[nodiscard]] bool matches(std::uint64_t key, std::uint32_t b, double bw,
                             std::uint64_t lfp) const noexcept {
    return model_key == key && batch == b && bw_acc == bw && links_fp == lfp;
  }
};

/// One lock shard of the session cache: an independent LRU list under its
/// own mutex. Sessions hash to a shard by key, so requests for different
/// shards never contend, and the per-shard mutex is held only for the
/// list scan / insert / evict — never across a pipeline run or a cold
/// session build.
struct Planner::Shard {
  mutable std::mutex mu;
  std::vector<std::shared_ptr<Session>> lru;  // most recently used first
};

Planner::Planner() : Planner(PlannerOptions{}) {}
Planner::Planner(PlannerOptions options) : options_(std::move(options)) {
  const std::size_t n = std::max<std::size_t>(1, options_.shards);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    shards_.push_back(std::make_unique<Shard>());
}
Planner::Planner(const SystemConfig& shared_system) : Planner([&] {
  PlannerOptions options;
  options.shared_system = &shared_system;
  return options;
}()) {}
Planner::~Planner() = default;

// Manual moves: the hit/miss counters are atomics (not movable); shards move
// by pointer. A moved-from Planner may only be destroyed or assigned to.
Planner::Planner(Planner&& other) noexcept
    : options_(std::move(other.options_)),
      shards_(std::move(other.shards_)),
      hits_(other.hits_.load(std::memory_order_relaxed)),
      misses_(other.misses_.load(std::memory_order_relaxed)) {}

Planner& Planner::operator=(Planner&& other) noexcept {
  if (this != &other) {
    options_ = std::move(other.options_);
    shards_ = std::move(other.shards_);
    hits_.store(other.hits_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    misses_.store(other.misses_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
  }
  return *this;
}

std::size_t Planner::session_count() const noexcept {
  std::size_t n = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mu);
    n += shard->lru.size();
  }
  return n;
}

void Planner::clear_sessions() noexcept {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
  }
}

Planner::Shard& Planner::shard_for(std::uint64_t key_hash) const noexcept {
  return *shards_[key_hash % shards_.size()];
}

std::shared_ptr<Planner::Session> Planner::session_for(
    const PlanRequest& request, double& setup_seconds, bool& warm) {
  H2H_EXPECTS(request.model.has_value() != (request.graph != nullptr));

  const std::uint64_t model_key = request.model
                                      ? zoo_session_key(*request.model)
                                      : model_fingerprint(*request.graph);
  std::uint32_t batch = request.batch;
  if (batch == 0) batch = request.graph != nullptr ? request.graph->batch() : 1;
  // In shared-system mode the bandwidth/topology are the shared system's
  // business: sessions key on the model alone and follow the system's lazy
  // CostTable-rebuild semantics if its BW_acc moves.
  const double bw_key =
      options_.shared_system != nullptr ? 0.0 : request.bw_acc;
  const std::uint64_t links_key =
      options_.shared_system == nullptr && request.links
          ? request.links->params_fingerprint()
          : 0;

  const auto checkout = [&](Shard& shard) -> std::shared_ptr<Session> {
    // Caller holds shard.mu.
    for (auto it = shard.lru.begin(); it != shard.lru.end(); ++it) {
      if (!(*it)->matches(model_key, batch, bw_key, links_key)) continue;
      std::rotate(shard.lru.begin(), it, it + 1);  // most recent first
      const std::shared_ptr<Session>& front = shard.lru.front();
      if (front->sim->costs_fresh()) {
        warm = true;
        setup_seconds = 0;
      } else {
        // Shared-system mode and the borrowed system's knobs moved
        // (set_bw_acc): rebuild now — under the shard lock, so the handed-
        // out Simulator is always fresh and read-only — billing the cost to
        // setup_seconds, not the search-time window, and the response is
        // not misreported as warm.
        const auto t0 = Clock::now();
        (void)front->sim->costs();
        setup_seconds = seconds_since(t0);
        warm = false;
      }
      return front;
    }
    return nullptr;
  };

  Shard& shard =
      shard_for(session_shard_hash(model_key, batch, bw_key, links_key));
  {
    const std::lock_guard<std::mutex> lock(shard.mu);
    if (std::shared_ptr<Session> hit = checkout(shard)) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return hit;
    }
  }

  // Cold miss: build the session entirely outside the lock (concurrent
  // misses for different keys construct in parallel) and insert only the
  // finished product — a build that throws leaves the cache untouched.
  misses_.fetch_add(1, std::memory_order_relaxed);
  warm = false;
  const auto t0 = Clock::now();
  auto s = std::make_shared<Session>();
  s->model_key = model_key;
  s->batch = batch;
  s->bw_acc = bw_key;
  s->links_fp = links_key;
  s->model.emplace(request.model ? make_model(*request.model)
                                 : *request.graph);
  s->model->set_batch(batch);
  if (request.validate_model) s->model->validate();
  if (options_.shared_system != nullptr) {
    s->sys = options_.shared_system;
  } else if (request.links) {
    s->owned_sys.emplace(SystemConfig::standard(*request.links));
    s->sys = &*s->owned_sys;
  } else {
    H2H_EXPECTS(request.bw_acc > 0);
    s->owned_sys.emplace(options_.system_factory
                             ? options_.system_factory(request.bw_acc)
                             : SystemConfig::standard(request.bw_acc));
    s->sys = &*s->owned_sys;
  }
  s->sim.emplace(*s->model, *s->sys);  // builds the CostTable eagerly
  setup_seconds = seconds_since(t0);

  const double paid_setup = setup_seconds;
  std::size_t cached = 0;
  {
    const std::lock_guard<std::mutex> lock(shard.mu);
    // Another thread may have built the same key while we did: keep the
    // first insert as the canonical session and discard ours (this request
    // still reports the cold build it actually paid).
    if (std::shared_ptr<Session> raced = checkout(shard)) {
      warm = false;
      setup_seconds = paid_setup;
      return raced;
    }
    shard.lru.insert(shard.lru.begin(), s);
    // Explicit LRU eviction, after the finished session went in: pop
    // expired entries off the cold end. In-flight requests keep evicted
    // sessions alive through their own shared_ptr reference.
    const std::size_t cap = per_shard_capacity(options_);
    while (shard.lru.size() > cap) shard.lru.pop_back();
    cached = shard.lru.size();
  }
  log_debug(strformat("Planner: built session for '%s' (bw=%.3g batch=%u) "
                      "in %.3fs, %zu cached in shard",
                      s->model->name().c_str(), s->sys->host().bw_acc, batch,
                      setup_seconds, cached));
  return s;
}

PlanResponse Planner::plan(const PlanRequest& request) {
  return plan(request, make_default_pipeline(request.options,
                                             request.warm_start));
}

PlanResponse Planner::plan(const PlanRequest& request,
                           const PassPipeline& pipeline) {
  double setup_seconds = 0;
  bool warm = false;
  const std::shared_ptr<Session> session =
      session_for(request, setup_seconds, warm);
  PlanResponse r =
      run_passes(*session->sim, pipeline, request.options.time_budget_s);
  r.setup_seconds = setup_seconds;
  r.warm = warm;
  return r;
}

PlanResponse plan_once(const ModelGraph& model, const SystemConfig& sys,
                       PlanOptions options) {
  model.validate();
  const Simulator sim(model, sys);
  return run_passes(sim, make_default_pipeline(options),
                    options.time_budget_s);
}

}  // namespace h2h
