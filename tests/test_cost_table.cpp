// The cost table is a pure cache: every entry must be bit-identical to the
// direct AcceleratorModel query (or derived formula) it replaces, across
// the full model zoo x standard catalog grid, and no search or simulation
// path may fall back to the virtual interface after the Simulator built it.
#include <gtest/gtest.h>

#include <array>
#include <limits>
#include <utility>

#include "core/comp_prioritized.h"
#include "core/remapping.h"
#include "h2h.h"
#include "system/incremental.h"
#include "test_helpers.h"

namespace h2h {
namespace {

TEST(CostTable, BitIdenticalToDirectModelQueriesAcrossZooAndCatalog) {
  const SystemConfig sys = SystemConfig::standard(BandwidthSetting::LowMinus);
  for (const ZooInfo& info : zoo_catalog()) {
    const ModelGraph model = make_model(info.id);
    const Simulator sim(model, sys);
    const CostTable& costs = sim.costs();
    ASSERT_EQ(costs.layer_count(), model.layer_count());
    ASSERT_EQ(costs.acc_count(), sys.accelerator_count());

    for (const LayerId id : model.all_layers()) {
      const Layer& layer = model.layer(id);
      EXPECT_EQ(costs.is_input(id), layer.kind == LayerKind::Input);
      EXPECT_EQ(costs.weight_bytes(id), model.weight_bytes(id));
      EXPECT_EQ(costs.out_bytes(id), model.edge_bytes(id));

      const auto preds = model.graph().preds(id);
      const auto in_bytes = costs.in_edge_bytes(id);
      ASSERT_EQ(in_bytes.size(), preds.size());
      Bytes pred_total = 0;
      for (std::size_t i = 0; i < preds.size(); ++i) {
        EXPECT_EQ(in_bytes[i], model.edge_bytes(preds[i]));
        pred_total += model.edge_bytes(preds[i]);
      }
      EXPECT_EQ(costs.pred_in_bytes(id), pred_total);

      for (const AccId a : sys.all_accelerators()) {
        const AcceleratorModel& acc = sys.accelerator(a);
        if (layer.kind == LayerKind::Input) {
          // Host-resident: never costed, reported unsupported by design.
          EXPECT_FALSE(costs.supported(id, a));
          continue;
        }
        ASSERT_EQ(costs.supported(id, a), acc.supports(layer.kind));
        if (!costs.supported(id, a)) continue;
        // Exact (bit-level) equality: the table stores the very products
        // the hot paths used to recompute per query.
        EXPECT_EQ(costs.compute_latency(id, a),
                  acc.compute_latency(layer) * model.batch())
            << info.key << " " << layer.name << " on " << acc.spec().name;
        EXPECT_EQ(costs.compute_energy(id, a),
                  acc.compute_energy(layer) * model.batch());
        // The retired Simulator::unlocalized_duration formula, verbatim.
        Bytes host_bytes = model.weight_bytes(id) + model.edge_bytes(id);
        for (const LayerId p : preds) host_bytes += model.edge_bytes(p);
        EXPECT_EQ(costs.unlocalized_duration(id, a),
                  static_cast<double>(host_bytes) / sys.bw_acc(a) +
                      acc.compute_latency(layer) * model.batch());
        EXPECT_EQ(sim.unlocalized_duration(id, a),
                  costs.unlocalized_duration(id, a));
      }
    }

    for (const LayerKind kind :
         {LayerKind::Conv, LayerKind::FullyConnected, LayerKind::Lstm,
          LayerKind::Pool, LayerKind::Eltwise, LayerKind::Concat}) {
      const std::vector<AccId> direct = sys.supporting(kind);
      const std::span<const AccId> cached = costs.supporting(kind);
      ASSERT_EQ(cached.size(), direct.size());
      for (std::size_t i = 0; i < direct.size(); ++i)
        EXPECT_EQ(cached[i], direct[i]);
    }
  }
}

TEST(CostTable, AffinityAccMatchesDirectMinimization) {
  const SystemConfig sys = SystemConfig::standard(BandwidthSetting::LowMinus);
  for (const ZooInfo& info : zoo_catalog()) {
    const ModelGraph model = make_model(info.id);
    const Simulator sim(model, sys);
    const CostTable& costs = sim.costs();
    for (const LayerId id : model.all_layers()) {
      if (model.layer(id).kind == LayerKind::Input) {
        EXPECT_FALSE(costs.affinity_acc(id).valid());
        continue;
      }
      // The expression the step-4 candidate generator used to evaluate per
      // probe, verbatim (first minimum wins).
      AccId best{};
      double best_time = std::numeric_limits<double>::infinity();
      for (const AccId a : costs.supporting(model.layer(id).kind)) {
        const double t = costs.compute_latency(id, a) +
                         static_cast<double>(costs.weight_bytes(id)) /
                             costs.bw_local(a);
        if (t < best_time) {
          best_time = t;
          best = a;
        }
      }
      EXPECT_EQ(costs.affinity_acc(id), best)
          << info.key << " " << model.layer(id).name;
    }
  }
}

TEST(CostTable, PerAcceleratorScalarsMatchSpecs) {
  const ModelGraph model = testing::make_mini_mmmt_model();
  const SystemConfig sys = testing::make_mini_hetero_system();
  const Simulator sim(model, sys);
  const CostTable& costs = sim.costs();
  for (const AccId a : sys.all_accelerators()) {
    const AcceleratorSpec& spec = sys.spec(a);
    EXPECT_EQ(costs.bw_host(a), sys.bw_acc(a));
    EXPECT_EQ(costs.bw_local(a), spec.dram_bandwidth);
    EXPECT_EQ(costs.link_power(a), spec.link_power);
    EXPECT_EQ(costs.dram_byte_energy(a), spec.energy_per_dram_byte);
    EXPECT_EQ(costs.dram_capacity(a), spec.dram_capacity);
  }
}

TEST(CostTable, RebuildsWhenBatchChanges) {
  ModelGraph model = testing::make_chain_model();
  const SystemConfig sys = testing::make_uniform_system(1);
  const Simulator sim(model, sys);
  const double lat1 = sim.costs().compute_latency(LayerId{1}, AccId{0});
  const Bytes out1 = sim.costs().out_bytes(LayerId{1});
  model.set_batch(8);
  // costs() detects the stale snapshot and rebuilds transparently.
  EXPECT_EQ(sim.costs().compute_latency(LayerId{1}, AccId{0}), 8.0 * lat1);
  EXPECT_EQ(sim.costs().out_bytes(LayerId{1}), 8 * out1);
}

TEST(CostTable, RebuildsWhenHostBandwidthChanges) {
  const ModelGraph model = testing::make_chain_model();
  SystemConfig sys = testing::make_uniform_system(1, 1e9);
  const Simulator sim(model, sys);
  const double d1 = sim.costs().unlocalized_duration(LayerId{1}, AccId{0});
  const double c1 = sim.costs().compute_latency(LayerId{1}, AccId{0});
  sys.set_bw_acc(2e9);
  const double d2 = sim.costs().unlocalized_duration(LayerId{1}, AccId{0});
  // Transfer half at double bandwidth; compute unchanged.
  EXPECT_DOUBLE_EQ(d2 - c1, (d1 - c1) / 2.0);
  EXPECT_EQ(sim.costs().bw_host(AccId{0}), 2e9);
}

/// A system of counting LambdaAccelerators: every virtual model evaluation
/// bumps the shared counters, so the test can pin down that search and
/// simulation run entirely off the table after Simulator construction.
SystemConfig make_counting_system(int& latency_calls, int& energy_calls) {
  std::vector<AcceleratorPtr> accs;
  for (int i = 0; i < 3; ++i) {
    AcceleratorSpec spec =
        testing::simple_spec(strformat("count%d", i), gib(1));
    // Distinct throughput so the mapper has real choices to make.
    spec.peak_macs_per_cycle = 100u << i;
    accs.push_back(std::make_unique<LambdaAccelerator>(
        spec,
        [&latency_calls, spec](const Layer& layer) {
          ++latency_calls;
          return static_cast<double>(layer.macs() + layer.light_ops() + 1) /
                 (static_cast<double>(spec.peak_macs_per_cycle) * spec.freq_hz);
        },
        [&energy_calls](const Layer& layer) {
          ++energy_calls;
          return static_cast<double>(layer.macs()) * 1e-12;
        }));
  }
  return SystemConfig(std::move(accs), HostParams{1e9, 0.0});
}

TEST(CostTable, NoVirtualModelCallsAfterSimulatorConstruction) {
  int latency_calls = 0;
  int energy_calls = 0;
  const SystemConfig sys = make_counting_system(latency_calls, energy_calls);
  const ModelGraph model = testing::make_mini_mmmt_model();

  const Simulator sim(model, sys);
  EXPECT_GT(latency_calls, 0);  // the build is the one evaluation pass
  EXPECT_GT(energy_calls, 0);
  const int lat_after_build = latency_calls;
  const int energy_after_build = energy_calls;

  // The full four-step pipeline plus direct simulation and incremental
  // probing — none of it may re-enter the plug-in model.
  Mapping mapping = computation_prioritized_mapping(sim);
  LocalityPlan plan(model);
  plan.ensure_acc_count(sys.accelerator_count());
  optimize_weight_locality(sim, mapping, plan);
  optimize_activation_fusion(sim, mapping, plan);
  const RemapStats stats = data_locality_remapping(sim, mapping, plan, {});
  EXPECT_GT(stats.attempts, 0u);
  const ScheduleResult direct = sim.simulate(mapping, plan);
  IncrementalSchedule inc(sim);
  inc.reset(mapping, plan);
  EXPECT_DOUBLE_EQ(inc.latency(), direct.latency);
  (void)inc.result(mapping);
  (void)inc.energy(mapping);

  EXPECT_EQ(latency_calls, lat_after_build);
  EXPECT_EQ(energy_calls, energy_after_build);
}

}  // namespace
}  // namespace h2h
