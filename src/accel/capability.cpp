#include "accel/capability.h"

#include <array>
#include <charconv>

#include "util/error.h"
#include "util/str.h"
#include "util/units.h"

namespace h2h {
namespace {

struct NamedBit {
  std::string_view name;
  CapabilityMask bit;
};

constexpr std::array<NamedBit, 5> kNamedBits{{{"conv", kCapConv},
                                              {"fc", kCapFc},
                                              {"lstm", kCapLstm},
                                              {"bigmem", kCapBigMem},
                                              {"fastmem", kCapFastMem}}};

[[nodiscard]] std::string known_tokens() {
  std::string out;
  for (const NamedBit& b : kNamedBits) {
    if (!out.empty()) out += ", ";
    out += b.name;
  }
  return out;
}

}  // namespace

CapabilityMask spec_capabilities(const AcceleratorSpec& spec) {
  CapabilityMask have = spec.extra_capabilities;
  if (spec.kinds.conv) have |= kCapConv;
  if (spec.kinds.fc) have |= kCapFc;
  if (spec.kinds.lstm) have |= kCapLstm;
  if (spec.dram_capacity >= gib(4)) have |= kCapBigMem;
  if (spec.dram_bandwidth >= gbps(16)) have |= kCapFastMem;
  return have;
}

CapabilityMask parse_caps_spec(std::string_view spec) {
  CapabilityMask mask = 0;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t sep = std::min(spec.find('+', pos), spec.size());
    const std::string_view token = spec.substr(pos, sep - pos);
    pos = sep + 1;
    if (token.empty() || token == "none") {
      if (spec.empty() || spec == "none") break;
      throw ConfigError(strformat(
          "capability spec '%.*s': empty token (tokens join with '+')",
          static_cast<int>(spec.size()), spec.data()));
    }
    bool matched = false;
    for (const NamedBit& b : kNamedBits) {
      if (token == b.name) {
        mask |= b.bit;
        matched = true;
        break;
      }
    }
    if (!matched) {
      // Numeric literal: 0x hex or plain decimal, OR'd in verbatim.
      std::uint32_t v = 0;
      const bool hex = token.starts_with("0x") || token.starts_with("0X");
      const std::string_view digits = hex ? token.substr(2) : token;
      const auto [ptr, ec] = std::from_chars(
          digits.data(), digits.data() + digits.size(), v, hex ? 16 : 10);
      if (ec != std::errc() || ptr != digits.data() + digits.size() ||
          digits.empty()) {
        throw ConfigError(strformat(
            "capability spec: unknown token '%.*s' (named: %s; or a "
            "0x/decimal bit literal)",
            static_cast<int>(token.size()), token.data(),
            known_tokens().c_str()));
      }
      mask |= v;
    }
    if (sep == spec.size()) break;
  }
  return mask;
}

std::string format_caps(CapabilityMask mask) {
  if (mask == 0) return "none";
  std::string out;
  CapabilityMask rest = mask;
  for (const NamedBit& b : kNamedBits) {
    if ((mask & b.bit) == 0) continue;
    if (!out.empty()) out += '+';
    out += b.name;
    rest &= ~b.bit;
  }
  if (rest != 0) {
    if (!out.empty()) out += '+';
    out += strformat("0x%x", rest);
  }
  return out;
}

}  // namespace h2h
