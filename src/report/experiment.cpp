#include "report/experiment.h"

namespace h2h {
namespace {

StepSeries series_from(const PlanResponse& r) {
  StepSeries s;
  for (const StepSnapshot& step : r.steps) {
    s.latency.push_back(step.result.latency);
    s.energy.push_back(step.result.energy.total());
  }
  s.baseline_comp_ratio = r.baseline_result().comp_ratio();
  s.h2h_comp_ratio = r.final_result().comp_ratio();
  s.search_seconds = r.search_seconds;
  s.remap = r.remap_stats;
  return s;
}

}  // namespace

StepSeries run_experiment_on(const ModelGraph& model, const SystemConfig& sys,
                             const PlanOptions& options) {
  model.validate();
  const Simulator sim(model, sys);
  return series_from(run_passes(sim, make_default_pipeline(options)));
}

StepSeries run_experiment(Planner& planner, ZooModel model,
                          BandwidthSetting bw, const PlanOptions& options,
                          std::optional<double> time_budget_s) {
  PlanRequest request = PlanRequest::zoo(model, bw);
  request.options = options;
  if (time_budget_s) request.options.time_budget_s = time_budget_s;
  StepSeries s = series_from(planner.plan(request));
  s.model = model;
  s.bw = bw;
  return s;
}

StepSeries run_experiment(ZooModel model, BandwidthSetting bw,
                          const PlanOptions& options) {
  Planner planner;
  return run_experiment(planner, model, bw, options);
}

std::vector<StepSeries> run_full_sweep(Planner& planner,
                                       const PlanOptions& options,
                                       std::optional<double> time_budget_s) {
  std::vector<StepSeries> out;
  for (const ZooInfo& info : zoo_catalog()) {
    for (const BandwidthSetting bw : all_bandwidth_settings()) {
      out.push_back(
          run_experiment(planner, info.id, bw, options, time_budget_s));
    }
  }
  return out;
}

std::vector<StepSeries> run_full_sweep(const PlanOptions& options) {
  Planner planner;
  return run_full_sweep(planner, options);
}

}  // namespace h2h
