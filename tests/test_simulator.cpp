#include <gtest/gtest.h>

#include "system/simulator.h"
#include "test_helpers.h"
#include "util/error.h"

namespace h2h {
namespace {

using testing::make_chain_model;
using testing::make_diamond_model;
using testing::make_uniform_system;

// Uniform test accelerator: 1e11 MAC/s peak, 10 GB/s local DRAM; host links
// at 1 GB/s. MatrixEngine base affinity 0.85, PE array 10x10.

Mapping map_all_to(const ModelGraph& m, AccId acc) {
  Mapping mapping(m);
  for (const LayerId id : m.all_layers())
    if (m.layer(id).kind != LayerKind::Input) mapping.assign(id, acc);
  return mapping;
}

TEST(Simulator, ChainLatencyIsSumOfDurationsOnOneAccelerator) {
  const ModelGraph m = make_chain_model();
  const SystemConfig sys = make_uniform_system(1);
  const Simulator sim(m, sys);
  const Mapping mapping = map_all_to(m, AccId{0});
  const LocalityPlan plan(m);

  const ScheduleResult r = sim.simulate(mapping, plan);
  double expected = 0;
  for (const LayerId id : m.all_layers())
    expected += sim.layer_components(id, mapping, plan).duration();
  EXPECT_DOUBLE_EQ(r.latency, expected);

  // With zero locality every byte crosses the host link.
  EXPECT_EQ(r.local_bytes, 0u);
  EXPECT_GT(r.host_bytes, 0u);
  EXPECT_DOUBLE_EQ(r.local_time, 0.0);
}

TEST(Simulator, ZeroPlanComponentsMatchHandComputation) {
  const ModelGraph m = make_chain_model();
  const SystemConfig sys = make_uniform_system(1);
  const Simulator sim(m, sys);
  const Mapping mapping = map_all_to(m, AccId{0});
  const LocalityPlan plan(m);

  // convA: IFM 1024 B, weights (16*8*9+16)*2 = 2336 B, OFM 16*8*8*2 = 2048 B.
  const LayerTiming t = sim.layer_components(LayerId{1}, mapping, plan);
  EXPECT_DOUBLE_EQ(t.t_in, 1024.0 / 1e9);
  EXPECT_DOUBLE_EQ(t.t_weight, 2336.0 / 1e9);
  EXPECT_DOUBLE_EQ(t.t_out, 2048.0 / 1e9);
  EXPECT_EQ(t.host_bytes, 1024u + 2336u + 2048u);
  // Compute: 73728 MACs at 1e11 * 0.85 * align(16,10)*align(8,10).
  const double util = 0.85 * (16.0 / 20.0) * (8.0 / 10.0);
  EXPECT_DOUBLE_EQ(t.t_compute, 73728.0 / (1e11 * util));
  // Sum decomposition is consistent.
  EXPECT_DOUBLE_EQ(t.t_host, t.t_in + t.t_weight + t.t_out);
}

TEST(Simulator, UnlocalizedDurationMatchesZeroPlan) {
  const ModelGraph m = make_diamond_model();
  const SystemConfig sys = make_uniform_system(2);
  const Simulator sim(m, sys);
  const Mapping mapping = map_all_to(m, AccId{1});
  const LocalityPlan plan(m);
  for (const LayerId id : m.all_layers()) {
    if (m.layer(id).kind == LayerKind::Input) continue;
    EXPECT_DOUBLE_EQ(sim.unlocalized_duration(id, AccId{1}),
                     sim.layer_components(id, mapping, plan).duration())
        << m.layer(id).name;
  }
}

TEST(Simulator, PinnedWeightsMoveAtLocalRate) {
  const ModelGraph m = make_chain_model();
  const SystemConfig sys = make_uniform_system(1);
  const Simulator sim(m, sys);
  const Mapping mapping = map_all_to(m, AccId{0});

  LocalityPlan plan(m);
  const ScheduleResult before = sim.simulate(mapping, plan);
  plan.set_pinned(LayerId{1}, true);  // convA: 2336 weight bytes
  const ScheduleResult after = sim.simulate(mapping, plan);

  const double saving = 2336.0 / 1e9 - 2336.0 / 1e10;
  EXPECT_NEAR(before.latency - after.latency, saving, 1e-15);
  EXPECT_EQ(after.local_bytes, 2336u);
}

TEST(Simulator, FusedEdgeSkipsHostRoundTrip) {
  const ModelGraph m = make_chain_model();
  const SystemConfig sys = make_uniform_system(1);
  const Simulator sim(m, sys);
  const Mapping mapping = map_all_to(m, AccId{0});

  LocalityPlan plan(m);
  const ScheduleResult before = sim.simulate(mapping, plan);
  // Fuse convA -> convB (convB's only in-edge): consumer read becomes local
  // AND producer's host write disappears (its only consumer is local).
  plan.set_fused_in(LayerId{2}, 0, true);
  const ScheduleResult after = sim.simulate(mapping, plan);

  const double bytes = 2048.0;  // convA OFM
  const double read_saving = bytes / 1e9 - bytes / 1e10;  // host -> local read
  const double write_saving = bytes / 1e9;  // host write disappears entirely
  EXPECT_NEAR(before.latency - after.latency, read_saving + write_saving,
              1e-15);
}

TEST(Simulator, PartialFusionStillWritesToHost) {
  const ModelGraph m = make_diamond_model();
  const SystemConfig sys = make_uniform_system(1);
  const Simulator sim(m, sys);
  const Mapping mapping = map_all_to(m, AccId{0});

  // Layer a (id 1) feeds b (id 2) and c (id 3). Fuse only a->b.
  LocalityPlan plan(m);
  plan.set_fused_in(LayerId{2}, 0, true);
  const LayerTiming t = sim.layer_components(LayerId{1}, mapping, plan);
  const Bytes ob = m.layer(LayerId{1}).out_bytes(m.dtype_bytes());
  // The host write remains (consumer c is unfused); no extra local charge.
  EXPECT_DOUBLE_EQ(t.t_out, static_cast<double>(ob) / 1e9);

  // Fusing the second consumer as well removes the host write entirely.
  plan.set_fused_in(LayerId{3}, 0, true);
  const LayerTiming t2 = sim.layer_components(LayerId{1}, mapping, plan);
  EXPECT_DOUBLE_EQ(t2.t_out, 0.0);
}

TEST(Simulator, SinksAlwaysReturnResultsToHost) {
  const ModelGraph m = make_chain_model();
  const SystemConfig sys = make_uniform_system(1);
  const Simulator sim(m, sys);
  const Mapping mapping = map_all_to(m, AccId{0});
  const LocalityPlan plan(m);
  const LayerTiming t = sim.layer_components(LayerId{3}, mapping, plan);
  EXPECT_GT(t.t_out, 0.0);  // fc output must reach the host
}

TEST(Simulator, ParallelBranchesOverlapAcrossAccelerators) {
  const ModelGraph m = make_diamond_model();
  const SystemConfig sys2 = make_uniform_system(2);
  const SystemConfig sys1 = make_uniform_system(1);
  const Simulator sim2(m, sys2);
  const Simulator sim1(m, sys1);
  const LocalityPlan plan(m);

  // Split: branches b and c on different accelerators.
  Mapping split(m);
  split.assign(LayerId{1}, AccId{0});
  split.assign(LayerId{2}, AccId{0});
  split.assign(LayerId{3}, AccId{1});
  split.assign(LayerId{4}, AccId{0});
  split.assign(LayerId{5}, AccId{0});

  const Mapping serial = map_all_to(m, AccId{0});
  const double lat_split = sim2.simulate(split, plan).latency;
  const double lat_serial = sim1.simulate(serial, plan).latency;
  EXPECT_LT(lat_split, lat_serial);

  // The two branch layers really overlap in time.
  const ScheduleResult r = sim2.simulate(split, plan);
  const LayerTiming& b = r.timings[2];
  const LayerTiming& c = r.timings[3];
  EXPECT_LT(std::max(b.start, c.start), std::min(b.finish, c.finish));
}

TEST(Simulator, FifoOrderSerializesSameAccelerator) {
  const ModelGraph m = make_diamond_model();
  const SystemConfig sys = make_uniform_system(2);
  const Simulator sim(m, sys);
  const LocalityPlan plan(m);
  const Mapping mapping = map_all_to(m, AccId{0});
  const ScheduleResult r = sim.simulate(mapping, plan);
  // b (seq earlier) must fully precede c on the shared accelerator.
  EXPECT_LE(r.timings[2].finish, r.timings[3].start + 1e-18);
}

TEST(Simulator, DependentLayerWaitsForAllPredecessors) {
  const ModelGraph m = make_diamond_model();
  const SystemConfig sys = make_uniform_system(3);
  const Simulator sim(m, sys);
  const LocalityPlan plan(m);
  Mapping mapping(m);
  mapping.assign(LayerId{1}, AccId{0});
  mapping.assign(LayerId{2}, AccId{1});
  mapping.assign(LayerId{3}, AccId{2});
  mapping.assign(LayerId{4}, AccId{0});
  mapping.assign(LayerId{5}, AccId{0});
  const ScheduleResult r = sim.simulate(mapping, plan);
  EXPECT_GE(r.timings[4].start,
            std::max(r.timings[2].finish, r.timings[3].finish));
}

TEST(Simulator, NonTopologicalSequenceIsRejected) {
  const ModelGraph m = make_chain_model();
  const SystemConfig sys = make_uniform_system(1);
  const Simulator sim(m, sys);
  Mapping mapping(m);
  // Assign out of dependency order: fcC gets an earlier sequence than convB.
  mapping.assign(LayerId{3}, AccId{0});
  mapping.assign(LayerId{2}, AccId{0});
  mapping.assign(LayerId{1}, AccId{0});
  const LocalityPlan plan(m);
  EXPECT_THROW((void)sim.simulate(mapping, plan), ContractViolation);
}

TEST(Simulator, EnergyBreakdownTracksTransfers) {
  const ModelGraph m = make_chain_model();
  const SystemConfig sys = make_uniform_system(1);
  const Simulator sim(m, sys);
  const Mapping mapping = map_all_to(m, AccId{0});

  LocalityPlan zero(m);
  const ScheduleResult before = sim.simulate(mapping, zero);
  // link energy = host_bytes / bw * link_power (1 W).
  EXPECT_NEAR(before.energy.link, static_cast<double>(before.host_bytes) / 1e9,
              1e-15);
  EXPECT_GT(before.energy.compute, 0.0);
  EXPECT_GT(before.energy.dram, 0.0);
  EXPECT_DOUBLE_EQ(before.energy.static_power, 0.0);

  // Pinning + fusing reduces link energy but not compute energy.
  LocalityPlan local(m);
  for (const LayerId id : m.all_layers()) local.set_pinned(id, true);
  local.set_fused_in(LayerId{2}, 0, true);
  local.set_fused_in(LayerId{3}, 0, true);
  const ScheduleResult after = sim.simulate(mapping, local);
  EXPECT_LT(after.energy.link, before.energy.link);
  EXPECT_DOUBLE_EQ(after.energy.compute, before.energy.compute);
  EXPECT_LT(after.energy.total(), before.energy.total());
}

TEST(Simulator, StaticPowerScalesWithMakespan) {
  const ModelGraph m = make_chain_model();
  std::vector<AcceleratorPtr> accs;
  accs.push_back(make_analytical(testing::simple_spec("U0", gib(1))));
  HostParams host;
  host.bw_acc = 1e9;
  host.static_power_w = 2.0;
  const SystemConfig sys(std::move(accs), host);
  const Simulator sim(m, sys);
  const Mapping mapping = map_all_to(m, AccId{0});
  const LocalityPlan plan(m);
  const ScheduleResult r = sim.simulate(mapping, plan);
  EXPECT_DOUBLE_EQ(r.energy.static_power, 2.0 * 1 * r.latency);
}

TEST(Simulator, UnlocalizedDurationMatchesZeroLocalityComponents) {
  // unlocalized_duration charges the output transfer unconditionally. That
  // is the zero-locality semantics: no consumer can be fused, so the
  // producer always writes its output back to the host — exactly what
  // layer_components computes under a default (all-unfused) plan. This test
  // pins the equivalence for both a linear chain and a diamond (multiple
  // consumers, Eltwise join, model output).
  for (const ModelGraph& m : {make_chain_model(), make_diamond_model()}) {
    const SystemConfig sys = make_uniform_system(2);
    const Simulator sim(m, sys);
    const Mapping mapping = map_all_to(m, AccId{1});
    const LocalityPlan zero(m);
    for (const LayerId id : m.all_layers()) {
      if (m.layer(id).kind == LayerKind::Input) continue;
      const LayerTiming t = sim.layer_components(id, mapping, zero);
      EXPECT_DOUBLE_EQ(sim.unlocalized_duration(id, AccId{1}), t.duration())
          << m.name() << " layer " << id.value;
    }
  }
}

TEST(Simulator, CompRatioCountsLocalTrafficAsComputation) {
  const ModelGraph m = make_chain_model();
  const SystemConfig sys = make_uniform_system(1);
  const Simulator sim(m, sys);
  const Mapping mapping = map_all_to(m, AccId{0});

  LocalityPlan zero(m);
  LocalityPlan local(m);
  for (const LayerId id : m.all_layers()) local.set_pinned(id, true);
  local.set_fused_in(LayerId{2}, 0, true);
  local.set_fused_in(LayerId{3}, 0, true);
  const double before = sim.simulate(mapping, zero).comp_ratio();
  const double after = sim.simulate(mapping, local).comp_ratio();
  EXPECT_GT(after, before);  // locality shifts time from comm to comp side
  EXPECT_GT(before, 0.0);
  EXPECT_LE(after, 1.0);
}

}  // namespace
}  // namespace h2h
