#include "core/comp_prioritized.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <limits>

#include "graph/algorithms.h"
#include "util/error.h"
#include "util/str.h"

namespace h2h {
namespace {

/// Minimum subtree size (complete assignments under a DFS node) before the
/// dominance table is consulted: hashing a tail signature to save fewer leaf
/// evaluations than the hash costs is a loss.
constexpr std::uint64_t kDomMinSubtree = 16;

/// Colexicographic comparison of two equal-length choice vectors: the
/// largest differing index decides (the LAST chunk position is the most
/// significant digit). The legacy mixed-radix loop varied choice[0] fastest,
/// so its enumeration order was exactly colex ascending — "colex-smaller"
/// means "the legacy code enumerated it first", which is the tie-break the
/// tests pin. Returns true when `a` precedes `b`.
[[nodiscard]] bool colex_less(const std::uint32_t* a, const std::uint32_t* b,
                              std::size_t len) {
  for (std::size_t i = len; i-- > 0;)
    if (a[i] != b[i]) return a[i] < b[i];
  return false;
}

/// Exact dominance over partial assignments (DESIGN.md §10).
///
/// Signature of a DFS state at depth d: the running tail (last finish) of
/// every accelerator any of the chunk positions 0..d can use, in ascending
/// accelerator order. Ready times and the committed makespan are chunk
/// constants and the tails are the only state a suffix placement reads, so
/// two prefixes with bit-equal signatures reach exactly the same set of
/// suffix outcomes (the partial makespan is itself derivable from the tails:
/// FIFO finishes are monotone per queue). A new prefix is cut when an
/// already-expanded prefix with the same signature has
///
///   sum <= new.sum   AND   colex(prefix) < colex(new prefix):
///
/// any completion of the new prefix is then matched by the stored prefix
/// plus the same suffix, whose finish-sum is no larger (float addition is
/// monotone in its running total) and whose choice vector is colex-smaller —
/// it beats the new prefix's completion on every criterion the legacy
/// enumeration could tie-break on. Incomparable pairs (smaller sum but
/// larger colex, or vice versa) are both kept: entries per signature form a
/// tiny Pareto front. Epoch stamps make begin_chunk O(1); when the slot or
/// entry budget saturates the table stops inserting — the search stays
/// exact, it just stops learning (counted as dominance_fallbacks, guarded at
/// zero on the zoo models by the CI bench smoke).
struct DominanceTable {
  struct Slot {
    std::uint64_t hash = 0;
    std::uint32_t stamp = 0;   // chunk epoch this slot belongs to
    std::uint32_t depth = 0;
    std::uint32_t sig_at = 0;  // offset into sig_arena
    std::uint32_t head = kNil; // first Pareto-front entry
  };
  struct Entry {
    double sum;
    std::uint32_t prefix_at;  // offset into prefix_arena, length depth + 1
    std::uint32_t next;
  };
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  std::vector<Slot> slots;
  std::vector<Entry> entries;
  std::vector<double> sig_arena;
  std::vector<std::uint32_t> prefix_arena;
  std::uint32_t epoch = 0;
  std::uint32_t slots_used = 0;
  std::uint32_t slots_cap = 0;
  std::uint32_t entries_cap = 0;

  /// Lazy one-time allocation (models whose chunks never reach
  /// kDomMinSubtree never pay for the table).
  void init(std::uint32_t requested_slots) {
    if (!slots.empty()) return;
    const std::uint32_t n =
        std::bit_ceil(std::max<std::uint32_t>(requested_slots, 4));
    slots.assign(n, Slot{});
    slots_cap = n - n / 4;  // probe chains stay short at 3/4 load
    entries_cap = 2 * slots_cap;
  }

  void begin_chunk() {
    if (++epoch == 0) {  // epoch wrapped: invalidate all stale slots
      for (Slot& s : slots) s.stamp = 0;
      epoch = 1;
    }
    slots_used = 0;
    entries.clear();
    sig_arena.clear();
    prefix_arena.clear();
  }

  [[nodiscard]] std::uint32_t push_entry(double sum,
                                         const std::uint32_t* prefix,
                                         std::uint32_t len,
                                         std::uint32_t next) {
    const auto at = static_cast<std::uint32_t>(prefix_arena.size());
    prefix_arena.insert(prefix_arena.end(), prefix, prefix + len);
    entries.push_back({sum, at, next});
    return static_cast<std::uint32_t>(entries.size() - 1);
  }

  /// True: cut this subtree, an expanded prefix provably beats it. False:
  /// the caller expands this prefix, which is recorded for future siblings
  /// (unless the budget saturated).
  [[nodiscard]] bool dominated(std::uint32_t depth, const double* sig,
                               std::uint32_t sig_len, double sum,
                               const std::uint32_t* prefix,
                               CompPrioritizedStats* stats) {
    std::uint64_t h = 1469598103934665603ull;  // FNV-1a over depth + tails
    h = (h ^ (depth + 1)) * 1099511628211ull;
    for (std::uint32_t j = 0; j < sig_len; ++j)
      h = (h ^ std::bit_cast<std::uint64_t>(sig[j])) * 1099511628211ull;
    const std::uint32_t mask = static_cast<std::uint32_t>(slots.size()) - 1;
    const std::uint32_t len = depth + 1;
    for (std::uint32_t idx = static_cast<std::uint32_t>(h) & mask;;
         idx = (idx + 1) & mask) {
      Slot& s = slots[idx];
      if (s.stamp != epoch) {  // fresh signature
        if (slots_used >= slots_cap ||
            static_cast<std::uint32_t>(entries.size()) >= entries_cap) {
          if (stats) ++stats->dominance_fallbacks;
          return false;
        }
        s.stamp = epoch;
        s.hash = h;
        s.depth = depth;
        s.sig_at = static_cast<std::uint32_t>(sig_arena.size());
        sig_arena.insert(sig_arena.end(), sig, sig + sig_len);
        s.head = push_entry(sum, prefix, len, kNil);
        ++slots_used;
        if (stats) ++stats->dominance_states;
        return false;
      }
      if (s.hash != h || s.depth != depth ||
          std::memcmp(sig_arena.data() + s.sig_at, sig,
                      sig_len * sizeof(double)) != 0)
        continue;
      // Known signature: prune when any front entry Pareto-dominates.
      for (std::uint32_t e = s.head; e != kNil; e = entries[e].next) {
        if (entries[e].sum <= sum &&
            colex_less(prefix_arena.data() + entries[e].prefix_at, prefix,
                       len))
          return true;
      }
      // This prefix will be expanded: add it to the front, unlinking
      // entries it dominates in turn (their arena space is reclaimed at
      // the next begin_chunk).
      if (static_cast<std::uint32_t>(entries.size()) >= entries_cap) {
        if (stats) ++stats->dominance_fallbacks;
        return false;
      }
      std::uint32_t head = s.head;
      for (std::uint32_t* link = &head; *link != kNil;) {
        Entry& e = entries[*link];
        if (sum <= e.sum &&
            colex_less(prefix, prefix_arena.data() + e.prefix_at, len))
          *link = e.next;
        else
          link = &e.next;
      }
      s.head = push_entry(sum, prefix, len, head);
      if (stats) ++stats->dominance_states;
      return false;
    }
  }
};

}  // namespace

Mapping computation_prioritized_mapping(const Simulator& sim,
                                        const CompPrioritizedOptions& options) {
  const ModelGraph& model = sim.model();
  const SystemConfig& sys = sim.sys();
  const CostTable& costs = sim.costs();
  H2H_EXPECTS(options.max_candidates > 0);
  if (!is_dag(model.graph()))
    throw ConfigError(strformat("model '%s' has a dependency cycle",
                                model.name().c_str()));

  Mapping mapping(model);
  std::vector<double> finish(model.layer_count(), 0.0);
  CompPrioritizedStats* const stats = options.stats;

  // Indegree-counting worklist: completing a wave pushes exactly the nodes
  // that become ready, so the traversal is O(V + E) total instead of an
  // O(V + E) frontier() rescan per wave. Input layers are host-resident and
  // complete immediately.
  FrontierWorklist work(model.graph());
  for (const LayerId id : model.all_layers())
    if (model.layer(id).kind == LayerKind::Input) work.complete(id);

  std::vector<double> acc_tail(sys.accelerator_count(), 0.0);
  double makespan = 0.0;

  // Per-wave scratch, reused across waves. Candidate accelerators are spans
  // into the cost table's per-kind lists (or into pref_storage for the
  // dynamic-modality preference hook); durations are gathered from each
  // layer's contiguous cost-table row in one pass.
  std::vector<LayerId> front;
  std::vector<AccId> pref_storage;
  std::vector<std::span<const AccId>> cand;
  std::vector<std::uint32_t> dur_offset;
  std::vector<double> durations;
  std::vector<double> node_ready;
  std::vector<double> suffix_lb;

  // Per-chunk DFS state, reused. `tails` is the live per-accelerator
  // last-finish vector of the current partial assignment; backtracking
  // restores the single cell a placement overwrote.
  std::vector<std::uint32_t> choice;
  std::vector<std::uint32_t> best_choice;
  std::vector<AccId> placed_acc;
  std::vector<double> saved_tail;
  std::vector<double> path_mk;
  std::vector<double> path_sum;
  std::vector<std::uint64_t> remaining;  // leaves under each depth
  std::vector<double> tails(sys.accelerator_count(), 0.0);

  // Dominance-signature support: prefix universes (the sorted accelerators
  // positions 0..i can touch) as one CSR per chunk, plus a gather scratch.
  std::vector<std::uint32_t> uni_offset;
  std::vector<AccId> uni;
  std::vector<AccId> cur_uni;
  std::vector<double> sig;
  std::vector<std::uint8_t> in_uni(sys.accelerator_count(), 0);
  DominanceTable dom;

  while (work.take_wave(front)) {
    if (stats) ++stats->waves;
    cand.clear();
    dur_offset.clear();
    durations.clear();
    node_ready.clear();
    pref_storage.clear();
    pref_storage.reserve(front.size());  // spans into it must stay valid

    for (const LayerId id : front) {
      const Layer& layer = model.layer(id);
      std::span<const AccId> accs;
      // Placement preference (dynamic-modality extension §4.5): if it names
      // an accelerator that supports the layer, that is the only candidate.
      if (options.preferred) {
        if (const std::optional<AccId> pref = options.preferred(id);
            pref.has_value() && sys.contains(*pref) &&
            costs.supported(id, *pref)) {
          pref_storage.push_back(*pref);
          accs = {&pref_storage.back(), 1};
        }
      }
      if (accs.empty()) {
        accs = costs.candidates(id, layer.kind);
        if (accs.empty()) {
          if (!costs.supporting(layer.kind).empty())
            throw CapabilityError(strformat(
                "layer '%s' (%s): required capabilities exclude every "
                "supporting accelerator",
                layer.name.c_str(),
                std::string(to_string(layer.kind)).c_str()));
          throw ConfigError(strformat(
              "no accelerator in the system supports layer '%s' (%s)",
              layer.name.c_str(), std::string(to_string(layer.kind)).c_str()));
        }
      }
      cand.push_back(accs);
      dur_offset.push_back(static_cast<std::uint32_t>(durations.size()));
      const std::span<const double> row = costs.unlocalized_row(id);
      for (const AccId a : accs) durations.push_back(row[a.value]);
      double ready = 0.0;
      for (const LayerId p : model.graph().preds(id))
        ready = std::max(ready, finish[p.value]);
      node_ready.push_back(ready);
    }

    // Split into chunks whose assignment product stays enumerable.
    std::size_t begin = 0;
    while (begin < front.size()) {
      std::size_t end = begin;
      std::uint64_t product = 1;
      while (end < front.size()) {
        const std::uint64_t next = product * cand[end].size();
        if (end > begin && next > options.max_candidates) break;
        product = next;
        ++end;
      }
      const std::size_t k = end - begin;
      if (stats) ++stats->chunks;

      // The search is a lex-order DFS (position 0 outermost) with
      // incremental tails, tracking the best assignment by (makespan, sum
      // of finishes, colex rank of the choice vector) — the explicit colex
      // leg reproduces the legacy mixed-radix loop's first-enumerated-wins
      // tie-break exactly (pinned by test_comp_prioritized.cpp), since that
      // loop enumerated in colex-ascending order. A subtree is cut as soon
      // as its running makespan joined with the suffix lower bound strictly
      // exceeds the incumbent: every completion then loses on the makespan
      // criterion outright (ties are never cut).
      //
      // Placement-independent lower bound on the finish of nodes i..k-1:
      // node j cannot finish before ready_j + its cheapest duration.
      suffix_lb.assign(k + 1, 0.0);
      for (std::size_t i = k; i-- > 0;) {
        const std::size_t n = begin + i;
        double min_dur = std::numeric_limits<double>::infinity();
        for (std::size_t c = 0; c < cand[n].size(); ++c)
          min_dur = std::min(min_dur, durations[dur_offset[n] + c]);
        suffix_lb[i] = std::max(suffix_lb[i + 1], node_ready[n] + min_dur);
      }

      // Leaves below each depth (product of the remaining candidate
      // counts); gates the dominance table to subtrees worth hashing for.
      remaining.assign(k + 1, 1);
      for (std::size_t i = k; i-- > 0;)
        remaining[i] = remaining[i + 1] * cand[begin + i].size();

      // Live tails start from the committed accelerator state.
      for (std::size_t i = 0; i < k; ++i)
        for (const AccId a : cand[begin + i]) tails[a.value] = acc_tail[a.value];

      const bool dom_on =
          options.use_dominance && k >= 2 && remaining[1] >= kDomMinSubtree;
      if (dom_on) {
        dom.init(options.dominance_slots);
        dom.begin_chunk();
        // Prefix universes: universe of depth i = sorted distinct
        // accelerators candidate to any position <= i (accelerators no
        // prefix placement can touch hold committed values identical across
        // branches and carry no information).
        uni.clear();
        uni_offset.assign(k + 1, 0);
        cur_uni.clear();
        for (std::size_t i = 0; i < k; ++i) {
          bool grew = false;
          for (const AccId a : cand[begin + i]) {
            if (!in_uni[a.value]) {
              in_uni[a.value] = 1;
              cur_uni.push_back(a);
              grew = true;
            }
          }
          if (grew) std::sort(cur_uni.begin(), cur_uni.end());
          uni.insert(uni.end(), cur_uni.begin(), cur_uni.end());
          uni_offset[i + 1] = static_cast<std::uint32_t>(uni.size());
        }
        for (const AccId a : cur_uni) in_uni[a.value] = 0;
      }

      choice.assign(k, 0);
      placed_acc.assign(k, AccId{});
      saved_tail.assign(k, 0.0);
      path_mk.assign(k, 0.0);
      path_sum.assign(k, 0.0);
      best_choice.clear();
      double best_mk = std::numeric_limits<double>::infinity();
      double best_sum = std::numeric_limits<double>::infinity();
      const bool batched = options.use_batched_sums;

      std::size_t i = 0;
      while (true) {
        const std::size_t n = begin + i;
        const std::span<const AccId> cs = cand[n];
        const double pm = i == 0 ? makespan : path_mk[i - 1];
        const double ps = i == 0 ? 0.0 : path_sum[i - 1];

        if (i + 1 == k && batched) {
          // Batched leaf: one sweep over the last position's contiguous
          // duration row scores every completion of the current prefix —
          // no per-candidate descent, no table traffic.
          const double ready = node_ready[n];
          const double* dur = durations.data() + dur_offset[n];
          for (std::size_t c = 0; c < cs.size(); ++c) {
            const double fin = std::max(ready, tails[cs[c].value]) + dur[c];
            const double mk = std::max(pm, fin);
            if (mk > best_mk) continue;
            const double sum = ps + fin;
            if (stats) ++stats->evaluated;
            bool better = mk < best_mk;
            if (!better && sum < best_sum) {
              better = true;
            } else if (!better && sum == best_sum) {
              const auto cc = static_cast<std::uint32_t>(c);
              better = cc != best_choice[k - 1]
                           ? cc < best_choice[k - 1]
                           : colex_less(choice.data(), best_choice.data(),
                                        k - 1);
            }
            if (better) {
              best_mk = mk;
              best_sum = sum;
              best_choice.assign(choice.begin(), choice.end());
              best_choice[k - 1] = static_cast<std::uint32_t>(c);
            }
          }
          choice[i] = static_cast<std::uint32_t>(cs.size());  // exhausted
        }

        if (choice[i] >= cs.size()) {
          if (i == 0) break;
          --i;
          tails[placed_acc[i].value] = saved_tail[i];  // undo the placement
          ++choice[i];
          continue;
        }

        const AccId a = cs[choice[i]];
        const double old_tail = tails[a.value];
        const double fin = std::max(node_ready[n], old_tail) +
                           durations[dur_offset[n] + choice[i]];
        const double mk = std::max(pm, fin);
        if (std::max(mk, suffix_lb[i + 1]) > best_mk) {
          if (stats) ++stats->bound_pruned;
          ++choice[i];
          continue;
        }
        const double sum = ps + fin;

        if (i + 1 == k) {
          // Unbatched leaf (ablation path): score this complete assignment.
          if (stats) ++stats->evaluated;
          bool better = mk < best_mk;
          if (!better && sum < best_sum)
            better = true;
          else if (!better && sum == best_sum)
            better = colex_less(choice.data(), best_choice.data(), k);
          if (better) {
            best_mk = mk;
            best_sum = sum;
            best_choice.assign(choice.begin(), choice.end());
          }
          ++choice[i];
          continue;
        }

        // Internal node: place, consult the dominance table, descend.
        placed_acc[i] = a;
        saved_tail[i] = old_tail;
        tails[a.value] = fin;
        path_mk[i] = mk;
        path_sum[i] = sum;
        if (dom_on && remaining[i + 1] >= kDomMinSubtree) {
          sig.clear();
          for (std::uint32_t u = uni_offset[i]; u < uni_offset[i + 1]; ++u)
            sig.push_back(tails[uni[u].value]);
          if (dom.dominated(static_cast<std::uint32_t>(i), sig.data(),
                            static_cast<std::uint32_t>(sig.size()), sum,
                            choice.data(), stats)) {
            if (stats) ++stats->dominance_pruned;
            tails[a.value] = old_tail;
            ++choice[i];
            continue;
          }
        }
        ++i;
        choice[i] = 0;
      }

      // Commit the chunk in frontier order.
      H2H_ASSERT(best_choice.size() == k);
      for (std::size_t i = 0; i < k; ++i) {
        const std::size_t n = begin + i;
        const LayerId node = front[n];
        const AccId a = cand[n][best_choice[i]];
        mapping.assign(node, a);
        const double start = std::max(node_ready[n], acc_tail[a.value]);
        const double fin = start + durations[dur_offset[n] + best_choice[i]];
        acc_tail[a.value] = fin;
        finish[node.value] = fin;
        makespan = std::max(makespan, fin);
        work.complete(node);
      }
      begin = end;
    }
  }

  H2H_ENSURES(mapping.complete());
  return mapping;
}

}  // namespace h2h
