#include "core/remapping.h"

#include <algorithm>
#include <array>
#include <limits>

namespace h2h {
namespace {

/// Candidate destination accelerators: the accelerators of the layer's graph
/// neighbours (paper: "re-allocates a layer ... to a new destination
/// accelerator, on which its predecessors and/or successors are mapped"),
/// plus the layer's compute-affinity accelerator — the one minimizing
/// pinned-weight execution (compute + local weight read). The extra
/// candidate un-strands layers whose step-1 placement turns memory-bound
/// once weights are pinned but whose neighbours all share that placement
/// (DESIGN.md §6). Support checks and affinity costs are cost-table reads —
/// no virtual model calls in the loop. Fills the caller's scratch vector
/// (sorted ascending for determinism) instead of allocating per call.
void neighbour_accs(const CostTable& costs, const ModelGraph& model,
                    const Mapping& mapping, LayerId node,
                    std::vector<AccId>& out) {
  const Layer& layer = model.layer(node);
  const AccId current = mapping.acc_of(node);
  out.clear();
  const auto consider = [&](AccId a) {
    if (a.is_host() || a == current) return;
    if (std::find(out.begin(), out.end(), a) != out.end()) return;
    if (costs.supported(node, a)) out.push_back(a);
  };
  for (const LayerId p : model.graph().preds(node))
    consider(mapping.acc_of(p));
  for (const LayerId s : model.graph().succs(node))
    consider(mapping.acc_of(s));

  AccId best{};
  double best_time = std::numeric_limits<double>::infinity();
  for (const AccId a : costs.supporting(layer.kind)) {
    const double t = costs.compute_latency(node, a) +
                     static_cast<double>(costs.weight_bytes(node)) /
                         costs.bw_local(a);
    if (t < best_time) {
      best_time = t;
      best = a;
    }
  }
  if (best.valid()) consider(best);
  std::sort(out.begin(), out.end());
}

}  // namespace

RemapStats data_locality_remapping(const Simulator& sim, Mapping& mapping,
                                   LocalityPlan& plan,
                                   const RemapOptions& options) {
  const ModelGraph& model = sim.model();
  const CostTable& costs = sim.costs();
  RemapStats stats;

  const auto metric_of = [&options](const ScheduleResult& r) {
    return options.objective == RemapObjective::Latency
               ? r.latency
               : r.latency * r.energy.total();
  };

  IncrementalSchedule inc(sim);
  if (options.use_incremental) inc.reset(mapping, plan);

  // Objective value of the current journaled state. The Latency objective
  // reads the maintained makespan directly; the energy-aware objective
  // aggregates energy without materializing a full ScheduleResult.
  const auto current_metric = [&]() {
    if (!options.use_incremental) return metric_of(sim.simulate(mapping, plan));
    return options.objective == RemapObjective::Latency
               ? inc.latency()
               : inc.latency() * inc.energy(mapping).total();
  };

  // Apply one candidate move with steps 2-3 re-run on the two affected
  // accelerators, and the schedule updated incrementally. Requires open
  // journals: the plan journal doubles as the exact dirty set for the
  // schedule update (only layers whose pins or fusion flags flipped get
  // their components re-read).
  std::vector<LayerId> dirty;  // scratch, reused across probes
  WeightLocalityScratch weight_scratch;
  FusionScratch fusion_scratch;
  const auto apply_move = [&](LayerId node, AccId src, AccId dst) {
    mapping.reassign(node, dst);
    const std::array<AccId, 2> touched{src, dst};
    optimize_weight_locality(sim, mapping, plan, options.weight, touched,
                             &weight_scratch);
    optimize_activation_fusion(sim, mapping, plan, options.fusion, touched,
                               &fusion_scratch);
    if (options.use_incremental) {
      dirty.clear();
      plan.journal_touched_layers(model, dirty);
      inc.apply_remap(mapping, plan, node, src, dirty);
    }
  };

  double best_metric = current_metric();

  // Visit layers in execution order each pass.
  std::vector<LayerId> order = model.all_layers();
  std::sort(order.begin(), order.end(), [&mapping](LayerId l, LayerId r) {
    return mapping.seq_of(l) < mapping.seq_of(r);
  });

  std::vector<AccId> candidates;  // scratch, reused across nodes

  for (std::uint32_t pass = 0; pass < options.max_passes; ++pass) {
    ++stats.passes;
    bool improved = false;

    for (const LayerId node : order) {
      // Budgeted search: one clock read per layer (not per probe) keeps the
      // check off the candidate hot path; no clock read at all when no
      // deadline is set, so unbudgeted runs are bit-identical to before.
      if (options.deadline &&
          std::chrono::steady_clock::now() >= *options.deadline) {
        stats.stopped_on_budget = true;
        if (options.use_incremental) stats.retimes = inc.retime_count();
        return stats;
      }
      if (model.layer(node).kind == LayerKind::Input) continue;
      const AccId src = mapping.acc_of(node);
      neighbour_accs(costs, model, mapping, node, candidates);

      // Probe every neighbour destination under an apply/undo journal —
      // no per-candidate copies of the plan or the schedule — and remember
      // only the best improving destination.
      AccId best_dst{};
      double best_candidate = best_metric;

      for (const AccId dst : candidates) {
        ++stats.attempts;
        mapping.begin_journal();
        plan.begin_journal();
        if (options.use_incremental) inc.begin_journal();

        apply_move(node, src, dst);
        const double metric = current_metric();
        if (metric < best_candidate - options.epsilon) {
          best_candidate = metric;
          best_dst = dst;
        }

        if (options.use_incremental) inc.rollback_journal();
        plan.rollback_journal();
        mapping.rollback_journal();
      }

      if (best_dst.valid()) {
        // Re-apply the winning move for keeps (journaled for the dirty-set
        // bookkeeping, then committed). Steps 2-3 are deterministic, so
        // this reproduces the probed state exactly.
        mapping.begin_journal();
        plan.begin_journal();
        if (options.use_incremental) inc.begin_journal();
        apply_move(node, src, best_dst);
        if (options.use_incremental) inc.commit_journal();
        plan.commit_journal();
        mapping.commit_journal();
        best_metric = best_candidate;
        ++stats.accepted;
        improved = true;
      }
    }

    if (!improved) break;
  }
  if (options.use_incremental) stats.retimes = inc.retime_count();
  return stats;
}

}  // namespace h2h
