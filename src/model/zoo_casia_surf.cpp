// CASIA-SURF baseline (Zhang et al., CVPR 2019): multi-modal face
// anti-spoofing with three ResNet-18-style branches (RGB, depth, IR)
// truncated after res4, fused by concatenation and a shared res5 trunk.
//
// Modality tags: 1 = RGB, 2 = depth, 3 = IR, 0 = fusion.
#include "model/blocks.h"
#include "model/zoo.h"

namespace h2h {

ModelGraph make_casia_surf() {
  ModelBuilder b("CASIA-SURF");

  b.set_modality(1);
  const LayerId rgb = b.input("rgb", 3, 112, 112);
  const LayerId f_rgb = resnet18_backbone(b, rgb, "rgb", 1.0, 3);

  b.set_modality(2);
  const LayerId depth = b.input("depth", 1, 112, 112);
  const LayerId f_depth = resnet18_backbone(b, depth, "depth", 1.0, 3);

  b.set_modality(3);
  const LayerId ir = b.input("ir", 1, 112, 112);
  const LayerId f_ir = resnet18_backbone(b, ir, "ir", 1.0, 3);

  b.set_modality(0);
  const LayerId cat = b.concat("fuse.concat", std::array{f_rgb, f_depth, f_ir});
  const LayerId squeeze = b.conv("fuse.squeeze", cat, 512, 1, 1);
  const LayerId res5 = resnet_stage_basic(b, squeeze, 512, 1, 2, "fuse.res5");
  const LayerId gap = b.global_pool("fuse.gap", res5);
  const LayerId fc1 = b.fc("fuse.fc1", gap, 128);
  (void)b.fc("fuse.cls", fc1, 2);

  return std::move(b).build();
}

}  // namespace h2h
