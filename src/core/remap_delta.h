// Delta evaluation of step-4 remap probes (DESIGN.md §6).
//
// A candidate move re-runs weight locality (step 2) and activation fusion
// (step 3) on the two touched accelerators. Both passes write every flag
// with its final value, so in the common case — local DRAM holds everything
// the accelerator wants — the only flags that actually change are the moved
// layer's pin and its incident fusion edges. RemapDeltaState tracks, per
// accelerator, the aggregates needed to prove that case cheaply:
//
//   weight_total   sum of member weight bytes (the knapsack's total demand)
//   pinned_bytes   sum of pinned member weight bytes (step-2 DRAM share)
//   fused_bytes    sum of fused activation-buffer bytes
//   saturated      some co-located edge is unfused (capacity bound before)
//   pins_trusted   pins are exactly the positive-weight members
//
// When the aggregates prove the knapsack stays in its everything-fits
// regime and fused buffers keep fitting, the delta pass touches only the
// moved layer and its graph neighbours — O(deg(node)) writes instead of two
// full per-accelerator passes. Whenever capacity pressure could change the
// knapsack frontier or the greedy fusion order, it falls back to the full
// per-accelerator pass (optimize_weight_locality_acc /
// optimize_activation_fusion_acc), routing knapsack solves through a
// memoizing KnapsackCache: the source-accelerator instance is identical
// across all of a node's candidate probes, so it is solved once per node.
//
// Either way the resulting Mapping/LocalityPlan state is bit-identical to
// the full touched-pair re-run (asserted by the randomized property tests
// and the delta-on/off zoo equivalence test), so the probe's dirty set,
// retimes, and metric are unchanged — only the work to get there shrinks.
// This holds under any link topology: both strategies run the same step-2/3
// pass code, whose benefit formulas read the per-accelerator host-link
// speeds — the actual src->dst link charges live in the simulator, which
// both strategies consult identically (DESIGN.md §9).
//
// Probe protocol: the state is valid only while every pin/fusion/placement
// mutation goes through it. begin_probe snapshots the two touched
// accelerators' aggregates; rollback_probe restores them (the caller rolls
// the Mapping/LocalityPlan journals back separately); commit_probe keeps
// them. One probe at a time.
#pragma once

#include <span>

#include "core/activation_fusion.h"
#include "core/weight_locality.h"

namespace h2h {

/// Per-accelerator aggregate state (see file comment). Re-derivable from
/// (Mapping, LocalityPlan) — init() computes exactly this, which the
/// property tests exploit to cross-check the incremental maintenance.
struct AccAggregates {
  Bytes weight_total = 0;
  Bytes pinned_bytes = 0;
  Bytes fused_bytes = 0;
  bool saturated = false;
  bool pins_trusted = false;

  [[nodiscard]] bool operator==(const AccAggregates&) const = default;
};

/// Work accounting for the ablation bench and tests.
struct RemapDeltaStats {
  std::uint64_t trivial_weight = 0;  // step-2 resolved without a knapsack
  std::uint64_t full_weight = 0;     // step-2 fell back to the per-acc solve
  std::uint64_t local_fusion = 0;    // step-3 resolved on node-incident edges
  std::uint64_t full_fusion = 0;     // step-3 fell back to the per-acc pass
};

class RemapDeltaState {
 public:
  RemapDeltaState(const Simulator& sim, WeightLocalityOptions weight,
                  FusionOptions fusion, bool use_knapsack_cache);

  /// Build the aggregates from the live state: O(V + E). The mapping must be
  /// complete. Conservative about foreign state: accelerators whose pins or
  /// fusion flags do not look pass-produced simply take the full-pass
  /// fallback on their first touch.
  void init(const Mapping& mapping, const LocalityPlan& plan);

  /// Snapshot the two accelerators the upcoming move touches.
  void begin_probe(AccId src, AccId dst);
  /// Restore the snapshot taken by begin_probe (caller rolls back the
  /// Mapping/LocalityPlan journals itself).
  void rollback_probe();
  /// Keep the probe's aggregate updates.
  void commit_probe();

  /// Steps 2-3 for `node` just reassigned src -> dst (Mapping::reassign
  /// already applied). Bit-identical to running
  /// optimize_weight_locality/optimize_activation_fusion over {src, dst}.
  void apply_move(const Mapping& mapping, LocalityPlan& plan, LayerId node,
                  AccId src, AccId dst);

  [[nodiscard]] const AccAggregates& aggregates(AccId acc) const {
    H2H_EXPECTS(acc.value < accs_.size());
    return accs_[acc.value];
  }
  [[nodiscard]] const RemapDeltaStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::uint64_t knapsack_hits() const noexcept {
    return cache_.hits();
  }
  [[nodiscard]] std::uint64_t knapsack_misses() const noexcept {
    return cache_.misses();
  }

 private:
  void delta_weight_one(const Mapping& mapping, LocalityPlan& plan, AccId acc,
                        LayerId arrival);
  void delta_fusion(const Mapping& mapping, LocalityPlan& plan, LayerId node,
                    AccId src, AccId dst);

  const Simulator* sim_;
  WeightLocalityOptions weight_;
  FusionOptions fusion_;
  bool use_cache_;

  std::vector<AccAggregates> accs_;
  std::vector<std::uint8_t> saved_nonneg_;  // per acc: pin value never < 0

  // Probe snapshot (two touched accelerators).
  bool probing_ = false;
  AccId snap_src_;
  AccId snap_dst_;
  AccAggregates snap_src_state_;
  AccAggregates snap_dst_state_;

  KnapsackCache cache_;
  WeightLocalityScratch weight_scratch_;
  struct EdgeRef {
    LayerId consumer;
    std::uint32_t slot;
    Bytes bytes;
  };
  std::vector<EdgeRef> fuse_candidates_;  // scratch, reused across probes
  RemapDeltaStats stats_;
};

}  // namespace h2h
