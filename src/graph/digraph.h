// A small dense directed graph used for both G_model (layer dependencies)
// and G_sys (per-accelerator execution order). Nodes are created once and
// never removed (mapping never mutates the model graph), which keeps ids
// stable and adjacency cache-friendly.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "util/contracts.h"

namespace h2h {

/// Strong node identifier (an index into the graph's dense node array).
struct NodeId {
  std::uint32_t value = kInvalid;

  static constexpr std::uint32_t kInvalid = 0xFFFFFFFFu;

  [[nodiscard]] constexpr bool valid() const noexcept { return value != kInvalid; }
  [[nodiscard]] constexpr auto operator<=>(const NodeId&) const noexcept = default;
};

class Digraph {
 public:
  Digraph() = default;

  /// Pre-size internal arrays for `n` nodes (optional optimization).
  explicit Digraph(std::size_t reserve_nodes) {
    preds_.reserve(reserve_nodes);
    succs_.reserve(reserve_nodes);
  }

  [[nodiscard]] NodeId add_node() {
    const NodeId id{static_cast<std::uint32_t>(preds_.size())};
    preds_.emplace_back();
    succs_.emplace_back();
    return id;
  }

  /// Add edge from -> to. Parallel edges are rejected (the model IR carries
  /// at most one tensor edge per layer pair; multi-input consumers use
  /// distinct producers).
  void add_edge(NodeId from, NodeId to);

  [[nodiscard]] bool has_edge(NodeId from, NodeId to) const;

  [[nodiscard]] std::size_t node_count() const noexcept { return preds_.size(); }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edge_count_; }

  [[nodiscard]] std::span<const NodeId> preds(NodeId n) const {
    H2H_EXPECTS(contains(n));
    return preds_[n.value];
  }
  [[nodiscard]] std::span<const NodeId> succs(NodeId n) const {
    H2H_EXPECTS(contains(n));
    return succs_[n.value];
  }

  [[nodiscard]] std::size_t in_degree(NodeId n) const { return preds(n).size(); }
  [[nodiscard]] std::size_t out_degree(NodeId n) const { return succs(n).size(); }

  [[nodiscard]] bool contains(NodeId n) const noexcept {
    return n.valid() && n.value < preds_.size();
  }

  /// All nodes with no predecessors (model inputs / frontier seeds).
  [[nodiscard]] std::vector<NodeId> sources() const;
  /// All nodes with no successors (model outputs).
  [[nodiscard]] std::vector<NodeId> sinks() const;

 private:
  std::vector<std::vector<NodeId>> preds_;
  std::vector<std::vector<NodeId>> succs_;
  std::size_t edge_count_ = 0;
};

}  // namespace h2h

template <>
struct std::hash<h2h::NodeId> {
  [[nodiscard]] std::size_t operator()(const h2h::NodeId& id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};
