// G_sys container: the heterogeneous multi-FPGA system of the paper's §3.
// A star topology — every accelerator connects to the host node through
// Ethernet switches at BW_acc; the host's main memory is the default home of
// all weights and activations (zero-locality assumption of step 1).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "accel/accelerator_model.h"
#include "util/contracts.h"

namespace h2h {

/// Strong accelerator identifier (index into SystemConfig). The reserved
/// kHost value marks layers that live on the host (model Input nodes).
struct AccId {
  std::uint32_t value = kInvalid;

  static constexpr std::uint32_t kInvalid = 0xFFFFFFFFu;
  static constexpr std::uint32_t kHostValue = 0xFFFFFFFEu;

  [[nodiscard]] static constexpr AccId host() noexcept { return AccId{kHostValue}; }
  [[nodiscard]] constexpr bool valid() const noexcept { return value != kInvalid; }
  [[nodiscard]] constexpr bool is_host() const noexcept { return value == kHostValue; }
  [[nodiscard]] constexpr auto operator<=>(const AccId&) const noexcept = default;
};

/// The paper's Fig. 4 bandwidth settings for BW_acc.
enum class BandwidthSetting { LowMinus, Low, MidMinus, Mid, High };

/// 0.125 / 0.15 / 0.25 / 0.5 / 1.25 GB/s.
[[nodiscard]] double bandwidth_value(BandwidthSetting setting) noexcept;
[[nodiscard]] std::string_view to_string(BandwidthSetting setting) noexcept;
[[nodiscard]] std::span<const BandwidthSetting> all_bandwidth_settings() noexcept;

struct HostParams {
  /// System-wide accelerator-to-host bandwidth BW_acc, bytes/s.
  double bw_acc = 0.5e9;
  /// Optional per-accelerator idle power applied for the whole makespan
  /// (ablation knob; 0 reproduces the paper's transfer-dominated energy).
  double static_power_w = 0.0;
};

class SystemConfig {
 public:
  SystemConfig(std::vector<AcceleratorPtr> accelerators, HostParams host);

  /// The paper's evaluation system: all 12 Table-3 accelerators.
  [[nodiscard]] static SystemConfig standard(double bw_acc);
  [[nodiscard]] static SystemConfig standard(BandwidthSetting setting) {
    return standard(bandwidth_value(setting));
  }

  [[nodiscard]] std::size_t accelerator_count() const noexcept {
    return accs_.size();
  }
  [[nodiscard]] bool contains(AccId id) const noexcept {
    return id.valid() && !id.is_host() && id.value < accs_.size();
  }
  [[nodiscard]] const AcceleratorModel& accelerator(AccId id) const {
    H2H_EXPECTS(contains(id));
    return *accs_[id.value];
  }
  [[nodiscard]] const AcceleratorSpec& spec(AccId id) const {
    return accelerator(id).spec();
  }

  /// Effective host-link bandwidth for `id` (per-accelerator override or the
  /// system-wide BW_acc).
  [[nodiscard]] double bw_acc(AccId id) const {
    const double o = spec(id).bw_acc_override;
    return o > 0 ? o : host_.bw_acc;
  }

  [[nodiscard]] const HostParams& host() const noexcept { return host_; }

  /// Idle energy over a makespan: static_power_w × accelerator count ×
  /// latency. The single source of truth for the static-power term, shared
  /// by Simulator::simulate and IncrementalSchedule so the two accountings
  /// cannot drift.
  [[nodiscard]] double static_energy(double latency_s) const noexcept {
    return host_.static_power_w * static_cast<double>(accs_.size()) *
           latency_s;
  }

  /// Sweep helper: change the system-wide BW_acc in place.
  void set_bw_acc(double bw) {
    H2H_EXPECTS(bw > 0);
    host_.bw_acc = bw;
  }

  [[nodiscard]] std::vector<AccId> all_accelerators() const;
  /// Accelerators able to run `kind`, in catalog order.
  [[nodiscard]] std::vector<AccId> supporting(LayerKind kind) const;

 private:
  std::vector<AcceleratorPtr> accs_;
  HostParams host_;
};

}  // namespace h2h
