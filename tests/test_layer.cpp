#include <gtest/gtest.h>

#include "model/layer.h"

namespace h2h {
namespace {

TEST(Layer, ConvAccountingMatchesClosedForm) {
  // Conv <N=16, M=8, R=10, C=12, K=3, S=1>.
  Layer l{"c", LayerKind::Conv, ConvShape{16, 8, 10, 12, 3, 1}};
  EXPECT_EQ(l.macs(), 16ull * 8 * 10 * 12 * 3 * 3);
  EXPECT_EQ(l.param_count(), 16ull * 8 * 3 * 3 + 16);  // + bias
  EXPECT_EQ(l.out_elems(), 16ull * 10 * 12);
  EXPECT_EQ(l.out_bytes(2), 2 * 16ull * 10 * 12);
  EXPECT_EQ(l.light_ops(), 0u);
  EXPECT_TRUE(l.has_weights());
  EXPECT_TRUE(l.is_compute_layer());
}

TEST(Layer, Conv1dUsesRectangularKernel) {
  Layer l{"c1d", LayerKind::Conv, ConvShape{64, 16, 100, 1, 3, 1, /*kw=*/1}};
  EXPECT_EQ(l.macs(), 64ull * 16 * 100 * 1 * 3 * 1);
  EXPECT_EQ(l.param_count(), 64ull * 16 * 3 + 64);
}

TEST(Layer, GroupedConvDividesChannels) {
  Layer full{"g1", LayerKind::Conv, ConvShape{32, 32, 8, 8, 3, 1, 0, 1}};
  Layer grouped{"g4", LayerKind::Conv, ConvShape{32, 32, 8, 8, 3, 1, 0, 4}};
  EXPECT_EQ(grouped.macs() * 4, full.macs());
}

TEST(Layer, FcAccounting) {
  Layer l{"f", LayerKind::FullyConnected, FcShape{100, 10}};
  EXPECT_EQ(l.macs(), 1000u);
  EXPECT_EQ(l.param_count(), 1010u);
  EXPECT_EQ(l.out_elems(), 10u);
}

TEST(Layer, LstmAccountingStacked) {
  // Layer 0: in=32, layer 1: in=hidden. 4 gates, T timesteps.
  Layer l{"r", LayerKind::Lstm, LstmShape{32, 64, 2, 10}};
  const std::uint64_t per_step =
      4ull * (32 + 64) * 64 + 4ull * (64 + 64) * 64;
  EXPECT_EQ(l.macs(), per_step * 10);
  const std::uint64_t params =
      4ull * ((32 + 64) * 64 + 64) + 4ull * ((64 + 64) * 64 + 64);
  EXPECT_EQ(l.param_count(), params);
  EXPECT_EQ(l.out_elems(), 10ull * 64);  // full hidden sequence
}

TEST(Layer, PoolHasLightOpsOnly) {
  Layer l{"p", LayerKind::Pool, PoolShape{8, 4, 4, 2, 2}};
  EXPECT_EQ(l.macs(), 0u);
  EXPECT_EQ(l.light_ops(), 8ull * 4 * 4 * 2 * 2);
  EXPECT_EQ(l.param_count(), 0u);
  EXPECT_FALSE(l.has_weights());
}

TEST(Layer, EltwiseAndConcatAreWeightless) {
  Layer e{"e", LayerKind::Eltwise, EltwiseShape{8, 4, 4}};
  EXPECT_EQ(e.light_ops(), 8ull * 4 * 4);
  EXPECT_EQ(e.out_elems(), 8ull * 4 * 4);
  Layer c{"c", LayerKind::Concat, ConcatShape{24, 4, 4}};
  EXPECT_EQ(c.light_ops(), 0u);
  EXPECT_EQ(c.out_elems(), 24ull * 4 * 4);
  Layer in{"i", LayerKind::Input, InputShape{3, 8, 8}};
  EXPECT_EQ(in.out_elems(), 3ull * 8 * 8);
  EXPECT_EQ(in.macs(), 0u);
}

TEST(Layer, ProducerChannels) {
  EXPECT_EQ(producer_channels(
                Layer{"", LayerKind::Conv, ConvShape{16, 8, 4, 4, 3, 1}}),
            16u);
  EXPECT_EQ(producer_channels(
                Layer{"", LayerKind::Input, InputShape{3, 8, 8}}),
            3u);
  EXPECT_EQ(producer_channels(
                Layer{"", LayerKind::FullyConnected, FcShape{8, 4}}),
            0u);  // flat output
  EXPECT_EQ(producer_channels(
                Layer{"", LayerKind::Lstm, LstmShape{8, 4, 1, 2}}),
            0u);
}

TEST(Layer, KindNames) {
  EXPECT_EQ(to_string(LayerKind::Conv), "Conv");
  EXPECT_EQ(to_string(LayerKind::FullyConnected), "FC");
  EXPECT_EQ(to_string(LayerKind::Lstm), "LSTM");
  EXPECT_EQ(to_string(LayerKind::Input), "Input");
}

}  // namespace
}  // namespace h2h
