#include "accel/dataflow.h"

#include <algorithm>

#include "util/contracts.h"

namespace h2h {

std::string_view to_string(DataflowStyle style) noexcept {
  switch (style) {
    case DataflowStyle::ChannelParallel: return "channel-parallel";
    case DataflowStyle::FeatureMapParallel: return "fmap-parallel";
    case DataflowStyle::RowStationary: return "row-stationary";
    case DataflowStyle::Systolic: return "systolic";
    case DataflowStyle::Winograd: return "winograd";
    case DataflowStyle::MatrixEngine: return "matrix-engine";
    case DataflowStyle::LstmPipeline: return "lstm-pipeline";
    case DataflowStyle::GateParallel: return "gate-parallel";
  }
  return "?";
}

double alignment_fraction(std::uint64_t work, std::uint32_t tile) {
  H2H_EXPECTS(tile > 0);
  if (work == 0) return 1.0;
  const std::uint64_t folds = (work + tile - 1) / tile;
  return static_cast<double>(work) / (static_cast<double>(folds) * tile);
}

namespace {

/// Base affinity of a dataflow style for a layer kind, before alignment.
/// Encodes the specialization the paper's motivation describes: a style runs
/// its native kind near peak and foreign kinds (if at all) poorly.
double base_affinity(DataflowStyle style, LayerKind kind) {
  switch (style) {
    case DataflowStyle::ChannelParallel:
      if (kind == LayerKind::Conv) return 1.0;
      if (kind == LayerKind::FullyConnected) return 0.55;
      if (kind == LayerKind::Lstm) return 0.25;
      return 0.0;
    case DataflowStyle::FeatureMapParallel:
      if (kind == LayerKind::Conv) return 1.0;
      if (kind == LayerKind::FullyConnected) return 0.15;
      if (kind == LayerKind::Lstm) return 0.10;
      return 0.0;
    case DataflowStyle::RowStationary:
      if (kind == LayerKind::Conv) return 1.0;
      if (kind == LayerKind::FullyConnected) return 0.30;
      if (kind == LayerKind::Lstm) return 0.15;
      return 0.0;
    case DataflowStyle::Systolic:
      if (kind == LayerKind::Conv) return 1.0;
      if (kind == LayerKind::FullyConnected) return 0.60;
      if (kind == LayerKind::Lstm) return 0.30;
      return 0.0;
    case DataflowStyle::Winograd:
      // Handled specially for Conv (transform gain); foreign kinds are poor.
      if (kind == LayerKind::Conv) return 1.0;
      if (kind == LayerKind::FullyConnected) return 0.20;
      if (kind == LayerKind::Lstm) return 0.10;
      return 0.0;
    case DataflowStyle::MatrixEngine:
      if (kind == LayerKind::Conv) return 0.85;
      if (kind == LayerKind::FullyConnected) return 0.85;
      if (kind == LayerKind::Lstm) return 0.70;
      return 0.0;
    case DataflowStyle::LstmPipeline:
      if (kind == LayerKind::Lstm) return 0.92;
      if (kind == LayerKind::FullyConnected) return 0.80;
      if (kind == LayerKind::Conv) return 0.15;
      return 0.0;
    case DataflowStyle::GateParallel:
      if (kind == LayerKind::Lstm) return 0.85;
      if (kind == LayerKind::FullyConnected) return 0.40;
      if (kind == LayerKind::Conv) return 0.10;
      return 0.0;
  }
  return 0.0;
}

double conv_alignment(DataflowStyle style, const PeArray& pe, const ConvShape& s) {
  switch (style) {
    case DataflowStyle::ChannelParallel:
    case DataflowStyle::MatrixEngine:
      // Output-channel lanes x input-channel lanes.
      return alignment_fraction(s.out_channels, pe.dim_a) *
             alignment_fraction(s.in_channels / s.groups, pe.dim_b);
    case DataflowStyle::FeatureMapParallel:
      // Output rows x output cols.
      return alignment_fraction(s.out_h, pe.dim_a) *
             alignment_fraction(s.out_w, pe.dim_b);
    case DataflowStyle::RowStationary:
      // Filter rows x output rows.
      return alignment_fraction(s.kernel, pe.dim_a) *
             alignment_fraction(s.out_h, pe.dim_b);
    case DataflowStyle::Systolic:
      // GEMM view: M = out_channels, K = in_channels*k*k folded on rows/cols.
      return alignment_fraction(s.out_channels, pe.dim_a) *
             alignment_fraction(
                 static_cast<std::uint64_t>(s.in_channels) / s.groups *
                     s.kernel * s.effective_kernel_w(),
                 pe.dim_b);
    case DataflowStyle::Winograd: {
      const bool native = s.kernel == 3 && s.effective_kernel_w() == 3 &&
                          s.stride == 1;
      const double align = alignment_fraction(s.out_channels, pe.dim_a) *
                           alignment_fraction(s.in_channels / s.groups, pe.dim_b);
      // F(2x2, 3x3) Winograd: 2.25x effective-MAC gain on native shapes;
      // non-native shapes fall back to a direct path at reduced efficiency.
      return native ? align * 2.25 : align * 0.40;
    }
    case DataflowStyle::LstmPipeline:
    case DataflowStyle::GateParallel:
      // Foreign territory: treat the conv as a skinny GEMM on the pipeline.
      return alignment_fraction(s.out_channels, pe.dim_a * pe.dim_b);
  }
  return 1.0;
}

double fc_alignment(const PeArray& pe, const FcShape& s) {
  return alignment_fraction(s.out_features, pe.dim_a) *
         alignment_fraction(s.in_features, pe.dim_b);
}

double lstm_alignment(DataflowStyle style, const PeArray& pe, const LstmShape& s) {
  switch (style) {
    case DataflowStyle::GateParallel:
      // Four gate engines, hidden units folded on each.
      return alignment_fraction(s.hidden_size, pe.size() / 4 == 0
                                                   ? 1u
                                                   : static_cast<std::uint32_t>(
                                                         pe.size() / 4));
    default:
      // Mat-vec view: hidden rows x (in+hidden) cols.
      return alignment_fraction(s.hidden_size, pe.dim_a) *
             alignment_fraction(s.in_size + s.hidden_size, pe.dim_b);
  }
}

}  // namespace

double utilization(DataflowStyle style, const PeArray& pe, const Layer& layer) {
  const double base = base_affinity(style, layer.kind);
  if (base == 0.0) return 0.0;
  double align = 1.0;
  switch (layer.kind) {
    case LayerKind::Conv:
      align = conv_alignment(style, pe, std::get<ConvShape>(layer.shape));
      break;
    case LayerKind::FullyConnected:
      align = fc_alignment(pe, std::get<FcShape>(layer.shape));
      break;
    case LayerKind::Lstm:
      align = lstm_alignment(style, pe, std::get<LstmShape>(layer.shape));
      break;
    default:
      return 0.0;
  }
  // Winograd's align already folds the base (1.0) and the transform gain.
  const double util = base * align;
  H2H_ENSURES(util > 0.0);
  return std::min(util, 2.25);
}

}  // namespace h2h
