// Legacy-facade pins. This file is the one sanctioned user of the
// deprecated H2HMapper (compiled only when H2H_ENABLE_DEPRECATED is ON);
// it keeps the shim honest until the facade is removed.
#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif

#include <gtest/gtest.h>

#include "core/h2h_mapper.h"
#include "model/zoo.h"
#include "test_helpers.h"
#include "util/error.h"

namespace h2h {
namespace {

TEST(H2HMapper, MatchesPlanOnceBitForBit) {
  const ModelGraph m = testing::make_mini_mmmt_model();
  const SystemConfig sys = testing::make_mini_hetero_system(0.125e9);
  const H2HResult legacy = H2HMapper(m, sys).run();
  const PlanResponse once = plan_once(m, sys);
  ASSERT_EQ(legacy.steps.size(), once.steps.size());
  for (std::size_t i = 0; i < legacy.steps.size(); ++i) {
    EXPECT_EQ(legacy.steps[i].name, once.steps[i].name);
    // Deliberate EXPECT_EQ on doubles: the two paths must run the exact
    // same computation, not merely agree approximately.
    EXPECT_EQ(legacy.steps[i].result.latency, once.steps[i].result.latency);
    EXPECT_EQ(legacy.steps[i].result.energy.total(),
              once.steps[i].result.energy.total());
  }
  for (const LayerId id : m.all_layers()) {
    EXPECT_EQ(legacy.mapping.acc_of(id), once.mapping.acc_of(id));
    EXPECT_EQ(legacy.plan.pinned(id), once.plan.pinned(id));
  }
}

TEST(H2HMapper, PipelineProducesFourMonotoneSteps) {
  const ModelGraph m = testing::make_mini_mmmt_model();
  const SystemConfig sys = testing::make_mini_hetero_system(0.125e9);
  const H2HMapper mapper(m, sys);
  const H2HResult r = mapper.run();

  ASSERT_EQ(r.steps.size(), 4u);
  // Each locality step can only shorten layer durations; FIFO list
  // scheduling makes finish times monotone in durations.
  EXPECT_LE(r.steps[1].result.latency, r.steps[0].result.latency);
  EXPECT_LE(r.steps[2].result.latency, r.steps[1].result.latency);
  EXPECT_LE(r.steps[3].result.latency, r.steps[2].result.latency);
  EXPECT_NO_THROW(r.mapping.validate(m, sys));
  EXPECT_GT(r.final_result().energy.total(), 0.0);
  EXPECT_GE(r.search_seconds, 0.0);
}

TEST(H2HMapper, BaselineAccessorsPointAtStepTwo) {
  const ModelGraph m = testing::make_mini_mmmt_model();
  const SystemConfig sys = testing::make_mini_hetero_system(0.125e9);
  const H2HResult r = H2HMapper(m, sys).run();
  EXPECT_DOUBLE_EQ(r.baseline_result().latency, r.steps[1].result.latency);
  EXPECT_DOUBLE_EQ(r.latency_vs_baseline(),
                   r.final_result().latency / r.steps[1].result.latency);
  EXPECT_LE(r.latency_vs_baseline(), 1.0);
}

TEST(H2HMapper, RemappingCanBeDisabled) {
  const ModelGraph m = testing::make_mini_mmmt_model();
  const SystemConfig sys = testing::make_mini_hetero_system();
  H2HOptions opts;
  opts.run_remapping = false;
  const H2HResult r = H2HMapper(m, sys, opts).run();
  EXPECT_EQ(r.steps.size(), 3u);
  EXPECT_EQ(r.remap_stats.accepted, 0u);
}

TEST(H2HMapper, RejectsInvalidModels) {
  ModelGraph empty("empty");
  const SystemConfig sys = testing::make_mini_hetero_system();
  EXPECT_THROW((H2HMapper{empty, sys}), ConfigError);
}

TEST(H2HMapper, DeterministicEndToEnd) {
  const ModelGraph m = make_model(ZooModel::MoCap);
  const SystemConfig sys = SystemConfig::standard(BandwidthSetting::LowMinus);
  const H2HResult a = H2HMapper(m, sys).run();
  const H2HResult b = H2HMapper(m, sys).run();
  EXPECT_DOUBLE_EQ(a.final_result().latency, b.final_result().latency);
  for (const LayerId id : m.all_layers())
    EXPECT_EQ(a.mapping.acc_of(id), b.mapping.acc_of(id));
}

// The headline experiment invariants on the real zoo + standard system.
class ZooPipelineTest : public ::testing::TestWithParam<ZooModel> {};

TEST_P(ZooPipelineTest, StepwiseMonotoneAtLowBandwidth) {
  const ModelGraph m = make_model(GetParam());
  const SystemConfig sys = SystemConfig::standard(BandwidthSetting::LowMinus);
  const H2HResult r = H2HMapper(m, sys).run();
  ASSERT_EQ(r.steps.size(), 4u);
  for (std::size_t i = 1; i < 4; ++i)
    EXPECT_LE(r.steps[i].result.latency, r.steps[i - 1].result.latency)
        << "step " << i;
  // The paper's headline: H2H beats the computation-prioritized baseline
  // when bandwidth-bound (15-74% reduction; we accept any real improvement).
  EXPECT_LT(r.latency_vs_baseline(), 0.90);
  EXPECT_LT(r.energy_vs_baseline(), 1.0);
  // Fig. 5a direction: the computation share rises after H2H. For LSTM
  // models whose *baseline* strands a layer on a re-fetch-bound engine, the
  // baseline's compute side is artificially inflated, so the ratio check is
  // asserted on absolute host-communication time instead.
  if (GetParam() == ZooModel::CnnLstm || GetParam() == ZooModel::MoCap) {
    EXPECT_LE(r.final_result().host_time,
              r.baseline_result().host_time * 1.05);
  } else {
    EXPECT_GT(r.final_result().comp_ratio(), r.baseline_result().comp_ratio());
  }
}

TEST_P(ZooPipelineTest, SearchTimeUnderOneSecond) {
  const ModelGraph m = make_model(GetParam());
  const SystemConfig sys = SystemConfig::standard(BandwidthSetting::Mid);
  const H2HResult r = H2HMapper(m, sys).run();
  // Fig. 5(b): "consistently low" (relaxed in unoptimized builds).
  EXPECT_LT(r.search_seconds, testing::search_time_budget());
}

INSTANTIATE_TEST_SUITE_P(AllModels, ZooPipelineTest,
                         ::testing::Values(ZooModel::VLocNet,
                                           ZooModel::CasiaSurf, ZooModel::Vfs,
                                           ZooModel::FaceBag, ZooModel::CnnLstm,
                                           ZooModel::MoCap),
                         [](const ::testing::TestParamInfo<ZooModel>& i) {
                           std::string name(zoo_info(i.param).key);
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

TEST(H2HMapper, ReductionShrinksWithBandwidth) {
  // Fig. 4 trend: higher BW_acc -> smaller relative H2H gain.
  const ModelGraph m = make_model(ZooModel::CasiaSurf);
  const SystemConfig low = SystemConfig::standard(BandwidthSetting::LowMinus);
  const SystemConfig high = SystemConfig::standard(BandwidthSetting::High);
  const double gain_low = 1.0 - H2HMapper(m, low).run().latency_vs_baseline();
  const double gain_high = 1.0 - H2HMapper(m, high).run().latency_vs_baseline();
  EXPECT_GT(gain_low, gain_high);
}

}  // namespace
}  // namespace h2h
