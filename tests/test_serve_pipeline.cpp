// End-to-end serve loop (serve/server.h): jsonl in, jsonl out, errors
// answered in-band, multi-threaded output identical to single-threaded,
// tenants requests sharing the loop, and graceful shutdown on signals.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "serve/server.h"
#include "test_helpers.h"
#include "util/str.h"

#if defined(__unix__) || defined(__APPLE__)
#define H2H_TEST_HAS_SIGNALS 1
#include <arpa/inet.h>
#include <ext/stdio_sync_filebuf.h>
#include <netinet/in.h>
#include <pthread.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <mutex>
#include <thread>
#else
#define H2H_TEST_HAS_SIGNALS 0
#endif

namespace h2h {
namespace {

/// A request line for `model` with the suite's search budget applied, so
/// sanitizer runs stay inside the tier-1 time budget.
[[nodiscard]] std::string request_line(const std::string& model,
                                       double bw_gbps,
                                       const std::string& id = {}) {
  std::string line = R"({"schema_version":1,)";
  if (!id.empty()) line += strformat(R"("id":"%s",)", id.c_str());
  line += strformat(
      R"("model":"%s","bw_gbps":%g,)"
      R"("options":{"time_budget_s":%g},"emit":{"timing":false}})",
      model.c_str(), bw_gbps, testing::search_time_budget());
  return line;
}

[[nodiscard]] std::vector<std::string> run_serve(
    const std::string& input, const serve::ServeOptions& options,
    serve::ServeStats* stats_out = nullptr) {
  std::istringstream in(input);
  std::ostringstream out;
  const serve::ServeStats stats = serve::serve_jsonl(in, out, options);
  if (stats_out != nullptr) *stats_out = stats;
  std::vector<std::string> lines;
  std::istringstream split(out.str());
  for (std::string line; std::getline(split, line);) lines.push_back(line);
  return lines;
}

TEST(ServePipeline, AnswersEveryLineInOrderAndSurvivesErrors) {
  const std::string input = request_line("mocap", 0.5, "a") + "\n" +
                            "{not json\n" +
                            R"({"schema_version":1,"model":"nope"})" + "\n" +
                            "\n" +  // empty line: skipped, not answered
                            request_line("mocap", 0.5, "b") + "\n";
  serve::ServeStats stats;
  const std::vector<std::string> lines = run_serve(input, {}, &stats);

  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(stats.requests, 4u);
  EXPECT_EQ(stats.ok, 2u);
  EXPECT_EQ(stats.errors, 2u);

  EXPECT_NE(lines[0].find(R"("id":"a")"), std::string::npos);
  EXPECT_NE(lines[0].find(R"("ok":true)"), std::string::npos);
  EXPECT_NE(lines[1].find(R"("ok":false)"), std::string::npos);
  EXPECT_NE(lines[1].find("parse_error"), std::string::npos);
  EXPECT_NE(lines[2].find("unknown_model"), std::string::npos);
  EXPECT_NE(lines[3].find(R"("id":"b")"), std::string::npos);
  EXPECT_NE(lines[3].find(R"("ok":true)"), std::string::npos);

  // Same scenario planned twice: the warm response's payload is identical
  // to the cold one's apart from the echoed id (timing suppressed).
  std::string a = lines[0], b = lines[3];
  const auto strip_id = [](std::string& s, const std::string& id) {
    const std::string needle = strformat(R"("id":"%s",)", id.c_str());
    const std::size_t at = s.find(needle);
    ASSERT_NE(at, std::string::npos) << s;
    s.erase(at, needle.size());
  };
  strip_id(a, "a");
  strip_id(b, "b");
  EXPECT_EQ(a, b);
}

TEST(ServePipeline, MultiThreadOutputIsByteIdenticalToSingleThread) {
  // A mixed batch: cold and warm requests over two bandwidths, plus error
  // lines wedged between them. With timing suppressed the response payloads
  // are deterministic, so worker scheduling must not be observable.
  std::string input;
  input += request_line("mocap", 0.5, "r0") + "\n";
  input += request_line("mocap", 0.125, "r1") + "\n";
  input += "{broken\n";
  input += request_line("mocap", 0.5, "r3") + "\n";
  input += R"({"schema_version":9,"model":"mocap"})" + std::string("\n");
  input += request_line("mocap", 0.125, "r5") + "\n";
  input += request_line("mocap", 0.5, "r6") + "\n";

  serve::ServeOptions serial;
  serial.threads = 1;
  serve::ServeOptions pooled;
  pooled.threads = 4;

  const std::vector<std::string> want = run_serve(input, serial);
  const std::vector<std::string> got = run_serve(input, pooled);
  ASSERT_EQ(want.size(), 7u);
  EXPECT_EQ(want, got);
}

TEST(ServePipeline, TenantsRequestsShareTheLoopDeterministically) {
  // Tenants and single-model lines interleave on one loop; tenant errors
  // are answered in-band; and because tenants responses carry no timing,
  // worker scheduling must not be observable in the bytes.
  std::string input;
  input += request_line("mocap", 0.5, "s0") + "\n";
  input +=
      R"({"schema_version":1,"id":"t0","tenants":[)"
      R"({"name":"a","model":"mocap","slo_s":0.5},)"
      R"({"name":"b","model":"mocap"}],)"
      R"("options":{"remap":false},"max_rounds":1,"steal_round":false})"
      "\n";
  input +=
      R"({"schema_version":1,"id":"t1","tenants":[)"
      R"({"name":"a","model":"mocap","caps":"0x100"}]})"
      "\n";
  input +=
      R"({"schema_version":1,"id":"t2","tenants":[)"
      R"({"name":"a","model":"mocap","slo_s":1e-9}],)"
      R"("options":{"remap":false},"require_slos":true})"
      "\n";
  input += request_line("mocap", 0.5, "s1") + "\n";

  serve::ServeOptions serial;
  serial.threads = 1;
  serve::ServeStats stats;
  const std::vector<std::string> lines = run_serve(input, serial, &stats);
  ASSERT_EQ(lines.size(), 5u);
  EXPECT_EQ(stats.ok, 3u);
  EXPECT_EQ(stats.errors, 2u);

  EXPECT_NE(lines[1].find(R"("id":"t0")"), std::string::npos);
  EXPECT_NE(lines[1].find(R"("ok":true)"), std::string::npos);
  EXPECT_NE(lines[1].find(R"("all_slos_met":true)"), std::string::npos);
  EXPECT_NE(lines[2].find("infeasible_capability"), std::string::npos);
  EXPECT_NE(lines[3].find("slo_violated"), std::string::npos);
  EXPECT_NE(lines[3].find(R"("ok":false)"), std::string::npos);
  EXPECT_NE(lines[4].find(R"("id":"s1")"), std::string::npos);

  serve::ServeOptions pooled;
  pooled.threads = 4;
  EXPECT_EQ(lines, run_serve(input, pooled));
}

#if H2H_TEST_HAS_SIGNALS

TEST(ServePipeline, ShutdownSignalDrainsInFlightAndReturns) {
  // A pipe keeps the reader genuinely blocked (an istringstream would just
  // hit EOF), so the SIGTERM has a blocking read to interrupt — exactly
  // the `h2h serve` stdin situation. The stream goes through glibc stdio
  // (stdio_sync_filebuf, std::cin's own buffer class) because fd-level
  // libstdc++ filebufs retry EINTR internally and would never unblock.
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);

  // Pre-set SIGTERM to ignore: the kill loop below may fire before
  // serve_jsonl installs its handler, and the default action would kill
  // the test process.
  struct sigaction ignore = {};
  ignore.sa_handler = SIG_IGN;
  sigemptyset(&ignore.sa_mask);
  struct sigaction old = {};
  ASSERT_EQ(::sigaction(SIGTERM, &ignore, &old), 0);

  std::FILE* read_file = ::fdopen(fds[0], "r");
  ASSERT_NE(read_file, nullptr);
  __gnu_cxx::stdio_sync_filebuf<char> inbuf(read_file);
  std::istream in(&inbuf);
  std::ostringstream out;
  serve::ServeOptions options;
  options.handle_signals = true;

  serve::ServeStats stats;
  std::atomic<bool> done{false};
  std::thread server([&] {
    stats = serve::serve_jsonl(in, out, options);
    done.store(true);
  });

  // One complete request the drain must answer, then a line the signal
  // cuts mid-byte — it must be dropped, not answered as a parse error.
  const std::string req = request_line("mocap", 0.5, "pre") + "\n";
  ASSERT_EQ(::write(fds[1], req.data(), req.size()),
            static_cast<ssize_t>(req.size()));
  const std::string partial = R"({"schema_version":1,"model":"mo)";
  ASSERT_EQ(::write(fds[1], partial.data(), partial.size()),
            static_cast<ssize_t>(partial.size()));

  // Keep signalling until one lands in the blocking read (delivery between
  // reads is absorbed by the handler and simply retried).
  while (!done.load()) {
    ::pthread_kill(server.native_handle(), SIGTERM);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  server.join();
  ::close(fds[1]);
  std::fclose(read_file);  // also closes fds[0]
  ASSERT_EQ(::sigaction(SIGTERM, &old, nullptr), 0);

  // The complete request was served; the half-line vanished.
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.ok, 1u);
  EXPECT_EQ(stats.errors, 0u);
  std::vector<std::string> lines;
  std::istringstream split(out.str());
  for (std::string line; std::getline(split, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find(R"("id":"pre")"), std::string::npos);
  EXPECT_NE(lines[0].find(R"("ok":true)"), std::string::npos);
}

/// Thread-safe diag sink: the test polls it for the announced port while
/// serve_tcp keeps writing connection summaries from its own thread.
class SyncDiagBuf : public std::streambuf {
 public:
  [[nodiscard]] std::string str() const {
    const std::scoped_lock lock(mu_);
    return text_;
  }

 protected:
  int_type overflow(int_type ch) override {
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
      const std::scoped_lock lock(mu_);
      text_ += traits_type::to_char_type(ch);
    }
    return traits_type::not_eof(ch);
  }
  std::streamsize xsputn(const char* p, std::streamsize n) override {
    const std::scoped_lock lock(mu_);
    text_.append(p, static_cast<std::size_t>(n));
    return n;
  }

 private:
  mutable std::mutex mu_;
  std::string text_;
};

[[nodiscard]] int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  timeval timeout{};
  timeout.tv_sec = 5;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

TEST(ServePipeline, ClientDisconnectMidResponseDoesNotKillServer) {
  // A client that sends a burst of requests and vanishes without reading a
  // byte forces the server's response writes onto a dead socket — without
  // SIGPIPE suppression that kills the whole process, and without EPIPE
  // handling it wedges the connection loop. The server must finish that
  // connection quietly and serve the next client normally.
  SyncDiagBuf diag_buf;
  std::ostream diag(&diag_buf);
  serve::TcpOptions options;
  options.max_connections = 2;
  options.serve.threads = 1;

  serve::TcpStats tcp_stats;
  int rc = -1;
  std::thread server(
      [&] { rc = serve::serve_tcp(options, diag, &tcp_stats); });

  std::uint16_t port = 0;
  for (int tries = 0; tries < 1000 && port == 0; ++tries) {
    const std::string text = diag_buf.str();
    const std::size_t at = text.find("127.0.0.1:");
    if (at != std::string::npos && text.find('\n', at) != std::string::npos) {
      port = static_cast<std::uint16_t>(std::stoul(text.substr(at + 10)));
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  ASSERT_NE(port, 0) << "server never announced its port";

  {
    // Connection 1: burst enough requests that the unread responses
    // overflow the loopback socket buffers, then slam the connection shut
    // (close with unread data sends RST) — mid-write failure guaranteed.
    const int fd = connect_loopback(port);
    ASSERT_GE(fd, 0);
    std::string burst;
    for (int i = 0; i < 64; ++i) {
      burst += request_line("mocap", 0.5, strformat("burst%d", i)) + "\n";
    }
    ASSERT_EQ(::write(fd, burst.data(), burst.size()),
              static_cast<ssize_t>(burst.size()));
    // Give the server a moment to start writing into the doomed socket.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ::close(fd);
  }

  {
    // Connection 2: a normal request must still be answered.
    const int fd = connect_loopback(port);
    ASSERT_GE(fd, 0);
    const std::string req = request_line("mocap", 0.5, "alive") + "\n";
    ASSERT_EQ(::write(fd, req.data(), req.size()),
              static_cast<ssize_t>(req.size()));
    std::string response;
    char c = 0;
    while (response.find('\n') == std::string::npos &&
           ::read(fd, &c, 1) == 1) {
      response += c;
    }
    ::close(fd);
    EXPECT_NE(response.find(R"("id":"alive")"), std::string::npos);
    EXPECT_NE(response.find(R"("ok":true)"), std::string::npos);
  }

  server.join();
  EXPECT_EQ(rc, 0);
  EXPECT_EQ(tcp_stats.connections, 2u);
  EXPECT_EQ(tcp_stats.accept_retries, 0u);
}

#endif  // H2H_TEST_HAS_SIGNALS

TEST(ServePipeline, OversizedLinesAreAnsweredNotParsed) {
  serve::ServeOptions options;
  options.max_line_bytes = 128;
  const std::string big(4096, 'x');
  const std::string input =
      big + "\n" + request_line("mocap", 0.5, "after") + "\n";
  serve::ServeStats stats;
  const std::vector<std::string> lines = run_serve(input, options, &stats);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("parse_error"), std::string::npos);
  EXPECT_NE(lines[0].find("128 bytes"), std::string::npos);
  EXPECT_NE(lines[1].find(R"("ok":true)"), std::string::npos);
  EXPECT_EQ(stats.errors, 1u);
  EXPECT_EQ(stats.ok, 1u);
}

}  // namespace
}  // namespace h2h
