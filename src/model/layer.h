// DNN layer intermediate representation.
//
// The paper (Table 1) parameterizes three accelerated layer families:
//   Conv <N, M, R, C, K, S>  (ofm channels, ifm channels, ofm h, ofm w,
//                             kernel, stride)
//   FC   <N, M>              (in_features, out_features)
//   LSTM <N, H, L>           (in_size, hidden_size, layers)
// plus the structural layers MMMT graphs need (Input, Pool, Eltwise add,
// Concat). BatchNorm/ReLU are folded into their producer Conv, the common
// deployment practice for the surveyed FPGA accelerators.
//
// LSTM additionally carries seq_len (timesteps); the paper's Table 1 omits
// it but every LSTM cost model needs it — documented substitution.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "util/units.h"

namespace h2h {

enum class LayerKind : std::uint8_t {
  Input,
  Conv,
  FullyConnected,
  Lstm,
  Pool,
  Eltwise,  // element-wise add (residual shortcut)
  Concat,
};

[[nodiscard]] std::string_view to_string(LayerKind kind) noexcept;

/// Conv <N, M, R, C, K, S> per Table 1. `kernel_w` supports the 1-D
/// convolutions of text backbones (VD-CNN): a k x 1 kernel sets kernel_w=1.
struct ConvShape {
  std::uint32_t out_channels = 0;  // N
  std::uint32_t in_channels = 0;   // M
  std::uint32_t out_h = 0;         // R
  std::uint32_t out_w = 0;         // C
  std::uint32_t kernel = 0;        // K
  std::uint32_t stride = 1;        // S
  std::uint32_t kernel_w = 0;      // 0 => square kernel (== kernel)
  std::uint32_t groups = 1;

  [[nodiscard]] std::uint32_t effective_kernel_w() const noexcept {
    return kernel_w == 0 ? kernel : kernel_w;
  }
};

/// FC <in_features, out_features> per Table 1.
struct FcShape {
  std::uint32_t in_features = 0;
  std::uint32_t out_features = 0;
};

/// LSTM <N, H, L> per Table 1, plus timesteps.
struct LstmShape {
  std::uint32_t in_size = 0;      // N
  std::uint32_t hidden_size = 0;  // H
  std::uint32_t layers = 1;       // L
  std::uint32_t seq_len = 1;      // timesteps (see header comment)
};

struct PoolShape {
  std::uint32_t channels = 0;
  std::uint32_t out_h = 0;
  std::uint32_t out_w = 0;
  std::uint32_t kernel = 0;
  std::uint32_t stride = 1;
};

struct EltwiseShape {
  std::uint32_t channels = 0;
  std::uint32_t h = 0;
  std::uint32_t w = 0;
};

struct ConcatShape {
  std::uint32_t channels = 0;  // sum of input channels
  std::uint32_t h = 0;
  std::uint32_t w = 0;
};

struct InputShape {
  std::uint32_t channels = 0;
  std::uint32_t h = 0;
  std::uint32_t w = 0;
};

using LayerShape = std::variant<InputShape, ConvShape, FcShape, LstmShape,
                                PoolShape, EltwiseShape, ConcatShape>;

/// One node of G_model.
struct Layer {
  std::string name;
  LayerKind kind = LayerKind::Input;
  LayerShape shape = InputShape{};
  /// MMMT bookkeeping: which modality backbone this layer belongs to
  /// (0 = shared/fusion trunk). Drives the dynamic-modality extension.
  std::uint32_t modality = 0;
  /// Capability bits this layer demands of its accelerator
  /// (accel/capability.h): only accelerators with
  /// `(have & required_caps) == required_caps` are placement candidates.
  /// 0 (the default) imposes nothing — every pre-capability code path is
  /// bit-identical. Stamped per tenant by the co-mapper (src/tenant/).
  std::uint32_t required_caps = 0;

  /// Multiply-accumulate count (the compute cost driver for Conv/FC/LSTM).
  [[nodiscard]] std::uint64_t macs() const noexcept;

  /// Lightweight vector ops (pool comparisons, eltwise adds) that run on the
  /// PE array at one op per PE per cycle. Zero for Conv/FC/LSTM (subsumed by
  /// macs) and for Input/Concat (pure data movement).
  [[nodiscard]] std::uint64_t light_ops() const noexcept;

  /// Number of weight parameters (including biases).
  [[nodiscard]] std::uint64_t param_count() const noexcept;

  /// Weight footprint for a given element size.
  [[nodiscard]] Bytes weight_bytes(std::uint32_t dtype_bytes) const noexcept {
    return param_count() * dtype_bytes;
  }

  /// Elements in this layer's output tensor.
  [[nodiscard]] std::uint64_t out_elems() const noexcept;

  /// Output tensor footprint for a given element size.
  [[nodiscard]] Bytes out_bytes(std::uint32_t dtype_bytes) const noexcept {
    return out_elems() * dtype_bytes;
  }

  /// True for kinds that carry trainable weights.
  [[nodiscard]] bool has_weights() const noexcept {
    return kind == LayerKind::Conv || kind == LayerKind::FullyConnected ||
           kind == LayerKind::Lstm;
  }

  /// True for the kinds the paper's Table 1 parameterizes (the "real"
  /// layers counted in e.g. "VLocNet consists of 141 layers").
  [[nodiscard]] bool is_compute_layer() const noexcept { return has_weights(); }
};

/// Channel count of a layer's output when it has C x H x W structure
/// (Input/Conv/Pool/Eltwise/Concat); 0 for FC/LSTM whose outputs are flat.
[[nodiscard]] std::uint64_t producer_channels(const Layer& l) noexcept;

}  // namespace h2h
