// Shared fixtures for the test suite: deterministic miniature models and
// systems with numbers simple enough to verify by hand, plus random DAG and
// random system generators for property sweeps.
#pragma once

#include <cstdint>
#include <cstdlib>

#include "h2h.h"
#include "util/rng.h"

namespace h2h::testing {

/// Wall-clock budget for the "search time stays under one second" family of
/// assertions (Fig. 5(b)). The paper bound applies to optimized binaries;
/// unoptimized and sanitizer builds run the search many times slower, so
/// they get a proportionally relaxed budget to stay deterministic. The
/// H2H_SEARCH_TIME_BUDGET_S environment variable overrides both (CI sets it
/// on shared runners, where parallel ctest contends for cores).
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define H2H_TESTING_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define H2H_TESTING_SANITIZED 1
#endif
#endif

[[nodiscard]] inline double search_time_budget() noexcept {
  if (const char* env = std::getenv("H2H_SEARCH_TIME_BUDGET_S")) {
    if (const double v = std::atof(env); v > 0.0) return v;
  }
  // Ratcheted after the pruned step-1 enumeration (lex-DFS + bound prune +
  // batched sums): the worst case measured locally (zoo x all bandwidths,
  // bench_fig5b_search_time) is ~10 ms optimized (10x headroom). CI
  // additionally enforces the optimized bound in a dedicated serial Release
  // ctest invocation.
#if defined(H2H_TESTING_SANITIZED) || !defined(NDEBUG)
  return 15.0;
#else
  return 0.1;
#endif
}

/// A three-layer linear model: input(1KiB) -> convA -> convB -> fcC.
/// All sizes chosen for easy hand-calculation: 118784 total MACs
/// (73728 + 36864 + 8192) and, on one simple_spec accelerator with zero
/// locality, 29632 host-link bytes. test_fixture_smoke.cpp asserts these
/// and the resulting end-to-end latency/energy.
[[nodiscard]] ModelGraph make_chain_model();

/// A diamond: input -> a -> {b, c} -> add(d) -> fc(e).
/// Hand numbers: 1515520 total MACs (294912 + 2*589824 + 40960) plus 4096
/// eltwise adds; 171400 host-link bytes on one simple_spec accelerator
/// with zero locality (asserted in test_fixture_smoke.cpp).
[[nodiscard]] ModelGraph make_diamond_model();

/// Two-modality mini MMMT model with a fusion concat and two task heads
/// (modality tags 1 and 2 on the branches).
/// Hand numbers: 489728 total MACs (conv 110592 + 294912, LSTM 81920,
/// FCs 2048 + 2*128) plus 10240 pooling ops; 59104 host-link bytes on one
/// simple_spec accelerator with zero locality (test_fixture_smoke.cpp).
[[nodiscard]] ModelGraph make_mini_mmmt_model();

/// A spec with round numbers: 100 MACs/cycle at 1 GHz (1e11 MAC/s), 10 GB/s
/// local DRAM, `dram_capacity` local DRAM, matrix-engine dataflow, supports
/// everything. Energy: 1 pJ/MAC, 0.1 nJ/B DRAM, 1 W link.
[[nodiscard]] AcceleratorSpec simple_spec(const std::string& name,
                                          Bytes dram_capacity);

/// System of `n` identical simple_spec accelerators at `bw_acc` (default
/// 1 GB/s host links).
[[nodiscard]] SystemConfig make_uniform_system(std::size_t n,
                                               double bw_acc = 1e9,
                                               Bytes dram_capacity = gib(1));

/// A 3-accelerator heterogeneous mini system: a fast conv-only design, a
/// generic conv/fc/lstm engine, and an LSTM/FC specialist, with distinct
/// throughputs so computation-prioritized choices are predictable.
[[nodiscard]] SystemConfig make_mini_hetero_system(double bw_acc = 1e9);

/// Random layered DAG with Conv/FC/LSTM/Pool/Eltwise/Concat nodes: always a
/// valid ModelGraph (shapes agree). Node count in [4, 40].
[[nodiscard]] ModelGraph make_random_model(Rng& rng);

/// Random heterogeneous system of 2..8 accelerators with randomized specs
/// (every layer kind supported by at least one accelerator).
[[nodiscard]] SystemConfig make_random_system(Rng& rng);

}  // namespace h2h::testing
