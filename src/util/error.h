// Error types for the h2h library.
//
// Policy (per DESIGN.md): contract violations (bugs) throw ContractViolation;
// invalid user configuration (bad model graphs, impossible mappings, malformed
// specs) throws ConfigError. Algorithms themselves never use exceptions for
// control flow.
#pragma once

#include <stdexcept>
#include <string>

namespace h2h {

/// A precondition/postcondition/invariant failed; indicates a bug in the
/// calling code (or in the library itself), not bad user input.
class ContractViolation final : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

/// User-supplied configuration is invalid (e.g. a model layer that no
/// accelerator in the system supports, a negative bandwidth, a cyclic graph).
class ConfigError final : public std::runtime_error {
 public:
  explicit ConfigError(const std::string& what) : std::runtime_error(what) {}
};

/// A layer's required-capability mask (Layer::required_caps) excludes every
/// accelerator that could otherwise run it: the request is well-formed but
/// unplaceable on this system. Distinct from ConfigError so the serve layer
/// can answer with the dedicated `infeasible_capability` wire code.
class CapabilityError final : public std::runtime_error {
 public:
  explicit CapabilityError(const std::string& what)
      : std::runtime_error(what) {}
};

}  // namespace h2h
