// MAESTRO-style tiling/reuse analysis: how many bytes actually cross an
// accelerator's local DRAM interface while a layer computes, given the
// design's on-chip buffer budget.
//
// The paper builds its infrastructure on MAESTRO, whose essence is
// data-reuse accounting: when a working set does not fit on chip, operands
// are re-fetched per tile. We model the dominant effects:
//  - Conv: outputs are processed in square spatial tiles sized so one tile's
//    IFM+OFM working set fits the activation buffer; weights stream once if
//    they fit the weight buffer, once per tile otherwise.
//  - FC: the weight matrix streams exactly once (no reuse at batch 1);
//    mat-vec is local-DRAM-bound when weights exceed the buffer.
//  - LSTM: gate matrices are re-read every timestep when they do not fit on
//    chip — the classic recurrent-inference memory wall (ESE's motivation).
//  - Pool/Eltwise/Concat: pure streaming, in + out.
//
// The resulting stream time folds into compute as a roofline:
//    t_compute = max(mac_time, dram_traffic / bw_dram)
// (first-touch transfers to/from the host remain the simulator's business;
// this models on-accelerator re-buffering only).
#pragma once

#include <cstdint>

#include "model/layer.h"

namespace h2h {

/// On-chip SRAM budgets. Zero disables the memory model for that class
/// (pure-compute accelerator model).
struct OnChipBuffers {
  Bytes weight_buffer = 0;
  Bytes act_buffer = 0;

  [[nodiscard]] constexpr bool enabled() const noexcept {
    return weight_buffer != 0 || act_buffer != 0;
  }
};

struct TileAnalysis {
  Bytes dram_traffic = 0;      // bytes through local DRAM during compute
  std::uint32_t weight_reloads = 1;  // times the weights are streamed
  std::uint32_t tile_count = 1;      // spatial tiles (conv) / timesteps (lstm)

  /// MACs per DRAM byte; the reuse metric MAESTRO reports.
  [[nodiscard]] double reuse(std::uint64_t macs) const noexcept {
    return dram_traffic == 0
               ? static_cast<double>(macs)
               : static_cast<double>(macs) / static_cast<double>(dram_traffic);
  }
};

/// Analyze one layer under the given buffers. `dtype_bytes` is the tensor
/// element size. Layers without data (Input) return zero traffic.
[[nodiscard]] TileAnalysis analyze_tiling(const Layer& layer,
                                          const OnChipBuffers& buffers,
                                          std::uint32_t dtype_bytes);

}  // namespace h2h
