#include <gtest/gtest.h>

#include <algorithm>

#include "graph/algorithms.h"
#include "graph/digraph.h"
#include "graph/dot.h"
#include "util/error.h"
#include "util/rng.h"

namespace h2h {
namespace {

Digraph make_diamond() {
  Digraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const NodeId c = g.add_node();
  const NodeId d = g.add_node();
  g.add_edge(a, b);
  g.add_edge(a, c);
  g.add_edge(b, d);
  g.add_edge(c, d);
  return g;
}

TEST(Digraph, BasicAdjacency) {
  Digraph g = make_diamond();
  EXPECT_EQ(g.node_count(), 4u);
  EXPECT_EQ(g.edge_count(), 4u);
  EXPECT_TRUE(g.has_edge(NodeId{0}, NodeId{1}));
  EXPECT_FALSE(g.has_edge(NodeId{1}, NodeId{0}));
  EXPECT_EQ(g.in_degree(NodeId{3}), 2u);
  EXPECT_EQ(g.out_degree(NodeId{0}), 2u);
  EXPECT_EQ(g.sources(), (std::vector<NodeId>{NodeId{0}}));
  EXPECT_EQ(g.sinks(), (std::vector<NodeId>{NodeId{3}}));
}

TEST(Digraph, RejectsSelfLoopsAndParallelEdges) {
  Digraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  g.add_edge(a, b);
  EXPECT_THROW(g.add_edge(a, b), ContractViolation);
  EXPECT_THROW(g.add_edge(a, a), ContractViolation);
  EXPECT_THROW(g.add_edge(a, NodeId{99}), ContractViolation);
}

TEST(Topological, DiamondOrderRespectsEdges) {
  const Digraph g = make_diamond();
  const auto order = topological_order(g);
  ASSERT_TRUE(order.has_value());
  const auto ranks = order_ranks(g, *order);
  for (std::uint32_t u = 0; u < g.node_count(); ++u)
    for (const NodeId v : g.succs(NodeId{u}))
      EXPECT_LT(ranks[u], ranks[v.value]);
}

TEST(Topological, DetectsCycle) {
  Digraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const NodeId c = g.add_node();
  g.add_edge(a, b);
  g.add_edge(b, c);
  g.add_edge(c, a);
  EXPECT_FALSE(topological_order(g).has_value());
  EXPECT_FALSE(is_dag(g));
}

TEST(Topological, DeterministicTieBreak) {
  // Two independent chains: order must interleave by ascending id.
  Digraph g;
  for (int i = 0; i < 6; ++i) (void)g.add_node();
  g.add_edge(NodeId{0}, NodeId{2});
  g.add_edge(NodeId{1}, NodeId{3});
  const auto order = topological_order(g);
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ((*order)[0], NodeId{0});
  EXPECT_EQ((*order)[1], NodeId{1});
}

TEST(Reachability, FromSingleRoot) {
  const Digraph g = make_diamond();
  const NodeId roots[] = {NodeId{1}};
  const auto seen = reachable_from(g, roots);
  EXPECT_FALSE(seen[0]);
  EXPECT_TRUE(seen[1]);
  EXPECT_FALSE(seen[2]);
  EXPECT_TRUE(seen[3]);
}

TEST(Frontier, PeelsLayerByLayer) {
  const Digraph g = make_diamond();
  std::vector<bool> done(g.node_count(), false);
  auto f = frontier(g, done);
  EXPECT_EQ(f, (std::vector<NodeId>{NodeId{0}}));
  done[0] = true;
  f = frontier(g, done);
  EXPECT_EQ(f, (std::vector<NodeId>{NodeId{1}, NodeId{2}}));
  done[1] = done[2] = true;
  f = frontier(g, done);
  EXPECT_EQ(f, (std::vector<NodeId>{NodeId{3}}));
  done[3] = true;
  EXPECT_TRUE(frontier(g, done).empty());
}

TEST(FrontierWorklist, MatchesRescanWaves) {
  const Digraph g = make_diamond();
  FrontierWorklist work(g);
  std::vector<bool> done(g.node_count(), false);
  std::vector<NodeId> wave;
  // Wave-by-wave, the worklist must hand back exactly what a frontier()
  // rescan of the done-set sees (the step-1 mapper relies on this).
  while (work.take_wave(wave)) {
    EXPECT_EQ(wave, frontier(g, done));
    for (const NodeId n : wave) {
      work.complete(n);
      done[n.value] = true;
    }
  }
  EXPECT_TRUE(frontier(g, done).empty());
  EXPECT_TRUE(std::all_of(done.begin(), done.end(), [](bool b) { return b; }));
}

TEST(FrontierWorklist, PreCompletedSourcesFoldIntoTheFirstWave) {
  // Mirrors the mapper's setup: Input-like sources complete before the
  // first take_wave, so wave 1 is their newly-ready successors.
  const Digraph g = make_diamond();
  FrontierWorklist work(g);
  work.complete(NodeId{0});
  std::vector<NodeId> wave;
  ASSERT_TRUE(work.take_wave(wave));
  EXPECT_EQ(wave, (std::vector<NodeId>{NodeId{1}, NodeId{2}}));
}

TEST(FrontierWorklist, RandomDagsMatchRescan) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    Digraph g;
    const std::size_t n = 4 + rng.index(30);
    for (std::size_t i = 0; i < n; ++i) (void)g.add_node();
    for (std::uint32_t to = 1; to < n; ++to)
      for (std::uint32_t from = 0; from < to; ++from)
        if (rng.index(3) == 0) g.add_edge(NodeId{from}, NodeId{to});

    FrontierWorklist work(g);
    std::vector<bool> done(g.node_count(), false);
    std::vector<NodeId> wave;
    std::size_t completed = 0;
    while (work.take_wave(wave)) {
      EXPECT_EQ(wave, frontier(g, done)) << "seed " << seed;
      for (const NodeId v : wave) {
        work.complete(v);
        done[v.value] = true;
        ++completed;
      }
    }
    EXPECT_EQ(completed, g.node_count()) << "seed " << seed;
  }
}

TEST(Components, CountsUndirectedIslands) {
  Digraph g;
  for (int i = 0; i < 5; ++i) (void)g.add_node();
  g.add_edge(NodeId{0}, NodeId{1});
  g.add_edge(NodeId{2}, NodeId{3});
  const Components c = connected_components(g);
  EXPECT_EQ(c.count, 3u);
  EXPECT_EQ(c.component_of[0], c.component_of[1]);
  EXPECT_EQ(c.component_of[2], c.component_of[3]);
  EXPECT_NE(c.component_of[0], c.component_of[2]);
  EXPECT_NE(c.component_of[4], c.component_of[0]);
}

TEST(Dot, EmitsAllNodesAndEdges) {
  const Digraph g = make_diamond();
  const std::string dot = to_dot(g, [](NodeId n) {
    return "n" + std::to_string(n.value) + " \"quoted\"";
  });
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("n2 -> n3"), std::string::npos);
  EXPECT_NE(dot.find("\\\"quoted\\\""), std::string::npos);
}

// Property: random DAGs (edges only id-ascending) always topo-sort, and the
// order respects every edge.
class RandomDagTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomDagTest, TopologicalOrderAlwaysValid) {
  Rng rng(GetParam());
  Digraph g;
  const int n = static_cast<int>(rng.uniform_int(1, 60));
  for (int i = 0; i < n; ++i) (void)g.add_node();
  for (std::uint32_t v = 1; v < static_cast<std::uint32_t>(n); ++v) {
    const int fanin = static_cast<int>(rng.uniform_int(0, 3));
    for (int e = 0; e < fanin; ++e) {
      const auto u = static_cast<std::uint32_t>(rng.uniform_int(0, v - 1));
      if (!g.has_edge(NodeId{u}, NodeId{v})) g.add_edge(NodeId{u}, NodeId{v});
    }
  }
  const auto order = topological_order(g);
  ASSERT_TRUE(order.has_value());
  const auto ranks = order_ranks(g, *order);
  for (std::uint32_t u = 0; u < g.node_count(); ++u)
    for (const NodeId v : g.succs(NodeId{u}))
      EXPECT_LT(ranks[u], ranks[v.value]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagTest,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace h2h
