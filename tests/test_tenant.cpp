#include <gtest/gtest.h>

#include <limits>

#include "core/planner.h"
#include "tenant/co_mapper.h"
#include "test_helpers.h"
#include "util/error.h"

namespace h2h {
namespace {

[[nodiscard]] TenantRequest tenant(std::string name, ZooModel model,
                                   double slo_s = std::numeric_limits<
                                       double>::infinity(),
                                   std::uint32_t priority = 1,
                                   CapabilityMask caps = 0) {
  TenantRequest t;
  t.name = std::move(name);
  t.model = model;
  t.slo_s = slo_s;
  t.priority = priority;
  t.required_caps = caps;
  return t;
}

// ---------------------------------------------------------------- grammar

TEST(TenantSpecTest, ParsesFullGrammar) {
  const std::vector<TenantRequest> reqs = parse_tenants_spec(
      "cam=vlocnet:slo=0.05:prio=2;mic=mocap:slo=0.02;aux=vfs:caps=bigmem");
  ASSERT_EQ(reqs.size(), 3u);
  EXPECT_EQ(reqs[0].name, "cam");
  EXPECT_EQ(reqs[0].model, ZooModel::VLocNet);
  EXPECT_DOUBLE_EQ(reqs[0].slo_s, 0.05);
  EXPECT_EQ(reqs[0].priority, 2u);
  EXPECT_EQ(reqs[0].required_caps, 0u);
  EXPECT_EQ(reqs[1].model, ZooModel::MoCap);
  EXPECT_FALSE(reqs[2].has_slo());
  EXPECT_EQ(reqs[2].required_caps, kCapBigMem);
}

TEST(TenantSpecTest, RejectsMalformedSpecs) {
  // Shape errors.
  EXPECT_THROW((void)parse_tenants_spec(""), ConfigError);
  EXPECT_THROW((void)parse_tenants_spec("cam"), ConfigError);
  EXPECT_THROW((void)parse_tenants_spec("=vlocnet"), ConfigError);
  EXPECT_THROW((void)parse_tenants_spec("cam="), ConfigError);
  // Stray separators / trailing junk.
  EXPECT_THROW((void)parse_tenants_spec("cam=mocap;"), ConfigError);
  EXPECT_THROW((void)parse_tenants_spec(";cam=mocap"), ConfigError);
  EXPECT_THROW((void)parse_tenants_spec("cam=mocap:"), ConfigError);
  EXPECT_THROW((void)parse_tenants_spec("cam=mocap::slo=1"), ConfigError);
  // Unknown model / field.
  EXPECT_THROW((void)parse_tenants_spec("cam=resnet9000"), ConfigError);
  EXPECT_THROW((void)parse_tenants_spec("cam=mocap:deadline=1"), ConfigError);
  // Bad values.
  EXPECT_THROW((void)parse_tenants_spec("cam=mocap:slo=0"), ConfigError);
  EXPECT_THROW((void)parse_tenants_spec("cam=mocap:slo=-1"), ConfigError);
  EXPECT_THROW((void)parse_tenants_spec("cam=mocap:slo=fast"), ConfigError);
  EXPECT_THROW((void)parse_tenants_spec("cam=mocap:slo=1x"), ConfigError);
  EXPECT_THROW((void)parse_tenants_spec("cam=mocap:prio=two"), ConfigError);
  EXPECT_THROW((void)parse_tenants_spec("cam=mocap:caps=warp"), ConfigError);
  // Duplicate fields.
  EXPECT_THROW((void)parse_tenants_spec("cam=mocap:slo=1:slo=2"), ConfigError);
  EXPECT_THROW((void)parse_tenants_spec("cam=mocap:prio=1:prio=2"),
               ConfigError);
}

// --------------------------------------------------------------- TenantSet

TEST(TenantSetTest, ValidatesRequests) {
  EXPECT_THROW(TenantSet({}), ConfigError);
  EXPECT_THROW(TenantSet({tenant("", ZooModel::MoCap)}), ConfigError);
  EXPECT_THROW(TenantSet({tenant("a/b", ZooModel::MoCap)}), ConfigError);
  EXPECT_THROW(TenantSet({tenant("a", ZooModel::MoCap),
                          tenant("a", ZooModel::Vfs)}),
               ConfigError);
  EXPECT_THROW(TenantSet({tenant("a", ZooModel::MoCap, -1.0)}), ConfigError);

  // Exactly one model source.
  TenantRequest none;
  none.name = "x";
  EXPECT_THROW(TenantSet({none}), ConfigError);
  const ModelGraph chain = testing::make_chain_model();
  TenantRequest both = tenant("x", ZooModel::MoCap);
  both.graph = &chain;
  EXPECT_THROW(TenantSet({both}), ConfigError);
}

TEST(TenantSetTest, StampsCapsOnPlaceableLayers) {
  const TenantSet set({tenant("a", ZooModel::MoCap, 1.0, 1, kCapBigMem)});
  for (const LayerId id : set.model(0).all_layers()) {
    const Layer& l = set.model(0).layer(id);
    EXPECT_EQ(l.required_caps, l.kind == LayerKind::Input ? 0u : kCapBigMem);
  }
}

TEST(TenantSetTest, UnionModelConcatenatesSpans) {
  const TenantSet set(
      {tenant("a", ZooModel::MoCap), tenant("b", ZooModel::CnnLstm)});
  std::vector<TenantSpan> spans;
  const ModelGraph u = set.build_union(spans);
  u.validate();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].begin, 0u);
  EXPECT_EQ(spans[0].end, set.model(0).layer_count());
  EXPECT_EQ(spans[1].begin, spans[0].end);
  EXPECT_EQ(spans[1].end, u.layer_count());
  EXPECT_EQ(u.layer_count(),
            set.model(0).layer_count() + set.model(1).layer_count());
  // Names carry the tenant prefix; edges stay within the span.
  for (const LayerId id : u.all_layers()) {
    const bool first = spans[0].contains(id);
    EXPECT_TRUE(u.layer(id).name.rfind(first ? "a/" : "b/", 0) == 0);
    for (const LayerId p : u.graph().preds(id))
      EXPECT_EQ(spans[0].contains(p), first);
  }
}

TEST(TenantSetTest, UnionRejectsBatchDisagreement) {
  ModelGraph batched = make_model(ZooModel::MoCap);
  batched.set_batch(4);
  TenantRequest b;
  b.name = "b";
  b.graph = &batched;
  const TenantSet set({tenant("a", ZooModel::MoCap), b});
  std::vector<TenantSpan> spans;
  EXPECT_THROW((void)set.build_union(spans), ConfigError);
}

// ------------------------------------------------------------ slack order

TEST(TenantSlackTest, NormalizedSlackClampsToUnitWindow) {
  EXPECT_DOUBLE_EQ(normalized_slack(0.4, 0.5, 1.0), 0.1);
  EXPECT_DOUBLE_EQ(normalized_slack(0.9, 0.5, 1.0), 0.0);  // overdue
  EXPECT_DOUBLE_EQ(normalized_slack(0.1, 5.0, 1.0), 1.0);  // saturates
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(normalized_slack(0.1, inf, 1.0), 1.0);  // no SLO
}

TEST(TenantSlackTest, OrdersByUrgencyThenPriorityThenIndex) {
  const TenantSet set({tenant("late", ZooModel::MoCap, 0.1),
                       tenant("easy", ZooModel::MoCap, 10.0),
                       tenant("vip", ZooModel::MoCap, 10.0, /*priority=*/5),
                       tenant("free", ZooModel::MoCap)});
  // Latencies: "late" is overdue; "easy"/"vip" tie on slack; "free" has no
  // SLO and saturates at 1.
  const std::vector<std::size_t> order =
      slack_order(set, {0.2, 0.2, 0.2, 0.2}, 10.0);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 2, 1, 3}));
}

// ---------------------------------------------------------------- CoMapper

TEST(CoMapperTest, SingleTenantIsBitIdenticalToPlanner) {
  for (const BandwidthSetting bw :
       {BandwidthSetting::LowMinus, BandwidthSetting::Mid}) {
    const SystemConfig sys = SystemConfig::standard(bw);
    Planner planner(sys);
    CoMapper co(sys);
    for (const ZooInfo& info : zoo_catalog()) {
      const PlanResponse p =
          planner.plan(PlanRequest::zoo(info.id, bandwidth_value(bw)));
      const CoMapResult r = co.co_map(TenantSet({tenant("solo", info.id)}));
      ASSERT_EQ(r.model.layer_count(),
                p.mapping.size());
      for (const LayerId id : r.model.all_layers()) {
        EXPECT_EQ(r.mapping.acc_of(id).value, p.mapping.acc_of(id).value);
        EXPECT_EQ(r.mapping.seq_of(id), p.mapping.seq_of(id));
        EXPECT_EQ(r.plan.pinned(id), p.plan.pinned(id));
      }
      EXPECT_EQ(r.plan.fused_edge_count(), p.plan.fused_edge_count());
      EXPECT_EQ(r.schedule.latency, p.final_result().latency);
      EXPECT_EQ(r.schedule.energy.total(), p.final_result().energy.total());
    }
  }
}

/// The tentpole fixture: three tenants contending at Low- bandwidth.
/// Sequential deployment (each planned as if alone) leaves "act" and "emo"
/// queued behind "cam" on the shared boards and both miss their SLOs;
/// co-mapping meets all three (numbers surveyed offline; the assertions
/// only use the orderings, not pinned values).
TEST(CoMapperTest, CoMappingMeetsSlosSequentialMisses) {
  const SystemConfig sys = SystemConfig::standard(BandwidthSetting::LowMinus);
  CoMapper co(sys);
  const TenantSet set({tenant("cam", ZooModel::CasiaSurf, 0.012, 3),
                       tenant("act", ZooModel::CnnLstm, 0.010, 2),
                       tenant("emo", ZooModel::MoCap, 0.010, 1)});
  const CoMapResult r = co.co_map(set);

  EXPECT_GT(r.seq_violation_s, 0.0);  // sequential planning misses SLOs
  EXPECT_DOUBLE_EQ(r.violation_s, 0.0);
  EXPECT_TRUE(r.all_slos_met);
  EXPECT_LT(r.schedule.latency, r.seq_makespan_s);

  EXPECT_GT(r.outcome("act").seq_latency_s, 0.010);
  EXPECT_GT(r.outcome("emo").seq_latency_s, 0.010);
  for (const TenantOutcome& o : r.tenants) {
    EXPECT_TRUE(o.met);
    EXPECT_LE(o.latency_s, o.slo_s);
    EXPECT_GE(o.slack_s, 0.0);
    // Solo latency (idle system) lower-bounds any shared deployment.
    EXPECT_LE(o.solo_latency_s, o.latency_s + 1e-12);
  }
  EXPECT_THROW((void)r.outcome("nobody"), ConfigError);
}

TEST(CoMapperTest, CoMapIsDeterministic) {
  const SystemConfig sys = SystemConfig::standard(BandwidthSetting::Mid);
  CoMapper co(sys);
  const TenantSet set({tenant("a", ZooModel::MoCap, 0.01),
                       tenant("b", ZooModel::CnnLstm, 0.01)});
  const CoMapResult r1 = co.co_map(set);
  const CoMapResult r2 = co.co_map(set);  // warm solo sessions this time
  EXPECT_EQ(r1.schedule.latency, r2.schedule.latency);
  EXPECT_EQ(r1.violation_s, r2.violation_s);
  EXPECT_EQ(r1.rounds, r2.rounds);
  for (const LayerId id : r1.model.all_layers())
    EXPECT_EQ(r1.mapping.acc_of(id).value, r2.mapping.acc_of(id).value);
}

TEST(CoMapperTest, CapabilityConstraintsHoldPerTenant) {
  const SystemConfig sys = SystemConfig::standard(BandwidthSetting::Mid);
  CoMapper co(sys);
  const TenantSet set(
      {tenant("fast", ZooModel::MoCap, /*slo=*/1.0, 1, kCapFastMem),
       tenant("any", ZooModel::CasiaSurf)});
  const CoMapResult r = co.co_map(set);
  const TenantSpan span = r.outcome("fast").span;
  for (std::uint32_t l = span.begin; l < span.end; ++l) {
    const LayerId id{l};
    if (r.model.layer(id).kind == LayerKind::Input) continue;
    EXPECT_TRUE(can_serve(sys.capabilities(r.mapping.acc_of(id)),
                          kCapFastMem));
  }
}

TEST(CoMapperTest, InfeasibleCapabilityThrows) {
  const SystemConfig sys = SystemConfig::standard(BandwidthSetting::Mid);
  CoMapper co(sys);
  const TenantSet set({tenant("ghost", ZooModel::MoCap, 1.0, 1, 0x100)});
  EXPECT_THROW((void)co.co_map(set), CapabilityError);
}

}  // namespace
}  // namespace h2h
