// Parameterized synthetic MMMT generator.
//
// The paper's conclusion stresses that H2H "can be easily configured to
// catch up with ... the growing size of DNN models". This generator builds
// MMMT models of arbitrary scale — N modality backbones (vision conv stacks
// and/or recurrent stacks), cross-talk links between neighbouring
// backbones, a fusion trunk, and task heads — for the scaling experiments
// (search time vs layer count) and for stress tests beyond the six Table-2
// models.
#pragma once

#include <cstdint>

#include "model/model_graph.h"

namespace h2h {

struct SyntheticMmmtSpec {
  std::uint32_t modalities = 3;       // total backbones, >= 1
  std::uint32_t lstm_modalities = 1;  // how many of them are recurrent
  std::uint32_t backbone_depth = 8;   // conv (or conv1d) layers per backbone
  double width = 1.0;                 // channel-count multiplier
  std::uint32_t fusion_fc_layers = 2; // depth of the joint MLP
  std::uint32_t task_heads = 2;       // multi-task outputs
  std::uint32_t input_hw = 112;       // vision input resolution
  std::uint32_t seq_len = 64;         // recurrent input length
  bool cross_talk = true;             // lateral links between backbones
  std::uint64_t seed = 1;             // deterministic channel jitter

  void validate() const;  // throws ConfigError on nonsensical combinations
};

[[nodiscard]] ModelGraph make_synthetic_mmmt(const SyntheticMmmtSpec& spec);

}  // namespace h2h
