#include "accel/tiling.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"

namespace h2h {
namespace {

TileAnalysis analyze_conv(const ConvShape& s, const OnChipBuffers& buffers,
                          std::uint32_t dtype) {
  TileAnalysis out;
  const Bytes weight_bytes =
      (static_cast<Bytes>(s.out_channels) * s.in_channels / s.groups *
           s.kernel * s.effective_kernel_w() +
       s.out_channels) * dtype;
  const Bytes ifm_bytes = static_cast<Bytes>(s.in_channels) *
                          (s.out_h * s.stride) * (s.out_w * s.stride) * dtype;
  const Bytes ofm_bytes =
      static_cast<Bytes>(s.out_channels) * s.out_h * s.out_w * dtype;

  // Square output tile whose IFM+OFM working set fits the activation buffer.
  // Per output pixel the working set holds ~stride^2 x M input elements and
  // N output elements (halo ignored; documented simplification).
  std::uint32_t tile = std::max(s.out_h, s.out_w);
  if (buffers.act_buffer != 0) {
    const double per_pixel =
        static_cast<double>(dtype) *
        (static_cast<double>(s.in_channels) * s.stride * s.stride +
         static_cast<double>(s.out_channels));
    const double max_pixels =
        static_cast<double>(buffers.act_buffer) / per_pixel;
    tile = std::clamp<std::uint32_t>(
        static_cast<std::uint32_t>(std::floor(std::sqrt(
            std::max(1.0, max_pixels)))),
        1u, std::max(s.out_h, s.out_w));
  }
  const std::uint32_t tiles_h = (s.out_h + tile - 1) / tile;
  const std::uint32_t tiles_w = (s.out_w + tile - 1) / tile;
  out.tile_count = tiles_h * tiles_w;

  out.weight_reloads =
      (buffers.weight_buffer == 0 || weight_bytes <= buffers.weight_buffer)
          ? 1
          : out.tile_count;
  out.dram_traffic =
      weight_bytes * out.weight_reloads + ifm_bytes + ofm_bytes;
  return out;
}

TileAnalysis analyze_fc(const FcShape& s, std::uint32_t dtype) {
  // Batch-1 GEMV: every weight is used exactly once; no tiling can create
  // reuse. Traffic = weights + input + output.
  TileAnalysis out;
  const Bytes weight_bytes =
      (static_cast<Bytes>(s.in_features) * s.out_features + s.out_features) *
      dtype;
  out.dram_traffic = weight_bytes +
                     static_cast<Bytes>(s.in_features) * dtype +
                     static_cast<Bytes>(s.out_features) * dtype;
  return out;
}

TileAnalysis analyze_lstm(const LstmShape& s, const OnChipBuffers& buffers,
                          std::uint32_t dtype) {
  TileAnalysis out;
  Bytes weight_bytes = 0;
  for (std::uint32_t l = 0; l < s.layers; ++l) {
    const std::uint64_t in = l == 0 ? s.in_size : s.hidden_size;
    weight_bytes += 4ull * ((in + s.hidden_size) * s.hidden_size +
                            s.hidden_size) * dtype;
  }
  out.tile_count = s.seq_len;
  // The recurrent memory wall: if the gate matrices do not fit on chip they
  // are re-streamed every timestep.
  out.weight_reloads =
      (buffers.weight_buffer == 0 || weight_bytes <= buffers.weight_buffer)
          ? 1
          : s.seq_len;
  const Bytes act_bytes =
      static_cast<Bytes>(s.seq_len) * (s.in_size + 2ull * s.hidden_size) *
      dtype;  // inputs + hidden + cell state per step
  out.dram_traffic = weight_bytes * out.weight_reloads + act_bytes;
  return out;
}

TileAnalysis analyze_streaming(const Layer& layer, std::uint32_t dtype) {
  TileAnalysis out;
  // in + out, with in approximated by out for eltwise-style ops.
  const Bytes ob = layer.out_bytes(dtype);
  switch (layer.kind) {
    case LayerKind::Pool: {
      const auto& s = std::get<PoolShape>(layer.shape);
      const Bytes ib = static_cast<Bytes>(s.channels) * (s.out_h * s.stride) *
                       (s.out_w * s.stride) * dtype;
      out.dram_traffic = ib + ob;
      break;
    }
    case LayerKind::Eltwise:
      out.dram_traffic = 3 * ob;  // two inputs + one output
      break;
    case LayerKind::Concat:
      out.dram_traffic = 2 * ob;  // inputs sum to the output size
      break;
    default:
      out.dram_traffic = 0;
      break;
  }
  return out;
}

}  // namespace

TileAnalysis analyze_tiling(const Layer& layer, const OnChipBuffers& buffers,
                            std::uint32_t dtype_bytes) {
  H2H_EXPECTS(dtype_bytes >= 1);
  switch (layer.kind) {
    case LayerKind::Conv:
      return analyze_conv(std::get<ConvShape>(layer.shape), buffers,
                          dtype_bytes);
    case LayerKind::FullyConnected:
      return analyze_fc(std::get<FcShape>(layer.shape), dtype_bytes);
    case LayerKind::Lstm:
      return analyze_lstm(std::get<LstmShape>(layer.shape), buffers,
                          dtype_bytes);
    case LayerKind::Pool:
    case LayerKind::Eltwise:
    case LayerKind::Concat:
      return analyze_streaming(layer, dtype_bytes);
    case LayerKind::Input:
      return {};
  }
  return {};
}

}  // namespace h2h
