#include "tenant/tenant.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <numeric>
#include <set>

#include "util/error.h"
#include "util/str.h"

namespace h2h {
namespace {

[[nodiscard]] double parse_seconds(std::string_view token,
                                   std::string_view tenant) {
  double v = 0;
  const auto [end, ec] =
      std::from_chars(token.data(), token.data() + token.size(), v);
  if (ec != std::errc{} || end != token.data() + token.size() || v <= 0 ||
      !std::isfinite(v))
    throw ConfigError(strformat("tenant '%s': bad slo '%s' (want seconds > 0)",
                                std::string(tenant).c_str(),
                                std::string(token).c_str()));
  return v;
}

[[nodiscard]] std::uint32_t parse_priority(std::string_view token,
                                           std::string_view tenant) {
  std::uint32_t v = 0;
  const auto [end, ec] =
      std::from_chars(token.data(), token.data() + token.size(), v);
  if (ec != std::errc{} || end != token.data() + token.size())
    throw ConfigError(strformat(
        "tenant '%s': bad prio '%s' (want a non-negative integer)",
        std::string(tenant).c_str(), std::string(token).c_str()));
  return v;
}

}  // namespace

TenantSet::TenantSet(std::vector<TenantRequest> requests)
    : requests_(std::move(requests)) {
  if (requests_.empty()) throw ConfigError("tenant set is empty");
  std::set<std::string> names;
  models_.reserve(requests_.size());
  for (const TenantRequest& t : requests_) {
    if (t.name.empty())
      throw ConfigError("tenant name must not be empty");
    if (t.name.find('/') != std::string::npos)
      throw ConfigError(strformat(
          "tenant name '%s' must not contain '/' (the union-model prefix "
          "separator)",
          t.name.c_str()));
    if (!names.insert(t.name).second)
      throw ConfigError(
          strformat("duplicate tenant name '%s'", t.name.c_str()));
    if (t.model.has_value() == (t.graph != nullptr))
      throw ConfigError(strformat(
          "tenant '%s': exactly one of model or graph must be set",
          t.name.c_str()));
    if (std::isnan(t.slo_s) || t.slo_s <= 0)
      throw ConfigError(strformat("tenant '%s': slo must be > 0 seconds",
                                  t.name.c_str()));
    ModelGraph m = t.model ? make_model(*t.model) : *t.graph;
    m.stamp_required_caps(t.required_caps);
    models_.push_back(std::move(m));
  }
}

ModelGraph TenantSet::build_union(std::vector<TenantSpan>& spans) const {
  const std::uint32_t dtype = models_.front().dtype_bytes();
  const std::uint32_t batch = models_.front().batch();
  for (std::size_t i = 1; i < models_.size(); ++i) {
    if (models_[i].dtype_bytes() != dtype)
      throw ConfigError(strformat(
          "tenant '%s': dtype_bytes %u disagrees with '%s' (%u) — v1 union "
          "models carry a single element size",
          requests_[i].name.c_str(), models_[i].dtype_bytes(),
          requests_[0].name.c_str(), dtype));
    if (models_[i].batch() != batch)
      throw ConfigError(strformat(
          "tenant '%s': batch %u disagrees with '%s' (%u) — v1 union models "
          "carry a single batch size",
          requests_[i].name.c_str(), models_[i].batch(),
          requests_[0].name.c_str(), batch));
  }

  std::vector<std::string> parts;
  parts.reserve(requests_.size());
  for (const TenantRequest& t : requests_) parts.push_back(t.name);
  ModelGraph out(strformat("co[%s]", join(parts, "+").c_str()), dtype);
  out.set_batch(batch);

  spans.clear();
  spans.reserve(models_.size());
  std::vector<LayerId> preds;
  for (std::size_t i = 0; i < models_.size(); ++i) {
    const ModelGraph& m = models_[i];
    const auto base = static_cast<std::uint32_t>(out.layer_count());
    for (const LayerId id : m.all_layers()) {
      Layer layer = m.layer(id);
      layer.name = requests_[i].name + "/" + layer.name;
      preds.clear();
      for (const LayerId p : m.graph().preds(id))
        preds.push_back(LayerId{base + p.value});
      out.add_layer(std::move(layer), preds);
    }
    spans.push_back(
        {base, static_cast<std::uint32_t>(out.layer_count())});
  }
  return out;
}

double normalized_slack(double latency_s, double slo_s,
                        double normalize_s) noexcept {
  if (!std::isfinite(slo_s)) return 1.0;
  const double slack = slo_s - latency_s;
  return std::clamp(slack / normalize_s, 0.0, 1.0);
}

std::vector<std::size_t> slack_order(const TenantSet& set,
                                     const std::vector<double>& latency,
                                     double normalize_s) {
  H2H_EXPECTS(latency.size() == set.size());
  H2H_EXPECTS(normalize_s > 0);
  std::vector<std::size_t> order(set.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t l, std::size_t r) {
                     const TenantRequest& a = set.request(l);
                     const TenantRequest& b = set.request(r);
                     const double sa =
                         normalized_slack(latency[l], a.slo_s, normalize_s);
                     const double sb =
                         normalized_slack(latency[r], b.slo_s, normalize_s);
                     if (sa != sb) return sa < sb;
                     return a.priority > b.priority;  // index via stability
                   });
  return order;
}

std::vector<TenantRequest> parse_tenants_spec(std::string_view spec) {
  std::vector<TenantRequest> out;
  if (spec.empty()) throw ConfigError("--tenants spec is empty");
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t semi = std::min(spec.find(';', pos), spec.size());
    const std::string_view one = spec.substr(pos, semi - pos);
    pos = semi + 1;
    if (one.empty())
      throw ConfigError("--tenants: empty tenant spec (stray ';')");

    TenantRequest t;
    std::size_t field = 0;
    std::size_t fpos = 0;
    bool saw_slo = false, saw_prio = false, saw_caps = false;
    while (fpos <= one.size()) {
      const std::size_t colon = std::min(one.find(':', fpos), one.size());
      const std::string_view tok = one.substr(fpos, colon - fpos);
      fpos = colon + 1;
      const std::size_t eq = tok.find('=');
      if (eq == std::string_view::npos || eq == 0 || eq + 1 >= tok.size())
        throw ConfigError(strformat(
            "--tenants: malformed field '%s' (want key=value)",
            std::string(tok).c_str()));
      const std::string_view key = tok.substr(0, eq);
      const std::string_view value = tok.substr(eq + 1);
      if (field++ == 0) {
        // First field names the tenant and its model: name=<zoo-key>.
        t.name = std::string(key);
        t.model = zoo_model_by_key(value);
        if (!t.model)
          throw ConfigError(strformat(
              "--tenants: tenant '%s': unknown model '%s'",
              t.name.c_str(), std::string(value).c_str()));
      } else if (key == "slo") {
        if (saw_slo)
          throw ConfigError(strformat("--tenants: tenant '%s': duplicate slo",
                                      t.name.c_str()));
        saw_slo = true;
        t.slo_s = parse_seconds(value, t.name);
      } else if (key == "prio") {
        if (saw_prio)
          throw ConfigError(strformat("--tenants: tenant '%s': duplicate prio",
                                      t.name.c_str()));
        saw_prio = true;
        t.priority = parse_priority(value, t.name);
      } else if (key == "caps") {
        if (saw_caps)
          throw ConfigError(strformat("--tenants: tenant '%s': duplicate caps",
                                      t.name.c_str()));
        saw_caps = true;
        t.required_caps = parse_caps_spec(value);
      } else {
        throw ConfigError(strformat(
            "--tenants: tenant '%s': unknown field '%s' (want slo, prio, or "
            "caps)",
            t.name.c_str(), std::string(key).c_str()));
      }
      if (colon == one.size()) break;
    }
    out.push_back(std::move(t));
    if (semi == spec.size()) break;
  }
  return out;
}

}  // namespace h2h
