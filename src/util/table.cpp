#include "util/table.h"

#include <algorithm>

#include "util/contracts.h"

namespace h2h {

TextTable::TextTable(std::vector<std::string> headers, std::vector<Align> aligns)
    : headers_(std::move(headers)), aligns_(std::move(aligns)) {
  H2H_EXPECTS(!headers_.empty());
  aligns_.resize(headers_.size(), Align::Right);
}

void TextTable::add_row(std::vector<std::string> cells) {
  H2H_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << "  ";
      const auto pad = widths[c] - row[c].size();
      if (aligns_[c] == Align::Right) out << std::string(pad, ' ') << row[c];
      else out << row[c] << std::string(pad, ' ');
    }
    out << '\n';
  };

  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c ? 2 : 0);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

}  // namespace h2h
