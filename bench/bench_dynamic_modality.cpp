// §4.5 experiment: dynamic modality change. Compares the weight bytes the
// dynamic H2H extension loads on each modality toggle against a cold remap
// (which reloads every pinned weight), on the two sensor-driven models.
#include <benchmark/benchmark.h>

#include <iostream>

#include "h2h.h"

namespace {

using namespace h2h;

void run_scenario(ZooModel model_id, std::ostream& out) {
  const SystemConfig sys = SystemConfig::standard(BandwidthSetting::LowMinus);
  const ModelGraph full = make_model(model_id);
  const std::uint32_t m = full.stats().modality_count;

  // Toggle pattern: all on -> drop last modality -> first only -> all on.
  std::vector<std::vector<std::uint32_t>> phases;
  std::vector<std::uint32_t> all;
  for (std::uint32_t i = 1; i <= m; ++i) all.push_back(i);
  phases.push_back(all);
  phases.push_back({all.begin(), all.end() - 1});
  phases.push_back({1});
  phases.push_back(all);

  TextTable table({"phase", "modalities", "reused", "loaded", "reuse%",
                   "cold load"},
                  {TextTable::Align::Left});
  DynamicModalityMapper warm(sys);
  Bytes warm_total = 0, cold_total = 0;
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const ModelGraph variant = phases[i].size() == m
                                   ? full
                                   : subset_model(full, phases[i]);
    const DynamicRemapResult r = warm.remap(variant);
    // Cold reference: a fresh mapper reloads everything it pins.
    DynamicModalityMapper cold(sys);
    const DynamicRemapResult c = cold.remap(variant);
    warm_total += r.weights_loaded;
    cold_total += c.weights_loaded;
    table.add_row({strformat("%zu", i + 1), strformat("%zu", phases[i].size()),
                   human_bytes(r.weights_reused),
                   human_bytes(r.weights_loaded),
                   format_percent(r.reuse_ratio(), 1),
                   human_bytes(c.weights_loaded)});
  }
  out << "dynamic modality change on " << zoo_info(model_id).key
      << " @ Low-:\n";
  table.print(out);
  out << "weight bytes loaded across the scenario: warm "
      << human_bytes(warm_total) << " vs cold " << human_bytes(cold_total)
      << " (" << format_percent(1.0 - static_cast<double>(warm_total) /
                                          static_cast<double>(cold_total), 1)
      << " avoided)\n\n";
}

void BM_DynamicRemap_MoCap(benchmark::State& state) {
  const SystemConfig sys = SystemConfig::standard(BandwidthSetting::LowMinus);
  const ModelGraph full = make_model(ZooModel::MoCap);
  const std::uint32_t two[] = {1, 2};
  const ModelGraph sub = subset_model(full, two);
  DynamicModalityMapper mapper(sys);
  (void)mapper.remap(full);
  for (auto _ : state) {
    const DynamicRemapResult r = mapper.remap(sub);
    benchmark::DoNotOptimize(r.weights_reused);
    const DynamicRemapResult back = mapper.remap(full);
    benchmark::DoNotOptimize(back.weights_reused);
  }
}
BENCHMARK(BM_DynamicRemap_MoCap)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_scenario(ZooModel::MoCap, std::cout);
  run_scenario(ZooModel::CnnLstm, std::cout);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
