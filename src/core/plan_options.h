// The single string surface of PlanOptions (DESIGN.md §8).
//
// Every user-tunable plan knob is one row of a declarative table: a CLI
// spelling (kebab-case flag shared verbatim by `h2h map`, `h2h sweep`, and
// `h2h serve`), a JSON spelling (snake_case key of the serve wire schema's
// "options" object, mirroring the PlanOptions field 1:1), the value kind,
// and the accessors that read/write the PlanOptions field. The CLI flag
// parser, the usage text, and the wire codec are all generated from this
// table, so the three commands cannot drift apart and a knob added here is
// automatically spelled identically everywhere.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "core/planner.h"

namespace h2h {

struct PlanOptionSpec {
  enum class Kind {
    Bool,    // CLI: --<key> / --no-<key>; JSON: true/false
    Double,  // CLI: --<key> <seconds>; JSON: number
    Enum,    // CLI: --<key> <value>; JSON: string; `values` lists spellings
  };

  std::string_view cli_key;   // e.g. "time-budget"
  std::string_view json_key;  // e.g. "time_budget_s"
  Kind kind;
  /// Accepted spellings for Enum entries ("exact|greedy"), empty otherwise.
  std::string_view values;
  std::string_view help;

  /// Parse + validate `value` (string spelling: "true", "0.25", "greedy")
  /// into the PlanOptions field. Returns std::nullopt on success, or a
  /// diagnostic suitable for CLI and wire error messages.
  std::optional<std::string> (*set)(PlanOptions&, std::string_view value);
  /// Canonical string spelling of the current value (inverse of set).
  /// Unset optional values render as "" — serializers omit the field.
  std::string (*get)(const PlanOptions&);
};

/// The full table, in stable documentation order.
[[nodiscard]] std::span<const PlanOptionSpec> plan_option_specs();

/// Row lookup by either spelling (CLI or JSON key); nullptr when unknown.
[[nodiscard]] const PlanOptionSpec* find_plan_option(std::string_view key);

/// Convenience: find + set. Unknown keys report a diagnostic listing the
/// valid spellings.
[[nodiscard]] std::optional<std::string> apply_plan_option(
    PlanOptions& options, std::string_view key, std::string_view value);

}  // namespace h2h
