#include <gtest/gtest.h>

#include "accel/analytical_models.h"
#include "accel/catalog.h"
#include "system/system_config.h"
#include "test_helpers.h"
#include "util/error.h"

namespace h2h {
namespace {

TEST(BandwidthSettings, MatchPaperValues) {
  EXPECT_DOUBLE_EQ(bandwidth_value(BandwidthSetting::LowMinus), 0.125e9);
  EXPECT_DOUBLE_EQ(bandwidth_value(BandwidthSetting::Low), 0.15e9);
  EXPECT_DOUBLE_EQ(bandwidth_value(BandwidthSetting::MidMinus), 0.25e9);
  EXPECT_DOUBLE_EQ(bandwidth_value(BandwidthSetting::Mid), 0.5e9);
  EXPECT_DOUBLE_EQ(bandwidth_value(BandwidthSetting::High), 1.25e9);
  EXPECT_EQ(all_bandwidth_settings().size(), 5u);
  EXPECT_EQ(to_string(BandwidthSetting::LowMinus), "Low-");
}

TEST(SystemConfig, StandardSystemHasTwelveAccelerators) {
  const SystemConfig sys = SystemConfig::standard(BandwidthSetting::Mid);
  EXPECT_EQ(sys.accelerator_count(), 12u);
  EXPECT_DOUBLE_EQ(sys.host().bw_acc, 0.5e9);
  EXPECT_EQ(sys.spec(AccId{0}).name, "J.Z");
  EXPECT_EQ(sys.spec(AccId{11}).name, "B.L");
}

TEST(SystemConfig, SupportingFiltersByKind) {
  const SystemConfig sys = SystemConfig::standard(0.5e9);
  EXPECT_EQ(sys.supporting(LayerKind::Conv).size(), 9u);
  EXPECT_EQ(sys.supporting(LayerKind::Lstm).size(), 5u);
  // Structural layers run everywhere.
  EXPECT_EQ(sys.supporting(LayerKind::Pool).size(), 12u);
  EXPECT_EQ(sys.supporting(LayerKind::Concat).size(), 12u);
}

TEST(SystemConfig, BandwidthOverridePerAccelerator) {
  auto specs = standard_catalog();
  specs[0].bw_acc_override = 2e9;
  std::vector<AcceleratorPtr> accs;
  for (auto& s : specs) accs.push_back(make_analytical(std::move(s)));
  HostParams host;
  host.bw_acc = 0.5e9;
  const SystemConfig sys(std::move(accs), host);
  EXPECT_DOUBLE_EQ(sys.bw_acc(AccId{0}), 2e9);
  EXPECT_DOUBLE_EQ(sys.bw_acc(AccId{1}), 0.5e9);
}

TEST(SystemConfig, SetBwAccSweeps) {
  SystemConfig sys = SystemConfig::standard(0.5e9);
  sys.set_bw_acc(1.25e9);
  EXPECT_DOUBLE_EQ(sys.bw_acc(AccId{3}), 1.25e9);
  EXPECT_THROW(sys.set_bw_acc(0), ContractViolation);
}

TEST(SystemConfig, RejectsInvalidConfigurations) {
  HostParams host;
  EXPECT_THROW(SystemConfig({}, host), ConfigError);

  std::vector<AcceleratorPtr> dup;
  dup.push_back(make_analytical(testing::simple_spec("A", gib(1))));
  dup.push_back(make_analytical(testing::simple_spec("A", gib(1))));
  EXPECT_THROW(SystemConfig(std::move(dup), host), ConfigError);

  std::vector<AcceleratorPtr> ok;
  ok.push_back(make_analytical(testing::simple_spec("A", gib(1))));
  HostParams bad_bw;
  bad_bw.bw_acc = -1;
  EXPECT_THROW(SystemConfig(std::move(ok), bad_bw), ConfigError);
}

TEST(SystemConfig, LinkOverrideSteersThePipeline) {
  // Two identical accelerators; one has a 10x faster host link. At low
  // system bandwidth the mapper must exploit the fast-linked device for the
  // traffic-heavy layers.
  std::vector<AcceleratorPtr> accs;
  AcceleratorSpec slow = testing::simple_spec("SLOW", gib(1));
  AcceleratorSpec fast = testing::simple_spec("FAST", gib(1));
  fast.bw_acc_override = 1.25e9;
  accs.push_back(make_analytical(std::move(slow)));
  accs.push_back(make_analytical(std::move(fast)));
  const SystemConfig sys(std::move(accs), HostParams{0.125e9, 0.0});

  const ModelGraph m = testing::make_chain_model();
  const PlanResponse r = plan_once(m, sys);
  // Every layer lands on the fast-linked accelerator (identical compute,
  // strictly cheaper transfers).
  for (const LayerId id : m.all_layers()) {
    if (m.layer(id).kind == LayerKind::Input) continue;
    EXPECT_EQ(r.mapping.acc_of(id), AccId{1}) << m.layer(id).name;
  }
}

TEST(AccIdSemantics, HostSentinel) {
  EXPECT_TRUE(AccId::host().is_host());
  EXPECT_TRUE(AccId::host().valid());
  EXPECT_FALSE(AccId{}.valid());
  const SystemConfig sys = testing::make_uniform_system(2);
  EXPECT_FALSE(sys.contains(AccId::host()));
  EXPECT_TRUE(sys.contains(AccId{1}));
  EXPECT_FALSE(sys.contains(AccId{2}));
}

}  // namespace
}  // namespace h2h
