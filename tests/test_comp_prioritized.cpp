#include <gtest/gtest.h>

#include "core/comp_prioritized.h"
#include "test_helpers.h"
#include "util/error.h"

namespace h2h {
namespace {

using testing::make_chain_model;
using testing::make_mini_hetero_system;
using testing::make_mini_mmmt_model;

TEST(CompPrioritized, ProducesCompleteValidMapping) {
  const ModelGraph m = make_mini_mmmt_model();
  const SystemConfig sys = make_mini_hetero_system();
  const Simulator sim(m, sys);
  const Mapping mapping = computation_prioritized_mapping(sim);
  EXPECT_TRUE(mapping.complete());
  EXPECT_NO_THROW(mapping.validate(m, sys));
}

TEST(CompPrioritized, SequenceIsTopological) {
  const ModelGraph m = make_mini_mmmt_model();
  const SystemConfig sys = make_mini_hetero_system();
  const Simulator sim(m, sys);
  const Mapping mapping = computation_prioritized_mapping(sim);
  for (const LayerId id : m.all_layers())
    for (const LayerId s : m.graph().succs(id))
      EXPECT_LT(mapping.seq_of(id), mapping.seq_of(s));
}

TEST(CompPrioritized, RespectsKindSupport) {
  const ModelGraph m = make_mini_mmmt_model();
  const SystemConfig sys = make_mini_hetero_system();
  const Simulator sim(m, sys);
  const Mapping mapping = computation_prioritized_mapping(sim);
  for (const LayerId id : m.all_layers()) {
    const Layer& l = m.layer(id);
    if (l.kind == LayerKind::Input) continue;
    EXPECT_TRUE(sys.accelerator(mapping.acc_of(id)).supports(l.kind))
        << l.name;
  }
  // In the mini system, LSTMs can only live on the LSTM specialist.
  for (const LayerId id : m.all_layers()) {
    if (m.layer(id).kind == LayerKind::Lstm) {
      EXPECT_EQ(mapping.acc_of(id), AccId{2});
    }
  }
}

TEST(CompPrioritized, DeterministicAcrossRuns) {
  const ModelGraph m = make_mini_mmmt_model();
  const SystemConfig sys = make_mini_hetero_system();
  const Simulator sim(m, sys);
  const Mapping a = computation_prioritized_mapping(sim);
  const Mapping b = computation_prioritized_mapping(sim);
  for (const LayerId id : m.all_layers()) {
    EXPECT_EQ(a.acc_of(id), b.acc_of(id));
    EXPECT_EQ(a.seq_of(id), b.seq_of(id));
  }
}

TEST(CompPrioritized, PrefersFasterAcceleratorForConv) {
  // A single conv layer must land on the conv champion (acc 0: 1000 MAC/c),
  // not on the generic engine (200 MAC/c).
  const ModelGraph m = make_chain_model();
  const SystemConfig sys = make_mini_hetero_system();
  const Simulator sim(m, sys);
  const Mapping mapping = computation_prioritized_mapping(sim);
  EXPECT_EQ(mapping.acc_of(LayerId{1}), AccId{0});
  EXPECT_EQ(mapping.acc_of(LayerId{2}), AccId{0});
}

TEST(CompPrioritized, ChunkingUnderTinyCandidateBudget) {
  const ModelGraph m = make_mini_mmmt_model();
  const SystemConfig sys = make_mini_hetero_system();
  const Simulator sim(m, sys);
  CompPrioritizedOptions opts;
  opts.max_candidates = 2;  // forces single-node chunks
  const Mapping mapping = computation_prioritized_mapping(sim, opts);
  EXPECT_TRUE(mapping.complete());
  EXPECT_NO_THROW(mapping.validate(m, sys));
}

TEST(CompPrioritized, ExhaustiveBeatsOrMatchesGreedyChunks) {
  const ModelGraph m = make_mini_mmmt_model();
  const SystemConfig sys = make_mini_hetero_system();
  const Simulator sim(m, sys);
  const LocalityPlan zero(m);

  CompPrioritizedOptions greedy;
  greedy.max_candidates = 1;
  const double lat_greedy =
      sim.simulate(computation_prioritized_mapping(sim, greedy), zero).latency;
  const double lat_full =
      sim.simulate(computation_prioritized_mapping(sim), zero).latency;
  EXPECT_LE(lat_full, lat_greedy + 1e-12);
}

TEST(CompPrioritized, PreferredHookPinsPlacement) {
  const ModelGraph m = make_chain_model();
  const SystemConfig sys = make_mini_hetero_system();
  const Simulator sim(m, sys);
  CompPrioritizedOptions opts;
  // Force the convs onto the slow generic engine.
  opts.preferred = [&m](LayerId id) -> std::optional<AccId> {
    if (m.layer(id).kind == LayerKind::Conv) return AccId{1};
    return std::nullopt;
  };
  const Mapping mapping = computation_prioritized_mapping(sim, opts);
  EXPECT_EQ(mapping.acc_of(LayerId{1}), AccId{1});
  EXPECT_EQ(mapping.acc_of(LayerId{2}), AccId{1});
}

TEST(CompPrioritized, PreferredHookIgnoredWhenUnsupported) {
  const ModelGraph m = make_chain_model();
  const SystemConfig sys = make_mini_hetero_system();
  const Simulator sim(m, sys);
  CompPrioritizedOptions opts;
  // Conv-only accelerator cannot take the FC; preference must be dropped.
  opts.preferred = [](LayerId) -> std::optional<AccId> { return AccId{0}; };
  const Mapping mapping = computation_prioritized_mapping(sim, opts);
  EXPECT_NO_THROW(mapping.validate(m, sys));
  EXPECT_NE(mapping.acc_of(LayerId{3}), AccId{0});
}

TEST(CompPrioritized, ThrowsWhenNoAcceleratorSupportsKind) {
  ModelBuilder b("lstm-only");
  const LayerId in = b.input_seq("in", 8, 4);
  (void)b.lstm("l", in, 8, 1);
  const ModelGraph m = std::move(b).build();

  std::vector<AcceleratorPtr> accs;
  AcceleratorSpec conv_only = testing::simple_spec("C", gib(1));
  conv_only.kinds = KindSupport{true, false, false};
  accs.push_back(make_analytical(std::move(conv_only)));
  const SystemConfig sys(std::move(accs), HostParams{1e9, 0.0});
  const Simulator sim(m, sys);
  EXPECT_THROW((void)computation_prioritized_mapping(sim), ConfigError);
}

TEST(CompPrioritized, TiesKeepTheFirstEnumeratedAssignment) {
  // Two identical branch convs (b, c) on two identical accelerators after a
  // shared predecessor a: assignments (b->1, c->0) and (b->0, c->1) tie
  // exactly on (makespan, finish-sum). The documented rule keeps the FIRST
  // enumerated assignment — enumeration varies b's candidate fastest, so
  // (b->1, c->0) is reached before (b->0, c->1) and must win. (A plain
  // lexicographic choice-index tie-break would pick b->0 instead; this test
  // pins the actual colexicographic rule.)
  const ModelGraph m = testing::make_diamond_model();
  const SystemConfig sys = testing::make_uniform_system(2);
  const Simulator sim(m, sys);
  const Mapping mapping = computation_prioritized_mapping(sim);
  // Layer ids: in=0, a=1, b=2, c=3, d=4, e=5.
  EXPECT_EQ(mapping.acc_of(LayerId{1}), AccId{0});  // singleton wave: acc 0
  EXPECT_EQ(mapping.acc_of(LayerId{2}), AccId{1});
  EXPECT_EQ(mapping.acc_of(LayerId{3}), AccId{0});
}

TEST(CompPrioritized, BalancesIndependentBranchesAcrossAccelerators) {
  // Two identical independent conv branches and two identical conv-capable
  // accelerators: the delta-latency rule must parallelize them.
  ModelBuilder b("twin");
  const LayerId i1 = b.input("i1", 8, 32, 32);
  const LayerId i2 = b.input("i2", 8, 32, 32);
  const LayerId c1 = b.conv("c1", i1, 32, 3, 1);
  const LayerId c2 = b.conv("c2", i2, 32, 3, 1);
  (void)c1;
  (void)c2;
  const ModelGraph m = std::move(b).build();
  const SystemConfig sys = testing::make_uniform_system(2);
  const Simulator sim(m, sys);
  const Mapping mapping = computation_prioritized_mapping(sim);
  EXPECT_NE(mapping.acc_of(c1), mapping.acc_of(c2));
}

}  // namespace
}  // namespace h2h
