#include <gtest/gtest.h>

#include <array>

#include "model/model_builder.h"
#include "model/summary.h"
#include "util/error.h"

namespace h2h {
namespace {

TEST(ModelBuilder, SamePaddingShapePropagation) {
  ModelBuilder b("m");
  const LayerId in = b.input("in", 3, 224, 224);
  const LayerId c1 = b.conv("c1", in, 64, 7, 2);  // ceil(224/2) = 112
  EXPECT_EQ(b.geometry(c1).h, 112u);
  const LayerId p1 = b.pool("p1", c1, 3, 2);  // 56
  EXPECT_EQ(b.geometry(p1).h, 56u);
  const LayerId c2 = b.conv("c2", p1, 128, 3, 3);  // ceil(56/3) = 19
  EXPECT_EQ(b.geometry(c2).h, 19u);
  EXPECT_EQ(b.geometry(c2).channels, 128u);
  // in_channels inferred from the producer.
  const auto& shape = std::get<ConvShape>(b.peek().layer(c2).shape);
  EXPECT_EQ(shape.in_channels, 64u);
}

TEST(ModelBuilder, FcFlattensProducer) {
  ModelBuilder b("m");
  const LayerId in = b.input("in", 4, 6, 6);
  const LayerId f = b.fc("f", in, 10);
  const auto& shape = std::get<FcShape>(b.peek().layer(f).shape);
  EXPECT_EQ(shape.in_features, 4u * 6 * 6);
  const ModelGraph m = std::move(b).build();
  EXPECT_NO_THROW(m.validate());
}

TEST(ModelBuilder, LstmInfersSequenceFromProducer) {
  ModelBuilder b("m");
  const LayerId in = b.input_seq("in", 20, 16);
  const LayerId l = b.lstm("l", in, 32, 2);
  const auto& shape = std::get<LstmShape>(b.peek().layer(l).shape);
  EXPECT_EQ(shape.in_size, 16u);
  EXPECT_EQ(shape.seq_len, 20u);
  EXPECT_EQ(shape.layers, 2u);
}

TEST(ModelBuilder, LstmExplicitSeqOverImage) {
  ModelBuilder b("m");
  const LayerId in = b.input("in", 8, 7, 7);
  // 8*7*7 = 392 elems over 7 steps -> 56 per step.
  const LayerId l = b.lstm("l", in, 16, 1, 7);
  EXPECT_EQ(std::get<LstmShape>(b.peek().layer(l).shape).in_size, 56u);
  // Indivisible sequence is rejected.
  EXPECT_THROW((void)b.lstm("bad", in, 16, 1, 5), ConfigError);
  // No sequence info at all is rejected.
  const LayerId f = b.fc("f", in, 9);
  EXPECT_THROW((void)b.lstm("bad2", f, 16, 1, 2), ConfigError);
}

TEST(ModelBuilder, EltwiseRequiresMatchingShapes) {
  ModelBuilder b("m");
  const LayerId in = b.input("in", 4, 8, 8);
  const LayerId a = b.conv("a", in, 8, 3, 1);
  const LayerId c = b.conv("c", in, 8, 3, 2);
  EXPECT_THROW((void)b.eltwise("bad", a, c), ConfigError);
  const LayerId d = b.conv("d", in, 8, 3, 1);
  EXPECT_NO_THROW((void)b.eltwise("ok", a, d));
}

TEST(ModelBuilder, ConcatRequiresSpatialAgreement) {
  ModelBuilder b("m");
  const LayerId in = b.input("in", 4, 8, 8);
  const LayerId a = b.conv("a", in, 8, 3, 1);
  const LayerId c = b.conv("c", in, 16, 3, 1);
  const LayerId cat = b.concat("cat", std::array{a, c});
  EXPECT_EQ(b.geometry(cat).channels, 24u);
  const LayerId strided = b.conv("s", in, 8, 3, 2);
  EXPECT_THROW((void)b.concat("bad", std::array{a, strided}), ConfigError);
}

TEST(ModelBuilder, Conv1dRequiresSequenceShape) {
  ModelBuilder b("m");
  const LayerId img = b.input("img", 3, 8, 8);
  EXPECT_THROW((void)b.conv1d("bad", img, 8, 3, 1), ConfigError);
  const LayerId seq = b.input_seq("seq", 64, 16);
  const LayerId c = b.conv1d("ok", seq, 32, 3, 2);
  EXPECT_EQ(b.geometry(c).h, 32u);
  EXPECT_EQ(b.geometry(c).w, 1u);
}

TEST(ModelBuilder, ModalityTagging) {
  ModelBuilder b("m");
  b.set_modality(3);
  const LayerId in = b.input("in", 1, 4, 4);
  const LayerId c = b.conv("c", in, 4, 3, 1);
  b.set_modality(0);
  const LayerId f = b.fc("f", c, 2);
  EXPECT_EQ(b.peek().layer(in).modality, 3u);
  EXPECT_EQ(b.peek().layer(c).modality, 3u);
  EXPECT_EQ(b.peek().layer(f).modality, 0u);
}

TEST(ModelGraph, ValidateCatchesArityViolations) {
  // Hand-build a graph that the builder would refuse: conv with two inputs.
  ModelGraph m("bad");
  const LayerId i1 =
      m.add_layer(Layer{"i1", LayerKind::Input, InputShape{4, 4, 4}});
  const LayerId i2 =
      m.add_layer(Layer{"i2", LayerKind::Input, InputShape{4, 4, 4}});
  const std::array<LayerId, 2> both{i1, i2};
  (void)m.add_layer(Layer{"c", LayerKind::Conv, ConvShape{8, 4, 4, 4, 3, 1}},
                    both);
  EXPECT_THROW(m.validate(), ConfigError);
}

TEST(ModelGraph, ValidateCatchesChannelMismatch) {
  ModelGraph m("bad");
  const LayerId in =
      m.add_layer(Layer{"in", LayerKind::Input, InputShape{4, 4, 4}});
  const std::array<LayerId, 1> one{in};
  // Claims 8 input channels; producer provides 4.
  (void)m.add_layer(Layer{"c", LayerKind::Conv, ConvShape{8, 8, 4, 4, 3, 1}},
                    one);
  EXPECT_THROW(m.validate(), ConfigError);
}

TEST(ModelGraph, ValidateCatchesEmptyModel) {
  ModelGraph m("empty");
  EXPECT_THROW(m.validate(), ConfigError);
}

TEST(ModelGraph, StatsAggregateAcrossLayers) {
  ModelBuilder b("m");
  const LayerId in = b.input("in", 2, 4, 4);
  const LayerId c = b.conv("c", in, 4, 3, 1);
  const LayerId f = b.fc("f", c, 8);
  (void)f;
  const ModelGraph m = std::move(b).build();
  const ModelStats s = m.stats();
  EXPECT_EQ(s.node_count, 3u);
  EXPECT_EQ(s.compute_layer_count, 2u);
  const Layer& conv = m.layer(c);
  const Layer& fc = m.layer(f);
  EXPECT_EQ(s.total_params, conv.param_count() + fc.param_count());
  EXPECT_EQ(s.total_macs, conv.macs() + fc.macs());
}

TEST(ModelSummary, DescribesEveryKind) {
  EXPECT_NE(describe_shape(Layer{"", LayerKind::Conv,
                                 ConvShape{8, 4, 2, 2, 3, 1}})
                .find("Conv"),
            std::string::npos);
  EXPECT_NE(describe_shape(Layer{"", LayerKind::Lstm, LstmShape{8, 16, 2, 4}})
                .find("LSTM"),
            std::string::npos);
  EXPECT_NE(describe_shape(Layer{"", LayerKind::FullyConnected, FcShape{8, 4}})
                .find("FC 8->4"),
            std::string::npos);
}

}  // namespace
}  // namespace h2h
