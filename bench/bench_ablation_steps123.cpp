// Ablation: steps 1-3 in isolation. bench_ablation_incremental covers the
// step-4 remap loop; after that loop went O(touched), steps 1-3 became the
// pipeline bottleneck (ROADMAP). These benches time each front-end step on
// its own so cost-table / worklist / pruning changes show up individually
// instead of being averaged into BM_FullPipeline. Simulator construction is
// timed separately because the cost-table build moved the one-time
// (layer x accelerator) model evaluation there.
#include <benchmark/benchmark.h>

#include "h2h.h"

namespace {

using namespace h2h;

void BM_SimulatorConstruction(benchmark::State& state) {
  const ModelGraph model = make_vlocnet();
  const SystemConfig sys = SystemConfig::standard(BandwidthSetting::LowMinus);
  for (auto _ : state) {
    const Simulator sim(model, sys);
    benchmark::DoNotOptimize(&sim);
  }
}
BENCHMARK(BM_SimulatorConstruction)->Unit(benchmark::kMillisecond);

void BM_Step1CompPrioritized(benchmark::State& state) {
  const ModelGraph model = make_vlocnet();
  const SystemConfig sys = SystemConfig::standard(BandwidthSetting::LowMinus);
  const Simulator sim(model, sys);
  for (auto _ : state) {
    const Mapping m = computation_prioritized_mapping(sim);
    benchmark::DoNotOptimize(m.complete());
  }
}
BENCHMARK(BM_Step1CompPrioritized)->Unit(benchmark::kMillisecond);

void BM_Step2WeightLocality(benchmark::State& state) {
  const ModelGraph model = make_vlocnet();
  const SystemConfig sys = SystemConfig::standard(BandwidthSetting::LowMinus);
  const Simulator sim(model, sys);
  const Mapping mapping = computation_prioritized_mapping(sim);
  LocalityPlan base(model);
  base.ensure_acc_count(sys.accelerator_count());
  for (auto _ : state) {
    // The pass writes every pin exactly once with its final value, so the
    // copy only isolates iterations; results are identical either way.
    LocalityPlan plan = base;
    benchmark::DoNotOptimize(
        optimize_weight_locality(sim, mapping, plan));
  }
}
BENCHMARK(BM_Step2WeightLocality)->Unit(benchmark::kMillisecond);

void BM_Step3ActivationFusion(benchmark::State& state) {
  const ModelGraph model = make_vlocnet();
  const SystemConfig sys = SystemConfig::standard(BandwidthSetting::LowMinus);
  const Simulator sim(model, sys);
  const Mapping mapping = computation_prioritized_mapping(sim);
  LocalityPlan base(model);
  base.ensure_acc_count(sys.accelerator_count());
  optimize_weight_locality(sim, mapping, base);
  for (auto _ : state) {
    LocalityPlan plan = base;
    const FusionStats stats = optimize_activation_fusion(sim, mapping, plan);
    benchmark::DoNotOptimize(stats.fused_edges);
  }
}
BENCHMARK(BM_Step3ActivationFusion)->Unit(benchmark::kMillisecond);

void BM_Steps123(benchmark::State& state) {
  // The whole front end (what BM_FullPipeline spends outside the step-4
  // loop), including the per-run Simulator construction the mapper pays.
  const ModelGraph model = make_vlocnet();
  const SystemConfig sys = SystemConfig::standard(BandwidthSetting::LowMinus);
  for (auto _ : state) {
    const Simulator sim(model, sys);
    const Mapping mapping = computation_prioritized_mapping(sim);
    LocalityPlan plan(model);
    plan.ensure_acc_count(sys.accelerator_count());
    optimize_weight_locality(sim, mapping, plan);
    const FusionStats stats = optimize_activation_fusion(sim, mapping, plan);
    benchmark::DoNotOptimize(stats.fused_edges);
  }
}
BENCHMARK(BM_Steps123)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
