#include <gtest/gtest.h>

#include <sstream>

#include "report/experiment.h"
#include "report/paper_tables.h"

namespace h2h {
namespace {

TEST(Experiment, SingleCellHasFourStepSeries) {
  const StepSeries s = run_experiment(ZooModel::MoCap, BandwidthSetting::LowMinus);
  ASSERT_EQ(s.latency.size(), 4u);
  ASSERT_EQ(s.energy.size(), 4u);
  EXPECT_EQ(s.model, ZooModel::MoCap);
  EXPECT_EQ(s.bw, BandwidthSetting::LowMinus);
  EXPECT_LE(s.latency_vs_baseline(), 1.0);
  EXPECT_GT(s.baseline_comp_ratio, 0.0);
  EXPECT_GT(s.h2h_comp_ratio, 0.0);
  EXPECT_LE(s.h2h_comp_ratio, 1.0);
  EXPECT_GT(s.search_seconds, 0.0);
}

TEST(Experiment, RunOnCustomSystem) {
  const ModelGraph m = make_model(ZooModel::CnnLstm);
  const SystemConfig sys = SystemConfig::standard(BandwidthSetting::Mid);
  const StepSeries s = run_experiment_on(m, sys);
  EXPECT_EQ(s.latency.size(), 4u);
  for (double v : s.latency) EXPECT_GT(v, 0.0);
}

// A reduced sweep (2 models x 2 bandwidths) exercises all printers without
// the cost of the full 30-cell sweep.
std::vector<StepSeries> small_sweep() {
  std::vector<StepSeries> out;
  for (const ZooModel model : {ZooModel::CnnLstm, ZooModel::MoCap})
    for (const BandwidthSetting bw :
         {BandwidthSetting::LowMinus, BandwidthSetting::High})
      out.push_back(run_experiment(model, bw));
  return out;
}

TEST(PaperTables, PrintersEmitExpectedStructure) {
  const std::vector<StepSeries> sweep = small_sweep();

  std::ostringstream fig4;
  print_fig4(sweep, fig4);
  EXPECT_NE(fig4.str().find("Figure 4"), std::string::npos);
  EXPECT_NE(fig4.str().find("cnn-lstm"), std::string::npos);
  EXPECT_NE(fig4.str().find("Headline @ Low-"), std::string::npos);

  std::ostringstream t4;
  print_table4(sweep, t4);
  EXPECT_NE(t4.str().find("Table 4"), std::string::npos);
  EXPECT_NE(t4.str().find("step3 (%)"), std::string::npos);

  std::ostringstream fig5a;
  print_fig5a(sweep, fig5a);
  EXPECT_NE(fig5a.str().find("Figure 5(a)"), std::string::npos);
  EXPECT_NE(fig5a.str().find("mocap"), std::string::npos);

  std::ostringstream fig5b;
  print_fig5b(sweep, fig5b);
  EXPECT_NE(fig5b.str().find("Figure 5(b)"), std::string::npos);
  // Missing cells (Mid- etc.) are rendered as '-'.
  EXPECT_NE(fig5b.str().find('-'), std::string::npos);
}

TEST(PaperTables, CsvHasOneRowPerStep) {
  const std::vector<StepSeries> sweep = small_sweep();
  std::ostringstream out;
  write_sweep_csv(sweep, out);
  const std::string csv = out.str();
  std::size_t rows = 0;
  for (char c : csv)
    if (c == '\n') ++rows;
  std::size_t expected = 1;  // header
  for (const StepSeries& s : sweep) expected += s.latency.size();
  EXPECT_EQ(rows, expected);
  EXPECT_NE(csv.find("model,bandwidth"), std::string::npos);
}

}  // namespace
}  // namespace h2h
