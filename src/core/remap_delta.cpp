#include "core/remap_delta.h"

#include <algorithm>

namespace h2h {
namespace {

/// True when succs[k] already appeared earlier in the list (parallel edges
/// list a successor once per edge; its pred slots are handled in one visit).
bool repeated_succ(std::span<const LayerId> succs, std::size_t k) {
  const auto first_k = succs.begin() + static_cast<std::ptrdiff_t>(k);
  return std::find(succs.begin(), first_k, succs[k]) != first_k;
}

}  // namespace

RemapDeltaState::RemapDeltaState(const Simulator& sim,
                                 WeightLocalityOptions weight,
                                 FusionOptions fusion, bool use_knapsack_cache)
    : sim_(&sim),
      weight_(std::move(weight)),
      fusion_(fusion),
      use_cache_(use_knapsack_cache) {}

void RemapDeltaState::init(const Mapping& mapping, const LocalityPlan& plan) {
  const ModelGraph& model = sim_->model();
  const CostTable& costs = sim_->costs();
  H2H_EXPECTS(mapping.complete());
  H2H_EXPECTS(!probing_);

  accs_.assign(sim_->sys().accelerator_count(), AccAggregates{});
  saved_nonneg_.resize(accs_.size());
  for (std::uint32_t a = 0; a < accs_.size(); ++a) {
    const AccId acc{a};
    // Pin value = wb/bw_host - wb/bw_local: non-negative for every item iff
    // local DRAM is at least as fast as the host link (the sane case).
    saved_nonneg_[a] = costs.bw_local(acc) >= costs.bw_host(acc) ? 1 : 0;
  }

  std::vector<std::uint8_t> zero_weight_pinned(accs_.size(), 0);
  for (const LayerId id : model.all_layers()) {
    if (costs.is_input(id)) continue;
    AccAggregates& st = accs_[mapping.acc_of(id).value];
    const Bytes wb = costs.weight_bytes(id);
    st.weight_total += wb;
    if (plan.pinned(id)) {
      st.pinned_bytes += wb;
      if (wb == 0) zero_weight_pinned[mapping.acc_of(id).value] = 1;
    }
    const auto preds = model.graph().preds(id);
    for (std::size_t i = 0; i < preds.size(); ++i) {
      const AccId pa = mapping.acc_of(preds[i]);
      if (pa != mapping.acc_of(id)) continue;  // host inputs included
      if (plan.fused_in(id, i))
        st.fused_bytes += costs.out_bytes(preds[i]);
      else
        st.saturated = true;  // conservative: first touch runs the full pass
    }
  }
  for (std::uint32_t a = 0; a < accs_.size(); ++a) {
    AccAggregates& st = accs_[a];
    st.pins_trusted =
        zero_weight_pinned[a] == 0 && st.pinned_bytes == st.weight_total;
  }
}

void RemapDeltaState::begin_probe(AccId src, AccId dst) {
  H2H_EXPECTS(!probing_);
  H2H_EXPECTS(src.value < accs_.size() && dst.value < accs_.size());
  probing_ = true;
  snap_src_ = src;
  snap_dst_ = dst;
  snap_src_state_ = accs_[src.value];
  snap_dst_state_ = accs_[dst.value];
}

void RemapDeltaState::rollback_probe() {
  H2H_EXPECTS(probing_);
  accs_[snap_src_.value] = snap_src_state_;
  accs_[snap_dst_.value] = snap_dst_state_;
  probing_ = false;
}

void RemapDeltaState::commit_probe() {
  H2H_EXPECTS(probing_);
  probing_ = false;
}

void RemapDeltaState::delta_weight_one(const Mapping& mapping,
                                       LocalityPlan& plan, AccId acc,
                                       LayerId arrival) {
  const CostTable& costs = sim_->costs();
  AccAggregates& st = accs_[acc.value];
  const bool trivial = weight_.force_pin == nullptr &&
                       saved_nonneg_[acc.value] != 0 &&
                       st.weight_total <= costs.dram_capacity(acc);
  if (trivial) {
    // Everything-fits regime: solve_knapsack's fast path pins exactly the
    // positive-weight members. When the current pins already are that set,
    // only a layer arriving from the other accelerator needs its flag
    // written; otherwise one sweep rewrites the members to their final
    // values (still no solver).
    if (st.pins_trusted) {
      if (arrival.valid())
        plan.set_pinned(arrival, costs.weight_bytes(arrival) > 0);
    } else {
      for (const LayerId m : mapping.members(acc))
        plan.set_pinned(m, costs.weight_bytes(m) > 0);
    }
    st.pinned_bytes = st.weight_total;
    st.pins_trusted = true;
    ++stats_.trivial_weight;
    return;
  }

  // Capacity pressure (or force-pin, or a host link faster than local DRAM)
  // can change the knapsack frontier: run the full per-accelerator solve,
  // memoized — all candidate probes of one node share the src instance.
  optimize_weight_locality_acc(costs, mapping.members(acc), plan, weight_, acc,
                               weight_scratch_,
                               use_cache_ ? &cache_ : nullptr);
  st.pinned_bytes = plan.used_dram(acc);
  st.pins_trusted = st.pinned_bytes == st.weight_total;
  ++stats_.full_weight;
}

void RemapDeltaState::delta_fusion(const Mapping& mapping, LocalityPlan& plan,
                                   LayerId node, AccId src, AccId dst) {
  const ModelGraph& model = sim_->model();
  const CostTable& costs = sim_->costs();
  AccAggregates& st_src = accs_[src.value];
  AccAggregates& st_dst = accs_[dst.value];

  // Every currently-fused edge incident to `node` had both endpoints on src
  // (fusion connects co-located layers only); the move breaks those, so the
  // unfusions are unconditional and exact.
  Bytes removed = 0;
  const auto preds = model.graph().preds(node);
  for (std::size_t i = 0; i < preds.size(); ++i) {
    if (!plan.fused_in(node, i)) continue;
    plan.set_fused_in(node, i, false);
    removed += costs.out_bytes(preds[i]);
  }
  const auto succs = model.graph().succs(node);
  for (std::size_t k = 0; k < succs.size(); ++k) {
    if (repeated_succ(succs, k)) continue;
    const LayerId s = succs[k];
    const auto spreds = model.graph().preds(s);
    for (std::size_t j = 0; j < spreds.size(); ++j) {
      if (spreds[j] != node || !plan.fused_in(s, j)) continue;
      plan.set_fused_in(s, j, false);
      removed += costs.out_bytes(node);
    }
  }
  st_src.fused_bytes -= removed;

  // Node-incident edges that became co-located on dst — the only fusion
  // candidates the move creates.
  fuse_candidates_.clear();
  Bytes added = 0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    if (mapping.acc_of(preds[i]) != dst) continue;
    const Bytes bytes = costs.out_bytes(preds[i]);
    fuse_candidates_.push_back(
        EdgeRef{node, static_cast<std::uint32_t>(i), bytes});
    added += bytes;
  }
  for (std::size_t k = 0; k < succs.size(); ++k) {
    if (repeated_succ(succs, k)) continue;
    const LayerId s = succs[k];
    if (mapping.acc_of(s) != dst) continue;
    const auto spreds = model.graph().preds(s);
    for (std::size_t j = 0; j < spreds.size(); ++j) {
      if (spreds[j] != node) continue;
      const Bytes bytes = costs.out_bytes(node);
      fuse_candidates_.push_back(
          EdgeRef{s, static_cast<std::uint32_t>(j), bytes});
      added += bytes;
    }
  }

  // src: pins and demand only justify keeping the surviving co-located set
  // fused when nothing was capacity-rejected before and the (possibly
  // rewritten) pins plus the remaining buffers still fit.
  const bool src_ok =
      !st_src.saturated &&
      (!fusion_.enforce_capacity ||
       st_src.pinned_bytes + st_src.fused_bytes <= costs.dram_capacity(src));
  if (src_ok) {
    plan.set_used_dram(src, st_src.pinned_bytes + st_src.fused_bytes);
    ++stats_.local_fusion;
  } else {
    const FusionStats full = optimize_activation_fusion_acc(
        costs, model, mapping, mapping.members(src), plan, fusion_, src);
    st_src.fused_bytes = full.fused_bytes;
    st_src.saturated = full.rejected_for_capacity > 0;
    ++stats_.full_fusion;
  }

  // dst: the greedy walk only matches "fuse all co-located" when the whole
  // demand — old buffers plus the node's new edges — fits after the pin
  // update; otherwise the rejection order matters and the full pass decides.
  const bool dst_ok = !st_dst.saturated &&
                      (!fusion_.enforce_capacity ||
                       st_dst.pinned_bytes + st_dst.fused_bytes + added <=
                           costs.dram_capacity(dst));
  if (dst_ok) {
    for (const EdgeRef& e : fuse_candidates_)
      plan.set_fused_in(e.consumer, e.slot, true);
    st_dst.fused_bytes += added;
    plan.set_used_dram(dst, st_dst.pinned_bytes + st_dst.fused_bytes);
    ++stats_.local_fusion;
  } else {
    const FusionStats full = optimize_activation_fusion_acc(
        costs, model, mapping, mapping.members(dst), plan, fusion_, dst);
    st_dst.fused_bytes = full.fused_bytes;
    st_dst.saturated = full.rejected_for_capacity > 0;
    ++stats_.full_fusion;
  }
}

void RemapDeltaState::apply_move(const Mapping& mapping, LocalityPlan& plan,
                                 LayerId node, AccId src, AccId dst) {
  H2H_EXPECTS(probing_ && snap_src_ == src && snap_dst_ == dst);
  H2H_EXPECTS(mapping.acc_of(node) == dst);

  // Step 2 on the touched pair, src first (the order the full pass used).
  const Bytes wb = sim_->costs().weight_bytes(node);
  accs_[src.value].weight_total -= wb;
  accs_[dst.value].weight_total += wb;
  delta_weight_one(mapping, plan, src, LayerId{});
  delta_weight_one(mapping, plan, dst, node);

  // Step 3 on the touched pair.
  delta_fusion(mapping, plan, node, src, dst);
}

}  // namespace h2h
