#include "system/system_config.h"

#include <array>
#include <set>

#include "accel/catalog.h"
#include "util/error.h"
#include "util/str.h"

namespace h2h {
namespace {

constexpr std::array<BandwidthSetting, 5> kAllSettings{
    BandwidthSetting::LowMinus, BandwidthSetting::Low,
    BandwidthSetting::MidMinus, BandwidthSetting::Mid, BandwidthSetting::High};

}  // namespace

double bandwidth_value(BandwidthSetting setting) noexcept {
  switch (setting) {
    case BandwidthSetting::LowMinus: return gbps(0.125);
    case BandwidthSetting::Low: return gbps(0.15);
    case BandwidthSetting::MidMinus: return gbps(0.25);
    case BandwidthSetting::Mid: return gbps(0.5);
    case BandwidthSetting::High: return gbps(1.25);
  }
  return gbps(0.5);
}

std::string_view to_string(BandwidthSetting setting) noexcept {
  switch (setting) {
    case BandwidthSetting::LowMinus: return "Low-";
    case BandwidthSetting::Low: return "Low";
    case BandwidthSetting::MidMinus: return "Mid-";
    case BandwidthSetting::Mid: return "Mid";
    case BandwidthSetting::High: return "High";
  }
  return "?";
}

std::span<const BandwidthSetting> all_bandwidth_settings() noexcept {
  return kAllSettings;
}

SystemConfig::SystemConfig(std::vector<AcceleratorPtr> accelerators,
                           HostParams host)
    : accs_(std::move(accelerators)), host_(host) {
  if (accs_.empty()) throw ConfigError("system has no accelerators");
  if (host_.bw_acc <= 0) throw ConfigError("BW_acc must be > 0");
  if (host_.static_power_w < 0) throw ConfigError("static power must be >= 0");
  std::set<std::string> names;
  for (const AcceleratorPtr& a : accs_) {
    H2H_EXPECTS(a != nullptr);
    a->spec().validate();
    if (!names.insert(a->spec().name).second)
      throw ConfigError(strformat("duplicate accelerator name '%s'",
                                  a->spec().name.c_str()));
  }
}

SystemConfig SystemConfig::standard(double bw_acc) {
  HostParams host;
  host.bw_acc = bw_acc;
  return SystemConfig(build_standard_accelerators(), host);
}

std::vector<AccId> SystemConfig::all_accelerators() const {
  std::vector<AccId> out;
  out.reserve(accs_.size());
  for (std::uint32_t i = 0; i < accs_.size(); ++i) out.push_back(AccId{i});
  return out;
}

std::vector<AccId> SystemConfig::supporting(LayerKind kind) const {
  std::vector<AccId> out;
  for (std::uint32_t i = 0; i < accs_.size(); ++i)
    if (accs_[i]->supports(kind)) out.push_back(AccId{i});
  return out;
}

}  // namespace h2h
