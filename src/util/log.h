// Minimal leveled logger. The mapping algorithm logs its decisions at Debug
// level so tests/benches stay quiet by default while examples can turn on
// tracing. Not thread-safe by design: the library is single-threaded
// control-plane code (documented in README).
#pragma once

#include <string_view>

namespace h2h {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Process-wide log threshold (default: Warn).
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emit `msg` to stderr if `level` passes the threshold.
void log_message(LogLevel level, std::string_view msg);

inline void log_debug(std::string_view msg) { log_message(LogLevel::Debug, msg); }
inline void log_info(std::string_view msg) { log_message(LogLevel::Info, msg); }
inline void log_warn(std::string_view msg) { log_message(LogLevel::Warn, msg); }
inline void log_error(std::string_view msg) { log_message(LogLevel::Error, msg); }

}  // namespace h2h
