// Umbrella header: the full public API of the H2H library.
//
// Typical usage (see examples/quickstart.cpp):
//
//   #include "h2h.h"
//   auto model = h2h::make_model(h2h::ZooModel::MoCap);
//   auto sys = h2h::SystemConfig::standard(h2h::BandwidthSetting::LowMinus);
//   h2h::H2HMapper mapper(model, sys);
//   h2h::H2HResult result = mapper.run();
#pragma once

#include "accel/analytical_models.h"
#include "accel/catalog.h"
#include "accel/registry.h"
#include "accel/tiling.h"
#include "core/baselines.h"
#include "core/dynamic_modality.h"
#include "core/h2h_mapper.h"
#include "model/blocks.h"
#include "model/summary.h"
#include "model/synthetic.h"
#include "model/zoo.h"
#include "system/mapping_io.h"
#include "system/schedule_analysis.h"
#include "report/experiment.h"
#include "report/mapping_report.h"
#include "report/paper_tables.h"
#include "util/csv.h"
#include "util/error.h"
#include "util/log.h"
#include "util/str.h"
#include "util/table.h"
