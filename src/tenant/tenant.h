// Multi-tenant workload description (DESIGN.md §11).
//
// A tenant is one model sharing the heterogeneous system with others, under
// a latency SLO, an integer priority, and an optional required-capability
// mask (accel/capability.h) stamped onto every placeable layer. A TenantSet
// validates the collection and builds the *union model*: one ModelGraph
// holding every tenant's layers (names prefixed "tenant/", disjoint
// components), which the CoMapper plans as a single H2H problem so the
// simulator charges cross-tenant contention on shared accelerators and
// links exactly like intra-model contention.
//
// v1 union constraints: all tenants must agree on dtype_bytes and batch
// (ConfigError otherwise) — the union graph carries a single value of each.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "accel/capability.h"
#include "model/zoo.h"

namespace h2h {

/// One tenant of the co-mapping problem. Exactly one of `model` (zoo key)
/// or `graph` (caller-owned, must outlive the TenantSet) must be set.
struct TenantRequest {
  /// Unique within the set; becomes the union-model layer-name prefix.
  std::string name;
  std::optional<ZooModel> model;
  const ModelGraph* graph = nullptr;
  /// Latency SLO in seconds; infinity (the default) means "no deadline" —
  /// the tenant never counts as violated and sorts last in slack order.
  double slo_s = std::numeric_limits<double>::infinity();
  /// Deadline-miss weight: a miss costs priority x overrun seconds in the
  /// co-mapper's score. Clamped up to 1 when 0.
  std::uint32_t priority = 1;
  /// Capability bits stamped onto every placeable (non-Input) layer of this
  /// tenant. 0 imposes nothing.
  CapabilityMask required_caps = 0;

  [[nodiscard]] bool has_slo() const noexcept {
    return slo_s < std::numeric_limits<double>::infinity();
  }
};

/// Half-open union-model layer range of one tenant (layers are appended
/// contiguously per tenant, in declaration order).
struct TenantSpan {
  std::uint32_t begin = 0;
  std::uint32_t end = 0;

  [[nodiscard]] bool contains(LayerId id) const noexcept {
    return id.value >= begin && id.value < end;
  }
};

class TenantSet {
 public:
  /// Validates the requests (unique non-empty names without '/', exactly one
  /// model source each, slo > 0, known zoo keys) and materializes each
  /// tenant's model with `required_caps` stamped on every non-Input layer.
  /// Throws ConfigError on violations.
  explicit TenantSet(std::vector<TenantRequest> requests);

  [[nodiscard]] std::size_t size() const noexcept { return requests_.size(); }
  [[nodiscard]] const std::vector<TenantRequest>& requests() const noexcept {
    return requests_;
  }
  [[nodiscard]] const TenantRequest& request(std::size_t i) const {
    H2H_EXPECTS(i < requests_.size());
    return requests_[i];
  }
  /// Tenant `i`'s own model (caps stamped), the solo-planning input.
  [[nodiscard]] const ModelGraph& model(std::size_t i) const {
    H2H_EXPECTS(i < models_.size());
    return models_[i];
  }

  /// The union model: every tenant's layers in declaration order, names
  /// prefixed "tenant/". Checks the v1 dtype/batch agreement here (throws
  /// ConfigError). `spans[i]` receives tenant i's layer range.
  [[nodiscard]] ModelGraph build_union(std::vector<TenantSpan>& spans) const;

 private:
  std::vector<TenantRequest> requests_;
  std::vector<ModelGraph> models_;
};

/// Deadline slack of one tenant under a schedule: slo - latency, normalized
/// to [0, 1] by `normalize_s` (the mapf-het ordering rule: 0 = hopeless or
/// due now, 1 = a full window of slack). No-SLO tenants report +infinity
/// before normalization and clamp to 1.
[[nodiscard]] double normalized_slack(double latency_s, double slo_s,
                                      double normalize_s) noexcept;

/// Planning order of the co-mapper's rounds: ascending normalized slack
/// (most urgent first), ties broken by descending priority, then by tenant
/// index. `latency` is per tenant, indexed like `set.requests()`.
[[nodiscard]] std::vector<std::size_t> slack_order(
    const TenantSet& set, const std::vector<double>& latency,
    double normalize_s);

/// Parse the CLI `--tenants` grammar: ';'-separated tenant specs, each
///   name=<zoo-key>[:slo=<seconds>][:prio=<n>][:caps=<caps-spec>]
/// e.g. "cam=vlocnet:slo=0.05:prio=2;mic=mocap:slo=0.02;aux=vfs:caps=bigmem".
/// Caps specs use accel/capability.h's '+' grammar. Throws ConfigError on
/// malformed specs, duplicate names or keys, or unknown models.
[[nodiscard]] std::vector<TenantRequest> parse_tenants_spec(
    std::string_view spec);

}  // namespace h2h
