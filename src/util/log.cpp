#include "util/log.h"

#include <atomic>
#include <cstdio>

namespace h2h {
namespace {

// Atomic so serve worker threads can log while another thread adjusts the
// level (relaxed: the level is a filter, not a synchronization point).
std::atomic<LogLevel> g_level{LogLevel::Warn};

[[nodiscard]] const char* level_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?????";
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return g_level.load(std::memory_order_relaxed);
}

void log_message(LogLevel level, std::string_view msg) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::fprintf(stderr, "[h2h %s] %.*s\n", level_tag(level),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace h2h
