#include <gtest/gtest.h>

#include "core/planner.h"
#include "model/synthetic.h"
#include "test_helpers.h"
#include "util/error.h"
#include "util/units.h"

namespace h2h {
namespace {

TEST(Synthetic, DefaultSpecBuildsValidMmmt) {
  const ModelGraph m = make_synthetic_mmmt(SyntheticMmmtSpec{});
  EXPECT_NO_THROW(m.validate());
  const ModelStats s = m.stats();
  EXPECT_EQ(s.modality_count, 3u);
  EXPECT_GT(s.total_params, 0u);
  // One recurrent branch requested by default.
  bool has_lstm = false;
  for (const LayerId id : m.all_layers())
    has_lstm = has_lstm || m.layer(id).kind == LayerKind::Lstm;
  EXPECT_TRUE(has_lstm);
}

TEST(Synthetic, DepthControlsLayerCount) {
  SyntheticMmmtSpec shallow;
  shallow.backbone_depth = 4;
  SyntheticMmmtSpec deep;
  deep.backbone_depth = 16;
  const std::size_t a =
      make_synthetic_mmmt(shallow).stats().compute_layer_count;
  const std::size_t b = make_synthetic_mmmt(deep).stats().compute_layer_count;
  EXPECT_GT(b, a + 3 * (16 - 4) / 2);  // at least the extra conv layers
}

TEST(Synthetic, WidthScalesParameters) {
  SyntheticMmmtSpec narrow;
  narrow.width = 0.5;
  narrow.lstm_modalities = 0;
  SyntheticMmmtSpec wide = narrow;
  wide.width = 1.0;
  const auto p_narrow = make_synthetic_mmmt(narrow).stats().total_params;
  const auto p_wide = make_synthetic_mmmt(wide).stats().total_params;
  EXPECT_GT(static_cast<double>(p_wide), 2.0 * static_cast<double>(p_narrow));
}

TEST(Synthetic, CrossTalkAddsSharedEdges) {
  SyntheticMmmtSpec with;
  SyntheticMmmtSpec without = with;
  without.cross_talk = false;
  const ModelGraph a = make_synthetic_mmmt(with);
  const ModelGraph b = make_synthetic_mmmt(without);
  EXPECT_GT(a.graph().edge_count(), b.graph().edge_count());
}

TEST(Synthetic, DeterministicPerSeed) {
  SyntheticMmmtSpec spec;
  spec.seed = 7;
  const ModelGraph a = make_synthetic_mmmt(spec);
  const ModelGraph b = make_synthetic_mmmt(spec);
  ASSERT_EQ(a.layer_count(), b.layer_count());
  for (const LayerId id : a.all_layers())
    EXPECT_EQ(a.layer(id).param_count(), b.layer(id).param_count());
  spec.seed = 8;
  const ModelGraph c = make_synthetic_mmmt(spec);
  bool differs = c.layer_count() != a.layer_count();
  for (const LayerId id : a.all_layers()) {
    if (differs) break;
    if (!c.graph().contains(id)) break;
    differs = a.layer(id).param_count() != c.layer(id).param_count();
  }
  EXPECT_TRUE(differs);
}

TEST(Synthetic, RejectsBadSpecs) {
  SyntheticMmmtSpec spec;
  spec.modalities = 0;
  EXPECT_THROW((void)make_synthetic_mmmt(spec), ConfigError);
  spec = SyntheticMmmtSpec{};
  spec.lstm_modalities = 99;
  EXPECT_THROW((void)make_synthetic_mmmt(spec), ConfigError);
  spec = SyntheticMmmtSpec{};
  spec.width = -1;
  EXPECT_THROW((void)make_synthetic_mmmt(spec), ConfigError);
}

// Scaling property: the H2H pipeline stays sub-second across a wide range
// of synthetic sizes (Fig. 5(b) extended beyond the Table-2 models).
class SyntheticScale : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SyntheticScale, PipelineScalesAndStaysMonotone) {
  SyntheticMmmtSpec spec;
  spec.modalities = GetParam();
  spec.lstm_modalities = GetParam() / 3;
  spec.backbone_depth = 10;
  const ModelGraph m = make_synthetic_mmmt(spec);
  const SystemConfig sys = SystemConfig::standard(BandwidthSetting::LowMinus);
  const PlanResponse r = plan_once(m, sys);
  EXPECT_LE(r.final_result().latency, r.baseline_result().latency);
  EXPECT_LT(r.search_seconds, testing::search_time_budget());
}

INSTANTIATE_TEST_SUITE_P(Modalities, SyntheticScale,
                         ::testing::Values(1u, 2u, 4u, 6u, 8u));

TEST(SyntheticTransformer, LayerCountFormulaIsExact) {
  for (const std::uint32_t blocks : {1u, 3u, 17u}) {
    for (const std::uint32_t heads : {1u, 4u, 8u}) {
      SyntheticTransformerSpec spec;
      spec.blocks = blocks;
      spec.heads = heads;
      const ModelGraph m = make_synthetic_transformer(spec);
      EXPECT_EQ(m.layer_count(), spec.layer_count());
      EXPECT_NO_THROW(m.validate());
    }
  }
}

TEST(SyntheticTransformer, BlocksForLayersReachesTheTarget) {
  for (const std::uint64_t target : {100ull, 1000ull, 5000ull}) {
    SyntheticTransformerSpec spec;
    spec.blocks = SyntheticTransformerSpec::blocks_for_layers(target, 4);
    EXPECT_GE(spec.layer_count(), target);
    // Not overshooting by more than one block.
    EXPECT_LT(spec.layer_count(), target + 2ull * 4 + 6);
  }
}

TEST(SyntheticTransformer, RejectsBadSpecs) {
  SyntheticTransformerSpec spec;
  spec.blocks = 0;
  EXPECT_THROW((void)make_synthetic_transformer(spec), ConfigError);
  spec = SyntheticTransformerSpec{};
  spec.heads = 3;  // d_model 256 not divisible
  EXPECT_THROW((void)make_synthetic_transformer(spec), ConfigError);
  spec.d_head = 32;  // explicit width lifts the divisibility requirement
  EXPECT_NO_THROW((void)make_synthetic_transformer(spec));
}

TEST(SyntheticTransformer, DeterministicPerSeed) {
  SyntheticTransformerSpec spec;
  spec.seed = 3;
  const ModelGraph a = make_synthetic_transformer(spec);
  const ModelGraph b = make_synthetic_transformer(spec);
  ASSERT_EQ(a.layer_count(), b.layer_count());
  for (const LayerId id : a.all_layers())
    EXPECT_EQ(a.layer(id).param_count(), b.layer(id).param_count());
}

// The headline scaling smoke (ISSUE 7 acceptance): a >= 5000-layer
// transformer planned onto a 32-accelerator hierarchical system inside the
// paper's search-time bound. Debug and sanitizer builds would spend minutes
// in the passes alone, so only optimized builds run it — CI exercises it in
// the dedicated serial Release ctest step (it matches the step's
// PipelineScalesAndStaysMonotone filter by name).
TEST(SyntheticTransformer, PipelineScalesAndStaysMonotoneAt5kLayers) {
#if !defined(NDEBUG) || defined(H2H_TESTING_SANITIZED)
  GTEST_SKIP() << "5000-layer smoke runs on optimized builds only";
#else
  SyntheticTransformerSpec spec;
  spec.blocks = SyntheticTransformerSpec::blocks_for_layers(5000, spec.heads);
  ASSERT_GE(spec.layer_count(), 5000u);
  const ModelGraph m = make_synthetic_transformer(spec);

  Interconnect::HierarchicalSpec links;
  links.group_size = 4;
  links.intra_bw = gbps(1.25);
  links.uplink_bw = gbps(0.25);
  links.host_bw = gbps(0.5);
  links.hop_latency_s = 2e-6;
  const SystemConfig sys =
      SystemConfig::scaled(32, Interconnect::hierarchical(links));

  PlanOptions options;
  options.time_budget_s = testing::search_time_budget();
  const PlanResponse r = plan_once(m, sys, options);
  EXPECT_LE(r.final_result().latency, r.baseline_result().latency);
  // The budget-aware search must come in within the bound (plus scheduling
  // slack for the final accepted pass).
  EXPECT_LT(r.search_seconds, 4.0 * testing::search_time_budget());
#endif
}

}  // namespace
}  // namespace h2h
