// Extension experiment: remapping objective. The paper's step 4 minimizes
// latency and reports that energy falls alongside it; this bench compares
// that against directly minimizing the energy-delay product, per model.
#include <benchmark/benchmark.h>

#include <iostream>

#include "h2h.h"

namespace {

using namespace h2h;

void BM_EdpRemap_MoCap(benchmark::State& state) {
  const ModelGraph model = make_mocap();
  const SystemConfig sys = SystemConfig::standard(BandwidthSetting::LowMinus);
  PlanOptions opts;
  opts.remap.objective = RemapObjective::EnergyDelayProduct;
  for (auto _ : state) {
    const PlanResponse r = plan_once(model, sys, opts);
    benchmark::DoNotOptimize(r.final_result().latency);
  }
}
BENCHMARK(BM_EdpRemap_MoCap)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  TextTable table({"model", "lat obj: s / J", "edp obj: s / J",
                   "latency delta", "energy delta"},
                  {TextTable::Align::Left});
  for (const ZooInfo& info : zoo_catalog()) {
    const ModelGraph model = make_model(info.id);
    const SystemConfig sys = SystemConfig::standard(BandwidthSetting::LowMinus);
    PlanOptions lat_opts;
    PlanOptions edp_opts;
    edp_opts.remap.objective = RemapObjective::EnergyDelayProduct;
    const ScheduleResult& rl =
        plan_once(model, sys, lat_opts).final_result();
    const ScheduleResult& re =
        plan_once(model, sys, edp_opts).final_result();
    table.add_row(
        {std::string(info.key),
         strformat("%.6f / %.4f", rl.latency, rl.energy.total()),
         strformat("%.6f / %.4f", re.latency, re.energy.total()),
         format_percent(re.latency / rl.latency - 1.0, 2),
         format_percent(re.energy.total() / rl.energy.total() - 1.0, 2)});
  }
  std::cout << "remapping objective ablation @ Low- (latency vs EDP):\n";
  table.print(std::cout);
  std::cout << '\n';

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
