// DEPRECATED one-shot facade, kept for source compatibility.
//
// H2HMapper was the library's original entry point: construct (paying the
// full Simulator/CostTable build) and run() the four-step pipeline once.
// It is now a thin shim over the pass pipeline in planner.h — new code
// should use h2h::Planner, which caches the constructed cost state across
// requests (warm re-plans skip the cold start entirely) and accepts
// composable pass pipelines, time budgets, and warm-start mappings.
//
// H2HResult/H2HOptions are aliases of PlanResponse/PlanOptions; run() is
// bit-identical to Planner::plan() with the default pipeline (pinned by
// test_planner.cpp).
#pragma once

#if !defined(H2H_ENABLE_DEPRECATED)
#error \
    "H2HMapper is deprecated and this build disabled it (H2H_ENABLE_DEPRECATED=OFF). Use h2h::Planner or h2h::plan_once (core/planner.h)."
#endif

#include "core/planner.h"

namespace h2h {

using H2HOptions = PlanOptions;
using H2HResult = PlanResponse;

/// DEPRECATED: use Planner. One Simulator build per instance, one pipeline
/// run per run() call — every call pays what a warm Planner::plan() skips.
class [[deprecated(
    "use h2h::Planner or h2h::plan_once (core/planner.h); one-shot "
    "equivalence is pinned in test_h2h_mapper.cpp")]] H2HMapper {
 public:
  H2HMapper(const ModelGraph& model, const SystemConfig& sys,
            H2HOptions options = {});

  /// Execute the pipeline. Deterministic: same inputs, same result.
  [[nodiscard]] H2HResult run() const;

  [[nodiscard]] const Simulator& simulator() const noexcept { return sim_; }

 private:
  Simulator sim_;
  H2HOptions options_;
};

}  // namespace h2h
