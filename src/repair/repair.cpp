#include "repair/repair.h"

#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <utility>

#include "util/error.h"
#include "util/str.h"

namespace h2h {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

std::string_view to_string(RepairOutcome outcome) noexcept {
  switch (outcome) {
    case RepairOutcome::Repaired: return "repaired";
    case RepairOutcome::Infeasible: return "infeasible";
  }
  return "?";
}

RepairEngine::RepairEngine(const ModelGraph& model, SystemConfig sys,
                           RepairOptions options)
    : model_(model),
      sys_(std::move(sys)),
      sim_(model_, sys_),
      options_(std::move(options)) {}

PlanResponse RepairEngine::plan_initial() {
  PlanResponse r = run_passes(sim_, make_default_pipeline(options_.plan),
                              options_.plan.time_budget_s);
  adopt(r.mapping, r.plan);
  return r;
}

void RepairEngine::adopt(const Mapping& mapping, const LocalityPlan& plan) {
  mapping.validate(model_, sys_);
  mapping_ = mapping;
  plan_ = plan;
  latency_ = sim_.simulate(*mapping_, *plan_).latency;
}

RepairResult RepairEngine::infeasible(RepairResult res, std::string reason,
                                      double elapsed_s) {
  res.outcome = RepairOutcome::Infeasible;
  res.infeasible_reason = std::move(reason);
  res.repair_seconds = elapsed_s;
  return res;
}

RepairResult RepairEngine::apply(const FaultEvent& event) {
  if (!sys_.contains(event.acc))
    throw ConfigError(strformat(
        "repair: unknown accelerator %u (system has %zu)", event.acc.value,
        sys_.accelerator_count()));
  if (!has_plan())
    throw ConfigError(
        "repair: no prior plan to repair — plan_initial or adopt first");

  const auto t0 = std::chrono::steady_clock::now();
  const auto elapsed = [t0] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  };
  RepairResult res;
  res.event = event;
  res.pre_latency_s = latency_;

  // 1. Mutate the owned system. Contradictory availability transitions are
  // caller bugs (the wire layer maps ConfigError to bad_field); the scaled
  // events are absolute restatements and always legal.
  switch (event.kind) {
    case FaultKind::AccLost:
      if (!sys_.available(event.acc))
        throw ConfigError(strformat("repair: accelerator %u is already lost",
                                    event.acc.value));
      sys_.set_available(event.acc, false);
      break;
    case FaultKind::AccReturned:
      if (sys_.available(event.acc))
        throw ConfigError(strformat("repair: accelerator %u is not lost",
                                    event.acc.value));
      sys_.set_available(event.acc, true);
      break;
    case FaultKind::LinkDegraded:
      sys_.set_link_degrade(event.acc, event.scale);  // validates the scale
      break;
    case FaultKind::LinkRestored:
      sys_.set_link_degrade(event.acc, 1.0);
      break;
    case FaultKind::SpecDerated:
      sys_.set_compute_derate(event.acc, event.scale);
      break;
  }

  // 2. Rebuild the cost state. A capability-exhausted build (every
  // kind-capable accelerator for some masked layer gone) is the in-band
  // infeasibility the serve loop must survive.
  const CostTable* costs = nullptr;
  try {
    costs = &sim_.costs();
  } catch (const CapabilityError& e) {
    return infeasible(std::move(res), e.what(), elapsed());
  }

  // 3. Damage cone. Forced evictions first: any layer whose current
  // accelerator can no longer run it (dead, or capability-excluded by the
  // rebuilt candidate sets) must move.
  const Mapping& old = *mapping_;
  const std::size_t layer_count = model_.layer_count();
  std::vector<bool> cone(layer_count, false);
  std::size_t evicted = 0;
  for (const LayerId id : model_.all_layers()) {
    if (costs->is_input(id)) continue;
    if (!costs->supported(id, old.acc_of(id))) {
      cone[id.value] = true;
      ++evicted;
    }
  }
  // Feasibility pre-check: every evicted layer needs somewhere to go.
  for (const LayerId id : model_.all_layers()) {
    if (!cone[id.value]) continue;
    if (costs->candidates(id, model_.layer(id).kind).empty())
      return infeasible(
          std::move(res),
          strformat("layer '%s' has no feasible accelerator after %s",
                    model_.layer(id).name.c_str(),
                    format_fault(event).c_str()),
          elapsed());
  }

  // Event-local opportunity set: the event accelerator's members may want to
  // leave a slowed device; a link degrade also frees their graph neighbours
  // (either endpoint of an edge crossing the slowed link can move).
  const auto free_layer = [&](LayerId id) {
    if (!costs->is_input(id)) cone[id.value] = true;
  };
  for (const LayerId id : old.members(event.acc)) {
    free_layer(id);
    if (event.kind == FaultKind::LinkDegraded) {
      for (const LayerId p : model_.graph().preds(id)) free_layer(p);
      for (const LayerId s : model_.graph().succs(id)) free_layer(s);
    }
  }
  // Improving events additionally free every layer that would now run
  // strictly faster on the event accelerator (step-1 measure): the repair
  // may spread load back onto a returned/restored/re-rated device.
  if (event.kind == FaultKind::AccReturned ||
      event.kind == FaultKind::LinkRestored ||
      event.kind == FaultKind::SpecDerated) {
    if (sys_.available(event.acc)) {
      for (const LayerId id : model_.all_layers()) {
        if (costs->is_input(id) || cone[id.value]) continue;
        const AccId cur = old.acc_of(id);
        if (!costs->supported(id, event.acc) || !costs->supported(id, cur))
          continue;
        if (costs->unlocalized_duration(id, event.acc) <
            costs->unlocalized_duration(id, cur))
          cone[id.value] = true;
      }
    }
  }
  for (const LayerId id : model_.all_layers())
    if (cone[id.value]) ++res.cone_layers;

  // The latency of *not* repairing: only meaningful while the old mapping
  // still runs on the faulted system.
  res.faulted_latency_s =
      evicted == 0 ? sim_.simulate(old, *plan_).latency : kInf;

  // 4. Warm repair: re-plan with everything outside the cone forced to its
  // current placement (step 1), keeping its pins (step 2), and frozen
  // (step 4) — the CoMapper constraint-replanning shape with the damage
  // cone standing in for the active tenant span.
  PlanOptions po = options_.plan;
  const auto snapshot = std::make_shared<Mapping>(old);
  const auto cone_ptr = std::make_shared<std::vector<bool>>(cone);
  po.step1.preferred = [snapshot,
                        cone_ptr](LayerId id) -> std::optional<AccId> {
    if ((*cone_ptr)[id.value]) return std::nullopt;
    const AccId a = snapshot->acc_of(id);
    return a.is_host() ? std::nullopt : std::optional<AccId>(a);
  };
  std::vector<bool> pin(layer_count, false);
  std::vector<bool> locked(layer_count, false);
  for (std::uint32_t l = 0; l < layer_count; ++l) {
    if (cone[l]) continue;
    locked[l] = true;
    pin[l] = plan_->pinned(LayerId{l});
  }
  po.weight.force_pin = &pin;
  po.remap.weight.force_pin = &pin;
  po.remap.locked = &locked;
  PlanResponse repaired =
      run_passes(sim_, make_default_pipeline(po), po.time_budget_s);
  double repaired_latency = repaired.final_result().latency;

  // 5. Fallback: when the warm repair lands far from the best reference we
  // have without a second search, pay for a from-scratch re-plan and keep
  // whichever is better.
  const double reference = std::isfinite(res.faulted_latency_s)
                               ? res.faulted_latency_s
                               : res.pre_latency_s;
  if (options_.allow_fallback && reference > 0 &&
      repaired_latency > options_.fallback_ratio * reference) {
    PlanResponse scratch = run_passes(
        sim_, make_default_pipeline(options_.plan), options_.plan.time_budget_s);
    res.scratch_latency_s = scratch.final_result().latency;
    if (res.scratch_latency_s < repaired_latency) {
      repaired = std::move(scratch);
      repaired_latency = res.scratch_latency_s;
      res.used_fallback = true;
    }
  }

  // 6. Migration accounting against the pre-event mapping, then adopt.
  for (const LayerId id : model_.all_layers()) {
    if (costs->is_input(id)) continue;
    const AccId from = old.acc_of(id);
    const AccId to = repaired.mapping.acc_of(id);
    if (from == to) continue;
    ++res.layers_moved;
    const Bytes wb = costs->weight_bytes(id);
    res.weight_bytes_moved += wb;
    res.migrations.push_back(Migration{id, from, to, wb});
  }
  res.post_latency_s = repaired_latency;
  mapping_ = repaired.mapping;
  plan_ = repaired.plan;
  latency_ = repaired_latency;
  res.response = std::move(repaired);
  res.repair_seconds = elapsed();
  return res;
}

}  // namespace h2h
