// CSV emission for benchmark outputs (EXPERIMENTS.md links the CSVs).
// RFC-4180-style quoting: fields containing comma, quote, or newline are
// quoted and inner quotes doubled.
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace h2h {

class CsvWriter {
 public:
  /// Writes rows to `out`; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Write one row; each field is escaped as needed.
  void row(const std::vector<std::string>& fields);

  /// Convenience: header row from string literals.
  void header(std::initializer_list<std::string_view> fields);

  [[nodiscard]] static std::string escape(std::string_view field);

 private:
  std::ostream* out_;
};

}  // namespace h2h
