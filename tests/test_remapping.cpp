#include <gtest/gtest.h>

#include "core/activation_fusion.h"
#include "core/comp_prioritized.h"
#include "core/remapping.h"
#include "core/weight_locality.h"
#include "test_helpers.h"

namespace h2h {
namespace {

struct Prepared {
  ModelGraph model;
  SystemConfig sys;
  Mapping mapping;
  LocalityPlan plan;
};

Prepared prepare(ModelGraph model, SystemConfig sys) {
  const Simulator sim(model, sys);
  Mapping mapping = computation_prioritized_mapping(sim);
  LocalityPlan plan(model);
  plan.ensure_acc_count(sys.accelerator_count());
  optimize_weight_locality(sim, mapping, plan);
  optimize_activation_fusion(sim, mapping, plan);
  return Prepared{std::move(model), std::move(sys), std::move(mapping),
                  std::move(plan)};
}

TEST(Remapping, NeverIncreasesLatency) {
  Prepared p = prepare(testing::make_mini_mmmt_model(),
                       testing::make_mini_hetero_system(0.125e9));
  const Simulator sim(p.model, p.sys);
  const double before = sim.simulate(p.mapping, p.plan).latency;
  const RemapStats stats = data_locality_remapping(sim, p.mapping, p.plan);
  const double after = sim.simulate(p.mapping, p.plan).latency;
  EXPECT_LE(after, before);
  EXPECT_GE(stats.passes, 1u);
  EXPECT_GE(stats.attempts, stats.accepted);
}

TEST(Remapping, MappingStaysValidAfterMoves) {
  Prepared p = prepare(make_model(ZooModel::MoCap),
                       SystemConfig::standard(BandwidthSetting::LowMinus));
  const Simulator sim(p.model, p.sys);
  (void)data_locality_remapping(sim, p.mapping, p.plan);
  EXPECT_NO_THROW(p.mapping.validate(p.model, p.sys));
}

TEST(Remapping, IncrementalAndFullResimAgree) {
  const auto run = [](bool use_inc) {
    Prepared p = prepare(make_model(ZooModel::CnnLstm),
                         SystemConfig::standard(BandwidthSetting::LowMinus));
    const Simulator sim(p.model, p.sys);
    RemapOptions opts;
    opts.use_incremental = use_inc;
    (void)data_locality_remapping(sim, p.mapping, p.plan, opts);
    return sim.simulate(p.mapping, p.plan).latency;
  };
  const double full = run(false);
  const double incremental = run(true);
  EXPECT_NEAR(incremental, full, full * 1e-9);
}

TEST(Remapping, ReducesHostTrafficAtLowBandwidth) {
  Prepared p = prepare(make_model(ZooModel::CasiaSurf),
                       SystemConfig::standard(BandwidthSetting::LowMinus));
  const Simulator sim(p.model, p.sys);
  const Bytes host_before = sim.simulate(p.mapping, p.plan).host_bytes;
  (void)data_locality_remapping(sim, p.mapping, p.plan);
  const Bytes host_after = sim.simulate(p.mapping, p.plan).host_bytes;
  EXPECT_LT(host_after, host_before);
}

TEST(Remapping, TerminatesWithinMaxPasses) {
  Prepared p = prepare(make_model(ZooModel::FaceBag),
                       SystemConfig::standard(BandwidthSetting::Low));
  const Simulator sim(p.model, p.sys);
  RemapOptions opts;
  opts.max_passes = 3;
  const RemapStats stats = data_locality_remapping(sim, p.mapping, p.plan, opts);
  EXPECT_LE(stats.passes, 3u);
}

TEST(Remapping, NoOpWhenAlreadyOptimal) {
  // Single accelerator: there is nowhere to move anything.
  Prepared p = prepare(testing::make_chain_model(),
                       testing::make_uniform_system(1));
  const Simulator sim(p.model, p.sys);
  const double before = sim.simulate(p.mapping, p.plan).latency;
  const RemapStats stats = data_locality_remapping(sim, p.mapping, p.plan);
  EXPECT_EQ(stats.accepted, 0u);
  EXPECT_DOUBLE_EQ(sim.simulate(p.mapping, p.plan).latency, before);
}

TEST(Remapping, AcceptedMovesMatchLatencyTrajectory) {
  // Strict-decrease acceptance: with zero epsilon tolerance the final
  // latency must be strictly lower than the start when moves were accepted.
  Prepared p = prepare(make_model(ZooModel::MoCap),
                       SystemConfig::standard(BandwidthSetting::LowMinus));
  const Simulator sim(p.model, p.sys);
  const double before = sim.simulate(p.mapping, p.plan).latency;
  const RemapStats stats = data_locality_remapping(sim, p.mapping, p.plan);
  const double after = sim.simulate(p.mapping, p.plan).latency;
  if (stats.accepted > 0) EXPECT_LT(after, before);
  else EXPECT_DOUBLE_EQ(after, before);
}

}  // namespace
}  // namespace h2h
