#include "graph/digraph.h"

#include <algorithm>

namespace h2h {

void Digraph::add_edge(NodeId from, NodeId to) {
  H2H_EXPECTS(contains(from));
  H2H_EXPECTS(contains(to));
  H2H_EXPECTS(from != to);
  H2H_EXPECTS(!has_edge(from, to));
  succs_[from.value].push_back(to);
  preds_[to.value].push_back(from);
  ++edge_count_;
}

bool Digraph::has_edge(NodeId from, NodeId to) const {
  H2H_EXPECTS(contains(from));
  H2H_EXPECTS(contains(to));
  const auto& s = succs_[from.value];
  return std::find(s.begin(), s.end(), to) != s.end();
}

std::vector<NodeId> Digraph::sources() const {
  std::vector<NodeId> out;
  for (std::uint32_t i = 0; i < preds_.size(); ++i)
    if (preds_[i].empty()) out.push_back(NodeId{i});
  return out;
}

std::vector<NodeId> Digraph::sinks() const {
  std::vector<NodeId> out;
  for (std::uint32_t i = 0; i < succs_.size(); ++i)
    if (succs_[i].empty()) out.push_back(NodeId{i});
  return out;
}

}  // namespace h2h
