// Multi-tenant co-mapping experiment (DESIGN.md §11): three always-on
// perception tenants share one 1G-Ethernet system. Planned independently
// ("sequential" deployment — each tenant maps as if alone, then all run
// together) they contend for the fast conv boards and blow their deadlines;
// the CoMapper plans the union model as one H2H problem and meets every
// SLO. The preamble asserts that separation — sequential violation > 0,
// co-mapped violation == 0 — so a regression in the co-mapper fails the
// bench run loudly instead of silently shifting the timings.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>

#include "h2h.h"

namespace {

using namespace h2h;

/// The validated 3-tenant fixture: camera face-recognition (tight SLO,
/// highest priority), activity recognition, and emotion recognition on a
/// 0.125 GB/s (1G Ethernet) system.
std::vector<TenantRequest> three_tenants() {
  std::vector<TenantRequest> tenants(3);
  tenants[0].name = "cam";
  tenants[0].model = ZooModel::CasiaSurf;
  tenants[0].slo_s = 0.012;
  tenants[0].priority = 3;
  tenants[1].name = "act";
  tenants[1].model = ZooModel::CnnLstm;
  tenants[1].slo_s = 0.010;
  tenants[1].priority = 2;
  tenants[2].name = "emo";
  tenants[2].model = ZooModel::MoCap;
  tenants[2].slo_s = 0.010;
  tenants[2].priority = 1;
  return tenants;
}

SystemConfig bench_system() {
  return SystemConfig::standard(bandwidth_value(BandwidthSetting::LowMinus));
}

void BM_CoMap_3Tenants(benchmark::State& state) {
  const SystemConfig sys = bench_system();
  const TenantSet set(three_tenants());
  for (auto _ : state) {
    CoMapper comapper(sys);
    const CoMapResult r = comapper.co_map(set);
    benchmark::DoNotOptimize(r.schedule.latency);
  }
}
BENCHMARK(BM_CoMap_3Tenants)->Unit(benchmark::kMillisecond);

void BM_CoMap_3Tenants_WarmPlanner(benchmark::State& state) {
  // The CoMapper's solo-plan cache is warm after the first call — the
  // steady-state cost of re-co-mapping (e.g. serve answering a repeated
  // tenants request).
  const SystemConfig sys = bench_system();
  const TenantSet set(three_tenants());
  CoMapper comapper(sys);
  benchmark::DoNotOptimize(comapper.co_map(set).schedule.latency);
  for (auto _ : state) {
    const CoMapResult r = comapper.co_map(set);
    benchmark::DoNotOptimize(r.schedule.latency);
  }
}
BENCHMARK(BM_CoMap_3Tenants_WarmPlanner)->Unit(benchmark::kMillisecond);

void BM_Sequential_3Tenants(benchmark::State& state) {
  // The baseline the co-mapper replaces: every tenant planned alone on the
  // idle system (the contention nobody charges for).
  const SystemConfig sys = bench_system();
  const TenantSet set(three_tenants());
  for (auto _ : state) {
    double total = 0;
    for (std::size_t i = 0; i < set.size(); ++i)
      total += plan_once(set.model(i), sys).final_result().latency;
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_Sequential_3Tenants)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const SystemConfig sys = bench_system();
  const TenantSet set(three_tenants());
  CoMapper comapper(sys);
  const CoMapResult result = comapper.co_map(set);

  TextTable table({"tenant", "prio", "slo (s)", "solo (s)", "sequential (s)",
                   "co-mapped (s)", "slo met"},
                  {TextTable::Align::Left});
  for (const TenantOutcome& t : result.tenants)
    table.add_row({t.name, strformat("%u", t.priority),
                   strformat("%.6f", t.slo_s),
                   strformat("%.6f", t.solo_latency_s),
                   strformat("%.6f", t.seq_latency_s),
                   strformat("%.6f", t.latency_s), t.met ? "yes" : "MISS"});

  std::cout << "multi-tenant co-mapping experiment (3 tenants, 0.125 GB/s "
               "links):\n";
  table.print(std::cout);
  std::cout << strformat(
      "\nmakespan: co-mapped %.6f s vs sequential %.6f s; priority-weighted "
      "SLO violation %.6f s vs %.6f s sequential (%u round(s)%s)\n\n",
      result.schedule.latency, result.seq_makespan_s, result.violation_s,
      result.seq_violation_s, result.rounds,
      result.steal_ran ? " plus the steal round" : "");

  // The claim this bench exists to demonstrate: sequential deployment
  // misses SLOs that co-mapping meets.
  if (!(result.seq_violation_s > 0)) {
    std::cerr << "FAIL: sequential deployment was expected to violate SLOs "
                 "on this fixture (got violation "
              << result.seq_violation_s << " s)\n";
    return EXIT_FAILURE;
  }
  if (!result.all_slos_met || result.violation_s != 0) {
    std::cerr << "FAIL: co-mapping was expected to meet every SLO (got "
                 "violation "
              << result.violation_s << " s)\n";
    return EXIT_FAILURE;
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
