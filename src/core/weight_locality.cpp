#include "core/weight_locality.h"

#include <algorithm>

namespace h2h {

double optimize_weight_locality_acc(const CostTable& costs,
                                    std::span<const LayerId> members,
                                    LocalityPlan& plan,
                                    const WeightLocalityOptions& options,
                                    AccId acc, WeightLocalityScratch& scratch,
                                    KnapsackCache* cache) {
  const double bw_host = costs.bw_host(acc);
  const double bw_local = costs.bw_local(acc);

  Bytes capacity = costs.dram_capacity(acc);
  Bytes forced_bytes = 0;
  std::vector<KnapsackItem>& items = scratch.items;
  items.clear();

  // Force-pin resident weights first; everything else competes in the
  // knapsack. Each pin flag is written exactly once with its final value —
  // no clear-then-reset — so an open plan journal records only real diffs
  // (the step-4 probe loop turns those diffs into its dirty set).
  for (const LayerId id : members) {
    const Bytes wb = costs.weight_bytes(id);
    if (wb == 0) {
      plan.set_pinned(id, false);
      continue;
    }
    if (options.force_pin != nullptr && (*options.force_pin)[id.value] &&
        forced_bytes + wb <= capacity) {
      plan.set_pinned(id, true);
      forced_bytes += wb;
      continue;
    }
    const double saved = static_cast<double>(wb) / bw_host -
                         static_cast<double>(wb) / bw_local;
    items.push_back(KnapsackItem{id.value, wb, saved});
  }

  const KnapsackSolution& sol =
      cache != nullptr
          ? cache->solve(items, capacity - forced_bytes, options.algo,
                         options.max_dp_units)
          : (scratch.solution = solve_knapsack(items, capacity - forced_bytes,
                                               options.algo,
                                               options.max_dp_units));
  for (const KnapsackItem& item : items)  // sol.selected is sorted
    plan.set_pinned(LayerId{item.id},
                    std::binary_search(sol.selected.begin(),
                                       sol.selected.end(), item.id));

  plan.set_used_dram(acc, forced_bytes + sol.used);
  return sol.value;
}

double optimize_weight_locality(const Simulator& sim, const Mapping& mapping,
                                LocalityPlan& plan,
                                const WeightLocalityOptions& options,
                                std::span<const AccId> only_accs,
                                WeightLocalityScratch* scratch) {
  plan.ensure_acc_count(sim.sys().accelerator_count());
  const CostTable& costs = sim.costs();
  WeightLocalityScratch local;
  WeightLocalityScratch& s = scratch != nullptr ? *scratch : local;
  double saved = 0;
  if (only_accs.empty()) {
    for (const AccId acc : sim.sys().all_accelerators())
      saved += optimize_weight_locality_acc(costs, mapping.members(acc), plan,
                                            options, acc, s);
  } else {
    for (const AccId acc : only_accs)
      saved += optimize_weight_locality_acc(costs, mapping.members(acc), plan,
                                            options, acc, s);
  }
  return saved;
}

}  // namespace h2h
